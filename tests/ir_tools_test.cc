#include <gtest/gtest.h>

#include "coarsegrain/schedule_dump.h"
#include "core/report.h"
#include "ir/build_cdfg.h"
#include "ir/dot.h"
#include "minic/frontend.h"
#include "support/strings.h"

namespace amdrel {
namespace {

TEST(DotExportTest, DfgContainsNodesAndEdges) {
  ir::Dfg dfg;
  const auto a = dfg.add_node(ir::OpKind::kInput, {}, "a");
  const auto b = dfg.add_const(7);
  const auto m = dfg.add_node(ir::OpKind::kMul, {a, b});
  dfg.add_node(ir::OpKind::kOutput, {m});
  const std::string dot = ir::to_dot(dfg, "test");
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("mul"), std::string::npos);
  EXPECT_NE(dot.find("#7"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(DotExportTest, CdfgMarksLoopsAndEntry) {
  const ir::TacProgram tac = minic::compile(R"(
    int main() {
      int sum = 0;
      for (int i = 0; i < 4; i++) { sum += i; }
      return sum;
    }
  )");
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  const std::string dot = ir::to_dot(cdfg);
  EXPECT_NE(dot.find("loop depth 1"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);   // entry
  EXPECT_NE(dot.find("style=dashed"), std::string::npos); // back edge
}

TEST(ScheduleDumpTest, ShowsChainsAndDma) {
  ir::Dfg dfg;
  const auto a = dfg.add_node(ir::OpKind::kInput, {}, "a");
  const auto l = dfg.add_node(ir::OpKind::kLoad, {a});
  const auto m = dfg.add_node(ir::OpKind::kMul, {l, l});
  const auto s = dfg.add_node(ir::OpKind::kAdd, {m, l});
  dfg.add_node(ir::OpKind::kOutput, {s});

  platform::CgcModel cgc;
  const auto schedule = coarsegrain::schedule_dfg_on_cgc(dfg, cgc);
  const std::string dump = coarsegrain::describe_schedule(schedule, dfg, cgc);
  EXPECT_NE(dump.find("CGC schedule:"), std::string::npos);
  EXPECT_NE(dump.find("mul#"), std::string::npos);
  EXPECT_NE(dump.find("DMA: 1 accesses"), std::string::npos);
}

TEST(TacPrinterTest, ListingShowsBlocksAndArrays) {
  const ir::TacProgram tac = minic::compile(R"(
    const int t[2] = {5, 6};
    int main() { return t[0] + t[1]; }
  )");
  const std::string listing = tac.to_string();
  EXPECT_NE(listing.find("array t[2] const"), std::string::npos);
  EXPECT_NE(listing.find("(entry)"), std::string::npos);
  EXPECT_NE(listing.find("ret"), std::string::npos);
  EXPECT_NE(listing.find("add"), std::string::npos);
}

TEST(TextTableTest, AlignsColumns) {
  core::TextTable table({"a", "long header"});
  table.add_row({"wide value", "x"});
  const std::string text = table.to_string();
  // Column 0 width = len("wide value"): the header row pads accordingly.
  EXPECT_NE(text.find("a           long header"), std::string::npos);
  EXPECT_NE(text.find("wide value  x"), std::string::npos);
}

TEST(WithThousandsTest, FormatsGroups) {
  EXPECT_EQ(core::with_thousands(0), "0");
  EXPECT_EQ(core::with_thousands(999), "999");
  EXPECT_EQ(core::with_thousands(1000), "1,000");
  EXPECT_EQ(core::with_thousands(1234567), "1,234,567");
  EXPECT_EQ(core::with_thousands(-1234567), "-1,234,567");
}

TEST(StringsTest, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(cat(), "");
}

TEST(BuildCdfgTest, LiveInsAndOutsAcrossBlocks) {
  // x defined in entry, consumed in the loop body -> entry has an output
  // marker for x, the body has an input for it.
  const ir::TacProgram tac = minic::compile(R"(
    int out[8];
    int main() {
      int x = 21;
      for (int i = 0; i < 8; i++) { out[i] = x * i; }
      return 0;
    }
  )");
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  bool some_block_outputs = false;
  bool some_block_inputs = false;
  for (const auto& block : cdfg.blocks()) {
    some_block_outputs |= block.dfg.live_out_count() > 0;
    some_block_inputs |= block.dfg.live_in_count() > 0;
  }
  EXPECT_TRUE(some_block_outputs);
  EXPECT_TRUE(some_block_inputs);
}

TEST(BuildCdfgTest, BlockCountAndEdgesMatchTac) {
  const ir::TacProgram tac = minic::compile(R"(
    int main() {
      int n = 3;
      if (n > 2) { n = 5; } else { n = 7; }
      return n;
    }
  )");
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  ASSERT_EQ(cdfg.size(), static_cast<ir::BlockId>(tac.blocks.size()));
  for (const auto& block : tac.blocks) {
    switch (block.term.kind) {
      case ir::Terminator::Kind::kBr:
        EXPECT_EQ(cdfg.successors(block.id).size(),
                  block.term.if_true == block.term.if_false ? 1u : 2u);
        break;
      case ir::Terminator::Kind::kJmp:
        EXPECT_EQ(cdfg.successors(block.id).size(), 1u);
        break;
      case ir::Terminator::Kind::kRet:
        EXPECT_TRUE(cdfg.successors(block.id).empty());
        break;
    }
  }
}

TEST(BuildCdfgTest, MemOpsBecomeMemNodes) {
  const ir::TacProgram tac = minic::compile(R"(
    int buffer[4];
    int main() { buffer[1] = buffer[0] + 1; return 0; }
  )");
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  std::int64_t mem = 0;
  for (const auto& block : cdfg.blocks()) mem += block.dfg.op_mix().mem;
  EXPECT_EQ(mem, 2);  // one load + one store
}

}  // namespace
}  // namespace amdrel
