// Golden pin of every persisted-format version constant (core/schema.h).
// These values key on-disk artifacts, cache files and the sweep-service
// wire: a bump must be an explicit, reviewed event, so changing one
// requires touching this file in the same commit (and regenerating the
// corresponding goldens / invalidating caches).

#include "core/schema.h"

#include <gtest/gtest.h>

namespace amdrel {
namespace {

TEST(SchemaVersionTest, FingerprintAlgorithmVersionIsPinned) {
  // v3: MethodologyOptions fingerprints cover the reconfiguration model.
  EXPECT_EQ(core::kFingerprintAlgorithmVersion, 3);
}

TEST(SchemaVersionTest, SweepArtifactSchemaVersionIsPinned) {
  // v3: cells carry reconfig_cycles and floorplan_cost columns.
  EXPECT_EQ(core::kSweepSchemaVersion, 3);
}

TEST(SchemaVersionTest, SweepCacheSchemaVersionIsPinned) {
  // v4: cell payloads carry t_reconfig and floorplan_bits fields.
  EXPECT_EQ(core::kSweepCacheSchemaVersion, 4);
}

TEST(SchemaVersionTest, SweepWireProtocolVersionIsPinned) {
  // v3: bidirectional control lines (assign/shard_ack/round_done/
  // shutdown) for connected transports, on top of the v2 cell stream.
  EXPECT_EQ(core::kSweepWireProtocolVersion, 3);
}

}  // namespace
}  // namespace amdrel
