// Property-based suites: invariants checked over seeded random inputs
// via parameterized gtest. Each suite sweeps generator seeds (and some
// sweep platform shapes), exercising the library far beyond the
// hand-written unit cases.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>

#include "coarsegrain/cgc_scheduler.h"
#include "core/baselines.h"
#include "core/energy.h"
#include "core/methodology.h"
#include "core/pipeline.h"
#include "core/strategy.h"
#include "finegrain/fpga_mapper.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "minic/optimizer.h"
#include "synth/cdfg_generator.h"
#include "synth/dfg_generator.h"
#include "workloads/golden.h"
#include "workloads/minic_sources.h"

namespace amdrel {
namespace {

// ---------------------------------------------------------------- DFGs --

class DfgGeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DfgGeneratorProperty, ExactOpMixAndValidity) {
  synth::DfgGenConfig config;
  config.alu_ops = 25;
  config.mul_ops = 7;
  config.load_ops = 5;
  config.store_ops = 3;
  config.live_ins = 4;
  config.live_outs = 2;
  config.seed = GetParam();
  const ir::Dfg dfg = synth::generate_dfg(config);
  dfg.validate();
  const ir::OpMix mix = dfg.op_mix();
  EXPECT_EQ(mix.alu, 25);
  EXPECT_EQ(mix.mul, 7);
  EXPECT_EQ(mix.mem, 8);
  EXPECT_EQ(dfg.live_in_count(), 4);
  EXPECT_EQ(dfg.live_out_count(), 2);
}

TEST_P(DfgGeneratorProperty, WidthKnobControlsDepth) {
  synth::DfgGenConfig config;
  config.alu_ops = 60;
  config.mul_ops = 0;
  config.load_ops = 0;
  config.store_ops = 0;
  config.seed = GetParam();
  config.target_width = 1;
  const int deep = synth::generate_dfg(config).max_asap_level();
  config.target_width = 10;
  const int shallow = synth::generate_dfg(config).max_asap_level();
  EXPECT_GT(deep, shallow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfgGeneratorProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// --------------------------------------------------- temporal partition --

class TemporalPartitionProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(TemporalPartitionProperty, Invariants) {
  const auto [seed, area] = GetParam();
  synth::DfgGenConfig config;
  config.alu_ops = 50;
  config.mul_ops = 12;
  config.load_ops = 8;
  config.store_ops = 4;
  config.seed = seed;
  const ir::Dfg dfg = synth::generate_dfg(config);

  platform::FpgaModel fpga;
  fpga.usable_area = area;
  const auto result = finegrain::partition_dfg(dfg, fpga);
  const auto levels = dfg.asap_levels();

  double total_area = 0;
  for (ir::NodeId id = 0; id < dfg.size(); ++id) {
    const auto& node = dfg.node(id);
    if (ir::is_schedulable(node.kind)) {
      // every schedulable node is assigned a partition
      EXPECT_GE(result.partition_of[id], 1);
      EXPECT_LE(result.partition_of[id], result.num_partitions);
      total_area += fpga.area(node.kind);
    } else {
      EXPECT_EQ(result.partition_of[id], 0);
    }
  }
  // each partition respects the area budget
  for (int p = 1; p <= result.num_partitions; ++p) {
    EXPECT_LE(result.partition_area[p], fpga.usable_area);
  }
  // partition count is at least the area lower bound
  EXPECT_GE(result.num_partitions,
            static_cast<int>(std::ceil(total_area / fpga.usable_area)));
  // level-by-level traversal: partitions never decrease along data edges
  for (ir::NodeId v = 0; v < dfg.size(); ++v) {
    for (ir::NodeId u : dfg.node(v).operands) {
      if (result.partition_of[u] > 0 && result.partition_of[v] > 0 &&
          levels[u] < levels[v]) {
        EXPECT_LE(result.partition_of[u], result.partition_of[v]);
      }
    }
  }
}

TEST_P(TemporalPartitionProperty, ListPackingInvariantsAndDominance) {
  const auto [seed, area] = GetParam();
  synth::DfgGenConfig config;
  config.alu_ops = 50;
  config.mul_ops = 12;
  config.load_ops = 8;
  config.store_ops = 4;
  config.seed = seed;
  const ir::Dfg dfg = synth::generate_dfg(config);

  platform::FpgaModel fpga;
  fpga.usable_area = area;
  const auto fig3 = finegrain::partition_dfg(dfg, fpga);
  const auto list = finegrain::partition_dfg_list(dfg, fpga);

  // Data dependencies never point into a later partition's past.
  for (ir::NodeId v = 0; v < dfg.size(); ++v) {
    for (ir::NodeId u : dfg.node(v).operands) {
      if (list.partition_of[u] > 0 && list.partition_of[v] > 0) {
        EXPECT_LE(list.partition_of[u], list.partition_of[v]);
      }
    }
  }
  for (int p = 1; p <= list.num_partitions; ++p) {
    EXPECT_LE(list.partition_area[p], fpga.usable_area);
  }
  // List packing never needs more configurations than Figure 3.
  EXPECT_LE(list.num_partitions, fig3.num_partitions);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAreas, TemporalPartitionProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 11),
                       ::testing::Values(200, 500, 1500)));

// ------------------------------------------------------- CGC scheduling --

struct CgcCase {
  std::uint64_t seed;
  int count, rows, cols;
};

class CgcScheduleProperty : public ::testing::TestWithParam<CgcCase> {};

TEST_P(CgcScheduleProperty, Invariants) {
  const CgcCase param = GetParam();
  synth::DfgGenConfig config;
  config.alu_ops = 40;
  config.mul_ops = 10;
  config.load_ops = 6;
  config.store_ops = 2;
  config.target_width = 8;
  config.seed = param.seed;
  const ir::Dfg dfg = synth::generate_dfg(config);

  platform::CgcModel cgc;
  cgc.count = param.count;
  cgc.rows = param.rows;
  cgc.cols = param.cols;
  cgc.dma_memory = param.seed % 2 == 0;  // alternate both memory modes
  const auto sched = coarsegrain::schedule_dfg_on_cgc(dfg, cgc);

  std::map<std::pair<std::int64_t, int>, int> per_cgc_cycle;
  for (ir::NodeId id = 0; id < dfg.size(); ++id) {
    const auto& node = dfg.node(id);
    if (!sched.placement[id].bound()) continue;
    const auto& p = sched.placement[id];
    // placements stay inside the array
    EXPECT_GE(p.row, 1);
    EXPECT_LE(p.row, cgc.rows);
    EXPECT_GE(p.col, 1);
    EXPECT_LE(p.col, cgc.cols);
    EXPECT_LT(p.cgc, cgc.count);
    per_cgc_cycle[{sched.start[id], p.cgc}]++;
    // precedence: operands ready, or same-cycle chain in lower row
    for (ir::NodeId u : node.operands) {
      if (!ir::is_schedulable(dfg.node(u).kind)) continue;
      if (sched.finish[u] > sched.start[id]) {
        EXPECT_EQ(sched.start[u], sched.start[id]);
        ASSERT_TRUE(sched.placement[u].bound());
        EXPECT_EQ(sched.placement[u].cgc, p.cgc);
        EXPECT_LT(sched.placement[u].row, p.row);
      }
    }
  }
  // per-cycle slot capacity
  for (const auto& [key, used] : per_cgc_cycle) {
    EXPECT_LE(used, cgc.rows * cgc.cols);
  }
  // latency lower bound: compute ops / slots
  const ir::OpMix mix = dfg.op_mix();
  const std::int64_t compute = mix.alu + mix.mul;
  EXPECT_GE(sched.total_cgc_cycles,
            (compute + cgc.slots_per_cycle() - 1) / cgc.slots_per_cycle());
  EXPECT_GE(sched.peak_registers, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CgcScheduleProperty,
    ::testing::Values(CgcCase{1, 1, 1, 1}, CgcCase{2, 1, 2, 2},
                      CgcCase{3, 2, 2, 2}, CgcCase{4, 3, 2, 2},
                      CgcCase{5, 2, 3, 3}, CgcCase{6, 2, 4, 1},
                      CgcCase{7, 4, 1, 4}, CgcCase{8, 2, 2, 2},
                      CgcCase{9, 3, 3, 2}, CgcCase{10, 1, 4, 4}));

// ------------------------------------------------------- methodology ----

class MethodologyProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  synth::SyntheticApp make_app() const {
    synth::CdfgGenConfig config;
    config.segments = 4;
    config.max_loop_depth = 2;
    config.seed = GetParam();
    config.div_probability = GetParam() % 3 == 0 ? 0.2 : 0.0;
    return synth::generate_app(config);
  }
};

TEST_P(MethodologyProperty, CostIdentityAndBounds) {
  const auto app = make_app();
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);

  const auto report = core::run_methodology(app.cdfg, app.profile, p,
                                            all_fine / 2);
  // equation (2) identity
  EXPECT_EQ(report.final_cycles,
            report.cost.t_fpga + report.cost.t_coarse + report.cost.t_comm);
  // the engine never commits a split worse than all-fine
  EXPECT_LE(report.final_cycles, report.initial_cycles);
  EXPECT_EQ(report.initial_cycles, all_fine);
  // moved blocks are unique and CGC-eligible
  std::set<ir::BlockId> seen;
  for (const ir::BlockId block : report.moved) {
    EXPECT_TRUE(seen.insert(block).second);
    EXPECT_FALSE(app.cdfg.block(block).dfg.has_division());
  }
  // reduction percentage is consistent and within range
  EXPECT_GE(report.reduction_percent(), 0.0);
  EXPECT_LE(report.reduction_percent(), 100.0);
}

TEST_P(MethodologyProperty, EvaluateMatchesReportedCost) {
  const auto app = make_app();
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const auto report = core::run_methodology(
      app.cdfg, app.profile, p,
      mapper.all_fine_cycles(app.profile) / 2);
  // re-pricing the reported split reproduces the reported cost exactly
  const core::SplitCost cost = mapper.evaluate(app.profile, report.moved);
  EXPECT_EQ(cost.total(), report.final_cycles);
  EXPECT_EQ(cost.t_fpga, report.cost.t_fpga);
  EXPECT_EQ(cost.t_coarse, report.cost.t_coarse);
  EXPECT_EQ(cost.t_comm, report.cost.t_comm);
}

TEST_P(MethodologyProperty, PipelineBounds) {
  const auto app = make_app();
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const auto report = core::run_methodology(
      app.cdfg, app.profile, p, mapper.all_fine_cycles(app.profile) / 2);
  for (const int frames : {1, 3, 8}) {
    const auto estimate = core::estimate_pipeline(report, frames);
    EXPECT_LE(estimate.pipelined_cycles, estimate.sequential_cycles);
    const std::int64_t bottleneck =
        std::max(estimate.fine_per_frame, estimate.coarse_per_frame);
    EXPECT_GE(estimate.pipelined_cycles, bottleneck * frames);
    EXPECT_LE(estimate.fine_utilization(), 1.0 + 1e-9);
    EXPECT_LE(estimate.coarse_utilization(), 1.0 + 1e-9);
  }
}

TEST_P(MethodologyProperty, EnergyBreakdownConsistent) {
  const auto app = make_app();
  const auto p = platform::make_paper_platform(1500, 2);
  const auto all_fine = core::estimate_energy(app.cdfg, app.profile, p, {});
  EXPECT_GE(all_fine.fine_pj, 0.0);
  EXPECT_EQ(all_fine.coarse_pj, 0.0);
  const auto report = core::run_energy_methodology(
      app.cdfg, app.profile, p, all_fine.total_pj() * 0.8);
  // the engine reports exactly the breakdown of its final split
  const auto repriced =
      core::estimate_energy(app.cdfg, app.profile, p, report.moved);
  EXPECT_DOUBLE_EQ(repriced.total_pj(), report.energy.total_pj());
}

TEST_P(MethodologyProperty, IncrementalSplitMatchesEvaluate) {
  // Delta-based costing must equal the from-scratch evaluate() after
  // every move/unmove of a random movement sequence (the engine-loop
  // invariant the strategies rely on).
  const auto app = make_app();
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  core::IncrementalSplit split(mapper, app.profile);

  std::vector<ir::BlockId> eligible;
  for (const auto& block : app.cdfg.blocks()) {
    if (mapper.cgc_eligible(block.id)) eligible.push_back(block.id);
  }
  ASSERT_FALSE(eligible.empty());

  std::mt19937_64 rng(GetParam() * 7919 + 1);
  std::uniform_int_distribution<std::size_t> pick(0, eligible.size() - 1);
  for (int step = 0; step < 200; ++step) {
    const ir::BlockId block = eligible[pick(rng)];
    if (split.is_moved(block)) {
      split.unmove(block);
    } else {
      split.move(block);
    }
    const core::SplitCost reference =
        mapper.evaluate(app.profile, split.moved());
    ASSERT_EQ(split.cost().t_fpga, reference.t_fpga) << "step " << step;
    ASSERT_EQ(split.cost().t_coarse, reference.t_coarse) << "step " << step;
    ASSERT_EQ(split.cost().t_comm, reference.t_comm) << "step " << step;
    ASSERT_EQ(split.moved_count(), split.moved().size());
  }
}

TEST_P(MethodologyProperty, IncrementalEnergyMatchesEstimate) {
  // The O(1) energy deltas must track a from-scratch estimate_energy
  // repricing through every move/unmove of a random movement sequence.
  // Deltas add and subtract per-block doubles in movement order while
  // the repricing sums in block order, so equality is up to float
  // summation order: a tight relative tolerance, not bit equality (the
  // engine's emitted reports always use the repricing).
  const auto app = make_app();
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  core::CostObjective objective;
  objective.kind = core::ObjectiveKind::kEnergy;
  core::IncrementalSplit split(mapper, app.profile, objective);

  std::vector<ir::BlockId> eligible;
  for (const auto& block : app.cdfg.blocks()) {
    if (mapper.cgc_eligible(block.id)) eligible.push_back(block.id);
  }
  ASSERT_FALSE(eligible.empty());

  const auto near = [](double actual, double reference) {
    const double scale = std::max({std::fabs(actual), std::fabs(reference),
                                   1.0});
    return std::fabs(actual - reference) <= 1e-9 * scale;
  };
  std::mt19937_64 rng(GetParam() * 104729 + 3);
  std::uniform_int_distribution<std::size_t> pick(0, eligible.size() - 1);
  for (int step = 0; step < 200; ++step) {
    const ir::BlockId block = eligible[pick(rng)];
    if (split.is_moved(block)) {
      split.unmove(block);
    } else {
      split.move(block);
    }
    const core::EnergyBreakdown reference = core::estimate_energy(
        mapper, app.profile, split.moved(), objective.energy);
    ASSERT_TRUE(near(split.energy().fine_pj, reference.fine_pj))
        << "step " << step << ": " << split.energy().fine_pj << " vs "
        << reference.fine_pj;
    ASSERT_TRUE(near(split.energy().coarse_pj, reference.coarse_pj))
        << "step " << step;
    ASSERT_TRUE(near(split.energy().reconfig_pj, reference.reconfig_pj))
        << "step " << step;
    ASSERT_TRUE(near(split.energy().comm_pj, reference.comm_pj))
        << "step " << step;
    ASSERT_TRUE(near(split.energy().total_pj(), reference.total_pj()))
        << "step " << step;
    // The objective scalar is the tracked total, so the strategies see
    // the same numbers the assertions above just checked.
    ASSERT_EQ(split.objective_value(), split.energy().total_pj());
  }
}

TEST_P(MethodologyProperty, StrategiesAgreeOnSplitPricing) {
  // Whatever split a strategy reports, re-pricing it from scratch must
  // reproduce the reported cost — for every registered strategy.
  const auto app = make_app();
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const std::int64_t constraint = mapper.all_fine_cycles(app.profile) / 2;
  for (const core::StrategyKind kind : core::all_strategies()) {
    core::MethodologyOptions options;
    options.strategy = kind;
    const auto report =
        core::run_methodology(mapper, app.profile, constraint, options);
    const core::SplitCost cost = mapper.evaluate(app.profile, report.moved);
    EXPECT_EQ(cost.total(), report.final_cycles)
        << core::strategy_name(kind);
    EXPECT_LE(report.final_cycles, report.initial_cycles)
        << core::strategy_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodologyProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ----------------------------------------------- interpreter vs golden --

class GoldenEquivalenceProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenEquivalenceProperty, FirMatches) {
  const int n = 48;
  const auto samples = workloads::random_samples(n + 16, GetParam());
  interp::Interpreter interp(minic::compile(workloads::fir_source(n)));
  interp.set_input("samples", samples);
  const auto result = interp.run();
  const auto golden = workloads::golden_fir(samples, n);
  EXPECT_EQ(result.return_value, golden.checksum);
  EXPECT_EQ(interp.array("filtered"), golden.filtered);
}

TEST_P(GoldenEquivalenceProperty, OfdmMatchesWithAndWithoutOptimizer) {
  const int symbols = 1;
  const auto bits = workloads::random_bits(symbols * 96, GetParam());
  const auto golden = workloads::golden_ofdm(bits, symbols);

  ir::TacProgram plain =
      minic::compile(workloads::ofdm_source(symbols), "ofdm");
  ir::TacProgram optimized = plain;
  minic::optimize(optimized);

  for (ir::TacProgram* tac : {&plain, &optimized}) {
    interp::Interpreter interp(*tac);
    interp.set_input("bits", bits);
    const auto result = interp.run();
    EXPECT_EQ(result.return_value, golden.checksum);
    EXPECT_EQ(interp.array("out_im"), golden.out_im);
  }
}

TEST_P(GoldenEquivalenceProperty, JpegMatches) {
  const auto image = workloads::random_pixels(16 * 16, GetParam());
  interp::Interpreter interp(minic::compile(workloads::jpeg_source(16, 16)));
  interp.set_input("image", image);
  EXPECT_EQ(interp.run().return_value,
            workloads::golden_jpeg(image, 16, 16).bit_cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenEquivalenceProperty,
                         ::testing::Range<std::uint64_t>(100, 110));

// ------------------------------------------------------ CDFG pipeline ---

class SyntheticAppProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SyntheticAppProperty, GeneratedAppsAreWellFormed) {
  synth::CdfgGenConfig config;
  config.segments = 6;
  config.max_loop_depth = 3;
  config.seed = GetParam();
  const auto app = synth::generate_app(config);
  app.cdfg.validate();
  // entry executes once; loop bodies execute more often than their
  // enclosing region
  EXPECT_EQ(app.profile.count(app.cdfg.entry()), 1u);
  for (const auto& block : app.cdfg.blocks()) {
    if (block.loop_depth > 0) {
      EXPECT_GE(app.profile.count(block.id),
                static_cast<std::uint64_t>(config.min_trip))
          << "block " << block.id;
    }
  }
  // loop analysis found at least one loop (segments=6 virtually always
  // emits one) and depths are consistent with the profile
  EXPECT_FALSE(app.cdfg.loops().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticAppProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace amdrel
