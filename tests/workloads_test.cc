#include "workloads/golden.h"
#include "workloads/minic_sources.h"

#include <gtest/gtest.h>

#include "analysis/kernels.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"

namespace amdrel::workloads {
namespace {

TEST(OfdmWorkloadTest, InterpreterMatchesGoldenReference) {
  const int symbols = 6;  // the paper's profiling input
  const auto bits = random_bits(symbols * 96, 42);

  const ir::TacProgram tac = minic::compile(ofdm_source(symbols), "ofdm");
  interp::Interpreter interp(tac);
  interp.set_input("bits", bits);
  const auto result = interp.run();

  const OfdmGolden golden = golden_ofdm(bits, symbols);
  EXPECT_EQ(result.return_value, golden.checksum);
  EXPECT_EQ(interp.array("out_re"), golden.out_re);
  EXPECT_EQ(interp.array("out_im"), golden.out_im);
}

TEST(OfdmWorkloadTest, OutputIsNonTrivial) {
  const auto bits = random_bits(96, 7);
  const OfdmGolden golden = golden_ofdm(bits, 1);
  int nonzero = 0;
  for (const auto v : golden.out_re) nonzero += v != 0;
  EXPECT_GT(nonzero, 40);  // a real IFFT output, not zeros
  // Cyclic prefix: first 16 samples repeat the last 16 of the symbol.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(golden.out_re[i], golden.out_re[16 + 48 + i]);
    EXPECT_EQ(golden.out_im[i], golden.out_im[16 + 48 + i]);
  }
}

TEST(JpegWorkloadTest, InterpreterMatchesGoldenReference) {
  const int w = 32, h = 32;
  const auto image = random_pixels(static_cast<std::size_t>(w) * h, 99);

  const ir::TacProgram tac = minic::compile(jpeg_source(w, h), "jpeg");
  interp::Interpreter interp(tac);
  interp.set_input("image", image);
  const auto result = interp.run();

  const JpegGolden golden = golden_jpeg(image, w, h);
  EXPECT_EQ(result.return_value, golden.bit_cost);
  EXPECT_EQ(interp.array("coeffs"), golden.coeffs);
  EXPECT_GT(golden.bit_cost, 0);
}

TEST(JpegWorkloadTest, FlatImageCompressesToNearNothing) {
  // A constant image has only DC energy; every AC coefficient must
  // quantize to zero and the bit cost stays tiny.
  const int w = 16, h = 16;
  std::vector<std::int32_t> flat(static_cast<std::size_t>(w) * h, 128);
  const JpegGolden golden = golden_jpeg(flat, w, h);
  for (std::size_t i = 0; i < golden.coeffs.size(); ++i) {
    EXPECT_EQ(golden.coeffs[i], 0) << "coefficient " << i;
  }
  EXPECT_LE(golden.bit_cost, 4 * 7);  // DC size 0 + EOB per block
}

TEST(FirWorkloadTest, InterpreterMatchesGoldenReference) {
  const int n = 128;
  const auto samples = random_samples(n + 16, 5);

  const ir::TacProgram tac = minic::compile(fir_source(n), "fir");
  interp::Interpreter interp(tac);
  interp.set_input("samples", samples);
  const auto result = interp.run();

  const FirGolden golden = golden_fir(samples, n);
  EXPECT_EQ(result.return_value, golden.checksum);
  EXPECT_EQ(interp.array("filtered"), golden.filtered);
}

TEST(SobelWorkloadTest, InterpreterMatchesGoldenReference) {
  const int w = 24, h = 20;
  const auto image = workloads::random_pixels(static_cast<std::size_t>(w) * h, 55);
  const ir::TacProgram tac = minic::compile(sobel_source(w, h), "sobel");
  interp::Interpreter interp(tac);
  interp.set_input("image", image);
  const auto result = interp.run();
  const SobelGolden golden = golden_sobel(image, w, h);
  EXPECT_EQ(result.return_value, golden.checksum);
  EXPECT_EQ(interp.array("edges"), golden.edges);
}

TEST(SobelWorkloadTest, FlatImageHasNoEdges) {
  std::vector<std::int32_t> flat(16 * 16, 200);
  const SobelGolden golden = golden_sobel(flat, 16, 16);
  EXPECT_EQ(golden.checksum, 0);
}

TEST(SobelWorkloadTest, StepEdgeDetected) {
  // Vertical step: left half 0, right half 255 -> strong response on the
  // boundary columns, clamped to 255.
  const int w = 16, h = 8;
  std::vector<std::int32_t> image(static_cast<std::size_t>(w) * h, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = w / 2; x < w; ++x) image[y * w + x] = 255;
  }
  const SobelGolden golden = golden_sobel(image, w, h);
  for (int y = 1; y < h - 1; ++y) {
    EXPECT_EQ(golden.edges[y * w + w / 2 - 1], 255) << "row " << y;
    EXPECT_EQ(golden.edges[y * w + w / 4], 0) << "row " << y;
  }
}

TEST(WorkloadAnalysisTest, OfdmKernelsLiveInLoops) {
  const ir::TacProgram tac = minic::compile(ofdm_source(2), "ofdm");
  interp::Interpreter interp(tac);
  interp.set_input("bits", random_bits(2 * 96, 1));
  const auto run = interp.run();

  ir::Cdfg cdfg = ir::build_cdfg(tac);
  const auto kernels = analysis::extract_kernels(cdfg, run.profile);
  ASSERT_FALSE(kernels.empty());
  // The hottest block must be the IFFT butterfly body (deepest loop,
  // highest frequency): depth >= 3 and executed >= 64*log2(64)/2 times.
  EXPECT_GE(kernels[0].loop_depth, 3);
  EXPECT_GE(kernels[0].exec_freq, 2u * 192u);
  // Equation (1) holds for every kernel.
  for (const auto& kernel : kernels) {
    EXPECT_EQ(kernel.total_weight,
              static_cast<std::int64_t>(kernel.exec_freq) * kernel.op_weight);
  }
}

TEST(WorkloadAnalysisTest, JpegHotBlockIsDctMac) {
  const ir::TacProgram tac = minic::compile(jpeg_source(16, 16), "jpeg");
  interp::Interpreter interp(tac);
  interp.set_input("image", random_pixels(256, 3));
  const auto run = interp.run();

  ir::Cdfg cdfg = ir::build_cdfg(tac);
  const auto kernels = analysis::extract_kernels(cdfg, run.profile);
  ASSERT_FALSE(kernels.empty());
  // Each DCT pass runs its MAC body 4 blocks * 64 outputs * 8 taps = 2048
  // times; the hottest kernel must be one of them and contain a multiply.
  const auto& top = kernels[0];
  EXPECT_GE(top.exec_freq, 2048u);
  EXPECT_GT(cdfg.block(top.block).dfg.op_mix().mul, 0);
}

}  // namespace
}  // namespace amdrel::workloads
