#include "interp/interpreter.h"

#include <gtest/gtest.h>

#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "support/error.h"

namespace amdrel::interp {
namespace {

RunResult run_source(const std::string& source) {
  const ir::TacProgram tac = minic::compile(source);
  Interpreter interp(tac);
  return interp.run();
}

TEST(InterpreterTest, ArithmeticAndPrecedence) {
  EXPECT_EQ(run_source("int main() { return 2 + 3 * 4 - 6 / 2; }")
                .return_value,
            11);
  EXPECT_EQ(run_source("int main() { return (7 % 3) << 2; }").return_value,
            4);
  EXPECT_EQ(run_source("int main() { return -5 >> 1; }").return_value, -3);
  EXPECT_EQ(run_source("int main() { return ~0 ^ 5; }").return_value, -6);
}

TEST(InterpreterTest, WrapAroundSemantics) {
  EXPECT_EQ(
      run_source("int main() { return 2147483647 + 1; }").return_value,
      INT32_MIN);
  const auto wrapped = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(65535u * 65535u));
  EXPECT_EQ(run_source("int main() { return 65535 * 65535; }").return_value,
            wrapped);
}

TEST(InterpreterTest, ShortCircuitEvaluation) {
  // The right operand of && must not execute when the left is false:
  // division by zero would throw if evaluated.
  EXPECT_EQ(run_source(R"(
    int main() {
      int zero = 0;
      if (zero != 0 && 10 / zero > 1) { return 1; }
      return 2;
    }
  )").return_value,
            2);
  EXPECT_EQ(run_source(R"(
    int main() {
      int zero = 0;
      int ok = 1 || 10 / zero;
      return ok;
    }
  )").return_value,
            1);
}

TEST(InterpreterTest, LoopsAndArrays) {
  const RunResult result = run_source(R"(
    int data[10];
    int main() {
      int sum = 0;
      for (int i = 0; i < 10; i++) { data[i] = i * i; }
      for (int i = 0; i < 10; i++) { sum += data[i]; }
      return sum;
    }
  )");
  EXPECT_EQ(result.return_value, 285);
}

TEST(InterpreterTest, WhileAndDoWhile) {
  EXPECT_EQ(run_source(R"(
    int main() {
      int n = 0;
      while (n < 5) { n++; }
      do { n += 10; } while (n < 20);
      return n;
    }
  )").return_value,
            25);
}

TEST(InterpreterTest, BreakAndContinue) {
  EXPECT_EQ(run_source(R"(
    int main() {
      int sum = 0;
      for (int i = 0; i < 100; i++) {
        if (i == 7) { break; }
        if (i % 2 == 1) { continue; }
        sum += i;
      }
      return sum;  // 0+2+4+6
    }
  )").return_value,
            12);
}

TEST(InterpreterTest, FunctionsAndArrayParams) {
  EXPECT_EQ(run_source(R"(
    int dot(int a[], int b[], int n) {
      int sum = 0;
      for (int i = 0; i < n; i++) { sum += a[i] * b[i]; }
      return sum;
    }
    int x[4];
    int y[4];
    int main() {
      for (int i = 0; i < 4; i++) { x[i] = i + 1; y[i] = 2; }
      return dot(x, y, 4);  // (1+2+3+4)*2
    }
  )").return_value,
            20);
}

TEST(InterpreterTest, ConstTables) {
  EXPECT_EQ(run_source(R"(
    const int lut[5] = {10, 20, 30, 40, 50};
    int main() { return lut[1] + lut[3]; }
  )").return_value,
            60);
}

TEST(InterpreterTest, TwoDimensionalArrays) {
  EXPECT_EQ(run_source(R"(
    int m[3][4];
    int main() {
      for (int r = 0; r < 3; r++) {
        for (int c = 0; c < 4; c++) { m[r][c] = r * 10 + c; }
      }
      return m[2][3];
    }
  )").return_value,
            23);
}

TEST(InterpreterTest, InputOutputApi) {
  const ir::TacProgram tac = minic::compile(R"(
    int in[4];
    int out[4];
    int main() {
      for (int i = 0; i < 4; i++) { out[i] = in[i] * 3; }
      return 0;
    }
  )");
  Interpreter interp(tac);
  interp.set_input("in", {1, 2, 3, 4});
  interp.run();
  EXPECT_EQ(interp.array("out"), (std::vector<std::int32_t>{3, 6, 9, 12}));
  // A second run re-applies inputs and zero-fills the rest.
  interp.run();
  EXPECT_EQ(interp.array("out"), (std::vector<std::int32_t>{3, 6, 9, 12}));
}

TEST(InterpreterTest, RuntimeErrors) {
  EXPECT_THROW(run_source("int main() { int z = 0; return 1 / z; }"), Error);
  EXPECT_THROW(run_source("int a[2]; int main() { return a[5]; }"), Error);
  Interpreter endless(minic::compile("int main() { while (1) { } return 0; }"));
  EXPECT_THROW(endless.run(/*max_instructions=*/10'000), Error);
}

TEST(InterpreterTest, ProfileCountsMatchLoopTripCounts) {
  const ir::TacProgram tac = minic::compile(R"(
    int acc;
    int main() {
      for (int i = 0; i < 6; i++) {
        for (int j = 0; j < 4; j++) { acc += i * j; }
      }
      return acc;
    }
  )");
  Interpreter interp(tac);
  const RunResult result = interp.run();

  // Find the inner-loop body block via the CDFG's loop analysis: depth-2
  // blocks must have executed 24 times.
  ir::Cdfg cdfg = ir::build_cdfg(tac);
  bool found_depth2 = false;
  for (const auto& block : cdfg.blocks()) {
    if (block.loop_depth == 2 &&
        block.dfg.op_mix().total_schedulable() > 0 &&
        result.profile.count(block.id) == 24) {
      found_depth2 = true;
    }
  }
  EXPECT_TRUE(found_depth2);
  EXPECT_EQ(result.return_value, 90);
}

TEST(InterpreterTest, DynamicAnalysisFeedsKernelExtraction) {
  // End-to-end front-end -> profile -> CDFG pipeline sanity.
  const ir::TacProgram tac = minic::compile(R"(
    int data[64];
    int main() {
      int acc = 0;
      for (int i = 0; i < 64; i++) {
        acc += data[i] * data[i];
      }
      return acc;
    }
  )");
  Interpreter interp(tac);
  const RunResult result = interp.run();
  EXPECT_GT(result.blocks_executed, 64u);
  EXPECT_GE(result.instructions_executed, 64u * 4u);
}

}  // namespace
}  // namespace amdrel::interp
