// Sweep service (core/sweep_service.h): the coordinator/worker split of
// sweep_design_space. The load-bearing property is byte-identity — a
// worker stream consumed back through the coordinator must rebuild
// EXACTLY the summary a single-process sweep produces, at any worker
// split, cold or cache-warm — plus the strict protocol validation that
// turns any malformed stream into a loud Error instead of a wrong
// artifact.

#include "core/sweep_service.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/sweep_cache.h"
#include "core/sweep_io.h"
#include "core/transport.h"
#include "support/error.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

SweepSpec small_spec(int threads, SweepCache* cache) {
  SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2};
  spec.strategies = {StrategyKind::kGreedyPaper, StrategyKind::kAnnealing};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.threads = threads;
  spec.cache = cache;
  return spec;
}

TEST(SweepServiceTest, PartitionShardsIsRoundRobinAndComplete) {
  const auto split = partition_shards(7, 3);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0], (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_EQ(split[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(split[2], (std::vector<std::size_t>{2, 5}));

  // Every shard appears exactly once, for any (count, workers) shape;
  // slot sizes are balanced to within one.
  for (const std::size_t count : {0u, 1u, 5u, 16u}) {
    for (const int workers : {1, 2, 3, 8}) {
      const auto parts = partition_shards(count, workers);
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(workers));
      std::vector<std::size_t> seen;
      std::size_t smallest = count, largest = 0;
      for (const auto& part : parts) {
        smallest = std::min(smallest, part.size());
        largest = std::max(largest, part.size());
        seen.insert(seen.end(), part.begin(), part.end());
      }
      std::sort(seen.begin(), seen.end());
      std::vector<std::size_t> expected(count);
      std::iota(expected.begin(), expected.end(), 0u);
      EXPECT_EQ(seen, expected) << count << " shards, " << workers;
      EXPECT_LE(largest - smallest, 1u) << count << " shards, " << workers;
    }
  }
  EXPECT_THROW(partition_shards(4, 0), Error);
  EXPECT_THROW(partition_shards(4, -1), Error);
}

// Runs the full worker->wire->coordinator loop in-process for a given
// worker split and returns the finalized summary, exercising exactly
// what serve_design_space does minus fork/pipe plumbing.
SweepSummary roundtrip(const std::vector<CorpusApp>& corpus,
                       const SweepSpec& spec, int workers) {
  const std::size_t shards = sweep_shard_count(corpus, spec);
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  SweepSummary summary;
  for (const CorpusApp& app : corpus) summary.apps.push_back(app.name);
  summary.cells.resize(shards * cells_per_shard);
  std::vector<std::size_t> shard_used(shards, 0);
  for (const auto& assigned : partition_shards(shards, workers)) {
    if (assigned.empty()) continue;
    std::stringstream wire;
    run_sweep_worker(corpus, spec, assigned, wire);
    consume_worker_stream(wire, corpus, spec, assigned, summary, shard_used);
  }
  finalize_sweep_summary(summary, shard_used, cells_per_shard);
  return summary;
}

TEST(SweepServiceTest, WorkerStreamRoundTripIsByteIdenticalToSweep) {
  const auto corpus = workloads::paper_corpus();
  const SweepSpec spec = small_spec(2, nullptr);
  const auto reference = sweep_design_space(corpus, spec);
  const std::string json = sweep_to_json(reference);
  const std::string csv = sweep_to_csv(reference);
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  for (const int workers : {1, 2, hw}) {
    const auto merged = roundtrip(corpus, spec, workers);
    EXPECT_EQ(sweep_to_json(merged), json) << workers << " workers";
    EXPECT_EQ(sweep_to_csv(merged), csv) << workers << " workers";
  }
}

TEST(SweepServiceTest, WarmCacheRoundTripStaysByteIdentical) {
  const auto corpus = workloads::paper_corpus();
  const std::string json =
      sweep_to_json(sweep_design_space(corpus, small_spec(2, nullptr)));
  SweepCache cache;
  // Cold distributed run populates the cache; warm rerun must hit every
  // cell and still reproduce the same bytes.
  EXPECT_EQ(sweep_to_json(roundtrip(corpus, small_spec(2, &cache), 2)), json);
  cache.reset_stats();
  EXPECT_EQ(sweep_to_json(roundtrip(corpus, small_spec(2, &cache), 3)), json);
  EXPECT_EQ(cache.stats().cell_misses, 0u);
  EXPECT_GT(cache.stats().cell_hits, 0u);
}

TEST(SweepServiceTest, WorkerRejectsBadShardAssignments) {
  const auto corpus = workloads::paper_corpus();
  const SweepSpec spec = small_spec(1, nullptr);
  const std::size_t shards = sweep_shard_count(corpus, spec);
  std::ostringstream sink;
  EXPECT_THROW(run_sweep_worker(corpus, spec, {shards}, sink), Error);
  EXPECT_THROW(run_sweep_worker(corpus, spec, {0, 0}, sink), Error);
}

// Shared fixture for the protocol-violation cases: one worker's valid
// stream, then a mutation, then the consumer must throw.
class StreamRejectionTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_ = workloads::paper_corpus();
    spec_ = small_spec(1, nullptr);
    assigned_ = {0, 1};
    std::ostringstream os;
    run_sweep_worker(corpus_, spec_, assigned_, os);
    wire_ = os.str();
  }

  void expect_rejected(const std::string& wire, const char* tag) {
    const std::size_t shards = sweep_shard_count(corpus_, spec_);
    SweepSummary summary;
    for (const CorpusApp& app : corpus_) summary.apps.push_back(app.name);
    summary.cells.resize(shards * sweep_cells_per_shard(spec_));
    std::vector<std::size_t> shard_used(shards, 0);
    std::istringstream in(wire);
    EXPECT_THROW(consume_worker_stream(in, corpus_, spec_, assigned_, summary,
                                       shard_used),
                 Error)
        << tag;
  }

  std::vector<CorpusApp> corpus_;
  SweepSpec spec_;
  std::vector<std::size_t> assigned_;
  std::string wire_;
};

TEST_F(StreamRejectionTest, RejectsProtocolVersionMismatch) {
  std::string wire = wire_;
  const std::string current =
      "\"protocol\":" + std::to_string(core::kSweepWireProtocolVersion);
  const auto pos = wire.find(current);
  ASSERT_NE(pos, std::string::npos);
  wire.replace(pos, current.size(), "\"protocol\":9999");
  expect_rejected(wire, "protocol_version");
}

TEST_F(StreamRejectionTest, RejectsTruncatedStream) {
  // Cut mid-way: the worker_done trailer never arrives.
  expect_rejected(wire_.substr(0, wire_.size() / 2), "truncated");
  // Losing only the trailer line must also be fatal.
  const auto done = wire_.rfind("{\"kind\":\"worker_done\"");
  ASSERT_NE(done, std::string::npos);
  expect_rejected(wire_.substr(0, done), "missing_done");
}

TEST_F(StreamRejectionTest, RejectsUnassignedShard) {
  // A stream claiming shard 2 when only {0, 1} were assigned.
  std::string wire = wire_;
  const std::string from = "{\"kind\":\"shard\",\"shard\":1";
  const auto pos = wire.find(from);
  ASSERT_NE(pos, std::string::npos);
  wire.replace(pos, from.size(), "{\"kind\":\"shard\",\"shard\":2");
  expect_rejected(wire, "unassigned_shard");
}

TEST_F(StreamRejectionTest, RejectsGarbageLine) {
  const auto first_line_end = wire_.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
  std::string wire = wire_;
  wire.insert(first_line_end + 1, "not json\n");
  expect_rejected(wire, "garbage");
}

TEST_F(StreamRejectionTest, RejectsEmptyStream) {
  expect_rejected("", "empty");
}

// End-to-end through real fork/exec: serve_design_space with /bin/sh
// workers that replay a pre-rendered valid stream must reproduce the
// sweep, and a worker that exits nonzero must fail the run.
#ifndef _WIN32
TEST(SweepServiceTest, ServeMergesCommandWorkers) {
  const auto corpus = workloads::paper_corpus();
  const SweepSpec spec = small_spec(1, nullptr);
  const std::string json = sweep_to_json(sweep_design_space(corpus, spec));

  // Render each possible single-worker assignment up front; the spawned
  // command is a shell that cats the right pre-rendered stream.
  const std::size_t shards = sweep_shard_count(corpus, spec);
  std::vector<std::string> streams;
  for (std::size_t s = 0; s < shards; ++s) {
    std::ostringstream os;
    run_sweep_worker(corpus, spec, {s}, os);
    streams.push_back(os.str());
  }
  const std::string dir = testing::TempDir();
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string path =
        dir + "sweep_service_stream_" + std::to_string(s) + ".ndjson";
    std::ofstream(path, std::ios::binary) << streams[s];
    paths.push_back(path);
  }

  ForkPipeTransport transport(
      [&](const std::vector<std::size_t>& assigned) {
        EXPECT_EQ(assigned.size(), 1u);
        return std::vector<std::string>{"/bin/cat", paths[assigned[0]]};
      });
  ServeOptions options;
  options.workers = static_cast<int>(shards);  // one shard per worker
  options.transport = &transport;
  const auto summary = serve_design_space(corpus, spec, options);
  EXPECT_EQ(sweep_to_json(summary), json);
  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(SweepServiceTest, ServeFailsWhenAWorkerExitsNonzero) {
  const auto corpus = workloads::paper_corpus();
  const SweepSpec spec = small_spec(1, nullptr);
  ForkPipeTransport transport([](const std::vector<std::size_t>&) {
    return std::vector<std::string>{"/bin/sh", "-c", "exit 3"};
  });
  ServeOptions options;
  options.workers = 2;
  options.transport = &transport;
  EXPECT_THROW(serve_design_space(corpus, spec, options), Error);
}
#endif  // !_WIN32

}  // namespace
}  // namespace amdrel::core
