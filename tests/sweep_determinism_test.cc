// Golden-file and determinism tests for the machine-readable sweep
// output (core/sweep_io.h).
//
// A fixed platform grid x {OFDM, JPEG} corpus sweep is rendered to JSON
// and CSV and pinned byte-for-byte against tests/golden/sweep.json.golden
// and tests/golden/sweep.csv.golden. The same sweep must also be
// byte-identical across thread counts (1, 2, hardware_concurrency) and
// across repeated runs — the determinism contract every later scaling PR
// (process sharding, caching) builds on. The JSON carries a
// schema_version field, so any intentional format change is an explicit,
// reviewed event:
//   ./build/tests/sweep_determinism_test --regen
// then review the diff of tests/golden/.

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/sweep_io.h"
#include "workloads/paper_models.h"

#ifndef AMDREL_GOLDEN_DIR
#error "AMDREL_GOLDEN_DIR must be defined by the build"
#endif

namespace amdrel {
namespace {

// The pinned sweep: the paper's Table-2/3 platform grid, default
// constraints (1/4, 1/2, 3/4 of each cell's all-fine cycles, so the same
// spec fits both apps' scales), all three strategies with a bounded
// branch-and-bound, the paper's kernel ordering.
core::SweepSpec golden_spec(int threads) {
  core::SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2, 3};
  spec.strategies = {core::StrategyKind::kGreedyPaper,
                     core::StrategyKind::kExhaustive,
                     core::StrategyKind::kAnnealing};
  spec.orderings = {core::KernelOrdering::kWeightDescending};
  spec.base.exhaustive_max_kernels = 12;
  spec.threads = threads;
  return spec;
}

core::SweepSummary run_sweep(int threads) {
  return core::sweep_design_space(workloads::paper_corpus(),
                                  golden_spec(threads));
}

std::string golden_path(const char* name) {
  return std::string(AMDREL_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& rendered, const char* name) {
  std::ifstream in(golden_path(name), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path(name)
                         << " (run with --regen to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rendered)
      << "sweep output drifted from " << golden_path(name)
      << "; if intentional, bump kSweepSchemaVersion when the schema "
         "changed, regenerate with --regen and review the diff";
}

TEST(SweepDeterminismTest, JsonMatchesCommittedGolden) {
  expect_matches_golden(core::sweep_to_json(run_sweep(2)),
                        "sweep.json.golden");
}

TEST(SweepDeterminismTest, CsvMatchesCommittedGolden) {
  expect_matches_golden(core::sweep_to_csv(run_sweep(2)), "sweep.csv.golden");
}

TEST(SweepDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  const std::string serial = core::sweep_to_json(run_sweep(1));
  EXPECT_EQ(serial, core::sweep_to_json(run_sweep(2)));
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(serial, core::sweep_to_json(run_sweep(hw)));
}

TEST(SweepDeterminismTest, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(core::sweep_to_json(run_sweep(2)),
            core::sweep_to_json(run_sweep(2)));
  EXPECT_EQ(core::sweep_to_csv(run_sweep(2)),
            core::sweep_to_csv(run_sweep(2)));
}

TEST(SweepDeterminismTest, TableRenderingIsDeterministicToo) {
  EXPECT_EQ(core::describe(run_sweep(1)), core::describe(run_sweep(4)));
}

}  // namespace
}  // namespace amdrel

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      const auto summary = amdrel::run_sweep(2);
      std::ofstream json(amdrel::golden_path("sweep.json.golden"),
                         std::ios::binary);
      json << amdrel::core::sweep_to_json(summary);
      std::ofstream csv(amdrel::golden_path("sweep.csv.golden"),
                        std::ios::binary);
      csv << amdrel::core::sweep_to_csv(summary);
      return json.good() && csv.good() ? 0 : 1;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
