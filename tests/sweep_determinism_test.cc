// Golden-file and determinism tests for the machine-readable sweep
// output (core/sweep_io.h).
//
// A fixed platform grid x {OFDM, JPEG} corpus sweep is rendered to JSON
// and CSV and pinned byte-for-byte against tests/golden/sweep.json.golden
// and tests/golden/sweep.csv.golden. The same sweep must also be
// byte-identical across thread counts (1, 2, hardware_concurrency) and
// across repeated runs — the determinism contract every later scaling PR
// (process sharding, caching) builds on. The JSON carries a
// schema_version field, so any intentional format change is an explicit,
// reviewed event:
//   ./build/tests/sweep_determinism_test --regen
// then review the diff of tests/golden/.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/sweep_cache.h"
#include "core/sweep_io.h"
#include "workloads/paper_models.h"

#ifndef AMDREL_GOLDEN_DIR
#error "AMDREL_GOLDEN_DIR must be defined by the build"
#endif

namespace amdrel {
namespace {

// The pinned sweep: the paper's Table-2/3 platform grid, default
// constraints (1/4, 1/2, 3/4 of each cell's all-fine cycles, so the same
// spec fits both apps' scales), all three strategies with a bounded
// branch-and-bound, the paper's kernel ordering.
core::SweepSpec golden_spec(int threads) {
  core::SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2, 3};
  spec.strategies = {core::StrategyKind::kGreedyPaper,
                     core::StrategyKind::kExhaustive,
                     core::StrategyKind::kAnnealing};
  spec.orderings = {core::KernelOrdering::kWeightDescending};
  spec.base.exhaustive_max_kernels = 12;
  spec.threads = threads;
  return spec;
}

core::SweepSummary run_sweep(int threads) {
  return core::sweep_design_space(workloads::paper_corpus(),
                                  golden_spec(threads));
}

std::string golden_path(const char* name) {
  return std::string(AMDREL_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& rendered, const char* name) {
  std::ifstream in(golden_path(name), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path(name)
                         << " (run with --regen to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rendered)
      << "sweep output drifted from " << golden_path(name)
      << "; if intentional, bump kSweepSchemaVersion when the schema "
         "changed, regenerate with --regen and review the diff";
}

TEST(SweepDeterminismTest, JsonMatchesCommittedGolden) {
  expect_matches_golden(core::sweep_to_json(run_sweep(2)),
                        "sweep.json.golden");
}

TEST(SweepDeterminismTest, CsvMatchesCommittedGolden) {
  expect_matches_golden(core::sweep_to_csv(run_sweep(2)), "sweep.csv.golden");
}

TEST(SweepDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  const std::string serial = core::sweep_to_json(run_sweep(1));
  EXPECT_EQ(serial, core::sweep_to_json(run_sweep(2)));
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(serial, core::sweep_to_json(run_sweep(hw)));
}

TEST(SweepDeterminismTest, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(core::sweep_to_json(run_sweep(2)),
            core::sweep_to_json(run_sweep(2)));
  EXPECT_EQ(core::sweep_to_csv(run_sweep(2)),
            core::sweep_to_csv(run_sweep(2)));
}

TEST(SweepDeterminismTest, TableRenderingIsDeterministicToo) {
  EXPECT_EQ(core::describe(run_sweep(1)), core::describe(run_sweep(4)));
}

// The caching acceptance property: a warm-cache rerun of the golden
// sweep is byte-identical to the uncached emission at every thread
// count AND constructs zero new mappers — repeated (app, platform) cell
// groups are served entirely from the memo.
TEST(SweepDeterminismTest, WarmCacheRerunIsByteIdenticalAndMapperFree) {
  const std::string uncached_json = core::sweep_to_json(run_sweep(2));
  const std::string uncached_csv = core::sweep_to_csv(run_sweep(2));

  core::SweepCache cache;
  auto run_cached = [&](int threads) {
    core::SweepSpec spec = golden_spec(threads);
    spec.cache = &cache;
    return core::sweep_design_space(workloads::paper_corpus(), spec);
  };

  // Cold fill: already byte-identical to the uncached sweep.
  const auto cold = run_cached(2);
  EXPECT_EQ(core::sweep_to_json(cold), uncached_json);
  EXPECT_EQ(core::sweep_to_csv(cold), uncached_csv);

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  for (const int threads : {1, 2, hw}) {
    cache.reset_stats();
    const auto warm = run_cached(threads);
    EXPECT_EQ(core::sweep_to_json(warm), uncached_json)
        << threads << " threads";
    EXPECT_EQ(core::sweep_to_csv(warm), uncached_csv)
        << threads << " threads";
    const core::SweepCacheStats stats = cache.stats();
    EXPECT_EQ(stats.cell_misses, 0u) << threads << " threads";
    EXPECT_EQ(stats.mapper_builds, 0u) << threads << " threads";
    EXPECT_EQ(stats.mapper_restores, 0u) << threads << " threads";
  }
}

// Same property across processes: a cache persisted to disk and loaded
// into a fresh store serves the golden sweep without recomputing.
TEST(SweepDeterminismTest, PersistedCacheServesGoldenSweep) {
  const std::string uncached_json = core::sweep_to_json(run_sweep(2));
  const std::string path = testing::TempDir() + "golden_sweep_cache.jsonl";
  {
    core::SweepCache cache;
    core::SweepSpec spec = golden_spec(2);
    spec.cache = &cache;
    core::sweep_design_space(workloads::paper_corpus(), spec);
    std::string error;
    ASSERT_TRUE(cache.save(path, &error)) << error;
  }
  core::SweepCache fresh;
  std::string error;
  ASSERT_TRUE(fresh.load(path, &error)) << error;
  core::SweepSpec spec = golden_spec(2);
  spec.cache = &fresh;
  const auto warm =
      core::sweep_design_space(workloads::paper_corpus(), spec);
  EXPECT_EQ(core::sweep_to_json(warm), uncached_json);
  EXPECT_EQ(fresh.stats().cell_misses, 0u);
  EXPECT_EQ(fresh.stats().mapper_builds, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amdrel

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      const auto summary = amdrel::run_sweep(2);
      std::ofstream json(amdrel::golden_path("sweep.json.golden"),
                         std::ios::binary);
      json << amdrel::core::sweep_to_json(summary);
      std::ofstream csv(amdrel::golden_path("sweep.csv.golden"),
                        std::ios::binary);
      csv << amdrel::core::sweep_to_csv(summary);
      return json.good() && csv.good() ? 0 : 1;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
