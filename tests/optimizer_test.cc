#include "minic/optimizer.h"

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "minic/frontend.h"
#include "workloads/golden.h"
#include "workloads/minic_sources.h"

namespace amdrel::minic {
namespace {

int count_op(const ir::TacProgram& tac, ir::OpKind op) {
  int count = 0;
  for (const auto& block : tac.blocks) {
    for (const auto& instr : block.body) count += instr.op == op;
  }
  return count;
}

int count_body_instrs(const ir::TacProgram& tac) {
  int count = 0;
  for (const auto& block : tac.blocks) {
    count += static_cast<int>(block.body.size());
  }
  return count;
}

TEST(OptimizerTest, FoldsConstantExpressions) {
  ir::TacProgram tac = compile("int main() { return (2 + 3) * 4; }");
  optimize(tac);
  EXPECT_EQ(count_op(tac, ir::OpKind::kAdd), 0);
  EXPECT_EQ(count_op(tac, ir::OpKind::kMul), 0);
  interp::Interpreter interp(tac);
  EXPECT_EQ(interp.run().return_value, 20);
}

TEST(OptimizerTest, AlgebraicIdentities) {
  ir::TacProgram tac = compile(R"(
    int in[1];
    int main() {
      int x = in[0];
      int a = x * 1;
      int b = a + 0;
      int c = b << 0;
      int d = c - c;
      return b + d;
    }
  )");
  optimize(tac);
  EXPECT_EQ(count_op(tac, ir::OpKind::kMul), 0);
  EXPECT_EQ(count_op(tac, ir::OpKind::kShl), 0);
  EXPECT_EQ(count_op(tac, ir::OpKind::kSub), 0);
  interp::Interpreter interp(tac);
  interp.set_input("in", {17});
  EXPECT_EQ(interp.run().return_value, 17);
}

TEST(OptimizerTest, DeadCodeEliminated) {
  ir::TacProgram tac = compile(R"(
    int main() {
      int unused = 3 * 14;
      int used = 5;
      return used;
    }
  )");
  const int before = count_body_instrs(tac);
  optimize(tac);
  EXPECT_LT(count_body_instrs(tac), before);
  interp::Interpreter interp(tac);
  EXPECT_EQ(interp.run().return_value, 5);
}

TEST(OptimizerTest, ConstantBranchBecomesJump) {
  ir::TacProgram tac = compile(R"(
    int main() {
      if (1 < 2) { return 10; }
      return 20;
    }
  )");
  optimize(tac);
  for (const auto& block : tac.blocks) {
    if (block.term.kind == ir::Terminator::Kind::kBr) {
      // No branch on a constant condition may remain in the entry path.
      EXPECT_NE(block.id, tac.entry);
    }
  }
  interp::Interpreter interp(tac);
  EXPECT_EQ(interp.run().return_value, 10);
}

TEST(OptimizerTest, StoresAreNeverRemoved) {
  ir::TacProgram tac = compile(R"(
    int out[1];
    int main() { out[0] = 42; return 0; }
  )");
  optimize(tac);
  EXPECT_EQ(count_op(tac, ir::OpKind::kStore), 1);
  interp::Interpreter interp(tac);
  interp.run();
  EXPECT_EQ(interp.array("out")[0], 42);
}

TEST(OptimizerTest, ReachesFixedPoint) {
  ir::TacProgram tac = compile(R"(
    int main() {
      int a = 1 + 1;
      int b = a + a;
      int c = b * b;
      return c;
    }
  )");
  const int first = optimize(tac);
  EXPECT_GT(first, 0);
  EXPECT_EQ(optimize(tac), 0);  // idempotent once converged
  interp::Interpreter interp(tac);
  EXPECT_EQ(interp.run().return_value, 16);
}

TEST(OptimizerTest, PreservesOfdmSemantics) {
  const int symbols = 2;
  ir::TacProgram tac = compile(workloads::ofdm_source(symbols), "ofdm");
  const int removed = optimize(tac);
  EXPECT_GT(removed, 0);

  const auto bits = workloads::random_bits(symbols * 96, 11);
  interp::Interpreter interp(std::move(tac));
  interp.set_input("bits", bits);
  const auto result = interp.run();
  const auto golden = workloads::golden_ofdm(bits, symbols);
  EXPECT_EQ(result.return_value, golden.checksum);
  EXPECT_EQ(interp.array("out_re"), golden.out_re);
}

TEST(OptimizerTest, PreservesJpegSemantics) {
  ir::TacProgram tac = compile(workloads::jpeg_source(16, 16), "jpeg");
  optimize(tac);
  const auto image = workloads::random_pixels(256, 23);
  interp::Interpreter interp(std::move(tac));
  interp.set_input("image", image);
  const auto result = interp.run();
  EXPECT_EQ(result.return_value, workloads::golden_jpeg(image, 16, 16).bit_cost);
}

TEST(OptimizerTest, OptimizedProgramRunsFewerInstructions) {
  const std::string source = workloads::fir_source(64);
  ir::TacProgram plain = compile(source, "fir");
  ir::TacProgram optimized = compile(source, "fir");
  optimize(optimized);

  const auto samples = workloads::random_samples(64 + 16, 3);
  interp::Interpreter a(std::move(plain));
  interp::Interpreter b(std::move(optimized));
  a.set_input("samples", samples);
  b.set_input("samples", samples);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.return_value, rb.return_value);
  EXPECT_LT(rb.instructions_executed, ra.instructions_executed);
}

TEST(OptimizerTest, SelectiveOptions) {
  ir::TacProgram tac = compile("int main() { return 2 + 3; }");
  OptimizeOptions options;
  options.fold_constants = false;
  options.simplify_algebra = false;
  options.eliminate_dead_code = false;
  options.propagate_copies = false;
  EXPECT_EQ(optimize(tac, options), 0);
  EXPECT_EQ(count_op(tac, ir::OpKind::kAdd), 1);
}

}  // namespace
}  // namespace amdrel::minic
