// Platform-grid x corpus sweep: grid-spec parsing, cell enumeration
// order, Pareto-front invariants, and the cross-check property that pins
// the sharded sweep to the old semantics — every cell of a batched sweep
// must be identical to an independent single-platform, single-app
// DesignSpaceExplorer run.

#include "core/explorer.h"

#include <algorithm>
#include <cstdio>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "core/report.h"
#include "core/sweep_io.h"
#include "support/error.h"
#include "synth/cdfg_generator.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

using workloads::build_ofdm_model;
using workloads::paper_corpus;

TEST(PlatformGridTest, ParsesAreasCrossCgcCounts) {
  const auto grid = parse_platform_grid("1500,5000x2,3");
  ASSERT_TRUE(grid.has_value());
  EXPECT_EQ(grid->areas, (std::vector<double>{1500, 5000}));
  EXPECT_EQ(grid->cgc_counts, (std::vector<int>{2, 3}));
  EXPECT_EQ(grid->size(), 4u);
}

TEST(PlatformGridTest, ParsesSingleCell) {
  const auto grid = parse_platform_grid("800x1");
  ASSERT_TRUE(grid.has_value());
  EXPECT_EQ(grid->size(), 1u);
  EXPECT_EQ(grid->areas.front(), 800);
  EXPECT_EQ(grid->cgc_counts.front(), 1);
}

TEST(PlatformGridTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",          "1500",        "x",         "1500x",     "x2",
      "1500x2x3",  "1500,x2",     "1500x2,",   "a,bx2",     "1500x2.5",
      "-1500x2",   "0x2",         "1500x0",    "1500x-2",   "1500x9999",
      "nanx2",     "infx2",       "1500 x2",   "1500x 2",   "1,,2x3",
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(parse_platform_grid(spec).has_value()) << "'" << spec << "'";
  }
}

TEST(PlatformCostTest, AreaPlusCgcNodeEquivalent) {
  // Default fine-grain areas: MUL 60 + ALU 12 = 72 per CGC node; a 2x2
  // CGC adds 288 area-equivalent units.
  EXPECT_DOUBLE_EQ(
      platform::platform_cost(platform::make_paper_platform(1500, 2)),
      1500 + 2 * 4 * 72.0);
  EXPECT_DOUBLE_EQ(
      platform::platform_cost(platform::make_paper_platform(5000, 3)),
      5000 + 3 * 4 * 72.0);
}

TEST(SweepTest, CellOrderIsAppMajorThenPlatformThenEngineGrid) {
  const auto corpus = paper_corpus();
  SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2, 3};
  spec.constraints = {50'000, 200'000};
  spec.strategies = {StrategyKind::kGreedyPaper, StrategyKind::kAnnealing};
  spec.orderings = {KernelOrdering::kWeightDescending,
                    KernelOrdering::kBenefitDescending};
  spec.threads = 2;
  const auto summary = sweep_design_space(corpus, spec);
  ASSERT_EQ(summary.apps, (std::vector<std::string>{"ofdm", "jpeg"}));
  ASSERT_EQ(summary.cells.size(), 2u * 4u * 2u * 2u * 2u);
  std::size_t index = 0;
  for (std::size_t app = 0; app < corpus.size(); ++app) {
    for (const double area : spec.grid.areas) {
      for (const int cgcs : spec.grid.cgc_counts) {
        for (const std::int64_t constraint : spec.constraints) {
          for (const StrategyKind strategy : spec.strategies) {
            for (const KernelOrdering ordering : spec.orderings) {
              const SweepCell& cell = summary.cells[index++];
              EXPECT_EQ(cell.app, app);
              EXPECT_EQ(cell.a_fpga, area);
              EXPECT_EQ(cell.cgcs, cgcs);
              EXPECT_EQ(cell.constraint, constraint);
              EXPECT_EQ(cell.strategy, strategy);
              EXPECT_EQ(cell.ordering, ordering);
            }
          }
        }
      }
    }
  }
}

// The tentpole property: random platform grids, batched sweep vs the
// standalone single-platform, single-app explorer — every cell must carry
// the same report, rendered byte-identical.
class SweepCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweepCrossCheck, CellsEqualStandaloneExplorerRuns) {
  std::mt19937_64 rng(GetParam());
  const std::vector<double> area_pool = {800, 1500, 3000, 5000, 8000};
  const std::vector<int> cgc_pool = {1, 2, 3, 4};

  SweepSpec spec;
  spec.grid.areas.clear();
  spec.grid.cgc_counts.clear();
  const std::size_t n_areas = 1 + rng() % 3;
  const std::size_t n_cgcs = 1 + rng() % 2;
  for (std::size_t i = 0; i < n_areas; ++i) {
    spec.grid.areas.push_back(area_pool[rng() % area_pool.size()]);
  }
  for (std::size_t i = 0; i < n_cgcs; ++i) {
    spec.grid.cgc_counts.push_back(cgc_pool[rng() % cgc_pool.size()]);
  }
  spec.strategies = {StrategyKind::kGreedyPaper, StrategyKind::kExhaustive};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.base.exhaustive_max_kernels = 10;
  spec.threads = 3;

  std::vector<CorpusApp> corpus(2);
  workloads::PaperApp ofdm = build_ofdm_model();
  corpus[0].name = "ofdm";
  corpus[0].cdfg = std::move(ofdm.cdfg);
  corpus[0].profile = std::move(ofdm.profile);
  synth::CdfgGenConfig config;
  config.segments = 4;
  config.seed = GetParam();
  synth::SyntheticApp synthetic = synth::generate_app(config);
  corpus[1].name = "synthetic";
  corpus[1].cdfg = std::move(synthetic.cdfg);
  corpus[1].profile = std::move(synthetic.profile);

  const auto summary = sweep_design_space(corpus, spec);

  // Replay every (app, platform) group through the standalone explorer
  // with an identical engine grid and compare cell by cell.
  std::size_t index = 0;
  for (const CorpusApp& app : corpus) {
    for (const double area : spec.grid.areas) {
      for (const int cgcs : spec.grid.cgc_counts) {
        const auto p = platform::make_paper_platform(area, cgcs);
        ExploreSpec standalone;
        standalone.constraints = spec.constraints;
        standalone.strategies = spec.strategies;
        standalone.orderings = spec.orderings;
        standalone.base = spec.base;
        standalone.threads = 1;
        const auto expected =
            explore_design_space(app.cdfg, app.profile, p, standalone);
        for (const ExplorePoint& point : expected.points) {
          const SweepCell& cell = summary.cells[index++];
          EXPECT_EQ(cell.constraint, point.constraint);
          EXPECT_EQ(cell.strategy, point.strategy);
          EXPECT_EQ(cell.ordering, point.ordering);
          EXPECT_EQ(cell.report.moved, point.report.moved);
          EXPECT_EQ(cell.report.final_cycles, point.report.final_cycles);
          EXPECT_EQ(cell.report.met, point.report.met);
          EXPECT_EQ(cell.report.engine_iterations,
                    point.report.engine_iterations);
          // Byte-identical when rendered through the same report path.
          EXPECT_EQ(describe(cell.report, app.cdfg),
                    describe(point.report, app.cdfg));
        }
      }
    }
  }
  EXPECT_EQ(index, summary.cells.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(SweepTest, ParetoFrontInvariants) {
  const auto corpus = paper_corpus();
  SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2, 3};
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.threads = 2;
  const auto summary = sweep_design_space(corpus, spec);

  auto dominates = [](const SweepCell& b, const SweepCell& a) {
    const bool no_worse = b.report.final_cycles <= a.report.final_cycles &&
                          b.report.moved.size() <= a.report.moved.size() &&
                          b.platform_cost <= a.platform_cost &&
                          b.report.energy.total_pj() <=
                              a.report.energy.total_pj();
    const bool better = b.report.final_cycles < a.report.final_cycles ||
                        b.report.moved.size() < a.report.moved.size() ||
                        b.platform_cost < a.platform_cost ||
                        b.report.energy.total_pj() <
                            a.report.energy.total_pj();
    return no_worse && better;
  };

  ASSERT_EQ(summary.app_pareto.size(), corpus.size());
  for (std::size_t app = 0; app < corpus.size(); ++app) {
    EXPECT_FALSE(summary.app_pareto[app].empty());
    for (const std::size_t i : summary.app_pareto[app]) {
      ASSERT_LT(i, summary.cells.size());
      EXPECT_EQ(summary.cells[i].app, app);
      EXPECT_TRUE(summary.cells[i].on_app_pareto);
      for (const SweepCell& other : summary.cells) {
        if (other.app != app) continue;
        EXPECT_FALSE(dominates(other, summary.cells[i]));
      }
    }
  }
  EXPECT_FALSE(summary.global_pareto.empty());
  for (const std::size_t i : summary.global_pareto) {
    EXPECT_TRUE(summary.cells[i].on_global_pareto);
    // Global front cells are on their app's front too (app cells are a
    // subset of all cells).
    EXPECT_TRUE(summary.cells[i].on_app_pareto);
    for (const SweepCell& other : summary.cells) {
      EXPECT_FALSE(dominates(other, summary.cells[i]));
    }
  }
  // Off-front cells are dominated by a same-app cell.
  for (const SweepCell& cell : summary.cells) {
    if (cell.on_app_pareto) continue;
    bool dominated = false;
    for (const SweepCell& other : summary.cells) {
      if (other.app != cell.app) continue;
      dominated = dominated || dominates(other, cell);
    }
    EXPECT_TRUE(dominated);
  }
}

TEST(SweepTest, MovedNamesMatchReportBlocks) {
  const auto corpus = paper_corpus();
  SweepSpec spec;
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.threads = 1;
  const auto summary = sweep_design_space(corpus, spec);
  for (const SweepCell& cell : summary.cells) {
    ASSERT_EQ(cell.moved_names.size(), cell.report.moved.size());
    for (std::size_t m = 0; m < cell.moved_names.size(); ++m) {
      EXPECT_EQ(cell.moved_names[m],
                corpus[cell.app].cdfg.block(cell.report.moved[m]).name);
    }
  }
}

TEST(SweepTest, EmptyCorpusAndEmptyGridRejected) {
  const auto corpus = paper_corpus();
  EXPECT_THROW(sweep_design_space({}, SweepSpec{}), Error);
  SweepSpec no_grid;
  no_grid.grid.areas.clear();
  EXPECT_THROW(sweep_design_space(corpus, no_grid), Error);
  SweepSpec no_strategies;
  no_strategies.strategies.clear();
  EXPECT_THROW(sweep_design_space(corpus, no_strategies), Error);

  // Duplicate app names would emit duplicate JSON app_pareto keys.
  auto duplicated = paper_corpus();
  duplicated[1].name = duplicated[0].name;
  SweepSpec tiny;
  tiny.strategies = {StrategyKind::kGreedyPaper};
  EXPECT_THROW(sweep_design_space(duplicated, tiny), Error);
}

TEST(SweepTest, EnergyBudgetAxisMultipliesCells) {
  const auto corpus = paper_corpus();
  SweepSpec spec;
  spec.grid.areas = {1500};
  spec.grid.cgc_counts = {2};
  spec.constraints = {workloads::kOfdmTimingConstraint};
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.base.cost.objective.kind = ObjectiveKind::kEnergy;
  spec.energy_budgets = {1.0e6, 7.0e5};
  spec.threads = 1;
  const auto summary = sweep_design_space(corpus, spec);
  // app x platform x constraint x BUDGET x strategy x ordering.
  ASSERT_EQ(summary.cells.size(), 2u * 1u * 1u * 2u * 1u * 1u);
  EXPECT_EQ(summary.cells[0].energy_budget_pj, 1.0e6);
  EXPECT_EQ(summary.cells[1].energy_budget_pj, 7.0e5);
  for (const SweepCell& cell : summary.cells) {
    EXPECT_EQ(cell.report.objective, ObjectiveKind::kEnergy);
    EXPECT_EQ(cell.report.energy_budget_pj, cell.energy_budget_pj);
    // met is the energy test under kEnergy.
    EXPECT_EQ(cell.report.met,
              cell.report.energy.total_pj() <= cell.energy_budget_pj);
  }
  // OFDM: 1e6 pJ is reachable after one move, 7e5 pJ needs four.
  EXPECT_TRUE(summary.cells[0].report.met);
  EXPECT_EQ(summary.cells[0].report.moved.size(), 1u);
  EXPECT_TRUE(summary.cells[1].report.met);
  EXPECT_EQ(summary.cells[1].report.moved.size(), 4u);
}

TEST(SweepTest, EnergyParetoAxisKeepsLowEnergyCells) {
  // Two cells with identical cycles/moves/platform cost but different
  // energy: the energy axis must keep the cheaper one undominated. The
  // timing-driven OFDM split at A=1500 vs A=5000 differs in reconfig
  // energy only when the timing results coincide — so instead compare
  // via the JSON-visible invariant: every cell beaten on all four axes
  // is off the front.
  const auto corpus = paper_corpus();
  SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2};
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.threads = 2;
  const auto summary = sweep_design_space(corpus, spec);
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const SweepCell& a = summary.cells[i];
    bool dominated = false;
    for (const SweepCell& b : summary.cells) {
      if (&b == &a) continue;
      const bool no_worse =
          b.report.final_cycles <= a.report.final_cycles &&
          b.report.moved.size() <= a.report.moved.size() &&
          b.platform_cost <= a.platform_cost &&
          b.report.energy.total_pj() <= a.report.energy.total_pj();
      const bool better =
          b.report.final_cycles < a.report.final_cycles ||
          b.report.moved.size() < a.report.moved.size() ||
          b.platform_cost < a.platform_cost ||
          b.report.energy.total_pj() < a.report.energy.total_pj();
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    EXPECT_EQ(a.on_global_pareto, !dominated) << "cell " << i;
  }
}

TEST(SweepTest, EnergySweepCachedEqualsUncachedAnyThreads) {
  const auto corpus = paper_corpus();
  auto spec = [&](int threads, SweepCache* cache) {
    SweepSpec s;
    s.grid.areas = {1500, 5000};
    s.grid.cgc_counts = {2};
    s.strategies = {StrategyKind::kGreedyPaper, StrategyKind::kExhaustive};
    s.orderings = {KernelOrdering::kWeightDescending};
    s.base.cost.objective.kind = ObjectiveKind::kEnergy;
    s.base.exhaustive_max_kernels = 10;
    s.energy_budgets = {1.0e6, 1.18e8};
    s.threads = threads;
    s.cache = cache;
    return s;
  };
  const std::string uncached =
      sweep_to_json(sweep_design_space(corpus, spec(2, nullptr)));
  SweepCache cache;
  const auto cold = sweep_design_space(corpus, spec(2, &cache));
  EXPECT_EQ(sweep_to_json(cold), uncached);
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  for (const int threads : {1, 2, hw}) {
    cache.reset_stats();
    const auto warm = sweep_design_space(corpus, spec(threads, &cache));
    EXPECT_EQ(sweep_to_json(warm), uncached) << threads << " threads";
    EXPECT_EQ(cache.stats().cell_misses, 0u) << threads << " threads";
    EXPECT_EQ(cache.stats().mapper_builds, 0u) << threads << " threads";
  }
  // And across a persistence round trip: energy doubles are stored as
  // bit patterns, so the reloaded cache serves byte-identical cells.
  const std::string path = testing::TempDir() + "energy_sweep_cache.jsonl";
  std::string error;
  ASSERT_TRUE(cache.save(path, &error)) << error;
  SweepCache fresh;
  ASSERT_TRUE(fresh.load(path, &error)) << error;
  const auto reloaded = sweep_design_space(corpus, spec(2, &fresh));
  EXPECT_EQ(sweep_to_json(reloaded), uncached);
  EXPECT_EQ(fresh.stats().cell_misses, 0u);
  std::remove(path.c_str());
}

TEST(SweepIoTest, JsonEmitsEnergyColumns) {
  const auto corpus = paper_corpus();
  SweepSpec spec;
  spec.grid.areas = {1500};
  spec.grid.cgc_counts = {2};
  spec.constraints = {workloads::kOfdmTimingConstraint};
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.threads = 1;
  const auto summary = sweep_design_space(corpus, spec);
  const std::string json = sweep_to_json(summary);
  EXPECT_NE(json.find("\"objective\": \"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"energy_budget_pj\": "), std::string::npos);
  EXPECT_NE(json.find("\"initial_energy_pj\": "), std::string::npos);
  EXPECT_NE(json.find("\"energy_pj\": "), std::string::npos);
  EXPECT_NE(json.find("\"energy_reduction_percent\": "), std::string::npos);
  const std::string csv = sweep_to_csv(summary);
  EXPECT_NE(csv.find(",objective,energy_budget_pj,"), std::string::npos);
  EXPECT_NE(csv.find(",initial_energy_pj,energy_pj,"), std::string::npos);
}

TEST(SweepIoTest, JsonDeclaresSchemaVersionAndCellCountMatchesCsv) {
  const auto corpus = paper_corpus();
  SweepSpec spec;
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.threads = 1;
  const auto summary = sweep_design_space(corpus, spec);
  const std::string json = sweep_to_json(summary);
  EXPECT_NE(json.find("\"schema_version\": " +
                      std::to_string(kSweepSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"apps\": [\"ofdm\", \"jpeg\"]"), std::string::npos);

  const std::string csv = sweep_to_csv(summary);
  const std::size_t csv_rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(csv_rows, summary.cells.size() + 1);  // header + one per cell
}

TEST(SweepTest, TinyAppDefaultConstraintSlotsCompacted) {
  // One corpus app whose all-fine cycle count collapses the default 1/4,
  // 1/2, 3/4 fractions to the single clamped constraint 1 (see the
  // explorer test of the same name), swept next to OFDM whose fractions
  // stay distinct: the tiny app's shards fill one constraint slot each
  // and the unused tail must be compacted away, not emitted as
  // uninitialized cells.
  CorpusApp tiny;
  tiny.name = "tiny";
  tiny.cdfg = ir::Cdfg("tiny");
  const ir::BlockId b = tiny.cdfg.add_block();
  ir::Dfg& dfg = tiny.cdfg.block(b).dfg;
  const ir::NodeId in = dfg.add_node(ir::OpKind::kInput);
  const ir::NodeId sum = dfg.add_node(ir::OpKind::kAdd, {in, in});
  dfg.add_node(ir::OpKind::kOutput, {sum});
  tiny.cdfg.set_entry(b);

  std::vector<CorpusApp> corpus;
  corpus.push_back(std::move(tiny));
  const workloads::PaperApp ofdm = build_ofdm_model();
  corpus.push_back({"ofdm", ofdm.cdfg, ofdm.profile});

  SweepSpec spec;  // default constraints
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2};
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.threads = 2;
  const auto summary = sweep_design_space(corpus, spec);

  // tiny: 2 platforms x 1 deduped constraint; ofdm: 2 platforms x 3.
  ASSERT_EQ(summary.cells.size(), 2u * 1u + 2u * 3u);
  for (const SweepCell& cell : summary.cells) {
    EXPECT_GE(cell.constraint, 1) << summary.apps[cell.app];
    if (cell.app == 0) EXPECT_EQ(cell.constraint, 1);
  }
  // App-major cell order survives the compaction.
  EXPECT_EQ(summary.cells[0].app, 0u);
  EXPECT_EQ(summary.cells[1].app, 0u);
  for (std::size_t i = 2; i < summary.cells.size(); ++i) {
    EXPECT_EQ(summary.cells[i].app, 1u);
  }
  // The emitted formats agree with the compacted cell count.
  const std::string csv = sweep_to_csv(summary);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            summary.cells.size() + 1);
}

}  // namespace
}  // namespace amdrel::core
