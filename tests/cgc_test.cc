#include "coarsegrain/cgc_mapper.h"
#include "coarsegrain/cgc_scheduler.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "synth/dfg_generator.h"

namespace amdrel::coarsegrain {
namespace {

using ir::Dfg;
using ir::NodeId;
using ir::OpKind;

platform::CgcModel two_2x2() {
  platform::CgcModel cgc;
  cgc.count = 2;
  cgc.rows = 2;
  cgc.cols = 2;
  return cgc;
}

TEST(CgcSchedulerTest, MultiplyAddChainsInOneCycle) {
  // (a * b) + c : the paper's canonical complex operation — one cycle.
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId b = dfg.add_node(OpKind::kInput, {}, "b");
  const NodeId c = dfg.add_node(OpKind::kInput, {}, "c");
  const NodeId mul = dfg.add_node(OpKind::kMul, {a, b});
  const NodeId add = dfg.add_node(OpKind::kAdd, {mul, c});
  dfg.add_node(OpKind::kOutput, {add});

  const auto sched = schedule_dfg_on_cgc(dfg, two_2x2());
  EXPECT_EQ(sched.start[mul], 0);
  EXPECT_EQ(sched.start[add], 0);  // chained below the multiplier
  EXPECT_EQ(sched.placement[mul].cgc, sched.placement[add].cgc);
  EXPECT_GT(sched.placement[add].row, sched.placement[mul].row);
  EXPECT_EQ(sched.total_cgc_cycles, 1);
}

TEST(CgcSchedulerTest, ChainDeeperThanRowsTakesTwoCycles) {
  // A 3-deep chain cannot fit a 2-row CGC in one cycle.
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId n1 = dfg.add_node(OpKind::kAdd, {a, a});
  const NodeId n2 = dfg.add_node(OpKind::kMul, {n1, a});
  const NodeId n3 = dfg.add_node(OpKind::kSub, {n2, a});
  dfg.add_node(OpKind::kOutput, {n3});
  const auto sched = schedule_dfg_on_cgc(dfg, two_2x2());
  EXPECT_EQ(sched.total_cgc_cycles, 2);
}

TEST(CgcSchedulerTest, SlotsLimitParallelism) {
  // 9 independent ops on two 2x2 CGCs (8 slots) need two cycles.
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  for (int i = 0; i < 9; ++i) dfg.add_node(OpKind::kAdd, {a, a});
  const auto sched = schedule_dfg_on_cgc(dfg, two_2x2());
  EXPECT_EQ(sched.total_cgc_cycles, 2);
}

TEST(CgcSchedulerTest, MoreCgcsReduceLatency) {
  synth::DfgGenConfig config;
  config.alu_ops = 40;
  config.mul_ops = 12;
  config.load_ops = 0;
  config.store_ops = 0;
  config.target_width = 8;
  config.seed = 7;
  const Dfg dfg = synth::generate_dfg(config);
  platform::CgcModel small = two_2x2();
  platform::CgcModel big = two_2x2();
  big.count = 3;
  const auto sched_small = schedule_dfg_on_cgc(dfg, small);
  const auto sched_big = schedule_dfg_on_cgc(dfg, big);
  EXPECT_LE(sched_big.total_cgc_cycles, sched_small.total_cgc_cycles);
}

TEST(CgcSchedulerTest, RejectsDivision) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  dfg.add_node(OpKind::kDiv, {a, a});
  EXPECT_THROW(schedule_dfg_on_cgc(dfg, two_2x2()), Error);
}

TEST(CgcSchedulerTest, DmaMemoryAddsBurstCycles) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "addr");
  const NodeId l1 = dfg.add_node(OpKind::kLoad, {a});
  const NodeId l2 = dfg.add_node(OpKind::kLoad, {a});
  const NodeId add = dfg.add_node(OpKind::kAdd, {l1, l2});
  dfg.add_node(OpKind::kStore, {a, add});

  platform::CgcModel cgc = two_2x2();
  cgc.dma_memory = true;
  cgc.mem_ports = 2;
  cgc.mem_access_cgc_cycles = 3;
  const auto sched = schedule_dfg_on_cgc(dfg, cgc);
  EXPECT_EQ(sched.mem_accesses, 3);
  // compute latency 1 + ceil(3/2)=2 bursts * 3 cycles = 7.
  EXPECT_EQ(sched.total_cgc_cycles, 1 + 2 * 3);
}

TEST(CgcSchedulerTest, PortScheduledMemorySerializes) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "addr");
  const NodeId l1 = dfg.add_node(OpKind::kLoad, {a});
  const NodeId l2 = dfg.add_node(OpKind::kLoad, {a});
  const NodeId add = dfg.add_node(OpKind::kAdd, {l1, l2});
  dfg.add_node(OpKind::kOutput, {add});

  platform::CgcModel cgc = two_2x2();
  cgc.dma_memory = false;
  cgc.mem_ports = 1;
  cgc.mem_access_cgc_cycles = 2;
  const auto sched = schedule_dfg_on_cgc(dfg, cgc);
  // load1 [0,2), load2 [2,4), add at 4.
  EXPECT_EQ(sched.total_cgc_cycles, 5);
}

TEST(CgcSchedulerTest, PrecedenceInvariantHoldsOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    synth::DfgGenConfig config;
    config.alu_ops = 30;
    config.mul_ops = 10;
    config.load_ops = 6;
    config.store_ops = 3;
    config.seed = seed;
    const Dfg dfg = synth::generate_dfg(config);
    platform::CgcModel cgc = two_2x2();
    cgc.dma_memory = false;
    const auto sched = schedule_dfg_on_cgc(dfg, cgc);
    for (NodeId v = 0; v < dfg.size(); ++v) {
      const auto& node = dfg.node(v);
      if (!ir::is_schedulable(node.kind)) continue;
      for (NodeId u : node.operands) {
        if (!ir::is_schedulable(dfg.node(u).kind)) continue;
        // Either the operand finished in an earlier cycle, or both are in
        // the same cycle of the same CGC with increasing rows (chaining).
        if (sched.start[v] >= 0 && sched.start[u] >= 0 &&
            sched.finish[u] > sched.start[v]) {
          EXPECT_EQ(sched.start[u], sched.start[v]) << "seed " << seed;
          if (sched.placement[u].bound() && sched.placement[v].bound()) {
            EXPECT_EQ(sched.placement[u].cgc, sched.placement[v].cgc);
            EXPECT_LT(sched.placement[u].row, sched.placement[v].row);
          }
        }
      }
    }
  }
}

TEST(CgcSchedulerTest, NoSlotDoubleBooking) {
  for (std::uint64_t seed = 21; seed <= 30; ++seed) {
    synth::DfgGenConfig config;
    config.alu_ops = 50;
    config.mul_ops = 15;
    config.target_width = 10;
    config.seed = seed;
    const Dfg dfg = synth::generate_dfg(config);
    const auto cgc = two_2x2();
    const auto sched = schedule_dfg_on_cgc(dfg, cgc);
    std::map<std::tuple<std::int64_t, int, int, int>, int> cells;
    for (NodeId id = 0; id < dfg.size(); ++id) {
      if (!sched.placement[id].bound()) continue;
      const auto key = std::make_tuple(sched.start[id], sched.placement[id].cgc,
                                       sched.placement[id].row,
                                       sched.placement[id].col);
      EXPECT_EQ(++cells[key], 1) << "seed " << seed;
    }
  }
}

TEST(CgcMapperTest, FpgaCycleConversionRoundsUp) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId n1 = dfg.add_node(OpKind::kAdd, {a, a});
  const NodeId n2 = dfg.add_node(OpKind::kMul, {n1, a});
  const NodeId n3 = dfg.add_node(OpKind::kSub, {n2, a});
  const NodeId n4 = dfg.add_node(OpKind::kXor, {n3, a});
  dfg.add_node(OpKind::kOutput, {n4});
  platform::Platform p = platform::make_paper_platform(1500, 2);
  const auto mapping = map_block_to_cgc(dfg, p);
  EXPECT_EQ(mapping.cycles_per_invocation_fpga,
            (mapping.schedule.total_cgc_cycles + 2) / 3);
  EXPECT_GE(mapping.cycles_per_invocation_fpga, 1);
}

TEST(CgcMapperTest, TotalCyclesSumsMovedBlocks) {
  ir::Cdfg cdfg("app");
  const auto b0 = cdfg.add_block();
  const auto b1 = cdfg.add_block();
  for (ir::BlockId b : {b0, b1}) {
    auto& dfg = cdfg.block(b).dfg;
    const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
    dfg.add_node(OpKind::kAdd, {a, a});
  }
  platform::Platform p = platform::make_paper_platform(1500, 2);
  std::vector<CgcBlockMapping> mappings;
  mappings.push_back(map_block_to_cgc(cdfg.block(b0).dfg, p));
  mappings.push_back(map_block_to_cgc(cdfg.block(b1).dfg, p));
  ir::ProfileData profile;
  profile.set_count(b0, 10);
  profile.set_count(b1, 5);
  const auto total = cgc_total_cycles(mappings, {b0, b1}, profile);
  EXPECT_EQ(total, 10 * mappings[0].cycles_per_invocation_fpga +
                       5 * mappings[1].cycles_per_invocation_fpga);
}

}  // namespace
}  // namespace amdrel::coarsegrain
