#include "finegrain/fpga_mapper.h"
#include "finegrain/temporal_partitioner.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "synth/dfg_generator.h"

namespace amdrel::finegrain {
namespace {

using ir::Dfg;
using ir::NodeId;
using ir::OpKind;

platform::FpgaModel unit_fpga(double area) {
  platform::FpgaModel fpga;
  fpga.usable_area = area;
  fpga.area_alu = 1.0;
  fpga.area_mul = 1.0;
  fpga.area_mem = 1.0;
  fpga.delay_alu = 1;
  fpga.delay_mul = 1;
  fpga.delay_mem = 1;
  fpga.parallel_lanes = 1000;  // unlimited ILP for the pseudocode tests
  fpga.invocation_overhead_cycles = 0;
  fpga.reconfig_cycles = 10;
  return fpga;
}

/// The worked example for the Figure-3 pseudocode: 6 unit-area ops over 3
/// ASAP levels, A_FPGA = 2. Level-by-level greedy packing must produce
/// partitions {1,1},{2,2},{3,3} -> 3 partitions of 2 nodes each.
TEST(Figure3PseudocodeTest, PacksLevelByLevel) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId b = dfg.add_node(OpKind::kInput, {}, "b");
  const NodeId l1a = dfg.add_node(OpKind::kAdd, {a, b});
  const NodeId l1b = dfg.add_node(OpKind::kSub, {a, b});
  const NodeId l2a = dfg.add_node(OpKind::kAdd, {l1a, b});
  const NodeId l2b = dfg.add_node(OpKind::kMul, {l1b, a});
  const NodeId l3a = dfg.add_node(OpKind::kXor, {l2a, l2b});
  const NodeId l3b = dfg.add_node(OpKind::kAnd, {l2a, l2b});

  const auto result = partition_dfg(dfg, unit_fpga(2.0));
  EXPECT_EQ(result.num_partitions, 3);
  EXPECT_EQ(result.partition_of[l1a], 1);
  EXPECT_EQ(result.partition_of[l1b], 1);
  EXPECT_EQ(result.partition_of[l2a], 2);
  EXPECT_EQ(result.partition_of[l2b], 2);
  EXPECT_EQ(result.partition_of[l3a], 3);
  EXPECT_EQ(result.partition_of[l3b], 3);
  // Structural nodes occupy no fabric.
  EXPECT_EQ(result.partition_of[a], 0);
  EXPECT_EQ(result.partition_of[b], 0);
}

/// When a level does not fit, the node that overflows opens the next
/// partition and brings its area with it (Figure 3's else branch).
TEST(Figure3PseudocodeTest, OverflowOpensNewPartition) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId n1 = dfg.add_node(OpKind::kAdd, {a, a});
  const NodeId n2 = dfg.add_node(OpKind::kSub, {a, a});
  const NodeId n3 = dfg.add_node(OpKind::kXor, {a, a});
  const auto result = partition_dfg(dfg, unit_fpga(2.0));
  // All three are level 1; two fit, the third spills.
  EXPECT_EQ(result.num_partitions, 2);
  EXPECT_EQ(result.partition_of[n1], 1);
  EXPECT_EQ(result.partition_of[n2], 1);
  EXPECT_EQ(result.partition_of[n3], 2);
  EXPECT_DOUBLE_EQ(result.partition_area[1], 2.0);
  EXPECT_DOUBLE_EQ(result.partition_area[2], 1.0);
}

TEST(Figure3PseudocodeTest, SingleOpLargerThanAreaThrows) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  dfg.add_node(OpKind::kMul, {a, a});
  platform::FpgaModel fpga = unit_fpga(2.0);
  fpga.area_mul = 5.0;
  EXPECT_THROW(partition_dfg(dfg, fpga), Error);
}

TEST(Figure3PseudocodeTest, EmptyDfgHasNoPartitions) {
  Dfg dfg;
  dfg.add_node(OpKind::kInput, {}, "a");
  const auto result = partition_dfg(dfg, unit_fpga(4.0));
  EXPECT_EQ(result.num_partitions, 0);
}

TEST(TemporalPartitionInvariantTest, AreaNeverExceeded) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    synth::DfgGenConfig config;
    config.alu_ops = 40;
    config.mul_ops = 10;
    config.load_ops = 8;
    config.store_ops = 4;
    config.seed = seed;
    const Dfg dfg = synth::generate_dfg(config);
    platform::FpgaModel fpga;
    fpga.usable_area = 300.0;
    const auto result = partition_dfg(dfg, fpga);
    for (int p = 1; p <= result.num_partitions; ++p) {
      EXPECT_LE(result.partition_area[p], fpga.usable_area)
          << "seed " << seed << " partition " << p;
    }
  }
}

TEST(TemporalPartitionInvariantTest, PartitionIndicesAreMonotoneInLevels) {
  // A node's partition can never precede the partition of a node from an
  // earlier ASAP level (Figure 3 walks levels in order).
  synth::DfgGenConfig config;
  config.alu_ops = 60;
  config.mul_ops = 12;
  config.seed = 99;
  const Dfg dfg = synth::generate_dfg(config);
  platform::FpgaModel fpga;
  fpga.usable_area = 200.0;
  const auto result = partition_dfg(dfg, fpga);
  const auto levels = dfg.asap_levels();
  for (NodeId u = 0; u < dfg.size(); ++u) {
    for (NodeId v = 0; v < dfg.size(); ++v) {
      if (result.partition_of[u] == 0 || result.partition_of[v] == 0) continue;
      if (levels[u] < levels[v]) {
        EXPECT_LE(result.partition_of[u], result.partition_of[v]);
      }
    }
  }
}

TEST(FpgaMapperTest, ExecTimeFollowsLevelsAndLanes) {
  // Two levels, each with two 1-cycle ALU ops; with 1 lane each level
  // costs 2 cycles -> exec = 4 (+0 overhead).
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId n1 = dfg.add_node(OpKind::kAdd, {a, a});
  const NodeId n2 = dfg.add_node(OpKind::kSub, {a, a});
  const NodeId n3 = dfg.add_node(OpKind::kXor, {n1, n2});
  const NodeId n4 = dfg.add_node(OpKind::kAnd, {n1, n2});
  (void)n3;
  (void)n4;
  platform::FpgaModel fpga = unit_fpga(100.0);
  fpga.parallel_lanes = 1;
  platform::MemoryModel memory;
  const auto mapping = map_block_to_fpga(dfg, fpga, memory);
  EXPECT_EQ(mapping.partitioning.num_partitions, 1);
  EXPECT_EQ(mapping.exec_cycles, 4);
  EXPECT_EQ(mapping.boundary_words, 0);
  EXPECT_EQ(mapping.reconfigs_per_invocation, 0);  // resident, kSwitchOnly
}

TEST(FpgaMapperTest, WideLevelBenefitsFromLanes) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  for (int i = 0; i < 8; ++i) dfg.add_node(OpKind::kAdd, {a, a});
  platform::FpgaModel fpga = unit_fpga(100.0);
  platform::MemoryModel memory;
  fpga.parallel_lanes = 1;
  const auto serial = map_block_to_fpga(dfg, fpga, memory);
  fpga.parallel_lanes = 4;
  const auto parallel = map_block_to_fpga(dfg, fpga, memory);
  EXPECT_EQ(serial.exec_cycles, 8);
  EXPECT_EQ(parallel.exec_cycles, 2);
}

TEST(FpgaMapperTest, BoundaryValuesArePricedThroughSharedMemory) {
  // Force a two-partition split with one crossing value.
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId n1 = dfg.add_node(OpKind::kAdd, {a, a});
  const NodeId n2 = dfg.add_node(OpKind::kSub, {n1, a});
  (void)n2;
  platform::FpgaModel fpga = unit_fpga(1.0);  // one op per partition
  platform::MemoryModel memory;
  memory.partition_boundary_cycles_per_word = 5;
  const auto mapping = map_block_to_fpga(dfg, fpga, memory);
  EXPECT_EQ(mapping.partitioning.num_partitions, 2);
  EXPECT_EQ(mapping.boundary_words, 2);  // one store + one fill
  EXPECT_EQ(mapping.boundary_cycles, 10);
  EXPECT_EQ(mapping.reconfigs_per_invocation, 1);  // one switch
}

TEST(FpgaMapperTest, ReconfigPolicies) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId n1 = dfg.add_node(OpKind::kAdd, {a, a});
  dfg.add_node(OpKind::kSub, {n1, a});
  platform::FpgaModel fpga = unit_fpga(1.0);
  platform::MemoryModel memory;

  fpga.reconfig_policy = platform::ReconfigPolicy::kNone;
  EXPECT_EQ(map_block_to_fpga(dfg, fpga, memory).reconfigs_per_invocation, 0);

  fpga.reconfig_policy = platform::ReconfigPolicy::kSwitchOnly;
  EXPECT_EQ(map_block_to_fpga(dfg, fpga, memory).reconfigs_per_invocation, 1);

  fpga.reconfig_policy = platform::ReconfigPolicy::kPerPartition;
  EXPECT_EQ(map_block_to_fpga(dfg, fpga, memory).reconfigs_per_invocation, 2);

  fpga.reconfig_policy = platform::ReconfigPolicy::kAmortizedOnce;
  const auto amortized = map_block_to_fpga(dfg, fpga, memory);
  EXPECT_EQ(amortized.reconfigs_per_invocation, 0);
  EXPECT_EQ(amortized.amortized_reconfigs, 2);
}

TEST(FpgaMapperTest, TotalCyclesScalesWithProfile) {
  ir::Cdfg cdfg("app");
  const auto b0 = cdfg.add_block();
  auto& dfg = cdfg.block(b0).dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  dfg.add_node(OpKind::kAdd, {a, a});
  platform::FpgaModel fpga = unit_fpga(10.0);
  platform::MemoryModel memory;
  const auto mappings = map_cdfg_to_fpga(cdfg, fpga, memory);
  ir::ProfileData profile;
  profile.set_count(b0, 100);
  EXPECT_EQ(fpga_total_cycles(mappings, profile, fpga),
            100 * mappings[0].cycles_per_invocation(fpga));
  // Masking the block out removes its contribution.
  std::vector<bool> none(1, false);
  EXPECT_EQ(fpga_total_cycles(mappings, profile, fpga, &none), 0);
}

}  // namespace
}  // namespace amdrel::finegrain
