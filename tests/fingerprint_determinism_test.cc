// Golden-file stability test for CDFG fingerprints: the digests of the
// four builtin workloads (the paper-calibrated OFDM/JPEG models and the
// compiled-and-profiled FIR/Sobel MiniC sources) are pinned
// byte-for-byte in tests/golden/fingerprints.golden. Persistent sweep
// caches are addressed by these digests, so an accidental change to the
// mixing or the hashed field set silently invalidates (or worse,
// mis-hits) every cache — this test turns that into an explicit,
// reviewed event, exactly like the sweep schema goldens:
//   ./build/tests/fingerprint_determinism_test --regen
// then review the diff and bump kFingerprintAlgorithmVersion when the
// change is intentional.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/fingerprint.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "workloads/minic_sources.h"
#include "workloads/paper_models.h"

#ifndef AMDREL_GOLDEN_DIR
#error "AMDREL_GOLDEN_DIR must be defined by the build"
#endif

namespace amdrel {
namespace {

struct NamedApp {
  std::string name;
  ir::Cdfg cdfg{"app"};
  ir::ProfileData profile;
};

NamedApp compiled_app(const std::string& name, const std::string& source) {
  NamedApp app;
  app.name = name;
  ir::TacProgram tac = minic::compile(source, name);
  interp::Interpreter interp(tac);
  const auto run = interp.run(/*max_instructions=*/4'000'000'000ULL);
  app.profile = run.profile;
  app.cdfg = ir::build_cdfg(tac);
  return app;
}

std::vector<NamedApp> builtin_apps() {
  std::vector<NamedApp> apps;
  for (const char* name : {"ofdm", "jpeg"}) {
    NamedApp app;
    app.name = name;
    workloads::PaperApp model = std::string(name) == "ofdm"
                                    ? workloads::build_ofdm_model()
                                    : workloads::build_jpeg_model();
    app.cdfg = std::move(model.cdfg);
    app.profile = std::move(model.profile);
    apps.push_back(std::move(app));
  }
  apps.push_back(compiled_app("fir", workloads::fir_source()));
  apps.push_back(compiled_app("sobel", workloads::sobel_source()));
  return apps;
}

// One line per workload: "<name> cdfg=<hex> profile=<hex> app=<hex>".
std::string render_fingerprints() {
  std::ostringstream os;
  os << "fingerprint_algorithm " << core::kFingerprintAlgorithmVersion
     << "\n";
  for (const NamedApp& app : builtin_apps()) {
    os << app.name << " cdfg=" << core::fingerprint(app.cdfg).to_hex()
       << " profile=" << core::fingerprint(app.profile).to_hex()
       << " app=" << core::app_fingerprint(app.cdfg, app.profile).to_hex()
       << "\n";
  }
  return os.str();
}

std::string golden_path() {
  return std::string(AMDREL_GOLDEN_DIR) + "/fingerprints.golden";
}

TEST(FingerprintDeterminismTest, MatchesCommittedGolden) {
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (run with --regen to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), render_fingerprints())
      << "builtin workload fingerprints drifted from " << golden_path()
      << "; if intentional, bump kFingerprintAlgorithmVersion (persistent "
         "caches must not survive an algorithm change), regenerate with "
         "--regen and review the diff";
}

TEST(FingerprintDeterminismTest, RepeatedRendersAreByteIdentical) {
  EXPECT_EQ(render_fingerprints(), render_fingerprints());
}

}  // namespace
}  // namespace amdrel

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      std::ofstream out(amdrel::golden_path(), std::ios::binary);
      out << amdrel::render_fingerprints();
      return out.good() ? 0 : 1;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
