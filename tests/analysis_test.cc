#include "analysis/kernels.h"
#include "analysis/weights.h"

#include <gtest/gtest.h>

namespace amdrel::analysis {
namespace {

using ir::BlockId;
using ir::Dfg;
using ir::NodeId;
using ir::OpKind;

Dfg dfg_with(int alu, int mul, int mem) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  for (int i = 0; i < alu; ++i) dfg.add_node(OpKind::kAdd, {a, a});
  for (int i = 0; i < mul; ++i) dfg.add_node(OpKind::kMul, {a, a});
  for (int i = 0; i < mem; ++i) dfg.add_node(OpKind::kLoad, {a});
  return dfg;
}

TEST(WeightsTest, PaperWeightsAluOneMulTwo) {
  const WeightModel model;
  EXPECT_EQ(block_weight(dfg_with(5, 3, 4), model), 5 + 2 * 3);
}

TEST(WeightsTest, MemWeightKnob) {
  WeightModel model;
  model.mem = 1;
  EXPECT_EQ(block_weight(dfg_with(5, 3, 4), model), 5 + 6 + 4);
}

TEST(WeightsTest, StructuralNodesWeighNothing) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  dfg.add_const(5);
  const NodeId n = dfg.add_node(OpKind::kCopy, {a});
  dfg.add_node(OpKind::kOutput, {n});
  EXPECT_EQ(block_weight(dfg, WeightModel{}), 0);
}

class KernelExtractionTest : public ::testing::Test {
 protected:
  /// entry -> k1(self loop) -> k2(self loop) -> straight -> exit
  void SetUp() override {
    entry_ = cdfg_.add_block("entry");
    k1_ = cdfg_.add_block("k1");
    k2_ = cdfg_.add_block("k2");
    straight_ = cdfg_.add_block("straight");
    exit_ = cdfg_.add_block("exit");
    cdfg_.add_edge(entry_, k1_);
    cdfg_.add_edge(k1_, k1_);
    cdfg_.add_edge(k1_, k2_);
    cdfg_.add_edge(k2_, k2_);
    cdfg_.add_edge(k2_, straight_);
    cdfg_.add_edge(straight_, exit_);
    cdfg_.set_entry(entry_);

    cdfg_.block(k1_).dfg = dfg_with(10, 2, 0);      // weight 14
    cdfg_.block(k2_).dfg = dfg_with(4, 0, 0);       // weight 4
    cdfg_.block(straight_).dfg = dfg_with(50, 10, 0);  // weight 70, no loop
    cdfg_.analyze_loops();

    profile_.set_count(entry_, 1);
    profile_.set_count(k1_, 100);   // total 1400
    profile_.set_count(k2_, 1000);  // total 4000
    profile_.set_count(straight_, 1);
    profile_.set_count(exit_, 1);
  }

  ir::Cdfg cdfg_{"t"};
  ir::ProfileData profile_;
  BlockId entry_, k1_, k2_, straight_, exit_;
};

TEST_F(KernelExtractionTest, OrdersByTotalWeightDescending) {
  const auto kernels = extract_kernels(cdfg_, profile_);
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_EQ(kernels[0].block, k2_);
  EXPECT_EQ(kernels[0].total_weight, 4000);
  EXPECT_EQ(kernels[1].block, k1_);
  EXPECT_EQ(kernels[1].total_weight, 1400);
}

TEST_F(KernelExtractionTest, LoopsOnlyExcludesStraightLineCode) {
  const auto kernels = extract_kernels(cdfg_, profile_);
  for (const auto& kernel : kernels) {
    EXPECT_NE(kernel.block, straight_);
    EXPECT_GE(kernel.loop_depth, 1);
  }
  AnalysisOptions options;
  options.loops_only = false;
  const auto all = extract_kernels(cdfg_, profile_, options);
  bool found_straight = false;
  for (const auto& kernel : all) found_straight |= kernel.block == straight_;
  EXPECT_TRUE(found_straight);
}

TEST_F(KernelExtractionTest, EquationOneHolds) {
  for (const auto& kernel : extract_kernels(cdfg_, profile_)) {
    EXPECT_EQ(kernel.total_weight,
              static_cast<std::int64_t>(kernel.exec_freq) * kernel.op_weight);
  }
}

TEST_F(KernelExtractionTest, MinExecFreqFilters) {
  AnalysisOptions options;
  options.min_exec_freq = 500;
  const auto kernels = extract_kernels(cdfg_, profile_, options);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].block, k2_);
}

TEST_F(KernelExtractionTest, DivisionMarksIneligible) {
  auto& dfg = cdfg_.block(k1_).dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "d");
  dfg.add_node(OpKind::kDiv, {a, a});
  const auto kernels = extract_kernels(cdfg_, profile_);
  for (const auto& kernel : kernels) {
    if (kernel.block == k1_) {
      EXPECT_FALSE(kernel.cgc_eligible);
    }
    if (kernel.block == k2_) {
      EXPECT_TRUE(kernel.cgc_eligible);
    }
  }
}

TEST_F(KernelExtractionTest, ZeroFrequencyBlocksDropped) {
  ir::ProfileData empty;
  EXPECT_TRUE(extract_kernels(cdfg_, empty).empty());
}

}  // namespace
}  // namespace amdrel::analysis
