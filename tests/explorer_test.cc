#include "core/explorer.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

using workloads::build_ofdm_model;
using workloads::PaperApp;

ExploreSpec ofdm_spec(int threads) {
  ExploreSpec spec;
  spec.constraints = {workloads::kOfdmTimingConstraint / 2,
                      workloads::kOfdmTimingConstraint,
                      2 * workloads::kOfdmTimingConstraint};
  spec.orderings = {KernelOrdering::kWeightDescending,
                    KernelOrdering::kBenefitDescending};
  spec.threads = threads;
  return spec;
}

TEST(ExplorerTest, GridOrderAndSize) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const ExploreSpec spec = ofdm_spec(2);
  const auto summary = explore_design_space(app.cdfg, app.profile, p, spec);
  ASSERT_EQ(summary.points.size(), spec.constraints.size() *
                                       spec.strategies.size() *
                                       spec.orderings.size());
  // Constraint-major, then strategy, then ordering.
  std::size_t index = 0;
  for (const std::int64_t constraint : spec.constraints) {
    for (const StrategyKind strategy : spec.strategies) {
      for (const KernelOrdering ordering : spec.orderings) {
        const ExplorePoint& point = summary.points[index++];
        EXPECT_EQ(point.constraint, constraint);
        EXPECT_EQ(point.strategy, strategy);
        EXPECT_EQ(point.ordering, ordering);
      }
    }
  }
}

TEST(ExplorerTest, DeterministicAcrossThreadCounts) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const auto serial =
      explore_design_space(app.cdfg, app.profile, p, ofdm_spec(1));
  const auto parallel =
      explore_design_space(app.cdfg, app.profile, p, ofdm_spec(4));
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].report.moved, parallel.points[i].report.moved)
        << "point " << i;
    EXPECT_EQ(serial.points[i].report.final_cycles,
              parallel.points[i].report.final_cycles)
        << "point " << i;
  }
  EXPECT_EQ(serial.pareto, parallel.pareto);
  EXPECT_EQ(describe(serial), describe(parallel));
}

TEST(ExplorerTest, PointsMatchDirectMethodologyRuns) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const auto summary =
      explore_design_space(app.cdfg, app.profile, p, ofdm_spec(3));
  for (const ExplorePoint& point : summary.points) {
    MethodologyOptions options;
    options.strategy = point.strategy;
    options.ordering = point.ordering;
    const auto direct = run_methodology(app.cdfg, app.profile, p,
                                        point.constraint, options);
    EXPECT_EQ(point.report.moved, direct.moved);
    EXPECT_EQ(point.report.final_cycles, direct.final_cycles);
    EXPECT_EQ(point.report.met, direct.met);
  }
}

TEST(ExplorerTest, ParetoFrontInvariants) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const auto summary =
      explore_design_space(app.cdfg, app.profile, p, ofdm_spec(2));
  ASSERT_FALSE(summary.pareto.empty());

  auto dominates = [](const PartitionReport& a, const PartitionReport& b) {
    const bool no_worse = a.final_cycles <= b.final_cycles &&
                          a.moved.size() <= b.moved.size() &&
                          a.energy.total_pj() <= b.energy.total_pj();
    const bool better = a.final_cycles < b.final_cycles ||
                        a.moved.size() < b.moved.size() ||
                        a.energy.total_pj() < b.energy.total_pj();
    return no_worse && better;
  };
  for (const std::size_t i : summary.pareto) {
    ASSERT_LT(i, summary.points.size());
    EXPECT_TRUE(summary.points[i].on_pareto_front);
    for (const ExplorePoint& other : summary.points) {
      EXPECT_FALSE(dominates(other.report, summary.points[i].report));
    }
  }
  // Every dominated point is off the front, and every off-front point is
  // dominated by someone.
  for (const ExplorePoint& point : summary.points) {
    if (point.on_pareto_front) continue;
    bool dominated = false;
    for (const std::size_t i : summary.pareto) {
      dominated = dominated || dominates(summary.points[i].report, point.report);
    }
    EXPECT_TRUE(dominated);
  }
}

TEST(ExplorerTest, EmptyConstraintsSweepFractionsOfAllFine) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  ExploreSpec spec;  // no constraints: 1/4, 1/2, 3/4 of all-fine
  const auto summary = explore_design_space(app.cdfg, app.profile, p, spec);
  const std::int64_t all_fine =
      HybridMapper(app.cdfg, p).all_fine_cycles(app.profile);
  ASSERT_EQ(summary.points.size(),
            3 * spec.strategies.size() * spec.orderings.size());
  EXPECT_EQ(summary.points.front().constraint, all_fine / 4);
  EXPECT_EQ(summary.points.back().constraint, (3 * all_fine) / 4);
}

TEST(ExplorerTest, EnergyBudgetAxisExpandsGrid) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  ExploreSpec spec;
  spec.constraints = {workloads::kOfdmTimingConstraint};
  spec.energy_budgets = {1.0e6, 7.0e5};
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.base.cost.objective.kind = ObjectiveKind::kEnergy;
  const auto summary = explore_design_space(app.cdfg, app.profile, p, spec);
  ASSERT_EQ(summary.points.size(), 2u);
  EXPECT_EQ(summary.points[0].energy_budget_pj, 1.0e6);
  EXPECT_EQ(summary.points[1].energy_budget_pj, 7.0e5);
  for (const ExplorePoint& point : summary.points) {
    EXPECT_EQ(point.report.objective, ObjectiveKind::kEnergy);
    EXPECT_TRUE(point.report.met);
    EXPECT_LE(point.report.energy.total_pj(), point.energy_budget_pj);
  }
  // The tighter budget needs strictly more kernels on the CGC.
  EXPECT_LT(summary.points[0].report.moved.size(),
            summary.points[1].report.moved.size());
}

TEST(ExplorerTest, EmptyStrategyGridRejected) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  ExploreSpec spec;
  spec.constraints = {1000};
  spec.strategies.clear();
  EXPECT_THROW(explore_design_space(app.cdfg, app.profile, p, spec), Error);
}

TEST(ExplorerTest, TinyAppDefaultConstraintsClampAndDedupe) {
  // A one-block app whose all-fine cycle count rounds the default 1/4,
  // 1/2, 3/4 fractions down to 0: the explorer must clamp each to at
  // least one cycle and drop the duplicates instead of sweeping three
  // unmeetable "finish in no cycles" constraints.
  ir::Cdfg cdfg("tiny");
  const ir::BlockId b = cdfg.add_block();
  ir::Dfg& dfg = cdfg.block(b).dfg;
  const ir::NodeId in = dfg.add_node(ir::OpKind::kInput);
  const ir::NodeId sum = dfg.add_node(ir::OpKind::kAdd, {in, in});
  dfg.add_node(ir::OpKind::kOutput, {sum});
  cdfg.set_entry(b);
  const ir::ProfileData profile;  // never executes: all_fine == 0

  const auto p = platform::make_paper_platform(1500, 2);
  ASSERT_EQ(HybridMapper(cdfg, p).all_fine_cycles(profile), 0);

  ExploreSpec spec;  // default constraints
  spec.threads = 1;
  const auto summary = explore_design_space(cdfg, profile, p, spec);
  // All three fractions collapse to the single clamped constraint 1.
  ASSERT_EQ(summary.points.size(),
            spec.strategies.size() * spec.orderings.size());
  for (const ExplorePoint& point : summary.points) {
    EXPECT_EQ(point.constraint, 1);
    EXPECT_TRUE(point.report.met);
  }
}

}  // namespace
}  // namespace amdrel::core
