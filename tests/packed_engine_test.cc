// Pins the data-oriented engine core to the legacy IR-walking paths:
// the PackedCdfg mirrors every per-block quantity of the Dfgs it was
// built from, the bitset-backed IncrementalSplit stays bit-identical to
// full HybridMapper::evaluate repricing under random move/unmove churn,
// batched constraint-axis runs reproduce standalone per-cell runs
// field-for-field (including engine_iterations), and MapperState
// snapshots round-trip through the restore constructor.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/energy.h"
#include "core/hybrid_mapper.h"
#include "core/methodology.h"
#include "ir/packed_graph.h"
#include "platform/platform.h"
#include "synth/cdfg_generator.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

synth::SyntheticApp make_app(std::uint64_t seed) {
  synth::CdfgGenConfig config;
  config.segments = 4;
  config.seed = seed;
  // A few divisions so CGC-ineligible blocks exist on every app.
  config.div_probability = 0.15;
  return synth::generate_app(config);
}

// ------------------------------------------------- PackedCdfg vs Dfg --

class PackedGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PackedGraphProperty, MirrorsEveryPerBlockQuantity) {
  const synth::SyntheticApp app = make_app(GetParam());
  const ir::PackedCdfg packed(app.cdfg);
  ASSERT_EQ(packed.num_blocks(), app.cdfg.size());

  std::vector<std::int32_t> scratch;
  for (const ir::BasicBlock& block : app.cdfg.blocks()) {
    const ir::Dfg& dfg = block.dfg;
    ASSERT_EQ(packed.node_count(block.id), dfg.size()) << block.name;

    const ir::OpMix expect = dfg.op_mix();
    const ir::OpMix& mix = packed.op_mix(block.id);
    EXPECT_EQ(mix.alu, expect.alu);
    EXPECT_EQ(mix.mul, expect.mul);
    EXPECT_EQ(mix.div, expect.div);
    EXPECT_EQ(mix.mem, expect.mem);
    EXPECT_EQ(mix.meta, expect.meta);

    EXPECT_EQ(packed.live_in_count(block.id), dfg.live_in_count());
    EXPECT_EQ(packed.live_out_count(block.id), dfg.live_out_count());
    EXPECT_EQ(packed.has_division(block.id), dfg.has_division());
    EXPECT_EQ(packed.max_asap_level(block.id), dfg.max_asap_level());

    const std::vector<int> levels = dfg.asap_levels();
    const std::int32_t max_level =
        packed.asap_levels_into(block.id, scratch);
    ASSERT_EQ(scratch.size(), levels.size());
    for (std::size_t i = 0; i < levels.size(); ++i) {
      EXPECT_EQ(scratch[i], levels[i]) << block.name << " node " << i;
    }
    EXPECT_EQ(max_level, packed.max_asap_level(block.id));

    // The CSR adjacency carries the same operand/user lists node by
    // node, in order.
    const ir::PackedDfgView view = packed.view(block.id);
    for (ir::NodeId n = 0; n < dfg.size(); ++n) {
      const ir::Dfg::Node& node = dfg.node(n);
      const std::int32_t begin = view.operand_offsets[n];
      const std::int32_t end = view.operand_offsets[n + 1];
      ASSERT_EQ(end - begin,
                static_cast<std::int32_t>(node.operands.size()));
      for (std::int32_t e = begin; e < end; ++e) {
        EXPECT_EQ(view.operand_data[e], node.operands[e - begin]);
      }
      const std::vector<ir::NodeId>& users = dfg.users(n);
      const std::int32_t ubegin = view.user_offsets[n];
      const std::int32_t uend = view.user_offsets[n + 1];
      ASSERT_EQ(uend - ubegin, static_cast<std::int32_t>(users.size()));
      for (std::int32_t e = ubegin; e < uend; ++e) {
        EXPECT_EQ(view.user_data[e], users[e - ubegin]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedGraphProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------- IncrementalSplit vs full repricing --

class SplitChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SplitChurnProperty, MatchesEvaluateAndEstimateEnergyUnderChurn) {
  const synth::SyntheticApp app = make_app(GetParam());
  const auto platform = platform::make_paper_platform(1500, 2);
  HybridMapper mapper(app.cdfg, platform);

  CostObjective objective;
  objective.kind = ObjectiveKind::kCombined;
  objective.energy_weight = 1e-6;
  IncrementalSplit split(mapper, app.profile, objective);

  std::vector<ir::BlockId> eligible;
  for (const ir::BasicBlock& block : app.cdfg.blocks()) {
    if (mapper.cgc_eligible(block.id)) eligible.push_back(block.id);
  }
  ASSERT_FALSE(eligible.empty());

  // The all-fine starting point already matches both reprice paths.
  EXPECT_EQ(split.cost().total(), mapper.all_fine_cycles(app.profile));

  std::mt19937_64 rng(GetParam() * 7919 + 1);
  std::uniform_int_distribution<std::size_t> pick(0, eligible.size() - 1);
  for (int step = 0; step < 200; ++step) {
    const ir::BlockId block = eligible[pick(rng)];
    if (split.is_moved(block)) {
      split.unmove(block);
    } else {
      split.move(block);
    }

    const SplitCost full = mapper.evaluate(app.profile, split.moved());
    EXPECT_EQ(split.cost().t_fpga, full.t_fpga) << "step " << step;
    EXPECT_EQ(split.cost().t_coarse, full.t_coarse) << "step " << step;
    EXPECT_EQ(split.cost().t_comm, full.t_comm) << "step " << step;

    const EnergyBreakdown repriced = estimate_energy(
        mapper, app.profile, split.moved(), objective.energy);
    EXPECT_NEAR(split.energy().total_pj(), repriced.total_pj(),
                1e-6 * (1.0 + repriced.total_pj()))
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitChurnProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// --------------------------------- batched axis vs per-cell run() --

void expect_report_eq(const PartitionReport& axis,
                      const PartitionReport& solo, const char* what) {
  EXPECT_EQ(axis.timing_constraint, solo.timing_constraint) << what;
  EXPECT_EQ(axis.energy_budget_pj, solo.energy_budget_pj) << what;
  EXPECT_EQ(axis.initial_cycles, solo.initial_cycles) << what;
  EXPECT_EQ(axis.initial_energy_pj, solo.initial_energy_pj) << what;
  EXPECT_EQ(axis.initial_meets, solo.initial_meets) << what;
  EXPECT_EQ(axis.kernels.size(), solo.kernels.size()) << what;
  EXPECT_EQ(axis.moved, solo.moved) << what;
  EXPECT_EQ(axis.cost.t_fpga, solo.cost.t_fpga) << what;
  EXPECT_EQ(axis.cost.t_coarse, solo.cost.t_coarse) << what;
  EXPECT_EQ(axis.cost.t_comm, solo.cost.t_comm) << what;
  EXPECT_EQ(axis.final_cycles, solo.final_cycles) << what;
  EXPECT_EQ(axis.cycles_in_cgc, solo.cycles_in_cgc) << what;
  // Both sides reprice energy via the same deterministic
  // estimate_energy walk, so even the doubles are bit-equal.
  EXPECT_EQ(axis.energy.fine_pj, solo.energy.fine_pj) << what;
  EXPECT_EQ(axis.energy.coarse_pj, solo.energy.coarse_pj) << what;
  EXPECT_EQ(axis.energy.reconfig_pj, solo.energy.reconfig_pj) << what;
  EXPECT_EQ(axis.energy.comm_pj, solo.energy.comm_pj) << what;
  EXPECT_EQ(axis.met, solo.met) << what;
  EXPECT_EQ(axis.engine_iterations, solo.engine_iterations) << what;
}

class AxisProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(AxisProperty, BatchedAxisMatchesStandaloneRuns) {
  const auto [seed, strategy_index] = GetParam();
  const synth::SyntheticApp app = make_app(seed);
  const auto platform = platform::make_paper_platform(1500, 2);
  HybridMapper mapper(app.cdfg, platform);

  MethodologyOptions options;
  options.strategy = all_strategies()[static_cast<std::size_t>(
      strategy_index)];
  options.exhaustive_max_kernels = 10;
  options.anneal_iterations = 600;

  const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);
  std::vector<AxisCell> cells;
  for (const std::int64_t constraint :
       {all_fine / 8, all_fine / 3, all_fine / 2, (3 * all_fine) / 4,
        all_fine, 2 * all_fine}) {
    cells.push_back({constraint, 0.0});
  }

  const std::vector<PartitionReport> axis =
      run_methodology_axis(mapper, app.profile, cells, options);
  ASSERT_EQ(axis.size(), cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    options.cost.energy_budget_pj = cells[c].energy_budget_pj;
    const PartitionReport solo = run_methodology(
        mapper, app.profile, cells[c].timing_constraint, options);
    expect_report_eq(axis[c], solo,
                     strategy_name(options.strategy));
  }
}

TEST_P(AxisProperty, BatchedEnergyBudgetAxisMatchesStandaloneRuns) {
  const auto [seed, strategy_index] = GetParam();
  const synth::SyntheticApp app = make_app(seed);
  const auto platform = platform::make_paper_platform(1500, 2);
  HybridMapper mapper(app.cdfg, platform);

  MethodologyOptions options;
  options.strategy = all_strategies()[static_cast<std::size_t>(
      strategy_index)];
  options.cost.objective.kind = ObjectiveKind::kEnergy;
  options.exhaustive_max_kernels = 10;
  options.anneal_iterations = 600;

  const double all_fine_pj =
      estimate_energy(mapper, app.profile, {}, options.cost.objective.energy)
          .total_pj();
  std::vector<AxisCell> cells;
  for (const double fraction : {0.1, 0.4, 0.7, 0.9, 1.5}) {
    cells.push_back({0, fraction * all_fine_pj});
  }

  const std::vector<PartitionReport> axis =
      run_methodology_axis(mapper, app.profile, cells, options);
  ASSERT_EQ(axis.size(), cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    options.cost.energy_budget_pj = cells[c].energy_budget_pj;
    const PartitionReport solo = run_methodology(
        mapper, app.profile, cells[c].timing_constraint, options);
    expect_report_eq(axis[c], solo,
                     strategy_name(options.strategy));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, AxisProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 7),
                       ::testing::Values(0, 1, 2)));

TEST(AxisTest, NonStoppingWalksAndAblationFlagsBatchIdentically) {
  const workloads::PaperApp app = workloads::build_ofdm_model();
  const auto platform = platform::make_paper_platform(1500, 2);
  HybridMapper mapper(app.cdfg, platform);
  const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);
  const std::vector<AxisCell> cells = {
      {all_fine / 4, 0.0}, {all_fine / 2, 0.0}, {all_fine, 0.0}};

  for (const bool stop_when_met : {true, false}) {
    for (const bool skip_unprofitable : {false, true}) {
      MethodologyOptions options;
      options.stop_when_met = stop_when_met;
      options.skip_unprofitable = skip_unprofitable;
      const std::vector<PartitionReport> axis =
          run_methodology_axis(mapper, app.profile, cells, options);
      for (std::size_t c = 0; c < cells.size(); ++c) {
        const PartitionReport solo = run_methodology(
            mapper, app.profile, cells[c].timing_constraint, options);
        expect_report_eq(axis[c], solo,
                         stop_when_met ? "stop" : "no-stop");
      }
    }
  }
}

TEST(AxisTest, EmptyAxisReturnsNoReports) {
  const workloads::PaperApp app = workloads::build_ofdm_model();
  const auto platform = platform::make_paper_platform(1500, 2);
  HybridMapper mapper(app.cdfg, platform);
  EXPECT_TRUE(run_methodology_axis(mapper, app.profile, {}, {}).empty());
}

// -------------------------------------- MapperState round-tripping --

TEST(MapperStateTest, SnapshotRestoreRoundTripsDenseCoarseSlots) {
  const workloads::PaperApp app = workloads::build_ofdm_model();
  const auto platform = platform::make_paper_platform(1500, 2);
  HybridMapper mapper(app.cdfg, platform);

  // Schedule some (not all) eligible blocks so the snapshot carries a
  // mix of engaged and empty coarse slots.
  std::vector<ir::BlockId> moved;
  for (const ir::BasicBlock& block : app.cdfg.blocks()) {
    if (mapper.cgc_eligible(block.id) && moved.size() < 3) {
      moved.push_back(block.id);
      mapper.coarse(block.id);
    }
  }
  ASSERT_FALSE(moved.empty());

  const MapperState state = mapper.state();
  ASSERT_EQ(state.fine.size(), static_cast<std::size_t>(app.cdfg.size()));
  ASSERT_EQ(state.coarse.size(),
            static_cast<std::size_t>(app.cdfg.size()));
  for (const ir::BlockId block : moved) {
    EXPECT_TRUE(state.coarse[static_cast<std::size_t>(block)].has_value());
  }

  HybridMapper restored(app.cdfg, platform, state);
  EXPECT_EQ(restored.all_fine_cycles(app.profile),
            mapper.all_fine_cycles(app.profile));
  const SplitCost a = mapper.evaluate(app.profile, moved);
  const SplitCost b = restored.evaluate(app.profile, moved);
  EXPECT_EQ(a.t_fpga, b.t_fpga);
  EXPECT_EQ(a.t_coarse, b.t_coarse);
  EXPECT_EQ(a.t_comm, b.t_comm);

  // Restoring the restored mapper's snapshot is stable: same slots
  // engaged, same pricing.
  const MapperState again = restored.state();
  ASSERT_EQ(again.coarse.size(), state.coarse.size());
  for (std::size_t i = 0; i < state.coarse.size(); ++i) {
    EXPECT_EQ(again.coarse[i].has_value(), state.coarse[i].has_value())
        << "block " << i;
  }
}

}  // namespace
}  // namespace amdrel::core
