#include "core/strategy.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

using workloads::build_jpeg_model;
using workloads::build_ofdm_model;
using workloads::PaperApp;

platform::Platform paper_platform() {
  return platform::make_paper_platform(1500, 2);
}

MethodologyOptions with_strategy(StrategyKind strategy) {
  MethodologyOptions options;
  options.strategy = strategy;
  return options;
}

TEST(StrategyRegistryTest, NamesRoundTrip) {
  for (const StrategyKind kind : all_strategies()) {
    const auto parsed = parse_strategy(strategy_name(kind));
    ASSERT_TRUE(parsed.has_value()) << strategy_name(kind);
    EXPECT_EQ(*parsed, kind);
    EXPECT_STREQ(make_strategy(kind)->name(), strategy_name(kind));
  }
  EXPECT_FALSE(parse_strategy("no-such-strategy").has_value());
}

TEST(StrategyRegistryTest, OrderingNamesRoundTrip) {
  for (const KernelOrdering ordering : all_kernel_orderings()) {
    const auto parsed = parse_kernel_ordering(kernel_ordering_name(ordering));
    ASSERT_TRUE(parsed.has_value()) << kernel_ordering_name(ordering);
    EXPECT_EQ(*parsed, ordering);
  }
  EXPECT_FALSE(parse_kernel_ordering("no-such-ordering").has_value());
}

TEST(GreedyPaperStrategyTest, IsTheDefaultDispatch) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  const auto implicit = run_methodology(app.cdfg, app.profile, p,
                                        workloads::kOfdmTimingConstraint);
  const auto explicit_greedy =
      run_methodology(app.cdfg, app.profile, p,
                      workloads::kOfdmTimingConstraint,
                      with_strategy(StrategyKind::kGreedyPaper));
  EXPECT_EQ(implicit.moved, explicit_greedy.moved);
  EXPECT_EQ(implicit.final_cycles, explicit_greedy.final_cycles);
  EXPECT_EQ(implicit.engine_iterations, explicit_greedy.engine_iterations);
}

TEST(ExhaustiveStrategyTest, MatchesExhaustiveOptimalBaseline) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  const auto report =
      run_methodology(app.cdfg, app.profile, p,
                      workloads::kOfdmTimingConstraint,
                      with_strategy(StrategyKind::kExhaustive));
  const auto optimal =
      exhaustive_optimal(app.cdfg, app.profile, p,
                         workloads::kOfdmTimingConstraint, /*max_kernels=*/18);
  ASSERT_TRUE(optimal.fewest_moves.has_value());
  EXPECT_TRUE(report.met);
  EXPECT_EQ(report.moved.size(), optimal.fewest_moves->size());
  EXPECT_EQ(report.final_cycles, optimal.fewest_moves_cycles);
  // Branch-and-bound visits a fraction of the 2^18 subsets the plain
  // enumeration pays for.
  EXPECT_LT(report.engine_iterations,
            static_cast<int>(optimal.subsets_evaluated));
}

TEST(ExhaustiveStrategyTest, NeverWorseThanGreedy) {
  for (const PaperApp& app : {build_ofdm_model(), build_jpeg_model()}) {
    const std::int64_t constraint = app.cdfg.name() == "ofdm_tx"
                                        ? workloads::kOfdmTimingConstraint
                                        : workloads::kJpegTimingConstraint;
    const auto p = paper_platform();
    const auto greedy = run_methodology(app.cdfg, app.profile, p, constraint);
    const auto exhaustive =
        run_methodology(app.cdfg, app.profile, p, constraint,
                        with_strategy(StrategyKind::kExhaustive));
    EXPECT_TRUE(exhaustive.met) << app.cdfg.name();
    EXPECT_LE(exhaustive.moved.size(), greedy.moved.size()) << app.cdfg.name();
  }
}

TEST(ExhaustiveStrategyTest, BestEffortWhenUnsatisfiable) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  const auto report = run_methodology(app.cdfg, app.profile, p,
                                      /*constraint=*/1,
                                      with_strategy(StrategyKind::kExhaustive));
  const auto optimal = exhaustive_optimal(app.cdfg, app.profile, p,
                                          /*constraint=*/1,
                                          /*max_kernels=*/18);
  EXPECT_FALSE(report.met);
  EXPECT_FALSE(optimal.fewest_moves.has_value());
  EXPECT_EQ(report.final_cycles, optimal.best_cycles);
}

TEST(AnnealingStrategyTest, DeterministicPerSeed) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  auto options = with_strategy(StrategyKind::kAnnealing);
  options.random_seed = 99;
  const auto a = run_methodology(app.cdfg, app.profile, p,
                                 workloads::kOfdmTimingConstraint, options);
  const auto b = run_methodology(app.cdfg, app.profile, p,
                                 workloads::kOfdmTimingConstraint, options);
  EXPECT_EQ(a.moved, b.moved);
  EXPECT_EQ(a.final_cycles, b.final_cycles);
  EXPECT_EQ(a.engine_iterations, b.engine_iterations);
}

TEST(AnnealingStrategyTest, MeetsPaperConstraintsAndRespectsOptimum) {
  for (const PaperApp& app : {build_ofdm_model(), build_jpeg_model()}) {
    const std::int64_t constraint = app.cdfg.name() == "ofdm_tx"
                                        ? workloads::kOfdmTimingConstraint
                                        : workloads::kJpegTimingConstraint;
    const auto p = paper_platform();
    const auto report =
        run_methodology(app.cdfg, app.profile, p, constraint,
                        with_strategy(StrategyKind::kAnnealing));
    EXPECT_TRUE(report.met) << app.cdfg.name();
    EXPECT_LE(report.final_cycles, report.initial_cycles);
  }
}

TEST(AnnealingStrategyTest, FullBudgetNeverBeatsExhaustiveOptimum) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  // Unsatisfiable constraint: both searches minimize total cycles, and
  // the branch-and-bound optimum (over all 18 kernels) is the bound.
  auto anneal = with_strategy(StrategyKind::kAnnealing);
  anneal.stop_when_met = false;
  const auto sa =
      run_methodology(app.cdfg, app.profile, p, /*constraint=*/1, anneal);
  const auto optimal = run_methodology(app.cdfg, app.profile, p,
                                       /*constraint=*/1,
                                       with_strategy(StrategyKind::kExhaustive));
  EXPECT_GE(sa.final_cycles, optimal.final_cycles);
  EXPECT_LT(sa.final_cycles, sa.initial_cycles);
}

// Runs the annealing strategy directly — run_methodology's report drops
// the uphill acceptance counters — with stop_when_met disabled so every
// walk spends the full iteration budget.
StrategyResult anneal_probe(const PaperApp& app,
                            const platform::Platform& p,
                            ObjectiveKind objective) {
  HybridMapper mapper(app.cdfg, p);
  MethodologyOptions options;
  options.strategy = StrategyKind::kAnnealing;
  options.cost.objective.kind = objective;
  options.stop_when_met = false;
  const auto kernels =
      analysis::extract_kernels(app.cdfg, app.profile, options.analysis);
  AnnealingStrategy strategy;
  return strategy.run(
      {mapper, app.profile, workloads::kOfdmTimingConstraint, options,
       kernels});
}

// Regression test for the energy-space temperature bug: the 5% starting
// temperature used to be computed on the raw objective scalar, so a
// pJ-scale walk started orders of magnitude hotter (relative to its own
// deltas) than a cycle-scale walk on the same app and accepted uphill
// moves near-blindly for most of the budget. With the schedule
// normalized by the initial objective value, the Metropolis acceptance
// rate must land in the same band regardless of the objective's unit.
TEST(AnnealingStrategyTest, AcceptanceRateIsObjectiveScaleFree) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();

  const StrategyResult timing = anneal_probe(app, p, ObjectiveKind::kTiming);
  const StrategyResult energy = anneal_probe(app, p, ObjectiveKind::kEnergy);
  ASSERT_GT(timing.uphill_proposed, 0);
  ASSERT_GT(energy.uphill_proposed, 0);

  const double timing_rate = static_cast<double>(timing.uphill_accepted) /
                             timing.uphill_proposed;
  const double energy_rate = static_cast<double>(energy.uphill_accepted) /
                             energy.uphill_proposed;
  // A blindly-hot walk accepts nearly every uphill proposal; a healthy
  // geometric schedule rejects most of them over the full budget.
  EXPECT_LT(energy_rate, 0.5);
  // And the two spaces cool comparably: same acceptance band.
  EXPECT_NEAR(energy_rate, timing_rate, 0.25);
}

TEST(StrategyTest, MapperReuseAcrossStrategiesIsConsistent) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  HybridMapper shared(app.cdfg, p);
  for (const StrategyKind kind : all_strategies()) {
    const auto reused = run_methodology(shared, app.profile,
                                        workloads::kOfdmTimingConstraint,
                                        with_strategy(kind));
    const auto fresh = run_methodology(app.cdfg, app.profile, p,
                                       workloads::kOfdmTimingConstraint,
                                       with_strategy(kind));
    EXPECT_EQ(reused.moved, fresh.moved) << strategy_name(kind);
    EXPECT_EQ(reused.final_cycles, fresh.final_cycles) << strategy_name(kind);
  }
}

}  // namespace
}  // namespace amdrel::core
