#include "core/energy.h"
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

using workloads::build_jpeg_model;
using workloads::build_ofdm_model;
using workloads::PaperApp;

TEST(PipelineTest, PipelineNeverSlowerThanSequential) {
  const PaperApp app = build_ofdm_model();
  const auto report = run_methodology(
      app.cdfg, app.profile, platform::make_paper_platform(1500, 2),
      workloads::kOfdmTimingConstraint);
  for (const int frames : {1, 2, 6}) {
    const PipelineEstimate estimate = estimate_pipeline(report, frames);
    EXPECT_LE(estimate.pipelined_cycles, estimate.sequential_cycles)
        << frames << " frames";
    EXPECT_GE(estimate.speedup(), 1.0);
  }
}

TEST(PipelineTest, SingleFrameHasNoOverlap) {
  const PaperApp app = build_ofdm_model();
  const auto report = run_methodology(
      app.cdfg, app.profile, platform::make_paper_platform(1500, 2),
      workloads::kOfdmTimingConstraint);
  const PipelineEstimate estimate = estimate_pipeline(report, 1);
  EXPECT_EQ(estimate.pipelined_cycles, estimate.sequential_cycles);
}

TEST(PipelineTest, ManyFramesApproachBottleneckRate) {
  const PaperApp app = build_ofdm_model();
  const auto report = run_methodology(
      app.cdfg, app.profile, platform::make_paper_platform(1500, 2),
      workloads::kOfdmTimingConstraint);
  const PipelineEstimate estimate = estimate_pipeline(report, 6);
  const std::int64_t bottleneck =
      std::max(estimate.fine_per_frame, estimate.coarse_per_frame);
  // makespan/frame -> bottleneck as frames grow.
  EXPECT_LT(estimate.pipelined_cycles / 6 - bottleneck,
            (estimate.fine_per_frame + estimate.coarse_per_frame) / 6 + 1);
  // Both units stay busy (the paper's utilization claim): the bottleneck
  // side is >90% utilized.
  EXPECT_GT(std::max(estimate.fine_utilization(),
                     estimate.coarse_utilization()),
            0.9);
}

TEST(PipelineTest, RejectsBadFrameCount) {
  PartitionReport report;
  EXPECT_THROW(estimate_pipeline(report, 0), Error);
}

TEST(EnergyTest, AllFineBreakdownHasNoCoarseTerms) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const EnergyBreakdown breakdown =
      estimate_energy(app.cdfg, app.profile, p, {});
  EXPECT_GT(breakdown.fine_pj, 0.0);
  EXPECT_EQ(breakdown.coarse_pj, 0.0);
  EXPECT_GT(breakdown.reconfig_pj, 0.0);  // BB22 splits at A=1500
}

TEST(EnergyTest, MovingHotKernelSavesEnergy) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double all_fine =
      estimate_energy(app.cdfg, app.profile, p, {}).total_pj();
  const double with_move =
      estimate_energy(app.cdfg, app.profile, p,
                      {app.block_by_label("BB22")})
          .total_pj();
  EXPECT_LT(with_move, all_fine);
}

TEST(EnergyTest, LargerFpgaNeedsNoReconfigEnergy) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(5000, 2);
  const EnergyBreakdown breakdown =
      estimate_energy(app.cdfg, app.profile, p, {});
  EXPECT_EQ(breakdown.reconfig_pj, 0.0);  // everything fits resident
}

TEST(EnergyTest, EnergyMethodologyMeetsBudget) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double all_fine =
      estimate_energy(app.cdfg, app.profile, p, {}).total_pj();
  const EnergyPartitionReport report = run_energy_methodology(
      app.cdfg, app.profile, p, /*budget_pj=*/all_fine * 0.6);
  EXPECT_TRUE(report.met);
  EXPECT_FALSE(report.moved.empty());
  EXPECT_LE(report.energy.total_pj(), all_fine * 0.6);
  EXPECT_GT(report.reduction_percent(), 0.0);
}

TEST(EnergyTest, TrivialBudgetNeedsNoMoves) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const EnergyPartitionReport report = run_energy_methodology(
      app.cdfg, app.profile, p, /*budget_pj=*/1e18);
  EXPECT_TRUE(report.met);
  EXPECT_TRUE(report.moved.empty());
}

TEST(EnergyTest, ImpossibleBudgetReportsBestEffort) {
  const PaperApp app = build_jpeg_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const EnergyPartitionReport report =
      run_energy_methodology(app.cdfg, app.profile, p, /*budget_pj=*/1.0);
  EXPECT_FALSE(report.met);
  EXPECT_FALSE(report.moved.empty());
  EXPECT_LT(report.energy.total_pj(), report.initial_pj);
}

}  // namespace
}  // namespace amdrel::core
