#include "core/energy.h"
#include "core/pipeline.h"
#include "core/strategy.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

using workloads::build_jpeg_model;
using workloads::build_ofdm_model;
using workloads::PaperApp;

TEST(PipelineTest, PipelineNeverSlowerThanSequential) {
  const PaperApp app = build_ofdm_model();
  const auto report = run_methodology(
      app.cdfg, app.profile, platform::make_paper_platform(1500, 2),
      workloads::kOfdmTimingConstraint);
  for (const int frames : {1, 2, 6}) {
    const PipelineEstimate estimate = estimate_pipeline(report, frames);
    EXPECT_LE(estimate.pipelined_cycles, estimate.sequential_cycles)
        << frames << " frames";
    EXPECT_GE(estimate.speedup(), 1.0);
  }
}

TEST(PipelineTest, SingleFrameHasNoOverlap) {
  const PaperApp app = build_ofdm_model();
  const auto report = run_methodology(
      app.cdfg, app.profile, platform::make_paper_platform(1500, 2),
      workloads::kOfdmTimingConstraint);
  const PipelineEstimate estimate = estimate_pipeline(report, 1);
  EXPECT_EQ(estimate.pipelined_cycles, estimate.sequential_cycles);
}

TEST(PipelineTest, ManyFramesApproachBottleneckRate) {
  const PaperApp app = build_ofdm_model();
  const auto report = run_methodology(
      app.cdfg, app.profile, platform::make_paper_platform(1500, 2),
      workloads::kOfdmTimingConstraint);
  const PipelineEstimate estimate = estimate_pipeline(report, 6);
  const std::int64_t bottleneck =
      std::max(estimate.fine_per_frame, estimate.coarse_per_frame);
  // makespan/frame -> bottleneck as frames grow.
  EXPECT_LT(estimate.pipelined_cycles / 6 - bottleneck,
            (estimate.fine_per_frame + estimate.coarse_per_frame) / 6 + 1);
  // Both units stay busy (the paper's utilization claim): the bottleneck
  // side is >90% utilized.
  EXPECT_GT(std::max(estimate.fine_utilization(),
                     estimate.coarse_utilization()),
            0.9);
}

TEST(PipelineTest, RejectsBadFrameCount) {
  PartitionReport report;
  EXPECT_THROW(estimate_pipeline(report, 0), Error);
}

TEST(EnergyTest, AllFineBreakdownHasNoCoarseTerms) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const EnergyBreakdown breakdown =
      estimate_energy(app.cdfg, app.profile, p, {});
  EXPECT_GT(breakdown.fine_pj, 0.0);
  EXPECT_EQ(breakdown.coarse_pj, 0.0);
  EXPECT_GT(breakdown.reconfig_pj, 0.0);  // BB22 splits at A=1500
}

TEST(EnergyTest, MovingHotKernelSavesEnergy) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double all_fine =
      estimate_energy(app.cdfg, app.profile, p, {}).total_pj();
  const double with_move =
      estimate_energy(app.cdfg, app.profile, p,
                      {app.block_by_label("BB22")})
          .total_pj();
  EXPECT_LT(with_move, all_fine);
}

TEST(EnergyTest, LargerFpgaNeedsNoReconfigEnergy) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(5000, 2);
  const EnergyBreakdown breakdown =
      estimate_energy(app.cdfg, app.profile, p, {});
  EXPECT_EQ(breakdown.reconfig_pj, 0.0);  // everything fits resident
}

TEST(EnergyTest, EnergyMethodologyMeetsBudget) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double all_fine =
      estimate_energy(app.cdfg, app.profile, p, {}).total_pj();
  const EnergyPartitionReport report = run_energy_methodology(
      app.cdfg, app.profile, p, /*budget_pj=*/all_fine * 0.6);
  EXPECT_TRUE(report.met);
  EXPECT_FALSE(report.moved.empty());
  EXPECT_LE(report.energy.total_pj(), all_fine * 0.6);
  EXPECT_GT(report.reduction_percent(), 0.0);
}

TEST(EnergyTest, TrivialBudgetNeedsNoMoves) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const EnergyPartitionReport report = run_energy_methodology(
      app.cdfg, app.profile, p, /*budget_pj=*/1e18);
  EXPECT_TRUE(report.met);
  EXPECT_TRUE(report.moved.empty());
}

TEST(EnergyTest, ImpossibleBudgetReportsBestEffort) {
  const PaperApp app = build_jpeg_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const EnergyPartitionReport report =
      run_energy_methodology(app.cdfg, app.profile, p, /*budget_pj=*/1.0);
  EXPECT_FALSE(report.met);
  EXPECT_FALSE(report.moved.empty());
  EXPECT_LT(report.energy.total_pj(), report.initial_pj);
}

// With an unmeetable budget the strategy engine reports the best split
// it saw, a deliberate improvement over the original standalone loop,
// which always reported its LAST trial (every eligible kernel moved)
// even when an earlier prefix was strictly better. The golden in
// energy_determinism_test pins byte-identity on met budgets, where the
// two behaviours coincide.
TEST(EnergyStrategyTest, UnmetBudgetNeverWorseThanOldAlwaysCommitLoop) {
  const PaperApp app = build_jpeg_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const EnergyPartitionReport report =
      run_energy_methodology(app.cdfg, app.profile, p, /*budget_pj=*/1.0);
  ASSERT_FALSE(report.met);

  // The old loop's result: every CGC-eligible kernel committed.
  std::vector<ir::BlockId> all_eligible;
  for (const auto& kernel :
       analysis::extract_kernels(app.cdfg, app.profile)) {
    if (kernel.cgc_eligible) all_eligible.push_back(kernel.block);
  }
  const double old_energy =
      estimate_energy(app.cdfg, app.profile, p, all_eligible).total_pj();
  EXPECT_LE(report.energy.total_pj(), old_energy);
  // JPEG's energy-vs-prefix curve is non-monotone, so "best seen" is
  // strictly better here — the improvement is real, not vacuous.
  EXPECT_LT(report.energy.total_pj(), old_energy);
}

TEST(EnergyStrategyTest, AllStrategiesServeTheEnergyObjective) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double all_fine =
      estimate_energy(app.cdfg, app.profile, p, {}).total_pj();
  for (const StrategyKind kind :
       {StrategyKind::kGreedyPaper, StrategyKind::kExhaustive,
        StrategyKind::kAnnealing}) {
    MethodologyOptions options;
    options.strategy = kind;
    options.exhaustive_max_kernels = 12;
    const EnergyPartitionReport report = run_energy_methodology(
        app.cdfg, app.profile, p, all_fine * 0.006, EnergyModel{}, options);
    EXPECT_TRUE(report.met) << strategy_name(kind);
    EXPECT_FALSE(report.moved.empty()) << strategy_name(kind);
    EXPECT_LE(report.energy.total_pj(), all_fine * 0.006)
        << strategy_name(kind);
    // The reported breakdown is exactly the repriced final split.
    const EnergyBreakdown repriced =
        estimate_energy(app.cdfg, app.profile, p, report.moved);
    EXPECT_DOUBLE_EQ(report.energy.total_pj(), repriced.total_pj())
        << strategy_name(kind);
  }
}

TEST(EnergyStrategyTest, ExhaustiveMeetsBudgetWithFewestMoves) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double all_fine =
      estimate_energy(app.cdfg, app.profile, p, {}).total_pj();
  const double budget = all_fine * 0.006;

  MethodologyOptions greedy;
  const EnergyPartitionReport g = run_energy_methodology(
      app.cdfg, app.profile, p, budget, EnergyModel{}, greedy);
  MethodologyOptions exhaustive;
  exhaustive.strategy = StrategyKind::kExhaustive;
  exhaustive.exhaustive_max_kernels = 12;
  const EnergyPartitionReport e = run_energy_methodology(
      app.cdfg, app.profile, p, budget, EnergyModel{}, exhaustive);
  ASSERT_TRUE(g.met);
  ASSERT_TRUE(e.met);
  EXPECT_LE(e.moved.size(), g.moved.size());
}

TEST(EnergyStrategyTest, AnnealingIsDeterministicPerSeed) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double all_fine =
      estimate_energy(app.cdfg, app.profile, p, {}).total_pj();
  MethodologyOptions options;
  options.strategy = StrategyKind::kAnnealing;
  options.random_seed = 42;
  const EnergyPartitionReport a = run_energy_methodology(
      app.cdfg, app.profile, p, all_fine * 0.005, EnergyModel{}, options);
  const EnergyPartitionReport b = run_energy_methodology(
      app.cdfg, app.profile, p, all_fine * 0.005, EnergyModel{}, options);
  EXPECT_EQ(a.moved, b.moved);
  EXPECT_DOUBLE_EQ(a.energy.total_pj(), b.energy.total_pj());
}

TEST(CombinedObjectiveTest, MetRequiresBothConstraints) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  HybridMapper mapper(app.cdfg, p);
  const double all_fine_pj =
      estimate_energy(mapper, app.profile, {}).total_pj();

  MethodologyOptions options;
  options.cost.objective.kind = ObjectiveKind::kCombined;
  options.cost.energy_budget_pj = all_fine_pj * 0.006;
  const PartitionReport ok = run_methodology(
      mapper, app.profile, workloads::kOfdmTimingConstraint, options);
  EXPECT_TRUE(ok.met);
  EXPECT_LE(ok.final_cycles, workloads::kOfdmTimingConstraint);
  EXPECT_LE(ok.energy.total_pj(), options.cost.energy_budget_pj);

  // An unreachable timing constraint must fail the combined objective
  // even when the energy budget alone would be satisfied.
  const PartitionReport bad =
      run_methodology(mapper, app.profile, /*timing=*/1, options);
  EXPECT_FALSE(bad.met);
}

// Regression: annealing's stop_when_met break must return a split that
// satisfies met(). Under kCombined the minimized scalar (here: pure
// cycles) is not the met() test (here: the energy budget), so the
// lowest-value state seen can violate the budget the stopping state
// meets — the engine must hand back the meeting split. JPEG's
// non-monotone energy-vs-moves curve makes ~half of these seeds stop on
// exactly that divergence.
TEST(CombinedObjectiveTest, AnnealingEarlyStopReturnsAMeetingSplit) {
  const PaperApp app = build_jpeg_model();
  const auto p = platform::make_paper_platform(1500, 2);
  int early_stops = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    MethodologyOptions options;
    options.strategy = StrategyKind::kAnnealing;
    options.cost.objective.kind = ObjectiveKind::kCombined;
    options.cost.objective.cycle_weight = 1.0;
    options.cost.objective.energy_weight = 0.0;
    options.cost.energy_budget_pj = 117.0e6;
    options.random_seed = seed;
    const PartitionReport report = run_methodology(
        app.cdfg, app.profile, p,
        /*timing_constraint=*/1'000'000'000'000LL, options);
    if (report.engine_iterations < options.anneal_iterations) {
      // The walk broke early, which only happens on a met() split.
      ++early_stops;
      EXPECT_TRUE(report.met) << "seed " << seed;
      EXPECT_LE(report.energy.total_pj(), options.cost.energy_budget_pj)
          << "seed " << seed;
    }
  }
  EXPECT_GT(early_stops, 0);  // the invariant was actually exercised
}

TEST(CombinedObjectiveTest, NegativeWeightsAreRejected) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  MethodologyOptions options;
  options.cost.objective.kind = ObjectiveKind::kCombined;
  options.cost.objective.energy_weight = -1.0;
  EXPECT_THROW(run_methodology(app.cdfg, app.profile, p,
                               workloads::kOfdmTimingConstraint, options),
               Error);
}

TEST(ObjectiveRegistryTest, NamesRoundTrip) {
  for (const ObjectiveKind kind : all_objectives()) {
    const auto parsed = parse_objective(objective_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_objective("garbage").has_value());
  EXPECT_FALSE(parse_objective("").has_value());
}

// Every report carries energy columns, whatever the objective — the
// sweep Pareto fronts and the JSON/CSV emitters rely on it.
TEST(ObjectiveRegistryTest, TimingReportsStillCarryEnergy) {
  const PaperApp app = build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const PartitionReport report = run_methodology(
      app.cdfg, app.profile, p, workloads::kOfdmTimingConstraint);
  EXPECT_EQ(report.objective, ObjectiveKind::kTiming);
  EXPECT_GT(report.initial_energy_pj, 0.0);
  const EnergyBreakdown repriced =
      estimate_energy(app.cdfg, app.profile, p, report.moved);
  EXPECT_DOUBLE_EQ(report.energy.total_pj(), repriced.total_pj());
}

}  // namespace
}  // namespace amdrel::core
