#include "ir/cdfg.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace amdrel::ir {
namespace {

/// entry -> header <-> body, header -> exit : one natural loop.
Cdfg make_simple_loop() {
  Cdfg cdfg("loop");
  const BlockId entry = cdfg.add_block("entry");
  const BlockId header = cdfg.add_block("header");
  const BlockId body = cdfg.add_block("body");
  const BlockId exit = cdfg.add_block("exit");
  cdfg.add_edge(entry, header);
  cdfg.add_edge(header, body);
  cdfg.add_edge(body, header);
  cdfg.add_edge(header, exit);
  cdfg.set_entry(entry);
  return cdfg;
}

TEST(CdfgTest, DominatorsOfSimpleLoop) {
  const Cdfg cdfg = make_simple_loop();
  const auto dom = cdfg.dominators();
  // header dominates body and exit; entry dominates everything.
  EXPECT_EQ(dom[0], (std::vector<BlockId>{0}));
  EXPECT_EQ(dom[1], (std::vector<BlockId>{0, 1}));
  EXPECT_EQ(dom[2], (std::vector<BlockId>{0, 1, 2}));
  EXPECT_EQ(dom[3], (std::vector<BlockId>{0, 1, 3}));
}

TEST(CdfgTest, NaturalLoopDetection) {
  Cdfg cdfg = make_simple_loop();
  const auto& loops = cdfg.analyze_loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1);
  EXPECT_EQ(loops[0].latch, 2);
  EXPECT_EQ(loops[0].body, (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(cdfg.block(0).loop_depth, 0);
  EXPECT_EQ(cdfg.block(1).loop_depth, 1);
  EXPECT_EQ(cdfg.block(2).loop_depth, 1);
  EXPECT_EQ(cdfg.block(3).loop_depth, 0);
}

TEST(CdfgTest, NestedLoopDepths) {
  // entry -> h1 -> h2 <-> b2 ; h2 -> l1 -> h1 ; h1 -> exit
  Cdfg cdfg("nested");
  const BlockId entry = cdfg.add_block();
  const BlockId h1 = cdfg.add_block();
  const BlockId h2 = cdfg.add_block();
  const BlockId b2 = cdfg.add_block();
  const BlockId l1 = cdfg.add_block();
  const BlockId exit = cdfg.add_block();
  cdfg.add_edge(entry, h1);
  cdfg.add_edge(h1, h2);
  cdfg.add_edge(h2, b2);
  cdfg.add_edge(b2, h2);  // inner back edge
  cdfg.add_edge(h2, l1);
  cdfg.add_edge(l1, h1);  // outer back edge
  cdfg.add_edge(h1, exit);
  cdfg.set_entry(entry);

  cdfg.analyze_loops();
  EXPECT_EQ(cdfg.block(entry).loop_depth, 0);
  EXPECT_EQ(cdfg.block(h1).loop_depth, 1);
  EXPECT_EQ(cdfg.block(h2).loop_depth, 2);
  EXPECT_EQ(cdfg.block(b2).loop_depth, 2);
  EXPECT_EQ(cdfg.block(l1).loop_depth, 1);
  EXPECT_EQ(cdfg.block(exit).loop_depth, 0);
}

TEST(CdfgTest, SelfLoopCountsAsLoop) {
  Cdfg cdfg("self");
  const BlockId entry = cdfg.add_block();
  const BlockId bb = cdfg.add_block();
  const BlockId exit = cdfg.add_block();
  cdfg.add_edge(entry, bb);
  cdfg.add_edge(bb, bb);
  cdfg.add_edge(bb, exit);
  cdfg.set_entry(entry);
  const auto& loops = cdfg.analyze_loops();
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, bb);
  EXPECT_EQ(loops[0].latch, bb);
  EXPECT_EQ(cdfg.block(bb).loop_depth, 1);
}

TEST(CdfgTest, ReversePostOrderStartsAtEntry) {
  const Cdfg cdfg = make_simple_loop();
  const auto rpo = cdfg.reverse_post_order();
  ASSERT_FALSE(rpo.empty());
  EXPECT_EQ(rpo.front(), cdfg.entry());
  EXPECT_EQ(rpo.size(), 4u);
}

TEST(CdfgTest, UnreachableBlocksAreNotVisited) {
  Cdfg cdfg("unreachable");
  const BlockId entry = cdfg.add_block();
  const BlockId reachable = cdfg.add_block();
  cdfg.add_block();  // island
  cdfg.add_edge(entry, reachable);
  cdfg.set_entry(entry);
  EXPECT_EQ(cdfg.reverse_post_order().size(), 2u);
  EXPECT_NO_THROW(cdfg.analyze_loops());
}

TEST(CdfgTest, ParallelEdgesAreDeduplicated) {
  Cdfg cdfg("dup");
  const BlockId a = cdfg.add_block();
  const BlockId b = cdfg.add_block();
  cdfg.add_edge(a, b);
  cdfg.add_edge(a, b);
  EXPECT_EQ(cdfg.successors(a).size(), 1u);
  EXPECT_EQ(cdfg.predecessors(b).size(), 1u);
}

TEST(CdfgTest, AddEdgeValidatesIds) {
  Cdfg cdfg("bad");
  cdfg.add_block();
  EXPECT_THROW(cdfg.add_edge(0, 5), Error);
}

TEST(CdfgTest, ValidateRequiresEntry) {
  Cdfg cdfg("noentry");
  EXPECT_THROW(cdfg.validate(), Error);
  cdfg.add_block();
  EXPECT_NO_THROW(cdfg.validate());  // first block becomes the entry
}

}  // namespace
}  // namespace amdrel::ir
