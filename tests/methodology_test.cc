#include "core/methodology.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/hybrid_mapper.h"
#include "support/error.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

using workloads::build_jpeg_model;
using workloads::build_ofdm_model;
using workloads::PaperApp;

platform::Platform paper_platform() {
  return platform::make_paper_platform(1500, 2);
}

TEST(HybridMapperTest, EquationTwoIdentity) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  HybridMapper mapper(app.cdfg, p);
  const auto moved = std::vector<ir::BlockId>{
      app.block_by_label("BB22"), app.block_by_label("BB12")};
  const SplitCost cost = mapper.evaluate(app.profile, moved);
  EXPECT_EQ(cost.total(), cost.t_fpga + cost.t_coarse + cost.t_comm);
  EXPECT_GT(cost.t_coarse, 0);
  EXPECT_GT(cost.t_comm, 0);
}

TEST(HybridMapperTest, EmptySplitIsAllFine) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  HybridMapper mapper(app.cdfg, p);
  const SplitCost cost = mapper.evaluate(app.profile, {});
  EXPECT_EQ(cost.t_fpga, mapper.all_fine_cycles(app.profile));
  EXPECT_EQ(cost.t_coarse, 0);
  EXPECT_EQ(cost.t_comm, 0);
}

TEST(HybridMapperTest, MovingABlockRemovesItsFineCost) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  HybridMapper mapper(app.cdfg, p);
  const ir::BlockId hot = app.block_by_label("BB22");
  const SplitCost cost = mapper.evaluate(app.profile, {hot});
  const std::int64_t fine_contribution =
      mapper.fine_cycles_per_invocation(hot) *
      static_cast<std::int64_t>(app.profile.count(hot));
  EXPECT_EQ(cost.t_fpga, mapper.all_fine_cycles(app.profile) -
                             fine_contribution);
}

TEST(HybridMapperTest, DoubleMoveRejected) {
  const PaperApp app = build_ofdm_model();
  const auto p = paper_platform();
  HybridMapper mapper(app.cdfg, p);
  const ir::BlockId hot = app.block_by_label("BB22");
  EXPECT_THROW(mapper.evaluate(app.profile, {hot, hot}), Error);
}

TEST(MethodologyTest, ExitsAtStepTwoWhenConstraintAlreadyMet) {
  const PaperApp app = build_ofdm_model();
  const auto report = run_methodology(app.cdfg, app.profile,
                                      paper_platform(),
                                      /*constraint=*/1LL << 40);
  EXPECT_TRUE(report.initial_meets);
  EXPECT_TRUE(report.met);
  EXPECT_TRUE(report.moved.empty());
  EXPECT_EQ(report.final_cycles, report.initial_cycles);
}

TEST(MethodologyTest, MovesKernelsInWeightOrder) {
  const PaperApp app = build_ofdm_model();
  const auto report =
      run_methodology(app.cdfg, app.profile, paper_platform(),
                      workloads::kOfdmTimingConstraint);
  ASSERT_GE(report.moved.size(), 2u);
  EXPECT_EQ(app.cdfg.block(report.moved[0]).name, "BB22");
  EXPECT_EQ(app.cdfg.block(report.moved[1]).name, "BB12");
  EXPECT_TRUE(report.met);
  EXPECT_LE(report.final_cycles, workloads::kOfdmTimingConstraint);
}

TEST(MethodologyTest, UnsatisfiableConstraintReportsBestEffort) {
  const PaperApp app = build_ofdm_model();
  const auto report =
      run_methodology(app.cdfg, app.profile, paper_platform(),
                      /*constraint=*/1);
  EXPECT_FALSE(report.met);
  EXPECT_FALSE(report.moved.empty());
  EXPECT_LT(report.final_cycles, report.initial_cycles);
  // Every eligible kernel was tried.
  EXPECT_EQ(report.engine_iterations,
            static_cast<int>(report.kernels.size()));
}

TEST(MethodologyTest, ReductionPercentConsistent) {
  const PaperApp app = build_jpeg_model();
  const auto report =
      run_methodology(app.cdfg, app.profile, paper_platform(),
                      workloads::kJpegTimingConstraint);
  const double expected =
      100.0 * (1.0 - static_cast<double>(report.final_cycles) /
                         static_cast<double>(report.initial_cycles));
  EXPECT_DOUBLE_EQ(report.reduction_percent(), expected);
  EXPECT_GT(report.reduction_percent(), 0.0);
}

TEST(MethodologyTest, MoreCgcsNeverSlower) {
  const PaperApp app = build_jpeg_model();
  for (const double area : {1500.0, 5000.0}) {
    const auto two = run_methodology(
        app.cdfg, app.profile, platform::make_paper_platform(area, 2),
        workloads::kJpegTimingConstraint);
    const auto three = run_methodology(
        app.cdfg, app.profile, platform::make_paper_platform(area, 3),
        workloads::kJpegTimingConstraint);
    EXPECT_LE(three.cost.t_coarse, two.cost.t_coarse) << "area " << area;
  }
}

TEST(MethodologyTest, LargerAreaSmallerReduction) {
  // The paper's qualitative claim: as the FPGA area grows, the relative
  // cycle reduction shrinks.
  for (const PaperApp& app : {build_ofdm_model(), build_jpeg_model()}) {
    const std::int64_t constraint = app.cdfg.name() == "ofdm_tx"
                                        ? workloads::kOfdmTimingConstraint
                                        : workloads::kJpegTimingConstraint;
    const auto small = run_methodology(
        app.cdfg, app.profile, platform::make_paper_platform(1500, 2),
        constraint);
    const auto large = run_methodology(
        app.cdfg, app.profile, platform::make_paper_platform(5000, 2),
        constraint);
    EXPECT_GT(small.reduction_percent(), large.reduction_percent())
        << app.cdfg.name();
  }
}

TEST(MethodologyTest, BenefitOrderingNeverWorseThanCodeOrder) {
  const PaperApp app = build_ofdm_model();
  MethodologyOptions benefit;
  benefit.ordering = KernelOrdering::kBenefitDescending;
  benefit.stop_when_met = false;
  MethodologyOptions code;
  code.ordering = KernelOrdering::kCodeOrder;
  code.stop_when_met = false;
  const auto a = run_methodology(app.cdfg, app.profile, paper_platform(),
                                 workloads::kOfdmTimingConstraint, benefit);
  const auto b = run_methodology(app.cdfg, app.profile, paper_platform(),
                                 workloads::kOfdmTimingConstraint, code);
  EXPECT_LE(a.final_cycles, b.final_cycles);
}

TEST(MethodologyTest, RandomOrderingIsDeterministicPerSeed) {
  const PaperApp app = build_ofdm_model();
  MethodologyOptions options;
  options.ordering = KernelOrdering::kRandom;
  options.random_seed = 123;
  const auto a = run_methodology(app.cdfg, app.profile, paper_platform(),
                                 workloads::kOfdmTimingConstraint, options);
  const auto b = run_methodology(app.cdfg, app.profile, paper_platform(),
                                 workloads::kOfdmTimingConstraint, options);
  EXPECT_EQ(a.moved, b.moved);
  EXPECT_EQ(a.final_cycles, b.final_cycles);
}

TEST(BaselinesTest, AllCoarseMovesEveryEligibleBlock) {
  const PaperApp app = build_ofdm_model();
  const auto report = all_coarse_split(app.cdfg, app.profile,
                                       paper_platform(),
                                       workloads::kOfdmTimingConstraint);
  // 18 application blocks, all division-free and executed.
  EXPECT_EQ(report.moved.size(), 18u);
  EXPECT_EQ(report.cost.t_fpga, 0);
  EXPECT_GT(report.cost.t_coarse, 0);
}

TEST(BaselinesTest, ExhaustiveOptimalBoundsGreedy) {
  const PaperApp app = build_ofdm_model();
  const auto greedy =
      run_methodology(app.cdfg, app.profile, paper_platform(),
                      workloads::kOfdmTimingConstraint);
  const auto optimal =
      exhaustive_optimal(app.cdfg, app.profile, paper_platform(),
                         workloads::kOfdmTimingConstraint, /*max_kernels=*/12);
  ASSERT_TRUE(optimal.fewest_moves.has_value());
  // Optimal meets the constraint with no more moves than the greedy
  // engine, and its best-cycles subset is at least as fast as greedy's.
  EXPECT_LE(optimal.fewest_moves->size(), greedy.moved.size());
  EXPECT_LE(optimal.best_cycles, greedy.final_cycles);
  EXPECT_GT(optimal.subsets_evaluated, 1000u);
}

}  // namespace
}  // namespace amdrel::core
