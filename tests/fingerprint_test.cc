// Content-addressed fingerprinting (core/fingerprint.h): determinism,
// sensitivity (any semantic mutation of a CDFG, profile, platform or
// option set changes the digest) and the hex round-trip the persistent
// sweep cache keys on. The builtin workloads' exact digests are pinned
// separately by fingerprint_determinism_test's golden file.

#include "core/fingerprint.h"

#include <set>

#include <gtest/gtest.h>

#include "synth/cdfg_generator.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

TEST(FingerprintTest, HexRoundTrip) {
  Fingerprint fp;
  fp.hi = 0x0123456789abcdefULL;
  fp.lo = 0xfedcba9876543210ULL;
  EXPECT_EQ(fp.to_hex(), "0123456789abcdeffedcba9876543210");
  const auto parsed = Fingerprint::from_hex(fp.to_hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);
}

TEST(FingerprintTest, FromHexIsStrict) {
  EXPECT_FALSE(Fingerprint::from_hex("").has_value());
  EXPECT_FALSE(Fingerprint::from_hex("0123").has_value());
  // 31 and 33 chars.
  EXPECT_FALSE(
      Fingerprint::from_hex("0123456789abcdeffedcba987654321").has_value());
  EXPECT_FALSE(
      Fingerprint::from_hex("0123456789abcdeffedcba98765432100").has_value());
  // Uppercase and non-hex are rejected (the writer emits lowercase only).
  EXPECT_FALSE(
      Fingerprint::from_hex("0123456789ABCDEFFEDCBA9876543210").has_value());
  EXPECT_FALSE(
      Fingerprint::from_hex("0123456789abcdeffedcba987654321g").has_value());
}

TEST(FingerprintTest, MixerSeparatesConcatenations) {
  // Length-prefixed strings: ("ab","c") and ("a","bc") must differ.
  Fingerprinter a;
  a.mix("ab");
  a.mix("c");
  Fingerprinter b;
  b.mix("a");
  b.mix("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(FingerprintTest, RebuiltModelsDigestIdentically) {
  EXPECT_EQ(app_fingerprint(workloads::build_ofdm_model().cdfg,
                            workloads::build_ofdm_model().profile),
            app_fingerprint(workloads::build_ofdm_model().cdfg,
                            workloads::build_ofdm_model().profile));
  EXPECT_EQ(fingerprint(workloads::build_jpeg_model().cdfg),
            fingerprint(workloads::build_jpeg_model().cdfg));
}

TEST(FingerprintTest, DistinctAppsDigestDistinctly) {
  const auto ofdm = workloads::build_ofdm_model();
  const auto jpeg = workloads::build_jpeg_model();
  EXPECT_NE(fingerprint(ofdm.cdfg), fingerprint(jpeg.cdfg));
  EXPECT_NE(fingerprint(ofdm.profile), fingerprint(jpeg.profile));
  EXPECT_NE(app_fingerprint(ofdm.cdfg, ofdm.profile),
            app_fingerprint(jpeg.cdfg, jpeg.profile));
}

TEST(FingerprintTest, DfgMutationsChangeDigest) {
  ir::Dfg base;
  const ir::NodeId in = base.add_node(ir::OpKind::kInput);
  const ir::NodeId c = base.add_const(7);
  const ir::NodeId add = base.add_node(ir::OpKind::kAdd, {in, c});
  base.add_node(ir::OpKind::kOutput, {add});
  const Fingerprint fp = fingerprint(base);

  {  // Changed op kind.
    ir::Dfg m;
    const ir::NodeId i = m.add_node(ir::OpKind::kInput);
    const ir::NodeId k = m.add_const(7);
    const ir::NodeId op = m.add_node(ir::OpKind::kMul, {i, k});
    m.add_node(ir::OpKind::kOutput, {op});
    EXPECT_NE(fingerprint(m), fp);
  }
  {  // Changed immediate.
    ir::Dfg m;
    const ir::NodeId i = m.add_node(ir::OpKind::kInput);
    const ir::NodeId k = m.add_const(8);
    const ir::NodeId op = m.add_node(ir::OpKind::kAdd, {i, k});
    m.add_node(ir::OpKind::kOutput, {op});
    EXPECT_NE(fingerprint(m), fp);
  }
  {  // Changed operand wiring (same node multiset).
    ir::Dfg m;
    const ir::NodeId i = m.add_node(ir::OpKind::kInput);
    const ir::NodeId k = m.add_const(7);
    const ir::NodeId op = m.add_node(ir::OpKind::kAdd, {k, i});
    m.add_node(ir::OpKind::kOutput, {op});
    EXPECT_NE(fingerprint(m), fp);
  }
  {  // Extra node.
    ir::Dfg m;
    const ir::NodeId i = m.add_node(ir::OpKind::kInput);
    const ir::NodeId k = m.add_const(7);
    const ir::NodeId op = m.add_node(ir::OpKind::kAdd, {i, k});
    m.add_node(ir::OpKind::kOutput, {op});
    m.add_const(0);
    EXPECT_NE(fingerprint(m), fp);
  }
  {  // Labels are documentation, not content.
    ir::Dfg m;
    const ir::NodeId i = m.add_node(ir::OpKind::kInput, {}, "renamed");
    const ir::NodeId k = m.add_const(7, "imm");
    const ir::NodeId op = m.add_node(ir::OpKind::kAdd, {i, k}, "sum");
    m.add_node(ir::OpKind::kOutput, {op});
    EXPECT_EQ(fingerprint(m), fp);
  }
}

// Builds the same small two-block loop CDFG every call; `mutate` selects
// one structural tweak.
enum class CdfgTweak {
  kNone,
  kRenameBlock,
  kRenameGraph,
  kExtraEdge,
  kExtraBlock,
  kMoveEntry,
  kNodeKind,
};

ir::Cdfg make_cdfg(CdfgTweak tweak) {
  ir::Cdfg cdfg(tweak == CdfgTweak::kRenameGraph ? "other" : "app");
  const ir::BlockId entry = cdfg.add_block("entry");
  const ir::BlockId body =
      cdfg.add_block(tweak == CdfgTweak::kRenameBlock ? "BB9" : "BB1");
  const ir::BlockId exit = cdfg.add_block("exit");
  ir::Dfg& dfg = cdfg.block(body).dfg;
  const ir::NodeId in = dfg.add_node(ir::OpKind::kInput);
  const ir::NodeId op = dfg.add_node(
      tweak == CdfgTweak::kNodeKind ? ir::OpKind::kSub : ir::OpKind::kAdd,
      {in, dfg.add_const(1)});
  dfg.add_node(ir::OpKind::kOutput, {op});
  cdfg.add_edge(entry, body);
  cdfg.add_edge(body, body);
  cdfg.add_edge(body, exit);
  if (tweak == CdfgTweak::kExtraEdge) cdfg.add_edge(entry, exit);
  if (tweak == CdfgTweak::kExtraBlock) cdfg.add_block("BB2");
  cdfg.set_entry(tweak == CdfgTweak::kMoveEntry ? body : entry);
  return cdfg;
}

TEST(FingerprintTest, CdfgMutationsChangeDigest) {
  const Fingerprint base = fingerprint(make_cdfg(CdfgTweak::kNone));
  EXPECT_EQ(base, fingerprint(make_cdfg(CdfgTweak::kNone)));
  for (const CdfgTweak tweak :
       {CdfgTweak::kRenameBlock, CdfgTweak::kRenameGraph,
        CdfgTweak::kExtraEdge, CdfgTweak::kExtraBlock, CdfgTweak::kMoveEntry,
        CdfgTweak::kNodeKind}) {
    EXPECT_NE(fingerprint(make_cdfg(tweak)), base)
        << "tweak " << static_cast<int>(tweak);
  }
}

TEST(FingerprintTest, ProfileWeightChangesDigest) {
  ir::ProfileData a;
  a.set_count(1, 100);
  a.set_count(2, 7);
  ir::ProfileData b;
  b.set_count(1, 100);
  b.set_count(2, 8);
  ir::ProfileData c;
  c.set_count(1, 100);
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
  EXPECT_EQ(fingerprint(a), fingerprint(a));
}

TEST(FingerprintTest, PlatformFieldsChangeDigest) {
  const platform::Platform base = platform::make_paper_platform(1500, 2);
  std::set<Fingerprint> seen;
  seen.insert(fingerprint(base));

  platform::Platform p = base;
  p.fpga.usable_area = 1501;
  EXPECT_TRUE(seen.insert(fingerprint(p)).second) << "usable_area";

  p = base;
  p.fpga.reconfig_policy = platform::ReconfigPolicy::kPerPartition;
  EXPECT_TRUE(seen.insert(fingerprint(p)).second) << "reconfig_policy";

  p = base;
  p.cgc.count += 1;
  EXPECT_TRUE(seen.insert(fingerprint(p)).second) << "cgc count";

  p = base;
  p.cgc.enable_chaining = false;
  EXPECT_TRUE(seen.insert(fingerprint(p)).second) << "chaining";

  p = base;
  p.memory.transfer_cycles_per_word += 1;
  EXPECT_TRUE(seen.insert(fingerprint(p)).second) << "memory transfer";
}

TEST(FingerprintTest, OptionFieldsChangeDigest) {
  const MethodologyOptions base;
  std::set<Fingerprint> seen;
  seen.insert(fingerprint(base));

  MethodologyOptions o;
  o.strategy = StrategyKind::kExhaustive;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "strategy";

  o = MethodologyOptions{};
  o.ordering = KernelOrdering::kRandom;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "ordering";

  o = MethodologyOptions{};
  o.random_seed = 42;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "seed";

  o = MethodologyOptions{};
  o.stop_when_met = false;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "stop_when_met";

  o = MethodologyOptions{};
  o.anneal_iterations += 1;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "anneal_iterations";

  o = MethodologyOptions{};
  o.analysis.weights.mul = 3;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "analysis weights";

  // The cost objective is part of the key: two runs that differ only in
  // objective kind, an energy price, a combined weight or the energy
  // budget must never alias the same cached cell.
  o = MethodologyOptions{};
  o.cost.objective.kind = ObjectiveKind::kEnergy;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "objective kind";

  o = MethodologyOptions{};
  o.cost.objective.kind = ObjectiveKind::kCombined;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "combined kind";

  o = MethodologyOptions{};
  o.cost.objective.energy.cgc_mul_pj += 0.5;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "energy model price";

  o = MethodologyOptions{};
  o.cost.objective.energy.reconfiguration_pj += 1.0;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "reconfig price";

  o = MethodologyOptions{};
  o.cost.objective.energy_weight = 2.0;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "energy weight";

  o = MethodologyOptions{};
  o.cost.objective.cycle_weight = 0.5;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "cycle weight";

  o = MethodologyOptions{};
  o.cost.energy_budget_pj = 1.0e6;
  EXPECT_TRUE(seen.insert(fingerprint(o)).second) << "energy budget";
}

TEST(FingerprintTest, CellKeySeparatesEveryAxis) {
  const auto ofdm = workloads::build_ofdm_model();
  const auto jpeg = workloads::build_jpeg_model();
  const Fingerprint app_a = app_fingerprint(ofdm.cdfg, ofdm.profile);
  const Fingerprint app_b = app_fingerprint(jpeg.cdfg, jpeg.profile);
  const Fingerprint plat_a =
      fingerprint(platform::make_paper_platform(1500, 2));
  const Fingerprint plat_b =
      fingerprint(platform::make_paper_platform(5000, 2));
  MethodologyOptions options;

  std::set<Fingerprint> keys;
  EXPECT_TRUE(keys.insert(cell_key(app_a, plat_a, options, 60000)).second);
  EXPECT_TRUE(keys.insert(cell_key(app_b, plat_a, options, 60000)).second);
  EXPECT_TRUE(keys.insert(cell_key(app_a, plat_b, options, 60000)).second);
  EXPECT_TRUE(keys.insert(cell_key(app_a, plat_a, options, 60001)).second);
  options.strategy = StrategyKind::kAnnealing;
  EXPECT_TRUE(keys.insert(cell_key(app_a, plat_a, options, 60000)).second);
  // Shard keys live in a different domain than cell keys.
  EXPECT_TRUE(keys.insert(shard_key(app_a, plat_a)).second);
}

TEST(FingerprintTest, SyntheticAppsNoCollisionsAcrossSeeds) {
  // 64 generated apps; any digest collision here would say the mixing is
  // badly broken (2^128 space, 64 samples).
  std::set<Fingerprint> seen;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    synth::CdfgGenConfig config;
    config.segments = 3;
    config.seed = seed;
    const synth::SyntheticApp app = synth::generate_app(config);
    EXPECT_TRUE(seen.insert(app_fingerprint(app.cdfg, app.profile)).second)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace amdrel::core
