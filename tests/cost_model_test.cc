// The CostModel seam: additive-equivalence (the migration gate — a cost
// model that prices nothing must reproduce the pre-CostModel engine
// exactly), the exact-window repricing of IncrementalSplit's t_reconfig
// under random churn, and small-N brute-force optimality of the
// redesigned branch-and-bound bound under nonzero inter-block
// reconfiguration terms.

#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/energy.h"
#include "core/hybrid_mapper.h"
#include "core/methodology.h"
#include "platform/platform.h"
#include "platform/reconfig_model.h"
#include "synth/cdfg_generator.h"

namespace amdrel {
namespace {

// --------------------------------------------------- ReconfigModel ----

TEST(ReconfigModelTest, DisabledByDefault) {
  const platform::ReconfigModel model;
  EXPECT_FALSE(model.enabled());
  EXPECT_EQ(model.load_cycles(1000), 0);
}

TEST(ReconfigModelTest, EnabledByEitherPricingKnob) {
  platform::ReconfigModel latency;
  latency.bitstream_cycles_per_unit = 0.5;
  EXPECT_TRUE(latency.enabled());

  platform::ReconfigModel floorplan;
  floorplan.floorplan_cost_per_unit = 2.0;
  EXPECT_TRUE(floorplan.enabled());
}

TEST(ReconfigModelTest, LoadCyclesScaleWithRegionSizeAndRoundUp) {
  platform::ReconfigModel model;
  model.bitstream_cycles_per_unit = 1.5;
  EXPECT_EQ(model.load_cycles(0), 0);
  EXPECT_EQ(model.load_cycles(2), 3);
  EXPECT_EQ(model.load_cycles(3), 5);  // ceil(4.5)
}

TEST(ReconfigModelTest, PrefetchOverlapHidesAFractionOfTheLoad) {
  platform::ReconfigModel model;
  model.bitstream_cycles_per_unit = 4.0;
  model.prefetch_overlap = 0.75;
  EXPECT_EQ(model.load_cycles(10), 10);  // 40 * (1 - 0.75)
  model.prefetch_overlap = 0.9;
  EXPECT_EQ(model.load_cycles(10), 4);   // ceil(4.0)
}

// ----------------------------------------------------- model choice ----

TEST(MakeCostModelTest, ZeroSpecSelectsTheAdditiveModel) {
  const auto p = platform::make_paper_platform(1500, 2);
  core::ObjectiveSpec spec;
  const auto model = core::make_cost_model(spec, p);
  EXPECT_FALSE(model->prices_reconfiguration());
  EXPECT_EQ(model->load_cycles(100), 0);
  EXPECT_EQ(model->floorplan_cost(100), 0.0);
}

TEST(MakeCostModelTest, ReconfigSpecSelectsTheReconfigModel) {
  const auto p = platform::make_paper_platform(1500, 2);
  core::ObjectiveSpec spec;
  spec.reconfig.bitstream_cycles_per_unit = 2.0;
  spec.reconfig.floorplan_cost_per_unit = 0.5;
  const auto model = core::make_cost_model(spec, p);
  EXPECT_TRUE(model->prices_reconfiguration());
  EXPECT_EQ(model->load_cycles(3), 6);
  EXPECT_EQ(model->floorplan_cost(10), 5.0);
  // regions == 0 resolves to the platform's CGC count.
  EXPECT_EQ(model->resident_regions(), p.cgc.count);
}

TEST(MakeCostModelTest, FloorplanOnlySpecPricesNoCycles) {
  const auto p = platform::make_paper_platform(1500, 2);
  core::ObjectiveSpec spec;
  spec.reconfig.floorplan_cost_per_unit = 1.25;
  const auto model = core::make_cost_model(spec, p);
  EXPECT_FALSE(model->prices_reconfiguration());
  EXPECT_EQ(model->floorplan_cost(8), 10.0);
}

TEST(ReconfigCostModelTest, ExplicitRegionsOverrideTheDefault) {
  platform::ReconfigModel rm;
  rm.bitstream_cycles_per_unit = 1.0;
  rm.regions = 3;
  const core::ReconfigCostModel model(rm, 2);
  EXPECT_EQ(model.resident_regions(), 3);
}

// --------------------------------------------- exact charge pricing ----

synth::SyntheticApp make_app(std::uint64_t seed, int segments = 4) {
  synth::CdfgGenConfig config;
  config.segments = segments;
  config.max_loop_depth = 2;
  config.seed = seed;
  config.div_probability = seed % 3 == 0 ? 0.2 : 0.0;
  return synth::generate_app(config);
}

TEST(ReconfigChargeTest, SingleMovedBlockPaysOneLoad) {
  const auto app = make_app(7);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);

  platform::ReconfigModel rm;
  rm.bitstream_cycles_per_unit = 2.0;
  const core::ReconfigCostModel model(rm, p.cgc.count);

  for (ir::BlockId b = 0; b < app.cdfg.size(); ++b) {
    if (!mapper.cgc_eligible(b)) continue;
    // One moved module always holds a region: it pays exactly one load
    // regardless of its iteration count.
    const std::int64_t load = model.load_cycles(mapper.packed().node_count(b));
    EXPECT_EQ(model.reconfig_cycles(mapper, app.profile, {b}), load);
  }
}

TEST(ReconfigChargeTest, ResidencyDiscountsTheTopSavers) {
  const auto app = make_app(5);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);

  std::vector<ir::BlockId> eligible;
  for (ir::BlockId b = 0; b < app.cdfg.size(); ++b) {
    if (mapper.cgc_eligible(b)) eligible.push_back(b);
  }
  ASSERT_GE(eligible.size(), 3u);
  const std::vector<ir::BlockId> moved(eligible.begin(), eligible.begin() + 3);

  platform::ReconfigModel rm;
  rm.bitstream_cycles_per_unit = 3.0;
  rm.regions = 3;
  const core::ReconfigCostModel all_resident(rm, p.cgc.count);
  rm.regions = 1;
  const core::ReconfigCostModel one_region(rm, p.cgc.count);

  // With every moved module resident, each pays exactly one load; with a
  // single region the charge can only grow.
  std::int64_t loads = 0;
  for (const ir::BlockId b : moved) {
    loads += all_resident.load_cycles(mapper.packed().node_count(b));
  }
  EXPECT_EQ(all_resident.reconfig_cycles(mapper, app.profile, moved), loads);
  EXPECT_GE(one_region.reconfig_cycles(mapper, app.profile, moved), loads);
}

// ------------------------------------------- incremental repricing ----

class ReconfigChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
};

// The exact-window repricing contract: after ANY move/unmove sequence the
// incremental t_reconfig equals the from-scratch CostModel evaluation of
// the current moved set, and the additive terms stay bit-identical to
// HybridMapper::evaluate.
TEST_P(ReconfigChurnProperty, IncrementalMatchesFullRepricing) {
  const auto app = make_app(GetParam());
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);

  platform::ReconfigModel rm;
  rm.bitstream_cycles_per_unit = 2.5;
  rm.prefetch_overlap = 0.25;
  rm.regions = GetParam() % 2 == 0 ? 0 : 2;  // exercise the default too
  const core::ReconfigCostModel model(rm, p.cgc.count);

  const core::CostObjective objective;
  core::IncrementalSplit split(mapper, app.profile, objective, &model);

  std::vector<ir::BlockId> eligible;
  for (ir::BlockId b = 0; b < app.cdfg.size(); ++b) {
    if (mapper.cgc_eligible(b)) eligible.push_back(b);
  }
  ASSERT_FALSE(eligible.empty());

  std::mt19937_64 rng(GetParam() * 977);
  for (int step = 0; step < 200; ++step) {
    const bool do_unmove =
        split.moved_count() > 0 &&
        (split.moved_count() == eligible.size() || rng() % 2 == 0);
    if (do_unmove) {
      split.unmove(split.moved()[rng() % split.moved_count()]);
    } else {
      ir::BlockId block = eligible[rng() % eligible.size()];
      while (split.is_moved(block)) block = eligible[rng() % eligible.size()];
      split.move(block);
    }

    ASSERT_EQ(split.cost().t_reconfig,
              model.reconfig_cycles(mapper, app.profile, split.moved()));
    const core::SplitCost full = mapper.evaluate(app.profile, split.moved());
    ASSERT_EQ(split.cost().t_fpga, full.t_fpga);
    ASSERT_EQ(split.cost().t_coarse, full.t_coarse);
    ASSERT_EQ(split.cost().t_comm, full.t_comm);
  }
}

// A model that prices no cycles must leave the split on the additive
// fast path: zero t_reconfig forever, costs identical to a plain split.
TEST_P(ReconfigChurnProperty, ZeroLatencyModelIsInert) {
  const auto app = make_app(GetParam());
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);

  platform::ReconfigModel rm;
  rm.floorplan_cost_per_unit = 4.0;  // enabled, but no cycle pricing
  const core::ReconfigCostModel model(rm, p.cgc.count);

  const core::CostObjective objective;
  core::IncrementalSplit with_model(mapper, app.profile, objective, &model);
  core::IncrementalSplit plain(mapper, app.profile, objective);

  std::mt19937_64 rng(GetParam());
  std::vector<ir::BlockId> eligible;
  for (ir::BlockId b = 0; b < app.cdfg.size(); ++b) {
    if (mapper.cgc_eligible(b)) eligible.push_back(b);
  }
  ASSERT_FALSE(eligible.empty());
  for (int step = 0; step < 50; ++step) {
    if (with_model.moved_count() > 0 &&
        (with_model.moved_count() == eligible.size() || rng() % 2 == 0)) {
      const ir::BlockId block =
          with_model.moved()[rng() % with_model.moved_count()];
      with_model.unmove(block);
      plain.unmove(block);
    } else {
      ir::BlockId block = eligible[rng() % eligible.size()];
      while (with_model.is_moved(block)) {
        block = eligible[rng() % eligible.size()];
      }
      with_model.move(block);
      plain.move(block);
    }
    ASSERT_EQ(with_model.cost().t_reconfig, 0);
    ASSERT_EQ(with_model.cost().total(), plain.cost().total());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigChurnProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ----------------------------------------- additive equivalence (S4) ----

struct EquivalenceCase {
  core::StrategyKind strategy;
  core::ObjectiveKind objective;
};

class AdditiveEquivalence : public ::testing::TestWithParam<EquivalenceCase> {
};

// The migration gate as a property: a reconfiguration model with zero
// load latency must leave every engine output — cycles, energy, moved
// set, met flag, iteration counts — exactly as the plain additive run
// produced it, across all strategies and objectives. Only the reported
// floorplan charge may differ.
TEST_P(AdditiveEquivalence, ZeroLatencyModelReproducesTheAdditiveRun) {
  const EquivalenceCase param = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto app = make_app(seed, 3);
    const auto p = platform::make_paper_platform(1500, 2);
    core::HybridMapper mapper(app.cdfg, p);
    const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);
    const double all_fine_pj =
        core::estimate_energy(mapper, app.profile, {}, core::EnergyModel{})
            .total_pj();

    core::MethodologyOptions options;
    options.strategy = param.strategy;
    options.cost.objective.kind = param.objective;
    options.cost.energy_budget_pj = all_fine_pj / 2;

    core::MethodologyOptions with_model = options;
    with_model.cost.reconfig.floorplan_cost_per_unit = 2.5;

    core::HybridMapper mapper_a(app.cdfg, p);
    core::HybridMapper mapper_b(app.cdfg, p);
    const auto base = core::run_methodology(mapper_a, app.profile,
                                            all_fine / 2, options);
    const auto priced = core::run_methodology(mapper_b, app.profile,
                                              all_fine / 2, with_model);

    EXPECT_EQ(priced.final_cycles, base.final_cycles);
    EXPECT_EQ(priced.initial_cycles, base.initial_cycles);
    EXPECT_EQ(priced.cost.t_fpga, base.cost.t_fpga);
    EXPECT_EQ(priced.cost.t_coarse, base.cost.t_coarse);
    EXPECT_EQ(priced.cost.t_comm, base.cost.t_comm);
    EXPECT_EQ(priced.cost.t_reconfig, 0);
    EXPECT_EQ(base.cost.t_reconfig, 0);
    EXPECT_EQ(priced.moved, base.moved);
    EXPECT_EQ(priced.met, base.met);
    EXPECT_EQ(priced.engine_iterations, base.engine_iterations);
    EXPECT_EQ(priced.energy.total_pj(), base.energy.total_pj());

    // The one permitted difference: the reported floorplan charge.
    EXPECT_EQ(base.floorplan_cost, 0.0);
    EXPECT_EQ(priced.floorplan_cost,
              2.5 * static_cast<double>(
                        core::CostModel::moved_units(mapper, priced.moved)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesByObjectives, AdditiveEquivalence,
    ::testing::Values(
        EquivalenceCase{core::StrategyKind::kGreedyPaper,
                        core::ObjectiveKind::kTiming},
        EquivalenceCase{core::StrategyKind::kGreedyPaper,
                        core::ObjectiveKind::kEnergy},
        EquivalenceCase{core::StrategyKind::kGreedyPaper,
                        core::ObjectiveKind::kCombined},
        EquivalenceCase{core::StrategyKind::kExhaustive,
                        core::ObjectiveKind::kTiming},
        EquivalenceCase{core::StrategyKind::kExhaustive,
                        core::ObjectiveKind::kEnergy},
        EquivalenceCase{core::StrategyKind::kExhaustive,
                        core::ObjectiveKind::kCombined},
        EquivalenceCase{core::StrategyKind::kAnnealing,
                        core::ObjectiveKind::kTiming},
        EquivalenceCase{core::StrategyKind::kAnnealing,
                        core::ObjectiveKind::kEnergy},
        EquivalenceCase{core::StrategyKind::kAnnealing,
                        core::ObjectiveKind::kCombined}));

// ------------------------------------- branch-and-bound optimality ----

class ExhaustiveReconfigOptimality
    : public ::testing::TestWithParam<std::uint64_t> {};

// Under nonzero reconfiguration latency the cycle cost is no longer
// per-block additive (the residency discount couples moved blocks), so
// the suffix bound's admissibility carries the whole proof in
// core/strategy.cc. Pin it: on small candidate sets the branch-and-bound
// result must match an exhaustive enumeration of every subset.
TEST_P(ExhaustiveReconfigOptimality, MatchesBruteForceEnumeration) {
  const auto app = make_app(GetParam(), 3);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);

  core::MethodologyOptions options;
  options.strategy = core::StrategyKind::kExhaustive;
  options.exhaustive_max_kernels = 10;
  options.cost.reconfig.bitstream_cycles_per_unit = 2.5;
  options.cost.reconfig.prefetch_overlap = 0.3;
  options.cost.reconfig.regions = GetParam() % 2 == 0 ? 0 : 1;

  // An unmeetable constraint turns the search into pure minimization:
  // the result is the best total anywhere in the subset lattice.
  const auto report = core::run_methodology(mapper, app.profile, 1, options);

  const auto model = core::make_cost_model(options.cost, p);
  ASSERT_TRUE(model->prices_reconfiguration());

  // The engine's candidate set: the first eligible kernels, capped.
  std::vector<ir::BlockId> candidates;
  for (const auto& kernel : report.kernels) {
    if (!kernel.cgc_eligible) continue;
    if (candidates.size() >= 10) break;
    candidates.push_back(kernel.block);
  }
  ASSERT_FALSE(candidates.empty());
  ASSERT_LE(candidates.size(), 16u);

  std::int64_t best = mapper.all_fine_cycles(app.profile);
  for (std::uint32_t mask = 1;
       mask < (1u << static_cast<std::uint32_t>(candidates.size())); ++mask) {
    std::vector<ir::BlockId> moved;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (mask & (1u << i)) moved.push_back(candidates[i]);
    }
    const std::int64_t total =
        mapper.evaluate(app.profile, moved).total() +
        model->reconfig_cycles(mapper, app.profile, moved);
    best = std::min(best, total);
  }

  EXPECT_EQ(report.final_cycles, best);
  // The reported split itself reprices to its reported cost.
  EXPECT_EQ(report.cost.t_reconfig,
            model->reconfig_cycles(mapper, app.profile, report.moved));
  EXPECT_EQ(report.final_cycles,
            mapper.evaluate(app.profile, report.moved).total() +
                report.cost.t_reconfig);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveReconfigOptimality,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace amdrel
