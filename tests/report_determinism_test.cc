// Golden-file regression tests for report determinism.
//
// Runs both paper models end-to-end (core::run_methodology +
// core::describe) over the paper's Table-2/Table-3 experiment grids,
// twice, and asserts the rendered reports are byte-identical between
// runs and match the committed golden files. This pins the tables'
// numbers against drift: any change to the mapper, scheduler, engine
// strategy, or report formatting that alters the output shows up as a
// diff against tests/golden/.
//
// To regenerate after an intentional change:
//   ./build/tests/report_determinism_test --regen
// then review the diff of tests/golden/.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/methodology.h"
#include "core/report.h"
#include "platform/platform.h"
#include "workloads/paper_models.h"

#ifndef AMDREL_GOLDEN_DIR
#error "AMDREL_GOLDEN_DIR must be defined by the build"
#endif

namespace amdrel {
namespace {

struct GridPoint {
  double a_fpga;
  int cgc_count;
};

constexpr GridPoint kPaperGrid[] = {
    {1500, 2}, {1500, 3}, {5000, 2}, {5000, 3}};

// Renders one app's full table sweep as one deterministic text blob.
std::string render_reports(const workloads::PaperApp& app,
                           std::int64_t constraint) {
  std::ostringstream out;
  for (const GridPoint& point : kPaperGrid) {
    const platform::Platform p =
        platform::make_paper_platform(point.a_fpga, point.cgc_count);
    const core::PartitionReport report =
        core::run_methodology(app.cdfg, app.profile, p, constraint);
    out << "=== A_FPGA=" << point.a_fpga << " CGCs=" << point.cgc_count
        << " ===\n"
        << core::describe(report, app.cdfg) << "\n";
  }
  return out.str();
}

std::string render_ofdm_reports() {
  return render_reports(workloads::build_ofdm_model(),
                        workloads::kOfdmTimingConstraint);
}

std::string render_jpeg_reports() {
  return render_reports(workloads::build_jpeg_model(),
                        workloads::kJpegTimingConstraint);
}

std::string golden_path(const char* name) {
  return std::string(AMDREL_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& rendered, const char* name) {
  std::ifstream in(golden_path(name));
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path(name)
                         << " (run with --regen to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rendered)
      << "report drifted from " << golden_path(name)
      << "; if intentional, regenerate with --regen and review the diff";
}

TEST(ReportDeterminismTest, OfdmTwoRunsAreByteIdentical) {
  EXPECT_EQ(render_ofdm_reports(), render_ofdm_reports());
}

TEST(ReportDeterminismTest, JpegTwoRunsAreByteIdentical) {
  EXPECT_EQ(render_jpeg_reports(), render_jpeg_reports());
}

TEST(ReportDeterminismTest, OfdmMatchesCommittedGolden) {
  expect_matches_golden(render_ofdm_reports(), "ofdm_report.golden");
}

TEST(ReportDeterminismTest, JpegMatchesCommittedGolden) {
  expect_matches_golden(render_jpeg_reports(), "jpeg_report.golden");
}

}  // namespace
}  // namespace amdrel

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      std::ofstream ofdm(amdrel::golden_path("ofdm_report.golden"),
                         std::ios::binary);
      ofdm << amdrel::render_ofdm_reports();
      std::ofstream jpeg(amdrel::golden_path("jpeg_report.golden"),
                         std::ios::binary);
      jpeg << amdrel::render_jpeg_reports();
      return ofdm.good() && jpeg.good() ? 0 : 1;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
