// Golden-file regression test for report determinism.
//
// Runs the OFDM paper model end-to-end (core::run_methodology +
// core::describe) over the paper's Table-2 experiment grid, twice, and
// asserts the rendered reports are byte-identical between runs and match
// the committed golden file. This pins the Table-2 numbers against
// drift: any change to the mapper, scheduler, or report formatting that
// alters the output shows up as a diff against tests/golden/.
//
// To regenerate after an intentional change:
//   ./build/tests/report_determinism_test --regen
// then review the diff of tests/golden/ofdm_report.golden.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/methodology.h"
#include "core/report.h"
#include "platform/platform.h"
#include "workloads/paper_models.h"

#ifndef AMDREL_GOLDEN_DIR
#error "AMDREL_GOLDEN_DIR must be defined by the build"
#endif

namespace amdrel {
namespace {

struct GridPoint {
  double a_fpga;
  int cgc_count;
};

constexpr GridPoint kTable2Grid[] = {
    {1500, 2}, {1500, 3}, {5000, 2}, {5000, 3}};

// Renders the full Table-2 sweep as one deterministic text blob.
std::string render_ofdm_reports() {
  const workloads::PaperApp app = workloads::build_ofdm_model();
  std::ostringstream out;
  for (const GridPoint& point : kTable2Grid) {
    const platform::Platform p =
        platform::make_paper_platform(point.a_fpga, point.cgc_count);
    const core::PartitionReport report = core::run_methodology(
        app.cdfg, app.profile, p, workloads::kOfdmTimingConstraint);
    out << "=== A_FPGA=" << point.a_fpga << " CGCs=" << point.cgc_count
        << " ===\n"
        << core::describe(report, app.cdfg) << "\n";
  }
  return out.str();
}

std::string golden_path() {
  return std::string(AMDREL_GOLDEN_DIR) + "/ofdm_report.golden";
}

TEST(ReportDeterminismTest, TwoRunsAreByteIdentical) {
  const std::string first = render_ofdm_reports();
  const std::string second = render_ofdm_reports();
  EXPECT_EQ(first, second);
}

TEST(ReportDeterminismTest, MatchesCommittedGolden) {
  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (run with --regen to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), render_ofdm_reports())
      << "OFDM Table-2 report drifted from " << golden_path()
      << "; if intentional, regenerate with --regen and review the diff";
}

}  // namespace
}  // namespace amdrel

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      std::ofstream out(amdrel::golden_path(), std::ios::binary);
      out << amdrel::render_ofdm_reports();
      return out.good() ? 0 : 1;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
