// Differential testing over randomly generated MiniC programs: the
// optimizer must preserve observable behaviour (return value, memory),
// compilation must be deterministic, and the whole analysis pipeline must
// accept whatever the front-end produces.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "analysis/kernels.h"
#include "core/explorer.h"
#include "core/methodology.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "minic/optimizer.h"
#include "synth/minic_fuzzer.h"
#include "workloads/golden.h"

namespace amdrel {
namespace {

class FuzzedProgramProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static std::string source() {
    synth::FuzzConfig config;
    config.seed = GetParam();
    config.statements = 12;
    return synth::generate_minic_program(config);
  }
  static constexpr std::uint64_t kBudget = 20'000'000;
};

TEST_P(FuzzedProgramProperty, CompilesAndTerminates) {
  const ir::TacProgram tac = minic::compile(source(), "fuzz");
  EXPECT_NO_THROW(tac.validate());
  interp::Interpreter interp(tac);
  interp.set_input("in", workloads::random_samples(16, GetParam()));
  const auto result = interp.run(kBudget);
  EXPECT_GT(result.instructions_executed, 0u);
}

TEST_P(FuzzedProgramProperty, OptimizerPreservesBehaviour) {
  const std::string src = source();
  ir::TacProgram plain = minic::compile(src, "fuzz");
  ir::TacProgram optimized = plain;
  minic::optimize(optimized);

  const auto input = workloads::random_samples(16, GetParam() * 31 + 7);
  interp::Interpreter a(std::move(plain));
  interp::Interpreter b(std::move(optimized));
  a.set_input("in", input);
  b.set_input("in", input);
  const auto ra = a.run(kBudget);
  const auto rb = b.run(kBudget);
  EXPECT_EQ(ra.return_value, rb.return_value) << src;
  EXPECT_EQ(a.array("out"), b.array("out")) << src;
  EXPECT_EQ(a.array("g"), b.array("g")) << src;
  EXPECT_LE(rb.instructions_executed, ra.instructions_executed);
}

TEST_P(FuzzedProgramProperty, CompilationIsDeterministic) {
  const std::string src = source();
  const ir::TacProgram a = minic::compile(src, "fuzz");
  const ir::TacProgram b = minic::compile(src, "fuzz");
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST_P(FuzzedProgramProperty, AnalysisPipelineAcceptsFuzzedPrograms) {
  const ir::TacProgram tac = minic::compile(source(), "fuzz");
  interp::Interpreter interp(tac);
  interp.set_input("in", workloads::random_samples(16, GetParam()));
  const auto run = interp.run(kBudget);

  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  const auto kernels = analysis::extract_kernels(cdfg, run.profile);
  for (const auto& kernel : kernels) {
    EXPECT_GE(kernel.loop_depth, 1);
    EXPECT_GT(kernel.exec_freq, 0u);
  }
  // Fuzzed programs contain divisions; the methodology must keep those
  // kernels on the FPGA and still produce a consistent report.
  const auto p = platform::make_paper_platform(800, 2);
  core::HybridMapper mapper(cdfg, p);
  const auto report = core::run_methodology(
      cdfg, run.profile, p, mapper.all_fine_cycles(run.profile) / 2);
  EXPECT_EQ(report.final_cycles,
            report.cost.t_fpga + report.cost.t_coarse + report.cost.t_comm);
  for (const ir::BlockId block : report.moved) {
    EXPECT_FALSE(cdfg.block(block).dfg.has_division());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedProgramProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// The --grid spec parser fronts the CLI, so it must shrug off arbitrary
// garbage: never crash or throw, and only ever accept specs whose parsed
// grid satisfies the documented invariants.
TEST(GridSpecFuzz, ParserRejectsOrSanelyAcceptsGarbage) {
  const std::string charset = "0123456789x,.-+eE 15";
  std::mt19937_64 rng(2026);
  for (int round = 0; round < 5000; ++round) {
    std::string spec;
    const std::size_t length = rng() % 24;
    for (std::size_t i = 0; i < length; ++i) {
      spec += charset[rng() % charset.size()];
    }
    const auto grid = core::parse_platform_grid(spec);
    if (!grid) continue;
    EXPECT_FALSE(grid->areas.empty()) << spec;
    EXPECT_FALSE(grid->cgc_counts.empty()) << spec;
    for (const double area : grid->areas) {
      EXPECT_TRUE(std::isfinite(area) && area > 0) << spec;
    }
    for (const int count : grid->cgc_counts) {
      EXPECT_TRUE(count >= 1 && count <= 1024) << spec;
    }
  }
}

// Valid specs round-trip: re-rendering the parsed grid in the spec
// grammar and parsing again yields the same axes.
TEST(GridSpecFuzz, ValidSpecsRoundTrip) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    core::PlatformGrid grid;
    grid.areas.clear();
    grid.cgc_counts.clear();
    const std::size_t n_areas = 1 + rng() % 4;
    const std::size_t n_counts = 1 + rng() % 4;
    std::string spec;
    for (std::size_t i = 0; i < n_areas; ++i) {
      const int area = 100 + static_cast<int>(rng() % 9000);
      grid.areas.push_back(area);
      if (i) spec += ',';
      spec += std::to_string(area);
    }
    spec += 'x';
    for (std::size_t i = 0; i < n_counts; ++i) {
      const int count = 1 + static_cast<int>(rng() % 8);
      grid.cgc_counts.push_back(count);
      if (i) spec += ',';
      spec += std::to_string(count);
    }
    const auto parsed = core::parse_platform_grid(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    EXPECT_EQ(parsed->areas, grid.areas) << spec;
    EXPECT_EQ(parsed->cgc_counts, grid.cgc_counts) << spec;
  }
}

}  // namespace
}  // namespace amdrel
