// Differential testing over randomly generated MiniC programs: the
// optimizer must preserve observable behaviour (return value, memory),
// compilation must be deterministic, and the whole analysis pipeline must
// accept whatever the front-end produces.

#include <gtest/gtest.h>

#include "analysis/kernels.h"
#include "core/methodology.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "minic/optimizer.h"
#include "synth/minic_fuzzer.h"
#include "workloads/golden.h"

namespace amdrel {
namespace {

class FuzzedProgramProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static std::string source() {
    synth::FuzzConfig config;
    config.seed = GetParam();
    config.statements = 12;
    return synth::generate_minic_program(config);
  }
  static constexpr std::uint64_t kBudget = 20'000'000;
};

TEST_P(FuzzedProgramProperty, CompilesAndTerminates) {
  const ir::TacProgram tac = minic::compile(source(), "fuzz");
  EXPECT_NO_THROW(tac.validate());
  interp::Interpreter interp(tac);
  interp.set_input("in", workloads::random_samples(16, GetParam()));
  const auto result = interp.run(kBudget);
  EXPECT_GT(result.instructions_executed, 0u);
}

TEST_P(FuzzedProgramProperty, OptimizerPreservesBehaviour) {
  const std::string src = source();
  ir::TacProgram plain = minic::compile(src, "fuzz");
  ir::TacProgram optimized = plain;
  minic::optimize(optimized);

  const auto input = workloads::random_samples(16, GetParam() * 31 + 7);
  interp::Interpreter a(std::move(plain));
  interp::Interpreter b(std::move(optimized));
  a.set_input("in", input);
  b.set_input("in", input);
  const auto ra = a.run(kBudget);
  const auto rb = b.run(kBudget);
  EXPECT_EQ(ra.return_value, rb.return_value) << src;
  EXPECT_EQ(a.array("out"), b.array("out")) << src;
  EXPECT_EQ(a.array("g"), b.array("g")) << src;
  EXPECT_LE(rb.instructions_executed, ra.instructions_executed);
}

TEST_P(FuzzedProgramProperty, CompilationIsDeterministic) {
  const std::string src = source();
  const ir::TacProgram a = minic::compile(src, "fuzz");
  const ir::TacProgram b = minic::compile(src, "fuzz");
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST_P(FuzzedProgramProperty, AnalysisPipelineAcceptsFuzzedPrograms) {
  const ir::TacProgram tac = minic::compile(source(), "fuzz");
  interp::Interpreter interp(tac);
  interp.set_input("in", workloads::random_samples(16, GetParam()));
  const auto run = interp.run(kBudget);

  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  const auto kernels = analysis::extract_kernels(cdfg, run.profile);
  for (const auto& kernel : kernels) {
    EXPECT_GE(kernel.loop_depth, 1);
    EXPECT_GT(kernel.exec_freq, 0u);
  }
  // Fuzzed programs contain divisions; the methodology must keep those
  // kernels on the FPGA and still produce a consistent report.
  const auto p = platform::make_paper_platform(800, 2);
  core::HybridMapper mapper(cdfg, p);
  const auto report = core::run_methodology(
      cdfg, run.profile, p, mapper.all_fine_cycles(run.profile) / 2);
  EXPECT_EQ(report.final_cycles,
            report.cost.t_fpga + report.cost.t_coarse + report.cost.t_comm);
  for (const ir::BlockId block : report.moved) {
    EXPECT_FALSE(cdfg.block(block).dfg.has_division());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedProgramProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace amdrel
