#include "ir/dfg.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace amdrel::ir {
namespace {

Dfg make_diamond() {
  // in0  in1
  //   |  |
  //    add        (level 1)
  //   |    |
  // mul    sub    (level 2)
  //    |  |
  //    xor        (level 3)
  Dfg dfg;
  const NodeId in0 = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId in1 = dfg.add_node(OpKind::kInput, {}, "b");
  const NodeId add = dfg.add_node(OpKind::kAdd, {in0, in1});
  const NodeId mul = dfg.add_node(OpKind::kMul, {add, in1});
  const NodeId sub = dfg.add_node(OpKind::kSub, {add, in0});
  const NodeId x = dfg.add_node(OpKind::kXor, {mul, sub});
  dfg.add_node(OpKind::kOutput, {x});
  return dfg;
}

TEST(DfgTest, AsapLevelsFollowLongestPath) {
  const Dfg dfg = make_diamond();
  const auto levels = dfg.asap_levels();
  EXPECT_EQ(levels[0], 0);  // input
  EXPECT_EQ(levels[1], 0);  // input
  EXPECT_EQ(levels[2], 1);  // add
  EXPECT_EQ(levels[3], 2);  // mul
  EXPECT_EQ(levels[4], 2);  // sub
  EXPECT_EQ(levels[5], 3);  // xor
  EXPECT_EQ(levels[6], 0);  // output marker
  EXPECT_EQ(dfg.max_asap_level(), 3);
}

TEST(DfgTest, AlapEqualsAsapOnCriticalPath) {
  const Dfg dfg = make_diamond();
  const auto asap = dfg.asap_levels();
  const auto alap = dfg.alap_levels();
  // add -> mul -> xor and add -> sub -> xor are both tight here.
  for (NodeId id = 2; id <= 5; ++id) {
    EXPECT_EQ(asap[id], alap[id]) << "node " << id;
  }
}

TEST(DfgTest, AlapNeverBelowAsap) {
  Dfg dfg;
  const NodeId in = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId c = dfg.add_const(3);
  const NodeId a = dfg.add_node(OpKind::kAdd, {in, c});
  const NodeId b = dfg.add_node(OpKind::kMul, {in, c});  // slack 1
  const NodeId d = dfg.add_node(OpKind::kSub, {a, c});
  const NodeId e = dfg.add_node(OpKind::kXor, {d, b});
  dfg.add_node(OpKind::kOutput, {e});
  const auto asap = dfg.asap_levels();
  const auto alap = dfg.alap_levels();
  for (NodeId id = 0; id < dfg.size(); ++id) {
    EXPECT_GE(alap[id], asap[id]) << "node " << id;
  }
  EXPECT_GT(alap[b] - asap[b], 0);  // the side chain has mobility
}

TEST(DfgTest, OpMixCountsClasses) {
  const Dfg dfg = make_diamond();
  const OpMix mix = dfg.op_mix();
  EXPECT_EQ(mix.alu, 3);   // add, sub, xor
  EXPECT_EQ(mix.mul, 1);
  EXPECT_EQ(mix.mem, 0);
  EXPECT_EQ(mix.meta, 3);  // two inputs + one output
  EXPECT_EQ(mix.total_schedulable(), 4);
}

TEST(DfgTest, LiveInAndOutCounts) {
  const Dfg dfg = make_diamond();
  EXPECT_EQ(dfg.live_in_count(), 2);
  EXPECT_EQ(dfg.live_out_count(), 1);
}

TEST(DfgTest, OperandMustPrecedeNode) {
  Dfg dfg;
  EXPECT_THROW(dfg.add_node(OpKind::kAdd, {0, 1}), Error);
}

TEST(DfgTest, HasDivisionDetectsDivAndMod) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId b = dfg.add_node(OpKind::kInput, {}, "b");
  EXPECT_FALSE(dfg.has_division());
  dfg.add_node(OpKind::kMod, {a, b});
  EXPECT_TRUE(dfg.has_division());
}

TEST(DfgTest, ValidateRejectsBadArity) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  dfg.add_node(OpKind::kNot, {a});
  EXPECT_NO_THROW(dfg.validate());
}

TEST(DfgTest, UsersTracksConsumers) {
  Dfg dfg;
  const NodeId a = dfg.add_node(OpKind::kInput, {}, "a");
  const NodeId b = dfg.add_node(OpKind::kInput, {}, "b");
  const NodeId add = dfg.add_node(OpKind::kAdd, {a, b});
  const NodeId mul = dfg.add_node(OpKind::kMul, {a, add});
  EXPECT_EQ(dfg.users(a).size(), 2u);
  EXPECT_EQ(dfg.users(add).size(), 1u);
  EXPECT_EQ(dfg.users(add)[0], mul);
  EXPECT_TRUE(dfg.users(mul).empty());
}

TEST(DfgTest, EmptyGraphHasZeroDepth) {
  Dfg dfg;
  EXPECT_EQ(dfg.max_asap_level(), 0);
  EXPECT_TRUE(dfg.empty());
  EXPECT_NO_THROW(dfg.validate());
}

TEST(DfgTest, LevelOccupancyCountsSchedulableNodes) {
  const Dfg dfg = make_diamond();
  const auto occ = dfg.level_occupancy();
  ASSERT_EQ(occ.size(), 4u);
  EXPECT_EQ(occ[1], 1);
  EXPECT_EQ(occ[2], 2);
  EXPECT_EQ(occ[3], 1);
}

}  // namespace
}  // namespace amdrel::ir
