// Golden-file tests for the energy-constrained methodology variant
// (core/energy.h): run_energy_methodology on the paper's OFDM and JPEG
// models, across both Table-2/3 platform areas and a ladder of budgets
// that stop the greedy engine at different prefix depths (including
// budgets only reachable by committing through energy-INCREASING moves,
// the regime where a best-prefix search and the paper's always-commit
// engine genuinely walk the same path).
//
// The golden was generated from the original standalone greedy loop and
// is the byte-for-byte contract the strategy-engine port must preserve:
// moved sets, iteration counts and every breakdown term. Regenerate only
// for a reviewed semantic change:
//   ./build/tests/energy_determinism_test --regen
// then review the diff of tests/golden/energy_report.golden.
//
// Budgets are pinned to MET outcomes on every platform: for an
// unmeetable budget the original loop reported the last trial (every
// eligible kernel moved) while the strategy engine reports the best
// split found, which is strictly no worse in energy — that deliberate
// improvement is covered by EnergyStrategyTest in extensions_test.cc,
// not pinned here.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/energy.h"
#include "workloads/paper_models.h"

#ifndef AMDREL_GOLDEN_DIR
#error "AMDREL_GOLDEN_DIR must be defined by the build"
#endif

namespace amdrel {
namespace {

std::string format(const char* fmt, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, fmt, value);
  return buffer;
}

// Absolute budgets (pJ), chosen per app so every (area, budget) cell is
// met — trivially, after one move, or deep in the prefix — with wide
// margins to every decision boundary (no budget sits within 500 pJ of a
// prefix energy, so the outcome never hinges on a last-ulp comparison).
struct StudyApp {
  const char* name;
  workloads::PaperApp app;
  std::vector<double> budgets_pj;
};

std::vector<StudyApp> study_apps() {
  std::vector<StudyApp> apps;
  apps.push_back({"ofdm", workloads::build_ofdm_model(),
                  {250.0e6, 1.0e6, 700.0e3, 696.0e3}});
  apps.push_back({"jpeg", workloads::build_jpeg_model(),
                  {1.0e10, 5.0e9, 118.0e6, 116.2e6}});
  return apps;
}

std::string render_energy_study() {
  std::ostringstream os;
  for (const StudyApp& entry : study_apps()) {
    for (const double area : {1500.0, 5000.0}) {
      const auto p = platform::make_paper_platform(area, 2);
      for (const double budget : entry.budgets_pj) {
        const core::EnergyPartitionReport report =
            core::run_energy_methodology(entry.app.cdfg, entry.app.profile,
                                         p, budget);
        os << entry.name << " A=" << format("%g", area) << " budget "
           << format("%.1f", budget) << " pJ: "
           << (report.met ? "met" : "NOT met") << " after "
           << report.engine_iterations << " iteration(s), moved";
        if (report.moved.empty()) os << " (none)";
        for (const ir::BlockId block : report.moved) {
          os << ' ' << entry.app.cdfg.block(block).name;
        }
        os << '\n';
        os << "  initial " << format("%.4f", report.initial_pj)
           << " | fine " << format("%.4f", report.energy.fine_pj)
           << " | coarse " << format("%.4f", report.energy.coarse_pj)
           << " | reconfig " << format("%.4f", report.energy.reconfig_pj)
           << " | comm " << format("%.4f", report.energy.comm_pj)
           << " | total " << format("%.4f", report.energy.total_pj())
           << " | reduction " << format("%.4f", report.reduction_percent())
           << "%\n";
      }
    }
  }
  return os.str();
}

std::string golden_path() {
  return std::string(AMDREL_GOLDEN_DIR) + "/energy_report.golden";
}

TEST(EnergyDeterminismTest, MatchesCommittedGolden) {
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (run with --regen to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), render_energy_study())
      << "energy methodology output drifted from " << golden_path()
      << "; the strategy engine must reproduce the original greedy loop "
         "byte-for-byte — regenerate with --regen only for a reviewed "
         "semantic change";
}

TEST(EnergyDeterminismTest, RepeatedRendersAreByteIdentical) {
  EXPECT_EQ(render_energy_study(), render_energy_study());
}

}  // namespace
}  // namespace amdrel

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      std::ofstream out(amdrel::golden_path(), std::ios::binary);
      out << amdrel::render_energy_study();
      return out.good() ? 0 : 1;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
