#include "workloads/paper_models.h"

#include <gtest/gtest.h>

#include "analysis/kernels.h"
#include "support/error.h"

namespace amdrel::workloads {
namespace {

struct Table1Row {
  const char* label;
  std::uint64_t exec_freq;
  std::int64_t op_weight;
  std::int64_t total_weight;
};

// Table 1 of the paper, verbatim.
constexpr Table1Row kOfdmTop8[] = {
    {"BB22", 336, 115, 38640}, {"BB12", 1200, 25, 30000},
    {"BB3", 864, 6, 5184},     {"BB5", 370, 12, 4440},
    {"BB42", 800, 5, 4000},    {"BB32", 560, 6, 3360},
    {"BB29", 448, 7, 3136},    {"BB21", 147, 18, 2646},
};

constexpr Table1Row kJpegTop8[] = {
    {"BB6", 355024, 3, 1065072}, {"BB2", 8192, 85, 696320},
    {"BB1", 8192, 83, 679936},   {"BB22", 65536, 5, 327680},
    {"BB8", 30927, 8, 247416},   {"BB3", 65536, 3, 196608},
    {"BB16", 63540, 3, 190620},  {"BB17", 63540, 2, 127080},
};

void check_table1(const PaperApp& app, const Table1Row* rows,
                  std::size_t count, std::size_t expected_blocks) {
  // Paper block counts: "composed by 18 basic blocks" / "22 BBs" — our
  // models add entry/exit stubs on top.
  EXPECT_EQ(app.specs.size(), expected_blocks);

  const auto kernels = analysis::extract_kernels(app.cdfg, app.profile);
  ASSERT_GE(kernels.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& kernel = kernels[i];
    EXPECT_EQ(app.cdfg.block(kernel.block).name, rows[i].label)
        << "rank " << i;
    EXPECT_EQ(kernel.exec_freq, rows[i].exec_freq) << rows[i].label;
    EXPECT_EQ(kernel.op_weight, rows[i].op_weight) << rows[i].label;
    EXPECT_EQ(kernel.total_weight, rows[i].total_weight) << rows[i].label;
  }
}

TEST(PaperModelsTest, OfdmReproducesTable1Exactly) {
  check_table1(build_ofdm_model(), kOfdmTop8, std::size(kOfdmTop8), 18);
}

TEST(PaperModelsTest, JpegReproducesTable1Exactly) {
  check_table1(build_jpeg_model(), kJpegTop8, std::size(kJpegTop8), 22);
}

TEST(PaperModelsTest, AllKernelBlocksAreLoopResident) {
  for (const PaperApp& app : {build_ofdm_model(), build_jpeg_model()}) {
    for (const auto& spec : app.specs) {
      const auto block = app.block_by_label(spec.label);
      EXPECT_EQ(app.cdfg.block(block).loop_depth, spec.in_loop ? 1 : 0)
          << app.cdfg.name() << "/" << spec.label;
    }
  }
}

TEST(PaperModelsTest, NoDivisionsInEitherApp) {
  // The paper: "thus no divisions are present in the DFGs".
  for (const PaperApp& app : {build_ofdm_model(), build_jpeg_model()}) {
    for (const auto& block : app.cdfg.blocks()) {
      EXPECT_FALSE(block.dfg.has_division())
          << app.cdfg.name() << "/" << block.name;
    }
  }
}

TEST(PaperModelsTest, DeterministicConstruction) {
  const PaperApp a = build_ofdm_model();
  const PaperApp b = build_ofdm_model();
  ASSERT_EQ(a.cdfg.size(), b.cdfg.size());
  for (ir::BlockId id = 0; id < a.cdfg.size(); ++id) {
    EXPECT_EQ(a.cdfg.block(id).dfg.size(), b.cdfg.block(id).dfg.size());
    EXPECT_EQ(a.cdfg.block(id).name, b.cdfg.block(id).name);
  }
}

TEST(PaperModelsTest, SpecMixesMatchDfgs) {
  for (const PaperApp& app : {build_ofdm_model(), build_jpeg_model()}) {
    for (const auto& spec : app.specs) {
      const auto block = app.block_by_label(spec.label);
      const ir::OpMix mix = app.cdfg.block(block).dfg.op_mix();
      EXPECT_EQ(mix.alu, spec.alu) << spec.label;
      EXPECT_EQ(mix.mul, spec.mul) << spec.label;
      EXPECT_EQ(mix.mem, spec.mem) << spec.label;
    }
  }
}

TEST(PaperModelsTest, BlockByLabelThrowsOnUnknown) {
  const PaperApp app = build_ofdm_model();
  EXPECT_THROW(app.block_by_label("BB999"), Error);
}

}  // namespace
}  // namespace amdrel::workloads
