// Edge cases across the stack: front-end corner semantics, CDFG analysis
// on awkward graphs, engine flags, and error paths.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/methodology.h"
#include "core/report.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "support/error.h"
#include "workloads/paper_models.h"

namespace amdrel {
namespace {

std::int32_t run_main(const std::string& source) {
  interp::Interpreter interp(minic::compile(source));
  return interp.run().return_value;
}

// ---- front-end semantics ----------------------------------------------

TEST(MinicEdgeCases, ContinueInForJumpsToStep) {
  // continue must still execute the step expression (C semantics).
  EXPECT_EQ(run_main(R"(
    int main() {
      int sum = 0;
      for (int i = 0; i < 10; i++) {
        if (i < 8) { continue; }
        sum += i;
      }
      return sum;  // 8 + 9
    }
  )"),
            17);
}

TEST(MinicEdgeCases, ForWithoutConditionUsesBreak) {
  EXPECT_EQ(run_main(R"(
    int main() {
      int n = 0;
      for (;;) {
        n++;
        if (n == 5) { break; }
      }
      return n;
    }
  )"),
            5);
}

TEST(MinicEdgeCases, ShadowingInNestedScopes) {
  EXPECT_EQ(run_main(R"(
    int main() {
      int x = 1;
      {
        int x = 2;
        { int x = 3; x = x + 1; }
        x = x * 10;
      }
      return x;  // outer x untouched
    }
  )"),
            1);
}

TEST(MinicEdgeCases, FunctionValueUsedInsideCondition) {
  EXPECT_EQ(run_main(R"(
    int clamp(int v, int hi) {
      if (v > hi) { return hi; }
      return v;
    }
    int main() {
      int total = 0;
      for (int i = 0; i < 10; i++) {
        if (clamp(i, 4) == 4 && i % 2 == 0) { total += i; }
      }
      return total;  // 4 + 6 + 8
    }
  )"),
            18);
}

TEST(MinicEdgeCases, NestedCallsAsArguments) {
  EXPECT_EQ(run_main(R"(
    int add(int a, int b) { return a + b; }
    int twice(int a) { return 2 * a; }
    int main() { return add(twice(add(1, 2)), twice(4)); }  // 6 + 8
  )"),
            14);
}

TEST(MinicEdgeCases, GlobalScalarInitializersRunOnce) {
  EXPECT_EQ(run_main(R"(
    int base = 40;
    int derived = 0;
    int main() { derived = base + 2; return derived; }
  )"),
            42);
}

TEST(MinicEdgeCases, LocalArrayInitializerReappliesEachExecution) {
  // The auto-array initializer must re-run per declaration execution.
  EXPECT_EQ(run_main(R"(
    int probe() {
      int tmp[2] = {10, 20};
      int r = tmp[0] + tmp[1];
      tmp[0] = 999;
      return r;
    }
    int main() {
      int total = 0;
      for (int i = 0; i < 3; i++) { total += probe(); }
      return total;  // 30 * 3, never 999-polluted
    }
  )"),
            90);
}

TEST(MinicEdgeCases, EmptyFunctionBodyAndVoidCalls) {
  EXPECT_EQ(run_main(R"(
    void nop() {}
    int main() { nop(); nop(); return 7; }
  )"),
            7);
}

TEST(MinicEdgeCases, MissingReturnYieldsZero) {
  EXPECT_EQ(run_main(R"(
    int maybe(int x) { if (x > 0) { return 5; } }
    int main() { return maybe(-1) + maybe(1); }
  )"),
            5);
}

TEST(MinicEdgeCases, DeadCodeAfterReturnIsTolerated) {
  EXPECT_EQ(run_main(R"(
    int main() {
      return 3;
      return 4;
    }
  )"),
            3);
}

TEST(MinicEdgeCases, UnaryChains) {
  EXPECT_EQ(run_main("int main() { return - - -5; }"), -5);
  EXPECT_EQ(run_main("int main() { return !!7; }"), 1);
  EXPECT_EQ(run_main("int main() { return ~~9; }"), 9);
}

// ---- CDFG / analysis edge cases -----------------------------------------

TEST(CdfgEdgeCases, IrreducibleLikeDiamondHasNoFalseLoops) {
  ir::Cdfg cdfg("diamond");
  const auto a = cdfg.add_block();
  const auto b = cdfg.add_block();
  const auto c = cdfg.add_block();
  const auto d = cdfg.add_block();
  cdfg.add_edge(a, b);
  cdfg.add_edge(a, c);
  cdfg.add_edge(b, d);
  cdfg.add_edge(c, d);
  cdfg.set_entry(a);
  EXPECT_TRUE(cdfg.analyze_loops().empty());
  for (const auto& block : cdfg.blocks()) {
    EXPECT_EQ(block.loop_depth, 0);
  }
}

TEST(CdfgEdgeCases, TwoLatchesOneHeaderCountOnce) {
  // while-loop with a continue: two back edges into one header must not
  // double the nesting depth.
  const ir::TacProgram tac = minic::compile(R"(
    int main() {
      int n = 0;
      for (int i = 0; i < 9; i++) {
        if (i % 3 == 0) { continue; }
        n += i;
      }
      return n;
    }
  )");
  ir::Cdfg cdfg = ir::build_cdfg(tac);
  for (const auto& block : cdfg.blocks()) {
    EXPECT_LE(block.loop_depth, 1) << block.name;
  }
}

TEST(AnalysisEdgeCases, EmptyProfileNoKernels) {
  const auto app = workloads::build_ofdm_model();
  EXPECT_TRUE(analysis::extract_kernels(app.cdfg, ir::ProfileData{}).empty());
}

// ---- engine edge cases ---------------------------------------------------

TEST(EngineEdgeCases, StopWhenMetFalseFindsBestSplit) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  core::MethodologyOptions stop;
  core::MethodologyOptions greedy_all;
  greedy_all.stop_when_met = false;
  const auto early = core::run_methodology(app.cdfg, app.profile, p,
                                           workloads::kOfdmTimingConstraint,
                                           stop);
  const auto best = core::run_methodology(app.cdfg, app.profile, p,
                                          workloads::kOfdmTimingConstraint,
                                          greedy_all);
  EXPECT_LE(best.final_cycles, early.final_cycles);
  EXPECT_GE(best.moved.size(), early.moved.size());
}

TEST(EngineEdgeCases, SkipUnprofitableNeverWorseThanPlainGreedy) {
  const auto app = workloads::build_jpeg_model();
  const auto p = platform::make_paper_platform(1500, 2);
  core::MethodologyOptions plain;
  plain.stop_when_met = false;
  core::MethodologyOptions skip = plain;
  skip.skip_unprofitable = true;
  const auto a = core::run_methodology(app.cdfg, app.profile, p, 1, plain);
  const auto b = core::run_methodology(app.cdfg, app.profile, p, 1, skip);
  EXPECT_LE(b.final_cycles, a.final_cycles);
}

TEST(EngineEdgeCases, ZeroConstraintNeverMet) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const auto report = core::run_methodology(app.cdfg, app.profile, p, 0);
  EXPECT_FALSE(report.met);
}

TEST(EngineEdgeCases, DescribeMentionsKeyFacts) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const auto report = core::run_methodology(app.cdfg, app.profile, p,
                                            workloads::kOfdmTimingConstraint);
  const std::string text = core::describe(report, app.cdfg);
  EXPECT_NE(text.find("ofdm_tx"), std::string::npos);
  EXPECT_NE(text.find("BB22"), std::string::npos);
  EXPECT_NE(text.find("constraint met"), std::string::npos);
}

TEST(EngineEdgeCases, AllCoarseBeatsAllFineOnPaperApps) {
  for (const auto& app :
       {workloads::build_ofdm_model(), workloads::build_jpeg_model()}) {
    const auto p = platform::make_paper_platform(1500, 2);
    const auto report = core::all_coarse_split(app.cdfg, app.profile, p, 1);
    EXPECT_LT(report.final_cycles, report.initial_cycles) << app.cdfg.name();
  }
}

// ---- error paths ----------------------------------------------------------

TEST(ErrorPaths, InterpreterRejectsUnknownArrays) {
  interp::Interpreter interp(minic::compile("int main() { return 0; }"));
  EXPECT_THROW(interp.set_input("nope", {1}), Error);
  EXPECT_THROW(interp.array("nope"), Error);
}

TEST(ErrorPaths, InterpreterRejectsOversizedInput) {
  interp::Interpreter interp(
      minic::compile("int buf[2]; int main() { return buf[0]; }"));
  EXPECT_THROW(interp.set_input("buf", {1, 2, 3}), Error);
}

TEST(ErrorPaths, InterpreterRejectsConstInput) {
  interp::Interpreter interp(minic::compile(
      "const int t[2] = {1,2}; int main() { return t[0]; }"));
  EXPECT_THROW(interp.set_input("t", {9, 9}), Error);
}

TEST(ErrorPaths, ExhaustiveOptimalRejectsHugeK) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  EXPECT_THROW(core::exhaustive_optimal(app.cdfg, app.profile, p, 1000, 30),
               Error);
}

TEST(ErrorPaths, TacValidateCatchesStoreToConst) {
  ir::TacProgram tac;
  tac.name = "bad";
  tac.num_regs = 2;
  tac.reg_names = {"", ""};
  ir::ArraySymbol table;
  table.name = "t";
  table.size = 1;
  table.is_const = true;
  table.init = {1};
  tac.arrays.push_back(table);
  ir::TacBlock block;
  block.id = 0;
  ir::TacInstr store;
  store.op = ir::OpKind::kStore;
  store.array = 0;
  store.src1 = 0;
  store.src2 = 1;
  block.body.push_back(store);
  tac.blocks.push_back(block);
  tac.entry = 0;
  EXPECT_THROW(tac.validate(), Error);
}

}  // namespace
}  // namespace amdrel
