#include "minic/frontend.h"

#include <gtest/gtest.h>

#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "support/error.h"

namespace amdrel::minic {
namespace {

// ---- lexer -----------------------------------------------------------------

TEST(LexerTest, TokenizesOperatorsAndKeywords) {
  const auto tokens = tokenize("int x = 0x1F + 42 << 2; // comment\n");
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[3].int_value, 0x1F);
  EXPECT_EQ(tokens[5].int_value, 42);
  EXPECT_EQ(tokens[6].kind, TokenKind::kShl);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(LexerTest, DistinguishesCompoundOperators) {
  const auto tokens = tokenize("a += b <<= c >= d >> e && f & g");
  EXPECT_EQ(tokens[1].kind, TokenKind::kPlusAssign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kShlAssign);
  EXPECT_EQ(tokens[5].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[7].kind, TokenKind::kShr);
  EXPECT_EQ(tokens[9].kind, TokenKind::kAmpAmp);
  EXPECT_EQ(tokens[11].kind, TokenKind::kAmp);
}

TEST(LexerTest, TracksLineNumbers) {
  const auto tokens = tokenize("int\nx\n=\n1;");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[3].loc.line, 4);
}

TEST(LexerTest, BlockCommentsAndNesting) {
  const auto tokens = tokenize("a /* x \n y */ b");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_THROW(tokenize("/* unterminated"), Error);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_THROW(tokenize("int $x;"), Error);
  EXPECT_THROW(tokenize("int x = 99999999999;"), Error);  // > int32
}

// ---- parser ----------------------------------------------------------------

TEST(ParserTest, ParsesFunctionAndGlobals) {
  const Program program = parse(R"(
    int counter;
    const int table[3] = {1, -2, 3};
    int main() { return counter + table[1]; }
  )");
  ASSERT_EQ(program.globals.size(), 2u);
  EXPECT_EQ(program.globals[0]->name, "counter");
  EXPECT_TRUE(program.globals[1]->is_const);
  EXPECT_EQ(program.globals[1]->init_list,
            (std::vector<std::int64_t>{1, -2, 3}));
  ASSERT_EQ(program.functions.size(), 1u);
  EXPECT_EQ(program.functions[0].name, "main");
  EXPECT_TRUE(program.functions[0].returns_value);
}

TEST(ParserTest, PrecedenceMulBeforeAdd) {
  const Program program = parse("int main() { return 1 + 2 * 3; }");
  const Stmt& ret = *program.functions[0].body->body[0];
  ASSERT_EQ(ret.kind, Stmt::Kind::kReturn);
  EXPECT_EQ(ret.value->bin_op, BinaryOp::kAdd);
  EXPECT_EQ(ret.value->rhs->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, ParsesControlFlow) {
  const Program program = parse(R"(
    void f(int n) {
      for (int i = 0; i < n; i++) {
        if (i % 2 == 0 && i != 4) { continue; }
        else { break; }
      }
      while (n > 0) { n--; }
      do { n++; } while (n < 3);
    }
    int main() { f(3); return 0; }
  )");
  EXPECT_EQ(program.functions.size(), 2u);
  const Stmt& body = *program.functions[0].body;
  EXPECT_EQ(body.body[0]->kind, Stmt::Kind::kFor);
  EXPECT_EQ(body.body[1]->kind, Stmt::Kind::kWhile);
  EXPECT_EQ(body.body[2]->kind, Stmt::Kind::kDoWhile);
}

TEST(ParserTest, TwoDimensionalArrays) {
  const Program program = parse(R"(
    int m[4][8];
    int main() { m[1][2] = m[0][0] + 1; return 0; }
  )");
  EXPECT_EQ(program.globals[0]->dims, (std::vector<std::int64_t>{4, 8}));
}

TEST(ParserTest, SyntaxErrorsCarryLocation) {
  try {
    parse("int main() { return 1 +; }");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(parse("int main() { int a[0]; }"), Error);
  EXPECT_THROW(parse("int main() {"), Error);
}

// ---- sema ------------------------------------------------------------------

void expect_sema_error(const std::string& source, const char* fragment) {
  try {
    check_program(parse(source));
    FAIL() << "expected semantic error containing '" << fragment << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(SemaTest, AcceptsWellFormedProgram) {
  EXPECT_NO_THROW(check_program(parse(R"(
    const int kTaps[4] = {1, 2, 3, 4};
    int acc;
    int mac(int x[], int n) {
      int sum = 0;
      for (int i = 0; i < n; i++) { sum += x[i] * kTaps[i & 3]; }
      return sum;
    }
    int samples[16];
    int main() { acc = mac(samples, 16); return acc; }
  )")));
}

TEST(SemaTest, UndeclaredAndRedeclared) {
  expect_sema_error("int main() { return y; }", "undeclared");
  expect_sema_error("int main() { int x; int x; return 0; }",
                    "redeclaration");
}

TEST(SemaTest, ConstViolations) {
  expect_sema_error(
      "const int t[2] = {1,2}; int main() { t[0] = 3; return 0; }",
      "const");
  expect_sema_error("int main() { const int c = 1; c = 2; return 0; }",
                    "const");
  expect_sema_error("int main() { const int c; return c; }", "initializer");
}

TEST(SemaTest, ArrayMisuse) {
  expect_sema_error("int a[4]; int main() { return a; }", "scalar");
  expect_sema_error("int x; int main() { return x[0]; }", "not an array");
  expect_sema_error("int m[2][2]; int main() { return m[1]; }", "index");
  expect_sema_error("int a[4]; int main() { a = 3; return 0; }", "array");
}

TEST(SemaTest, CallChecks) {
  expect_sema_error("int main() { return f(); }", "undefined function");
  expect_sema_error(
      "int f(int a) { return a; } int main() { return f(); }",
      "argument");
  expect_sema_error(
      "void f() {} int main() { return f(); }", "void");
  expect_sema_error(
      "int f(int a[]) { return a[0]; } int main() { return f(3); }",
      "array");
}

TEST(SemaTest, RecursionRejected) {
  expect_sema_error(
      "int f(int n) { return f(n - 1); } int main() { return f(3); }",
      "recursion");
  expect_sema_error(R"(
    int g(int n);
    int g(int n) { return h(n); }
    int h(int n) { return g(n); }
    int main() { return g(1); }
  )", "");  // either redefinition (forward decl unsupported) or recursion
}

TEST(SemaTest, BreakOutsideLoop) {
  expect_sema_error("int main() { break; return 0; }", "loop");
}

TEST(SemaTest, MissingMain) {
  expect_sema_error("int f() { return 1; }", "main");
  EXPECT_NO_THROW(
      check_program(parse("int f() { return 1; }"), /*require_main=*/false));
}

TEST(SemaTest, ReturnValueMismatch) {
  expect_sema_error("void f() { return 3; } int main() { f(); return 0; }",
                    "void");
  expect_sema_error("int f() { return; } int main() { return f(); }",
                    "return");
}

// ---- lowering --------------------------------------------------------------

TEST(LoweringTest, ProducesValidTac) {
  const ir::TacProgram tac = compile(R"(
    int out[8];
    int scale(int v, int s) { return (v * s) >> 4; }
    int main() {
      for (int i = 0; i < 8; i++) { out[i] = scale(i, 3); }
      return out[7];
    }
  )");
  EXPECT_NO_THROW(tac.validate());
  EXPECT_GT(tac.blocks.size(), 3u);   // loop structure present
  EXPECT_EQ(tac.arrays.size(), 1u);
  EXPECT_EQ(tac.arrays[0].name, "out");
}

TEST(LoweringTest, InliningDuplicatesCallees) {
  const ir::TacProgram once = compile(R"(
    int sq(int v) { return v * v; }
    int main() { return sq(3); }
  )");
  const ir::TacProgram twice = compile(R"(
    int sq(int v) { return v * v; }
    int main() { return sq(3) + sq(4); }
  )");
  auto count_muls = [](const ir::TacProgram& tac) {
    int muls = 0;
    for (const auto& block : tac.blocks) {
      for (const auto& instr : block.body) {
        muls += instr.op == ir::OpKind::kMul;
      }
    }
    return muls;
  };
  EXPECT_EQ(count_muls(once), 1);
  EXPECT_EQ(count_muls(twice), 2);
}

TEST(LoweringTest, TwoDimIndexingEmitsAddressArithmetic) {
  const ir::TacProgram tac = compile(R"(
    int m[4][8];
    int main() { return m[2][5]; }
  )");
  int muls = 0;
  for (const auto& block : tac.blocks) {
    for (const auto& instr : block.body) muls += instr.op == ir::OpKind::kMul;
  }
  EXPECT_EQ(muls, 1);  // row * 8
}

TEST(LoweringTest, LocalArraysGetUniqueSymbols) {
  const ir::TacProgram tac = compile(R"(
    void f() { int tmp[4]; tmp[0] = 1; }
    void g() { int tmp[4]; tmp[1] = 2; }
    int main() { f(); g(); return 0; }
  )");
  ASSERT_EQ(tac.arrays.size(), 2u);
  EXPECT_NE(tac.arrays[0].name, tac.arrays[1].name);
}

}  // namespace
}  // namespace amdrel::minic
