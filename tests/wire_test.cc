// Wire codecs (core/wire.h): every line kind of the sweep-service
// protocol round-trips encode -> parse_line -> decode with its fields
// intact, and the data lines re-encode byte-identically — the property
// the coordinator's byte-identity guarantee stands on. Decoders must
// reject missing/mistyped fields with `false`, never by throwing.

#include "core/wire.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/json_lines.h"

namespace amdrel::core::wire {
namespace {

// Strips the trailing newline every encoder appends, so tests can also
// assert it was there.
std::string encoded_line(const std::string& with_newline) {
  EXPECT_FALSE(with_newline.empty());
  EXPECT_EQ(with_newline.back(), '\n');
  return with_newline.substr(0, with_newline.size() - 1);
}

jsonl::JsonValue parsed(const std::string& line) {
  jsonl::JsonValue object;
  EXPECT_TRUE(parse_line(line, object));
  return object;
}

TEST(WireTest, HeaderRoundTrips) {
  Header header;
  header.protocol = 3;
  header.schema_version = 7;
  header.fingerprint_algorithm = 2;
  header.shards = 12;

  std::ostringstream os;
  encode_header(os, header);
  const std::string line = encoded_line(os.str());
  const jsonl::JsonValue object = parsed(line);
  EXPECT_EQ(line_kind(object), LineKind::kHeader);

  Header out;
  ASSERT_TRUE(decode_header(object, out));
  EXPECT_EQ(out.protocol, 3);
  EXPECT_EQ(out.schema_version, 7);
  EXPECT_EQ(out.fingerprint_algorithm, 2);
  EXPECT_EQ(out.shards, 12u);

  std::ostringstream again;
  encode_header(again, out);
  EXPECT_EQ(again.str(), os.str());
}

TEST(WireTest, ShardBeginRoundTrips) {
  ShardBegin begin;
  begin.shard = 5;
  begin.used = 24;

  std::ostringstream os;
  encode_shard_begin(os, begin);
  const jsonl::JsonValue object = parsed(encoded_line(os.str()));
  EXPECT_EQ(line_kind(object), LineKind::kShard);

  ShardBegin out;
  ASSERT_TRUE(decode_shard_begin(object, out));
  EXPECT_EQ(out.shard, 5u);
  EXPECT_EQ(out.used, 24u);
}

TEST(WireTest, CellRoundTripsByteIdentically) {
  // A representative payload: doubles with non-terminating binary
  // fractions must survive bit-exactly (they travel as IEEE-754 bit
  // patterns, not decimal renderings).
  PartitionReport report;
  report.app = "ofdm \"quoted\"";
  report.timing_constraint = 60000;
  report.objective = ObjectiveKind::kCombined;
  report.energy_budget_pj = 0.1 + 0.2;  // 0.30000000000000004
  report.initial_cycles = 123456789;
  report.initial_energy_pj = 202988452.0625;
  report.initial_meets = false;
  report.final_cycles = 66543;
  report.cycles_in_cgc = 31234;
  report.floorplan_cost = 17.25;
  report.met = true;
  report.engine_iterations = 42;
  report.moved = {22, 7};  // ids must pair 1:1 with moved_names
  const std::vector<std::string> moved_names = {"BB22", "BB7"};

  std::ostringstream os;
  encode_cell(os, /*shard=*/3, /*slot=*/1, report, moved_names);
  const std::string line = encoded_line(os.str());
  const jsonl::JsonValue object = parsed(line);
  EXPECT_EQ(line_kind(object), LineKind::kCell);

  Cell cell;
  ASSERT_TRUE(decode_cell(object, cell));
  EXPECT_EQ(cell.shard, 3u);
  EXPECT_EQ(cell.slot, 1u);
  EXPECT_EQ(cell.payload.report.app, report.app);
  EXPECT_EQ(cell.payload.report.final_cycles, report.final_cycles);
  EXPECT_EQ(cell.payload.report.energy_budget_pj, report.energy_budget_pj);
  EXPECT_EQ(cell.payload.report.met, report.met);
  EXPECT_EQ(cell.payload.moved_names, moved_names);

  // decode -> re-encode is the identity on bytes: the guarantee the
  // coordinator's merged artifact rests on.
  std::ostringstream again;
  encode_cell(again, cell.shard, cell.slot, cell.payload.report,
              cell.payload.moved_names);
  EXPECT_EQ(again.str(), os.str());
}

TEST(WireTest, WorkerDoneRoundTrips) {
  WorkerDone done;
  done.cells = 96;

  std::ostringstream os;
  encode_worker_done(os, done);
  const jsonl::JsonValue object = parsed(encoded_line(os.str()));
  EXPECT_EQ(line_kind(object), LineKind::kWorkerDone);

  WorkerDone out;
  ASSERT_TRUE(decode_worker_done(object, out));
  EXPECT_EQ(out.cells, 96u);
}

TEST(WireTest, AssignRoundTrips) {
  Assign assign;
  assign.shards = {4, 0, 9};
  assign.retry = 2;

  const std::string line = encoded_line(encode_assign(assign));
  const jsonl::JsonValue object = parsed(line);
  EXPECT_EQ(line_kind(object), LineKind::kAssign);

  Assign out;
  ASSERT_TRUE(decode_assign(object, out));
  EXPECT_EQ(out.shards, (std::vector<std::size_t>{4, 0, 9}));
  EXPECT_EQ(out.retry, 2u);
  EXPECT_EQ(encode_assign(out), encode_assign(assign));
}

TEST(WireTest, EmptyAssignRoundTrips) {
  // An empty batch is legal on the wire (a worker that dialed in after
  // all shards were handed out gets nothing but a later shutdown).
  Assign assign;
  Assign out;
  ASSERT_TRUE(decode_assign(parsed(encoded_line(encode_assign(assign))),
                            out));
  EXPECT_TRUE(out.shards.empty());
  EXPECT_EQ(out.retry, 0u);
}

TEST(WireTest, ShardAckRoundTrips) {
  ShardAck ack;
  ack.shard = 6;
  const jsonl::JsonValue object = parsed(encoded_line(encode_shard_ack(ack)));
  EXPECT_EQ(line_kind(object), LineKind::kShardAck);
  ShardAck out;
  ASSERT_TRUE(decode_shard_ack(object, out));
  EXPECT_EQ(out.shard, 6u);
}

TEST(WireTest, RoundDoneRoundTrips) {
  RoundDone done;
  done.cells = 18;
  const jsonl::JsonValue object =
      parsed(encoded_line(encode_round_done(done)));
  EXPECT_EQ(line_kind(object), LineKind::kRoundDone);
  RoundDone out;
  ASSERT_TRUE(decode_round_done(object, out));
  EXPECT_EQ(out.cells, 18u);
}

TEST(WireTest, ShutdownEncodes) {
  const jsonl::JsonValue object = parsed(encoded_line(encode_shutdown()));
  EXPECT_EQ(line_kind(object), LineKind::kShutdown);
}

TEST(WireTest, ParseLineRejectsGarbage) {
  jsonl::JsonValue object;
  EXPECT_FALSE(parse_line("not json", object));
  EXPECT_FALSE(parse_line("", object));
  EXPECT_FALSE(parse_line("[1, 2]", object));  // array, not object
}

TEST(WireTest, UnknownKindIsUnknown) {
  EXPECT_EQ(line_kind(parsed("{\"kind\":\"mystery\"}")),
            LineKind::kUnknown);
  EXPECT_EQ(line_kind(parsed("{\"no_kind\":1}")), LineKind::kUnknown);
}

TEST(WireTest, DecodersRejectMissingFields) {
  Header header;
  EXPECT_FALSE(decode_header(parsed("{\"kind\":\"wire_header\"}"), header));

  ShardBegin begin;
  EXPECT_FALSE(
      decode_shard_begin(parsed("{\"kind\":\"shard\",\"used\":2}"), begin));

  Cell cell;
  EXPECT_FALSE(
      decode_cell(parsed("{\"kind\":\"cell\",\"shard\":0,\"slot\":0}"),
                  cell));

  WorkerDone done;
  EXPECT_FALSE(decode_worker_done(parsed("{\"kind\":\"worker_done\"}"),
                                  done));

  Assign assign;
  EXPECT_FALSE(decode_assign(parsed("{\"kind\":\"assign\",\"retry\":0}"),
                             assign));
  EXPECT_FALSE(decode_assign(
      parsed("{\"kind\":\"assign\",\"retry\":0,\"shards\":[-1]}"), assign));

  ShardAck ack;
  EXPECT_FALSE(decode_shard_ack(parsed("{\"kind\":\"shard_ack\"}"), ack));

  RoundDone round;
  EXPECT_FALSE(decode_round_done(parsed("{\"kind\":\"round_done\"}"),
                                 round));
}

}  // namespace
}  // namespace amdrel::core::wire
