// SweepCache (core/sweep_cache.h): memoization correctness (cached runs
// byte-identical to uncached, for any thread count), mapper-snapshot
// reuse, and the persistence layer's strict validation — a cache file
// that fails ANY check is rejected whole and the caller runs cold, so a
// stale or corrupt cache can cost a recompute but never a wrong result.

#include "core/sweep_cache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#ifndef _WIN32
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/sweep_io.h"
#include "support/error.h"
#include "synth/cdfg_generator.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

SweepSpec small_spec(int threads, SweepCache* cache) {
  SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2};
  spec.strategies = {StrategyKind::kGreedyPaper, StrategyKind::kAnnealing};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.threads = threads;
  spec.cache = cache;
  return spec;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(SweepCacheTest, CellRoundTrip) {
  SweepCache cache;
  Fingerprint key;
  key.hi = 1;
  key.lo = 2;
  EXPECT_FALSE(cache.find_cell(key).has_value());
  CachedCell cell;
  cell.report.app = "ofdm";
  cell.report.final_cycles = 123;
  cell.moved_names = {"BB22"};
  cache.store_cell(key, cell);
  const auto hit = cache.find_cell(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->report.app, "ofdm");
  EXPECT_EQ(hit->report.final_cycles, 123);
  EXPECT_EQ(hit->moved_names, std::vector<std::string>{"BB22"});
  const SweepCacheStats stats = cache.stats();
  EXPECT_EQ(stats.cell_hits, 1u);
  EXPECT_EQ(stats.cell_misses, 1u);
  EXPECT_EQ(stats.cells, 1u);
}

TEST(SweepCacheTest, CachedSweepIsByteIdenticalToUncached) {
  const auto corpus = workloads::paper_corpus();
  const std::string uncached =
      sweep_to_json(sweep_design_space(corpus, small_spec(2, nullptr)));

  SweepCache cache;
  const auto cold = sweep_design_space(corpus, small_spec(2, &cache));
  EXPECT_EQ(sweep_to_json(cold), uncached);
  EXPECT_GT(cache.stats().cell_misses, 0u);
  EXPECT_EQ(cache.stats().cell_hits, 0u);

  // Warm rerun: every cell hits, no mapper is cold-built or restored.
  for (const int threads : {1, 2, 4}) {
    cache.reset_stats();
    const auto warm = sweep_design_space(corpus, small_spec(threads, &cache));
    EXPECT_EQ(sweep_to_json(warm), uncached) << threads << " threads";
    EXPECT_EQ(sweep_to_csv(warm), sweep_to_csv(cold));
    const SweepCacheStats stats = cache.stats();
    EXPECT_EQ(stats.cell_misses, 0u) << threads << " threads";
    EXPECT_GT(stats.cell_hits, 0u);
    EXPECT_EQ(stats.mapper_builds, 0u) << threads << " threads";
    EXPECT_EQ(stats.all_fine_misses, 0u);
  }
}

TEST(SweepCacheTest, ExplorerSharesTheCellAndMapperMemo) {
  const auto app = workloads::build_ofdm_model();
  const auto platform = platform::make_paper_platform(1500, 2);
  SweepCache cache;
  ExploreSpec spec;
  spec.constraints = {workloads::kOfdmTimingConstraint};
  spec.threads = 2;
  spec.cache = &cache;

  ExploreSpec uncached = spec;
  uncached.cache = nullptr;
  const std::string reference =
      describe(explore_design_space(app.cdfg, app.profile, platform,
                                    uncached));

  const auto cold =
      explore_design_space(app.cdfg, app.profile, platform, spec);
  EXPECT_EQ(describe(cold), reference);
  cache.reset_stats();
  const auto warm =
      explore_design_space(app.cdfg, app.profile, platform, spec);
  EXPECT_EQ(describe(warm), reference);
  EXPECT_EQ(cache.stats().cell_misses, 0u);
  EXPECT_EQ(cache.stats().mapper_builds, 0u);
}

TEST(SweepCacheTest, SyntheticCorpusCachedEqualsUncachedAnyThreads) {
  std::vector<CorpusApp> corpus;
  for (int i = 0; i < 4; ++i) {
    synth::CdfgGenConfig config;
    config.segments = 3;
    config.seed = 77 + static_cast<std::uint64_t>(i);
    synth::SyntheticApp app = synth::generate_app(config);
    CorpusApp entry;
    entry.name = "synthetic" + std::to_string(i);
    entry.cdfg = std::move(app.cdfg);
    entry.profile = std::move(app.profile);
    corpus.push_back(std::move(entry));
  }
  const std::string uncached =
      sweep_to_json(sweep_design_space(corpus, small_spec(3, nullptr)));
  SweepCache cache;
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  for (const int threads : {1, 2, hw}) {
    EXPECT_EQ(
        sweep_to_json(sweep_design_space(corpus, small_spec(threads, &cache))),
        uncached)
        << threads << " threads";
  }
}

TEST(SweepCacheTest, PersistenceRoundTripStartsWarm) {
  const auto corpus = workloads::paper_corpus();
  const std::string path = temp_path("sweep_cache_roundtrip.jsonl");
  std::string uncached;
  {
    SweepCache cache;
    uncached =
        sweep_to_json(sweep_design_space(corpus, small_spec(2, &cache)));
    std::string error;
    ASSERT_TRUE(cache.save(path, &error)) << error;
  }
  SweepCache fresh;
  std::string error;
  ASSERT_TRUE(fresh.load(path, &error)) << error;
  EXPECT_GT(fresh.stats().entries_loaded, 0u);
  const auto warm = sweep_design_space(corpus, small_spec(2, &fresh));
  EXPECT_EQ(sweep_to_json(warm), uncached);
  const SweepCacheStats stats = fresh.stats();
  EXPECT_EQ(stats.cell_misses, 0u);
  EXPECT_EQ(stats.mapper_builds, 0u);
  EXPECT_EQ(stats.all_fine_misses, 0u);
  std::remove(path.c_str());
}

TEST(SweepCacheTest, SaveIsDeterministic) {
  const auto corpus = workloads::paper_corpus();
  auto render = [&](int threads) {
    SweepCache cache;
    sweep_design_space(corpus, small_spec(threads, &cache));
    const std::string path = temp_path("sweep_cache_det.jsonl");
    std::string error;
    EXPECT_TRUE(cache.save(path, &error)) << error;
    std::ifstream in(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    return text;
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(2));
  EXPECT_EQ(serial, render(4));
}

TEST(SweepCacheTest, LoadRejectsMissingFile) {
  SweepCache cache;
  std::string error;
  EXPECT_FALSE(cache.load(temp_path("no_such_cache.jsonl"), &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

void expect_rejected(const std::string& content, const char* expect_in_error,
                     const char* tag) {
  const std::string path =
      temp_path((std::string("sweep_cache_bad_") + tag + ".jsonl").c_str());
  {
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  SweepCache cache;
  std::string error;
  EXPECT_FALSE(cache.load(path, &error)) << tag << ": accepted " << content;
  EXPECT_NE(error.find(expect_in_error), std::string::npos)
      << tag << ": error was '" << error << "'";
  // A rejected load leaves the cache empty and usable.
  EXPECT_EQ(cache.stats().cells, 0u);
  EXPECT_EQ(cache.stats().entries_loaded, 0u);
  std::remove(path.c_str());
}

// A header this build accepts, built from the live constants so the
// corrupt-entry cases below keep testing ENTRY validation after version
// bumps (a stale hardcoded header would trip the version check first).
std::string current_header() {
  std::ostringstream os;
  os << "{\"kind\":\"header\",\"schema_version\":" << kSweepCacheSchemaVersion
     << ",\"fingerprint_algorithm\":" << kFingerprintAlgorithmVersion
     << ",\"generator\":\"amdrel\"}\n";
  return os.str();
}

TEST(SweepCacheTest, LoadRejectsCorruptFiles) {
  expect_rejected("garbage\n", "not a JSON object", "garbage");
  expect_rejected("", "empty cache file", "empty");
  expect_rejected("{\"kind\":\"cell\"}\n", "missing header", "no_header");
  expect_rejected(
      "{\"kind\":\"header\",\"schema_version\":999,"
      "\"fingerprint_algorithm\":1}\n",
      "schema_version 999", "schema_mismatch");
  expect_rejected(
      "{\"kind\":\"header\",\"schema_version\":" +
          std::to_string(kSweepCacheSchemaVersion) +
          ",\"fingerprint_algorithm\":999}\n",
      "fingerprint_algorithm 999", "algorithm_mismatch");
  expect_rejected(current_header() + "{\"kind\":\"cell\"}\n",
                  "missing \"key\"", "keyless");
  expect_rejected(
      current_header() +
          "{\"kind\":\"cell\",\"key\":\"zz\"}\n",
      "malformed key", "bad_key");
  expect_rejected(
      current_header() +
          "{\"kind\":\"wat\",\"key\":"
          "\"00000000000000000000000000000001\"}\n",
      "unknown kind", "unknown_kind");
  expect_rejected(
      current_header() +
          "{\"kind\":\"all_fine\",\"key\":"
          "\"00000000000000000000000000000001\"}\n",
      "malformed all_fine", "all_fine_no_cycles");
  expect_rejected(
      current_header() +
          "{\"kind\":\"all_fine\",\"key\":"
          "\"00000000000000000000000000000001\",\"cycles\":1}\n" +
          "{\"kind\":\"all_fine\",\"key\":"
          "\"00000000000000000000000000000001\",\"cycles\":2}\n",
      "duplicate key", "duplicate");
  expect_rejected(
      current_header() +
          "{\"kind\":\"cell\",\"key\":"
          "\"00000000000000000000000000000001\",\"app\":\"x\"}\n",
      "malformed cell", "cell_missing_fields");
  // Truncated mid-line JSON (a crashed writer).
  expect_rejected(
      current_header() +
          "{\"kind\":\"all_fine\",\"key\":"
          "\"00000000000000000000000000000001\",\"cy",
      "not a JSON object", "truncated");
}

TEST(SweepCacheTest, LoadAcceptsOwnSave) {
  // A saved cache containing a cell with every serialized field must
  // round-trip exactly, including kernels and moved names.
  const auto app = workloads::build_ofdm_model();
  const auto platform = platform::make_paper_platform(1500, 2);
  SweepCache cache;
  ExploreSpec spec;
  spec.constraints = {workloads::kOfdmTimingConstraint};
  spec.strategies = {StrategyKind::kGreedyPaper};
  spec.threads = 1;
  spec.cache = &cache;
  const auto summary =
      explore_design_space(app.cdfg, app.profile, platform, spec);
  ASSERT_FALSE(summary.points.empty());

  const std::string path = temp_path("sweep_cache_ownsave.jsonl");
  std::string error;
  ASSERT_TRUE(cache.save(path, &error)) << error;
  SweepCache fresh;
  ASSERT_TRUE(fresh.load(path, &error)) << error;

  cache.reset_stats();
  fresh.reset_stats();
  ExploreSpec warm_spec = spec;
  warm_spec.cache = &fresh;
  const auto warm =
      explore_design_space(app.cdfg, app.profile, platform, warm_spec);
  EXPECT_EQ(describe(warm), describe(summary));
  EXPECT_EQ(fresh.stats().cell_misses, 0u);

  // The reloaded report matches the original field by field.
  const PartitionReport& a = summary.points.front().report;
  ExploreSpec replay = spec;
  replay.cache = &fresh;
  const ExploreSummary replayed =
      explore_design_space(app.cdfg, app.profile, platform, replay);
  const PartitionReport& b = replayed.points.front().report;
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.timing_constraint, b.timing_constraint);
  EXPECT_EQ(a.initial_cycles, b.initial_cycles);
  EXPECT_EQ(a.initial_meets, b.initial_meets);
  EXPECT_EQ(a.moved, b.moved);
  EXPECT_EQ(a.cost.t_fpga, b.cost.t_fpga);
  EXPECT_EQ(a.cost.t_coarse, b.cost.t_coarse);
  EXPECT_EQ(a.cost.t_comm, b.cost.t_comm);
  EXPECT_EQ(a.final_cycles, b.final_cycles);
  EXPECT_EQ(a.cycles_in_cgc, b.cycles_in_cgc);
  EXPECT_EQ(a.met, b.met);
  EXPECT_EQ(a.engine_iterations, b.engine_iterations);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    EXPECT_EQ(a.kernels[i].block, b.kernels[i].block);
    EXPECT_EQ(a.kernels[i].exec_freq, b.kernels[i].exec_freq);
    EXPECT_EQ(a.kernels[i].op_weight, b.kernels[i].op_weight);
    EXPECT_EQ(a.kernels[i].total_weight, b.kernels[i].total_weight);
    EXPECT_EQ(a.kernels[i].loop_depth, b.kernels[i].loop_depth);
    EXPECT_EQ(a.kernels[i].cgc_eligible, b.kernels[i].cgc_eligible);
  }
  std::remove(path.c_str());
}

TEST(SweepCacheTest, SaveReportsUnwritablePath) {
  SweepCache cache;
  std::string error;
  EXPECT_FALSE(cache.save("/nonexistent-amdrel-dir/cache.jsonl", &error));
  EXPECT_NE(error.find("cannot write"), std::string::npos) << error;
}

TEST(SweepCacheTest, MapperSnapshotRestoresIdenticalCosts) {
  const auto app = workloads::build_jpeg_model();
  const auto platform = platform::make_paper_platform(1500, 2);
  HybridMapper original(app.cdfg, platform);
  const MapperState state = original.state();
  HybridMapper restored(app.cdfg, platform, state);
  EXPECT_EQ(original.all_fine_cycles(app.profile),
            restored.all_fine_cycles(app.profile));
  for (ir::BlockId block = 0; block < app.cdfg.size(); ++block) {
    EXPECT_EQ(original.fine_cycles_per_invocation(block),
              restored.fine_cycles_per_invocation(block));
    if (original.cgc_eligible(block)) {
      EXPECT_EQ(original.coarse_cycles_per_invocation(block),
                restored.coarse_cycles_per_invocation(block));
    }
  }
}

TEST(SweepCacheTest, MapperSnapshotRejectsWrongBlockCount) {
  const auto ofdm = workloads::build_ofdm_model();
  const auto jpeg = workloads::build_jpeg_model();
  const auto platform = platform::make_paper_platform(1500, 2);
  const MapperState state = HybridMapper(ofdm.cdfg, platform).state();
  EXPECT_THROW(HybridMapper(jpeg.cdfg, platform, state), Error);
}

Fingerprint key_of(std::uint64_t hi, std::uint64_t lo) {
  Fingerprint key;
  key.hi = hi;
  key.lo = lo;
  return key;
}

CachedCell cell_named(const std::string& app, std::int64_t cycles) {
  CachedCell cell;
  cell.report.app = app;
  cell.report.final_cycles = cycles;
  cell.report.moved = {1};  // moved_names must stay parallel to moved
  cell.moved_names = {"BB1"};
  return cell;
}

TEST(SweepCacheTest, ShardCountIsClampedAndResultsAreShardCountFree) {
  EXPECT_EQ(SweepCache(0).shard_count(), 1);
  EXPECT_EQ(SweepCache(-5).shard_count(), 1);
  EXPECT_EQ(SweepCache(100000).shard_count(), 4096);
  EXPECT_EQ(SweepCache().shard_count(), SweepCache::kDefaultShardCount);

  // The memoized sweep must be byte-identical whatever the shard count
  // and thread count — sharding moves lock boundaries, never results.
  const auto corpus = workloads::paper_corpus();
  const std::string uncached =
      sweep_to_json(sweep_design_space(corpus, small_spec(2, nullptr)));
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  for (const int shards : {1, 16}) {
    SweepCache cache(shards);
    for (const int threads : {1, 2, hw}) {
      EXPECT_EQ(sweep_to_json(
                    sweep_design_space(corpus, small_spec(threads, &cache))),
                uncached)
          << shards << " shards, " << threads << " threads";
    }
    // Warm by now: every cell hit, nothing rebuilt.
    cache.reset_stats();
    sweep_design_space(corpus, small_spec(2, &cache));
    EXPECT_EQ(cache.stats().cell_misses, 0u) << shards << " shards";
    EXPECT_EQ(cache.stats().mapper_builds, 0u) << shards << " shards";
  }
}

TEST(SweepCacheTest, StatsAggregateAcrossShards) {
  SweepCache cache(8);
  // Keys chosen to land on every bucket (shard = lo % 8).
  for (std::uint64_t lo = 0; lo < 24; ++lo) {
    cache.store_cell(key_of(1, lo), cell_named("app", 100));
  }
  for (std::uint64_t lo = 0; lo < 24; ++lo) {
    EXPECT_TRUE(cache.find_cell(key_of(1, lo)).has_value());
    EXPECT_FALSE(cache.find_cell(key_of(2, lo)).has_value());
  }
  const SweepCacheStats stats = cache.stats();
  EXPECT_EQ(stats.cells, 24u);
  EXPECT_EQ(stats.cell_hits, 24u);
  EXPECT_EQ(stats.cell_misses, 24u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().cell_hits, 0u);
  EXPECT_EQ(cache.stats().cells, 24u);  // contents survive a stats reset
}

TEST(SweepCacheTest, MergeFromUnionsEntriesAndKeepsExisting) {
  SweepCache a;
  SweepCache b(1);  // merging works across different shard counts
  const Fingerprint shared = key_of(1, 1);
  a.store_cell(shared, cell_named("shared", 42));
  a.store_all_fine(key_of(2, 1), 1000);
  b.store_cell(shared, cell_named("shared", 42));  // identical payload
  b.store_cell(key_of(1, 2), cell_named("b_only", 7));
  b.store_all_fine(key_of(2, 2), 2000);
  b.store_mapper(key_of(3, 1), std::make_shared<const MapperState>());

  a.merge_from(b);
  EXPECT_EQ(a.stats().cells, 2u);
  EXPECT_TRUE(a.find_cell(shared).has_value());
  EXPECT_TRUE(a.find_cell(key_of(1, 2)).has_value());
  EXPECT_EQ(a.find_all_fine(key_of(2, 1)).value_or(0), 1000);
  EXPECT_EQ(a.find_all_fine(key_of(2, 2)).value_or(0), 2000);
  EXPECT_NE(a.find_mapper(key_of(3, 1)), nullptr);
  // b is untouched by the merge.
  EXPECT_EQ(b.stats().cells, 2u);
  EXPECT_FALSE(b.find_all_fine(key_of(2, 1)).has_value());
  // Self-merge is a no-op, not a deadlock.
  a.merge_from(a);
  EXPECT_EQ(a.stats().cells, 2u);
}

// The last-writer-wins regression: two caches with disjoint entries save
// to the same path one after the other. Before merge-on-save the second
// save clobbered the first; now the file must hold the union.
TEST(SweepCacheTest, MergeOnSavePreservesTheEarlierWritersEntries) {
  const std::string path = temp_path("sweep_cache_merge_on_save.jsonl");
  std::remove(path.c_str());
  {
    SweepCache first;
    first.store_cell(key_of(1, 1), cell_named("first", 1));
    first.store_all_fine(key_of(2, 1), 10);
    std::string error;
    ASSERT_TRUE(first.save(path, &error)) << error;
  }
  {
    SweepCache second;  // never saw the file: cold process, disjoint keys
    second.store_cell(key_of(1, 2), cell_named("second", 2));
    second.store_all_fine(key_of(2, 2), 20);
    std::string error;
    ASSERT_TRUE(second.save(path, &error)) << error;
  }
  SweepCache loaded;
  std::string error;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_EQ(loaded.stats().entries_loaded, 4u);
  EXPECT_TRUE(loaded.find_cell(key_of(1, 1)).has_value());
  EXPECT_TRUE(loaded.find_cell(key_of(1, 2)).has_value());
  EXPECT_TRUE(loaded.find_all_fine(key_of(2, 1)).has_value());
  EXPECT_TRUE(loaded.find_all_fine(key_of(2, 2)).has_value());
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// A corrupt target file must not poison a save: the strict-parse
// backstop discards it and the save simply overwrites.
TEST(SweepCacheTest, SaveOverwritesACorruptTargetFile) {
  const std::string path = temp_path("sweep_cache_corrupt_target.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a cache\n";
  }
  SweepCache cache;
  cache.store_cell(key_of(1, 1), cell_named("fresh", 1));
  std::string error;
  ASSERT_TRUE(cache.save(path, &error)) << error;
  SweepCache loaded;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_EQ(loaded.stats().entries_loaded, 1u);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

#ifndef _WIN32
// The multi-process acceptance property: several writer processes, each
// holding a disjoint slice of entries, save to one path concurrently.
// The advisory lock serializes the load-merge-write cycles, so the
// final file is the full union — zero entries lost.
TEST(SweepCacheTest, ConcurrentWriterProcessesLoseNoEntries) {
  const std::string path = temp_path("sweep_cache_concurrent.jsonl");
  std::remove(path.c_str());
  constexpr int kWriters = 4;
  constexpr std::uint64_t kEntriesEach = 25;

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      SweepCache mine;
      for (std::uint64_t i = 0; i < kEntriesEach; ++i) {
        const auto lo = static_cast<std::uint64_t>(w) * kEntriesEach + i;
        mine.store_cell(key_of(1, lo),
                        cell_named("w" + std::to_string(w),
                                   static_cast<std::int64_t>(lo)));
      }
      std::string error;
      // Repeated saves widen the race window the lock must close.
      const bool ok =
          mine.save(path, &error) && mine.save(path, &error);
      _exit(ok ? 0 : 1);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "writer exited with status " << status;
  }

  SweepCache loaded;
  std::string error;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_EQ(loaded.stats().entries_loaded, kWriters * kEntriesEach);
  for (std::uint64_t lo = 0; lo < kWriters * kEntriesEach; ++lo) {
    EXPECT_TRUE(loaded.find_cell(key_of(1, lo)).has_value()) << lo;
  }
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}
#endif  // !_WIN32

TEST(SweepCacheTest, CacheStatsJsonShape) {
  SweepCacheStats stats;
  stats.cell_hits = 3;
  stats.cell_misses = 1;
  stats.cells = 4;
  stats.lock_degraded = 2;
  stats.entries_evicted = 5;
  const std::string json = cache_stats_to_json(stats);
  EXPECT_NE(json.find("\"cell_hits\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cell_hit_rate\": \"0.75\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"lock_degraded\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"entries_evicted\": 5"), std::string::npos) << json;
  const std::string empty = cache_stats_to_json(SweepCacheStats{});
  EXPECT_NE(empty.find("\"cell_hit_rate\": \"0.00\""), std::string::npos)
      << empty;
}

// Mapper snapshots persist since schema v3: a FRESH process sweeping the
// same apps under DIFFERENT constraints misses every cell (the
// constraint is part of the cell fingerprint) yet restores every mapper
// from disk instead of rebuilding — the cross-constraint payoff that
// pure in-memory memoization could never deliver.
TEST(SweepCacheTest, PersistedMappersWarmAcrossConstraintChanges) {
  const auto corpus = workloads::paper_corpus();
  const std::string path = temp_path("sweep_cache_mapper_warm.jsonl");
  std::remove(path.c_str());
  {
    SweepCache cache;
    SweepSpec spec = small_spec(2, &cache);
    spec.constraints = {60000};
    sweep_design_space(corpus, spec);
    std::string error;
    ASSERT_TRUE(cache.save(path, &error)) << error;
  }
  SweepCache fresh;
  std::string error;
  ASSERT_TRUE(fresh.load(path, &error)) << error;
  fresh.reset_stats();
  SweepSpec spec = small_spec(2, &fresh);
  spec.constraints = {70000};  // new constraint: all cells miss
  sweep_design_space(corpus, spec);
  const SweepCacheStats stats = fresh.stats();
  EXPECT_GT(stats.cell_misses, 0u);
  EXPECT_EQ(stats.cell_hits, 0u);
  EXPECT_GT(stats.mapper_restores, 0u);
  EXPECT_EQ(stats.mapper_builds, 0u);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Eviction drops whole entries under the save lock when the rendered
// file exceeds the cap: oldest generation first, and within a
// generation mappers before all-fine memos before cells (cells are the
// most expensive to recompute). The survivor file must stay strictly
// loadable.
TEST(SweepCacheTest, SaveSizeCapEvictsOldestAndCheapestFirst) {
  const std::string path = temp_path("sweep_cache_evict.jsonl");
  std::remove(path.c_str());
  SweepCache cache;
  cache.store_cell(key_of(1, 1), cell_named("keep", 1));
  cache.store_all_fine(key_of(2, 1), 1000);
  cache.store_mapper(key_of(3, 1), std::make_shared<const MapperState>());
  std::string error;
  ASSERT_TRUE(cache.save(path, &error)) << error;  // default cap: everything fits
  EXPECT_EQ(cache.stats().entries_evicted, 0u);
  const std::uint64_t full_size = slurp(path).size();
  std::remove(path.c_str());

  // One byte under the full size: the mapper (same generation, lowest
  // retention rank) is the first and only victim.
  cache.set_save_size_cap(full_size - 1);
  ASSERT_TRUE(cache.save(path, &error)) << error;
  EXPECT_EQ(cache.stats().entries_evicted, 1u);
  SweepCache loaded;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_TRUE(loaded.find_cell(key_of(1, 1)).has_value());
  EXPECT_TRUE(loaded.find_all_fine(key_of(2, 1)).has_value());
  EXPECT_EQ(loaded.find_mapper(key_of(3, 1)), nullptr);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// Generation beats kind: entries loaded from disk and never touched in
// this run are older than entries stored this run, so under pressure
// the stale disk inventory goes first even when it holds cells and the
// new entries are mappers.
TEST(SweepCacheTest, SaveSizeCapEvictsStaleGenerationsBeforeFreshOnes) {
  const std::string path = temp_path("sweep_cache_evict_gen.jsonl");
  std::remove(path.c_str());
  std::string error;
  {
    SweepCache old_writer;
    old_writer.store_cell(key_of(1, 1), cell_named("stale", 1));
    ASSERT_TRUE(old_writer.save(path, &error)) << error;
  }
  SweepCache cache;
  ASSERT_TRUE(cache.load(path, &error)) << error;
  cache.store_cell(key_of(1, 2), cell_named("fresh", 2));
  // Room for roughly one cell: the untouched gen-1 disk entry loses to
  // the gen-2 entry stored this run.
  const std::uint64_t one_cell = slurp(path).size();
  cache.set_save_size_cap(one_cell + 8);
  ASSERT_TRUE(cache.save(path, &error)) << error;
  EXPECT_GT(cache.stats().entries_evicted, 0u);
  SweepCache loaded;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_TRUE(loaded.find_cell(key_of(1, 2)).has_value());
  EXPECT_FALSE(loaded.find_cell(key_of(1, 1)).has_value());
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// The merge/eviction interaction pin (see save()'s contract): union
// and eviction run inside ONE locked critical section, union first, so
// an entry the cap evicts cannot be resurrected by the merge that read
// it off disk moments earlier — reloading the file proves it stayed
// gone.
TEST(SweepCacheTest, MergeOnSaveNeverResurrectsEvictedEntries) {
  const std::string path = temp_path("sweep_cache_evict_merge.jsonl");
  std::remove(path.c_str());
  std::string error;
  {
    SweepCache first;
    first.store_cell(key_of(1, 1), cell_named("disk_a", 1));
    first.store_cell(key_of(1, 2), cell_named("disk_b", 2));
    ASSERT_TRUE(first.save(path, &error)) << error;
  }
  SweepCache second;  // cold process: merge-on-save unions with disk
  second.store_cell(key_of(1, 3), cell_named("mine", 3));
  {
    SweepCache probe;
    probe.store_cell(key_of(1, 3), cell_named("mine", 3));
    const std::string probe_path = temp_path("sweep_cache_evict_probe.jsonl");
    std::remove(probe_path.c_str());
    ASSERT_TRUE(probe.save(probe_path, &error)) << error;
    second.set_save_size_cap(slurp(probe_path).size() + 8);
    std::remove(probe_path.c_str());
    std::remove((probe_path + ".lock").c_str());
  }
  ASSERT_TRUE(second.save(path, &error)) << error;
  EXPECT_EQ(second.stats().entries_evicted, 2u);
  SweepCache loaded;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_TRUE(loaded.find_cell(key_of(1, 3)).has_value());
  EXPECT_FALSE(loaded.find_cell(key_of(1, 1)).has_value());
  EXPECT_FALSE(loaded.find_cell(key_of(1, 2)).has_value());
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

#ifndef _WIN32
// Forcing lock degradation deterministically: a DIRECTORY at the lock
// path makes open(O_RDWR|O_CREAT) fail with EISDIR for every process —
// including root, which CAP_DAC_OVERRIDE lets sail past chmod-based
// tricks.
void force_degraded_lock(const std::string& cache_path) {
  const std::string lock = cache_path + ".lock";
  std::remove(lock.c_str());  // stale regular lock file from a prior run
  rmdir(lock.c_str());
  ASSERT_EQ(mkdir(lock.c_str(), 0755), 0)
      << "cannot pre-create lock directory";
}

TEST(SweepCacheTest, DegradedLockIsCountedAndSaveStillSucceeds) {
  const std::string path = temp_path("sweep_cache_degraded.jsonl");
  std::remove(path.c_str());
  rmdir((path + ".lock").c_str());
  force_degraded_lock(path);
  SweepCache cache;
  cache.store_cell(key_of(1, 1), cell_named("unlocked", 1));
  std::string error;
  ASSERT_TRUE(cache.save(path, &error)) << error;
  EXPECT_EQ(cache.stats().lock_degraded, 1u);
  SweepCache loaded;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_TRUE(loaded.find_cell(key_of(1, 1)).has_value());
  std::remove(path.c_str());
  rmdir((path + ".lock").c_str());
}

// The headline regression of this change: with the lock DEGRADED, two
// processes save the same path concurrently. The old fixed temp name
// (`path + ".tmp"`) let both write one temp file and rename interleaved
// garbage into place; unique per-process temp names make every rename
// atomic-whole-file. Contract under degradation: entries may be lost
// (documented), the file must NEVER be unloadable. 100 iterations per
// writer, every parse strict.
TEST(SweepCacheTest, DegradedLockConcurrentSaversNeverCorruptTheFile) {
  const std::string path = temp_path("sweep_cache_degraded_race.jsonl");
  std::remove(path.c_str());
  rmdir((path + ".lock").c_str());
  force_degraded_lock(path);
  constexpr int kWriters = 2;
  constexpr int kIterations = 100;

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      for (int i = 0; i < kIterations; ++i) {
        SweepCache mine;
        mine.store_cell(
            key_of(static_cast<std::uint64_t>(w) + 1,
                   static_cast<std::uint64_t>(i)),
            cell_named("w" + std::to_string(w), i));
        std::string error;
        if (!mine.save(path, &error)) _exit(1);
      }
      _exit(0);
    }
    children.push_back(pid);
  }

  // Hammer loads while the writers race; rename atomicity means every
  // observed file state must parse. A not-yet-created file is the only
  // tolerated failure.
  int corrupt_loads = 0;
  int successful_loads = 0;
  while (true) {
    SweepCache reader;
    std::string error;
    if (reader.load(path, &error)) {
      ++successful_loads;
    } else if (error.find("cannot open") == std::string::npos) {
      ++corrupt_loads;
      ADD_FAILURE() << "corrupt intermediate cache: " << error;
    }
    int live = 0;
    for (pid_t& pid : children) {
      if (pid == -1) continue;
      int status = 0;
      const pid_t done = waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "writer exited with status " << status;
        pid = -1;
      } else {
        ++live;
      }
    }
    if (live == 0) break;
  }
  EXPECT_EQ(corrupt_loads, 0);
  EXPECT_GT(successful_loads, 0);

  // The final file parses too, and holds at least each writer's last
  // iteration (its own save is the last thing each process did).
  SweepCache loaded;
  std::string error;
  ASSERT_TRUE(loaded.load(path, &error)) << error;
  EXPECT_GT(loaded.stats().entries_loaded, 0u);
  std::remove(path.c_str());
  rmdir((path + ".lock").c_str());
}

// With the lock HELD, save sweeps leftover temp files of crashed
// writers (same directory, `<base>.tmp.` prefix) so they cannot pile
// up forever.
TEST(SweepCacheTest, SaveSweepsStaleTempFilesUnderTheLock) {
  const std::string path = temp_path("sweep_cache_stale_tmp.jsonl");
  std::remove(path.c_str());
  rmdir((path + ".lock").c_str());
  const std::string stale = path + ".tmp.99999.7";
  {
    std::ofstream out(stale, std::ios::binary);
    out << "crashed writer leftovers\n";
  }
  ASSERT_TRUE(std::ifstream(stale).good());
  SweepCache cache;
  cache.store_cell(key_of(1, 1), cell_named("x", 1));
  std::string error;
  ASSERT_TRUE(cache.save(path, &error)) << error;
  EXPECT_FALSE(std::ifstream(stale).good()) << "stale temp survived save";
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}
#endif  // !_WIN32

}  // namespace
}  // namespace amdrel::core
