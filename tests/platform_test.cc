#include "platform/platform.h"

#include <gtest/gtest.h>

#include "coarsegrain/cgc_scheduler.h"
#include "core/hybrid_mapper.h"
#include "support/error.h"
#include "workloads/paper_models.h"

namespace amdrel::platform {
namespace {

TEST(FpgaModelTest, FromDeviceAreaAppliesRoutabilityFraction) {
  const FpgaModel model = FpgaModel::from_device_area(10000.0);
  EXPECT_DOUBLE_EQ(model.usable_area, 7000.0);  // the paper's 70% guidance
  const FpgaModel custom = FpgaModel::from_device_area(10000.0, 0.5);
  EXPECT_DOUBLE_EQ(custom.usable_area, 5000.0);
}

TEST(FpgaModelTest, AreaAndDelayFollowOpClass) {
  const FpgaModel model;
  EXPECT_DOUBLE_EQ(model.area(ir::OpKind::kAdd), model.area_alu);
  EXPECT_DOUBLE_EQ(model.area(ir::OpKind::kCmpLt), model.area_alu);
  EXPECT_DOUBLE_EQ(model.area(ir::OpKind::kMul), model.area_mul);
  EXPECT_DOUBLE_EQ(model.area(ir::OpKind::kLoad), model.area_mem);
  EXPECT_DOUBLE_EQ(model.area(ir::OpKind::kConst), 0.0);
  EXPECT_EQ(model.delay_cycles(ir::OpKind::kStore), model.delay_mem);
  EXPECT_EQ(model.delay_cycles(ir::OpKind::kInput), 0);
}

TEST(CgcModelTest, SupportsComputesButNotDivision) {
  const CgcModel cgc;
  EXPECT_TRUE(cgc.supports(ir::OpKind::kAdd));
  EXPECT_TRUE(cgc.supports(ir::OpKind::kMul));
  EXPECT_TRUE(cgc.supports(ir::OpKind::kLoad));
  EXPECT_FALSE(cgc.supports(ir::OpKind::kDiv));
  EXPECT_FALSE(cgc.supports(ir::OpKind::kMod));
  CgcModel no_ports = cgc;
  no_ports.mem_ports = 0;
  EXPECT_FALSE(no_ports.supports(ir::OpKind::kLoad));
}

TEST(CgcModelTest, SlotsPerCycle) {
  CgcModel cgc;
  cgc.count = 3;
  cgc.rows = 2;
  cgc.cols = 4;
  EXPECT_EQ(cgc.slots_per_cycle(), 24);
}

TEST(PlatformTest, CgcToFpgaCyclesRoundsUp) {
  const Platform p = make_paper_platform(1500, 2);
  EXPECT_EQ(p.cgc_to_fpga_cycles(0), 0);
  EXPECT_EQ(p.cgc_to_fpga_cycles(1), 1);
  EXPECT_EQ(p.cgc_to_fpga_cycles(3), 1);
  EXPECT_EQ(p.cgc_to_fpga_cycles(4), 2);
  EXPECT_EQ(p.cgc_to_fpga_cycles(7), 3);
}

TEST(PlatformTest, PaperPresetMatchesPaperGrid) {
  const Platform p = make_paper_platform(5000, 3);
  EXPECT_DOUBLE_EQ(p.fpga.usable_area, 5000.0);
  EXPECT_EQ(p.cgc.count, 3);
  EXPECT_EQ(p.cgc.rows, 2);
  EXPECT_EQ(p.cgc.cols, 2);
  EXPECT_EQ(p.cgc.fpga_clock_ratio, 3);
}

// validate_platform guards every consumer entry point: a Platform with
// cgc.fpga_clock_ratio == 0 used to flow silently into
// cgc_to_fpga_cycles' division. All malformed shapes must fail loudly at
// construction/pricing, never inside the arithmetic.
TEST(PlatformValidationTest, RejectsZeroClockRatio) {
  Platform p = make_paper_platform(1500, 2);
  p.cgc.fpga_clock_ratio = 0;
  EXPECT_THROW(validate_platform(p), Error);
  EXPECT_THROW(platform_cost(p), Error);
}

TEST(PlatformValidationTest, RejectsMalformedShapes) {
  {
    Platform p = make_paper_platform(1500, 2);
    p.cgc.count = 0;
    EXPECT_THROW(platform_cost(p), Error);
  }
  {
    Platform p = make_paper_platform(1500, 2);
    p.cgc.rows = 0;
    EXPECT_THROW(platform_cost(p), Error);
  }
  {
    Platform p = make_paper_platform(1500, 2);
    p.cgc.mem_ports = -1;
    EXPECT_THROW(platform_cost(p), Error);
  }
  {
    Platform p = make_paper_platform(1500, 2);
    p.fpga.usable_area = 0;
    EXPECT_THROW(platform_cost(p), Error);
  }
  {
    Platform p = make_paper_platform(1500, 2);
    p.memory.transfer_cycles_per_word = -1;
    EXPECT_THROW(platform_cost(p), Error);
  }
  EXPECT_THROW(make_paper_platform(-100, 2), Error);
  EXPECT_THROW(make_paper_platform(1500, 0), Error);
}

TEST(PlatformValidationTest, HybridMapperRejectsMalformedPlatforms) {
  const auto app = workloads::build_ofdm_model();
  Platform p = make_paper_platform(1500, 2);
  p.cgc.fpga_clock_ratio = 0;
  EXPECT_THROW(core::HybridMapper(app.cdfg, p), Error);
}

TEST(ChainingAblationTest, DisablingChainingSlowsDependentOps) {
  ir::Dfg dfg;
  const auto a = dfg.add_node(ir::OpKind::kInput, {}, "a");
  const auto m = dfg.add_node(ir::OpKind::kMul, {a, a});
  const auto s = dfg.add_node(ir::OpKind::kAdd, {m, a});
  dfg.add_node(ir::OpKind::kOutput, {s});

  CgcModel with;
  CgcModel without = with;
  without.enable_chaining = false;
  EXPECT_EQ(coarsegrain::schedule_dfg_on_cgc(dfg, with).total_cgc_cycles, 1);
  EXPECT_EQ(coarsegrain::schedule_dfg_on_cgc(dfg, without).total_cgc_cycles,
            2);
}

}  // namespace
}  // namespace amdrel::platform
