// Transport fault tolerance (core/transport.h + serve_design_space):
// a dead worker — mid-stream EOF, SIGKILL, idle hang — must cost only a
// bounded retry of its unfinished shards, never a byte of the merged
// summary; protocol violations and exhausted retry budgets must fail
// loudly. Plus the TCP transport end-to-end over loopback, in-process.

#include "core/transport.h"

#ifndef _WIN32
#include <unistd.h>
#endif

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/sweep_io.h"
#include "core/sweep_service.h"
#include "support/error.h"
#include "support/net.h"
#include "workloads/paper_models.h"

namespace amdrel::core {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2};
  spec.strategies = {StrategyKind::kGreedyPaper, StrategyKind::kAnnealing};
  spec.orderings = {KernelOrdering::kWeightDescending};
  spec.threads = 1;
  return spec;
}

TEST(TransportTest, PartitionShardsWithMoreWorkersThanShards) {
  // Workers beyond the shard count get empty (but present) slots: the
  // coordinator simply has nothing to hand them.
  const auto split = partition_shards(2, 5);
  ASSERT_EQ(split.size(), 5u);
  EXPECT_EQ(split[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(split[1], (std::vector<std::size_t>{1}));
  EXPECT_TRUE(split[2].empty());
  EXPECT_TRUE(split[3].empty());
  EXPECT_TRUE(split[4].empty());
}

TEST(TransportTest, PartitionShardsWithZeroShards) {
  const auto split = partition_shards(0, 3);
  ASSERT_EQ(split.size(), 3u);
  for (const auto& slot : split) EXPECT_TRUE(slot.empty());
}

#ifndef _WIN32

// Shared scaffolding for the fork-transport fault tests: the expected
// single-process summary, one pre-rendered full wire stream per shard,
// and a per-shard spawn counter so a command function can misbehave on
// the first attempt only.
class ForkFaultTest : public testing::Test {
 protected:
  void SetUp() override {
    corpus_ = workloads::paper_corpus();
    spec_ = small_spec();
    expected_json_ = sweep_to_json(sweep_design_space(corpus_, spec_));
    shards_ = sweep_shard_count(corpus_, spec_);
    // Paths carry the pid: ctest runs each TEST_F as its own process,
    // concurrently, and a shared name would let one test's TearDown
    // delete the streams another test's workers are still cat-ing.
    const std::string dir = testing::TempDir();
    const std::string tag = std::to_string(::getpid());
    for (std::size_t s = 0; s < shards_; ++s) {
      std::ostringstream os;
      run_sweep_worker(corpus_, spec_, {s}, os);
      streams_.push_back(os.str());
      const std::string path = dir + "transport_stream_" + tag + "_" +
                               std::to_string(s) + ".ndjson";
      std::ofstream(path, std::ios::binary) << streams_.back();
      paths_.push_back(path);
    }
  }

  void TearDown() override {
    for (const std::string& path : paths_) std::remove(path.c_str());
  }

  /// One worker per shard whose first attempt at `broken_shard` runs
  /// `first_attempt` (a shell snippet; the stream file path is $0's
  /// argument, spliced in by the caller) and whose every other
  /// invocation faithfully cats the pre-rendered stream.
  ForkPipeTransport faulty_transport(std::size_t broken_shard,
                                     const std::string& first_attempt) {
    return ForkPipeTransport(
        [this, broken_shard, first_attempt](
            const std::vector<std::size_t>& assigned) {
          EXPECT_EQ(assigned.size(), 1u);
          const std::size_t shard = assigned[0];
          const int attempt = ++attempts_[shard];
          if (shard == broken_shard && attempt == 1) {
            return std::vector<std::string>{"/bin/sh", "-c", first_attempt};
          }
          return std::vector<std::string>{"/bin/cat", paths_[shard]};
        });
  }

  SweepSummary serve_with(Transport& transport, int idle_timeout_ms = 0) {
    ServeOptions options;
    options.workers = static_cast<int>(shards_);
    options.transport = &transport;
    options.idle_timeout_ms = idle_timeout_ms;
    return serve_design_space(corpus_, spec_, options);
  }

  std::vector<CorpusApp> corpus_;
  SweepSpec spec_;
  std::string expected_json_;
  std::size_t shards_ = 0;
  std::vector<std::string> streams_;
  std::vector<std::string> paths_;
  std::map<std::size_t, int> attempts_;
};

TEST_F(ForkFaultTest, RecoversFromMidStreamEof) {
  // First attempt truncates after the header and shard line — a clean
  // EOF mid-round, as if the worker host vanished between writes.
  ForkPipeTransport transport =
      faulty_transport(1, "head -n 2 '" + paths_[1] + "'");
  const SweepSummary summary = serve_with(transport);
  EXPECT_EQ(sweep_to_json(summary), expected_json_);
  EXPECT_EQ(attempts_[1], 2);
}

TEST_F(ForkFaultTest, RecoversFromKilledWorker) {
  ForkPipeTransport transport = faulty_transport(2, "kill -9 $$");
  const SweepSummary summary = serve_with(transport);
  EXPECT_EQ(sweep_to_json(summary), expected_json_);
  EXPECT_EQ(attempts_[2], 2);
}

TEST_F(ForkFaultTest, RecoversFromIdleTimeout) {
  // The hung worker writes nothing; the 200ms idle timeout must declare
  // it dead (and SIGKILL it — no 30s test stall) and retry its shard.
  ForkPipeTransport transport = faulty_transport(0, "sleep 30");
  const SweepSummary summary = serve_with(transport, /*idle_timeout_ms=*/200);
  EXPECT_EQ(sweep_to_json(summary), expected_json_);
  EXPECT_EQ(attempts_[0], 2);
}

TEST_F(ForkFaultTest, FailsLoudlyWhenRetriesAreExhausted) {
  ForkPipeTransport transport([this](const std::vector<std::size_t>& a) {
    ++attempts_[a[0]];
    return std::vector<std::string>{"/bin/sh", "-c", "exit 3"};
  });
  ServeOptions options;
  options.workers = static_cast<int>(shards_);
  options.transport = &transport;
  options.max_shard_retries = 1;
  try {
    serve_design_space(corpus_, spec_, options);
    FAIL() << "expected Error after retry budget exhaustion";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("giving up"), std::string::npos)
        << e.what();
  }
}

TEST_F(ForkFaultTest, ProtocolViolationIsNotRetried) {
  // The worker assigned shard 1 replays shard 0's stream: an unassigned
  // shard is a PROTOCOL violation — wrong bytes, not a dead peer — and
  // must fail the run immediately instead of burning retries.
  ForkPipeTransport transport(
      [this](const std::vector<std::size_t>& assigned) {
        ++attempts_[assigned[0]];
        return std::vector<std::string>{
            "/bin/cat", paths_[assigned[0] == 1 ? 0 : assigned[0]]};
      });
  ServeOptions options;
  options.workers = static_cast<int>(shards_);
  options.transport = &transport;
  EXPECT_THROW(serve_design_space(corpus_, spec_, options), Error);
  EXPECT_EQ(attempts_[1], 1);
}

TEST_F(ForkFaultTest, DuplicateShardReplayFailsLoudly) {
  // A stream delivering its shard twice (e.g. a confused retry wrapper
  // replaying a whole round) must be rejected, not double-merged.
  const std::string& stream = streams_[1];
  const std::size_t body_begin = stream.find('\n') + 1;  // after header
  const std::size_t done = stream.find("{\"kind\":\"worker_done\"");
  ASSERT_NE(done, std::string::npos);
  const std::string body = stream.substr(body_begin, done - body_begin);
  const std::string doctored =
      stream.substr(0, done) + body + stream.substr(done);
  const std::string path = testing::TempDir() + "transport_dup_" +
                           std::to_string(::getpid()) + ".ndjson";
  std::ofstream(path, std::ios::binary) << doctored;

  ForkPipeTransport transport(
      [this, &path](const std::vector<std::size_t>& assigned) {
        return std::vector<std::string>{
            "/bin/cat", assigned[0] == 1 ? path : paths_[assigned[0]]};
      });
  ServeOptions options;
  options.workers = static_cast<int>(shards_);
  options.transport = &transport;
  EXPECT_THROW(serve_design_space(corpus_, spec_, options), Error);
  std::remove(path.c_str());
}

TEST_F(ForkFaultTest, StreamsPartialShardsExactlyOnce) {
  ForkPipeTransport transport(
      [this](const std::vector<std::size_t>& assigned) {
        return std::vector<std::string>{"/bin/cat", paths_[assigned[0]]};
      });
  std::map<std::size_t, std::size_t> completed;  // shard -> used
  std::size_t streamed_cells = 0;
  ServeOptions options;
  options.workers = static_cast<int>(shards_);
  options.transport = &transport;
  options.on_shard_complete = [&](std::size_t shard, const SweepCell* cells,
                                  std::size_t used) {
    ASSERT_NE(cells, nullptr);
    EXPECT_EQ(completed.count(shard), 0u) << "shard streamed twice";
    completed[shard] = used;
    streamed_cells += used;
  };
  const SweepSummary summary = serve_design_space(corpus_, spec_, options);
  EXPECT_EQ(sweep_to_json(summary), expected_json_);
  EXPECT_EQ(completed.size(), shards_);
  EXPECT_EQ(streamed_cells, summary.cells.size());
}

// ---------------------------------------------------------------------------
// TCP transport, end-to-end over loopback: in-process worker threads
// speaking the dynamic protocol through real sockets.

void run_tcp_worker(const std::vector<CorpusApp>& corpus,
                    const SweepSpec& spec, int port) {
  try {
    support::net::Socket conn =
        support::net::connect_tcp("127.0.0.1", port, /*timeout_ms=*/10000);
    support::net::FdIoStream stream(conn.fd());
    run_sweep_worker_connected(corpus, spec, stream, stream);
  } catch (const Error&) {
    // A worker the coordinator hung up on (e.g. after the sweep ended)
    // reports Error; the test asserts on the merged summary instead.
  }
}

TEST(TransportTest, TcpServeIsByteIdenticalToSingleProcess) {
  const auto corpus = workloads::paper_corpus();
  const SweepSpec spec = small_spec();
  const std::string expected = sweep_to_json(sweep_design_space(corpus, spec));

  TcpTransport transport(support::net::listen_tcp("127.0.0.1", 0));
  const int port = transport.port();
  std::vector<std::thread> workers;
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back(run_tcp_worker, std::cref(corpus), std::cref(spec),
                         port);
  }
  ServeOptions options;
  options.workers = 2;
  options.transport = &transport;
  const SweepSummary summary = serve_design_space(corpus, spec, options);
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(sweep_to_json(summary), expected);
}

TEST(TransportTest, TcpServeRetriesAfterDeadDialIn) {
  const auto corpus = workloads::paper_corpus();
  const SweepSpec spec = small_spec();
  const std::string expected = sweep_to_json(sweep_design_space(corpus, spec));

  TcpTransport transport(support::net::listen_tcp("127.0.0.1", 0));
  const int port = transport.port();
  {
    // A connection that dies before saying anything: accepted first
    // (FIFO backlog), it EOFs instantly and its whole round is retried
    // on the next dial-in.
    support::net::Socket dead =
        support::net::connect_tcp("127.0.0.1", port, /*timeout_ms=*/10000);
  }
  std::thread worker(run_tcp_worker, std::cref(corpus), std::cref(spec),
                     port);
  ServeOptions options;
  options.workers = 1;  // the dead dial-in takes the one slot first
  options.transport = &transport;
  const SweepSummary summary = serve_design_space(corpus, spec, options);
  worker.join();
  EXPECT_EQ(sweep_to_json(summary), expected);
}

#endif  // !_WIN32

}  // namespace
}  // namespace amdrel::core
