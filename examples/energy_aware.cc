// Energy-constrained partitioning (the paper's stated future work): move
// kernels to the ASIC CGC data-path until the application's energy drops
// under a budget, and inspect the breakdown. The energy variant now runs
// on the shared strategy engine, so the same budget can also be searched
// by branch-and-bound or simulated annealing — compared at the bottom.

#include <cstdio>

#include "core/energy.h"
#include "core/report.h"
#include "core/strategy.h"
#include "workloads/paper_models.h"

using namespace amdrel;

namespace {

void print_breakdown(const char* label, const core::EnergyBreakdown& e) {
  std::printf("%-28s fine %10.1f nJ | coarse %8.1f nJ | reconfig %8.1f nJ "
              "| comm %8.1f nJ | total %10.1f nJ\n",
              label, e.fine_pj / 1000.0, e.coarse_pj / 1000.0,
              e.reconfig_pj / 1000.0, e.comm_pj / 1000.0,
              e.total_pj() / 1000.0);
}

}  // namespace

int main() {
  const workloads::PaperApp app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);

  const auto all_fine = core::estimate_energy(app.cdfg, app.profile, p, {});
  print_breakdown("all fine-grain:", all_fine);

  const auto hot_moved = core::estimate_energy(
      app.cdfg, app.profile, p, {app.block_by_label("BB22")});
  print_breakdown("BB22 on CGC data-path:", hot_moved);

  // Ask the energy engine for a 50% cut.
  const double budget = all_fine.total_pj() * 0.5;
  const auto report =
      core::run_energy_methodology(app.cdfg, app.profile, p, budget);
  std::printf("\nenergy budget %.1f nJ (50%% of all-fine): %s after moving",
              budget / 1000.0, report.met ? "met" : "NOT met");
  for (const ir::BlockId block : report.moved) {
    std::printf(" %s", app.cdfg.block(block).name.c_str());
  }
  std::printf("\n");
  print_breakdown("after energy partitioning:", report.energy);
  std::printf("energy reduction: %.1f%%\n", report.reduction_percent());

  // The same budget through every strategy of the shared engine: the
  // branch-and-bound proves the fewest-moves split, annealing matches
  // greedy on a kernel set this small.
  std::printf("\nstrategy comparison at a %.1f nJ budget:\n",
              budget / 1000.0);
  bool all_met = true;
  for (const core::StrategyKind kind : core::all_strategies()) {
    core::MethodologyOptions options;
    options.strategy = kind;
    options.exhaustive_max_kernels = 12;
    const auto result = core::run_energy_methodology(
        app.cdfg, app.profile, p, budget, core::EnergyModel{}, options);
    std::printf("  %-10s %s, %zu kernel(s) moved, %10.1f nJ\n",
                core::strategy_name(kind),
                result.met ? "met    " : "NOT met",
                result.moved.size(), result.energy.total_pj() / 1000.0);
    all_met = all_met && result.met;
  }
  return report.met && all_met ? 0 : 1;
}
