// Full-pipeline example on the real JPEG encoder workload: compile the
// MiniC encoder, profile it on a synthetic image, verify against the
// golden reference, then partition for a timing constraint.
//
// Pass a size on the command line (e.g. "jpeg_partition 128") to encode a
// larger image; the default keeps the demo fast. The paper profiles a
// 256x256 image.

#include <cstdio>
#include <cstdlib>

#include "core/methodology.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "workloads/golden.h"
#include "workloads/minic_sources.h"

using namespace amdrel;

int main(int argc, char** argv) {
  int size = 64;
  if (argc > 1) size = std::atoi(argv[1]);
  if (size < 8 || size % 8 != 0) {
    std::fprintf(stderr, "size must be a positive multiple of 8\n");
    return 2;
  }

  const ir::TacProgram tac =
      minic::compile(workloads::jpeg_source(size, size), "jpeg_enc");
  std::printf("compiled JPEG encoder (%dx%d): %zu basic blocks\n", size,
              size, tac.blocks.size());

  interp::Interpreter interp(tac);
  const auto image =
      workloads::random_pixels(static_cast<std::size_t>(size) * size, 7);
  interp.set_input("image", image);
  const auto run = interp.run(2'000'000'000ULL);
  const auto golden = workloads::golden_jpeg(image, size, size);
  std::printf("entropy bit cost: %d (golden %d); %llu instructions\n",
              run.return_value, golden.bit_cost,
              static_cast<unsigned long long>(run.instructions_executed));
  if (run.return_value != golden.bit_cost) {
    std::fprintf(stderr, "MISMATCH against golden reference!\n");
    return 1;
  }

  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper probe(cdfg, p);
  const std::int64_t all_fine = probe.all_fine_cycles(run.profile);
  const std::int64_t constraint = all_fine / 2;

  const auto report = core::run_methodology(cdfg, run.profile, p, constraint);
  std::printf("\n%s\n", core::describe(report, cdfg).c_str());

  // Frame pipelining (paper section 3): one 8x8 block row = one frame.
  const auto pipeline = core::estimate_pipeline(report, size / 8);
  std::printf("pipelined over %d block-row frames: %s -> %s cycles "
              "(%.2fx, fine %.0f%% / coarse %.0f%% utilized)\n",
              pipeline.frames,
              core::with_thousands(pipeline.sequential_cycles).c_str(),
              core::with_thousands(pipeline.pipelined_cycles).c_str(),
              pipeline.speedup(), 100.0 * pipeline.fine_utilization(),
              100.0 * pipeline.coarse_utilization());
  return 0;
}
