// Full-pipeline example on the real OFDM transmitter workload:
//   MiniC source -> front-end (lex/parse/sema/inline/lower) -> interpreter
//   (dynamic analysis on random payload bits) -> CDFG -> partitioning
//   methodology across the paper's platform grid.
//
// This mirrors the paper's flow end to end: the application is actual
// code, the profile comes from executing it, and the engine decides which
// loop kernels move to the CGC data-path.

#include <cstdio>

#include "core/methodology.h"
#include "core/report.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "minic/frontend.h"
#include "workloads/golden.h"
#include "workloads/minic_sources.h"

using namespace amdrel;

int main() {
  const int symbols = 6;  // the paper profiles 6 payload symbols

  // 1. Compile the application.
  const ir::TacProgram tac =
      minic::compile(workloads::ofdm_source(symbols), "ofdm_tx");
  std::printf("compiled OFDM transmitter: %zu basic blocks, %d registers, "
              "%zu arrays\n",
              tac.blocks.size(), tac.num_regs, tac.arrays.size());

  // 2. Dynamic analysis: execute on representative input.
  interp::Interpreter interp(tac);
  const auto bits = workloads::random_bits(symbols * 96, 2024);
  interp.set_input("bits", bits);
  const auto run = interp.run();
  const auto golden = workloads::golden_ofdm(bits, symbols);
  std::printf("interpreted %llu instructions; checksum %d (golden %d)\n",
              static_cast<unsigned long long>(run.instructions_executed),
              run.return_value, golden.checksum);

  // 3. CDFG + static analysis.
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  const auto kernels = analysis::extract_kernels(cdfg, run.profile);
  std::printf("\nanalysis found %zu loop kernels; top 5 by total weight:\n",
              kernels.size());
  core::TextTable table({"block", "exec freq", "op weight", "total weight"});
  for (std::size_t i = 0; i < kernels.size() && i < 5; ++i) {
    table.add_row({cdfg.block(kernels[i].block).name,
                   std::to_string(kernels[i].exec_freq),
                   std::to_string(kernels[i].op_weight),
                   core::with_thousands(kernels[i].total_weight)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // 4. Partition for a timing constraint over the paper's platform grid.
  for (const double area : {1500.0, 5000.0}) {
    for (const int cgcs : {2, 3}) {
      const auto p = platform::make_paper_platform(area, cgcs);
      core::HybridMapper probe(cdfg, p);
      const std::int64_t all_fine = probe.all_fine_cycles(run.profile);
      const std::int64_t constraint = all_fine / 3;  // demand a 3x speedup
      const auto report =
          core::run_methodology(cdfg, run.profile, p, constraint);
      std::printf("A_FPGA=%.0f, %d CGCs: %s -> %s cycles (%.1f%% reduction, "
                  "constraint %s: %s, %zu kernels moved)\n",
                  area, cgcs,
                  core::with_thousands(report.initial_cycles).c_str(),
                  core::with_thousands(report.final_cycles).c_str(),
                  report.reduction_percent(),
                  core::with_thousands(constraint).c_str(),
                  report.met ? "met" : "NOT met", report.moved.size());
    }
  }
  return 0;
}
