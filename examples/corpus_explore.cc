// Platform-grid x corpus exploration: the "serve many users" path. Both
// paper applications plus a synthetic workload are swept across a grid of
// platform instances (A_FPGA x CGC count) on a thread pool, then the
// per-app and merged global Pareto fronts over (final cycles, kernels
// moved, platform cost) say which platform to build — and the whole sweep
// is emitted as stable-schema JSON for diffing and plotting.

#include <cstdio>

#include "core/explorer.h"
#include "core/sweep_io.h"
#include "synth/cdfg_generator.h"
#include "workloads/paper_models.h"

using namespace amdrel;

int main() {
  std::vector<core::CorpusApp> corpus = workloads::paper_corpus();
  synth::CdfgGenConfig config;
  config.segments = 5;
  config.seed = 21;
  synth::SyntheticApp synthetic = synth::generate_app(config);
  core::CorpusApp extra;
  extra.name = "synthetic";
  extra.cdfg = std::move(synthetic.cdfg);
  extra.profile = std::move(synthetic.profile);
  corpus.push_back(std::move(extra));

  // The paper's experiment grid plus a smaller device, every strategy,
  // default constraints (1/4, 1/2, 3/4 of each cell's all-fine cycles).
  core::SweepSpec spec;
  spec.grid.areas = {800, 1500, 5000};
  spec.grid.cgc_counts = {2, 3};
  spec.orderings = {core::KernelOrdering::kWeightDescending,
                    core::KernelOrdering::kBenefitDescending};
  spec.base.exhaustive_max_kernels = 12;
  spec.threads = 4;

  const core::SweepSummary summary = core::sweep_design_space(corpus, spec);
  std::printf("corpus sweep: %zu apps x %zu platforms = %zu cells\n\n",
              summary.apps.size(), spec.grid.size(), summary.cells.size());
  std::printf("%s\n", core::describe(summary).c_str());

  for (std::size_t app = 0; app < summary.apps.size(); ++app) {
    std::printf("%s: %zu cells on its pareto front\n",
                summary.apps[app].c_str(), summary.app_pareto[app].size());
  }
  std::printf("merged global front: %zu cells\n\n",
              summary.global_pareto.size());

  const std::string json = core::sweep_to_json(summary);
  const std::string csv = core::sweep_to_csv(summary);
  std::printf("machine-readable emissions: %zu bytes JSON (schema v%d), "
              "%zu bytes CSV\n",
              json.size(), core::kSweepSchemaVersion, csv.size());
  return 0;
}
