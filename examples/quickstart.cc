// Quickstart: build a small application CDFG by hand, characterize a
// hybrid platform, and run the partitioning methodology end to end.
//
// The application is a toy FIR-filter-like loop: one hot basic block
// (multiply-accumulate taps) executed once per sample, plus setup code.

#include <cstdio>

#include "core/methodology.h"
#include "core/report.h"
#include "platform/platform.h"

using namespace amdrel;

int main() {
  // --- 1. Describe the application as a CDFG. -------------------------
  ir::Cdfg cdfg("fir_demo");
  const ir::BlockId entry = cdfg.add_block("setup");
  const ir::BlockId taps = cdfg.add_block("taps");
  const ir::BlockId exit = cdfg.add_block("exit");
  cdfg.add_edge(entry, taps);
  cdfg.add_edge(taps, taps);  // the hot loop
  cdfg.add_edge(taps, exit);

  {  // setup: a couple of address computations
    ir::Dfg& dfg = cdfg.block(entry).dfg;
    const auto base = dfg.add_node(ir::OpKind::kInput, {}, "base");
    const auto four = dfg.add_const(4);
    const auto addr = dfg.add_node(ir::OpKind::kAdd, {base, four}, "addr");
    dfg.add_node(ir::OpKind::kOutput, {addr});
  }
  {  // taps: an 8-tap multiply-accumulate over the sample window
    ir::Dfg& dfg = cdfg.block(taps).dfg;
    const auto addr = dfg.add_node(ir::OpKind::kInput, {}, "addr");
    const auto coef_base = dfg.add_node(ir::OpKind::kInput, {}, "coef");
    ir::NodeId acc = dfg.add_const(0, "acc0");
    for (int tap = 0; tap < 8; ++tap) {
      const auto offset = dfg.add_const(tap);
      const auto sample_addr = dfg.add_node(ir::OpKind::kAdd, {addr, offset});
      const auto sample = dfg.add_node(ir::OpKind::kLoad, {sample_addr});
      const auto coef_addr =
          dfg.add_node(ir::OpKind::kAdd, {coef_base, offset});
      const auto coef = dfg.add_node(ir::OpKind::kLoad, {coef_addr});
      const auto prod = dfg.add_node(ir::OpKind::kMul, {sample, coef});
      acc = dfg.add_node(ir::OpKind::kAdd, {acc, prod}, "acc");
    }
    const auto out_addr = dfg.add_node(ir::OpKind::kInput, {}, "out");
    dfg.add_node(ir::OpKind::kStore, {out_addr, acc});
    dfg.add_node(ir::OpKind::kOutput, {acc});
  }
  cdfg.analyze_loops();

  // --- 2. Supply the dynamic profile (here: 4096 samples). -------------
  ir::ProfileData profile;
  profile.set_count(entry, 1);
  profile.set_count(taps, 4096);
  profile.set_count(exit, 1);

  // --- 3. Characterize the platform and pick a timing constraint. ------
  const platform::Platform p = platform::make_paper_platform(
      /*a_fpga=*/1500, /*cgc_count=*/2);
  const std::int64_t constraint = 160000;

  // --- 4. Run the methodology. -----------------------------------------
  const core::PartitionReport report =
      core::run_methodology(cdfg, profile, p, constraint);

  std::printf("%s\n", core::describe(report, cdfg).c_str());
  return report.met ? 0 : 1;
}
