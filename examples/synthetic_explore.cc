// Design-space exploration on synthetic applications: sweeps the FPGA
// area and the CGC data-path size over randomly generated loop-nest
// CDFGs, then runs the multi-threaded DesignSpaceExplorer over the
// constraint x strategy x ordering grid — the experiments to run before
// committing to a platform configuration.

#include <cstdio>

#include "core/baselines.h"
#include "core/explorer.h"
#include "core/methodology.h"
#include "core/report.h"
#include "synth/cdfg_generator.h"

using namespace amdrel;

int main() {
  synth::CdfgGenConfig config;
  config.segments = 5;
  config.max_loop_depth = 2;
  config.min_trip = 16;
  config.max_trip = 128;
  config.seed = 7;
  const synth::SyntheticApp app = synth::generate_app(config);
  std::printf("synthetic app: %d blocks, %llu total block executions\n",
              app.cdfg.size(),
              static_cast<unsigned long long>(app.profile.total()));

  // Area sweep at two data-path sizes.
  core::TextTable table({"A_FPGA", "initial", "2 CGCs final", "2 CGCs red%",
                         "3 CGCs final", "3 CGCs red%"});
  for (const double area : {800.0, 1500.0, 3000.0, 5000.0, 8000.0}) {
    std::vector<std::string> row = {std::to_string(static_cast<int>(area))};
    std::string initial;
    for (const int cgcs : {2, 3}) {
      const auto p = platform::make_paper_platform(area, cgcs);
      core::HybridMapper probe(app.cdfg, p);
      const std::int64_t all_fine = probe.all_fine_cycles(app.profile);
      if (initial.empty()) {
        initial = core::with_thousands(all_fine);
        row.push_back(initial);
      }
      // Push as far as the engine can: unlimited ambition, keep best.
      core::MethodologyOptions options;
      options.stop_when_met = false;
      options.skip_unprofitable = true;
      const auto report =
          core::run_methodology(app.cdfg, app.profile, p, 1, options);
      row.push_back(core::with_thousands(report.final_cycles));
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.1f",
                    report.reduction_percent());
      row.push_back(buffer);
    }
    table.add_row(std::move(row));
  }
  std::printf("\nbest-effort reduction across the platform grid:\n%s\n",
              table.to_string().c_str());

  // How close is the paper's greedy ordering to the optimum on this app?
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper probe(app.cdfg, p);
  const std::int64_t constraint = probe.all_fine_cycles(app.profile) / 2;
  const auto greedy =
      core::run_methodology(app.cdfg, app.profile, p, constraint);
  const auto optimal = core::exhaustive_optimal(app.cdfg, app.profile, p,
                                                constraint, 14);
  std::printf("constraint %s: greedy moved %zu kernels (final %s), "
              "optimal needs %zu (final %s), %zu subsets evaluated\n",
              core::with_thousands(constraint).c_str(), greedy.moved.size(),
              core::with_thousands(greedy.final_cycles).c_str(),
              optimal.fewest_moves ? optimal.fewest_moves->size() : 0,
              core::with_thousands(optimal.fewest_moves_cycles).c_str(),
              optimal.subsets_evaluated);

  // Full design-space exploration: constraints x strategies x orderings
  // on a thread pool, Pareto front over (final cycles, kernels moved).
  // Constraints are left empty, so the explorer sweeps 1/4, 1/2 and 3/4
  // of the all-fine-grain cycles.
  core::ExploreSpec spec;
  spec.orderings = {core::KernelOrdering::kWeightDescending,
                    core::KernelOrdering::kBenefitDescending};
  spec.threads = 4;
  const auto summary =
      core::explore_design_space(app.cdfg, app.profile, p, spec);
  std::printf("\nexplorer sweep (%zu grid points, 4 threads):\n%s",
              summary.points.size(), core::describe(summary).c_str());
  return 0;
}
