// Extension study: frame pipelining between the fine- and coarse-grain
// blocks (paper section 3's utilization claim / section 5's ongoing
// work). Prints the sequential vs pipelined makespan of the partitioned
// paper workloads as the frame count grows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/pipeline.h"
#include "core/report.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

void print_pipeline_study(const workloads::PaperApp& app,
                          std::int64_t constraint, int max_frames,
                          const char* caption) {
  const auto p = platform::make_paper_platform(1500, 2);
  const auto report =
      core::run_methodology(app.cdfg, app.profile, p, constraint);
  std::printf("%s (after partitioning: fine %s + coarse %s + comm %s)\n",
              caption, core::with_thousands(report.cost.t_fpga).c_str(),
              core::with_thousands(report.cost.t_coarse).c_str(),
              core::with_thousands(report.cost.t_comm).c_str());
  core::TextTable table({"frames", "sequential", "pipelined", "speedup",
                         "fine util %", "coarse util %"});
  for (int frames = 1; frames <= max_frames; frames *= 2) {
    const auto estimate = core::estimate_pipeline(report, frames);
    char speedup[16], fu[16], cu[16];
    std::snprintf(speedup, sizeof speedup, "%.2fx", estimate.speedup());
    std::snprintf(fu, sizeof fu, "%.0f",
                  100.0 * estimate.fine_utilization());
    std::snprintf(cu, sizeof cu, "%.0f",
                  100.0 * estimate.coarse_utilization());
    table.add_row({std::to_string(frames),
                   core::with_thousands(estimate.sequential_cycles),
                   core::with_thousands(estimate.pipelined_cycles), speedup,
                   fu, cu});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_PipelineEstimate(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const auto report = core::run_methodology(app.cdfg, app.profile, p,
                                            workloads::kOfdmTimingConstraint);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::estimate_pipeline(report, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_PipelineEstimate)->Arg(2)->Arg(16)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_pipeline_study(workloads::build_ofdm_model(),
                       workloads::kOfdmTimingConstraint, 64,
                       "Frame pipelining, OFDM (frames = OFDM symbols)");
  print_pipeline_study(workloads::build_jpeg_model(),
                       workloads::kJpegTimingConstraint, 64,
                       "Frame pipelining, JPEG (frames = block rows)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
