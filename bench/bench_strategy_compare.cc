// Strategy comparison: the three PartitionStrategy implementations on
// both paper workloads (solution quality), plus scaling evidence that the
// engine's incremental split costing prices each kernel movement in O(1).
// BM_EngineIncremental runs the refactored greedy engine; the
// BM_EngineFullReprice reference replicates the pre-refactor loop that
// re-summed every block per move via HybridMapper::evaluate. On an
// app with B blocks and K candidate moves the former is O(B + K), the
// latter O(B * K) — visible in the reported Complexity.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/explorer.h"
#include "core/methodology.h"
#include "core/report.h"
#include "core/strategy.h"
#include "ir/packed_graph.h"
#include "synth/cdfg_generator.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

void print_strategy_comparison(const workloads::PaperApp& app,
                               std::int64_t constraint, const char* caption) {
  const auto p = platform::make_paper_platform(1500, 2);
  std::printf("%s (A_FPGA=1500, two 2x2 CGCs, constraint %s)\n", caption,
              core::with_thousands(constraint).c_str());

  core::TextTable table({"strategy", "kernels moved", "final cycles",
                         "% reduction", "met", "splits priced"});
  core::HybridMapper mapper(app.cdfg, p);
  for (const core::StrategyKind strategy : core::all_strategies()) {
    core::MethodologyOptions options;
    options.strategy = strategy;
    const auto report =
        core::run_methodology(mapper, app.profile, constraint, options);
    char reduction[32];
    std::snprintf(reduction, sizeof reduction, "%.1f",
                  report.reduction_percent());
    table.add_row({core::strategy_name(strategy),
                   std::to_string(report.moved.size()),
                   core::with_thousands(report.final_cycles), reduction,
                   report.met ? "yes" : "no",
                   std::to_string(report.engine_iterations)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

synth::SyntheticApp make_scaling_app(int segments) {
  synth::CdfgGenConfig config;
  config.segments = segments;
  config.max_loop_depth = 2;
  config.seed = 42;
  return synth::generate_app(config);
}

core::MethodologyOptions full_sweep_options() {
  core::MethodologyOptions options;
  options.stop_when_met = false;  // force the engine over every candidate
  return options;
}

void BM_EngineIncremental(benchmark::State& state) {
  const auto app = make_scaling_app(static_cast<int>(state.range(0)));
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const auto options = full_sweep_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_methodology(mapper, app.profile, /*constraint=*/1, options));
  }
  state.SetComplexityN(app.cdfg.size());
}
BENCHMARK(BM_EngineIncremental)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

// The pre-refactor engine loop: one full HybridMapper::evaluate per
// candidate movement, kept here as the scaling reference.
void BM_EngineFullReprice(benchmark::State& state) {
  const auto app = make_scaling_app(static_cast<int>(state.range(0)));
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const auto kernels = analysis::extract_kernels(app.cdfg, app.profile);
  for (auto _ : state) {
    core::SplitCost best;
    best.t_fpga = mapper.all_fine_cycles(app.profile);
    std::vector<ir::BlockId> moved;
    for (const auto& kernel : kernels) {
      if (!kernel.cgc_eligible) continue;
      std::vector<ir::BlockId> trial = moved;
      trial.push_back(kernel.block);
      const core::SplitCost cost = mapper.evaluate(app.profile, trial);
      moved = std::move(trial);
      if (cost.total() < best.total()) best = cost;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetComplexityN(app.cdfg.size());
}
BENCHMARK(BM_EngineFullReprice)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_ExploreDesignSpace(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  core::ExploreSpec spec;
  spec.constraints = {workloads::kOfdmTimingConstraint / 2,
                      workloads::kOfdmTimingConstraint,
                      2 * workloads::kOfdmTimingConstraint};
  spec.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::explore_design_space(app.cdfg, app.profile, p, spec));
  }
}
BENCHMARK(BM_ExploreDesignSpace)->Arg(1)->Arg(2)->Arg(4);

// ---- packed engine vs the legacy IR-walking paths ------------------
// The data-oriented core flattens per-block quantities into a
// PackedCdfg (SoA node arrays + CSR adjacency) at mapper construction
// and prices whole constraint axes from one strategy walk. Each pair
// below measures a replaced hot path against the node-walking or
// per-cell equivalent it displaced; the regression gate tracks both so
// the gap itself is pinned.

void BM_PackedVsLegacy_PackedAsap(benchmark::State& state) {
  const auto app = make_scaling_app(32);
  const ir::PackedCdfg packed(app.cdfg);
  std::vector<std::int32_t> scratch;
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (ir::BlockId b = 0; b < packed.num_blocks(); ++b) {
      sum += packed.asap_levels_into(b, scratch);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PackedVsLegacy_PackedAsap);

void BM_PackedVsLegacy_DfgAsap(benchmark::State& state) {
  const auto app = make_scaling_app(32);
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (const auto& block : app.cdfg.blocks()) {
      sum += block.dfg.max_asap_level();
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PackedVsLegacy_DfgAsap);

void BM_PackedVsLegacy_BatchedAxis(benchmark::State& state) {
  const auto app = make_scaling_app(16);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);
  std::vector<core::AxisCell> cells;
  for (int i = 1; i <= 8; ++i) cells.push_back({i * all_fine / 9, 0.0});
  const core::MethodologyOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_methodology_axis(mapper, app.profile, cells, options));
  }
}
BENCHMARK(BM_PackedVsLegacy_BatchedAxis);

void BM_PackedVsLegacy_PerCellAxis(benchmark::State& state) {
  const auto app = make_scaling_app(16);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);
  const core::MethodologyOptions options;
  for (auto _ : state) {
    for (int i = 1; i <= 8; ++i) {
      benchmark::DoNotOptimize(core::run_methodology(
          mapper, app.profile, i * all_fine / 9, options));
    }
  }
}
BENCHMARK(BM_PackedVsLegacy_PerCellAxis);

// ---- reconfiguration-aware pricing overhead ------------------------
// The CostModel seam is free when pricing is off (the additive fast
// path skips the repricing machinery entirely) and O(|moved| log
// |moved|) per move when on. This pair pins both sides: a greedy
// methodology run under the additive model vs the identical run with a
// nonzero reconfiguration model (residency top-R repricing active on
// every move).

void BM_ReconfigCost_Additive(benchmark::State& state) {
  const auto app = make_scaling_app(16);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  const auto options = full_sweep_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_methodology(mapper, app.profile, /*constraint=*/1, options));
  }
}
BENCHMARK(BM_ReconfigCost_Additive);

void BM_ReconfigCost_Reconfig(benchmark::State& state) {
  const auto app = make_scaling_app(16);
  const auto p = platform::make_paper_platform(1500, 2);
  core::HybridMapper mapper(app.cdfg, p);
  auto options = full_sweep_options();
  options.cost.reconfig.bitstream_cycles_per_unit = 2.5;
  options.cost.reconfig.prefetch_overlap = 0.25;
  options.cost.reconfig.floorplan_cost_per_unit = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_methodology(mapper, app.profile, /*constraint=*/1, options));
  }
}
BENCHMARK(BM_ReconfigCost_Reconfig);

}  // namespace

int main(int argc, char** argv) {
  print_strategy_comparison(workloads::build_ofdm_model(),
                            workloads::kOfdmTimingConstraint,
                            "Strategy comparison, OFDM");
  print_strategy_comparison(workloads::build_jpeg_model(),
                            workloads::kJpegTimingConstraint,
                            "Strategy comparison, JPEG");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
