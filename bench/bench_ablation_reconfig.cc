// Ablation B: reconfiguration-charging policies for the fine-grain
// temporal partitions. The paper charges full reconfiguration per
// generated partition; this study shows how the all-FPGA baseline and the
// partitioning outcome move under the four policies the library models.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/methodology.h"
#include "core/report.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

const char* policy_name(platform::ReconfigPolicy policy) {
  switch (policy) {
    case platform::ReconfigPolicy::kNone: return "none (idealized)";
    case platform::ReconfigPolicy::kSwitchOnly: return "switch-only (default)";
    case platform::ReconfigPolicy::kPerPartition: return "per partition";
    case platform::ReconfigPolicy::kAmortizedOnce: return "amortized once";
  }
  return "?";
}

void print_policy_ablation(const workloads::PaperApp& app,
                           std::int64_t constraint, const char* caption) {
  std::printf("%s (A_FPGA=1500, two 2x2 CGCs, constraint %s)\n", caption,
              core::with_thousands(constraint).c_str());
  core::TextTable table({"reconfig policy", "initial cycles", "final cycles",
                         "% reduction", "kernels moved"});
  for (const auto policy :
       {platform::ReconfigPolicy::kNone, platform::ReconfigPolicy::kSwitchOnly,
        platform::ReconfigPolicy::kPerPartition,
        platform::ReconfigPolicy::kAmortizedOnce}) {
    platform::Platform p = platform::make_paper_platform(1500, 2);
    p.fpga.reconfig_policy = policy;
    const auto report =
        core::run_methodology(app.cdfg, app.profile, p, constraint);
    char red[32];
    std::snprintf(red, sizeof red, "%.1f", report.reduction_percent());
    table.add_row({policy_name(policy),
                   core::with_thousands(report.initial_cycles),
                   core::with_thousands(report.final_cycles), red,
                   std::to_string(report.moved.size())});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_FineMappingUnderPolicy(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  platform::Platform p = platform::make_paper_platform(1500, 2);
  p.fpga.reconfig_policy =
      static_cast<platform::ReconfigPolicy>(state.range(0));
  for (auto _ : state) {
    core::HybridMapper mapper(app.cdfg, p);
    benchmark::DoNotOptimize(mapper.all_fine_cycles(app.profile));
  }
}
BENCHMARK(BM_FineMappingUnderPolicy)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  print_policy_ablation(workloads::build_ofdm_model(),
                        workloads::kOfdmTimingConstraint,
                        "Ablation B: reconfiguration policy, OFDM");
  print_policy_ablation(workloads::build_jpeg_model(),
                        workloads::kJpegTimingConstraint,
                        "Ablation B: reconfiguration policy, JPEG");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
