// Ablation A: how much does the paper's kernel ordering (decreasing
// total weight) matter? Compares against measured-benefit ordering,
// source order, random orders and the exhaustive optimum, on both paper
// workloads. Reported: kernels moved until the constraint is met and the
// final cycle count.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/baselines.h"
#include "core/methodology.h"
#include "core/report.h"
#include "core/strategy.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

void print_ordering_ablation(const workloads::PaperApp& app,
                             std::int64_t constraint, const char* caption) {
  const auto p = platform::make_paper_platform(1500, 2);
  std::printf("%s (A_FPGA=1500, two 2x2 CGCs, constraint %s)\n", caption,
              core::with_thousands(constraint).c_str());

  core::TextTable table(
      {"ordering", "kernels moved", "final cycles", "% reduction", "met"});
  auto add = [&](const char* name, const core::PartitionReport& report) {
    char red[32];
    std::snprintf(red, sizeof red, "%.1f", report.reduction_percent());
    table.add_row({name, std::to_string(report.moved.size()),
                   core::with_thousands(report.final_cycles), red,
                   report.met ? "yes" : "no"});
  };

  core::MethodologyOptions options;
  for (const core::KernelOrdering ordering : core::all_kernel_orderings()) {
    options.ordering = ordering;
    if (ordering == core::KernelOrdering::kRandom) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        options.random_seed = seed;
        char name[32];
        std::snprintf(name, sizeof name, "%s (seed %llu)",
                      core::kernel_ordering_name(ordering),
                      static_cast<unsigned long long>(seed));
        add(name, core::run_methodology(app.cdfg, app.profile, p, constraint,
                                        options));
      }
      continue;
    }
    add(core::kernel_ordering_name(ordering),
        core::run_methodology(app.cdfg, app.profile, p, constraint, options));
  }

  const auto optimal = core::exhaustive_optimal(app.cdfg, app.profile, p,
                                                constraint, /*max_kernels=*/14);
  if (optimal.fewest_moves) {
    char red[32];
    const auto initial =
        core::HybridMapper(app.cdfg, p).all_fine_cycles(app.profile);
    std::snprintf(red, sizeof red, "%.1f",
                  100.0 * (1.0 - static_cast<double>(
                                     optimal.fewest_moves_cycles) /
                                     static_cast<double>(initial)));
    table.add_row({"exhaustive optimum",
                   std::to_string(optimal.fewest_moves->size()),
                   core::with_thousands(optimal.fewest_moves_cycles), red,
                   "yes"});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_GreedyEngine(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_methodology(
        app.cdfg, app.profile, p, workloads::kOfdmTimingConstraint));
  }
}
BENCHMARK(BM_GreedyEngine);

void BM_ExhaustiveOptimal(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exhaustive_optimal(
        app.cdfg, app.profile, p, workloads::kOfdmTimingConstraint,
        static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ExhaustiveOptimal)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_ordering_ablation(workloads::build_ofdm_model(),
                          workloads::kOfdmTimingConstraint,
                          "Ablation A: kernel ordering, OFDM");
  print_ordering_ablation(workloads::build_jpeg_model(),
                          workloads::kJpegTimingConstraint,
                          "Ablation A: kernel ordering, JPEG");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
