// Tooling scalability: runtime of the mappers, the analysis and the whole
// methodology against application size (synthetic CDFGs) and DFG size
// (synthetic DFGs). Establishes that the framework scales to far larger
// inputs than the paper's 18/22-block applications.

#include <benchmark/benchmark.h>

#include "coarsegrain/cgc_scheduler.h"
#include "core/methodology.h"
#include "finegrain/fpga_mapper.h"
#include "minic/frontend.h"
#include "synth/cdfg_generator.h"
#include "workloads/minic_sources.h"

namespace {

using namespace amdrel;

synth::SyntheticApp make_app(int segments, std::uint64_t seed) {
  synth::CdfgGenConfig config;
  config.segments = segments;
  config.max_loop_depth = 2;
  config.seed = seed;
  return synth::generate_app(config);
}

ir::Dfg make_dfg(int ops, std::uint64_t seed) {
  synth::DfgGenConfig config;
  config.alu_ops = ops * 7 / 10;
  config.mul_ops = ops / 5;
  config.load_ops = ops / 10;
  config.store_ops = ops / 20;
  config.target_width = 6;
  config.seed = seed;
  return synth::generate_dfg(config);
}

void BM_TemporalPartitioning(benchmark::State& state) {
  const ir::Dfg dfg = make_dfg(static_cast<int>(state.range(0)), 11);
  platform::FpgaModel fpga;
  fpga.usable_area = 1500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finegrain::partition_dfg(dfg, fpga));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TemporalPartitioning)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();

void BM_CgcScheduling(benchmark::State& state) {
  const ir::Dfg dfg = make_dfg(static_cast<int>(state.range(0)), 13);
  platform::CgcModel cgc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarsegrain::schedule_dfg_on_cgc(dfg, cgc));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CgcScheduling)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_WholeMethodologySyntheticApp(benchmark::State& state) {
  const auto app = make_app(static_cast<int>(state.range(0)), 17);
  const auto p = platform::make_paper_platform(1500, 2);
  for (auto _ : state) {
    core::HybridMapper probe(app.cdfg, p);
    const auto constraint = probe.all_fine_cycles(app.profile) / 2;
    benchmark::DoNotOptimize(
        core::run_methodology(app.cdfg, app.profile, p, constraint));
  }
}
BENCHMARK(BM_WholeMethodologySyntheticApp)->Arg(4)->Arg(16)->Arg(64);

void BM_FrontendCompileOfdm(benchmark::State& state) {
  const std::string source = workloads::ofdm_source(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::compile(source, "ofdm"));
  }
}
BENCHMARK(BM_FrontendCompileOfdm);

void BM_FrontendCompileJpeg(benchmark::State& state) {
  const std::string source = workloads::jpeg_source(64, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::compile(source, "jpeg"));
  }
}
BENCHMARK(BM_FrontendCompileJpeg);

}  // namespace

BENCHMARK_MAIN();
