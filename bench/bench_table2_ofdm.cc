// Reproduces Table 2 of the paper: OFDM transmitter partitioning results
// for a timing constraint of 60000 clock cycles over the grid
// A_FPGA in {1500, 5000} x {two, three} 2x2 CGCs.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace amdrel;

const workloads::PaperApp& ofdm() {
  static const workloads::PaperApp app = workloads::build_ofdm_model();
  return app;
}

void BM_OfdmMethodology(benchmark::State& state) {
  const auto& app = ofdm();
  const platform::Platform p = platform::make_paper_platform(
      static_cast<double>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto report = core::run_methodology(app.cdfg, app.profile, p,
                                        workloads::kOfdmTimingConstraint);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_OfdmMethodology)
    ->Args({1500, 2})
    ->Args({1500, 3})
    ->Args({5000, 2})
    ->Args({5000, 3});

void BM_OfdmAllFineMapping(benchmark::State& state) {
  const auto& app = ofdm();
  const platform::Platform p =
      platform::make_paper_platform(static_cast<double>(state.range(0)), 2);
  for (auto _ : state) {
    core::HybridMapper mapper(app.cdfg, p);
    benchmark::DoNotOptimize(mapper.all_fine_cycles(app.profile));
  }
}
BENCHMARK(BM_OfdmAllFineMapping)->Arg(1500)->Arg(5000);

}  // namespace

int main(int argc, char** argv) {
  amdrel::bench::print_paper_table(
      ofdm(), amdrel::workloads::kOfdmTimingConstraint,
      "Table 2: OFDM partitioning results");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
