#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/methodology.h"
#include "core/report.h"
#include "platform/platform.h"
#include "workloads/paper_models.h"

namespace amdrel::bench {

/// One column of the paper's Table 2/3 grid: an A_FPGA value and a CGC
/// data-path size.
struct TableConfig {
  double a_fpga;
  int cgc_count;
};

inline const std::vector<TableConfig>& paper_grid() {
  static const std::vector<TableConfig> grid = {
      {1500, 2}, {1500, 3}, {5000, 2}, {5000, 3}};
  return grid;
}

/// Runs the methodology for one app over the paper's 2x2 experiment grid
/// and prints a table shaped like Table 2/3 (rows: initial cycles, CGC
/// count, cycles in CGC, moved blocks, final cycles, % reduction).
inline void print_paper_table(const workloads::PaperApp& app,
                              std::int64_t constraint,
                              const char* caption) {
  std::printf("%s (timing constraint: %s cycles)\n", caption,
              core::with_thousands(constraint).c_str());

  std::vector<core::PartitionReport> reports;
  for (const TableConfig& config : paper_grid()) {
    const platform::Platform p =
        platform::make_paper_platform(config.a_fpga, config.cgc_count);
    reports.push_back(
        core::run_methodology(app.cdfg, app.profile, p, constraint));
  }

  auto moved_names = [&](const core::PartitionReport& report) {
    std::string names;
    for (ir::BlockId block : report.moved) {
      if (!names.empty()) names += ", ";
      names += app.cdfg.block(block).name.substr(2);  // strip "BB"
    }
    return names.empty() ? std::string("-") : names;
  };

  core::TextTable table({"", "A=1500 2x2x2", "A=1500 3x2x2", "A=5000 2x2x2",
                         "A=5000 3x2x2"});
  table.add_row({"Initial cycles", core::with_thousands(reports[0].initial_cycles),
                 "(same)", core::with_thousands(reports[2].initial_cycles),
                 "(same)"});
  std::vector<std::string> row_cgc = {"Cycles in CGC"};
  std::vector<std::string> row_bb = {"BB no."};
  std::vector<std::string> row_final = {"Final cycles"};
  std::vector<std::string> row_red = {"% cycles reduction"};
  std::vector<std::string> row_met = {"Constraint met"};
  for (const auto& report : reports) {
    row_cgc.push_back(core::with_thousands(report.cycles_in_cgc));
    row_bb.push_back(moved_names(report));
    row_final.push_back(core::with_thousands(report.final_cycles));
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.1f", report.reduction_percent());
    row_red.push_back(buffer);
    row_met.push_back(report.met ? "yes" : "NO");
  }
  table.add_row(row_cgc);
  table.add_row(row_bb);
  table.add_row(row_final);
  table.add_row(row_red);
  table.add_row(row_met);
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace amdrel::bench
