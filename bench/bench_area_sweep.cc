// Ablation C: cycle reduction as a function of A_FPGA. The paper's
// observation: "as the FPGA area grows, the reduction of clock cycles is
// smaller" — sweep the usable area and watch the achievable reduction.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/methodology.h"
#include "core/report.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

void print_area_sweep(const workloads::PaperApp& app, std::int64_t constraint,
                      const char* caption) {
  std::printf("%s (two 2x2 CGCs, constraint %s)\n", caption,
              core::with_thousands(constraint).c_str());
  core::TextTable table({"A_FPGA", "initial cycles", "final cycles",
                         "% reduction", "kernels moved", "met"});
  for (const double area :
       {1000.0, 1500.0, 2000.0, 2600.0, 3500.0, 5000.0, 8000.0}) {
    const auto p = platform::make_paper_platform(area, 2);
    const auto report =
        core::run_methodology(app.cdfg, app.profile, p, constraint);
    char red[32];
    std::snprintf(red, sizeof red, "%.1f", report.reduction_percent());
    table.add_row({std::to_string(static_cast<int>(area)),
                   core::with_thousands(report.initial_cycles),
                   core::with_thousands(report.final_cycles), red,
                   std::to_string(report.moved.size()),
                   report.met ? "yes" : "no"});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_MethodologyVsArea(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  const auto p =
      platform::make_paper_platform(static_cast<double>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_methodology(
        app.cdfg, app.profile, p, workloads::kOfdmTimingConstraint));
  }
}
BENCHMARK(BM_MethodologyVsArea)->Arg(1000)->Arg(2000)->Arg(5000)->Arg(8000);

}  // namespace

int main(int argc, char** argv) {
  print_area_sweep(workloads::build_ofdm_model(),
                   workloads::kOfdmTimingConstraint,
                   "Ablation C: area sweep, OFDM");
  print_area_sweep(workloads::build_jpeg_model(),
                   workloads::kJpegTimingConstraint,
                   "Ablation C: area sweep, JPEG");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
