// Scaling of the platform-grid x corpus sweep: wall time of the sharded
// explorer against worker-thread count and corpus size. The shard unit is
// one (app, platform) cell group, so speedup should track the shard
// count until it saturates.

// The cold/warm pair at the bottom measures the content-addressed sweep
// cache (core/sweep_cache.h): identical rerun traffic should collapse to
// fingerprint lookups, so the warm benchmark records the cache's
// speedup in the bench JSON the CI regression gate archives.

#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/explorer.h"
#include "core/sweep_cache.h"
#include "core/sweep_io.h"
#include "synth/cdfg_generator.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

std::vector<core::CorpusApp> make_corpus(int synthetic_apps) {
  std::vector<core::CorpusApp> corpus = workloads::paper_corpus();
  for (int i = 0; i < synthetic_apps; ++i) {
    synth::CdfgGenConfig config;
    config.segments = 5;
    config.seed = 100 + static_cast<std::uint64_t>(i);
    synth::SyntheticApp synthetic = synth::generate_app(config);
    core::CorpusApp app;
    app.name = "synthetic" + std::to_string(i);
    app.cdfg = std::move(synthetic.cdfg);
    app.profile = std::move(synthetic.profile);
    corpus.push_back(std::move(app));
  }
  return corpus;
}

core::SweepSpec make_spec(int threads) {
  core::SweepSpec spec;
  spec.grid.areas = {800, 1500, 5000};
  spec.grid.cgc_counts = {2, 3};
  spec.strategies = {core::StrategyKind::kGreedyPaper,
                     core::StrategyKind::kAnnealing};
  spec.threads = threads;
  return spec;
}

void BM_CorpusSweepThreads(benchmark::State& state) {
  const auto corpus = make_corpus(6);
  const auto spec = make_spec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep_design_space(corpus, spec));
  }
}
BENCHMARK(BM_CorpusSweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CorpusSweepApps(benchmark::State& state) {
  const auto corpus = make_corpus(static_cast<int>(state.range(0)));
  const auto spec = make_spec(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep_design_space(corpus, spec));
  }
}
BENCHMARK(BM_CorpusSweepApps)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Cold cache: every cell misses, so this pays the uncached work plus
// fingerprinting — the cache's overhead bound.
void BM_CorpusSweepColdCache(benchmark::State& state) {
  const auto corpus = make_corpus(6);
  auto spec = make_spec(4);
  for (auto _ : state) {
    core::SweepCache cache;
    spec.cache = &cache;
    benchmark::DoNotOptimize(core::sweep_design_space(corpus, spec));
  }
}
BENCHMARK(BM_CorpusSweepColdCache)->Unit(benchmark::kMillisecond);

// Warm cache: the same sweep replayed against a populated cache — the
// steady state of repeated CI runs and recurring sweep traffic.
void BM_CorpusSweepWarmCache(benchmark::State& state) {
  const auto corpus = make_corpus(6);
  auto spec = make_spec(4);
  core::SweepCache cache;
  spec.cache = &cache;
  core::sweep_design_space(corpus, spec);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep_design_space(corpus, spec));
  }
}
BENCHMARK(BM_CorpusSweepWarmCache)->Unit(benchmark::kMillisecond);

// Lock contention on the sharded in-memory index: N threads hammer
// get/put on a shared cache. Each thread walks its own key sequence
// (hit on its own writes, miss on a rotated range), so the measurement
// is dominated by index locking, not payload construction. Run with
// --benchmark_min_time or the CI 16-thread arg to compare the sharded
// index against the old single-mutex behavior (SweepCache(1)).
void BM_CacheContention(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr std::uint64_t kKeysPerThread = 256;
  core::SweepCache cache;  // default shard count
  core::CachedCell cell;
  cell.report.app = "contention";
  cell.report.final_cycles = 1;
  cell.report.moved = {1};
  cell.moved_names = {"BB1"};
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&cache, &cell, t] {
        const auto base =
            static_cast<std::uint64_t>(t) * kKeysPerThread;
        core::Fingerprint key;
        key.hi = 0xc0ffee;
        for (std::uint64_t i = 0; i < kKeysPerThread; ++i) {
          key.lo = base + i;
          cache.store_cell(key, cell);
          benchmark::DoNotOptimize(cache.find_cell(key));
          key.lo = base + kKeysPerThread + i;  // someone else's range
          benchmark::DoNotOptimize(cache.find_cell(key));
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kKeysPerThread * 3);
}
BENCHMARK(BM_CacheContention)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepJsonEmission(benchmark::State& state) {
  const auto summary = core::sweep_design_space(make_corpus(6), make_spec(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep_to_json(summary));
  }
}
BENCHMARK(BM_SweepJsonEmission);

}  // namespace

BENCHMARK_MAIN();
