// Extension study: energy-constrained partitioning (paper section 5's
// future work). Prints the energy breakdown of the all-fine solution and
// of the timing- and energy-driven splits across the platform grid.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/energy.h"
#include "core/explorer.h"
#include "core/methodology.h"
#include "core/report.h"
#include "core/sweep_io.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

std::string njoule(double pj) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", pj / 1000.0);
  return buffer;
}

void print_energy_study(const workloads::PaperApp& app,
                        std::int64_t timing_constraint, const char* caption) {
  std::printf("%s\n", caption);
  core::TextTable table({"A_FPGA", "split", "fine nJ", "coarse nJ",
                         "reconfig nJ", "comm nJ", "total nJ", "vs all-fine"});
  for (const double area : {1500.0, 5000.0}) {
    const auto p = platform::make_paper_platform(area, 2);
    const auto all_fine =
        core::estimate_energy(app.cdfg, app.profile, p, {});

    auto add = [&](const char* name, const core::EnergyBreakdown& e) {
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.1f%%",
                    100.0 * e.total_pj() / all_fine.total_pj());
      table.add_row({std::to_string(static_cast<int>(area)), name,
                     njoule(e.fine_pj), njoule(e.coarse_pj),
                     njoule(e.reconfig_pj), njoule(e.comm_pj),
                     njoule(e.total_pj()), ratio});
    };
    add("all fine-grain", all_fine);

    const auto timing = core::run_methodology(app.cdfg, app.profile, p,
                                              timing_constraint);
    add("timing-driven split",
        core::estimate_energy(app.cdfg, app.profile, p, timing.moved));

    const auto energy = core::run_energy_methodology(
        app.cdfg, app.profile, p, all_fine.total_pj() * 0.5);
    add("energy-driven (50% budget)", energy.energy);
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_EnergyEstimate(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  const auto p = platform::make_paper_platform(1500, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::estimate_energy(app.cdfg, app.profile, p, {}));
  }
}
BENCHMARK(BM_EnergyEstimate);

void BM_EnergyMethodology(benchmark::State& state) {
  const auto app = workloads::build_jpeg_model();
  const auto p = platform::make_paper_platform(1500, 2);
  const double budget =
      core::estimate_energy(app.cdfg, app.profile, p, {}).total_pj() * 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_energy_methodology(app.cdfg, app.profile, p, budget));
  }
}
BENCHMARK(BM_EnergyMethodology);

// Energy-objective design-space sweep over the paper corpus and the
// Table-2/3 platform grid, including the JSON emission — the end-to-end
// hot path of `amdrelc explore --objective energy`. Part of the CI
// bench-regression gate (bench/baselines/BENCH_sweep.json).
void BM_EnergySweep(benchmark::State& state) {
  const auto corpus = workloads::paper_corpus();
  core::SweepSpec spec;
  spec.grid.areas = {1500, 5000};
  spec.grid.cgc_counts = {2, 3};
  spec.strategies = {core::StrategyKind::kGreedyPaper,
                     core::StrategyKind::kExhaustive};
  spec.orderings = {core::KernelOrdering::kWeightDescending};
  spec.base.cost.objective.kind = core::ObjectiveKind::kEnergy;
  spec.base.exhaustive_max_kernels = 10;
  spec.energy_budgets = {1.0e6, 1.18e8, 5.0e9};
  spec.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto summary = core::sweep_design_space(corpus, spec);
    benchmark::DoNotOptimize(core::sweep_to_json(summary));
  }
}
BENCHMARK(BM_EnergySweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_energy_study(workloads::build_ofdm_model(),
                     amdrel::workloads::kOfdmTimingConstraint,
                     "Energy study, OFDM");
  print_energy_study(workloads::build_jpeg_model(),
                     amdrel::workloads::kJpegTimingConstraint,
                     "Energy study, JPEG");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
