// Reproduces Table 3 of the paper: JPEG encoder partitioning results for
// a timing constraint of 11e6 clock cycles over the grid A_FPGA in
// {1500, 5000} x {two, three} 2x2 CGCs. (See DESIGN.md on the paper's
// "x10^6" units annotation, which is consistent only as "x10^3".)

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace amdrel;

const workloads::PaperApp& jpeg() {
  static const workloads::PaperApp app = workloads::build_jpeg_model();
  return app;
}

void BM_JpegMethodology(benchmark::State& state) {
  const auto& app = jpeg();
  const platform::Platform p = platform::make_paper_platform(
      static_cast<double>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto report = core::run_methodology(app.cdfg, app.profile, p,
                                        workloads::kJpegTimingConstraint);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_JpegMethodology)
    ->Args({1500, 2})
    ->Args({1500, 3})
    ->Args({5000, 2})
    ->Args({5000, 3});

void BM_JpegKernelAnalysis(benchmark::State& state) {
  const auto& app = jpeg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::extract_kernels(app.cdfg, app.profile));
  }
}
BENCHMARK(BM_JpegKernelAnalysis);

}  // namespace

int main(int argc, char** argv) {
  amdrel::bench::print_paper_table(
      jpeg(), amdrel::workloads::kJpegTimingConstraint,
      "Table 3: JPEG partitioning results");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
