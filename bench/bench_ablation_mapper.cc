// Ablation D: fine-grain mapping algorithm. The paper's Figure-3 mapper
// packs strictly level by level; the list-packing alternative pulls ready
// later-level work into the open partition. Compares partition counts and
// all-FPGA cycles on the paper workloads and on synthetic DFG shapes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/hybrid_mapper.h"
#include "core/report.h"
#include "finegrain/temporal_partitioner.h"
#include "synth/dfg_generator.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

void print_mapper_ablation(const workloads::PaperApp& app,
                           const char* caption) {
  std::printf("%s\n", caption);
  core::TextTable table({"A_FPGA", "mapper", "all-FPGA cycles",
                         "partitions (max/block)", "reconfigs/frame"});
  for (const double area : {1000.0, 1500.0, 2600.0}) {
    for (const auto mapper :
         {platform::FineMapper::kFigure3, platform::FineMapper::kListPacking}) {
      platform::Platform p = platform::make_paper_platform(area, 2);
      p.fpga.mapper = mapper;
      core::HybridMapper hybrid(app.cdfg, p);
      int max_partitions = 0;
      std::int64_t reconfigs = 0;
      for (const auto& block : app.cdfg.blocks()) {
        const auto& mapping = hybrid.fine(block.id);
        max_partitions = std::max(max_partitions,
                                  mapping.partitioning.num_partitions);
        reconfigs += mapping.reconfigs_per_invocation *
                     static_cast<std::int64_t>(app.profile.count(block.id));
      }
      table.add_row(
          {std::to_string(static_cast<int>(area)),
           mapper == platform::FineMapper::kFigure3 ? "Figure 3 (paper)"
                                                    : "list packing",
           core::with_thousands(hybrid.all_fine_cycles(app.profile)),
           std::to_string(max_partitions), core::with_thousands(reconfigs)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void print_synthetic_comparison() {
  // Fragmentation stress: multiplier-heavy DFGs on a fabric barely two
  // multipliers wide. When a mid-level multiplier overflows, Figure 3
  // permanently switches to the new partition, stranding small ALU ops
  // that would still have fit; list packing recovers them.
  std::printf("Multiplier-heavy synthetic DFGs, A_FPGA = 150 "
              "(mul area 60, alu area 12), 20 seeds per width:\n");
  core::TextTable table({"width", "Figure 3 partitions (total)",
                         "list packing partitions (total)"});
  platform::FpgaModel fpga;
  fpga.usable_area = 150;
  for (const int width : {2, 4, 8}) {
    int fig3_total = 0;
    int list_total = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      synth::DfgGenConfig config;
      config.alu_ops = 30;
      config.mul_ops = 12;
      config.load_ops = 6;
      config.store_ops = 2;
      config.target_width = width;
      config.seed = seed * 131 + width;
      const ir::Dfg dfg = synth::generate_dfg(config);
      fig3_total += finegrain::partition_dfg(dfg, fpga).num_partitions;
      list_total += finegrain::partition_dfg_list(dfg, fpga).num_partitions;
    }
    table.add_row({std::to_string(width), std::to_string(fig3_total),
                   std::to_string(list_total)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_Figure3Mapper(benchmark::State& state) {
  synth::DfgGenConfig config;
  config.alu_ops = static_cast<int>(state.range(0));
  config.mul_ops = config.alu_ops / 4;
  config.seed = 5;
  const ir::Dfg dfg = synth::generate_dfg(config);
  platform::FpgaModel fpga;
  fpga.usable_area = 600;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finegrain::partition_dfg(dfg, fpga));
  }
}
BENCHMARK(BM_Figure3Mapper)->Arg(256)->Arg(1024);

void BM_ListPackingMapper(benchmark::State& state) {
  synth::DfgGenConfig config;
  config.alu_ops = static_cast<int>(state.range(0));
  config.mul_ops = config.alu_ops / 4;
  config.seed = 5;
  const ir::Dfg dfg = synth::generate_dfg(config);
  platform::FpgaModel fpga;
  fpga.usable_area = 600;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finegrain::partition_dfg_list(dfg, fpga));
  }
}
BENCHMARK(BM_ListPackingMapper)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_mapper_ablation(workloads::build_ofdm_model(),
                        "Ablation D: fine-grain mapper, OFDM");
  print_mapper_ablation(workloads::build_jpeg_model(),
                        "Ablation D: fine-grain mapper, JPEG");
  print_synthetic_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
