// Reproduces Table 1 of the paper: the 8 most computationally intensive
// basic blocks of the OFDM transmitter and the JPEG encoder, with their
// execution frequencies, operation weights and total weights
// (equation (1): total_weight = exec_freq * bb_weight; ALU weight 1,
// multiplier weight 2).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/kernels.h"
#include "core/report.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

void print_table1(const workloads::PaperApp& app, const char* caption) {
  std::printf("%s\n", caption);
  const auto kernels = analysis::extract_kernels(app.cdfg, app.profile);
  core::TextTable table({"Basic Block no.", "Basic Block exec. freq.",
                         "Operations weight", "Total weight"});
  for (std::size_t i = 0; i < kernels.size() && i < 8; ++i) {
    const auto& k = kernels[i];
    table.add_row({app.cdfg.block(k.block).name.substr(2),
                   std::to_string(k.exec_freq),
                   std::to_string(k.op_weight),
                   std::to_string(k.total_weight)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_AnalysisOfdm(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_kernels(app.cdfg, app.profile));
  }
}
BENCHMARK(BM_AnalysisOfdm);

void BM_AnalysisJpeg(benchmark::State& state) {
  const auto app = workloads::build_jpeg_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_kernels(app.cdfg, app.profile));
  }
}
BENCHMARK(BM_AnalysisJpeg);

void BM_ModelConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::build_ofdm_model());
    benchmark::DoNotOptimize(workloads::build_jpeg_model());
  }
}
BENCHMARK(BM_ModelConstruction);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Table 1: Ordered total weights of basic blocks\n\n");
  print_table1(workloads::build_ofdm_model(),
               "OFDM transmitter (6 payload symbols)");
  print_table1(workloads::build_jpeg_model(), "JPEG encoder (256x256 image)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
