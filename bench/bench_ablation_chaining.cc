// Ablation E: intra-CGC operation chaining. The FPL'04 data-path's key
// feature lets a chain of dependent ops (e.g. multiply-add) finish within
// one T_CGC; disabling it forces every dependence across a cycle
// boundary. Reported: coarse-grain cycles of the paper kernels and the
// resulting Table-2/3 "cycles in CGC" totals.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/methodology.h"
#include "core/report.h"
#include "workloads/paper_models.h"

namespace {

using namespace amdrel;

void print_chaining_ablation(const workloads::PaperApp& app,
                             std::int64_t constraint, const char* caption) {
  std::printf("%s (A_FPGA=1500, two 2x2 CGCs)\n", caption);
  core::TextTable table({"chaining", "cycles in CGC", "final cycles",
                         "% reduction", "kernels moved"});
  for (const bool chaining : {true, false}) {
    platform::Platform p = platform::make_paper_platform(1500, 2);
    p.cgc.enable_chaining = chaining;
    const auto report =
        core::run_methodology(app.cdfg, app.profile, p, constraint);
    char red[32];
    std::snprintf(red, sizeof red, "%.1f", report.reduction_percent());
    table.add_row({chaining ? "on (FPL'04)" : "off",
                   core::with_thousands(report.cycles_in_cgc),
                   core::with_thousands(report.final_cycles), red,
                   std::to_string(report.moved.size())});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void print_per_kernel(const workloads::PaperApp& app, const char* caption,
                      const std::vector<std::string>& labels) {
  std::printf("%s: per-kernel CGC latency (T_CGC cycles / invocation)\n",
              caption);
  core::TextTable table({"kernel", "chaining on", "chaining off", "factor"});
  for (const auto& label : labels) {
    const ir::BlockId block = app.block_by_label(label);
    std::int64_t on = 0, off = 0;
    for (const bool chaining : {true, false}) {
      platform::Platform p = platform::make_paper_platform(1500, 2);
      p.cgc.enable_chaining = chaining;
      const auto mapping =
          coarsegrain::map_block_to_cgc(app.cdfg.block(block).dfg, p);
      (chaining ? on : off) = mapping.schedule.total_cgc_cycles;
    }
    char factor[16];
    std::snprintf(factor, sizeof factor, "%.2fx",
                  static_cast<double>(off) / static_cast<double>(on));
    table.add_row({label, std::to_string(on), std::to_string(off), factor});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_ScheduleWithChaining(benchmark::State& state) {
  const auto app = workloads::build_ofdm_model();
  platform::Platform p = platform::make_paper_platform(1500, 2);
  p.cgc.enable_chaining = state.range(0) != 0;
  const auto& dfg = app.cdfg.block(app.block_by_label("BB22")).dfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarsegrain::schedule_dfg_on_cgc(dfg, p.cgc));
  }
}
BENCHMARK(BM_ScheduleWithChaining)->Arg(1)->Arg(0);

}  // namespace

int main(int argc, char** argv) {
  print_chaining_ablation(workloads::build_ofdm_model(),
                          workloads::kOfdmTimingConstraint,
                          "Ablation E: chaining, OFDM");
  print_chaining_ablation(workloads::build_jpeg_model(),
                          workloads::kJpegTimingConstraint,
                          "Ablation E: chaining, JPEG");
  print_per_kernel(workloads::build_ofdm_model(), "OFDM",
                   {"BB22", "BB12", "BB3"});
  print_per_kernel(workloads::build_jpeg_model(), "JPEG",
                   {"BB6", "BB2", "BB1"});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
