// amdrelc — command-line driver for the partitioning framework.
//
//   amdrelc analyze   <file.mc> [options]   Table-1 style kernel analysis
//   amdrelc partition <file.mc> [options]   run the full methodology
//   amdrelc dump-tac  <file.mc> [options]   lowered three-address code
//   amdrelc dump-dot  <file.mc> [options]   CDFG in Graphviz DOT
//
// options:
//   --area N         usable fine-grain area A_FPGA       (default 1500)
//   --cgcs N         number of 2x2 CGCs                  (default 2)
//   --constraint N   timing constraint in FPGA cycles    (default: half of
//                    the all-fine-grain cycles)
//   --input NAME=v0,v1,...   initialize array NAME before profiling
//   --optimize       run the TAC optimizer before analysis
//   --top N          rows to print in analyze            (default 10)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/kernels.h"
#include "core/methodology.h"
#include "core/report.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "ir/dot.h"
#include "minic/frontend.h"
#include "minic/optimizer.h"
#include "support/error.h"

using namespace amdrel;

namespace {

struct Options {
  std::string command;
  std::string file;
  double area = 1500;
  int cgcs = 2;
  std::optional<std::int64_t> constraint;
  bool optimize = false;
  int top = 10;
  std::vector<std::pair<std::string, std::vector<std::int32_t>>> inputs;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: amdrelc <analyze|partition|dump-tac|dump-dot> "
               "<file.mc> [--area N] [--cgcs N] [--constraint N] "
               "[--input NAME=v0,v1,...] [--optimize] [--top N]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  if (argc < 3) usage();
  Options options;
  options.command = argv[1];
  options.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--area") {
      options.area = std::stod(next());
    } else if (arg == "--cgcs") {
      options.cgcs = std::stoi(next());
    } else if (arg == "--constraint") {
      options.constraint = std::stoll(next());
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--top") {
      options.top = std::stoi(next());
    } else if (arg == "--input") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos) usage();
      std::vector<std::int32_t> values;
      std::stringstream ss(spec.substr(eq + 1));
      std::string item;
      while (std::getline(ss, item, ',')) {
        values.push_back(static_cast<std::int32_t>(std::stol(item)));
      }
      options.inputs.emplace_back(spec.substr(0, eq), std::move(values));
    } else {
      usage();
    }
  }
  return options;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct CompiledApp {
  ir::TacProgram tac;
  ir::Cdfg cdfg{"app"};
  ir::ProfileData profile;
};

CompiledApp compile_and_profile(const Options& options) {
  CompiledApp app;
  app.tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) {
    const int rewrites = minic::optimize(app.tac);
    std::fprintf(stderr, "optimizer: %d rewrites\n", rewrites);
  }
  interp::Interpreter interp(app.tac);
  for (const auto& [name, values] : options.inputs) {
    interp.set_input(name, values);
  }
  const auto run = interp.run(4'000'000'000ULL);
  std::fprintf(stderr,
               "profiled: %llu instructions, main returned %d\n",
               static_cast<unsigned long long>(run.instructions_executed),
               run.return_value);
  app.profile = run.profile;
  app.cdfg = ir::build_cdfg(app.tac);
  return app;
}

int cmd_analyze(const Options& options) {
  const CompiledApp app = compile_and_profile(options);
  const auto kernels = analysis::extract_kernels(app.cdfg, app.profile);
  core::TextTable table(
      {"rank", "block", "exec freq", "op weight", "total weight", "depth"});
  for (std::size_t i = 0; i < kernels.size() &&
                          i < static_cast<std::size_t>(options.top);
       ++i) {
    const auto& k = kernels[i];
    table.add_row({std::to_string(i + 1), app.cdfg.block(k.block).name,
                   std::to_string(k.exec_freq), std::to_string(k.op_weight),
                   core::with_thousands(k.total_weight),
                   std::to_string(k.loop_depth)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_partition(const Options& options) {
  const CompiledApp app = compile_and_profile(options);
  const auto p = platform::make_paper_platform(options.area, options.cgcs);
  core::HybridMapper probe(app.cdfg, p);
  const std::int64_t all_fine = probe.all_fine_cycles(app.profile);
  const std::int64_t constraint = options.constraint.value_or(all_fine / 2);
  const auto report =
      core::run_methodology(app.cdfg, app.profile, p, constraint);
  std::printf("%s", core::describe(report, app.cdfg).c_str());
  return report.met ? 0 : 1;
}

int cmd_dump_tac(const Options& options) {
  ir::TacProgram tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) minic::optimize(tac);
  std::printf("%s", tac.to_string().c_str());
  return 0;
}

int cmd_dump_dot(const Options& options) {
  ir::TacProgram tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) minic::optimize(tac);
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  std::printf("%s", ir::to_dot(cdfg).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options options = parse_args(argc, argv);
    if (options.command == "analyze") return cmd_analyze(options);
    if (options.command == "partition") return cmd_partition(options);
    if (options.command == "dump-tac") return cmd_dump_tac(options);
    if (options.command == "dump-dot") return cmd_dump_dot(options);
    usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "amdrelc: %s\n", e.what());
    return 1;
  }
}
