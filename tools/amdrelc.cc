// amdrelc — command-line driver for the partitioning framework.
//
//   amdrelc analyze   <file.mc> [options]   Table-1 style kernel analysis
//   amdrelc partition <file.mc> [options]   run the full methodology
//   amdrelc explore   [file.mc] [options]   platform-grid x corpus x
//                                           constraint x strategy x
//                                           ordering design-space sweep
//   amdrelc serve     [file.mc] [options]   the same sweep, distributed
//                                           across workers — forked
//                                           `amdrelc worker` processes
//                                           (default) or, with --listen,
//                                           TCP dial-ins from other
//                                           hosts; output byte-identical
//                                           to explore
//   amdrelc worker    [file.mc] [options]   one serve worker: either
//                                           computes its --shards list
//                                           and streams the wire
//                                           protocol on stdout, or
//                                           --connect's to a listening
//                                           coordinator and serves
//                                           assignment rounds over the
//                                           socket
//   amdrelc dump-tac  <file.mc> [options]   lowered three-address code
//   amdrelc dump-dot  <file.mc> [options]   CDFG in Graphviz DOT
//   amdrelc cache-merge <out> <in...>       fold sweep cache files into one
//                                           (per-worker caches -> coordinator)
//
// Options are declared once in kOptions below — name, arity, validating
// apply function and help text — and parsed by one loop shared by every
// subcommand; usage() renders its help from the same table. Malformed
// values are usage errors (exit 2) that name the offending flag; which
// flags each COMMAND accepts is enforced by the explicit applicability
// checks at the end of parse_args.

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/kernels.h"
#include "core/energy.h"
#include "core/explorer.h"
#include "core/methodology.h"
#include "core/report.h"
#include "core/strategy.h"
#include "core/sweep_cache.h"
#include "core/sweep_io.h"
#include "core/sweep_service.h"
#include "core/transport.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "ir/dot.h"
#include "minic/frontend.h"
#include "minic/optimizer.h"
#include "support/error.h"
#include "support/net.h"
#include "support/strings.h"
#include "workloads/minic_sources.h"
#include "workloads/paper_models.h"

using namespace amdrel;

namespace {

struct Options {
  std::string command;
  std::string file;
  double area = 1500;
  int cgcs = 2;
  std::optional<std::int64_t> constraint;
  std::optional<core::StrategyKind> strategy;
  std::optional<core::KernelOrdering> ordering;
  std::optional<core::ObjectiveKind> objective;
  std::optional<double> energy_budget;
  std::optional<double> timing_weight;
  std::optional<double> energy_weight;
  std::optional<double> reconfig_latency;
  std::optional<double> prefetch_overlap;
  std::optional<double> floorplan_cost;
  std::uint64_t seed = 1;
  bool optimize = false;
  int top = 10;
  std::vector<std::pair<std::string, std::vector<std::int32_t>>> inputs;

  // explore sweep lists (empty = the documented defaults)
  std::vector<std::int64_t> constraints;
  std::vector<double> energy_budgets;
  std::vector<core::StrategyKind> strategies;
  std::vector<core::KernelOrdering> orderings;
  std::optional<core::PlatformGrid> grid;
  std::vector<std::string> corpus;
  std::string json_path;
  std::string csv_path;
  std::string cache_path;
  std::string cache_stats_path;
  bool no_cache = false;
  std::optional<std::uint64_t> cache_cap;
  int threads = 2;

  // serve / worker (the distributed split of explore)
  std::optional<int> workers;
  std::optional<std::vector<std::size_t>> shards;
  std::string listen_spec;               ///< serve --listen HOST:PORT
  std::string connect_spec;              ///< worker --connect HOST:PORT
  std::string stream_partial_path;       ///< serve --stream-partial PATH
  std::optional<double> worker_timeout;  ///< serve --worker-timeout seconds
  std::optional<int> max_retries;        ///< serve --max-retries N
  std::optional<int> fail_after_shards;  ///< worker --fail-after-shards N

  // cache-merge input files (the positional file is the output)
  std::vector<std::string> merge_inputs;
};

[[noreturn]] void usage();

/// Usage error attributable to one flag: names the flag and the problem
/// before the generic usage text, so `--objective garbage` fails with a
/// message the user can act on (and the negative CLI tests grep for).
[[noreturn]] void usage_error(const std::string& flag,
                              const std::string& why) {
  std::fprintf(stderr, "amdrelc: %s for %s\n", why.c_str(), flag.c_str());
  usage();
}

std::vector<std::string> split_list(const std::string& spec) {
  return split(spec, ',');
}

// Malformed numeric flag values are usage errors naming the offending
// flag, matching how unknown strategy/ordering names are handled
// (std::sto* would otherwise throw std::invalid_argument past main's
// Error handler).
std::int64_t parse_i64(const std::string& text, const std::string& flag) {
  try {
    return std::stoll(text);
  } catch (const std::exception&) {
    usage_error(flag, "malformed numeric value '" + text + "'");
  }
}

std::uint64_t parse_u64(const std::string& text, const std::string& flag) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    usage_error(flag, "malformed numeric value '" + text + "'");
  }
}

int parse_int(const std::string& text, const std::string& flag) {
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    usage_error(flag, "malformed numeric value '" + text + "'");
  }
}

double parse_double(const std::string& text, const std::string& flag) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    usage_error(flag, "malformed numeric value '" + text + "'");
  }
}

// A path-valued flag must not swallow the next flag as its value; the
// classic mistake `--json --csv out.csv` is a plain usage error (the
// flag got A value, just not a path).
void set_path(std::string& field, const std::string& value) {
  if (value.empty() || value.rfind("--", 0) == 0) usage();
  field = value;
}

void set_host_port(std::string& field, const std::string& value,
                   const std::string& flag) {
  std::string host;
  int port = 0;
  if (!support::net::parse_host_port(value, host, port)) {
    usage_error(flag, "malformed address '" + value +
                          "' (expected HOST:PORT or :PORT)");
  }
  field = value;
}

/// One CLI option: flag name, whether it consumes a value, the
/// validating apply function (which reports problems as flag-named usage
/// errors), and the help text usage() renders. This table is the entire
/// flag surface — adding an option is one entry, and parse, validation
/// and help can never drift apart.
struct OptionSpec {
  const char* name;
  bool takes_value;
  void (*apply)(Options&, const std::string& value, const std::string& flag);
  const char* help;
};

const OptionSpec kOptions[] = {
    {"--area", true,
     [](Options& o, const std::string& v, const std::string& f) {
       // Same invariants parse_platform_grid enforces for --grid, so the
       // single-platform fallback path cannot smuggle in a bad platform.
       o.area = parse_double(v, f);
       if (!std::isfinite(o.area) || o.area <= 0) {
         usage_error(f, "area must be positive and finite");
       }
     },
     "usable fine-grain area A_FPGA (default 1500)"},
    {"--cgcs", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.cgcs = parse_int(v, f);
       if (o.cgcs < 1 || o.cgcs > 1024) {
         usage_error(f, "CGC count must be in [1, 1024]");
       }
     },
     "number of 2x2 CGCs (default 2)"},
    {"--constraint", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.constraint = parse_i64(v, f);
     },
     "timing constraint in FPGA cycles (default: half of the "
     "all-fine-grain cycles)"},
    {"--strategy", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.strategy = core::parse_strategy(v);
       if (!o.strategy) usage_error(f, "unknown strategy '" + v + "'");
     },
     "partitioning strategy: greedy | exhaustive | annealing "
     "(default greedy)"},
    {"--ordering", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.ordering = core::parse_kernel_ordering(v);
       if (!o.ordering) usage_error(f, "unknown ordering '" + v + "'");
     },
     "kernel ordering: weight | benefit | code | random (default weight)"},
    {"--objective", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.objective = core::parse_objective(v);
       if (!o.objective) usage_error(f, "unknown objective '" + v + "'");
     },
     "cost objective: timing | energy | combined (default timing)"},
    {"--energy-budget", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.energy_budget = parse_double(v, f);
       if (!std::isfinite(*o.energy_budget) || *o.energy_budget < 0) {
         usage_error(f, "energy budget must be >= 0 and finite");
       }
     },
     "energy budget in pJ for the energy/combined objectives (partition "
     "default: half of the all-fine-grain energy; explore default: 0)"},
    {"--timing-weight", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.timing_weight = parse_double(v, f);
       if (!std::isfinite(*o.timing_weight) || *o.timing_weight < 0) {
         usage_error(f, "weight must be >= 0 and finite");
       }
     },
     "combined-objective weight on cycles (default 1)"},
    {"--energy-weight", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.energy_weight = parse_double(v, f);
       if (!std::isfinite(*o.energy_weight) || *o.energy_weight < 0) {
         usage_error(f, "weight must be >= 0 and finite");
       }
     },
     "combined-objective weight on energy (default 1)"},
    {"--reconfig-latency", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.reconfig_latency = parse_double(v, f);
       if (!std::isfinite(*o.reconfig_latency) || *o.reconfig_latency < 0) {
         usage_error(f, "reconfiguration latency must be >= 0 and finite");
       }
     },
     "bitstream load latency in FPGA cycles per op node of a moved "
     "module; 0 disables reconfiguration pricing entirely (default 0)"},
    {"--prefetch-overlap", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.prefetch_overlap = parse_double(v, f);
       if (!std::isfinite(*o.prefetch_overlap) || *o.prefetch_overlap < 0 ||
           *o.prefetch_overlap >= 1) {
         usage_error(f, "prefetch overlap must be in [0, 1)");
       }
     },
     "fraction of each configuration load hidden by prefetch, in [0, 1) "
     "(default 0)"},
    {"--floorplan-cost", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.floorplan_cost = parse_double(v, f);
       if (!std::isfinite(*o.floorplan_cost) || *o.floorplan_cost < 0) {
         usage_error(f, "floorplan cost must be >= 0 and finite");
       }
     },
     "area-cost charge per moved op node, reported beside platform cost "
     "(never added to cycles) (default 0)"},
    {"--seed", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.seed = parse_u64(v, f);
     },
     "seed for random ordering / annealing (default 1)"},
    {"--input", true,
     [](Options& o, const std::string& v, const std::string& f) {
       const std::size_t eq = v.find('=');
       if (eq == std::string::npos) {
         usage_error(f, "expected NAME=v0,v1,...");
       }
       std::vector<std::int32_t> values;
       for (const std::string& item : split_list(v.substr(eq + 1))) {
         values.push_back(static_cast<std::int32_t>(parse_i64(item, f)));
       }
       o.inputs.emplace_back(v.substr(0, eq), std::move(values));
     },
     "NAME=v0,v1,...: initialize array NAME before profiling"},
    {"--optimize", false,
     [](Options& o, const std::string&, const std::string&) {
       o.optimize = true;
     },
     "run the TAC optimizer before analysis"},
    {"--top", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.top = parse_int(v, f);
     },
     "rows to print in analyze (default 10)"},
    {"--constraints", true,
     [](Options& o, const std::string& v, const std::string& f) {
       for (const std::string& item : split_list(v)) {
         o.constraints.push_back(parse_i64(item, f));
       }
     },
     "explore only: c1,c2,... constraint sweep (default: 1/4, 1/2 and "
     "3/4 of each cell's all-fine-grain cycles)"},
    {"--energy-budgets", true,
     [](Options& o, const std::string& v, const std::string& f) {
       for (const std::string& item : split_list(v)) {
         const double budget = parse_double(item, f);
         if (!std::isfinite(budget) || budget < 0) {
           usage_error(f, "energy budgets must be >= 0 and finite");
         }
         o.energy_budgets.push_back(budget);
       }
     },
     "explore only: b1,b2,... energy-budget axis in pJ (default: the "
     "single --energy-budget value, or 0)"},
    {"--strategies", true,
     [](Options& o, const std::string& v, const std::string& f) {
       for (const std::string& item : split_list(v)) {
         const auto strategy = core::parse_strategy(item);
         if (!strategy) usage_error(f, "unknown strategy '" + item + "'");
         o.strategies.push_back(*strategy);
       }
     },
     "explore only: s1,s2,... strategies to sweep (default: all)"},
    {"--orderings", true,
     [](Options& o, const std::string& v, const std::string& f) {
       for (const std::string& item : split_list(v)) {
         const auto ordering = core::parse_kernel_ordering(item);
         if (!ordering) usage_error(f, "unknown ordering '" + item + "'");
         o.orderings.push_back(*ordering);
       }
     },
     "explore only: o1,o2,... orderings to sweep (default: "
     "weight,benefit)"},
    {"--grid", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.grid = core::parse_platform_grid(v);
       if (!o.grid) usage_error(f, "malformed grid '" + v + "'");
     },
     "platform grid \"a1,a2,...xc1,c2,...\" — A_FPGA values crossed with "
     "CGC counts, e.g. 1500,5000x2,3 (default: one platform from "
     "--area/--cgcs)"},
    {"--corpus", true,
     [](Options& o, const std::string& v, const std::string&) {
       // split() drops a trailing empty field, so "ofdm," would
       // otherwise silently pass the per-item empty check below.
       if (v.empty() || v.back() == ',') usage();
       o.corpus = split_list(v);
       if (o.corpus.empty()) usage();
       for (const std::string& item : o.corpus) {
         if (item.empty()) usage();
       }
     },
     "l1,l2,...: sweep these apps as well as (or instead of) the "
     "positional file: built-ins ofdm | jpeg (the paper's calibrated "
     "models), fir | sobel (bundled MiniC sources), or a path to a .mc "
     "file"},
    {"--json", true,
     [](Options& o, const std::string& v, const std::string&) {
       set_path(o.json_path, v);
     },
     "write the sweep as stable-schema JSON to PATH"},
    {"--csv", true,
     [](Options& o, const std::string& v, const std::string&) {
       set_path(o.csv_path, v);
     },
     "write the sweep as CSV to PATH"},
    {"--threads", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.threads = parse_int(v, f);
     },
     "worker threads for the in-process sweep (default 2)"},
    {"--cache", true,
     [](Options& o, const std::string& v, const std::string&) {
       set_path(o.cache_path, v);
     },
     "persistent sweep cache: loaded before the sweep (warn-and-"
     "recompute on any validation failure) and saved after it, so "
     "repeated invocations start warm"},
    {"--no-cache", false,
     [](Options& o, const std::string&, const std::string&) {
       o.no_cache = true;
     },
     "run uncached (overrides --cache)"},
    {"--cache-stats", true,
     [](Options& o, const std::string& v, const std::string&) {
       set_path(o.cache_stats_path, v);
     },
     "write the cache hit/miss counters as JSON (requires an effective "
     "--cache; explore/worker only)"},
    {"--cache-cap-bytes", true,
     [](Options& o, const std::string& v, const std::string& f) {
       // A leading '-' would parse as a huge unsigned value; reject it
       // as the usage error it is.
       if (v.empty() || v[0] == '-') usage_error(f, "cap must be >= 0");
       o.cache_cap = parse_u64(v, f);
     },
     "size cap for the saved cache file; entries beyond it are evicted "
     "least-recently-touched first (0 = never evict; default 64 MiB)"},
    {"--workers", true,
     [](Options& o, const std::string& v, const std::string& f) {
       const int workers = parse_int(v, f);
       if (workers < 1 || workers > 512) {
         usage_error(f, "worker count must be in [1, 512]");
       }
       o.workers = workers;
     },
     "serve only: worker count — fork fan-out, or with --listen the "
     "number of dial-ins served concurrently (default 2)"},
    {"--listen", true,
     [](Options& o, const std::string& v, const std::string& f) {
       set_host_port(o.listen_spec, v, f);
     },
     "serve only: accept `amdrelc worker --connect` dial-ins on "
     "HOST:PORT instead of forking local workers (port 0 = ephemeral; "
     "the bound port is announced on stderr)"},
    {"--stream-partial", true,
     [](Options& o, const std::string& v, const std::string& f) {
       if (v.empty() || v.rfind("--", 0) == 0) {
         usage_error(f, "missing output path");
       }
       o.stream_partial_path = v;
     },
     "serve only: append finished shards to PATH as schema-v3 NDJSON "
     "while the sweep runs (completion order; the merged artifact stays "
     "the deterministic one)"},
    {"--worker-timeout", true,
     [](Options& o, const std::string& v, const std::string& f) {
       o.worker_timeout = parse_double(v, f);
       if (!std::isfinite(*o.worker_timeout) || *o.worker_timeout < 0) {
         usage_error(f, "timeout must be >= 0 and finite");
       }
     },
     "serve only: seconds of mid-round silence before a worker is "
     "declared dead and its unfinished shards retried (0 disables; "
     "default 300)"},
    {"--max-retries", true,
     [](Options& o, const std::string& v, const std::string& f) {
       const int retries = parse_int(v, f);
       if (retries < 0 || retries > 100) {
         usage_error(f, "retry count must be in [0, 100]");
       }
       o.max_retries = retries;
     },
     "serve only: extra assignment attempts allowed per shard after the "
     "first before the run fails (0 disables retry; default 2)"},
    {"--shards", true,
     [](Options& o, const std::string& v, const std::string& f) {
       // split() drops a trailing empty field; "0,1," must not silently
       // parse as "0,1".
       if (v.empty() || v.back() == ',') {
         usage_error(f, "malformed shard list '" + v + "'");
       }
       std::vector<std::size_t> shards;
       for (const std::string& item : split_list(v)) {
         const std::int64_t shard = parse_i64(item, f);
         if (shard < 0) usage_error(f, "shard indices must be >= 0");
         const auto value = static_cast<std::size_t>(shard);
         if (std::find(shards.begin(), shards.end(), value) !=
             shards.end()) {
           usage_error(f, "duplicate shard " + item);
         }
         shards.push_back(value);
       }
       if (shards.empty()) usage_error(f, "empty shard list");
       o.shards = std::move(shards);
     },
     "worker only: i,j,... the (app, platform) shard indices this worker "
     "computes and streams on stdout (normally passed by serve, not "
     "typed by hand)"},
    {"--connect", true,
     [](Options& o, const std::string& v, const std::string& f) {
       set_host_port(o.connect_spec, v, f);
     },
     "worker only: dial a listening coordinator at HOST:PORT (empty host "
     "= loopback) and serve assignment rounds over the socket instead of "
     "taking a --shards list"},
    {"--fail-after-shards", true,
     [](Options& o, const std::string& v, const std::string& f) {
       const int count = parse_int(v, f);
       if (count < 1) usage_error(f, "shard count must be >= 1");
       o.fail_after_shards = count;
     },
     "worker only: raise SIGKILL after emitting N shards — deterministic "
     "fault injection for the serve retry tests"},
};

const OptionSpec* find_option(const std::string& name) {
  for (const OptionSpec& spec : kOptions) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

[[noreturn]] void usage() {
  std::string text =
      "usage: amdrelc "
      "<analyze|partition|explore|serve|worker|dump-tac|dump-dot> "
      "<file.mc> [options]\n"
      "   or: amdrelc cache-merge <out> <in...>\n"
      "options:\n";
  for (const OptionSpec& spec : kOptions) {
    text += "  ";
    text += spec.name;
    if (spec.takes_value) text += " <value>";
    text += "\n      ";
    text += spec.help;
    text += '\n';
  }
  text +=
      "(explore/serve/worker accept --corpus in place of the positional "
      "file; serve forks `amdrelc worker` processes — or, with --listen, "
      "accepts `worker --connect` dial-ins — and its sweep output is "
      "byte-identical to explore)\n";
  std::fprintf(stderr, "%s", text.c_str());
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  if (argc < 3) usage();
  Options options;
  options.command = argv[1];
  // The positional file may be omitted when a later flag provides the
  // work (explore --corpus); anything starting with '-' is a flag.
  int first_flag = 2;
  if (argv[2][0] != '-') {
    options.file = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const OptionSpec* spec = find_option(arg)) {
      std::string value;
      if (spec->takes_value) {
        if (++i >= argc) usage_error(arg, "missing value");
        value = argv[i];
      }
      spec->apply(options, value, arg);
    } else if (options.command == "cache-merge" && !arg.empty() &&
               arg[0] != '-') {
      // cache-merge is the one multi-positional command: the first
      // positional (options.file) is the output path, the rest are the
      // input caches to fold in.
      options.merge_inputs.push_back(arg);
    } else {
      usage();
    }
  }
  const bool sweep_command = options.command == "explore" ||
                             options.command == "serve" ||
                             options.command == "worker";
  // Every command needs a source file except the sweep family, which may
  // draw its whole corpus from --corpus.
  if (options.file.empty() && !(sweep_command && !options.corpus.empty())) {
    usage();
  }
  // The distributed-split flags are command-specific: the coordinator
  // side (fan-out width, transport address, fault-tolerance knobs,
  // partial stream) belongs to serve, the assignment side (--shards /
  // --connect, fault injection) to worker.
  if (options.workers && options.command != "serve") usage();
  if (!options.listen_spec.empty() && options.command != "serve") usage();
  if (!options.stream_partial_path.empty() && options.command != "serve") {
    usage();
  }
  if (options.worker_timeout && options.command != "serve") usage();
  if (options.max_retries && options.command != "serve") usage();
  if (options.shards && options.command != "worker") usage();
  if (!options.connect_spec.empty() && options.command != "worker") usage();
  if (options.fail_after_shards && options.command != "worker") usage();
  // A worker's assignment comes from exactly one source: a --shards list
  // (static stdout stream) or a --connect coordinator (socket rounds).
  if (options.command == "worker" &&
      options.shards.has_value() != options.connect_spec.empty()) {
    usage();
  }
  // serve's own cache traffic is zero (its workers compute the cells),
  // so a serve-side stats file would only ever hold zeros.
  if (options.command == "serve" && !options.cache_stats_path.empty()) {
    usage();
  }
  // cache-merge with nothing to merge is a spec mistake, not a no-op.
  if (options.command == "cache-merge" && options.merge_inputs.empty()) {
    usage();
  }
  // --cache-stats reports on a cache that actually ran; without one the
  // counters would be an all-zero file indistinguishable from a broken
  // cache, so asking for stats with no (effective) --cache is a usage
  // error.
  if (!options.cache_stats_path.empty() &&
      (options.cache_path.empty() || options.no_cache)) {
    usage();
  }
  return options;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct CompiledApp {
  ir::TacProgram tac;
  ir::Cdfg cdfg{"app"};
  ir::ProfileData profile;
};

constexpr std::uint64_t kProfileBudget = 4'000'000'000ULL;

// The dynamic-analysis pipeline behind both the positional file and
// compiled --corpus entries: optional optimizer pass, profiling
// interpreter run, CDFG construction. --input arrays only apply to the
// positional file (apply_inputs) — corpus entries profile on
// zero-initialized inputs, since they need not share array names.
CompiledApp profile_tac(ir::TacProgram tac, const Options& options,
                        const std::string& label, bool apply_inputs) {
  CompiledApp app;
  app.tac = std::move(tac);
  if (options.optimize) {
    const int rewrites = minic::optimize(app.tac);
    std::fprintf(stderr, "optimizer(%s): %d rewrites\n", label.c_str(),
                 rewrites);
  }
  interp::Interpreter interp(app.tac);
  if (apply_inputs) {
    for (const auto& [name, values] : options.inputs) {
      interp.set_input(name, values);
    }
  }
  const auto run = interp.run(kProfileBudget);
  std::fprintf(stderr,
               "profiled %s: %llu instructions, main returned %d\n",
               label.c_str(),
               static_cast<unsigned long long>(run.instructions_executed),
               run.return_value);
  app.profile = run.profile;
  app.cdfg = ir::build_cdfg(app.tac);
  return app;
}

CompiledApp compile_and_profile(const Options& options) {
  return profile_tac(minic::compile(read_file(options.file), options.file),
                     options, options.file, /*apply_inputs=*/true);
}

int cmd_analyze(const Options& options) {
  const CompiledApp app = compile_and_profile(options);
  const auto kernels = analysis::extract_kernels(app.cdfg, app.profile);
  core::TextTable table(
      {"rank", "block", "exec freq", "op weight", "total weight", "depth"});
  for (std::size_t i = 0; i < kernels.size() &&
                          i < static_cast<std::size_t>(options.top);
       ++i) {
    const auto& k = kernels[i];
    table.add_row({std::to_string(i + 1), app.cdfg.block(k.block).name,
                   std::to_string(k.exec_freq), std::to_string(k.op_weight),
                   core::with_thousands(k.total_weight),
                   std::to_string(k.loop_depth)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

core::MethodologyOptions methodology_options(const Options& options) {
  core::MethodologyOptions mo;
  mo.strategy = options.strategy.value_or(core::StrategyKind::kGreedyPaper);
  mo.ordering =
      options.ordering.value_or(core::KernelOrdering::kWeightDescending);
  mo.cost.objective.kind =
      options.objective.value_or(core::ObjectiveKind::kTiming);
  mo.cost.energy_budget_pj = options.energy_budget.value_or(0.0);
  mo.cost.reconfig.bitstream_cycles_per_unit =
      options.reconfig_latency.value_or(0.0);
  mo.cost.reconfig.prefetch_overlap = options.prefetch_overlap.value_or(0.0);
  mo.cost.reconfig.floorplan_cost_per_unit =
      options.floorplan_cost.value_or(0.0);
  if (options.timing_weight) {
    mo.cost.objective.cycle_weight = *options.timing_weight;
  }
  if (options.energy_weight) {
    mo.cost.objective.energy_weight = *options.energy_weight;
  }
  mo.random_seed = options.seed;
  return mo;
}

int cmd_partition(const Options& options) {
  const CompiledApp app = compile_and_profile(options);
  const auto p = platform::make_paper_platform(options.area, options.cgcs);
  core::HybridMapper mapper(app.cdfg, p);
  const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);
  const std::int64_t constraint = options.constraint.value_or(all_fine / 2);
  core::MethodologyOptions mo = methodology_options(options);
  if (mo.cost.objective.needs_energy() && !options.energy_budget) {
    // Mirror the timing default (half of all-fine cycles): without an
    // explicit budget, ask for half of the all-fine-grain energy.
    mo.cost.energy_budget_pj =
        core::estimate_energy(mapper, app.profile, {},
                              mo.cost.objective.energy)
            .total_pj() *
        0.5;
  }
  const auto report =
      core::run_methodology(mapper, app.profile, constraint, mo);
  std::fprintf(stderr, "strategy: %s, ordering: %s, objective: %s\n",
               core::strategy_name(mo.strategy),
               core::kernel_ordering_name(mo.ordering),
               core::objective_name(mo.cost.objective.kind));
  std::printf("%s", core::describe(report, app.cdfg).c_str());
  return report.met ? 0 : 1;
}

// Resolves one --corpus entry: the paper's calibrated models by name,
// the bundled MiniC sources (profiled through the interpreter on
// zero-initialized inputs), or a path to a MiniC file. Unknown names are
// usage errors, like unknown --strategy values.
core::CorpusApp corpus_app(const std::string& name, const Options& options) {
  core::CorpusApp app;
  app.name = name;
  if (name == "ofdm" || name == "jpeg") {
    workloads::PaperApp model = name == "ofdm"
                                    ? workloads::build_ofdm_model()
                                    : workloads::build_jpeg_model();
    app.cdfg = std::move(model.cdfg);
    app.profile = std::move(model.profile);
    return app;
  }
  std::string source;
  if (name == "fir") {
    source = workloads::fir_source();
  } else if (name == "sobel") {
    source = workloads::sobel_source();
  } else if (name.find('.') != std::string::npos ||
             name.find('/') != std::string::npos) {
    source = read_file(name);
  } else {
    usage();
  }
  CompiledApp compiled = profile_tac(minic::compile(source, name), options,
                                     name, /*apply_inputs=*/false);
  app.profile = std::move(compiled.profile);
  app.cdfg = std::move(compiled.cdfg);
  return app;
}

void write_output_file(const std::string& path, const std::string& content,
                       const char* what) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();  // surface ENOSPC-style errors before the good() check
  require(out.good(), std::string("cannot write ") + path);
  std::fprintf(stderr, "wrote sweep %s to %s\n", what, path.c_str());
}

// The corpus of a sweep-family command (explore/serve/worker): the
// positional file plus every --corpus entry. Duplicate app names are a
// spec mistake, caught here as a usage error (exit 2) like every other
// malformed sweep flag; the library's own require() guard stays as the
// API-level backstop.
std::vector<core::CorpusApp> build_corpus(const Options& options) {
  std::vector<core::CorpusApp> corpus;
  if (!options.file.empty()) {
    CompiledApp app = compile_and_profile(options);
    core::CorpusApp entry;
    entry.name = options.file;
    entry.cdfg = std::move(app.cdfg);
    entry.profile = std::move(app.profile);
    corpus.push_back(std::move(entry));
  }
  for (const std::string& name : options.corpus) {
    corpus.push_back(corpus_app(name, options));
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      if (corpus[i].name == corpus[j].name) usage();
    }
  }
  return corpus;
}

// The sweep grid from the flags, identically for explore, serve and
// every worker — the distributed split only partitions WORK; a
// divergence in flag interpretation here would break serve's
// byte-identity with explore.
// Plural flags win; a singular --constraint/--strategy/--ordering
// narrows the sweep to that one value rather than being ignored, and
// --area/--cgcs define the single-platform grid when --grid is absent.
core::SweepSpec build_sweep_spec(const Options& options) {
  core::SweepSpec spec;
  spec.grid = options.grid.value_or(
      core::PlatformGrid{{options.area}, {options.cgcs}});
  spec.base = methodology_options(options);
  spec.threads = options.threads;
  spec.constraints = options.constraints;  // empty = per-cell defaults
  if (spec.constraints.empty() && options.constraint) {
    spec.constraints = {*options.constraint};
  }
  // The energy axis: an explicit --energy-budgets list, else the single
  // --energy-budget already in spec.base (0 when neither is given).
  spec.energy_budgets = options.energy_budgets;
  if (!options.strategies.empty()) {
    spec.strategies = options.strategies;
  } else if (options.strategy) {
    spec.strategies = {*options.strategy};
  }
  if (!options.orderings.empty()) {
    spec.orderings = options.orderings;
  } else if (options.ordering) {
    spec.orderings = {*options.ordering};
  } else {
    spec.orderings = {core::KernelOrdering::kWeightDescending,
                      core::KernelOrdering::kBenefitDescending};
  }
  return spec;
}

// The persistent cache warms repeated invocations. Every load-side
// failure (missing file, corrupt line, schema/fingerprint version
// mismatch) degrades to a cold run with a warning — the cache can cost
// a recompute, never a wrong result. A missing file is the normal
// first-run case and warns with a gentler message. Returns whether the
// cache is in use (the caller wires it into the spec and saves after).
bool setup_cache(const Options& options, core::SweepCache& cache) {
  const bool use_cache = !options.cache_path.empty() && !options.no_cache;
  if (!use_cache) return false;
  if (options.cache_cap) cache.set_save_size_cap(*options.cache_cap);
  if (!std::ifstream(options.cache_path).good()) {
    std::fprintf(stderr, "cache: %s not found, starting cold\n",
                 options.cache_path.c_str());
  } else {
    std::string error;
    if (cache.load(options.cache_path, &error)) {
      std::fprintf(stderr, "cache: loaded %llu entr%s from %s\n",
                   static_cast<unsigned long long>(
                       cache.stats().entries_loaded),
                   cache.stats().entries_loaded == 1 ? "y" : "ies",
                   options.cache_path.c_str());
    } else {
      std::fprintf(stderr,
                   "amdrelc: warning: ignoring cache (%s); recomputing "
                   "from scratch\n",
                   error.c_str());
    }
  }
  return true;
}

// Reports the cache traffic and persists the cache (merge-on-save), for
// explore and worker alike. The stats line goes to stderr so worker
// stdout stays pure wire protocol.
void report_and_save_cache(const Options& options, core::SweepCache& cache) {
  const core::SweepCacheStats stats = cache.stats();
  std::fprintf(stderr,
               "cache: %llu cell hits, %llu misses, %llu mapper restores, "
               "%llu cold builds\n",
               static_cast<unsigned long long>(stats.cell_hits),
               static_cast<unsigned long long>(stats.cell_misses),
               static_cast<unsigned long long>(stats.mapper_restores),
               static_cast<unsigned long long>(stats.mapper_builds));
  std::string error;
  if (cache.save(options.cache_path, &error)) {
    std::fprintf(stderr, "cache: saved %llu cell(s) to %s\n",
                 static_cast<unsigned long long>(stats.cells),
                 options.cache_path.c_str());
  } else {
    // Results are already computed and emitted; a write failure only
    // costs the next run its warm start.
    std::fprintf(stderr, "amdrelc: warning: cannot write cache: %s\n",
                 error.c_str());
  }
}

void write_sweep_outputs(const Options& options,
                         const core::SweepSummary& summary) {
  if (!options.json_path.empty()) {
    write_output_file(options.json_path, core::sweep_to_json(summary),
                      "JSON");
  }
  if (!options.csv_path.empty()) {
    write_output_file(options.csv_path, core::sweep_to_csv(summary), "CSV");
  }
}

int cmd_explore(const Options& options) {
  const std::vector<core::CorpusApp> corpus = build_corpus(options);
  core::SweepSpec spec = build_sweep_spec(options);
  core::SweepCache cache;
  const bool use_cache = setup_cache(options, cache);
  if (use_cache) spec.cache = &cache;

  const auto summary = core::sweep_design_space(corpus, spec);
  std::printf("design-space sweep: %zu app(s) x %zu platform(s), "
              "%zu cells, %d thread(s)\n",
              summary.apps.size(), spec.grid.size(), summary.cells.size(),
              core::worker_count(corpus.size() * spec.grid.size(),
                                 spec.threads));
  std::printf("%s", core::describe(summary).c_str());
  write_sweep_outputs(options, summary);
  if (use_cache) report_and_save_cache(options, cache);
  if (use_cache && !options.cache_stats_path.empty()) {
    write_output_file(options.cache_stats_path,
                      core::cache_stats_to_json(cache.stats()),
                      "cache stats");
  }
  return 0;
}

// The fork transport's worker command: this binary re-run as `amdrelc
// worker` with the original sweep flags plus the --shards assignment.
// The original argv is forwarded verbatim EXCEPT the serve-only flags:
// --workers/--listen/--worker-timeout/--max-retries (coordinator
// concerns) and the artifact outputs --json/--csv/--stream-partial
// (workers emit wire protocol on stdout, not artifacts; --cache-stats
// is already rejected for serve in parse_args). --cache IS forwarded:
// each worker loads the shared file and persists with merge-on-save,
// exactly the concurrent-writer regime the cache's file lock exists for.
core::WorkerCommandFn forked_worker_command(int argc, char** argv) {
  std::vector<std::string> base_command;
  base_command.push_back(argv[0]);
  base_command.push_back("worker");
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" || arg == "--json" || arg == "--csv" ||
        arg == "--listen" || arg == "--stream-partial" ||
        arg == "--worker-timeout" || arg == "--max-retries") {
      ++i;  // skip the flag's value too
      continue;
    }
    base_command.push_back(arg);
  }
  return [base_command](const std::vector<std::size_t>& assigned) {
    std::vector<std::string> command = base_command;
    std::string joined;
    for (std::size_t i = 0; i < assigned.size(); ++i) {
      if (i) joined += ',';
      joined += std::to_string(assigned[i]);
    }
    command.push_back("--shards");
    command.push_back(joined);
    return command;
  };
}

// Coordinator: reaches workers through the configured transport — forked
// `amdrelc worker` processes by default, TCP dial-ins with --listen —
// and merges their streams into the summary explore would have
// produced, retrying a dead worker's unfinished shards within the
// configured budget.
int cmd_serve(const Options& options, int argc, char** argv) {
  const std::vector<core::CorpusApp> corpus = build_corpus(options);
  const core::SweepSpec spec = build_sweep_spec(options);
  const std::size_t shards = core::sweep_shard_count(corpus, spec);

  core::ServeOptions serve;
  serve.workers = options.workers.value_or(2);
  if (options.max_retries) serve.max_shard_retries = *options.max_retries;
  if (options.worker_timeout) {
    serve.idle_timeout_ms =
        static_cast<int>(*options.worker_timeout * 1000.0);
  }

  std::unique_ptr<core::Transport> transport;
  if (!options.listen_spec.empty()) {
    std::string host;
    int port = 0;
    support::net::parse_host_port(options.listen_spec, host, port);
    auto tcp = std::make_unique<core::TcpTransport>(
        support::net::listen_tcp(host, port));
    // An ephemeral port (--listen :0) is only knowable here; scripts
    // scrape this line to learn where to point their workers.
    std::fprintf(stderr, "serve: listening on %s:%d\n",
                 host.empty() ? "0.0.0.0" : host.c_str(), tcp->port());
    transport = std::move(tcp);
  } else {
    transport = std::make_unique<core::ForkPipeTransport>(
        forked_worker_command(argc, argv));
  }
  serve.transport = transport.get();

  std::ofstream partial;
  std::vector<std::string> app_names;
  if (!options.stream_partial_path.empty()) {
    for (const core::CorpusApp& app : corpus) app_names.push_back(app.name);
    partial.open(options.stream_partial_path, std::ios::binary);
    require(partial.good(), "cannot write " + options.stream_partial_path);
    core::write_partial_stream_header(partial, shards);
    serve.on_shard_complete = [&partial, &app_names](
                                  std::size_t shard,
                                  const core::SweepCell* cells,
                                  std::size_t used) {
      core::write_partial_stream_shard(partial, app_names, shard, cells,
                                       used);
    };
  }

  const auto summary = core::serve_design_space(corpus, spec, serve);
  if (!options.stream_partial_path.empty()) {
    partial.flush();
    require(partial.good(), "cannot write " + options.stream_partial_path);
    std::fprintf(stderr, "wrote partial shard stream to %s\n",
                 options.stream_partial_path.c_str());
  }
  std::printf("distributed sweep: %zu app(s) x %zu platform(s), "
              "%zu cells, %d worker(s)\n",
              summary.apps.size(), spec.grid.size(), summary.cells.size(),
              std::min(serve.workers, static_cast<int>(shards)));
  std::printf("%s", core::describe(summary).c_str());
  write_sweep_outputs(options, summary);
  return 0;
}

// One serve worker. In --shards mode stdout carries ONLY the wire
// protocol (profiling and cache diagnostics already go to stderr); in
// --connect mode the same protocol rides the socket and stdout stays
// free. Serve consumes either through the strict stream validator in
// core/sweep_service.h.
int cmd_worker(const Options& options) {
  const std::vector<core::CorpusApp> corpus = build_corpus(options);
  core::SweepSpec spec = build_sweep_spec(options);
  core::SweepCache cache;
  const bool use_cache = setup_cache(options, cache);
  if (use_cache) spec.cache = &cache;

  core::ShardEmitHook after_shard;
  if (options.fail_after_shards) {
    // Deterministic fault injection for the serve retry tests: die the
    // instant the Nth shard has been flushed, exactly as a crashed host
    // would — no timing races, no partial lines.
    const auto limit =
        static_cast<std::size_t>(*options.fail_after_shards);
    after_shard = [limit](std::size_t emitted) {
      if (emitted >= limit) {
#ifndef _WIN32
        std::raise(SIGKILL);
#else
        fail("worker: --fail-after-shards requires POSIX signals");
#endif
      }
    };
  }

  if (!options.connect_spec.empty()) {
    std::string host;
    int port = 0;
    support::net::parse_host_port(options.connect_spec, host, port);
    support::net::Socket conn =
        support::net::connect_tcp(host, port, /*timeout_ms=*/30000);
    support::net::FdIoStream stream(conn.fd());
    core::run_sweep_worker_connected(corpus, spec, stream, stream,
                                     after_shard);
    stream.flush();
    require(stream.good(), "worker: cannot write result stream to socket");
  } else {
    core::run_sweep_worker(corpus, spec, *options.shards, std::cout,
                           after_shard);
    std::cout.flush();
    require(std::cout.good(),
            "worker: cannot write result stream to stdout");
  }
  if (use_cache) report_and_save_cache(options, cache);
  if (use_cache && !options.cache_stats_path.empty()) {
    write_output_file(options.cache_stats_path,
                      core::cache_stats_to_json(cache.stats()),
                      "cache stats");
  }
  return 0;
}

// Folds worker cache files into one coordinator cache. Inputs are
// loaded with the same strict validation explore uses, but here a bad
// input is a hard error (exit 1), not a warn-and-recompute — a merge
// that silently drops a worker's results is exactly the data loss this
// command exists to prevent. The output is written with merge-on-save,
// so pre-existing entries in <out> survive too.
int cmd_cache_merge(const Options& options) {
  core::SweepCache merged;
  for (const std::string& input : options.merge_inputs) {
    core::SweepCache cache;
    std::string error;
    require(cache.load(input, &error), error);
    const core::SweepCacheStats stats = cache.stats();
    std::fprintf(stderr, "cache-merge: loaded %llu entr%s from %s\n",
                 static_cast<unsigned long long>(stats.entries_loaded),
                 stats.entries_loaded == 1 ? "y" : "ies", input.c_str());
    merged.merge_from(cache);
  }
  if (options.cache_cap) merged.set_save_size_cap(*options.cache_cap);
  std::string error;
  require(merged.save(options.file, &error), error);
  std::printf("cache-merge: wrote %llu cell(s) from %zu input(s) to %s\n",
              static_cast<unsigned long long>(merged.stats().cells),
              options.merge_inputs.size(), options.file.c_str());
  return 0;
}

int cmd_dump_tac(const Options& options) {
  ir::TacProgram tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) minic::optimize(tac);
  std::printf("%s", tac.to_string().c_str());
  return 0;
}

int cmd_dump_dot(const Options& options) {
  ir::TacProgram tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) minic::optimize(tac);
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  std::printf("%s", ir::to_dot(cdfg).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options options = parse_args(argc, argv);
    if (options.command == "analyze") return cmd_analyze(options);
    if (options.command == "partition") return cmd_partition(options);
    if (options.command == "explore") return cmd_explore(options);
    if (options.command == "serve") return cmd_serve(options, argc, argv);
    if (options.command == "worker") return cmd_worker(options);
    if (options.command == "dump-tac") return cmd_dump_tac(options);
    if (options.command == "dump-dot") return cmd_dump_dot(options);
    if (options.command == "cache-merge") return cmd_cache_merge(options);
    usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "amdrelc: %s\n", e.what());
    return 1;
  }
}
