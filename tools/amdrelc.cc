// amdrelc — command-line driver for the partitioning framework.
//
//   amdrelc analyze   <file.mc> [options]   Table-1 style kernel analysis
//   amdrelc partition <file.mc> [options]   run the full methodology
//   amdrelc explore   <file.mc> [options]   constraint x strategy x
//                                           ordering design-space sweep
//   amdrelc dump-tac  <file.mc> [options]   lowered three-address code
//   amdrelc dump-dot  <file.mc> [options]   CDFG in Graphviz DOT
//
// options:
//   --area N         usable fine-grain area A_FPGA       (default 1500)
//   --cgcs N         number of 2x2 CGCs                  (default 2)
//   --constraint N   timing constraint in FPGA cycles    (default: half of
//                    the all-fine-grain cycles)
//   --strategy S     partitioning strategy: greedy | exhaustive |
//                    annealing                           (default greedy)
//   --ordering O     kernel ordering: weight | benefit | code | random
//                                                        (default weight)
//   --seed N         seed for random ordering / annealing (default 1)
//   --input NAME=v0,v1,...   initialize array NAME before profiling
//   --optimize       run the TAC optimizer before analysis
//   --top N          rows to print in analyze            (default 10)
// explore only:
//   --constraints c1,c2,...  constraint sweep (default: 1/4, 1/2 and 3/4
//                    of the all-fine-grain cycles)
//   --strategies s1,s2,...   strategies to sweep  (default: all)
//   --orderings o1,o2,...    orderings to sweep   (default: weight,benefit)
//   --threads N      worker threads               (default 2)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/kernels.h"
#include "core/explorer.h"
#include "core/methodology.h"
#include "core/report.h"
#include "core/strategy.h"
#include "interp/interpreter.h"
#include "ir/build_cdfg.h"
#include "ir/dot.h"
#include "minic/frontend.h"
#include "minic/optimizer.h"
#include "support/error.h"

using namespace amdrel;

namespace {

struct Options {
  std::string command;
  std::string file;
  double area = 1500;
  int cgcs = 2;
  std::optional<std::int64_t> constraint;
  std::optional<core::StrategyKind> strategy;
  std::optional<core::KernelOrdering> ordering;
  std::uint64_t seed = 1;
  bool optimize = false;
  int top = 10;
  std::vector<std::pair<std::string, std::vector<std::int32_t>>> inputs;

  // explore sweep lists (empty = the documented defaults)
  std::vector<std::int64_t> constraints;
  std::vector<core::StrategyKind> strategies;
  std::vector<core::KernelOrdering> orderings;
  int threads = 2;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: amdrelc <analyze|partition|explore|dump-tac|dump-dot> "
               "<file.mc> [--area N] [--cgcs N] [--constraint N] "
               "[--strategy greedy|exhaustive|annealing] "
               "[--ordering weight|benefit|code|random] [--seed N] "
               "[--input NAME=v0,v1,...] [--optimize] [--top N] "
               "[--constraints c1,c2,...] [--strategies s1,s2,...] "
               "[--orderings o1,o2,...] [--threads N]\n");
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& spec) {
  std::vector<std::string> items;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) items.push_back(item);
  return items;
}

// Malformed numeric flag values are usage errors, matching how unknown
// strategy/ordering names are handled (std::sto* would otherwise throw
// std::invalid_argument past main's Error handler).
std::int64_t parse_i64(const std::string& text) {
  try {
    return std::stoll(text);
  } catch (const std::exception&) {
    usage();
  }
}

std::uint64_t parse_u64(const std::string& text) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    usage();
  }
}

int parse_int(const std::string& text) {
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    usage();
  }
}

double parse_double(const std::string& text) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    usage();
  }
}

Options parse_args(int argc, char** argv) {
  if (argc < 3) usage();
  Options options;
  options.command = argv[1];
  options.file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--area") {
      options.area = parse_double(next());
    } else if (arg == "--cgcs") {
      options.cgcs = parse_int(next());
    } else if (arg == "--constraint") {
      options.constraint = parse_i64(next());
    } else if (arg == "--strategy") {
      options.strategy = core::parse_strategy(next());
      if (!options.strategy) usage();
    } else if (arg == "--ordering") {
      options.ordering = core::parse_kernel_ordering(next());
      if (!options.ordering) usage();
    } else if (arg == "--seed") {
      options.seed = parse_u64(next());
    } else if (arg == "--threads") {
      options.threads = parse_int(next());
    } else if (arg == "--constraints") {
      for (const std::string& item : split_list(next())) {
        options.constraints.push_back(parse_i64(item));
      }
    } else if (arg == "--strategies") {
      for (const std::string& item : split_list(next())) {
        const auto strategy = core::parse_strategy(item);
        if (!strategy) usage();
        options.strategies.push_back(*strategy);
      }
    } else if (arg == "--orderings") {
      for (const std::string& item : split_list(next())) {
        const auto ordering = core::parse_kernel_ordering(item);
        if (!ordering) usage();
        options.orderings.push_back(*ordering);
      }
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--top") {
      options.top = parse_int(next());
    } else if (arg == "--input") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos) usage();
      std::vector<std::int32_t> values;
      std::stringstream ss(spec.substr(eq + 1));
      std::string item;
      while (std::getline(ss, item, ',')) {
        values.push_back(static_cast<std::int32_t>(parse_i64(item)));
      }
      options.inputs.emplace_back(spec.substr(0, eq), std::move(values));
    } else {
      usage();
    }
  }
  return options;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct CompiledApp {
  ir::TacProgram tac;
  ir::Cdfg cdfg{"app"};
  ir::ProfileData profile;
};

CompiledApp compile_and_profile(const Options& options) {
  CompiledApp app;
  app.tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) {
    const int rewrites = minic::optimize(app.tac);
    std::fprintf(stderr, "optimizer: %d rewrites\n", rewrites);
  }
  interp::Interpreter interp(app.tac);
  for (const auto& [name, values] : options.inputs) {
    interp.set_input(name, values);
  }
  const auto run = interp.run(4'000'000'000ULL);
  std::fprintf(stderr,
               "profiled: %llu instructions, main returned %d\n",
               static_cast<unsigned long long>(run.instructions_executed),
               run.return_value);
  app.profile = run.profile;
  app.cdfg = ir::build_cdfg(app.tac);
  return app;
}

int cmd_analyze(const Options& options) {
  const CompiledApp app = compile_and_profile(options);
  const auto kernels = analysis::extract_kernels(app.cdfg, app.profile);
  core::TextTable table(
      {"rank", "block", "exec freq", "op weight", "total weight", "depth"});
  for (std::size_t i = 0; i < kernels.size() &&
                          i < static_cast<std::size_t>(options.top);
       ++i) {
    const auto& k = kernels[i];
    table.add_row({std::to_string(i + 1), app.cdfg.block(k.block).name,
                   std::to_string(k.exec_freq), std::to_string(k.op_weight),
                   core::with_thousands(k.total_weight),
                   std::to_string(k.loop_depth)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

core::MethodologyOptions methodology_options(const Options& options) {
  core::MethodologyOptions mo;
  mo.strategy = options.strategy.value_or(core::StrategyKind::kGreedyPaper);
  mo.ordering =
      options.ordering.value_or(core::KernelOrdering::kWeightDescending);
  mo.random_seed = options.seed;
  return mo;
}

int cmd_partition(const Options& options) {
  const CompiledApp app = compile_and_profile(options);
  const auto p = platform::make_paper_platform(options.area, options.cgcs);
  core::HybridMapper mapper(app.cdfg, p);
  const std::int64_t all_fine = mapper.all_fine_cycles(app.profile);
  const std::int64_t constraint = options.constraint.value_or(all_fine / 2);
  const core::MethodologyOptions mo = methodology_options(options);
  const auto report = core::run_methodology(mapper, app.profile, constraint, mo);
  std::fprintf(stderr, "strategy: %s, ordering: %s\n",
               core::strategy_name(mo.strategy),
               core::kernel_ordering_name(mo.ordering));
  std::printf("%s", core::describe(report, app.cdfg).c_str());
  return report.met ? 0 : 1;
}

int cmd_explore(const Options& options) {
  const CompiledApp app = compile_and_profile(options);
  const auto p = platform::make_paper_platform(options.area, options.cgcs);

  // Plural flags win; a singular --constraint/--strategy/--ordering
  // narrows the sweep to that one value rather than being ignored.
  core::ExploreSpec spec;
  spec.base = methodology_options(options);
  spec.threads = options.threads;
  spec.constraints = options.constraints;  // empty = explorer's defaults
  if (spec.constraints.empty() && options.constraint) {
    spec.constraints = {*options.constraint};
  }
  if (!options.strategies.empty()) {
    spec.strategies = options.strategies;
  } else if (options.strategy) {
    spec.strategies = {*options.strategy};
  }
  if (!options.orderings.empty()) {
    spec.orderings = options.orderings;
  } else if (options.ordering) {
    spec.orderings = {*options.ordering};
  } else {
    spec.orderings = {core::KernelOrdering::kWeightDescending,
                      core::KernelOrdering::kBenefitDescending};
  }

  const auto summary =
      core::explore_design_space(app.cdfg, app.profile, p, spec);
  std::printf("design-space exploration: %s (A_FPGA=%g, %d CGCs, "
              "%d thread(s))\n",
              app.cdfg.name().c_str(), options.area, options.cgcs,
              options.threads);
  std::printf("%s", core::describe(summary).c_str());
  return 0;
}

int cmd_dump_tac(const Options& options) {
  ir::TacProgram tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) minic::optimize(tac);
  std::printf("%s", tac.to_string().c_str());
  return 0;
}

int cmd_dump_dot(const Options& options) {
  ir::TacProgram tac = minic::compile(read_file(options.file), options.file);
  if (options.optimize) minic::optimize(tac);
  const ir::Cdfg cdfg = ir::build_cdfg(tac);
  std::printf("%s", ir::to_dot(cdfg).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options options = parse_args(argc, argv);
    if (options.command == "analyze") return cmd_analyze(options);
    if (options.command == "partition") return cmd_partition(options);
    if (options.command == "explore") return cmd_explore(options);
    if (options.command == "dump-tac") return cmd_dump_tac(options);
    if (options.command == "dump-dot") return cmd_dump_dot(options);
    usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "amdrelc: %s\n", e.what());
    return 1;
  }
}
