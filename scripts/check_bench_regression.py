#!/usr/bin/env python3
"""Benchmark regression gate over Google Benchmark JSON output.

Check mode (the CI gate):

    check_bench_regression.py --baseline bench/baselines/BENCH_sweep.json \
        [--tolerance-pct 25] [--no-normalize] current1.json [current2.json ...]

Every benchmark present in both the baseline and a current file is
compared by real_time (normalized to nanoseconds via its time_unit).
Because CI runners and developer machines differ in absolute speed, the
comparison is RELATIVE by default: the per-benchmark current/baseline
ratio is divided by the median ratio across all shared benchmarks, so
the gate flags a benchmark that regressed against its peers rather than
a uniformly slower machine. A benchmark fails when its normalized ratio
exceeds 1 + tolerance/100; any failure exits 1. --no-normalize compares
raw times (useful when baseline and current ran on the same machine).
A global slowdown shifts the median instead of any single ratio, so it
is deliberately NOT flagged — the gate exists to catch code making one
path slower, not runner weather.

Benchmarks missing from the baseline (newly added) or from the current
run (removed/renamed) are reported but never fail the gate; refresh the
baseline to pick them up.

Merge mode (refreshing the committed baseline):

    check_bench_regression.py --merge out.json in1.json [in2.json ...]

concatenates the inputs' "benchmarks" arrays (first input's context is
kept) so several bench binaries share one baseline file.
"""

import argparse
import json
import statistics
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns (document, {benchmark run_name: real_time in ns}).

    With --benchmark_repetitions the JSON carries one row per repetition
    plus mean/median/stddev (and BigO/RMS) aggregate rows. The median
    aggregate is by far the most noise-robust single number, so it wins
    over the per-repetition rows whenever present; without repetitions
    the plain iteration row is used. Non-median aggregates never carry a
    comparable real_time and are skipped.
    """
    with open(path) as f:
        doc = json.load(f)
    plain = {}
    medians = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            unit = bench.get("time_unit", "ns")
            medians[bench["run_name"]] = (
                bench["real_time"] * TIME_UNIT_NS[unit])
        else:
            unit = bench.get("time_unit", "ns")
            # Repetition rows share a run_name; keep the first, the
            # median aggregate overrides anyway.
            plain.setdefault(bench.get("run_name", bench["name"]),
                             bench["real_time"] * TIME_UNIT_NS[unit])
    plain.update(medians)
    return doc, plain


def merge(out_path, in_paths):
    merged = None
    for path in in_paths:
        doc, _ = load_benchmarks(path)
        if merged is None:
            merged = doc
        else:
            merged.setdefault("benchmarks", []).extend(
                doc.get("benchmarks", []))
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    count = len(merged.get("benchmarks", []))
    print(f"merged {len(in_paths)} file(s), {count} benchmark(s) "
          f"-> {out_path}")
    return 0


def check(baseline_path, current_paths, tolerance_pct, normalize):
    _, baseline = load_benchmarks(baseline_path)
    current = {}
    for path in current_paths:
        _, benches = load_benchmarks(path)
        current.update(benches)

    shared = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))
    for name in new:
        print(f"note: {name} not in baseline (new benchmark, skipped)")
    for name in gone:
        print(f"note: {name} only in baseline (removed/renamed, skipped)")
    if not shared:
        print("error: no benchmarks shared with the baseline", file=sys.stderr)
        return 2

    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = statistics.median(ratios.values()) if normalize else 1.0
    if normalize:
        print(f"machine-speed normalization: median current/baseline "
              f"ratio {scale:.3f}")

    limit = 1.0 + tolerance_pct / 100.0
    failures = []
    width = max(len(name) for name in shared)
    for name in shared:
        normalized = ratios[name] / scale
        verdict = "ok"
        if normalized > limit:
            verdict = f"REGRESSION (> +{tolerance_pct:g}%)"
            failures.append(name)
        print(f"{name:<{width}}  baseline {baseline[name] / 1e6:10.3f} ms  "
              f"current {current[name] / 1e6:10.3f} ms  "
              f"normalized x{normalized:.3f}  {verdict}")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{tolerance_pct:g}%: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared benchmark(s) within "
          f"{tolerance_pct:g}% of baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="current bench JSON files (or merge inputs)")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--tolerance-pct", type=float, default=25.0,
                        help="allowed slowdown per benchmark (default 25)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw times instead of machine-"
                             "normalized ratios")
    parser.add_argument("--merge", metavar="OUT",
                        help="merge inputs' benchmark arrays into OUT")
    args = parser.parse_args()

    if bool(args.baseline) == bool(args.merge):
        parser.error("exactly one of --baseline or --merge is required")
    if args.merge:
        return merge(args.merge, args.files)
    return check(args.baseline, args.files, args.tolerance_pct,
                 not args.no_normalize)


if __name__ == "__main__":
    sys.exit(main())
