#!/usr/bin/env sh
# Profiles the corpus-sweep hot path (bench_corpus_sweep, cold-cache
# filter by default) and prints a flat hot-spot report.
#
#   scripts/profile_sweep.sh [build-dir] [benchmark-filter]
#
# Defaults: build-dir "build", filter "ColdCache". Uses `perf record`
# when available; falls back to a gprof build (-pg, its own build tree
# under <build-dir>-gprof) when perf is missing — containers and CI
# runners often lack perf_event access, and gprof needs no kernel
# support. Artifacts (perf.data / gmon.out and the text report) land in
# <build-dir>/profile/.
set -eu

BUILD_DIR=${1:-build}
FILTER=${2:-ColdCache}
SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
OUT_DIR="$SRC_DIR/$BUILD_DIR/profile"
mkdir -p "$OUT_DIR"

BENCH_ARGS="--benchmark_filter=$FILTER --benchmark_repetitions=1"

if command -v perf >/dev/null 2>&1 &&
    perf record -o /dev/null -- true >/dev/null 2>&1; then
  echo "== perf record over bench_corpus_sweep ($FILTER) =="
  cmake --build "$SRC_DIR/$BUILD_DIR" --target bench_corpus_sweep -j
  perf record -g -o "$OUT_DIR/perf.data" -- \
    "$SRC_DIR/$BUILD_DIR/bench/bench_corpus_sweep" $BENCH_ARGS
  perf report -i "$OUT_DIR/perf.data" --stdio --percent-limit 1 \
    > "$OUT_DIR/perf_report.txt"
  head -60 "$OUT_DIR/perf_report.txt"
  echo "full report: $OUT_DIR/perf_report.txt"
  exit 0
fi

echo "== perf unavailable; falling back to gprof (-pg instrumented build) =="
GPROF_DIR="$SRC_DIR/$BUILD_DIR-gprof"
cmake -B "$GPROF_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-pg" -DCMAKE_EXE_LINKER_FLAGS="-pg" >/dev/null
cmake --build "$GPROF_DIR" --target bench_corpus_sweep -j
(
  cd "$OUT_DIR"
  "$GPROF_DIR/bench/bench_corpus_sweep" $BENCH_ARGS
)
gprof "$GPROF_DIR/bench/bench_corpus_sweep" "$OUT_DIR/gmon.out" \
  > "$OUT_DIR/gprof_report.txt"
awk '/^ *time/{found=1} found' "$OUT_DIR/gprof_report.txt" | head -40
echo "full report: $OUT_DIR/gprof_report.txt"
