#!/bin/sh
# Drives one loopback-TCP distributed sweep for the ctest/CI legs:
#
#   run_tcp_sweep.sh AMDRELC LOG "SERVE_EXTRA" "W0_EXTRA" "W1_EXTRA" \
#     SHARED_FLAGS...
#
# Starts `amdrelc serve --listen 127.0.0.1:0 SHARED SERVE_EXTRA` (stderr
# to LOG), scrapes the announced ephemeral port from LOG, dials in two
# `amdrelc worker --connect` processes (stderr to LOG.w0/LOG.w1, each
# with its own extra flags — fault injection rides W*_EXTRA), and exits
# with the coordinator's status. Worker exit codes are deliberately
# ignored: a SIGKILLed worker is the scenario under test.
set -u

if [ $# -lt 5 ]; then
  echo "usage: run_tcp_sweep.sh AMDRELC LOG SERVE_EXTRA W0_EXTRA W1_EXTRA \
FLAGS..." >&2
  exit 2
fi

amdrelc=$1
log=$2
serve_extra=$3
w0_extra=$4
w1_extra=$5
shift 5

rm -f "$log" "$log.w0" "$log.w1"

# shellcheck disable=SC2086  # the extras are intentionally word-split
"$amdrelc" serve "$@" $serve_extra --listen 127.0.0.1:0 \
  >/dev/null 2>"$log" &
serve_pid=$!

port=""
i=0
while [ "$i" -lt 100 ]; do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "$log" 2>/dev/null)
  [ -n "$port" ] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "run_tcp_sweep: serve died before listening:" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$port" ]; then
  echo "run_tcp_sweep: no listening port announced in $log" >&2
  kill "$serve_pid" 2>/dev/null
  exit 1
fi

# shellcheck disable=SC2086
"$amdrelc" worker "$@" $w0_extra --connect "127.0.0.1:$port" \
  >/dev/null 2>"$log.w0" &
# shellcheck disable=SC2086
"$amdrelc" worker "$@" $w1_extra --connect "127.0.0.1:$port" \
  >/dev/null 2>"$log.w1" &

wait "$serve_pid"
status=$?
wait
exit "$status"
