#pragma once

#include <cstdint>

#include "ir/cdfg.h"
#include "ir/profile.h"
#include "synth/dfg_generator.h"

namespace amdrel::synth {

/// A synthetic application: structure plus the (consistent) profile a run
/// over its loop nest would produce.
struct SyntheticApp {
  ir::Cdfg cdfg{"synthetic"};
  ir::ProfileData profile;
};

/// Parameters of the random loop-nest generator used by property tests
/// and scaling benches.
struct CdfgGenConfig {
  int segments = 4;          ///< top-level regions (block or loop)
  int max_loop_depth = 2;    ///< deepest loop nesting generated
  int max_blocks_per_body = 3;
  std::int64_t min_trip = 4;
  std::int64_t max_trip = 64;

  // Ranges for per-block op counts (uniform).
  int min_alu = 2, max_alu = 30;
  int min_mul = 0, max_mul = 8;
  int min_mem = 0, max_mem = 8;
  double div_probability = 0.0;  ///< chance a block contains one division

  int target_width = 4;
  std::uint64_t seed = 1;
};

/// Generates a CDFG shaped like structured code (sequences of basic blocks
/// and counted loops, possibly nested) together with the execution profile
/// implied by the loop trip counts. Loop headers/latches are real blocks,
/// so Cdfg::analyze_loops() discovers the intended nesting.
SyntheticApp generate_app(const CdfgGenConfig& config);

}  // namespace amdrel::synth
