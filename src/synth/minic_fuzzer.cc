#include "synth/minic_fuzzer.h"

#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

namespace amdrel::synth {

namespace {

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(const FuzzConfig& config)
      : config_(config), rng_(config.seed) {}

  std::string run() {
    os_ << "int in[16];\nint out[16];\nint g[32];\n";
    os_ << "const int lut[8] = {3, -7, 11, 2, -1, 9, 4, 6};\n\n";

    for (int f = 0; f < config_.functions; ++f) {
      emit_function(f);
    }
    emit_main();
    return os_.str();
  }

 private:
  int pick(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(rng_);
  }
  bool chance(double p) {
    std::bernoulli_distribution dist(p);
    return dist(rng_);
  }

  // ---- scopes of scalar variables ----------------------------------------
  // Loop counters are readable but never assignment targets, so every
  // generated loop provably terminates.
  struct Var {
    std::string name;
    bool mutable_target = true;
  };
  std::vector<std::vector<Var>> scopes_;
  int next_var_ = 0;

  std::string fresh_var() { return "v" + std::to_string(next_var_++); }
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  void declare(const std::string& name, bool mutable_target = true) {
    scopes_.back().push_back({name, mutable_target});
  }
  std::vector<std::string> visible(bool mutables_only) const {
    std::vector<std::string> names;
    for (const auto& scope : scopes_) {
      for (const auto& var : scope) {
        if (!mutables_only || var.mutable_target) names.push_back(var.name);
      }
    }
    return names;
  }
  bool any_var() const { return !visible(false).empty(); }
  std::string random_var() {
    const auto names = visible(false);
    return names[pick(0, static_cast<int>(names.size()) - 1)];
  }
  bool any_mutable() const { return !visible(true).empty(); }
  std::string random_mutable() {
    const auto names = visible(true);
    return names[pick(0, static_cast<int>(names.size()) - 1)];
  }

  // ---- expressions --------------------------------------------------------
  std::string expr(int depth) {
    if (depth <= 0 || chance(0.25)) return leaf();
    switch (pick(0, 9)) {
      case 0: return "(" + expr(depth - 1) + " + " + expr(depth - 1) + ")";
      case 1: return "(" + expr(depth - 1) + " - " + expr(depth - 1) + ")";
      case 2: return "(" + expr(depth - 1) + " * " + expr(depth - 1) + ")";
      case 3:
        // guarded division: divisor in [1, 8]
        return "(" + expr(depth - 1) + " / ((" + expr(depth - 1) +
               " & 7) + 1))";
      case 4:
        return "(" + expr(depth - 1) + " % ((" + expr(depth - 1) +
               " & 7) + 1))";
      case 5: return "(" + expr(depth - 1) + " ^ " + expr(depth - 1) + ")";
      case 6: return "(" + expr(depth - 1) + " >> " +
                     std::to_string(pick(0, 7)) + ")";
      case 7: return "(" + expr(depth - 1) + (chance(0.5) ? " < " : " == ") +
                     expr(depth - 1) + ")";
      case 8:
        // the space avoids "--64" lexing as a decrement token
        return std::string(chance(0.5) ? "(- " : "(~ ") + expr(depth - 1) +
               ")";
      case 9:
        if (!callable_.empty() && chance(0.7)) {
          const auto& name = callable_[pick(
              0, static_cast<int>(callable_.size()) - 1)];
          return name + "(" + expr(depth - 1) + ", " + expr(depth - 1) + ")";
        }
        return "(" + expr(depth - 1) + (chance(0.5) ? " && " : " || ") +
               expr(depth - 1) + ")";
    }
    return leaf();
  }

  std::string leaf() {
    switch (pick(0, 4)) {
      case 0: return std::to_string(pick(-64, 64));
      case 1:
        if (any_var()) return random_var();
        return std::to_string(pick(0, 9));
      case 2: return "g[(" + simple() + ") & 31]";
      case 3: return "in[(" + simple() + ") & 15]";
      default: return "lut[(" + simple() + ") & 7]";
    }
  }

  std::string simple() {
    if (any_var() && chance(0.6)) return random_var();
    return std::to_string(pick(0, 31));
  }

  // ---- statements -----------------------------------------------------------
  void line(int indent, const std::string& text) {
    for (int i = 0; i < indent; ++i) os_ << "  ";
    os_ << text << "\n";
  }

  void emit_statement(int indent, int loop_nest, int budget) {
    switch (pick(0, 7)) {
      case 0: {  // declaration
        const std::string name = fresh_var();
        line(indent, "int " + name + " = " + expr(config_.max_expr_depth) +
                         ";");
        declare(name);
        break;
      }
      case 1:  // scalar assignment
        if (any_mutable()) {
          line(indent, random_mutable() + " = " +
                           expr(config_.max_expr_depth) + ";");
        } else {
          line(indent, "g[0] = " + expr(2) + ";");
        }
        break;
      case 2:  // array store
        line(indent, "g[(" + simple() + ") & 31] = " +
                         expr(config_.max_expr_depth) + ";");
        break;
      case 3:  // compound assignment
        if (any_mutable()) {
          const char* ops[] = {"+=", "-=", "*=", "^=", "|=", "&="};
          line(indent, random_mutable() + " " + ops[pick(0, 5)] + " " +
                           expr(2) + ";");
        }
        break;
      case 4: {  // if / else
        line(indent, "if (" + expr(2) + ") {");
        push_scope();
        emit_body(indent + 1, loop_nest, budget / 2);
        pop_scope();
        if (chance(0.5)) {
          line(indent, "} else {");
          push_scope();
          emit_body(indent + 1, loop_nest, budget / 2);
          pop_scope();
        }
        line(indent, "}");
        break;
      }
      case 5: {  // counted for loop
        if (loop_nest >= config_.max_loop_nest) break;
        const std::string i = fresh_var();
        line(indent, "for (int " + i + " = 0; " + i + " < " +
                         std::to_string(pick(2, 8)) + "; " + i + "++) {");
        push_scope();
        declare(i, /*mutable_target=*/false);
        emit_body(indent + 1, loop_nest + 1, budget / 2);
        pop_scope();
        line(indent, "}");
        break;
      }
      case 6: {  // bounded while with explicit counter
        if (loop_nest >= config_.max_loop_nest) break;
        const std::string w = fresh_var();
        line(indent, "int " + w + " = " + std::to_string(pick(1, 6)) + ";");
        declare(w, /*mutable_target=*/false);
        line(indent, "while (" + w + " > 0) {");
        push_scope();
        emit_body(indent + 1, loop_nest + 1, budget / 2);
        pop_scope();
        line(indent + 1, w + "--;");
        line(indent, "}");
        break;
      }
      default:  // output store
        line(indent, "out[(" + simple() + ") & 15] = " + expr(2) + ";");
        break;
    }
  }

  void emit_body(int indent, int loop_nest, int budget) {
    const int count = std::max(1, std::min(budget, pick(1, 4)));
    for (int s = 0; s < count; ++s) {
      emit_statement(indent, loop_nest, budget);
    }
  }

  void emit_function(int index) {
    const std::string name = "f" + std::to_string(index);
    os_ << "int " << name << "(int a, int b) {\n";
    push_scope();
    declare("a");
    declare("b");
    for (int s = 0; s < config_.statements / 2; ++s) {
      emit_statement(1, config_.max_loop_nest - 1, 2);
    }
    line(1, "return " + expr(config_.max_expr_depth) + ";");
    pop_scope();
    os_ << "}\n\n";
    callable_.push_back(name);
  }

  void emit_main() {
    os_ << "int main() {\n";
    push_scope();
    for (int s = 0; s < config_.statements; ++s) {
      emit_statement(1, 0, 4);
    }
    line(1, "int check = 0;");
    declare("check");
    line(1, "for (int i = 0; i < 16; i++) { check ^= out[i] + i; }");
    line(1, "for (int i = 0; i < 32; i++) { check += g[i] >> 3; }");
    line(1, "return check;");
    pop_scope();
    os_ << "}\n";
  }

  FuzzConfig config_;
  std::mt19937_64 rng_;
  std::ostringstream os_;
  std::vector<std::string> callable_;
};

}  // namespace

std::string generate_minic_program(const FuzzConfig& config) {
  return ProgramFuzzer(config).run();
}

}  // namespace amdrel::synth
