#pragma once

#include <cstdint>

#include "ir/dfg.h"

namespace amdrel::synth {

/// Parameters of the random layered-DAG generator. Counts are exact (the
/// paper-calibrated workload models rely on reproducing Table 1's op
/// weights precisely); the shape knobs control how much instruction-level
/// parallelism the DFG exposes, which is what the fine/coarse mappers
/// trade off.
struct DfgGenConfig {
  int alu_ops = 20;
  int mul_ops = 4;
  int div_ops = 0;
  int load_ops = 4;
  int store_ops = 2;

  int live_ins = 4;    ///< kInput nodes (values produced by other blocks)
  int live_outs = 2;   ///< kOutput markers added on sink values
  int consts = 2;

  /// Target number of parallel operations per ASAP level. 1 produces a
  /// chain, large values produce wide/shallow graphs.
  int target_width = 4;

  std::uint64_t seed = 1;
};

/// Generates a connected, deterministic (seeded) DFG with exactly the
/// requested operation mix. Loads consume an address value; stores consume
/// an address and a data value; every non-source node draws its operands
/// from earlier layers with a bias that realizes `target_width`.
ir::Dfg generate_dfg(const DfgGenConfig& config);

}  // namespace amdrel::synth
