#pragma once

#include <cstdint>
#include <string>

namespace amdrel::synth {

struct FuzzConfig {
  int functions = 2;        ///< helper functions besides main
  int statements = 10;      ///< statements per body
  int max_expr_depth = 3;
  int max_loop_nest = 2;
  std::uint64_t seed = 1;
};

/// Generates a random, well-typed, terminating MiniC program for
/// differential testing:
///  * all array indices are masked to the array size, so no out-of-bounds
///    traps;
///  * divisors are forced non-zero (and never -1 with INT_MIN), so no
///    division traps;
///  * loops have constant bounds and bounded nesting, so execution always
///    terminates within a small instruction budget;
///  * main reads the `in` array and writes `out`, returning a checksum.
///
/// Used by the property tests to check that the optimizer preserves
/// semantics and that compilation + interpretation are deterministic.
std::string generate_minic_program(const FuzzConfig& config);

}  // namespace amdrel::synth
