#include "synth/cdfg_generator.h"

#include <random>

#include "support/error.h"

namespace amdrel::synth {

namespace {

using ir::BlockId;

class AppBuilder {
 public:
  AppBuilder(const CdfgGenConfig& config)
      : config_(config), rng_(config.seed) {}

  SyntheticApp build() {
    const BlockId entry = new_block(1, /*compute=*/false);
    app_.cdfg.set_entry(entry);
    BlockId tail = entry;
    for (int s = 0; s < config_.segments; ++s) {
      tail = emit_region(tail, /*multiplier=*/1, /*depth=*/0);
    }
    const BlockId exit = new_block(1, /*compute=*/false);
    app_.cdfg.add_edge(tail, exit);
    app_.cdfg.analyze_loops();
    app_.cdfg.validate();
    return std::move(app_);
  }

 private:
  BlockId new_block(std::int64_t exec_count, bool compute) {
    const BlockId id = app_.cdfg.add_block();
    if (compute) {
      DfgGenConfig dfg_config;
      dfg_config.alu_ops = uniform(config_.min_alu, config_.max_alu);
      dfg_config.mul_ops = uniform(config_.min_mul, config_.max_mul);
      const int mem = uniform(config_.min_mem, config_.max_mem);
      dfg_config.load_ops = mem - mem / 3;
      dfg_config.store_ops = mem / 3;
      dfg_config.div_ops = bernoulli(config_.div_probability) ? 1 : 0;
      dfg_config.live_ins = uniform(2, 5);
      dfg_config.live_outs = uniform(1, 3);
      dfg_config.target_width = config_.target_width;
      dfg_config.seed = rng_();
      app_.cdfg.block(id).dfg = generate_dfg(dfg_config);
    } else {
      // Control-only glue block: a compare feeding the branch.
      ir::Dfg& dfg = app_.cdfg.block(id).dfg;
      const auto in = dfg.add_node(ir::OpKind::kInput, {}, "i");
      const auto bound = dfg.add_const(7, "bound");
      dfg.add_node(ir::OpKind::kCmpLt, {in, bound}, "cond");
    }
    app_.profile.set_count(id, static_cast<std::uint64_t>(exec_count));
    return id;
  }

  /// Appends one region (plain block or loop) after `pred`; returns the
  /// region's single exit block.
  BlockId emit_region(BlockId pred, std::int64_t multiplier, int depth) {
    const bool make_loop =
        depth < config_.max_loop_depth && bernoulli(0.6);
    if (!make_loop) {
      const BlockId bb = new_block(multiplier, /*compute=*/true);
      app_.cdfg.add_edge(pred, bb);
      return bb;
    }
    const std::int64_t trip = uniform64(config_.min_trip, config_.max_trip);
    // header executes (trip + 1) * multiplier times (loop test), the body
    // trip * multiplier times.
    const BlockId header =
        new_block((trip + 1) * multiplier, /*compute=*/false);
    app_.cdfg.add_edge(pred, header);

    BlockId tail = header;
    const int body_blocks = uniform(1, config_.max_blocks_per_body);
    for (int i = 0; i < body_blocks; ++i) {
      tail = emit_region(tail, trip * multiplier, depth + 1);
    }
    const BlockId latch = new_block(trip * multiplier, /*compute=*/true);
    app_.cdfg.add_edge(tail, latch);
    app_.cdfg.add_edge(latch, header);  // back edge
    // Loop exit: a fresh block the header branches to.
    const BlockId exit = new_block(multiplier, /*compute=*/false);
    app_.cdfg.add_edge(header, exit);
    return exit;
  }

  int uniform(int lo, int hi) {
    require(lo <= hi, "generate_app: bad op count range");
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(rng_);
  }

  std::int64_t uniform64(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi && lo >= 1, "generate_app: bad trip count range");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(rng_);
  }

  bool bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(rng_);
  }

  CdfgGenConfig config_;
  std::mt19937_64 rng_;
  SyntheticApp app_;
};

}  // namespace

SyntheticApp generate_app(const CdfgGenConfig& config) {
  return AppBuilder(config).build();
}

}  // namespace amdrel::synth
