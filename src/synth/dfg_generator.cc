#include "synth/dfg_generator.h"

#include <algorithm>
#include <random>
#include <vector>

#include "support/error.h"

namespace amdrel::synth {

namespace {

using ir::Dfg;
using ir::NodeId;
using ir::OpKind;

OpKind pick_alu_kind(std::mt19937_64& rng) {
  static constexpr OpKind kinds[] = {
      OpKind::kAdd, OpKind::kSub, OpKind::kAdd, OpKind::kAdd,
      OpKind::kXor, OpKind::kAnd, OpKind::kOr,  OpKind::kShl,
      OpKind::kShr, OpKind::kSub, OpKind::kCmpLt, OpKind::kAdd,
  };
  std::uniform_int_distribution<std::size_t> dist(0, std::size(kinds) - 1);
  return kinds[dist(rng)];
}

}  // namespace

ir::Dfg generate_dfg(const DfgGenConfig& config) {
  require(config.live_ins + config.consts > 0,
          "generate_dfg: need at least one source value");
  require(config.target_width >= 1, "generate_dfg: target_width must be >= 1");

  std::mt19937_64 rng(config.seed);
  Dfg dfg;

  // Source values.
  std::vector<NodeId> values;  // nodes producing a consumable value
  for (int i = 0; i < config.live_ins; ++i) {
    values.push_back(dfg.add_node(OpKind::kInput, {}, "in" + std::to_string(i)));
  }
  for (int i = 0; i < config.consts; ++i) {
    std::uniform_int_distribution<std::int64_t> cdist(-128, 127);
    values.push_back(dfg.add_const(cdist(rng), "c" + std::to_string(i)));
  }

  // Multiset of operation kinds, shuffled so classes interleave.
  std::vector<OpKind> kinds;
  for (int i = 0; i < config.alu_ops; ++i) kinds.push_back(pick_alu_kind(rng));
  for (int i = 0; i < config.mul_ops; ++i) kinds.push_back(OpKind::kMul);
  for (int i = 0; i < config.div_ops; ++i) kinds.push_back(OpKind::kDiv);
  for (int i = 0; i < config.load_ops; ++i) kinds.push_back(OpKind::kLoad);
  std::shuffle(kinds.begin(), kinds.end(), rng);
  // Stores go last so they can consume computed values.
  for (int i = 0; i < config.store_ops; ++i) kinds.push_back(OpKind::kStore);

  // Layered construction: each layer takes ~target_width ops whose
  // operands come from the previous layer (with some reaching further
  // back), so the ASAP depth tracks ops / target_width.
  std::vector<NodeId> prev_layer = values;
  std::vector<NodeId> current_layer;
  int in_layer = 0;

  auto pick_operand = [&]() -> NodeId {
    // 70%: from the previous layer (creates depth); 30%: any earlier value
    // (creates cross-layer parallelism and reconvergence).
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (!prev_layer.empty() && coin(rng) < 0.7) {
      std::uniform_int_distribution<std::size_t> dist(0, prev_layer.size() - 1);
      return prev_layer[dist(rng)];
    }
    std::uniform_int_distribution<std::size_t> dist(0, values.size() - 1);
    return values[dist(rng)];
  };

  for (OpKind kind : kinds) {
    NodeId node = ir::kNoNode;
    switch (kind) {
      case OpKind::kLoad:
        node = dfg.add_node(OpKind::kLoad, {pick_operand()});
        break;
      case OpKind::kStore:
        node = dfg.add_node(OpKind::kStore, {pick_operand(), pick_operand()});
        break;
      default:
        node = dfg.add_node(kind, {pick_operand(), pick_operand()});
        break;
    }
    if (kind != OpKind::kStore) values.push_back(node);
    current_layer.push_back(node);
    if (++in_layer >= config.target_width) {
      prev_layer = current_layer;
      current_layer.clear();
      in_layer = 0;
    }
  }

  // Live-out markers on the latest value-producing nodes (sinks first).
  std::vector<NodeId> sinks;
  for (NodeId id = dfg.size() - 1; id >= 0 && static_cast<int>(sinks.size()) <
                                                  config.live_outs;
       --id) {
    const auto& node = dfg.node(id);
    if (node.kind == OpKind::kStore || node.kind == OpKind::kOutput) continue;
    if (!ir::is_schedulable(node.kind)) continue;
    sinks.push_back(id);
  }
  for (NodeId sink : sinks) {
    dfg.add_node(OpKind::kOutput, {sink});
  }

  dfg.validate();
  return dfg;
}

}  // namespace amdrel::synth
