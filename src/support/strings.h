#pragma once

#include <sstream>
#include <string>

namespace amdrel {

namespace detail {
inline void cat_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  cat_into(os, rest...);
}
}  // namespace detail

/// Concatenates all arguments with operator<< into one string.
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  detail::cat_into(os, parts...);
  return os.str();
}

}  // namespace amdrel
