#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace amdrel {

namespace detail {
inline void cat_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  cat_into(os, rest...);
}
}  // namespace detail

/// Concatenates all arguments with operator<< into one string.
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  detail::cat_into(os, parts...);
  return os.str();
}

/// Splits on a separator. Note getline semantics: a trailing separator
/// produces NO final empty item ("a," -> {"a"}), while interior empties
/// are kept ("a,,b" -> {"a", "", "b"}) — callers validating list specs
/// must reject a trailing separator themselves. Shared by the CLI flag
/// lists and the platform-grid spec parser.
inline std::vector<std::string> split(const std::string& text,
                                      char separator = ',') {
  std::vector<std::string> items;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, separator)) items.push_back(item);
  return items;
}

}  // namespace amdrel
