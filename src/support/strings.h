#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace amdrel {

namespace detail {
inline void cat_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  cat_into(os, rest...);
}
}  // namespace detail

/// Concatenates all arguments with operator<< into one string.
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  detail::cat_into(os, parts...);
  return os.str();
}

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and the common control characters get two-char escapes,
/// any other byte below 0x20 becomes \u00xx. Shared by the sweep
/// emitters and the sweep-cache persistence, whose byte-for-byte
/// round-trip contracts require one escaping rule.
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Splits on a separator. Note getline semantics: a trailing separator
/// produces NO final empty item ("a," -> {"a"}), while interior empties
/// are kept ("a,,b" -> {"a", "", "b"}) — callers validating list specs
/// must reject a trailing separator themselves. Shared by the CLI flag
/// lists and the platform-grid spec parser.
inline std::vector<std::string> split(const std::string& text,
                                      char separator = ',') {
  std::vector<std::string> items;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, separator)) items.push_back(item);
  return items;
}

}  // namespace amdrel
