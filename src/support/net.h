#pragma once

#include <iostream>
#include <optional>
#include <streambuf>
#include <string>

namespace amdrel::support::net {

// ---------------------------------------------------------------------------
// Thin POSIX TCP wrapper for the sweep service's socket transport
// (core/transport.h). Deliberately tiny: RAII fds, listen/accept/connect
// with explicit timeouts, and a streambuf so the newline-delimited wire
// protocol can ride a socket through the same iostream code paths it
// rides a pipe or a stringstream. On non-POSIX builds every entry point
// throws Error (available() reports false) — mirroring
// serve_design_space's existing platform gate.
// ---------------------------------------------------------------------------

/// Whether this build has the POSIX socket layer.
bool available();

/// RAII file descriptor (socket or otherwise). Move-only; closes on
/// destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  int release();
  void close();

 private:
  int fd_ = -1;
};

/// Splits "host:port" (":port" leaves host empty — callers choose the
/// wildcard/loopback default). False on a missing colon or a port
/// outside [0, 65535].
bool parse_host_port(const std::string& spec, std::string& host, int& port);

/// Binds and listens on host:port (IPv4; empty host = all interfaces,
/// port 0 = kernel-assigned ephemeral port — read it back with
/// local_port). Throws Error on failure.
Socket listen_tcp(const std::string& host, int port);

/// The locally bound port of a listening socket.
int local_port(const Socket& listener);

/// Accepts one connection, waiting up to timeout_ms (0 = only an
/// already-pending connection). nullopt on timeout; throws Error on a
/// hard failure.
std::optional<Socket> accept_tcp(const Socket& listener, int timeout_ms);

/// Connects to host:port (empty host = loopback), retrying a refused
/// connection until timeout_ms elapses — a worker routinely dials while
/// the coordinator is still binding. Throws Error on failure/timeout.
Socket connect_tcp(const std::string& host, int port, int timeout_ms);

/// std::streambuf over a connected fd, both directions. Writes use
/// send(MSG_NOSIGNAL) where the fd is a socket so a vanished peer
/// surfaces as a stream error instead of SIGPIPE. Does not own the fd.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_buffer();

  static constexpr std::size_t kBufSize = 65536;
  int fd_ = -1;
  char in_[kBufSize];
  char out_[kBufSize];
};

/// iostream over a connected fd (does not own it): the dynamic worker
/// loop reads assigns and streams cells through this exactly as it
/// would through stdin/stdout.
class FdIoStream : public std::iostream {
 public:
  explicit FdIoStream(int fd) : std::iostream(&buf_), buf_(fd) {}

 private:
  FdStreamBuf buf_;
};

}  // namespace amdrel::support::net
