#include "support/error.h"

namespace amdrel {

void fail(const std::string& msg) { throw Error(msg); }

void require(bool cond, const std::string& msg) {
  if (!cond) fail(msg);
}

}  // namespace amdrel
