#include "support/net.h"

#include <cstring>

#include "support/error.h"
#include "support/strings.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <thread>
#include <unistd.h>
#endif

namespace amdrel::support::net {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

bool parse_host_port(const std::string& spec, std::string& host, int& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty()) return false;
  long value = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 65535) return false;
  }
  host = spec.substr(0, colon);
  port = static_cast<int>(value);
  return true;
}

#ifdef _WIN32

bool available() { return false; }

Socket listen_tcp(const std::string&, int) {
  fail("net: requires POSIX sockets");
}
int local_port(const Socket&) { fail("net: requires POSIX sockets"); }
std::optional<Socket> accept_tcp(const Socket&, int) {
  fail("net: requires POSIX sockets");
}
Socket connect_tcp(const std::string&, int, int) {
  fail("net: requires POSIX sockets");
}

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {}
FdStreamBuf::int_type FdStreamBuf::underflow() { return traits_type::eof(); }
FdStreamBuf::int_type FdStreamBuf::overflow(int_type) {
  return traits_type::eof();
}
int FdStreamBuf::sync() { return -1; }
bool FdStreamBuf::flush_buffer() { return false; }

#else

bool available() { return true; }

namespace {

sockaddr_in resolve_ipv4(const std::string& host, int port,
                         const char* what) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  require(::getaddrinfo(host.c_str(), nullptr, &hints, &result) == 0 &&
              result != nullptr,
          cat(what, ": cannot resolve host \"", host, "\""));
  addr.sin_addr =
      reinterpret_cast<const sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return addr;
}

}  // namespace

Socket listen_tcp(const std::string& host, int port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  require(sock.valid(), "listen_tcp: socket failed");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = resolve_ipv4(host, port, "listen_tcp");
  require(::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                 sizeof addr) == 0,
          cat("listen_tcp: cannot bind ", host.empty() ? "*" : host, ":",
              port, " (", std::strerror(errno), ")"));
  require(::listen(sock.fd(), 64) == 0,
          cat("listen_tcp: listen failed (", std::strerror(errno), ")"));
  return sock;
}

int local_port(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  require(::getsockname(listener.fd(),
                        reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "local_port: getsockname failed");
  return static_cast<int>(ntohs(addr.sin_port));
}

std::optional<Socket> accept_tcp(const Socket& listener, int timeout_ms) {
  pollfd pfd{listener.fd(), POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    require(ready >= 0, "accept_tcp: poll failed");
    if (ready == 0) return std::nullopt;
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0 && (errno == EINTR || errno == ECONNABORTED)) continue;
    require(fd >= 0, cat("accept_tcp: accept failed (", std::strerror(errno),
                         ")"));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Socket(fd);
  }
}

Socket connect_tcp(const std::string& host, int port, int timeout_ms) {
  const std::string target = host.empty() ? "127.0.0.1" : host;
  const sockaddr_in addr = resolve_ipv4(target, port, "connect_tcp");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    require(sock.valid(), "connect_tcp: socket failed");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return sock;
    }
    const int error = errno;
    require(error == ECONNREFUSED || error == EINTR || error == ETIMEDOUT,
            cat("connect_tcp: cannot connect ", target, ":", port, " (",
                std::strerror(error), ")"));
    require(std::chrono::steady_clock::now() < deadline,
            cat("connect_tcp: timed out connecting ", target, ":", port));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_, in_, in_);
  setp(out_, out_ + kBufSize);
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  // Push out anything buffered before blocking on a read: the wire
  // protocol is strictly request/response for the dynamic worker, so an
  // unflushed request would deadlock the read.
  if (!flush_buffer()) return traits_type::eof();
  ssize_t n = 0;
  do {
    n = ::read(fd_, in_, kBufSize);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_, in_, in_ + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flush_buffer() {
  const char* p = pbase();
  const char* end = pptr();
  while (p < end) {
    ssize_t n = ::send(fd_, p, static_cast<std::size_t>(end - p),
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd_, p, static_cast<std::size_t>(end - p));
    }
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
  }
  setp(out_, out_ + kBufSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_buffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_buffer() ? 0 : -1; }

#endif

}  // namespace amdrel::support::net
