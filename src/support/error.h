#pragma once

#include <stdexcept>
#include <string>

namespace amdrel {

/// Library-wide exception type. All invariant violations and user errors
/// (bad source programs, infeasible mappings, ...) surface as Error.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws Error with the given message.
[[noreturn]] void fail(const std::string& msg);

/// Throws Error(msg) unless cond holds. Used for precondition checks that
/// must stay active in release builds (assert() is reserved for internal
/// consistency checks that are free to compile out).
void require(bool cond, const std::string& msg);

}  // namespace amdrel
