#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace amdrel {

/// Fixed-width bitset sized at construction, built for the partitioning
/// engine's split state: membership tests, flips and copies on the
/// move/unmove hot path and the branch-and-bound frontier. Up to 256 bits
/// (four 64-bit words) live inline so the common case — a few dozen
/// CGC-eligible kernels — never touches the heap; larger widths spill to
/// a vector transparently. Iteration over set bits uses ctz, counting
/// uses popcount.
class SmallBitset {
 public:
  SmallBitset() = default;

  explicit SmallBitset(std::size_t bits) : bits_(bits) {
    words_ = (bits + 63) / 64;
    if (words_ > kInlineWords) heap_.assign(words_, 0);
  }

  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    return (words()[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i) { words()[i / 64] |= std::uint64_t{1} << (i % 64); }

  void clear(std::size_t i) {
    words()[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  void flip(std::size_t i) { words()[i / 64] ^= std::uint64_t{1} << (i % 64); }

  void reset() {
    std::uint64_t* w = words();
    for (std::size_t k = 0; k < words_; ++k) w[k] = 0;
  }

  /// Number of set bits (popcount over the words).
  std::size_t count() const {
    const std::uint64_t* w = words();
    std::size_t total = 0;
    for (std::size_t k = 0; k < words_; ++k) total += popcount64(w[k]);
    return total;
  }

  bool any() const {
    const std::uint64_t* w = words();
    for (std::size_t k = 0; k < words_; ++k) {
      if (w[k] != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit in ascending index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    const std::uint64_t* w = words();
    for (std::size_t k = 0; k < words_; ++k) {
      std::uint64_t word = w[k];
      while (word != 0) {
        const unsigned bit = ctz64(word);
        fn(k * 64 + bit);
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

  friend bool operator==(const SmallBitset& a, const SmallBitset& b) {
    if (a.bits_ != b.bits_) return false;
    const std::uint64_t* wa = a.words();
    const std::uint64_t* wb = b.words();
    for (std::size_t k = 0; k < a.words_; ++k) {
      if (wa[k] != wb[k]) return false;
    }
    return true;
  }

  friend bool operator!=(const SmallBitset& a, const SmallBitset& b) {
    return !(a == b);
  }

 private:
  static constexpr std::size_t kInlineWords = 4;  // 256 bits without heap

  static std::size_t popcount64(std::uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<std::size_t>(__builtin_popcountll(word));
#else
    std::size_t count = 0;
    while (word != 0) {
      word &= word - 1;
      ++count;
    }
    return count;
#endif
  }

  static unsigned ctz64(std::uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(word));
#else
    unsigned bit = 0;
    while ((word & 1u) == 0) {
      word >>= 1;
      ++bit;
    }
    return bit;
#endif
  }

  const std::uint64_t* words() const {
    return words_ <= kInlineWords ? inline_ : heap_.data();
  }
  std::uint64_t* words() {
    return words_ <= kInlineWords ? inline_ : heap_.data();
  }

  std::size_t bits_ = 0;
  std::size_t words_ = 0;
  std::uint64_t inline_[kInlineWords] = {0, 0, 0, 0};
  std::vector<std::uint64_t> heap_;
};

}  // namespace amdrel
