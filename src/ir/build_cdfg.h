#pragma once

#include "ir/cdfg.h"
#include "ir/tac.h"

namespace amdrel::ir {

/// Derives the CDFG (paper step 1) from a lowered TAC program:
///  * one BasicBlock per TacBlock, control edges from the terminators;
///  * each block's DFG built from intra-block def-use chains;
///  * registers read before any local definition become kInput nodes;
///  * registers whose final local definition may be read by another block
///    (classic upward-exposed-use approximation) get a kOutput marker, so
///    the communication cost model can count live values;
///  * loop analysis is run, filling every block's loop_depth.
Cdfg build_cdfg(const TacProgram& program);

}  // namespace amdrel::ir
