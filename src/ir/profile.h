#pragma once

#include <cstdint>
#include <map>

#include "ir/basic_block.h"

namespace amdrel::ir {

/// Dynamic-analysis result: how many times each basic block executed for
/// the representative input (the paper's exec_freq, gathered there with
/// Lex-inserted counters; here produced by the TAC interpreter or supplied
/// directly for paper-calibrated workload models).
class ProfileData {
 public:
  void set_count(BlockId block, std::uint64_t count) { counts_[block] = count; }
  void increment(BlockId block) { counts_[block]++; }

  std::uint64_t count(BlockId block) const {
    const auto it = counts_.find(block);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [block, count] : counts_) sum += count;
    return sum;
  }

  const std::map<BlockId, std::uint64_t>& counts() const { return counts_; }

 private:
  std::map<BlockId, std::uint64_t> counts_;
};

}  // namespace amdrel::ir
