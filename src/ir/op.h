#pragma once

#include <cstdint>
#include <string_view>

namespace amdrel::ir {

/// Operation kinds appearing as data-flow graph nodes. The arithmetic
/// subset mirrors what the MiniC front-end can produce; kInput / kOutput /
/// kConst are structural nodes marking basic-block live-ins, live-outs and
/// immediate operands.
enum class OpKind : std::uint8_t {
  // ALU class (weight 1 in the paper's analysis step)
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kNot,
  kNeg,
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  // Multiplier class (weight 2)
  kMul,
  // Divider class (absent from the paper's DFGs; unsupported on the CGC)
  kDiv,
  kMod,
  // Shared-data-memory accesses
  kLoad,
  kStore,
  // Structural / zero-cost
  kConst,   ///< immediate operand
  kCopy,    ///< register move (wiring)
  kInput,   ///< value produced outside this basic block
  kOutput,  ///< marker: value consumed outside this basic block
};

/// Coarse classification used by the cost models. The paper weights ALU
/// operations 1 and multiplications 2, and counts memory accesses as part
/// of a block's computational complexity.
enum class OpClass : std::uint8_t {
  kAlu,
  kMul,
  kDiv,
  kMem,
  kMeta,  ///< const/copy/input/output: no computational weight
};

constexpr OpClass op_class(OpKind kind) {
  switch (kind) {
    case OpKind::kMul:
      return OpClass::kMul;
    case OpKind::kDiv:
    case OpKind::kMod:
      return OpClass::kDiv;
    case OpKind::kLoad:
    case OpKind::kStore:
      return OpClass::kMem;
    case OpKind::kConst:
    case OpKind::kCopy:
    case OpKind::kInput:
    case OpKind::kOutput:
      return OpClass::kMeta;
    default:
      return OpClass::kAlu;
  }
}

/// Nodes that occupy fine-grain area and CGC slots and that receive an
/// ASAP level. Structural nodes (const/input/output) do not execute;
/// copies are treated as zero-cost wiring but still flow through the
/// schedule so value routing stays explicit.
constexpr bool is_schedulable(OpKind kind) {
  switch (kind) {
    case OpKind::kConst:
    case OpKind::kInput:
    case OpKind::kOutput:
      return false;
    default:
      return true;
  }
}

constexpr std::string_view op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kAnd: return "and";
    case OpKind::kOr: return "or";
    case OpKind::kXor: return "xor";
    case OpKind::kShl: return "shl";
    case OpKind::kShr: return "shr";
    case OpKind::kNot: return "not";
    case OpKind::kNeg: return "neg";
    case OpKind::kCmpEq: return "cmpeq";
    case OpKind::kCmpNe: return "cmpne";
    case OpKind::kCmpLt: return "cmplt";
    case OpKind::kCmpLe: return "cmple";
    case OpKind::kCmpGt: return "cmpgt";
    case OpKind::kCmpGe: return "cmpge";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kMod: return "mod";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kConst: return "const";
    case OpKind::kCopy: return "copy";
    case OpKind::kInput: return "input";
    case OpKind::kOutput: return "output";
  }
  return "?";
}

constexpr std::string_view op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::kAlu: return "alu";
    case OpClass::kMul: return "mul";
    case OpClass::kDiv: return "div";
    case OpClass::kMem: return "mem";
    case OpClass::kMeta: return "meta";
  }
  return "?";
}

}  // namespace amdrel::ir
