#pragma once

#include <string>

#include "ir/cdfg.h"
#include "ir/dfg.h"

namespace amdrel::ir {

/// Graphviz DOT rendering of a data-flow graph: operation nodes labelled
/// with kind/name, structural nodes (inputs/consts/outputs) drawn as
/// boxes, edges following operand order. Feed to `dot -Tsvg`.
std::string to_dot(const Dfg& dfg, const std::string& graph_name = "dfg");

/// Graphviz DOT rendering of a CDFG: one node per basic block annotated
/// with its op mix and loop depth; control edges; back edges dashed.
std::string to_dot(const Cdfg& cdfg);

}  // namespace amdrel::ir
