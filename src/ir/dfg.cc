#include "ir/dfg.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::ir {

NodeId Dfg::add_node(OpKind kind, std::vector<NodeId> operands,
                     std::string label) {
  const NodeId id = size();
  for (NodeId operand : operands) {
    require(operand >= 0 && operand < id,
            cat("Dfg::add_node: operand ", operand,
                " out of range for new node ", id));
  }
  Node node;
  node.kind = kind;
  node.operands = std::move(operands);
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  users_.emplace_back();
  for (NodeId operand : nodes_.back().operands) {
    users_[operand].push_back(id);
  }
  return id;
}

NodeId Dfg::add_const(std::int64_t value, std::string label) {
  const NodeId id = add_node(OpKind::kConst, {}, std::move(label));
  nodes_[id].imm = value;
  return id;
}

const Dfg::Node& Dfg::node(NodeId id) const {
  require(id >= 0 && id < size(), cat("Dfg::node: bad id ", id));
  return nodes_[id];
}

const std::vector<NodeId>& Dfg::users(NodeId id) const {
  require(id >= 0 && id < size(), cat("Dfg::users: bad id ", id));
  return users_[id];
}

std::vector<int> Dfg::asap_levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (NodeId id = 0; id < size(); ++id) {
    const Node& n = nodes_[id];
    if (!is_schedulable(n.kind)) continue;
    int max_pred = 0;
    for (NodeId operand : n.operands) {
      max_pred = std::max(max_pred, level[operand]);
    }
    level[id] = max_pred + 1;
  }
  return level;
}

std::vector<int> Dfg::alap_levels() const {
  const std::vector<int> asap = asap_levels();
  const int depth = max_asap_level();
  std::vector<int> level(nodes_.size(), 0);
  // Walk in reverse topological (= reverse id) order.
  for (NodeId id = size() - 1; id >= 0; --id) {
    const Node& n = nodes_[id];
    if (!is_schedulable(n.kind)) continue;
    int min_succ = depth + 1;
    for (NodeId user : users_[id]) {
      if (!is_schedulable(nodes_[user].kind)) continue;
      min_succ = std::min(min_succ, level[user]);
    }
    level[id] = min_succ - 1;
  }
  return level;
}

int Dfg::max_asap_level() const {
  const std::vector<int> levels = asap_levels();
  return levels.empty() ? 0 : *std::max_element(levels.begin(), levels.end());
}

std::vector<int> Dfg::level_occupancy() const {
  const std::vector<int> levels = asap_levels();
  std::vector<int> occupancy(static_cast<std::size_t>(max_asap_level()) + 1,
                             0);
  for (NodeId id = 0; id < size(); ++id) {
    if (is_schedulable(nodes_[id].kind)) occupancy[levels[id]]++;
  }
  return occupancy;
}

OpMix Dfg::op_mix() const {
  OpMix mix;
  for (const Node& n : nodes_) {
    switch (op_class(n.kind)) {
      case OpClass::kAlu: mix.alu++; break;
      case OpClass::kMul: mix.mul++; break;
      case OpClass::kDiv: mix.div++; break;
      case OpClass::kMem: mix.mem++; break;
      case OpClass::kMeta: mix.meta++; break;
    }
  }
  return mix;
}

int Dfg::live_in_count() const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (n.kind == OpKind::kInput) count++;
  }
  return count;
}

int Dfg::live_out_count() const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (n.kind == OpKind::kOutput) count++;
  }
  return count;
}

bool Dfg::has_division() const {
  return std::any_of(nodes_.begin(), nodes_.end(), [](const Node& n) {
    return op_class(n.kind) == OpClass::kDiv;
  });
}

void Dfg::validate() const {
  for (NodeId id = 0; id < size(); ++id) {
    const Node& n = nodes_[id];
    for (NodeId operand : n.operands) {
      require(operand >= 0 && operand < id,
              cat("Dfg::validate: node ", id, " has bad operand ", operand));
    }
    switch (n.kind) {
      case OpKind::kConst:
      case OpKind::kInput:
        require(n.operands.empty(),
                cat("Dfg::validate: source node ", id, " has operands"));
        break;
      case OpKind::kOutput:
        require(n.operands.size() == 1,
                cat("Dfg::validate: output node ", id,
                    " must have exactly one operand"));
        break;
      case OpKind::kNot:
      case OpKind::kNeg:
      case OpKind::kCopy:
        require(n.operands.size() == 1,
                cat("Dfg::validate: unary node ", id, " arity != 1"));
        break;
      case OpKind::kLoad:
        require(n.operands.size() == 1,
                cat("Dfg::validate: load node ", id,
                    " must have exactly one (address) operand"));
        break;
      case OpKind::kStore:
        require(n.operands.size() == 2,
                cat("Dfg::validate: store node ", id,
                    " must have (address, value) operands"));
        break;
      default:
        require(n.operands.size() == 2,
                cat("Dfg::validate: binary node ", id, " arity != 2"));
        break;
    }
  }
}

}  // namespace amdrel::ir
