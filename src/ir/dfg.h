#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/op.h"

namespace amdrel::ir {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Per-class operation counts of a DFG; the analysis step turns this into
/// the paper's bb_weight.
struct OpMix {
  std::int64_t alu = 0;
  std::int64_t mul = 0;
  std::int64_t div = 0;
  std::int64_t mem = 0;
  std::int64_t meta = 0;

  std::int64_t total_schedulable() const { return alu + mul + div + mem; }
};

/// Data-flow graph of one basic block. Nodes are operations; edges are
/// value dependencies (operand lists). The graph is a DAG by construction:
/// operands must reference already-created nodes, so node ids form a
/// topological order.
class Dfg {
 public:
  struct Node {
    OpKind kind = OpKind::kConst;
    std::vector<NodeId> operands;
    std::string label;              ///< debugging aid (variable name, ...)
    std::int64_t imm = 0;           ///< value for kConst nodes
    int bit_width = 32;
  };

  /// Appends a node. Every operand id must be < the new node's id (this is
  /// what keeps the graph acyclic); violating it throws.
  NodeId add_node(OpKind kind, std::vector<NodeId> operands = {},
                  std::string label = {});

  /// Convenience: appends a kConst node with the given immediate value.
  NodeId add_const(std::int64_t value, std::string label = {});

  NodeId size() const { return static_cast<NodeId>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }
  const Node& node(NodeId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Ids of nodes that use `id` as an operand.
  const std::vector<NodeId>& users(NodeId id) const;

  /// ASAP level per node (paper section 3.2): schedulable nodes with no
  /// schedulable predecessor get level 1; otherwise 1 + max(pred level).
  /// Structural nodes (input/const/output) get level 0. All nodes at the
  /// same level are free of mutual dependencies and may run in parallel.
  std::vector<int> asap_levels() const;

  /// ALAP level per node, in the same 1..max_asap_level() range; the
  /// difference alap-asap is a node's mobility (list-scheduling priority).
  std::vector<int> alap_levels() const;

  /// Largest ASAP level of any schedulable node (0 for an empty graph).
  int max_asap_level() const;

  /// Number of schedulable nodes per ASAP level (index 0 unused).
  std::vector<int> level_occupancy() const;

  OpMix op_mix() const;

  /// Count of kInput nodes: values this block consumes from outside
  /// (used for the fine<->coarse communication cost model).
  int live_in_count() const;

  /// Count of nodes marked as producing values consumed outside the block
  /// (kOutput markers).
  int live_out_count() const;

  /// True if the block contains a division/modulo, which the CGC
  /// data-path cannot execute (its nodes hold a multiplier and an ALU).
  bool has_division() const;

  /// Throws Error when internal invariants are broken (bad operand ids,
  /// output markers with != 1 operand, ...). Cheap; used liberally in
  /// tests and at module boundaries.
  void validate() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> users_;
};

}  // namespace amdrel::ir
