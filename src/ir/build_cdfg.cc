#include "ir/build_cdfg.h"

#include <map>
#include <set>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::ir {

namespace {

/// Registers read in a block before any local write (upward-exposed uses):
/// the values the block consumes from its predecessors.
std::set<int> upward_exposed_uses(const TacBlock& block) {
  std::set<int> defined;
  std::set<int> exposed;
  auto use = [&](int reg) {
    if (reg >= 0 && defined.find(reg) == defined.end()) exposed.insert(reg);
  };
  for (const TacInstr& instr : block.body) {
    switch (instr.op) {
      case OpKind::kConst:
        break;
      case OpKind::kCopy:
      case OpKind::kNot:
      case OpKind::kNeg:
      case OpKind::kLoad:
        use(instr.src1);
        break;
      case OpKind::kStore:
        use(instr.src1);
        use(instr.src2);
        break;
      default:
        use(instr.src1);
        use(instr.src2);
        break;
    }
    if (instr.dst >= 0) defined.insert(instr.dst);
  }
  if (block.term.kind == Terminator::Kind::kBr) use(block.term.cond_reg);
  if (block.term.kind == Terminator::Kind::kRet) use(block.term.ret_reg);
  return exposed;
}

}  // namespace

Cdfg build_cdfg(const TacProgram& program) {
  program.validate();
  Cdfg cdfg(program.name);

  // Which registers are consumed from outside by at least one block; a
  // definition reaching the end of a different block must then be treated
  // as live-out (may-live approximation, conservative in the right
  // direction for communication costs).
  std::vector<std::set<int>> exposed(program.blocks.size());
  std::set<int> exposed_anywhere;
  for (std::size_t i = 0; i < program.blocks.size(); ++i) {
    exposed[i] = upward_exposed_uses(program.blocks[i]);
    exposed_anywhere.insert(exposed[i].begin(), exposed[i].end());
  }

  for (const TacBlock& tac_block : program.blocks) {
    const BlockId id = cdfg.add_block(tac_block.name);
    require(id == tac_block.id, "build_cdfg: block ids must be dense");
    Dfg& dfg = cdfg.block(id).dfg;

    std::map<int, NodeId> last_def;   // register -> defining node in block
    std::map<int, NodeId> live_in;    // register -> kInput node in block
    auto reg_label = [&](int reg) {
      if (reg < static_cast<int>(program.reg_names.size()) &&
          !program.reg_names[reg].empty()) {
        return program.reg_names[reg];
      }
      return cat("%", reg);
    };
    auto value_of = [&](int reg) -> NodeId {
      if (const auto it = last_def.find(reg); it != last_def.end()) {
        return it->second;
      }
      if (const auto it = live_in.find(reg); it != live_in.end()) {
        return it->second;
      }
      const NodeId input =
          dfg.add_node(OpKind::kInput, {}, reg_label(reg));
      live_in.emplace(reg, input);
      return input;
    };

    for (const TacInstr& instr : tac_block.body) {
      NodeId node = kNoNode;
      switch (instr.op) {
        case OpKind::kConst:
          node = dfg.add_const(instr.imm, reg_label(instr.dst));
          break;
        case OpKind::kCopy:
        case OpKind::kNot:
        case OpKind::kNeg:
          node = dfg.add_node(instr.op, {value_of(instr.src1)},
                              reg_label(instr.dst));
          break;
        case OpKind::kLoad:
          node = dfg.add_node(instr.op, {value_of(instr.src1)},
                              program.arrays[instr.array].name);
          break;
        case OpKind::kStore:
          node = dfg.add_node(
              instr.op, {value_of(instr.src1), value_of(instr.src2)},
              program.arrays[instr.array].name);
          break;
        default:
          node = dfg.add_node(instr.op,
                              {value_of(instr.src1), value_of(instr.src2)},
                              reg_label(instr.dst));
          break;
      }
      if (instr.dst >= 0) last_def[instr.dst] = node;
    }
    // The branch condition is consumed by the block's controller; make
    // sure a live-in condition still surfaces as an input value.
    if (tac_block.term.kind == Terminator::Kind::kBr) {
      (void)value_of(tac_block.term.cond_reg);
    }
    if (tac_block.term.kind == Terminator::Kind::kRet &&
        tac_block.term.ret_reg != -1) {
      (void)value_of(tac_block.term.ret_reg);
    }
    // Live-out markers: final local definitions of registers that some
    // block consumes from outside.
    for (const auto& [reg, node] : last_def) {
      bool consumed_elsewhere = false;
      for (std::size_t other = 0; other < exposed.size(); ++other) {
        if (static_cast<BlockId>(other) == id) {
          // A register can flow around a loop back into its own block.
          consumed_elsewhere |= exposed[other].count(reg) > 0 &&
                                last_def.find(reg) != last_def.end() &&
                                live_in.count(reg) > 0;
        } else {
          consumed_elsewhere |= exposed[other].count(reg) > 0;
        }
        if (consumed_elsewhere) break;
      }
      if (consumed_elsewhere) {
        dfg.add_node(OpKind::kOutput, {node}, reg_label(reg));
      }
    }
  }

  for (const TacBlock& tac_block : program.blocks) {
    switch (tac_block.term.kind) {
      case Terminator::Kind::kJmp:
        cdfg.add_edge(tac_block.id, tac_block.term.if_true);
        break;
      case Terminator::Kind::kBr:
        cdfg.add_edge(tac_block.id, tac_block.term.if_true);
        cdfg.add_edge(tac_block.id, tac_block.term.if_false);
        break;
      case Terminator::Kind::kRet:
        break;
    }
  }
  cdfg.set_entry(program.entry);
  cdfg.analyze_loops();
  cdfg.validate();
  return cdfg;
}

}  // namespace amdrel::ir
