#include "ir/dot.h"

#include <algorithm>
#include <sstream>

namespace amdrel::ir {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const Dfg& dfg, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph \"" << escape(graph_name) << "\" {\n";
  os << "  rankdir=TB;\n  node [fontsize=10];\n";
  for (NodeId id = 0; id < dfg.size(); ++id) {
    const Dfg::Node& node = dfg.node(id);
    std::string label{op_name(node.kind)};
    if (node.kind == OpKind::kConst) {
      label = "#" + std::to_string(node.imm);
    }
    if (!node.label.empty()) label += "\\n" + escape(node.label);
    const bool structural = !is_schedulable(node.kind);
    os << "  n" << id << " [label=\"" << label << "\", shape="
       << (structural ? "box" : "ellipse");
    if (op_class(node.kind) == OpClass::kMul) os << ", style=bold";
    if (op_class(node.kind) == OpClass::kMem) os << ", style=filled";
    os << "];\n";
  }
  for (NodeId id = 0; id < dfg.size(); ++id) {
    for (NodeId operand : dfg.node(id).operands) {
      os << "  n" << operand << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Cdfg& cdfg) {
  std::ostringstream os;
  os << "digraph \"" << escape(cdfg.name()) << "\" {\n";
  os << "  node [shape=box, fontsize=10];\n";
  for (const BasicBlock& block : cdfg.blocks()) {
    const OpMix mix = block.dfg.op_mix();
    os << "  b" << block.id << " [label=\"" << escape(block.name)
       << "\\nalu " << mix.alu << ", mul " << mix.mul << ", mem " << mix.mem;
    if (block.loop_depth > 0) os << "\\nloop depth " << block.loop_depth;
    os << "\"";
    if (block.id == cdfg.entry()) os << ", penwidth=2";
    os << "];\n";
  }
  for (const BasicBlock& block : cdfg.blocks()) {
    for (const BlockId succ : cdfg.successors(block.id)) {
      os << "  b" << block.id << " -> b" << succ;
      if (succ <= block.id) os << " [style=dashed]";  // likely a back edge
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace amdrel::ir
