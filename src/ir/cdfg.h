#pragma once

#include <string>
#include <vector>

#include "ir/basic_block.h"

namespace amdrel::ir {

/// A natural loop discovered from a back edge latch->header.
struct Loop {
  BlockId header = kNoBlock;
  BlockId latch = kNoBlock;
  std::vector<BlockId> body;  ///< includes header and latch, sorted by id
};

/// Control-data flow graph: the model of computation the methodology
/// consumes (paper step 1). Blocks carry their DFGs; control edges connect
/// blocks. analyze_loops() computes dominators, natural loops and per-block
/// nesting depth, which the analysis step uses to restrict kernels to
/// loop-resident blocks.
class Cdfg {
 public:
  explicit Cdfg(std::string name = "cdfg") : name_(std::move(name)) {}

  /// Appends an (empty) block and returns its id.
  BlockId add_block(std::string block_name = {});

  /// Adds a control edge from -> to. Parallel edges are ignored.
  void add_edge(BlockId from, BlockId to);

  void set_entry(BlockId entry);
  BlockId entry() const { return entry_; }

  const std::string& name() const { return name_; }

  BlockId size() const { return static_cast<BlockId>(blocks_.size()); }
  BasicBlock& block(BlockId id);
  const BasicBlock& block(BlockId id) const;
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  const std::vector<BlockId>& successors(BlockId id) const;
  const std::vector<BlockId>& predecessors(BlockId id) const;

  /// Immediate-dominator-free dominator sets via the classic iterative
  /// data-flow algorithm (blocks unreachable from the entry dominate
  /// nothing and are dominated by everything, per convention).
  /// Returns dom[b] = sorted list of blocks dominating b (including b).
  std::vector<std::vector<BlockId>> dominators() const;

  /// Detects natural loops (back edge u->h with h dominating u) and fills
  /// every block's loop_depth with its nesting level. Returns the loops,
  /// sorted by header id. Call again after mutating the graph.
  const std::vector<Loop>& analyze_loops();
  const std::vector<Loop>& loops() const { return loops_; }

  /// Reverse post-order over blocks reachable from the entry.
  std::vector<BlockId> reverse_post_order() const;

  /// Throws Error if edges reference bad ids, the entry is unset/invalid,
  /// or any block's DFG fails validation.
  void validate() const;

 private:
  bool dominates(const std::vector<std::vector<BlockId>>& dom, BlockId a,
                 BlockId b) const;

  std::string name_;
  std::vector<BasicBlock> blocks_;
  std::vector<std::vector<BlockId>> succs_;
  std::vector<std::vector<BlockId>> preds_;
  std::vector<Loop> loops_;
  BlockId entry_ = kNoBlock;
};

}  // namespace amdrel::ir
