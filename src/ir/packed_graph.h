#pragma once

#include <cstdint>
#include <vector>

#include "ir/cdfg.h"
#include "ir/dfg.h"
#include "ir/op.h"

namespace amdrel::ir {

/// Immutable structure-of-arrays view of one basic block's DFG inside a
/// PackedCdfg: node kinds and bit widths as contiguous arrays, operand
/// and user adjacency in CSR form over two flat arenas (int32 offsets +
/// int32 data, node ids block-local), and the per-block analysis results
/// the engine hot paths consume (op mix, live-in/out counts, division
/// flag, DFG depth) precomputed at pack time.
///
/// Offsets index the owning PackedCdfg's arenas directly: the operands of
/// block-local node n are operand_data[operand_offsets[n]] ..
/// operand_data[operand_offsets[n + 1]].
struct PackedDfgView {
  std::int32_t node_count = 0;
  const OpKind* kinds = nullptr;
  const std::int32_t* bit_widths = nullptr;
  const std::int32_t* operand_offsets = nullptr;  ///< [node_count + 1]
  const std::int32_t* operand_data = nullptr;     ///< arena base
  const std::int32_t* user_offsets = nullptr;     ///< [node_count + 1]
  const std::int32_t* user_data = nullptr;        ///< arena base

  OpMix mix;
  std::int32_t live_in = 0;
  std::int32_t live_out = 0;
  bool has_division = false;
  std::int32_t max_asap = 0;  ///< largest ASAP level of any schedulable node
};

/// Packed, read-only mirror of a Cdfg, built once per application and
/// traversed millions of times by the partitioning engine: every block's
/// node kinds/widths live in one flat array each, operand/user/successor
/// adjacency in CSR arenas, and the per-block quantities the split
/// pricing needs (OpMix, live-in/out word counts, CGC eligibility) are
/// precomputed so the move/unmove hot path never touches a Dfg::Node or
/// allocates. The source Cdfg must outlive the view only for as long as
/// callers hold references obtained from it elsewhere — the PackedCdfg
/// itself copies everything it needs.
class PackedCdfg {
 public:
  explicit PackedCdfg(const Cdfg& cdfg);

  std::int32_t num_blocks() const {
    return static_cast<std::int32_t>(block_mix_.size());
  }
  std::int32_t node_count(BlockId block) const {
    return node_offsets_[static_cast<std::size_t>(block) + 1] -
           node_offsets_[static_cast<std::size_t>(block)];
  }

  /// Cheap per-block view into the arenas (a handful of pointer adds).
  PackedDfgView view(BlockId block) const;

  const OpMix& op_mix(BlockId block) const {
    return block_mix_[static_cast<std::size_t>(block)];
  }
  std::int32_t live_in_count(BlockId block) const {
    return live_in_[static_cast<std::size_t>(block)];
  }
  std::int32_t live_out_count(BlockId block) const {
    return live_out_[static_cast<std::size_t>(block)];
  }
  bool has_division(BlockId block) const {
    return has_div_[static_cast<std::size_t>(block)] != 0;
  }
  std::int32_t max_asap_level(BlockId block) const {
    return max_asap_[static_cast<std::size_t>(block)];
  }

  /// ASAP levels of one block, written into a caller-owned scratch buffer
  /// (resized to the block's node count) so repeated calls never
  /// allocate. Returns the largest level of any schedulable node.
  /// Identical level assignment to Dfg::asap_levels().
  std::int32_t asap_levels_into(BlockId block,
                                std::vector<std::int32_t>& levels) const;

  /// CSR control-flow successors of a block.
  const std::int32_t* successors_begin(BlockId block) const {
    return succ_data_.data() + succ_offsets_[static_cast<std::size_t>(block)];
  }
  const std::int32_t* successors_end(BlockId block) const {
    return succ_data_.data() +
           succ_offsets_[static_cast<std::size_t>(block) + 1];
  }

 private:
  // Node arenas, all blocks concatenated in block-id order.
  std::vector<std::int32_t> node_offsets_;  ///< [blocks + 1] into kinds_
  std::vector<OpKind> kinds_;
  std::vector<std::int32_t> widths_;
  std::vector<std::int32_t> operand_offsets_;  ///< [nodes + 1] into data
  std::vector<std::int32_t> operand_data_;     ///< block-local node ids
  std::vector<std::int32_t> user_offsets_;     ///< [nodes + 1] into data
  std::vector<std::int32_t> user_data_;        ///< block-local node ids

  // Per-block precomputed analysis.
  std::vector<OpMix> block_mix_;
  std::vector<std::int32_t> live_in_;
  std::vector<std::int32_t> live_out_;
  std::vector<std::uint8_t> has_div_;
  std::vector<std::int32_t> max_asap_;

  // Control-flow successor CSR.
  std::vector<std::int32_t> succ_offsets_;  ///< [blocks + 1]
  std::vector<std::int32_t> succ_data_;
};

}  // namespace amdrel::ir
