#include "ir/cdfg.h"

#include <algorithm>
#include <set>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::ir {

BlockId Cdfg::add_block(std::string block_name) {
  const BlockId id = size();
  BasicBlock bb;
  bb.id = id;
  bb.name = block_name.empty() ? cat("bb", id) : std::move(block_name);
  blocks_.push_back(std::move(bb));
  succs_.emplace_back();
  preds_.emplace_back();
  if (entry_ == kNoBlock) entry_ = id;
  return id;
}

void Cdfg::add_edge(BlockId from, BlockId to) {
  require(from >= 0 && from < size() && to >= 0 && to < size(),
          cat("Cdfg::add_edge: bad edge ", from, " -> ", to));
  auto& out = succs_[from];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  preds_[to].push_back(from);
}

void Cdfg::set_entry(BlockId entry) {
  require(entry >= 0 && entry < size(), "Cdfg::set_entry: bad block id");
  entry_ = entry;
}

BasicBlock& Cdfg::block(BlockId id) {
  require(id >= 0 && id < size(), cat("Cdfg::block: bad id ", id));
  return blocks_[id];
}

const BasicBlock& Cdfg::block(BlockId id) const {
  require(id >= 0 && id < size(), cat("Cdfg::block: bad id ", id));
  return blocks_[id];
}

const std::vector<BlockId>& Cdfg::successors(BlockId id) const {
  require(id >= 0 && id < size(), cat("Cdfg::successors: bad id ", id));
  return succs_[id];
}

const std::vector<BlockId>& Cdfg::predecessors(BlockId id) const {
  require(id >= 0 && id < size(), cat("Cdfg::predecessors: bad id ", id));
  return preds_[id];
}

std::vector<std::vector<BlockId>> Cdfg::dominators() const {
  require(entry_ != kNoBlock, "Cdfg::dominators: no entry block");
  const BlockId n = size();
  // dom_sets[b] as sorted vectors; start with "all blocks" except entry.
  std::vector<BlockId> all(n);
  for (BlockId i = 0; i < n; ++i) all[i] = i;
  std::vector<std::vector<BlockId>> dom(n, all);
  dom[entry_] = {entry_};

  const std::vector<BlockId> rpo = reverse_post_order();
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == entry_) continue;
      std::vector<BlockId> meet;
      bool first = true;
      for (BlockId p : preds_[b]) {
        if (first) {
          meet = dom[p];
          first = false;
        } else {
          std::vector<BlockId> tmp;
          std::set_intersection(meet.begin(), meet.end(), dom[p].begin(),
                                dom[p].end(), std::back_inserter(tmp));
          meet = std::move(tmp);
        }
      }
      // Insert b itself.
      auto it = std::lower_bound(meet.begin(), meet.end(), b);
      if (it == meet.end() || *it != b) meet.insert(it, b);
      if (meet != dom[b]) {
        dom[b] = std::move(meet);
        changed = true;
      }
    }
  }
  return dom;
}

bool Cdfg::dominates(const std::vector<std::vector<BlockId>>& dom, BlockId a,
                     BlockId b) const {
  const auto& set = dom[b];
  return std::binary_search(set.begin(), set.end(), a);
}

const std::vector<Loop>& Cdfg::analyze_loops() {
  loops_.clear();
  for (auto& bb : blocks_) bb.loop_depth = 0;
  if (entry_ == kNoBlock) return loops_;

  const auto dom = dominators();
  // Restrict to blocks reachable from the entry.
  std::vector<bool> reachable(size(), false);
  for (BlockId b : reverse_post_order()) reachable[b] = true;

  for (BlockId u = 0; u < size(); ++u) {
    if (!reachable[u]) continue;
    for (BlockId h : succs_[u]) {
      if (!dominates(dom, h, u)) continue;  // not a back edge
      // Natural loop of back edge u->h: h plus all blocks that reach u
      // without passing through h.
      std::set<BlockId> body = {h, u};
      std::vector<BlockId> work = {u};
      while (!work.empty()) {
        const BlockId b = work.back();
        work.pop_back();
        if (b == h) continue;
        for (BlockId p : preds_[b]) {
          if (reachable[p] && body.insert(p).second) work.push_back(p);
        }
      }
      Loop loop;
      loop.header = h;
      loop.latch = u;
      loop.body.assign(body.begin(), body.end());
      loops_.push_back(std::move(loop));
    }
  }
  std::sort(loops_.begin(), loops_.end(), [](const Loop& a, const Loop& b) {
    if (a.header != b.header) return a.header < b.header;
    return a.latch < b.latch;
  });
  // Nesting depth: number of loops whose body contains the block. Two
  // loops sharing a header count once (they are the same loop split over
  // two latches), so deduplicate by header.
  std::set<BlockId> seen_headers;
  for (const Loop& loop : loops_) {
    if (!seen_headers.insert(loop.header).second) continue;
    // Union of bodies over all loops with this header.
    std::set<BlockId> body;
    for (const Loop& other : loops_) {
      if (other.header == loop.header) {
        body.insert(other.body.begin(), other.body.end());
      }
    }
    for (BlockId b : body) blocks_[b].loop_depth++;
  }
  return loops_;
}

std::vector<BlockId> Cdfg::reverse_post_order() const {
  require(entry_ != kNoBlock, "Cdfg::reverse_post_order: no entry block");
  std::vector<BlockId> post;
  std::vector<int> state(size(), 0);  // 0 = unvisited, 1 = open, 2 = done
  // Iterative DFS to avoid recursion depth limits on long CFG chains.
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(entry_, 0);
  state[entry_] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < succs_[b].size()) {
      const BlockId s = succs_[b][next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

void Cdfg::validate() const {
  require(entry_ != kNoBlock, "Cdfg::validate: no entry block");
  require(entry_ >= 0 && entry_ < size(), "Cdfg::validate: bad entry id");
  for (BlockId b = 0; b < size(); ++b) {
    require(blocks_[b].id == b, cat("Cdfg::validate: block ", b,
                                    " has mismatched id ", blocks_[b].id));
    blocks_[b].dfg.validate();
    for (BlockId s : succs_[b]) {
      require(s >= 0 && s < size(),
              cat("Cdfg::validate: bad successor ", s, " of block ", b));
    }
  }
}

}  // namespace amdrel::ir
