#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/op.h"

namespace amdrel::ir {

/// One three-address instruction. The executable form the MiniC front-end
/// lowers to; the interpreter runs it and build_cdfg() derives per-block
/// DFGs from it. Register operands are virtual-register indices; kConst
/// materializes an immediate into a register; kLoad/kStore address a named
/// array with a register index (multi-dimensional accesses are flattened
/// by the front-end into explicit address arithmetic).
struct TacInstr {
  OpKind op = OpKind::kConst;
  int dst = -1;           ///< destination register (-1 for kStore)
  int src1 = -1;          ///< first operand / load-store index register
  int src2 = -1;          ///< second operand / stored-value register
  std::int64_t imm = 0;   ///< immediate for kConst
  int array = -1;         ///< array symbol index for kLoad/kStore
};

/// Block terminator; control flow is kept out of the DFG.
struct Terminator {
  enum class Kind { kJmp, kBr, kRet };
  Kind kind = Kind::kRet;
  int cond_reg = -1;             ///< kBr: branch on (cond != 0)
  BlockId if_true = kNoBlock;    ///< kBr taken / kJmp target
  BlockId if_false = kNoBlock;   ///< kBr fall-through
  int ret_reg = -1;              ///< kRet: -1 when returning nothing
};

struct TacBlock {
  BlockId id = kNoBlock;
  std::string name;
  std::vector<TacInstr> body;
  Terminator term;
};

/// A named, fixed-size array of 32-bit integers living in the shared data
/// memory. Const arrays (lookup tables) carry their initializer; plain
/// arrays are zero-initialized and serve as the program's input/output
/// buffers via the interpreter API.
struct ArraySymbol {
  std::string name;
  std::int64_t size = 0;
  std::vector<std::int64_t> dims;
  bool is_const = false;
  std::vector<std::int32_t> init;  ///< empty => zero-initialized
};

/// A whole lowered program (the front-end inlines all calls, so one
/// TacProgram covers the application, mirroring the paper's single-CDFG
/// view of the code handed to the partitioner).
struct TacProgram {
  std::string name = "program";
  std::vector<TacBlock> blocks;
  BlockId entry = kNoBlock;
  int num_regs = 0;
  std::vector<std::string> reg_names;  ///< optional, for diagnostics
  std::vector<ArraySymbol> arrays;

  int find_array(const std::string& array_name) const;

  /// Throws Error on malformed programs (bad register/block/array
  /// references, missing terminator targets, ...).
  void validate() const;

  /// Human-readable listing, for tests and debugging.
  std::string to_string() const;
};

}  // namespace amdrel::ir
