#include "ir/tac.h"

#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::ir {

namespace {

bool is_tac_body_op(OpKind op) {
  switch (op) {
    case OpKind::kInput:
    case OpKind::kOutput:
      return false;  // structural DFG-only kinds never appear in TAC
    default:
      return true;
  }
}

}  // namespace

int TacProgram::find_array(const std::string& array_name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i].name == array_name) return static_cast<int>(i);
  }
  return -1;
}

void TacProgram::validate() const {
  require(entry >= 0 && entry < static_cast<BlockId>(blocks.size()),
          "TacProgram::validate: bad entry block");
  auto check_reg = [&](int reg, const char* what) {
    require(reg >= 0 && reg < num_regs,
            cat("TacProgram::validate: bad ", what, " register ", reg));
  };
  auto check_block = [&](BlockId b) {
    require(b >= 0 && b < static_cast<BlockId>(blocks.size()),
            cat("TacProgram::validate: bad target block ", b));
  };
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const TacBlock& block = blocks[bi];
    require(block.id == static_cast<BlockId>(bi),
            cat("TacProgram::validate: block ", bi, " id mismatch"));
    for (const TacInstr& instr : block.body) {
      require(is_tac_body_op(instr.op),
              cat("TacProgram::validate: structural op '",
                  op_name(instr.op), "' in TAC body"));
      switch (instr.op) {
        case OpKind::kConst:
          check_reg(instr.dst, "dst");
          break;
        case OpKind::kCopy:
        case OpKind::kNot:
        case OpKind::kNeg:
          check_reg(instr.dst, "dst");
          check_reg(instr.src1, "src1");
          break;
        case OpKind::kLoad:
          check_reg(instr.dst, "dst");
          check_reg(instr.src1, "index");
          require(instr.array >= 0 &&
                      instr.array < static_cast<int>(arrays.size()),
                  "TacProgram::validate: load from bad array");
          break;
        case OpKind::kStore:
          check_reg(instr.src1, "index");
          check_reg(instr.src2, "value");
          require(instr.array >= 0 &&
                      instr.array < static_cast<int>(arrays.size()),
                  "TacProgram::validate: store to bad array");
          require(!arrays[instr.array].is_const,
                  cat("TacProgram::validate: store to const array '",
                      arrays[instr.array].name, "'"));
          break;
        default:  // binary arithmetic
          check_reg(instr.dst, "dst");
          check_reg(instr.src1, "src1");
          check_reg(instr.src2, "src2");
          break;
      }
    }
    switch (block.term.kind) {
      case Terminator::Kind::kJmp:
        check_block(block.term.if_true);
        break;
      case Terminator::Kind::kBr:
        check_reg(block.term.cond_reg, "branch condition");
        check_block(block.term.if_true);
        check_block(block.term.if_false);
        break;
      case Terminator::Kind::kRet:
        if (block.term.ret_reg != -1) check_reg(block.term.ret_reg, "return");
        break;
    }
  }
  for (const ArraySymbol& array : arrays) {
    require(array.size > 0, cat("TacProgram::validate: array '", array.name,
                                "' has non-positive size"));
    require(array.init.empty() ||
                static_cast<std::int64_t>(array.init.size()) == array.size,
            cat("TacProgram::validate: array '", array.name,
                "' initializer size mismatch"));
  }
}

std::string TacProgram::to_string() const {
  std::ostringstream os;
  os << "program " << name << " (regs: " << num_regs << ")\n";
  for (const ArraySymbol& array : arrays) {
    os << "  array " << array.name << "[" << array.size << "]"
       << (array.is_const ? " const" : "") << "\n";
  }
  auto reg = [&](int r) {
    if (r >= 0 && r < static_cast<int>(reg_names.size()) &&
        !reg_names[r].empty()) {
      return cat("%", r, ":", reg_names[r]);
    }
    return cat("%", r);
  };
  for (const TacBlock& block : blocks) {
    os << block.name << ":  ; id " << block.id
       << (block.id == entry ? " (entry)" : "") << "\n";
    for (const TacInstr& instr : block.body) {
      os << "  ";
      switch (instr.op) {
        case OpKind::kConst:
          os << reg(instr.dst) << " = " << instr.imm;
          break;
        case OpKind::kCopy:
          os << reg(instr.dst) << " = " << reg(instr.src1);
          break;
        case OpKind::kNot:
        case OpKind::kNeg:
          os << reg(instr.dst) << " = " << op_name(instr.op) << " "
             << reg(instr.src1);
          break;
        case OpKind::kLoad:
          os << reg(instr.dst) << " = " << arrays[instr.array].name << "["
             << reg(instr.src1) << "]";
          break;
        case OpKind::kStore:
          os << arrays[instr.array].name << "[" << reg(instr.src1)
             << "] = " << reg(instr.src2);
          break;
        default:
          os << reg(instr.dst) << " = " << op_name(instr.op) << " "
             << reg(instr.src1) << ", " << reg(instr.src2);
          break;
      }
      os << "\n";
    }
    switch (block.term.kind) {
      case Terminator::Kind::kJmp:
        os << "  jmp bb" << block.term.if_true << "\n";
        break;
      case Terminator::Kind::kBr:
        os << "  br " << reg(block.term.cond_reg) << ", bb"
           << block.term.if_true << ", bb" << block.term.if_false << "\n";
        break;
      case Terminator::Kind::kRet:
        os << "  ret";
        if (block.term.ret_reg != -1) os << " " << reg(block.term.ret_reg);
        os << "\n";
        break;
    }
  }
  return os.str();
}

}  // namespace amdrel::ir
