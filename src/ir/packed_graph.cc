#include "ir/packed_graph.h"

#include <algorithm>

namespace amdrel::ir {

PackedCdfg::PackedCdfg(const Cdfg& cdfg) {
  const auto blocks = static_cast<std::size_t>(cdfg.size());

  // First pass: arena sizes, so every vector is allocated exactly once.
  std::size_t total_nodes = 0;
  std::size_t total_edges = 0;
  std::size_t total_succs = 0;
  for (const BasicBlock& block : cdfg.blocks()) {
    total_nodes += static_cast<std::size_t>(block.dfg.size());
    for (const Dfg::Node& node : block.dfg.nodes()) {
      total_edges += node.operands.size();
    }
    total_succs += cdfg.successors(block.id).size();
  }

  node_offsets_.reserve(blocks + 1);
  kinds_.reserve(total_nodes);
  widths_.reserve(total_nodes);
  operand_offsets_.reserve(total_nodes + 1);
  operand_data_.reserve(total_edges);
  user_offsets_.reserve(total_nodes + 1);
  user_data_.reserve(total_edges);
  block_mix_.resize(blocks);
  live_in_.assign(blocks, 0);
  live_out_.assign(blocks, 0);
  has_div_.assign(blocks, 0);
  max_asap_.assign(blocks, 0);
  succ_offsets_.reserve(blocks + 1);
  succ_data_.reserve(total_succs);

  node_offsets_.push_back(0);
  operand_offsets_.push_back(0);
  user_offsets_.push_back(0);
  succ_offsets_.push_back(0);

  std::vector<std::int32_t> asap_scratch;
  for (const BasicBlock& block : cdfg.blocks()) {
    const Dfg& dfg = block.dfg;
    const auto index = static_cast<std::size_t>(block.id);
    OpMix& mix = block_mix_[index];
    for (NodeId id = 0; id < dfg.size(); ++id) {
      const Dfg::Node& node = dfg.node(id);
      kinds_.push_back(node.kind);
      widths_.push_back(node.bit_width);
      for (const NodeId operand : node.operands) {
        operand_data_.push_back(operand);
      }
      operand_offsets_.push_back(
          static_cast<std::int32_t>(operand_data_.size()));
      for (const NodeId user : dfg.users(id)) {
        user_data_.push_back(user);
      }
      user_offsets_.push_back(static_cast<std::int32_t>(user_data_.size()));
      switch (op_class(node.kind)) {
        case OpClass::kAlu: mix.alu++; break;
        case OpClass::kMul: mix.mul++; break;
        case OpClass::kDiv: mix.div++; break;
        case OpClass::kMem: mix.mem++; break;
        case OpClass::kMeta: mix.meta++; break;
      }
      if (node.kind == OpKind::kInput) live_in_[index]++;
      if (node.kind == OpKind::kOutput) live_out_[index]++;
    }
    has_div_[index] = mix.div > 0 ? 1 : 0;
    node_offsets_.push_back(static_cast<std::int32_t>(kinds_.size()));
    max_asap_[index] = asap_levels_into(block.id, asap_scratch);
    for (const BlockId succ : cdfg.successors(block.id)) {
      succ_data_.push_back(succ);
    }
    succ_offsets_.push_back(static_cast<std::int32_t>(succ_data_.size()));
  }
}

PackedDfgView PackedCdfg::view(BlockId block) const {
  const auto index = static_cast<std::size_t>(block);
  const std::int32_t first = node_offsets_[index];
  PackedDfgView v;
  v.node_count = node_offsets_[index + 1] - first;
  v.kinds = kinds_.data() + first;
  v.bit_widths = widths_.data() + first;
  v.operand_offsets = operand_offsets_.data() + first;
  v.operand_data = operand_data_.data();
  v.user_offsets = user_offsets_.data() + first;
  v.user_data = user_data_.data();
  v.mix = block_mix_[index];
  v.live_in = live_in_[index];
  v.live_out = live_out_[index];
  v.has_division = has_div_[index] != 0;
  v.max_asap = max_asap_[index];
  return v;
}

std::int32_t PackedCdfg::asap_levels_into(
    BlockId block, std::vector<std::int32_t>& levels) const {
  const auto index = static_cast<std::size_t>(block);
  const std::int32_t first = node_offsets_[index];
  const std::int32_t count = node_offsets_[index + 1] - first;
  levels.assign(static_cast<std::size_t>(count), 0);
  std::int32_t max_level = 0;
  for (std::int32_t n = 0; n < count; ++n) {
    if (!is_schedulable(kinds_[static_cast<std::size_t>(first + n)])) continue;
    std::int32_t max_pred = 0;
    const std::int32_t begin =
        operand_offsets_[static_cast<std::size_t>(first + n)];
    const std::int32_t end =
        operand_offsets_[static_cast<std::size_t>(first + n) + 1];
    for (std::int32_t e = begin; e < end; ++e) {
      max_pred = std::max(
          max_pred,
          levels[static_cast<std::size_t>(operand_data_[
              static_cast<std::size_t>(e)])]);
    }
    levels[static_cast<std::size_t>(n)] = max_pred + 1;
    max_level = std::max(max_level, max_pred + 1);
  }
  return max_level;
}

}  // namespace amdrel::ir
