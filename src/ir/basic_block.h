#pragma once

#include <cstdint>
#include <string>

#include "ir/dfg.h"

namespace amdrel::ir {

using BlockId = std::int32_t;
inline constexpr BlockId kNoBlock = -1;

/// One basic block of the application: a straight-line sequence of
/// operations (its Dfg) terminated by a branch. Control structure lives in
/// the owning Cdfg; loop_depth is filled in by Cdfg::analyze_loops().
struct BasicBlock {
  BlockId id = kNoBlock;
  std::string name;
  Dfg dfg;
  int loop_depth = 0;  ///< 0 = not inside any loop
};

}  // namespace amdrel::ir
