#pragma once

#include <cstdint>

#include "platform/cgc_model.h"
#include "platform/fpga_model.h"
#include "platform/memory_model.h"

namespace amdrel::platform {

/// Characterization of a hybrid reconfigurable platform instance (the
/// generic architecture of Figure 1): an embedded FPGA, a CGC data-path
/// and the shared data memory. All cycle counts reported by the library
/// are in FPGA clock cycles, matching the paper's tables ("the clock cycle
/// period is set to the clock period of the fine-grain hardware").
struct Platform {
  FpgaModel fpga;
  CgcModel cgc;
  MemoryModel memory;

  /// Converts a CGC-cycle latency to FPGA cycles, rounding up (a kernel
  /// invocation occupies the data-path for whole FPGA cycles).
  std::int64_t cgc_to_fpga_cycles(std::int64_t cgc_cycles) const {
    const auto ratio = static_cast<std::int64_t>(cgc.fpga_clock_ratio);
    return (cgc_cycles + ratio - 1) / ratio;
  }
};

/// Rejects a Platform whose fields would silently corrupt every number
/// priced against it: cgc.fpga_clock_ratio == 0 divides by zero in
/// cgc_to_fpga_cycles above, a non-positive CGC geometry schedules on an
/// empty grid, and a non-finite or non-positive usable area breaks the
/// fine-grain area model. Called by make_paper_platform, platform_cost
/// and the HybridMapper constructor, so a hand-built Platform cannot
/// reach a pricing path unvalidated. Throws Error on violation.
void validate_platform(const Platform& platform);

/// The platform configuration used throughout the paper's experiments:
/// A_FPGA units of usable fine-grain area and `cgc_count` 2x2 CGCs, with
/// T_FPGA = 3 T_CGC. Remaining knobs take the calibrated defaults
/// documented in DESIGN.md / EXPERIMENTS.md.
Platform make_paper_platform(double a_fpga, int cgc_count);

/// Area-equivalent cost of a platform instance, in the same abstract
/// units as A_FPGA: the usable fine-grain area plus every CGC node priced
/// as one multiplier + one ALU of fine-grain fabric. The platform-grid
/// sweep's third Pareto axis — a bigger device may buy fewer cycles, and
/// this makes that trade explicit.
double platform_cost(const Platform& platform);

}  // namespace amdrel::platform
