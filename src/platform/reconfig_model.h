#pragma once

#include <cmath>
#include <cstdint>

namespace amdrel::platform {

/// Partial-reconfiguration pricing for moved modules, ICAP-style: a
/// coarse-grain configuration is loaded through a single configuration
/// port at a fixed throughput, so the load latency of a module scales
/// with its bitstream size, which in turn scales with the region (op
/// count) it occupies. The paper's flow prices configuration loading at
/// zero; this model adds
///
///   - per-module load latency: ceil(units * bitstream_cycles_per_unit
///     * (1 - prefetch_overlap)) FPGA cycles, where `units` is the
///     module's node count (the area proxy the engine already tracks);
///   - configuration prefetch: the fraction of each load hidden behind
///     useful work (0 = blocking ICAP load, 0.9 = a prefetcher that
///     overlaps 90% of the transfer);
///   - region residency: the platform holds `regions` reconfigurable
///     regions (0 = one per CGC). A module resident in a region is
///     loaded once; every other moved module pays its load on each of
///     its `iterations` invocations (the configuration is evicted and
///     re-streamed between runs);
///   - floorplan cost: a per-unit area charge for the PR regions the
///     moved modules occupy, reported next to platform_cost rather than
///     added to the cycle objective.
///
/// All-zero defaults price exactly like the additive v2 model — that
/// identity is the migration gate for the CostModel redesign.
struct ReconfigModel {
  /// ICAP throughput reciprocal: FPGA cycles to stream one unit (one op
  /// node) of configuration. 0 disables reconfiguration pricing.
  double bitstream_cycles_per_unit = 0;

  /// Fraction of each load hidden by configuration prefetching, in
  /// [0, 1). Applied multiplicatively to the load latency.
  double prefetch_overlap = 0;

  /// Area-equivalent floorplan charge per unit of moved module, added to
  /// the platform-cost Pareto axis (never to the cycle objective).
  double floorplan_cost_per_unit = 0;

  /// Number of reconfigurable regions that can keep a configuration
  /// resident across invocations. 0 means "one per CGC" (resolved
  /// against the platform's cgc.count at pricing time).
  int regions = 0;

  /// Whether this model prices anything beyond the additive v2 flow.
  bool enabled() const {
    return bitstream_cycles_per_unit > 0 || floorplan_cost_per_unit > 0;
  }

  /// Load latency in FPGA cycles for a module of `units` op nodes.
  std::int64_t load_cycles(std::int64_t units) const {
    if (bitstream_cycles_per_unit <= 0) return 0;
    const double raw = static_cast<double>(units) *
                       bitstream_cycles_per_unit *
                       (1.0 - prefetch_overlap);
    return static_cast<std::int64_t>(std::ceil(raw));
  }
};

}  // namespace amdrel::platform
