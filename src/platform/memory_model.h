#pragma once

#include <cstdint>

namespace amdrel::platform {

/// Shared data memory of the platform (Figure 1 of the paper). It stores
/// (a) array data accessed by both hardware types, (b) values passed
/// between temporal partitions of the fine-grain hardware, and (c) values
/// communicated between the fine- and coarse-grain parts when a kernel is
/// moved (the t_comm term of equation (2)).
struct MemoryModel {
  /// Cost of transferring one word between the two reconfigurable blocks
  /// through the shared memory, in FPGA clock cycles (write + read).
  std::int64_t transfer_cycles_per_word = 1;

  /// Cost of spilling/filling one live value across a temporal-partition
  /// boundary of the fine-grain hardware, in FPGA clock cycles.
  std::int64_t partition_boundary_cycles_per_word = 2;
};

}  // namespace amdrel::platform
