#pragma once

#include <cstdint>

#include "ir/op.h"

namespace amdrel::platform {

/// The coarse-grain data-path of the authors' FPL'04 companion paper: a
/// set of Coarse-Grain Components (CGCs), each an n x m array of nodes
/// containing one multiplier and one ALU (one active per clock), plus a
/// register bank and a reconfigurable interconnect. Direct intra-CGC
/// connections let a chain of up to `rows` dependent operations complete
/// within a single CGC clock cycle (the "complex operations like
/// multiply-add" of the paper).
struct CgcModel {
  int count = 2;  ///< number of CGCs in the data-path
  int rows = 2;   ///< chaining depth within one CGC and one cycle
  int cols = 2;   ///< parallel chains per CGC

  /// T_FPGA / T_CGC. The paper assumes the ASIC data-path clocks three
  /// times faster than the embedded FPGA (T_FPGA = 3 T_CGC).
  int fpga_clock_ratio = 3;

  /// Intra-CGC chaining: dependent operations in increasing rows of one
  /// CGC complete within a single cycle (the FPL'04 data-path's key
  /// feature, "realize any complex operations like a multiply-add").
  /// Disable for the ablation of that feature.
  bool enable_chaining = true;

  /// Shared-data-memory ports available to the data-path and the cost of
  /// one access in CGC cycles. Kernels contain loads/stores (the paper
  /// counts memory accesses in a block's complexity), and these serialize
  /// on the ports.
  int mem_ports = 2;
  std::int64_t mem_access_cgc_cycles = 4;

  /// When true (default), array traffic is staged through the register
  /// bank: loads are DMA-prefetched before the kernel fires and stores are
  /// drained afterwards, so memory adds ceil(accesses / mem_ports) *
  /// mem_access_cgc_cycles to the latency instead of stealing compute
  /// slots mid-kernel. When false, every load/store is scheduled on a
  /// port cycle-by-cycle inside the kernel.
  bool dma_memory = true;

  /// Register-bank capacity for values alive across CGC cycles; 0 means
  /// "unlimited" (the binder still reports the peak demand).
  int register_bank_size = 0;

  /// Compute slots usable per CGC cycle over the whole data-path.
  int slots_per_cycle() const { return count * rows * cols; }

  /// The CGC node executes word-level ALU and multiply operations; it has
  /// no divider, and memory traffic goes through the ports instead of
  /// compute slots.
  bool supports(ir::OpKind kind) const {
    switch (ir::op_class(kind)) {
      case ir::OpClass::kAlu:
      case ir::OpClass::kMul:
        return true;
      case ir::OpClass::kMem:
        return mem_ports > 0;
      case ir::OpClass::kMeta:
        return true;  // copies are interconnect routing
      case ir::OpClass::kDiv:
        return false;
    }
    return false;
  }
};

}  // namespace amdrel::platform
