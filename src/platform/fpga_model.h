#pragma once

#include <cstdint>

#include "ir/op.h"

namespace amdrel::platform {

/// How full-device reconfiguration time is charged when a basic block's
/// DFG is split across several temporal partitions (paper section 3.2:
/// "for each temporal partition, full reconfiguration of the fine-grain
/// hardware is performed").
enum class ReconfigPolicy {
  kNone,           ///< ignore reconfiguration entirely (idealized)
  kSwitchOnly,     ///< (partitions - 1) reconfigurations per invocation:
                   ///< a single-partition block stays resident (default)
  kPerPartition,   ///< partitions reconfigurations per invocation
  kAmortizedOnce,  ///< partitions reconfigurations charged once, not
                   ///< multiplied by the block's execution frequency
};

/// Which temporal-partitioning algorithm maps blocks onto the fine-grain
/// hardware. kFigure3 is the paper's algorithm; kListPacking is the
/// ablation alternative (see finegrain/temporal_partitioner.h).
enum class FineMapper {
  kFigure3,
  kListPacking,
};

/// Timing/area characterization of the fine-grain (embedded FPGA) block.
/// The methodology is parameterized on this (paper: "both types of
/// reconfigurable hardware are characterized in terms of timing and area
/// characteristics"), so any device can be described by filling the
/// per-class area/delay entries.
struct FpgaModel {
  /// Area available for mapping DFG operations (the paper's A_FPGA,
  /// quoted directly in "units of area" in the experiments). When
  /// describing a physical device, use from_device_area() to apply the
  /// 70%-for-routability rule the paper recommends.
  double usable_area = 1500.0;

  /// Full-device reconfiguration cost in FPGA clock cycles.
  std::int64_t reconfig_cycles = 380;

  /// Operation-issue throughput of the fabric. Fine-grain fabrics bound
  /// usable instruction-level parallelism through routing congestion and
  /// shared-memory ports; an ASAP level with total operation delay D and
  /// slowest operation d costs max(d, ceil(D / parallel_lanes)) cycles.
  /// The default of 1 models the near-serial execution the paper's cycle
  /// counts imply (see EXPERIMENTS.md calibration notes).
  int parallel_lanes = 1;

  /// Fixed per-invocation control cost of a basic block on the FPGA
  /// (next-address logic / FSM sequencing, branch resolution).
  std::int64_t invocation_overhead_cycles = 1;

  ReconfigPolicy reconfig_policy = ReconfigPolicy::kSwitchOnly;

  FineMapper mapper = FineMapper::kFigure3;

  /// T_FPGA in nanoseconds (only ratios matter for the cycle counts the
  /// paper reports; kept for absolute-time reporting).
  double clock_period_ns = 6.0;

  // Per-class area occupied by one mapped operation, in the same abstract
  // units as usable_area.
  double area_alu = 12.0;
  double area_mul = 60.0;
  double area_div = 120.0;
  double area_mem = 10.0;   ///< address/port logic of a memory access
  double area_copy = 0.0;   ///< wiring

  // Per-class latency of one operation in FPGA clock cycles. Matching the
  // analysis weights (ALU 1, MUL 2) keeps the static weight a faithful
  // execution-time predictor, which is what the paper's analysis assumes.
  std::int64_t delay_alu = 1;
  std::int64_t delay_mul = 2;
  std::int64_t delay_div = 8;
  std::int64_t delay_mem = 2;  ///< shared-data-memory access
  std::int64_t delay_copy = 0;

  double area(ir::OpKind kind) const {
    switch (ir::op_class(kind)) {
      case ir::OpClass::kAlu: return area_alu;
      case ir::OpClass::kMul: return area_mul;
      case ir::OpClass::kDiv: return area_div;
      case ir::OpClass::kMem: return area_mem;
      case ir::OpClass::kMeta:
        return kind == ir::OpKind::kCopy ? area_copy : 0.0;
    }
    return 0.0;
  }

  std::int64_t delay_cycles(ir::OpKind kind) const {
    switch (ir::op_class(kind)) {
      case ir::OpClass::kAlu: return delay_alu;
      case ir::OpClass::kMul: return delay_mul;
      case ir::OpClass::kDiv: return delay_div;
      case ir::OpClass::kMem: return delay_mem;
      case ir::OpClass::kMeta:
        return kind == ir::OpKind::kCopy ? delay_copy : 0;
    }
    return 0;
  }

  /// Applies the paper's routability guidance: only `fraction` (typically
  /// 0.70) of a device's raw area is available for operation mapping.
  static FpgaModel from_device_area(double device_area,
                                    double fraction = 0.70) {
    FpgaModel model;
    model.usable_area = device_area * fraction;
    return model;
  }
};

}  // namespace amdrel::platform
