#include "platform/platform.h"

namespace amdrel::platform {

Platform make_paper_platform(double a_fpga, int cgc_count) {
  Platform p;
  p.fpga.usable_area = a_fpga;
  p.cgc.count = cgc_count;
  p.cgc.rows = 2;
  p.cgc.cols = 2;
  p.cgc.fpga_clock_ratio = 3;
  return p;
}

double platform_cost(const Platform& platform) {
  const double per_node = platform.fpga.area_mul + platform.fpga.area_alu;
  const double nodes =
      static_cast<double>(platform.cgc.count) * platform.cgc.rows *
      platform.cgc.cols;
  return platform.fpga.usable_area + nodes * per_node;
}

}  // namespace amdrel::platform
