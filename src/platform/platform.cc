#include "platform/platform.h"

namespace amdrel::platform {

Platform make_paper_platform(double a_fpga, int cgc_count) {
  Platform p;
  p.fpga.usable_area = a_fpga;
  p.cgc.count = cgc_count;
  p.cgc.rows = 2;
  p.cgc.cols = 2;
  p.cgc.fpga_clock_ratio = 3;
  return p;
}

}  // namespace amdrel::platform
