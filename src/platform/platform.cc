#include "platform/platform.h"

#include <cmath>

#include "support/error.h"

namespace amdrel::platform {

void validate_platform(const Platform& platform) {
  require(platform.cgc.fpga_clock_ratio >= 1,
          "platform: cgc.fpga_clock_ratio must be >= 1 (division hazard in "
          "cgc_to_fpga_cycles)");
  require(platform.cgc.count >= 1, "platform: cgc.count must be >= 1");
  require(platform.cgc.rows >= 1 && platform.cgc.cols >= 1,
          "platform: CGC geometry (rows, cols) must be >= 1");
  require(platform.cgc.mem_ports >= 0,
          "platform: cgc.mem_ports must be >= 0");
  require(std::isfinite(platform.fpga.usable_area) &&
              platform.fpga.usable_area > 0,
          "platform: fpga.usable_area must be positive and finite");
  require(platform.memory.transfer_cycles_per_word >= 0 &&
              platform.memory.partition_boundary_cycles_per_word >= 0,
          "platform: memory latencies must be >= 0");
}

Platform make_paper_platform(double a_fpga, int cgc_count) {
  Platform p;
  p.fpga.usable_area = a_fpga;
  p.cgc.count = cgc_count;
  p.cgc.rows = 2;
  p.cgc.cols = 2;
  p.cgc.fpga_clock_ratio = 3;
  validate_platform(p);
  return p;
}

double platform_cost(const Platform& platform) {
  validate_platform(platform);
  const double per_node = platform.fpga.area_mul + platform.fpga.area_alu;
  const double nodes =
      static_cast<double>(platform.cgc.count) * platform.cgc.rows *
      platform.cgc.cols;
  return platform.fpga.usable_area + nodes * per_node;
}

}  // namespace amdrel::platform
