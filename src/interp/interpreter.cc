#include "interp/interpreter.h"

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::interp {

namespace {

using ir::OpKind;

std::int32_t wrap(std::int64_t value) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(value));
}

std::int32_t eval_binary(OpKind op, std::int32_t a, std::int32_t b) {
  switch (op) {
    case OpKind::kAdd: return wrap(std::int64_t{a} + b);
    case OpKind::kSub: return wrap(std::int64_t{a} - b);
    case OpKind::kMul: return wrap(std::int64_t{a} * b);
    case OpKind::kDiv:
      require(b != 0, "interpreter: division by zero");
      require(!(a == INT32_MIN && b == -1), "interpreter: INT_MIN / -1");
      return a / b;
    case OpKind::kMod:
      require(b != 0, "interpreter: modulo by zero");
      require(!(a == INT32_MIN && b == -1), "interpreter: INT_MIN % -1");
      return a % b;
    case OpKind::kAnd: return a & b;
    case OpKind::kOr: return a | b;
    case OpKind::kXor: return a ^ b;
    case OpKind::kShl: return wrap(std::int64_t{a} << (b & 31));
    case OpKind::kShr: return a >> (b & 31);  // arithmetic, like C on ints
    case OpKind::kCmpEq: return a == b;
    case OpKind::kCmpNe: return a != b;
    case OpKind::kCmpLt: return a < b;
    case OpKind::kCmpLe: return a <= b;
    case OpKind::kCmpGt: return a > b;
    case OpKind::kCmpGe: return a >= b;
    default:
      fail(cat("interpreter: '", ir::op_name(op), "' is not a binary op"));
  }
}

}  // namespace

Interpreter::Interpreter(ir::TacProgram program)
    : program_(std::move(program)) {
  program_.validate();
  storage_.resize(program_.arrays.size());
}

void Interpreter::set_input(const std::string& array_name,
                            const std::vector<std::int32_t>& values) {
  const int index = program_.find_array(array_name);
  require(index >= 0,
          cat("interpreter: no array named '", array_name, "'"));
  const ir::ArraySymbol& symbol = program_.arrays[index];
  require(!symbol.is_const, cat("interpreter: array '", array_name,
                                "' is const and cannot be an input"));
  require(static_cast<std::int64_t>(values.size()) <= symbol.size,
          cat("interpreter: input for '", array_name, "' has ",
              values.size(), " values but the array holds ", symbol.size));
  inputs_[array_name] = values;
}

const std::vector<std::int32_t>& Interpreter::array(
    const std::string& array_name) const {
  const int index = program_.find_array(array_name);
  require(index >= 0,
          cat("interpreter: no array named '", array_name, "'"));
  return storage_[index];
}

RunResult Interpreter::run(std::uint64_t max_instructions) {
  // (Re)initialize memory.
  for (std::size_t i = 0; i < program_.arrays.size(); ++i) {
    const ir::ArraySymbol& symbol = program_.arrays[i];
    storage_[i].assign(static_cast<std::size_t>(symbol.size), 0);
    if (!symbol.init.empty()) {
      std::copy(symbol.init.begin(), symbol.init.end(), storage_[i].begin());
    }
    const auto input = inputs_.find(symbol.name);
    if (input != inputs_.end()) {
      std::copy(input->second.begin(), input->second.end(),
                storage_[i].begin());
    }
  }

  std::vector<std::int32_t> regs(
      static_cast<std::size_t>(program_.num_regs), 0);
  RunResult result;

  ir::BlockId block_id = program_.entry;
  while (true) {
    require(result.instructions_executed < max_instructions,
            "interpreter: instruction budget exceeded");
    const ir::TacBlock& block = program_.blocks[block_id];
    result.profile.increment(block_id);
    result.blocks_executed++;

    for (const ir::TacInstr& instr : block.body) {
      result.instructions_executed++;
      switch (instr.op) {
        case OpKind::kConst:
          regs[instr.dst] = wrap(instr.imm);
          break;
        case OpKind::kCopy:
          regs[instr.dst] = regs[instr.src1];
          break;
        case OpKind::kNot:
          regs[instr.dst] = ~regs[instr.src1];
          break;
        case OpKind::kNeg:
          regs[instr.dst] = wrap(-std::int64_t{regs[instr.src1]});
          break;
        case OpKind::kLoad: {
          const auto& memory = storage_[instr.array];
          const std::int32_t index = regs[instr.src1];
          require(index >= 0 &&
                      index < static_cast<std::int32_t>(memory.size()),
                  cat("interpreter: load out of bounds: ",
                      program_.arrays[instr.array].name, "[", index, "]"));
          regs[instr.dst] = memory[index];
          break;
        }
        case OpKind::kStore: {
          auto& memory = storage_[instr.array];
          const std::int32_t index = regs[instr.src1];
          require(index >= 0 &&
                      index < static_cast<std::int32_t>(memory.size()),
                  cat("interpreter: store out of bounds: ",
                      program_.arrays[instr.array].name, "[", index, "]"));
          memory[index] = regs[instr.src2];
          break;
        }
        default:
          regs[instr.dst] =
              eval_binary(instr.op, regs[instr.src1], regs[instr.src2]);
          break;
      }
    }

    const ir::Terminator& term = block.term;
    switch (term.kind) {
      case ir::Terminator::Kind::kJmp:
        block_id = term.if_true;
        break;
      case ir::Terminator::Kind::kBr:
        block_id = regs[term.cond_reg] != 0 ? term.if_true : term.if_false;
        break;
      case ir::Terminator::Kind::kRet:
        if (term.ret_reg != -1) result.return_value = regs[term.ret_reg];
        return result;
    }
  }
}

}  // namespace amdrel::interp
