#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/profile.h"
#include "ir/tac.h"

namespace amdrel::interp {

/// Result of one program execution.
struct RunResult {
  std::int32_t return_value = 0;
  std::uint64_t instructions_executed = 0;
  std::uint64_t blocks_executed = 0;
  ir::ProfileData profile;  ///< per-block execution counts (exec_freq)
};

/// Executes a lowered TAC program with 32-bit C semantics (wrap-around
/// arithmetic, shift counts masked to 5 bits, C99 truncated division).
/// This is the library's dynamic-analysis engine: where the paper inserts
/// Lex counters into the source and runs it natively, we interpret the
/// lowered program on representative inputs and collect the same
/// per-basic-block execution frequencies.
///
/// Arrays are the program's I/O: set inputs before run() and read outputs
/// afterwards. All arrays are zero-initialized (const arrays from their
/// initializers) at the start of every run().
class Interpreter {
 public:
  /// Takes its own copy of the program, so temporaries are safe to pass.
  explicit Interpreter(ir::TacProgram program);

  /// Overwrites the initial contents of a (non-const) array; values beyond
  /// the array size throw. Applied at the start of every run().
  void set_input(const std::string& array_name,
                 const std::vector<std::int32_t>& values);

  /// Runs main to completion. Throws Error on division by zero,
  /// out-of-bounds accesses, or when `max_instructions` is exceeded.
  RunResult run(std::uint64_t max_instructions = 500'000'000);

  /// Contents of an array after the last run().
  const std::vector<std::int32_t>& array(const std::string& array_name) const;

 private:
  ir::TacProgram program_;
  std::map<std::string, std::vector<std::int32_t>> inputs_;
  std::vector<std::vector<std::int32_t>> storage_;  ///< per array symbol
};

}  // namespace amdrel::interp
