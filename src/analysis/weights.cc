#include "analysis/weights.h"

namespace amdrel::analysis {

std::int64_t block_weight(const ir::Dfg& dfg, const WeightModel& model) {
  std::int64_t weight = 0;
  for (const ir::Dfg::Node& node : dfg.nodes()) {
    weight += model.weight(node.kind);
  }
  return weight;
}

}  // namespace amdrel::analysis
