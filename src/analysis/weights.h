#pragma once

#include <cstdint>

#include "ir/dfg.h"

namespace amdrel::analysis {

/// The paper's static-analysis weights: "we give a weight equal to 1 for
/// the ALU operations and a weight equal to 2 for the multiplication
/// ones". The paper quotes no weight for memory accesses, and its Table 1
/// arithmetic is reproducible with compute-only weights, so `mem` defaults
/// to 0 (the knob exists for sensitivity studies). Divisions (absent from
/// the paper's DFGs) default to 4; structural nodes weigh nothing.
struct WeightModel {
  std::int64_t alu = 1;
  std::int64_t mul = 2;
  std::int64_t div = 4;
  std::int64_t mem = 0;

  std::int64_t weight(ir::OpKind kind) const {
    switch (ir::op_class(kind)) {
      case ir::OpClass::kAlu: return alu;
      case ir::OpClass::kMul: return mul;
      case ir::OpClass::kDiv: return div;
      case ir::OpClass::kMem: return mem;
      case ir::OpClass::kMeta: return 0;
    }
    return 0;
  }
};

/// The paper's bb_weight: weighted operation count of one basic block.
std::int64_t block_weight(const ir::Dfg& dfg, const WeightModel& model);

}  // namespace amdrel::analysis
