#pragma once

#include <cstdint>
#include <vector>

#include "analysis/weights.h"
#include "ir/cdfg.h"
#include "ir/profile.h"

namespace amdrel::analysis {

/// One row of the paper's Table 1: a basic block with its dynamic
/// execution frequency, static operation weight and the product of the
/// two (equation (1): total_weight = exec_freq * bb_weight).
struct KernelInfo {
  ir::BlockId block = ir::kNoBlock;
  std::uint64_t exec_freq = 0;
  std::int64_t op_weight = 0;
  std::int64_t total_weight = 0;
  int loop_depth = 0;
  bool cgc_eligible = true;  ///< false when the block contains divisions
};

struct AnalysisOptions {
  WeightModel weights;
  /// Restrict kernels to blocks inside loops (the paper's definition:
  /// "kernels ... are the basic blocks inside loops").
  bool loops_only = true;
  /// Blocks that never executed under the profile carry no weight and are
  /// dropped; raise this to prune rarely-executed blocks early.
  std::uint64_t min_exec_freq = 1;
};

/// The analysis step (paper section 3.1): combines the dynamic profile
/// with static per-block weights and returns candidate kernels sorted in
/// decreasing order of total weight (ties broken by block id so the
/// ordering is deterministic).
std::vector<KernelInfo> extract_kernels(const ir::Cdfg& cdfg,
                                        const ir::ProfileData& profile,
                                        const AnalysisOptions& options = {});

}  // namespace amdrel::analysis
