#include "analysis/kernels.h"

#include <algorithm>

namespace amdrel::analysis {

std::vector<KernelInfo> extract_kernels(const ir::Cdfg& cdfg,
                                        const ir::ProfileData& profile,
                                        const AnalysisOptions& options) {
  std::vector<KernelInfo> kernels;
  for (const ir::BasicBlock& block : cdfg.blocks()) {
    if (options.loops_only && block.loop_depth == 0) continue;
    const std::uint64_t freq = profile.count(block.id);
    if (freq < options.min_exec_freq) continue;
    KernelInfo info;
    info.block = block.id;
    info.exec_freq = freq;
    info.op_weight = block_weight(block.dfg, options.weights);
    info.total_weight =
        static_cast<std::int64_t>(freq) * info.op_weight;
    info.loop_depth = block.loop_depth;
    info.cgc_eligible = !block.dfg.has_division();
    if (info.op_weight == 0) continue;  // empty/structural blocks
    kernels.push_back(info);
  }
  std::sort(kernels.begin(), kernels.end(),
            [](const KernelInfo& a, const KernelInfo& b) {
              if (a.total_weight != b.total_weight) {
                return a.total_weight > b.total_weight;
              }
              return a.block < b.block;
            });
  return kernels;
}

}  // namespace amdrel::analysis
