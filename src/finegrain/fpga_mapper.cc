#include "finegrain/fpga_mapper.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.h"

namespace amdrel::finegrain {

FpgaBlockMapping map_block_to_fpga(const ir::Dfg& dfg,
                                   const platform::FpgaModel& fpga,
                                   const platform::MemoryModel& memory) {
  FpgaBlockMapping mapping;
  mapping.partitioning = fpga.mapper == platform::FineMapper::kListPacking
                             ? partition_dfg_list(dfg, fpga)
                             : partition_dfg(dfg, fpga);

  const std::vector<int> levels = dfg.asap_levels();
  const std::vector<int>& part = mapping.partitioning.partition_of;

  // exec: ASAP levels run back to back; within one (partition, level)
  // group the fabric sustains `parallel_lanes` delay-units of issue per
  // cycle, so a group with total delay D and slowest op d costs
  // max(d, ceil(D / lanes)) cycles.
  std::map<std::pair<int, int>, std::pair<std::int64_t, std::int64_t>>
      level_cost;  // (partition, level) -> (sum delay, max delay)
  for (ir::NodeId id = 0; id < dfg.size(); ++id) {
    const ir::Dfg::Node& node = dfg.node(id);
    if (!ir::is_schedulable(node.kind)) continue;
    const std::int64_t delay = fpga.delay_cycles(node.kind);
    if (delay == 0) continue;  // copies are wiring
    auto& [sum_delay, max_delay] = level_cost[{part[id], levels[id]}];
    sum_delay += delay;
    max_delay = std::max(max_delay, delay);
  }
  const std::int64_t lanes = std::max(1, fpga.parallel_lanes);
  for (const auto& [key, group] : level_cost) {
    const auto [sum_delay, max_delay] = group;
    mapping.exec_cycles +=
        std::max(max_delay, (sum_delay + lanes - 1) / lanes);
  }
  if (!level_cost.empty()) {
    mapping.exec_cycles += fpga.invocation_overhead_cycles;
  }

  // Values crossing a partition boundary: a producer with at least one
  // consumer in a different partition is stored once and filled once per
  // consuming partition.
  for (ir::NodeId id = 0; id < dfg.size(); ++id) {
    if (part[id] == 0) continue;
    std::set<int> consumer_partitions;
    for (ir::NodeId user : dfg.users(id)) {
      if (part[user] != 0 && part[user] != part[id]) {
        consumer_partitions.insert(part[user]);
      }
    }
    if (!consumer_partitions.empty()) {
      mapping.boundary_words +=
          1 + static_cast<std::int64_t>(consumer_partitions.size());
    }
  }
  mapping.boundary_cycles =
      mapping.boundary_words * memory.partition_boundary_cycles_per_word;

  const std::int64_t partitions = mapping.partitioning.num_partitions;
  switch (fpga.reconfig_policy) {
    case platform::ReconfigPolicy::kNone:
      break;
    case platform::ReconfigPolicy::kSwitchOnly:
      mapping.reconfigs_per_invocation = std::max<std::int64_t>(
          0, partitions - 1);
      break;
    case platform::ReconfigPolicy::kPerPartition:
      mapping.reconfigs_per_invocation = partitions;
      break;
    case platform::ReconfigPolicy::kAmortizedOnce:
      mapping.amortized_reconfigs = partitions;
      break;
  }
  return mapping;
}

std::vector<FpgaBlockMapping> map_cdfg_to_fpga(
    const ir::Cdfg& cdfg, const platform::FpgaModel& fpga,
    const platform::MemoryModel& memory) {
  std::vector<FpgaBlockMapping> mappings;
  mappings.reserve(cdfg.size());
  for (const ir::BasicBlock& block : cdfg.blocks()) {
    mappings.push_back(map_block_to_fpga(block.dfg, fpga, memory));
  }
  return mappings;
}

std::int64_t fpga_total_cycles(const std::vector<FpgaBlockMapping>& mappings,
                               const ir::ProfileData& profile,
                               const platform::FpgaModel& fpga,
                               const std::vector<bool>* include) {
  require(include == nullptr || include->size() == mappings.size(),
          "fpga_total_cycles: include mask size mismatch");
  std::int64_t total = 0;
  for (std::size_t id = 0; id < mappings.size(); ++id) {
    if (include != nullptr && !(*include)[id]) continue;
    const auto iterations =
        static_cast<std::int64_t>(profile.count(static_cast<int>(id)));
    total += mappings[id].cycles_per_invocation(fpga) * iterations;
    total += mappings[id].amortized_reconfigs * fpga.reconfig_cycles;
  }
  return total;
}

}  // namespace amdrel::finegrain
