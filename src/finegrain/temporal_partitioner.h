#pragma once

#include <vector>

#include "ir/dfg.h"
#include "platform/fpga_model.h"

namespace amdrel::finegrain {

/// Result of the paper's Figure-3 temporal partitioning: every schedulable
/// DFG node is assigned to a 1-based partition index; the fine-grain
/// hardware is time-shared by loading one partition (configuration) at a
/// time, in increasing index order.
struct TemporalPartitioning {
  /// partition_of[node] in 1..num_partitions, or 0 for structural nodes
  /// (inputs/consts/outputs) that occupy no fabric.
  std::vector<int> partition_of;
  int num_partitions = 0;
  /// Area occupied by each partition (index 0 unused).
  std::vector<double> partition_area;
};

/// The mapping algorithm of paper Figure 3, verbatim semantics: nodes are
/// visited ASAP level by ASAP level (exposing the DFG's parallelism) and
/// greedily packed into the available area A_FPGA; when an operation no
/// longer fits, a new temporal partition is opened and the node starts it.
///
/// Note on the pseudocode: the paper's listing shows `level = level + 1`
/// inside the for-loop due to a typesetting slip; the intended (and here
/// implemented) semantics advances the level after all nodes of the
/// current level were assigned, which is also what the surrounding text
/// describes.
///
/// Throws Error if a single operation exceeds A_FPGA (no partitioning can
/// make it fit).
TemporalPartitioning partition_dfg(const ir::Dfg& dfg,
                                   const platform::FpgaModel& fpga);

/// Alternative mapper (ablation study): list-based packing. Where the
/// Figure-3 algorithm closes a partition as soon as one node of the
/// current ASAP level overflows, this variant keeps filling the open
/// partition with any *ready* node (all predecessors already placed) that
/// still fits, pulling work from later levels forward. It never produces
/// more partitions than Figure 3 and often fewer; the price is a packing
/// order that no longer mirrors pure level order. Compare with
/// bench_ablation_mapper.
TemporalPartitioning partition_dfg_list(const ir::Dfg& dfg,
                                        const platform::FpgaModel& fpga);

}  // namespace amdrel::finegrain
