#include "finegrain/temporal_partitioner.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::finegrain {

TemporalPartitioning partition_dfg(const ir::Dfg& dfg,
                                   const platform::FpgaModel& fpga) {
  TemporalPartitioning result;
  result.partition_of.assign(dfg.size(), 0);
  result.partition_area.assign(2, 0.0);  // index 0 unused; start partition 1

  const std::vector<int> levels = dfg.asap_levels();
  const int max_level = dfg.max_asap_level();

  int current = 1;
  double area_covered = 0.0;
  bool any_node = false;

  for (int level = 1; level <= max_level; ++level) {
    for (ir::NodeId id = 0; id < dfg.size(); ++id) {
      if (levels[id] != level) continue;
      const ir::Dfg::Node& node = dfg.node(id);
      if (!ir::is_schedulable(node.kind)) continue;
      const double current_area = fpga.area(node.kind);
      require(current_area <= fpga.usable_area,
              cat("temporal partitioning: operation '", ir::op_name(node.kind),
                  "' (area ", current_area, ") exceeds A_FPGA = ",
                  fpga.usable_area));
      any_node = true;
      if (area_covered + current_area <= fpga.usable_area) {
        result.partition_of[id] = current;
        area_covered += current_area;
      } else {
        ++current;
        result.partition_of[id] = current;
        area_covered = current_area;
        result.partition_area.push_back(0.0);
      }
      result.partition_area[current] += current_area;
    }
  }

  result.num_partitions = any_node ? current : 0;
  result.partition_area.resize(result.num_partitions + 1);
  return result;
}

TemporalPartitioning partition_dfg_list(const ir::Dfg& dfg,
                                        const platform::FpgaModel& fpga) {
  TemporalPartitioning result;
  result.partition_of.assign(dfg.size(), 0);
  result.partition_area.assign(2, 0.0);

  const std::vector<int> levels = dfg.asap_levels();

  // Schedulable nodes ordered by (ASAP level, id): the priority list.
  std::vector<ir::NodeId> order;
  for (ir::NodeId id = 0; id < dfg.size(); ++id) {
    if (ir::is_schedulable(dfg.node(id).kind)) order.push_back(id);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](ir::NodeId a, ir::NodeId b) {
                     return levels[a] < levels[b];
                   });

  std::vector<bool> placed(dfg.size(), false);
  auto ready = [&](ir::NodeId id) {
    for (ir::NodeId pred : dfg.node(id).operands) {
      if (ir::is_schedulable(dfg.node(pred).kind) && !placed[pred]) {
        return false;
      }
    }
    return true;
  };

  int current = 1;
  double area_covered = 0.0;
  std::size_t remaining = order.size();
  while (remaining > 0) {
    bool placed_any = false;
    for (ir::NodeId id : order) {
      if (placed[id] || !ready(id)) continue;
      const double area = fpga.area(dfg.node(id).kind);
      require(area <= fpga.usable_area,
              cat("list temporal partitioning: operation '",
                  ir::op_name(dfg.node(id).kind), "' (area ", area,
                  ") exceeds A_FPGA = ", fpga.usable_area));
      if (area_covered + area > fpga.usable_area) continue;
      placed[id] = true;
      result.partition_of[id] = current;
      area_covered += area;
      result.partition_area[current] += area;
      placed_any = true;
      --remaining;
    }
    if (remaining > 0 && !placed_any) {
      ++current;
      area_covered = 0.0;
      result.partition_area.push_back(0.0);
    }
  }
  result.num_partitions = order.empty() ? 0 : current;
  result.partition_area.resize(result.num_partitions + 1);
  return result;
}

}  // namespace amdrel::finegrain
