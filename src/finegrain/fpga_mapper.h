#pragma once

#include <cstdint>
#include <vector>

#include "finegrain/temporal_partitioner.h"
#include "ir/cdfg.h"
#include "ir/profile.h"
#include "platform/memory_model.h"
#include "platform/platform.h"

namespace amdrel::finegrain {

/// Fine-grain mapping of one basic block (paper section 3.2): the temporal
/// partitioning plus the execution-time model.
///
/// Execution model: within one temporal partition the ASAP levels run
/// sequentially and all nodes of a level run in parallel, so a level costs
/// the maximum operation delay among its nodes in that partition. Values
/// flowing between partitions are spilled/filled through the shared data
/// memory. Reconfiguration is charged according to the FpgaModel's policy.
struct FpgaBlockMapping {
  TemporalPartitioning partitioning;
  std::int64_t exec_cycles = 0;        ///< sum of per-partition level costs
  std::int64_t boundary_words = 0;     ///< values crossing partitions
  std::int64_t boundary_cycles = 0;    ///< spill/fill cost of those values
  std::int64_t reconfigs_per_invocation = 0;
  std::int64_t amortized_reconfigs = 0;  ///< only for kAmortizedOnce

  /// Cycles for one execution of the block (the paper's t_to_FPGA(BB)),
  /// excluding amortized reconfigurations.
  std::int64_t cycles_per_invocation(const platform::FpgaModel& fpga) const {
    return exec_cycles + boundary_cycles +
           reconfigs_per_invocation * fpga.reconfig_cycles;
  }
};

FpgaBlockMapping map_block_to_fpga(const ir::Dfg& dfg,
                                   const platform::FpgaModel& fpga,
                                   const platform::MemoryModel& memory);

/// Fine-grain mapping of a whole application: one block mapping per CDFG
/// block, in block-id order.
std::vector<FpgaBlockMapping> map_cdfg_to_fpga(
    const ir::Cdfg& cdfg, const platform::FpgaModel& fpga,
    const platform::MemoryModel& memory);

/// Equation (4) of the paper: t_FPGA = sum over blocks of
/// t_to_FPGA(BB_i) * Iter(BB_i), plus any amortized reconfiguration cost.
/// `include` (when non-null) restricts the sum to blocks where
/// include[id] is true — the partitioning engine uses this to price the
/// part of the application that stays on the fine-grain hardware.
std::int64_t fpga_total_cycles(const std::vector<FpgaBlockMapping>& mappings,
                               const ir::ProfileData& profile,
                               const platform::FpgaModel& fpga,
                               const std::vector<bool>* include = nullptr);

}  // namespace amdrel::finegrain
