#pragma once

#include <string>

namespace amdrel::workloads {

/// Real MiniC implementations of the paper's two applications (and a
/// small FIR used by the quickstart). These run through the whole
/// pipeline: front-end -> TAC -> interpreter (dynamic analysis) -> CDFG ->
/// partitioning. Bit-exact C++ golden references live in golden.h; tests
/// assert the interpreter reproduces them.

/// IEEE 802.11a OFDM transmitter front-end: QPSK mapping onto the 48 data
/// carriers (+4 pilots), 64-point radix-2 fixed-point IFFT (Q14 twiddles,
/// per-stage >>1 scaling) and 16-sample cyclic prefix.
///   inputs : bits[symbols*96] (0/1)
///   outputs: out_re/out_im[symbols*80], checksum returned from main
std::string ofdm_source(int symbols = 6);

/// JPEG encoder essentials: level shift, 8x8 separable integer DCT (Q13
/// cosine tables), quantization by Q16 reciprocal multiply (no divisions,
/// as the paper observes for its DFGs), zig-zag scan and a run-length /
/// size-category entropy cost model (Huffman-style bit budget).
///   inputs : image[width*height] (0..255)
///   outputs: coeffs[width*height], bit cost returned from main
std::string jpeg_source(int width = 64, int height = 64);

/// 16-tap FIR filter over a sample buffer; the quickstart workload.
///   inputs : samples[n + 16]
///   outputs: filtered[n], checksum returned from main
std::string fir_source(int n = 256);

/// Sobel edge detector (3x3 gradient, |gx|+|gy| magnitude, clamped to
/// 255) — a classic multimedia kernel from the paper's target domain.
///   inputs : image[width*height] (0..255)
///   outputs: edges[width*height], checksum returned from main
std::string sobel_source(int width = 64, int height = 64);

}  // namespace amdrel::workloads
