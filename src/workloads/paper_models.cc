#include "workloads/paper_models.h"

#include "support/error.h"
#include "synth/dfg_generator.h"

namespace amdrel::workloads {

namespace {

/// Builds the CDFG skeleton: entry stub -> each block in sequence, where
/// loop-resident blocks carry a self back-edge (making them natural-loop
/// headers, hence kernels candidates), ending in an exit stub.
PaperApp build_app(const std::string& name,
                   std::vector<PaperBlockSpec> specs,
                   std::uint64_t base_seed) {
  PaperApp app;
  app.cdfg = ir::Cdfg(name);

  const ir::BlockId entry = app.cdfg.add_block("entry");
  app.cdfg.set_entry(entry);
  app.profile.set_count(entry, 1);

  ir::BlockId prev = entry;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const PaperBlockSpec& spec = specs[i];
    const ir::BlockId id = app.cdfg.add_block(spec.label);

    synth::DfgGenConfig config;
    config.mul_ops = spec.mul;
    config.alu_ops = spec.alu;
    config.load_ops = spec.mem - spec.mem / 3;
    config.store_ops = spec.mem / 3;
    config.live_ins = spec.live_in;
    config.live_outs = spec.live_out;
    config.consts = 2;
    config.target_width = spec.width;
    config.seed = base_seed + i * 7919;
    app.cdfg.block(id).dfg = synth::generate_dfg(config);

    app.cdfg.add_edge(prev, id);
    if (spec.in_loop) app.cdfg.add_edge(id, id);  // self loop
    app.profile.set_count(id, spec.exec_freq);
    prev = id;
  }
  const ir::BlockId exit = app.cdfg.add_block("exit");
  app.cdfg.add_edge(prev, exit);
  app.profile.set_count(exit, 1);

  app.cdfg.analyze_loops();
  app.cdfg.validate();
  app.specs = std::move(specs);
  return app;
}

}  // namespace

ir::BlockId PaperApp::block_by_label(const std::string& label) const {
  for (const ir::BasicBlock& block : cdfg.blocks()) {
    if (block.name == label) return block.id;
  }
  fail("PaperApp::block_by_label: no block named " + label);
}

PaperApp build_ofdm_model() {
  // Top-8 rows of Table 1 (exec_freq and op weight = alu + 2*mul are the
  // paper's exact values); mem/live/width are modelling assumptions for
  // the IFFT-dominated front-end (see DESIGN.md section 4).
  std::vector<PaperBlockSpec> specs = {
      // label        freq   mul alu mem  li lo width loop
      {"BB22", 336, 30, 55, 8, 7, 2, 8, true},     // IFFT butterfly stage
      {"BB12", 1200, 6, 13, 3, 3, 1, 4, true},     // QAM constellation map
      {"BB3", 864, 1, 4, 1, 2, 1, 3, true},        // symbol scaling
      {"BB5", 370, 2, 8, 2, 3, 1, 3, true},        // twiddle update
      {"BB42", 800, 0, 5, 1, 3, 1, 3, true},       // cyclic-prefix copy
      {"BB32", 560, 1, 4, 1, 3, 1, 3, true},       // reorder
      {"BB29", 448, 1, 5, 1, 3, 1, 3, true},       // bit-reverse index
      {"BB21", 147, 4, 10, 3, 3, 1, 4, true},      // stage setup
      // The paper reports 18 blocks but tabulates only the heaviest 8;
      // the 10 below are assumptions with total weights < 2646.
      {"BB25", 336, 0, 4, 1, 2, 1, 3, true},       // 1344
      {"BB15", 96, 3, 7, 2, 3, 1, 3, true},        // 1248
      {"BB11", 200, 0, 6, 1, 2, 1, 3, true},       // 1200
      {"BB9", 128, 1, 7, 1, 3, 1, 3, true},        // 1152
      {"BB35", 80, 2, 6, 1, 3, 1, 3, true},        // 800
      {"BB4", 48, 2, 7, 1, 3, 1, 3, true},         // 528
      {"BB7", 64, 0, 8, 1, 2, 1, 3, true},         // 512
      {"BB18", 24, 4, 8, 2, 3, 1, 3, true},        // 384
      {"BB2", 1, 2, 10, 3, 2, 1, 3, false},        // init (14)
      {"BB1", 1, 0, 9, 2, 2, 1, 3, false},         // init (9)
  };
  return build_app("ofdm_tx", std::move(specs), /*base_seed=*/0x0FD31101u);
}

PaperApp build_jpeg_model() {
  std::vector<PaperBlockSpec> specs = {
      // label        freq    mul alu mem  li lo width loop
      {"BB6", 355024, 1, 1, 4, 5, 3, 2, true},     // DCT MAC inner step
      {"BB2", 8192, 24, 37, 24, 8, 4, 8, true},    // DCT row pass
      {"BB1", 8192, 24, 35, 24, 8, 4, 8, true},    // DCT column pass
      {"BB22", 65536, 1, 3, 5, 3, 1, 3, true},     // zig-zag scan step
      {"BB8", 30927, 0, 8, 8, 4, 2, 3, true},      // entropy emit
      {"BB3", 65536, 1, 1, 4, 3, 1, 2, true},      // quantize (recip-mul)
      {"BB16", 63540, 0, 3, 5, 3, 1, 3, true},     // coefficient classify
      {"BB17", 63540, 0, 2, 5, 3, 1, 2, true},     // run-length update
      // 14 further blocks (assumptions, total weights < 127080):
      {"BB4", 8192, 2, 8, 6, 4, 2, 3, true},       // 98304
      {"BB5", 8192, 1, 7, 3, 3, 1, 3, true},       // 73728
      {"BB15", 63540, 0, 1, 4, 2, 1, 2, true},     // 63540
      {"BB9", 30927, 0, 2, 5, 2, 1, 2, true},      // 61854
      {"BB14", 4096, 1, 4, 2, 3, 1, 3, true},      // 24576
      {"BB7", 1024, 4, 12, 6, 4, 2, 4, true},      // 20480
      {"BB10", 1024, 3, 9, 4, 3, 1, 3, true},      // 15360
      {"BB11", 1024, 0, 8, 3, 3, 1, 3, true},      // 8192
      {"BB13", 1024, 0, 5, 2, 2, 1, 3, true},      // 5120
      {"BB12", 256, 4, 10, 5, 4, 2, 3, true},      // 4608
      {"BB18", 1024, 0, 4, 2, 2, 1, 3, true},      // 4096
      {"BB19", 64, 5, 15, 8, 4, 2, 4, true},       // 1600
      {"BB20", 1, 6, 18, 10, 4, 2, 4, false},      // table init (30)
      {"BB21", 1, 4, 14, 8, 4, 2, 4, false},       // header emit (22)
  };
  return build_app("jpeg_enc", std::move(specs), /*base_seed=*/0x01BE6102u);
}

std::vector<core::CorpusApp> paper_corpus() {
  std::vector<core::CorpusApp> corpus(2);
  PaperApp ofdm = build_ofdm_model();
  corpus[0].name = "ofdm";
  corpus[0].cdfg = std::move(ofdm.cdfg);
  corpus[0].profile = std::move(ofdm.profile);
  PaperApp jpeg = build_jpeg_model();
  corpus[1].name = "jpeg";
  corpus[1].cdfg = std::move(jpeg.cdfg);
  corpus[1].profile = std::move(jpeg.profile);
  return corpus;
}

}  // namespace amdrel::workloads
