#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "ir/cdfg.h"
#include "ir/profile.h"

namespace amdrel::workloads {

/// Specification of one basic block of a paper-calibrated application
/// model. The paper's analysis weights are ALU = 1, MUL = 2, so the
/// block's Table-1 operation weight is alu + 2 * mul by construction;
/// mem is the block's shared-memory traffic (loads + stores), which the
/// paper's weight column does not include (see DESIGN.md).
struct PaperBlockSpec {
  std::string label;         ///< the paper's "Basic Block no.", e.g. "BB22"
  std::uint64_t exec_freq = 0;
  int mul = 0;
  int alu = 0;
  int mem = 0;
  int live_in = 3;
  int live_out = 1;
  int width = 3;             ///< DFG parallelism handed to the generator
  bool in_loop = true;       ///< blocks with freq 1 are setup code
};

/// A paper-calibrated application: CDFG + the profile the paper's dynamic
/// analysis reported (Table 1 execution frequencies), plus the specs for
/// inspection.
struct PaperApp {
  ir::Cdfg cdfg{"app"};
  ir::ProfileData profile;
  std::vector<PaperBlockSpec> specs;  ///< specs[i] describes block id i+1
                                      ///< (block 0 is the entry stub)

  /// Block id carrying the given paper label (e.g. "BB22").
  ir::BlockId block_by_label(const std::string& label) const;
};

/// The IEEE 802.11a OFDM transmitter front-end (QAM, 64-point IFFT,
/// cyclic prefix) as characterized in the paper: 18 basic blocks, profiled
/// for 6 payload symbols. The top-8 rows of Table 1 are reproduced
/// exactly; the remaining 10 blocks are documented assumptions with
/// weights below the 8th entry.
PaperApp build_ofdm_model();

/// The JPEG encoder (8x8 DCT, quantizer, zig-zag, entropy encoder): 22
/// basic blocks, profiled for a 256x256-byte image. Top-8 Table 1 rows
/// exact; the remaining 14 blocks are documented assumptions.
PaperApp build_jpeg_model();

/// The timing constraints used in the paper's experiments (Tables 2/3).
inline constexpr std::int64_t kOfdmTimingConstraint = 60000;
inline constexpr std::int64_t kJpegTimingConstraint = 11000000;

/// Both paper applications as a sweep corpus ({"ofdm", "jpeg"}), for the
/// grid x corpus explorer, its tests and the benches.
std::vector<core::CorpusApp> paper_corpus();

}  // namespace amdrel::workloads
