#include "workloads/golden.h"

#include <array>

#include "support/error.h"

namespace amdrel::workloads {

namespace {

// Tables identical to the ones embedded in minic_sources.cc.
constexpr std::array<std::int32_t, 32> kTwRe = {
    16384, 16305, 16069, 15679, 15137, 14449, 13623, 12665,
    11585, 10394, 9102,  7723,  6270,  4756,  3196,  1606,
    0,     -1606, -3196, -4756, -6270, -7723, -9102, -10394,
    -11585, -12665, -13623, -14449, -15137, -15679, -16069, -16305};
constexpr std::array<std::int32_t, 32> kTwIm = {
    0,     1606,  3196,  4756,  6270,  7723,  9102,  10394,
    11585, 12665, 13623, 14449, 15137, 15679, 16069, 16305,
    16384, 16305, 16069, 15679, 15137, 14449, 13623, 12665,
    11585, 10394, 9102,  7723,  6270,  4756,  3196,  1606};
constexpr std::array<std::int32_t, 64> kBrev = {
    0, 32, 16, 48, 8,  40, 24, 56, 4, 36, 20, 52, 12, 44, 28, 60,
    2, 34, 18, 50, 10, 42, 26, 58, 6, 38, 22, 54, 14, 46, 30, 62,
    1, 33, 17, 49, 9,  41, 25, 57, 5, 37, 21, 53, 13, 45, 29, 61,
    3, 35, 19, 51, 11, 43, 27, 59, 7, 39, 23, 55, 15, 47, 31, 63};
constexpr std::array<std::int32_t, 48> kCarriers = {
    38, 39, 40, 41, 42, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54,
    55, 56, 58, 59, 60, 61, 62, 63, 1,  2,  3,  4,  5,  6,  8,  9,
    10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 22, 23, 24, 25, 26};
constexpr std::array<std::int32_t, 4> kPilots = {43, 57, 7, 21};

constexpr std::array<std::int32_t, 64> kCt = {
    2896, 2896,  2896,  2896,  2896,  2896,  2896,  2896,
    4017, 3406,  2276,  799,   -799,  -2276, -3406, -4017,
    3784, 1567,  -1567, -3784, -3784, -1567, 1567,  3784,
    3406, -799,  -4017, -2276, 2276,  4017,  799,   -3406,
    2896, -2896, -2896, 2896,  2896,  -2896, -2896, 2896,
    2276, -4017, 799,   3406,  -3406, -799,  4017,  -2276,
    1567, -3784, 3784,  -1567, -1567, 3784,  -3784, 1567,
    799,  -2276, 3406,  -4017, 4017,  -3406, 2276,  -799};
constexpr std::array<std::int32_t, 64> kQRecip = {
    4096, 5958, 6554, 4096, 2731, 1638, 1285, 1074, 5461, 5461, 4681,
    3449, 2521, 1130, 1092, 1192, 4681, 5041, 4096, 2731, 1638, 1150,
    950,  1170, 4681, 3855, 2979, 2260, 1285, 753,  819,  1057, 3641,
    2979, 1771, 1170, 964,  601,  636,  851,  2731, 1872, 1192, 1024,
    809,  630,  580,  712,  1337, 1024, 840,  753,  636,  542,  546,
    649,  910,  712,  690,  669,  585,  655,  636,  662};
constexpr std::array<std::int32_t, 64> kZz = {
    0,  8,  1,  2,  9,  16, 24, 17, 10, 3,  4,  11, 18, 25, 32, 40,
    33, 26, 19, 12, 5,  6,  13, 20, 27, 34, 41, 48, 56, 49, 42, 35,
    28, 21, 14, 7,  15, 22, 29, 36, 43, 50, 57, 58, 51, 44, 37, 30,
    23, 31, 38, 45, 52, 59, 60, 53, 46, 39, 47, 54, 61, 62, 55, 63};

std::int32_t wrap(std::int64_t v) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
}
std::int32_t mul(std::int32_t a, std::int32_t b) {
  return wrap(std::int64_t{a} * b);
}

}  // namespace

OfdmGolden golden_ofdm(const std::vector<std::int32_t>& bits, int symbols) {
  require(static_cast<int>(bits.size()) >= symbols * 96,
          "golden_ofdm: not enough input bits");
  OfdmGolden out;
  out.out_re.assign(static_cast<std::size_t>(symbols) * 80, 0);
  out.out_im.assign(static_cast<std::size_t>(symbols) * 80, 0);

  std::array<std::int32_t, 64> sym_re{}, sym_im{}, fft_re{}, fft_im{};
  for (int s = 0; s < symbols; ++s) {
    sym_re.fill(0);
    sym_im.fill(0);
    for (int c = 0; c < 48; ++c) {
      const std::int32_t b0 = bits[s * 96 + 2 * c];
      const std::int32_t b1 = bits[s * 96 + 2 * c + 1];
      sym_re[kCarriers[c]] = (2 * b0 - 1) * 11585;
      sym_im[kCarriers[c]] = (2 * b1 - 1) * 11585;
    }
    for (const std::int32_t p : kPilots) {
      sym_re[p] = 11585;
      sym_im[p] = 0;
    }

    for (int i = 0; i < 64; ++i) {
      fft_re[i] = sym_re[kBrev[i]];
      fft_im[i] = sym_im[kBrev[i]];
    }
    int half = 1, step = 32;
    while (half < 64) {
      for (int g = 0; g < 64; g += 2 * half) {
        for (int k = 0; k < half; ++k) {
          const std::int32_t tr = kTwRe[k * step];
          const std::int32_t ti = kTwIm[k * step];
          const int lo = g + k, hi = g + k + half;
          const std::int32_t xr =
              wrap(std::int64_t{mul(fft_re[hi], tr)} - mul(fft_im[hi], ti)) >>
              14;
          const std::int32_t xi =
              wrap(std::int64_t{mul(fft_re[hi], ti)} + mul(fft_im[hi], tr)) >>
              14;
          fft_re[hi] = (fft_re[lo] - xr) >> 1;
          fft_im[hi] = (fft_im[lo] - xi) >> 1;
          fft_re[lo] = (fft_re[lo] + xr) >> 1;
          fft_im[lo] = (fft_im[lo] + xi) >> 1;
        }
      }
      half *= 2;
      step >>= 1;
    }

    for (int i = 0; i < 16; ++i) {
      out.out_re[s * 80 + i] = fft_re[48 + i];
      out.out_im[s * 80 + i] = fft_im[48 + i];
    }
    for (int i = 0; i < 64; ++i) {
      out.out_re[s * 80 + 16 + i] = fft_re[i];
      out.out_im[s * 80 + 16 + i] = fft_im[i];
    }
  }
  for (std::size_t i = 0; i < out.out_re.size(); ++i) {
    out.checksum = wrap(std::int64_t{out.checksum} +
                        (out.out_re[i] ^ out.out_im[i]));
  }
  return out;
}

JpegGolden golden_jpeg(const std::vector<std::int32_t>& image, int width,
                       int height) {
  require(width % 8 == 0 && height % 8 == 0,
          "golden_jpeg: dimensions must be multiples of 8");
  require(static_cast<int>(image.size()) >= width * height,
          "golden_jpeg: image too small");
  JpegGolden out;
  out.coeffs.assign(static_cast<std::size_t>(width) * height, 0);

  std::array<std::int32_t, 64> blk{}, tmp{};
  std::int32_t prev_dc = 0;
  std::int32_t bitcost = 0;
  const int bw = width / 8;

  for (int by = 0; by < height / 8; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
          blk[r * 8 + c] = image[(by * 8 + r) * width + bx * 8 + c] - 128;
        }
      }
      for (int r = 0; r < 8; ++r) {
        for (int k = 0; k < 8; ++k) {
          std::int32_t acc = 0;
          for (int n = 0; n < 8; ++n) {
            acc = wrap(std::int64_t{acc} + mul(blk[r * 8 + n], kCt[k * 8 + n]));
          }
          tmp[r * 8 + k] = acc >> 10;
        }
      }
      for (int c = 0; c < 8; ++c) {
        for (int k = 0; k < 8; ++k) {
          std::int32_t acc = 0;
          for (int n = 0; n < 8; ++n) {
            acc = wrap(std::int64_t{acc} + mul(tmp[n * 8 + c], kCt[k * 8 + n]));
          }
          blk[k * 8 + c] = acc >> 16;
        }
      }
      for (int i = 0; i < 64; ++i) {
        std::int32_t v = blk[i];
        const bool neg = v < 0;
        if (neg) v = -v;
        std::int32_t q = mul(v, kQRecip[i]) >> 16;
        if (neg) q = -q;
        tmp[i] = q;
      }
      const int base = (by * bw + bx) * 64;
      for (int i = 0; i < 64; ++i) out.coeffs[base + i] = tmp[kZz[i]];

      std::int32_t d = out.coeffs[base] - prev_dc;
      prev_dc = out.coeffs[base];
      if (d < 0) d = -d;
      std::int32_t dsize = 0;
      while (d > 0) {
        dsize++;
        d >>= 1;
      }
      bitcost += 3 + 2 * dsize;
      std::int32_t run = 0;
      for (int i = 1; i < 64; ++i) {
        const std::int32_t v = out.coeffs[base + i];
        if (v == 0) {
          run++;
        } else {
          while (run >= 16) {
            bitcost += 11;
            run -= 16;
          }
          std::int32_t m = v < 0 ? -v : v;
          std::int32_t size = 0;
          while (m > 0) {
            size++;
            m >>= 1;
          }
          bitcost += 4 + run + 2 * size;
          run = 0;
        }
      }
      if (run > 0) bitcost += 4;
    }
  }
  out.bit_cost = bitcost;
  return out;
}

FirGolden golden_fir(const std::vector<std::int32_t>& samples, int n) {
  static constexpr std::array<std::int32_t, 16> kTaps = {
      -2, -5, 3, 17, 38, 62, 84, 97, 97, 84, 62, 38, 17, 3, -5, -2};
  require(static_cast<int>(samples.size()) >= n + 16,
          "golden_fir: not enough samples");
  FirGolden out;
  out.filtered.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    std::int32_t acc = 0;
    for (int t = 0; t < 16; ++t) {
      acc = wrap(std::int64_t{acc} + mul(samples[i + t], kTaps[t]));
    }
    out.filtered[i] = acc >> 8;
  }
  for (int i = 0; i < n; ++i) out.checksum ^= out.filtered[i];
  return out;
}

SobelGolden golden_sobel(const std::vector<std::int32_t>& image, int width,
                         int height) {
  require(width >= 3 && height >= 3, "golden_sobel: image too small");
  require(static_cast<int>(image.size()) >= width * height,
          "golden_sobel: image too small for dimensions");
  SobelGolden out;
  out.edges.assign(static_cast<std::size_t>(width) * height, 0);
  for (int y = 1; y < height - 1; ++y) {
    for (int x = 1; x < width - 1; ++x) {
      const int up = (y - 1) * width + x;
      const int mid = y * width + x;
      const int down = (y + 1) * width + x;
      std::int32_t gx = image[up + 1] - image[up - 1] +
                        2 * image[mid + 1] - 2 * image[mid - 1] +
                        image[down + 1] - image[down - 1];
      std::int32_t gy = image[down - 1] + 2 * image[down] + image[down + 1] -
                        image[up - 1] - 2 * image[up] - image[up + 1];
      if (gx < 0) gx = -gx;
      if (gy < 0) gy = -gy;
      std::int32_t mag = gx + gy;
      if (mag > 255) mag = 255;
      out.edges[mid] = mag;
    }
  }
  for (const std::int32_t v : out.edges) {
    out.checksum = wrap(std::int64_t{out.checksum} + v);
  }
  return out;
}

namespace {
std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}
}  // namespace

std::vector<std::int32_t> random_bits(std::size_t count, std::uint64_t seed) {
  std::uint64_t state = seed | 1;
  std::vector<std::int32_t> bits(count);
  for (auto& bit : bits) bit = static_cast<std::int32_t>(xorshift(state) & 1);
  return bits;
}

std::vector<std::int32_t> random_pixels(std::size_t count,
                                        std::uint64_t seed) {
  std::uint64_t state = seed | 1;
  std::vector<std::int32_t> pixels(count);
  for (auto& px : pixels) px = static_cast<std::int32_t>(xorshift(state) & 255);
  return pixels;
}

std::vector<std::int32_t> random_samples(std::size_t count,
                                         std::uint64_t seed) {
  std::uint64_t state = seed | 1;
  std::vector<std::int32_t> samples(count);
  for (auto& s : samples) {
    s = static_cast<std::int32_t>(xorshift(state) % 2048) - 1024;
  }
  return samples;
}

}  // namespace amdrel::workloads
