#pragma once

#include <cstdint>
#include <vector>

namespace amdrel::workloads {

/// Bit-exact C++ reference implementations of the MiniC workloads
/// (minic_sources.h). Tests run the MiniC programs through the
/// interpreter and assert outputs match these references element by
/// element, validating the whole front-end + interpreter stack.

struct OfdmGolden {
  std::vector<std::int32_t> out_re;
  std::vector<std::int32_t> out_im;
  std::int32_t checksum = 0;
};

/// `bits` holds symbols*96 QPSK bits (0/1).
OfdmGolden golden_ofdm(const std::vector<std::int32_t>& bits, int symbols);

struct JpegGolden {
  std::vector<std::int32_t> coeffs;  ///< width*height quantized, zig-zagged
  std::int32_t bit_cost = 0;
};

/// `image` holds width*height pixels (0..255).
JpegGolden golden_jpeg(const std::vector<std::int32_t>& image, int width,
                       int height);

struct FirGolden {
  std::vector<std::int32_t> filtered;
  std::int32_t checksum = 0;
};

/// `samples` holds n+16 input samples.
FirGolden golden_fir(const std::vector<std::int32_t>& samples, int n);

struct SobelGolden {
  std::vector<std::int32_t> edges;
  std::int32_t checksum = 0;
};

/// `image` holds width*height pixels (0..255).
SobelGolden golden_sobel(const std::vector<std::int32_t>& image, int width,
                         int height);

/// Deterministic pseudo-random test vectors (xorshift-based).
std::vector<std::int32_t> random_bits(std::size_t count, std::uint64_t seed);
std::vector<std::int32_t> random_pixels(std::size_t count,
                                        std::uint64_t seed);
std::vector<std::int32_t> random_samples(std::size_t count,
                                         std::uint64_t seed);

}  // namespace amdrel::workloads
