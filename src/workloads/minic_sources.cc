#include "workloads/minic_sources.h"

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::workloads {

namespace {

// Shared fixed-point tables (also mirrored by the golden references in
// golden.cc; keep the two in sync).
constexpr const char* kOfdmTables = R"(
const int tw_re[32] = {
  16384, 16305, 16069, 15679, 15137, 14449, 13623, 12665,
  11585, 10394, 9102, 7723, 6270, 4756, 3196, 1606,
  0, -1606, -3196, -4756, -6270, -7723, -9102, -10394,
  -11585, -12665, -13623, -14449, -15137, -15679, -16069, -16305
};
const int tw_im[32] = {
  0, 1606, 3196, 4756, 6270, 7723, 9102, 10394,
  11585, 12665, 13623, 14449, 15137, 15679, 16069, 16305,
  16384, 16305, 16069, 15679, 15137, 14449, 13623, 12665,
  11585, 10394, 9102, 7723, 6270, 4756, 3196, 1606
};
const int brev[64] = {
  0, 32, 16, 48, 8, 40, 24, 56, 4, 36, 20, 52, 12, 44, 28, 60,
  2, 34, 18, 50, 10, 42, 26, 58, 6, 38, 22, 54, 14, 46, 30, 62,
  1, 33, 17, 49, 9, 41, 25, 57, 5, 37, 21, 53, 13, 45, 29, 61,
  3, 35, 19, 51, 11, 43, 27, 59, 7, 39, 23, 55, 15, 47, 31, 63
};
const int carriers[48] = {
  38, 39, 40, 41, 42, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54,
  55, 56, 58, 59, 60, 61, 62, 63, 1, 2, 3, 4, 5, 6, 8, 9,
  10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 22, 23, 24, 25, 26
};
const int pilots[4] = {43, 57, 7, 21};
)";

constexpr const char* kJpegTables = R"(
const int ct[64] = {
  2896, 2896, 2896, 2896, 2896, 2896, 2896, 2896,
  4017, 3406, 2276, 799, -799, -2276, -3406, -4017,
  3784, 1567, -1567, -3784, -3784, -1567, 1567, 3784,
  3406, -799, -4017, -2276, 2276, 4017, 799, -3406,
  2896, -2896, -2896, 2896, 2896, -2896, -2896, 2896,
  2276, -4017, 799, 3406, -3406, -799, 4017, -2276,
  1567, -3784, 3784, -1567, -1567, 3784, -3784, 1567,
  799, -2276, 3406, -4017, 4017, -3406, 2276, -799
};
const int qrecip[64] = {
  4096, 5958, 6554, 4096, 2731, 1638, 1285, 1074,
  5461, 5461, 4681, 3449, 2521, 1130, 1092, 1192,
  4681, 5041, 4096, 2731, 1638, 1150, 950, 1170,
  4681, 3855, 2979, 2260, 1285, 753, 819, 1057,
  3641, 2979, 1771, 1170, 964, 601, 636, 851,
  2731, 1872, 1192, 1024, 809, 630, 580, 712,
  1337, 1024, 840, 753, 636, 542, 546, 649,
  910, 712, 690, 669, 585, 655, 636, 662
};
const int zz[64] = {
  0, 8, 1, 2, 9, 16, 24, 17, 10, 3, 4, 11, 18, 25, 32, 40,
  33, 26, 19, 12, 5, 6, 13, 20, 27, 34, 41, 48, 56, 49, 42, 35,
  28, 21, 14, 7, 15, 22, 29, 36, 43, 50, 57, 58, 51, 44, 37, 30,
  23, 31, 38, 45, 52, 59, 60, 53, 46, 39, 47, 54, 61, 62, 55, 63
};
)";

}  // namespace

std::string ofdm_source(int symbols) {
  require(symbols >= 1 && symbols <= 512, "ofdm_source: bad symbol count");
  const int nbits = symbols * 96;
  const int nout = symbols * 80;
  return cat(kOfdmTables, R"(
int bits[)", nbits, R"(];
int out_re[)", nout, R"(];
int out_im[)", nout, R"(];
int sym_re[64];
int sym_im[64];
int fft_re[64];
int fft_im[64];

void qam_map(int s) {
  for (int i = 0; i < 64; i++) { sym_re[i] = 0; sym_im[i] = 0; }
  for (int c = 0; c < 48; c++) {
    int b0 = bits[s * 96 + 2 * c];
    int b1 = bits[s * 96 + 2 * c + 1];
    sym_re[carriers[c]] = (2 * b0 - 1) * 11585;
    sym_im[carriers[c]] = (2 * b1 - 1) * 11585;
  }
  for (int p = 0; p < 4; p++) {
    sym_re[pilots[p]] = 11585;
    sym_im[pilots[p]] = 0;
  }
}

void ifft64() {
  for (int i = 0; i < 64; i++) {
    fft_re[i] = sym_re[brev[i]];
    fft_im[i] = sym_im[brev[i]];
  }
  int half = 1;
  int step = 32;
  while (half < 64) {
    for (int g = 0; g < 64; g = g + 2 * half) {
      for (int k = 0; k < half; k++) {
        int tr = tw_re[k * step];
        int ti = tw_im[k * step];
        int lo = g + k;
        int hi = g + k + half;
        int xr = (fft_re[hi] * tr - fft_im[hi] * ti) >> 14;
        int xi = (fft_re[hi] * ti + fft_im[hi] * tr) >> 14;
        fft_re[hi] = (fft_re[lo] - xr) >> 1;
        fft_im[hi] = (fft_im[lo] - xi) >> 1;
        fft_re[lo] = (fft_re[lo] + xr) >> 1;
        fft_im[lo] = (fft_im[lo] + xi) >> 1;
      }
    }
    half = half * 2;
    step = step >> 1;
  }
}

void add_prefix(int s) {
  for (int i = 0; i < 16; i++) {
    out_re[s * 80 + i] = fft_re[48 + i];
    out_im[s * 80 + i] = fft_im[48 + i];
  }
  for (int i = 0; i < 64; i++) {
    out_re[s * 80 + 16 + i] = fft_re[i];
    out_im[s * 80 + 16 + i] = fft_im[i];
  }
}

int main() {
  for (int s = 0; s < )", symbols, R"(; s++) {
    qam_map(s);
    ifft64();
    add_prefix(s);
  }
  int check = 0;
  for (int i = 0; i < )", nout, R"(; i++) {
    check += out_re[i] ^ out_im[i];
  }
  return check;
}
)");
}

std::string jpeg_source(int width, int height) {
  require(width % 8 == 0 && height % 8 == 0 && width > 0 && height > 0,
          "jpeg_source: dimensions must be positive multiples of 8");
  const int pixels = width * height;
  const int bw = width / 8;
  return cat(kJpegTables, R"(
int image[)", pixels, R"(];
int coeffs[)", pixels, R"(];
int blk[64];
int tmp[64];
int bitcost;
int prev_dc;

void load_block(int bx, int by) {
  for (int r = 0; r < 8; r++) {
    for (int c = 0; c < 8; c++) {
      blk[r * 8 + c] = image[(by * 8 + r) * )", width, R"( + bx * 8 + c] - 128;
    }
  }
}

void dct_rows() {
  for (int r = 0; r < 8; r++) {
    for (int k = 0; k < 8; k++) {
      int acc = 0;
      for (int n = 0; n < 8; n++) {
        acc += blk[r * 8 + n] * ct[k * 8 + n];
      }
      tmp[r * 8 + k] = acc >> 10;
    }
  }
}

void dct_cols() {
  for (int c = 0; c < 8; c++) {
    for (int k = 0; k < 8; k++) {
      int acc = 0;
      for (int n = 0; n < 8; n++) {
        acc += tmp[n * 8 + c] * ct[k * 8 + n];
      }
      blk[k * 8 + c] = acc >> 16;
    }
  }
}

void quantize() {
  for (int i = 0; i < 64; i++) {
    int v = blk[i];
    int neg = 0;
    if (v < 0) { neg = 1; v = -v; }
    int q = (v * qrecip[i]) >> 16;
    if (neg == 1) { q = -q; }
    tmp[i] = q;
  }
}

void zigzag_scan(int base) {
  for (int i = 0; i < 64; i++) {
    coeffs[base + i] = tmp[zz[i]];
  }
}

void entropy_cost(int base) {
  int d = coeffs[base] - prev_dc;
  prev_dc = coeffs[base];
  if (d < 0) { d = -d; }
  int dsize = 0;
  while (d > 0) { dsize++; d = d >> 1; }
  bitcost += 3 + dsize + dsize;
  int run = 0;
  for (int i = 1; i < 64; i++) {
    int v = coeffs[base + i];
    if (v == 0) {
      run++;
    } else {
      while (run >= 16) { bitcost += 11; run -= 16; }
      int m = v;
      if (m < 0) { m = -m; }
      int size = 0;
      while (m > 0) { size++; m = m >> 1; }
      bitcost += 4 + run + size + size;
      run = 0;
    }
  }
  if (run > 0) { bitcost += 4; }
}

int main() {
  prev_dc = 0;
  bitcost = 0;
  for (int by = 0; by < )", height / 8, R"(; by++) {
    for (int bx = 0; bx < )", bw, R"(; bx++) {
      load_block(bx, by);
      dct_rows();
      dct_cols();
      quantize();
      zigzag_scan((by * )", bw, R"( + bx) * 64);
      entropy_cost((by * )", bw, R"( + bx) * 64);
    }
  }
  return bitcost;
}
)");
}

std::string fir_source(int n) {
  require(n >= 1 && n <= 1 << 20, "fir_source: bad sample count");
  return cat(R"(
const int taps[16] = {
  -2, -5, 3, 17, 38, 62, 84, 97, 97, 84, 62, 38, 17, 3, -5, -2
};
int samples[)", n + 16, R"(];
int filtered[)", n, R"(];

int main() {
  for (int i = 0; i < )", n, R"(; i++) {
    int acc = 0;
    for (int t = 0; t < 16; t++) {
      acc += samples[i + t] * taps[t];
    }
    filtered[i] = acc >> 8;
  }
  int check = 0;
  for (int i = 0; i < )", n, R"(; i++) { check ^= filtered[i]; }
  return check;
}
)");
}

std::string sobel_source(int width, int height) {
  require(width >= 3 && height >= 3, "sobel_source: image too small");
  const int pixels = width * height;
  return cat(R"(
int image[)", pixels, R"(];
int edges[)", pixels, R"(];

int main() {
  for (int y = 1; y < )", height - 1, R"(; y++) {
    for (int x = 1; x < )", width - 1, R"(; x++) {
      int up = (y - 1) * )", width, R"( + x;
      int mid = y * )", width, R"( + x;
      int down = (y + 1) * )", width, R"( + x;
      int gx = image[up + 1] - image[up - 1]
             + 2 * image[mid + 1] - 2 * image[mid - 1]
             + image[down + 1] - image[down - 1];
      int gy = image[down - 1] + 2 * image[down] + image[down + 1]
             - image[up - 1] - 2 * image[up] - image[up + 1];
      if (gx < 0) { gx = -gx; }
      if (gy < 0) { gy = -gy; }
      int mag = gx + gy;
      if (mag > 255) { mag = 255; }
      edges[mid] = mag;
    }
  }
  int check = 0;
  for (int i = 0; i < )", pixels, R"(; i++) { check += edges[i]; }
  return check;
}
)");
}

}  // namespace amdrel::workloads
