#include "core/sweep_service.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <istream>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <cerrno>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/json_lines.h"
#include "core/sweep_cache.h"
#include "platform/platform.h"
#include "support/error.h"
#include "support/strings.h"

namespace amdrel::core {

using jsonl::JsonParser;
using jsonl::JsonValue;
using jsonl::get_int;
using jsonl::get_string;

std::vector<std::vector<std::size_t>> partition_shards(std::size_t shard_count,
                                                       int workers) {
  require(workers >= 1, "partition_shards: workers must be >= 1");
  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(workers));
  for (std::size_t s = 0; s < shard_count; ++s) {
    out[s % out.size()].push_back(s);
  }
  return out;
}

namespace {

void emit_shard(std::ostream& os, std::size_t shard,
                const std::vector<SweepCell>& cells, std::size_t used) {
  os << "{\"kind\":\"shard\",\"shard\":" << shard << ",\"used\":" << used
     << "}\n";
  for (std::size_t i = 0; i < used; ++i) {
    os << "{\"kind\":\"cell\",\"shard\":" << shard << ",\"slot\":" << i
       << ",";
    write_cell_payload(os, cells[i].report, cells[i].moved_names);
    os << "}\n";
  }
  // Per-shard flush keeps a pipe transport streaming instead of
  // buffering the whole run.
  os.flush();
}

}  // namespace

std::size_t run_sweep_worker(const std::vector<CorpusApp>& corpus,
                             const SweepSpec& spec,
                             const std::vector<std::size_t>& assigned,
                             std::ostream& os) {
  validate_sweep_inputs(corpus, spec);
  const std::size_t shards = sweep_shard_count(corpus, spec);
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  std::vector<char> claimed(shards, 0);
  for (const std::size_t shard : assigned) {
    require(shard < shards, cat("run_sweep_worker: shard ", shard,
                                " out of range (", shards, " shards)"));
    require(!claimed[shard], cat("run_sweep_worker: duplicate shard ", shard));
    claimed[shard] = 1;
  }
  const std::vector<Fingerprint> app_fps =
      spec.cache ? sweep_app_fingerprints(corpus) : std::vector<Fingerprint>{};

  os << "{\"kind\":\"wire_header\",\"protocol\":" << kSweepWireProtocolVersion
     << ",\"schema_version\":" << kSweepCacheSchemaVersion
     << ",\"fingerprint_algorithm\":" << kFingerprintAlgorithmVersion
     << ",\"shards\":" << shards << "}\n";

  std::size_t total = 0;
  const int threads = worker_count(assigned.size(), spec.threads);
  if (threads <= 1) {
    for (const std::size_t shard : assigned) {
      std::vector<SweepCell> cells(cells_per_shard);
      const std::size_t used =
          compute_sweep_shard(corpus, spec, app_fps, shard, cells.data());
      emit_shard(os, shard, cells, used);
      total += used;
    }
  } else {
    // A pool computes shards in claim order, but the stream is emitted
    // strictly in `assigned` order — same deterministic-output recipe as
    // the single-process sweep's precomputed slots.
    struct Pending {
      std::vector<SweepCell> cells;
      std::size_t used = 0;
      bool done = false;
    };
    std::vector<Pending> pending(assigned.size());
    std::mutex mutex;
    std::condition_variable ready;
    std::atomic<std::size_t> next{0};
    auto pool_worker = [&]() {
      for (;;) {
        const std::size_t job = next.fetch_add(1);
        if (job >= assigned.size()) return;
        std::vector<SweepCell> cells(cells_per_shard);
        const std::size_t used = compute_sweep_shard(corpus, spec, app_fps,
                                                     assigned[job],
                                                     cells.data());
        {
          const std::lock_guard<std::mutex> lock(mutex);
          pending[job].cells = std::move(cells);
          pending[job].used = used;
          pending[job].done = true;
        }
        ready.notify_all();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(pool_worker);
    for (std::size_t job = 0; job < assigned.size(); ++job) {
      std::unique_lock<std::mutex> lock(mutex);
      ready.wait(lock, [&] { return pending[job].done; });
      const std::vector<SweepCell> cells = std::move(pending[job].cells);
      const std::size_t used = pending[job].used;
      lock.unlock();
      emit_shard(os, assigned[job], cells, used);
      total += used;
    }
    for (std::thread& t : pool) t.join();
  }

  os << "{\"kind\":\"worker_done\",\"cells\":" << total << "}\n";
  os.flush();
  require(os.good(), "run_sweep_worker: stream write failed");
  return total;
}

void consume_worker_stream(std::istream& in,
                           const std::vector<CorpusApp>& corpus,
                           const SweepSpec& spec,
                           const std::vector<std::size_t>& assigned,
                           SweepSummary& summary,
                           std::vector<std::size_t>& shard_used) {
  const std::size_t shards = sweep_shard_count(corpus, spec);
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  require(summary.cells.size() == shards * cells_per_shard,
          "consume_worker_stream: summary slot layout mismatch");
  require(shard_used.size() == shards,
          "consume_worker_stream: shard_used size mismatch");

  const std::vector<double> budgets =
      spec.energy_budgets.empty()
          ? std::vector<double>{spec.base.cost.energy_budget_pj}
          : spec.energy_budgets;
  const std::size_t budget_count = budgets.size();
  const std::size_t strategy_count = spec.strategies.size();
  const std::size_t ordering_count = spec.orderings.size();
  const std::size_t inner = budget_count * strategy_count * ordering_count;

  const std::set<std::size_t> expected(assigned.begin(), assigned.end());
  std::set<std::size_t> consumed;

  std::string line;
  std::size_t line_no = 0;
  auto read_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++line_no;
    return true;
  };
  auto parse_object = [&](JsonValue& object) {
    require(JsonParser(line).parse(object) &&
                object.kind == JsonValue::Kind::kObject,
            cat("worker stream:", line_no, ": not a JSON object"));
  };
  auto field = [&](const JsonValue& object, const char* name) {
    std::int64_t value = 0;
    require(get_int(object, name, value) && value >= 0,
            cat("worker stream:", line_no, ": missing or invalid \"", name,
                "\""));
    return static_cast<std::size_t>(value);
  };

  // Header first: reject a worker speaking another protocol/schema
  // before trusting a single cell.
  require(read_line(), "worker stream: empty (no wire_header)");
  {
    JsonValue object;
    parse_object(object);
    std::string kind;
    require(get_string(object, "kind", kind) && kind == "wire_header",
            "worker stream: missing wire_header line");
    require(field(object, "protocol") ==
                static_cast<std::size_t>(kSweepWireProtocolVersion),
            "worker stream: wire protocol version mismatch");
    require(field(object, "schema_version") ==
                static_cast<std::size_t>(kSweepCacheSchemaVersion),
            "worker stream: schema version mismatch");
    require(field(object, "fingerprint_algorithm") ==
                static_cast<std::size_t>(kFingerprintAlgorithmVersion),
            "worker stream: fingerprint algorithm mismatch");
    require(field(object, "shards") == shards,
            "worker stream: shard count mismatch");
  }

  std::size_t total_cells = 0;
  bool done = false;
  while (read_line()) {
    require(!done, "worker stream: data after worker_done");
    JsonValue object;
    parse_object(object);
    std::string kind;
    require(get_string(object, "kind", kind),
            cat("worker stream:", line_no, ": missing \"kind\""));
    if (kind == "worker_done") {
      require(field(object, "cells") == total_cells,
              "worker stream: worker_done cell count mismatch");
      done = true;
      continue;
    }
    require(kind == "shard", cat("worker stream:", line_no,
                                 ": unexpected kind \"", kind, "\""));

    const std::size_t shard = field(object, "shard");
    const std::size_t used = field(object, "used");
    require(expected.count(shard) != 0,
            cat("worker stream: shard ", shard, " was not assigned"));
    require(consumed.insert(shard).second,
            cat("worker stream: shard ", shard, " streamed twice"));
    require(used <= cells_per_shard && used % inner == 0,
            cat("worker stream: shard ", shard, " claims ", used,
                " cells (capacity ", cells_per_shard, ")"));

    // Coordinates derivable from the shard index are derived HERE, from
    // the same inputs the single-process sweep uses — the wire cannot
    // place a cell on a platform it was not computed for.
    const std::size_t app_index = shard / spec.grid.size();
    const std::size_t platform_index = shard % spec.grid.size();
    const double area =
        spec.grid.areas[platform_index / spec.grid.cgc_counts.size()];
    const int cgcs =
        spec.grid.cgc_counts[platform_index % spec.grid.cgc_counts.size()];
    const double cost =
        platform::platform_cost(platform::make_paper_platform(area, cgcs));

    SweepCell* slots = summary.cells.data() + shard * cells_per_shard;
    for (std::size_t slot = 0; slot < used; ++slot) {
      require(read_line(), cat("worker stream: truncated inside shard ",
                               shard, " (", slot, " of ", used, " cells)"));
      JsonValue cell_object;
      parse_object(cell_object);
      std::string cell_kind;
      require(get_string(cell_object, "kind", cell_kind) &&
                  cell_kind == "cell" &&
                  field(cell_object, "shard") == shard &&
                  field(cell_object, "slot") == slot,
              cat("worker stream:", line_no, ": expected cell ", slot,
                  " of shard ", shard));
      CachedCell payload;
      require(read_cell_payload(cell_object, payload),
              cat("worker stream:", line_no, ": malformed cell payload"));
      const std::size_t oi = slot % ordering_count;
      const std::size_t si = (slot / ordering_count) % strategy_count;
      const std::size_t bi =
          (slot / (ordering_count * strategy_count)) % budget_count;
      SweepCell& cell = slots[slot];
      cell.app = app_index;
      cell.a_fpga = area;
      cell.cgcs = cgcs;
      cell.platform_cost = cost;
      cell.constraint = payload.report.timing_constraint;
      cell.energy_budget_pj = budgets[bi];
      cell.strategy = spec.strategies[si];
      cell.ordering = spec.orderings[oi];
      cell.report = std::move(payload.report);
      cell.moved_names = std::move(payload.moved_names);
    }
    shard_used[shard] = used;
    total_cells += used;
  }
  require(done, "worker stream: truncated (no worker_done)");
  require(consumed.size() == expected.size(),
          cat("worker stream: streamed ", consumed.size(), " of ",
              expected.size(), " assigned shards"));
}

SweepSummary serve_design_space(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec,
                                const ServeOptions& options) {
#ifdef _WIN32
  (void)corpus;
  (void)spec;
  (void)options;
  fail("serve_design_space: requires POSIX fork/pipe");
#else
  validate_sweep_inputs(corpus, spec);
  require(static_cast<bool>(options.worker_command),
          "serve_design_space: no worker_command configured");
  const std::size_t shards = sweep_shard_count(corpus, spec);
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  int workers = options.workers < 1 ? 1 : options.workers;
  if (static_cast<std::size_t>(workers) > shards) {
    workers = static_cast<int>(shards);
  }
  const std::vector<std::vector<std::size_t>> partition =
      partition_shards(shards, workers);

  SweepSummary summary;
  summary.apps.reserve(corpus.size());
  for (const CorpusApp& app : corpus) summary.apps.push_back(app.name);
  summary.cells.resize(shards * cells_per_shard);
  std::vector<std::size_t> shard_used(shards, 0);

  struct WorkerProc {
    pid_t pid = -1;
    int fd = -1;
    std::string output;
  };
  std::vector<WorkerProc> procs(partition.size());

  // Fork EVERY worker before spawning any reader thread: forking a
  // multithreaded process clones only the calling thread, and a lock
  // held by any other thread at that instant stays locked forever in
  // the child.
  for (std::size_t w = 0; w < partition.size(); ++w) {
    const std::vector<std::string> command = options.worker_command(
        partition[w]);
    require(!command.empty(), "serve_design_space: empty worker argv");
    int fds[2];
    require(::pipe(fds) == 0, "serve_design_space: pipe failed");
    const pid_t pid = ::fork();
    require(pid >= 0, "serve_design_space: fork failed");
    if (pid == 0) {
      ::dup2(fds[1], 1);  // the wire protocol is the child's stdout
      ::close(fds[0]);
      ::close(fds[1]);
      for (std::size_t v = 0; v < w; ++v) {
        if (procs[v].fd >= 0) ::close(procs[v].fd);
      }
      std::vector<char*> argv;
      argv.reserve(command.size() + 1);
      for (const std::string& arg : command) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execvp(argv[0], argv.data());
      std::fprintf(stderr, "amdrelc serve: cannot exec %s\n", argv[0]);
      ::_exit(127);
    }
    ::close(fds[1]);
    procs[w].pid = pid;
    procs[w].fd = fds[0];
  }

  // One reader per pipe, draining into memory: a worker must never
  // block on a full pipe buffer because the coordinator is busy with a
  // sibling's stream.
  std::vector<std::thread> readers;
  readers.reserve(procs.size());
  for (WorkerProc& proc : procs) {
    readers.emplace_back([&proc]() {
      char buffer[65536];
      for (;;) {
        const ssize_t n = ::read(proc.fd, buffer, sizeof buffer);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        proc.output.append(buffer, static_cast<std::size_t>(n));
      }
    });
  }
  for (std::thread& t : readers) t.join();

  // Reap every child before judging any of them, so a throw below never
  // leaks zombies.
  std::string failure;
  for (std::size_t w = 0; w < procs.size(); ++w) {
    ::close(procs[w].fd);
    int status = 0;
    pid_t reaped = -1;
    do {
      reaped = ::waitpid(procs[w].pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    const bool clean = reaped == procs[w].pid && WIFEXITED(status) &&
                       WEXITSTATUS(status) == 0;
    if (!clean && failure.empty()) {
      failure = WIFEXITED(status)
                    ? cat("serve_design_space: worker ", w, " exited with ",
                          WEXITSTATUS(status))
                    : cat("serve_design_space: worker ", w,
                          " terminated abnormally");
    }
  }
  require(failure.empty(), failure);

  for (std::size_t w = 0; w < procs.size(); ++w) {
    std::istringstream stream(procs[w].output);
    consume_worker_stream(stream, corpus, spec, partition[w], summary,
                          shard_used);
  }
  finalize_sweep_summary(summary, shard_used, cells_per_shard);
  return summary;
#endif
}

}  // namespace amdrel::core
