#include "core/sweep_service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <cerrno>
#include <poll.h>
#endif

#include "core/sweep_cache.h"
#include "core/wire.h"
#include "platform/platform.h"
#include "support/error.h"
#include "support/strings.h"

namespace amdrel::core {

using jsonl::JsonValue;

std::vector<std::vector<std::size_t>> partition_shards(std::size_t shard_count,
                                                       int workers) {
  require(workers >= 1, "partition_shards: workers must be >= 1");
  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(workers));
  for (std::size_t s = 0; s < shard_count; ++s) {
    out[s % out.size()].push_back(s);
  }
  return out;
}

namespace {

/// Computes `assigned` shards and streams them in assigned order —
/// shared by the static and the connected worker. Honors spec.threads
/// (shards are computed by a pool but emitted in order) with per-shard
/// flush so a pipe/socket transport streams instead of buffering the
/// whole run. `emitted_shards` counts across calls (rounds) for the
/// after_shard hook.
std::size_t emit_assigned_shards(const std::vector<CorpusApp>& corpus,
                                 const SweepSpec& spec,
                                 const std::vector<Fingerprint>& app_fps,
                                 const std::vector<std::size_t>& assigned,
                                 std::size_t cells_per_shard, std::ostream& os,
                                 const ShardEmitHook& after_shard,
                                 std::size_t& emitted_shards) {
  std::size_t total = 0;
  auto emit = [&](std::size_t shard, const std::vector<SweepCell>& cells,
                  std::size_t used) {
    wire::encode_shard_begin(os, {shard, used});
    for (std::size_t i = 0; i < used; ++i) {
      wire::encode_cell(os, shard, i, cells[i].report, cells[i].moved_names);
    }
    os.flush();
    total += used;
    ++emitted_shards;
    if (after_shard) after_shard(emitted_shards);
  };

  const int threads = worker_count(assigned.size(), spec.threads);
  if (threads <= 1) {
    for (const std::size_t shard : assigned) {
      std::vector<SweepCell> cells(cells_per_shard);
      const std::size_t used =
          compute_sweep_shard(corpus, spec, app_fps, shard, cells.data());
      emit(shard, cells, used);
    }
    return total;
  }
  // A pool computes shards in claim order, but the stream is emitted
  // strictly in `assigned` order — same deterministic-output recipe as
  // the single-process sweep's precomputed slots.
  struct Pending {
    std::vector<SweepCell> cells;
    std::size_t used = 0;
    bool done = false;
  };
  std::vector<Pending> pending(assigned.size());
  std::mutex mutex;
  std::condition_variable ready;
  std::atomic<std::size_t> next{0};
  auto pool_worker = [&]() {
    for (;;) {
      const std::size_t job = next.fetch_add(1);
      if (job >= assigned.size()) return;
      std::vector<SweepCell> cells(cells_per_shard);
      const std::size_t used = compute_sweep_shard(corpus, spec, app_fps,
                                                   assigned[job],
                                                   cells.data());
      {
        const std::lock_guard<std::mutex> lock(mutex);
        pending[job].cells = std::move(cells);
        pending[job].used = used;
        pending[job].done = true;
      }
      ready.notify_all();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(pool_worker);
  for (std::size_t job = 0; job < assigned.size(); ++job) {
    std::unique_lock<std::mutex> lock(mutex);
    ready.wait(lock, [&] { return pending[job].done; });
    const std::vector<SweepCell> cells = std::move(pending[job].cells);
    const std::size_t used = pending[job].used;
    lock.unlock();
    emit(assigned[job], cells, used);
  }
  for (std::thread& t : pool) t.join();
  return total;
}

wire::Header local_header(std::size_t shards) {
  wire::Header header;
  header.protocol = kSweepWireProtocolVersion;
  header.schema_version = kSweepCacheSchemaVersion;
  header.fingerprint_algorithm = kFingerprintAlgorithmVersion;
  header.shards = shards;
  return header;
}

}  // namespace

std::size_t run_sweep_worker(const std::vector<CorpusApp>& corpus,
                             const SweepSpec& spec,
                             const std::vector<std::size_t>& assigned,
                             std::ostream& os,
                             const ShardEmitHook& after_shard) {
  validate_sweep_inputs(corpus, spec);
  const std::size_t shards = sweep_shard_count(corpus, spec);
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  std::vector<char> claimed(shards, 0);
  for (const std::size_t shard : assigned) {
    require(shard < shards, cat("run_sweep_worker: shard ", shard,
                                " out of range (", shards, " shards)"));
    require(!claimed[shard], cat("run_sweep_worker: duplicate shard ", shard));
    claimed[shard] = 1;
  }
  const std::vector<Fingerprint> app_fps =
      spec.cache ? sweep_app_fingerprints(corpus) : std::vector<Fingerprint>{};

  wire::encode_header(os, local_header(shards));
  std::size_t emitted_shards = 0;
  const std::size_t total =
      emit_assigned_shards(corpus, spec, app_fps, assigned, cells_per_shard,
                           os, after_shard, emitted_shards);
  wire::encode_worker_done(os, {total});
  os.flush();
  require(os.good(), "run_sweep_worker: stream write failed");
  return total;
}

std::size_t run_sweep_worker_connected(const std::vector<CorpusApp>& corpus,
                                       const SweepSpec& spec, std::istream& in,
                                       std::ostream& out,
                                       const ShardEmitHook& after_shard) {
  validate_sweep_inputs(corpus, spec);
  const std::size_t shards = sweep_shard_count(corpus, spec);
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  const std::vector<Fingerprint> app_fps =
      spec.cache ? sweep_app_fingerprints(corpus) : std::vector<Fingerprint>{};

  wire::encode_header(out, local_header(shards));
  out.flush();
  require(out.good(), "run_sweep_worker_connected: stream write failed");

  std::size_t total = 0;
  std::size_t emitted_shards = 0;
  std::vector<char> computed(shards, 0);
  std::string line;
  while (std::getline(in, line)) {
    JsonValue object;
    require(wire::parse_line(line, object),
            "connected worker: malformed coordinator line");
    switch (wire::line_kind(object)) {
      case wire::LineKind::kShardAck: {
        wire::ShardAck ack;
        require(wire::decode_shard_ack(object, ack) && ack.shard < shards &&
                    computed[ack.shard],
                "connected worker: ack for a shard this worker never "
                "streamed");
        break;
      }
      case wire::LineKind::kAssign: {
        wire::Assign assign;
        require(wire::decode_assign(object, assign),
                "connected worker: malformed assign line");
        for (const std::size_t s : assign.shards) {
          require(s < shards, cat("connected worker: shard ", s,
                                  " out of range (", shards, " shards)"));
          require(!computed[s],
                  cat("connected worker: shard ", s, " assigned twice"));
          computed[s] = 1;
        }
        const std::size_t round =
            emit_assigned_shards(corpus, spec, app_fps, assign.shards,
                                 cells_per_shard, out, after_shard,
                                 emitted_shards);
        total += round;
        out << wire::encode_round_done({round});
        out.flush();
        require(out.good(),
                "run_sweep_worker_connected: stream write failed");
        break;
      }
      case wire::LineKind::kShutdown: {
        wire::encode_worker_done(out, {total});
        out.flush();
        require(out.good(),
                "run_sweep_worker_connected: stream write failed");
        return total;
      }
      default:
        fail("connected worker: unexpected coordinator line");
    }
  }
  fail("connected worker: coordinator closed the connection without "
       "shutdown");
}

// ---------------------------------------------------------------------------
// WorkerStreamConsumer
// ---------------------------------------------------------------------------

WorkerStreamConsumer::WorkerStreamConsumer(
    const std::vector<CorpusApp>& corpus, const SweepSpec& spec,
    SweepSummary& summary, std::vector<std::size_t>& shard_used, bool dynamic)
    : spec_(spec), summary_(summary), shard_used_(shard_used),
      dynamic_(dynamic) {
  shards_ = sweep_shard_count(corpus, spec);
  cells_per_shard_ = sweep_cells_per_shard(spec);
  require(summary.cells.size() == shards_ * cells_per_shard_,
          "consume_worker_stream: summary slot layout mismatch");
  require(shard_used.size() == shards_,
          "consume_worker_stream: shard_used size mismatch");
  budgets_ = spec.energy_budgets.empty()
                 ? std::vector<double>{spec.base.cost.energy_budget_pj}
                 : spec.energy_budgets;
  inner_ = budgets_.size() * spec.strategies.size() * spec.orderings.size();
}

void WorkerStreamConsumer::begin_round(
    const std::vector<std::size_t>& assigned) {
  require(!round_active_, "WorkerStreamConsumer: round already active");
  require(!done_, "WorkerStreamConsumer: connection already closed");
  expected_.clear();
  expected_.insert(assigned.begin(), assigned.end());
  require(expected_.size() == assigned.size(),
          "WorkerStreamConsumer: duplicate shard in assignment");
  round_completed_ = 0;
  round_cells_ = 0;
  in_shard_ = false;
  round_active_ = true;
}

WorkerStreamConsumer::Event WorkerStreamConsumer::feed(
    const std::string& line) {
  ++line_no_;
  require(!done_, "worker stream: data after worker_done");
  JsonValue object;
  require(wire::parse_line(line, object),
          cat("worker stream:", line_no_, ": not a JSON object"));
  const wire::LineKind kind = wire::line_kind(object);
  if (!header_seen_) {
    require(kind == wire::LineKind::kHeader,
            "worker stream: missing wire_header line");
    return feed_header(object);
  }
  switch (kind) {
    case wire::LineKind::kHeader:
      fail("worker stream: repeated wire_header");
    case wire::LineKind::kShard:
      return feed_shard(object);
    case wire::LineKind::kCell:
      return feed_cell(object);
    case wire::LineKind::kWorkerDone: {
      wire::WorkerDone done;
      require(wire::decode_worker_done(object, done),
              cat("worker stream:", line_no_, ": malformed worker_done"));
      require(done.cells == total_cells_,
              "worker stream: worker_done cell count mismatch");
      if (dynamic_) {
        // Only legal between rounds, as the response to shutdown.
        require(!round_active_, "worker stream: worker_done inside a round");
        done_ = true;
        return Event::kNone;
      }
      require(round_active_, "worker stream: worker_done outside a round");
      require(round_completed_ == expected_.size(),
              cat("worker stream: streamed ", round_completed_, " of ",
                  expected_.size(), " assigned shards"));
      round_active_ = false;
      done_ = true;
      return Event::kRoundComplete;
    }
    case wire::LineKind::kRoundDone: {
      require(dynamic_, cat("worker stream:", line_no_,
                            ": unexpected kind \"round_done\""));
      require(round_active_ && !in_shard_,
              cat("worker stream:", line_no_, ": round_done out of place"));
      wire::RoundDone done;
      require(wire::decode_round_done(object, done),
              cat("worker stream:", line_no_, ": malformed round_done"));
      require(done.cells == round_cells_,
              "worker stream: round_done cell count mismatch");
      require(round_completed_ == expected_.size(),
              cat("worker stream: round streamed ", round_completed_, " of ",
                  expected_.size(), " assigned shards"));
      round_active_ = false;
      return Event::kRoundComplete;
    }
    default:
      fail(cat("worker stream:", line_no_, ": unexpected line"));
  }
}

WorkerStreamConsumer::Event WorkerStreamConsumer::feed_header(
    const JsonValue& object) {
  wire::Header header;
  require(wire::decode_header(object, header),
          "worker stream: missing wire_header line");
  require(header.protocol == kSweepWireProtocolVersion,
          "worker stream: wire protocol version mismatch");
  require(header.schema_version == kSweepCacheSchemaVersion,
          "worker stream: schema version mismatch");
  require(header.fingerprint_algorithm == kFingerprintAlgorithmVersion,
          "worker stream: fingerprint algorithm mismatch");
  require(header.shards == shards_, "worker stream: shard count mismatch");
  header_seen_ = true;
  return Event::kNone;
}

WorkerStreamConsumer::Event WorkerStreamConsumer::feed_shard(
    const JsonValue& object) {
  require(round_active_,
          cat("worker stream:", line_no_, ": shard outside a round"));
  require(!in_shard_, cat("worker stream:", line_no_, ": expected cell ",
                          cur_slot_, " of shard ", cur_shard_));
  wire::ShardBegin shard;
  require(wire::decode_shard_begin(object, shard),
          cat("worker stream:", line_no_, ": malformed shard line"));
  require(expected_.count(shard.shard) != 0,
          cat("worker stream: shard ", shard.shard, " was not assigned"));
  require(consumed_.insert(shard.shard).second,
          cat("worker stream: shard ", shard.shard, " streamed twice"));
  require(shard.used <= cells_per_shard_ && shard.used % inner_ == 0,
          cat("worker stream: shard ", shard.shard, " claims ", shard.used,
              " cells (capacity ", cells_per_shard_, ")"));
  if (shard.used == 0) return complete_shard(shard.shard, 0);
  in_shard_ = true;
  cur_shard_ = shard.shard;
  cur_used_ = shard.used;
  cur_slot_ = 0;
  return Event::kNone;
}

WorkerStreamConsumer::Event WorkerStreamConsumer::feed_cell(
    const JsonValue& object) {
  require(round_active_ && in_shard_,
          cat("worker stream:", line_no_, ": unexpected cell line"));
  wire::Cell cell;
  require(wire::decode_cell(object, cell),
          cat("worker stream:", line_no_, ": malformed cell payload"));
  require(cell.shard == cur_shard_ && cell.slot == cur_slot_,
          cat("worker stream:", line_no_, ": expected cell ", cur_slot_,
              " of shard ", cur_shard_));

  // Coordinates derivable from the shard index are derived HERE, from
  // the same inputs the single-process sweep uses — the wire cannot
  // place a cell on a platform it was not computed for.
  const std::size_t app_index = cur_shard_ / spec_.grid.size();
  const std::size_t platform_index = cur_shard_ % spec_.grid.size();
  const double area =
      spec_.grid.areas[platform_index / spec_.grid.cgc_counts.size()];
  const int cgcs =
      spec_.grid.cgc_counts[platform_index % spec_.grid.cgc_counts.size()];
  const double cost =
      platform::platform_cost(platform::make_paper_platform(area, cgcs));

  const std::size_t ordering_count = spec_.orderings.size();
  const std::size_t strategy_count = spec_.strategies.size();
  const std::size_t oi = cur_slot_ % ordering_count;
  const std::size_t si = (cur_slot_ / ordering_count) % strategy_count;
  const std::size_t bi =
      (cur_slot_ / (ordering_count * strategy_count)) % budgets_.size();
  SweepCell& dest = summary_.cells[cur_shard_ * cells_per_shard_ + cur_slot_];
  dest.app = app_index;
  dest.a_fpga = area;
  dest.cgcs = cgcs;
  dest.platform_cost = cost;
  dest.constraint = cell.payload.report.timing_constraint;
  dest.energy_budget_pj = budgets_[bi];
  dest.strategy = spec_.strategies[si];
  dest.ordering = spec_.orderings[oi];
  dest.report = std::move(cell.payload.report);
  dest.moved_names = std::move(cell.payload.moved_names);

  ++cur_slot_;
  if (cur_slot_ == cur_used_) return complete_shard(cur_shard_, cur_used_);
  return Event::kNone;
}

WorkerStreamConsumer::Event WorkerStreamConsumer::complete_shard(
    std::size_t shard, std::size_t used) {
  in_shard_ = false;
  shard_used_[shard] = used;
  total_cells_ += used;
  round_cells_ += used;
  ++round_completed_;
  last_shard_ = shard;
  last_used_ = used;
  return Event::kShardComplete;
}

void WorkerStreamConsumer::finish_stream() const {
  require(header_seen_, "worker stream: empty (no wire_header)");
  if (in_shard_) {
    fail(cat("worker stream: truncated inside shard ", cur_shard_, " (",
             cur_slot_, " of ", cur_used_, " cells)"));
  }
  require(done_, "worker stream: truncated (no worker_done)");
}

std::vector<std::size_t> WorkerStreamConsumer::round_unfinished() const {
  std::vector<std::size_t> out;
  for (const std::size_t s : expected_) {
    if (consumed_.count(s) == 0 || (in_shard_ && s == cur_shard_)) {
      out.push_back(s);
    }
  }
  return out;
}

void consume_worker_stream(std::istream& in,
                           const std::vector<CorpusApp>& corpus,
                           const SweepSpec& spec,
                           const std::vector<std::size_t>& assigned,
                           SweepSummary& summary,
                           std::vector<std::size_t>& shard_used) {
  WorkerStreamConsumer consumer(corpus, spec, summary, shard_used,
                                /*dynamic=*/false);
  consumer.begin_round(assigned);
  std::string line;
  while (std::getline(in, line)) consumer.feed(line);
  consumer.finish_stream();
}

// ---------------------------------------------------------------------------
// serve_design_space: the fault-tolerant coordinator event loop
// ---------------------------------------------------------------------------

SweepSummary serve_design_space(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec,
                                const ServeOptions& options) {
#ifdef _WIN32
  (void)corpus;
  (void)spec;
  (void)options;
  fail("serve_design_space: requires POSIX poll/fork");
#else
  using Clock = std::chrono::steady_clock;
  using Event = WorkerStreamConsumer::Event;

  validate_sweep_inputs(corpus, spec);
  require(options.transport != nullptr,
          "serve_design_space: no transport configured");
  const std::size_t shards = sweep_shard_count(corpus, spec);
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  int workers = options.workers < 1 ? 1 : options.workers;
  if (static_cast<std::size_t>(workers) > shards) {
    workers = static_cast<int>(shards);
  }
  const std::vector<std::vector<std::size_t>> partition =
      partition_shards(shards, workers);

  SweepSummary summary;
  summary.apps.reserve(corpus.size());
  for (const CorpusApp& app : corpus) summary.apps.push_back(app.name);
  summary.cells.resize(shards * cells_per_shard);
  std::vector<std::size_t> shard_used(shards, 0);

  // One live worker connection: its channel, the incremental stream
  // consumer carrying per-connection protocol state across rounds, and
  // health bookkeeping.
  struct Conn {
    std::unique_ptr<WorkerChannel> channel;
    WorkerStreamConsumer consumer;
    Clock::time_point last_activity;
    bool busy = false;

    Conn(std::unique_ptr<WorkerChannel> ch,
         const std::vector<CorpusApp>& corpus, const SweepSpec& spec,
         SweepSummary& summary, std::vector<std::size_t>& shard_used,
         bool dynamic)
        : channel(std::move(ch)),
          consumer(corpus, spec, summary, shard_used, dynamic),
          last_activity(Clock::now()) {}
  };
  std::vector<std::unique_ptr<Conn>> conns;

  std::vector<int> attempts(shards, 0);
  std::vector<char> completed(shards, 0);
  std::size_t completed_count = 0;
  std::deque<std::size_t> pending;

  auto note_complete = [&](Conn& conn) {
    const std::size_t s = conn.consumer.last_shard();
    require(!completed[s],
            cat("serve_design_space: shard ", s, " completed twice"));
    completed[s] = 1;
    ++completed_count;
    if (options.on_shard_complete) {
      options.on_shard_complete(s, summary.cells.data() + s * cells_per_shard,
                                conn.consumer.last_used());
    }
    if (conn.channel->supports_reassignment()) {
      // Informational ack; best-effort by design (wire v3), so a slow
      // worker can never stall the event loop.
      conn.channel->write_line(wire::encode_shard_ack({s}));
    }
  };

  // Charges one failed attempt to every unfinished shard of a dead
  // round and queues them for reassignment — or gives up loudly once a
  // shard exhausts its budget.
  auto charge_and_queue = [&](const std::vector<std::size_t>& unfinished,
                              const std::string& who,
                              const std::string& why) {
    if (unfinished.empty()) return;
    for (const std::size_t s : unfinished) {
      require(attempts[s] <= options.max_shard_retries,
              cat("serve_design_space: ", who, " ", why, "; shard ", s,
                  " already failed ", attempts[s],
                  " attempt(s); giving up"));
    }
    std::cerr << "amdrelc serve: " << who << " " << why << "; retrying "
              << unfinished.size() << " shard(s)\n";
    for (const std::size_t s : unfinished) pending.push_back(s);
  };

  // Hands `batch` to a worker: an idle reassignable survivor if one is
  // live, else a fresh channel from the transport (waiting up to
  // timeout_ms). False if no worker materialized.
  auto start_round = [&](const std::vector<std::size_t>& batch,
                         int timeout_ms) -> bool {
    std::size_t retry = 0;
    for (const std::size_t s : batch) {
      retry = std::max(retry, static_cast<std::size_t>(attempts[s]));
    }
    auto begin = [&](Conn& conn) {
      conn.consumer.begin_round(batch);
      conn.busy = true;
      conn.last_activity = Clock::now();
      for (const std::size_t s : batch) ++attempts[s];
    };
    for (const std::unique_ptr<Conn>& conn : conns) {
      if (conn->busy || !conn->channel->supports_reassignment()) continue;
      if (!conn->channel->write_line(wire::encode_assign({batch, retry}))) {
        continue;  // write-broken; it will be culled when its fd closes
      }
      begin(*conn);
      return true;
    }
    std::unique_ptr<WorkerChannel> channel =
        options.transport->open_worker(batch, timeout_ms);
    if (!channel) return false;
    const bool dynamic = channel->supports_reassignment();
    if (dynamic &&
        !channel->write_line(wire::encode_assign({batch, retry}))) {
      return false;  // stillborn connection; caller decides what's next
    }
    auto conn = std::make_unique<Conn>(std::move(channel), corpus, spec,
                                       summary, shard_used, dynamic);
    begin(*conn);
    conns.push_back(std::move(conn));
    return true;
  };

  // Initial launch: one round per non-empty partition slot. A slot whose
  // worker never materializes (e.g. fewer dial-ins than --workers) is
  // queued for reassignment rather than failed — survivors absorb it.
  for (const std::vector<std::size_t>& slot : partition) {
    if (slot.empty()) continue;
    if (!start_round(slot, options.spawn_timeout_ms)) {
      std::cerr << "amdrelc serve: no worker for a batch of " << slot.size()
                << " shard(s); queued for reassignment\n";
      for (const std::size_t s : slot) pending.push_back(s);
    }
  }

  auto fail_conn = [&](Conn& conn, const std::string& why) {
    charge_and_queue(conn.consumer.round_unfinished(),
                     conn.channel->describe(), why);
  };

  // Reads whatever `conn` has to say, feeding the consumer. Returns
  // {round_completed, closed}.
  struct DrainResult {
    bool round_complete = false;
    bool closed = false;
  };
  auto drain_conn = [&](Conn& conn) -> DrainResult {
    DrainResult result;
    std::vector<std::string> lines;
    const ChannelStatus status = conn.channel->read_lines(lines);
    if (!lines.empty()) conn.last_activity = Clock::now();
    for (const std::string& line : lines) {
      const Event event = conn.consumer.feed(line);
      if (event == Event::kShardComplete) {
        note_complete(conn);
      } else if (event == Event::kRoundComplete) {
        result.round_complete = true;
      }
    }
    result.closed = status == ChannelStatus::kClosed;
    return result;
  };

  while (completed_count < shards) {
    // Dispatch queued retries: an idle survivor or an opportunistic
    // (non-blocking) fresh channel; if nothing is in flight at all,
    // block on the transport — and give up loudly if even that yields
    // no worker.
    if (!pending.empty()) {
      const std::vector<std::size_t> batch(pending.begin(), pending.end());
      if (start_round(batch, 0)) {
        pending.clear();
      } else {
        bool any_busy = false;
        for (const std::unique_ptr<Conn>& conn : conns) {
          any_busy = any_busy || conn->busy;
        }
        if (!any_busy) {
          if (start_round(batch, options.spawn_timeout_ms)) {
            pending.clear();
          } else {
            fail(cat("serve_design_space: no worker available for ",
                     batch.size(), " unfinished shard(s)"));
          }
        }
      }
    }
    require(!conns.empty() || !pending.empty(),
            "serve_design_space: no workers and no pending work");
    if (conns.empty()) continue;

    std::vector<pollfd> fds;
    fds.reserve(conns.size());
    for (const std::unique_ptr<Conn>& conn : conns) {
      fds.push_back({conn->channel->poll_fd(), POLLIN, 0});
    }
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (ready < 0 && errno == EINTR) continue;
    require(ready >= 0, "serve_design_space: poll failed");

    std::vector<std::unique_ptr<Conn>> kept;
    kept.reserve(conns.size());
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Conn& conn = *conns[i];
      const bool readable =
          (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      DrainResult drained;
      if (readable) drained = drain_conn(conn);
      if (drained.round_complete) {
        conn.busy = false;
        if (!conn.channel->supports_reassignment()) {
          // Static worker: its one stream is complete — reap it.
          require(conn.channel->finish(),
                  cat("serve_design_space: ", conn.channel->describe(),
                      " exited uncleanly after a complete stream"));
          continue;  // drop
        }
        if (drained.closed) continue;  // finished round, then hung up
        kept.push_back(std::move(conns[i]));
        continue;
      }
      if (drained.closed) {
        if (conn.busy) {
          const bool clean = conn.channel->finish();
          fail_conn(conn, clean ? "stream ended before round completion"
                                : "died mid-round");
        }
        continue;  // drop (idle hangup needs no retry)
      }
      if (conn.busy && options.idle_timeout_ms > 0 &&
          Clock::now() - conn.last_activity >
              std::chrono::milliseconds(options.idle_timeout_ms)) {
        fail_conn(conn, "idle timeout");
        continue;  // drop: ~Conn SIGKILLs a forked worker / drops a socket
      }
      kept.push_back(std::move(conns[i]));
    }
    conns.swap(kept);
  }

  // Every shard landed. Wind down: static channels still owe their
  // worker_done trailer (strict — same contract as before the Transport
  // seam); dynamic channels get a shutdown line and answer with
  // worker_done, leniently (their data is already validated).
  const Clock::time_point goodbye_deadline =
      Clock::now() + std::chrono::seconds(10);
  for (const std::unique_ptr<Conn>& conn : conns) {
    const bool dynamic = conn->channel->supports_reassignment();
    bool handshake_ok = !conn->busy;
    while (conn->busy && Clock::now() < goodbye_deadline) {
      pollfd pfd{conn->channel->poll_fd(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready < 0 && errno == EINTR) continue;
      require(ready >= 0, "serve_design_space: poll failed");
      if (ready == 0) continue;
      const DrainResult drained = drain_conn(*conn);
      if (drained.round_complete) {
        conn->busy = false;
        handshake_ok = true;
      } else if (drained.closed) {
        break;
      }
    }
    if (!dynamic) {
      require(handshake_ok,
              cat("serve_design_space: ", conn->channel->describe(),
                  " never sent its stream trailer"));
      require(conn->channel->finish(),
              cat("serve_design_space: ", conn->channel->describe(),
                  " exited uncleanly after a complete stream"));
      continue;
    }
    if (!handshake_ok ||
        !conn->channel->write_line(wire::encode_shutdown())) {
      std::cerr << "amdrelc serve: " << conn->channel->describe()
                << " did not complete the shutdown handshake\n";
      continue;
    }
    bool done = false;
    while (!done && Clock::now() < goodbye_deadline) {
      pollfd pfd{conn->channel->poll_fd(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready < 0 && errno == EINTR) continue;
      require(ready >= 0, "serve_design_space: poll failed");
      if (ready == 0) continue;
      const DrainResult drained = drain_conn(*conn);
      done = conn->consumer.connection_done() || drained.closed;
    }
    if (!conn->consumer.connection_done()) {
      std::cerr << "amdrelc serve: " << conn->channel->describe()
                << " closed without worker_done\n";
    }
  }
  conns.clear();

  finalize_sweep_summary(summary, shard_used, cells_per_shard);
  return summary;
#endif
}

}  // namespace amdrel::core
