#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "core/hybrid_mapper.h"
#include "core/methodology.h"

namespace amdrel::core {

/// Version of the on-disk cache schema (the JSON-lines layout written by
/// SweepCache::save). Bump on any change to the field set or meaning;
/// load() rejects files written with a different version (or a different
/// kFingerprintAlgorithmVersion) and the caller starts cold — a stale
/// cache must never produce results a fresh run would not.
/// v2: cell lines carry the cost objective and energy results. Energy
/// doubles are stored as IEEE-754 bit patterns (signed 64-bit integers),
/// not decimal text, so a cache hit returns bit-identical values and the
/// warm-vs-cold byte-identity contract extends to the energy columns.
inline constexpr int kSweepCacheSchemaVersion = 2;

/// One memoized sweep cell: everything sweep_design_space /
/// explore_design_space derive per (app, platform, options, constraint)
/// coordinate. moved_names duplicates report.moved as block names so a
/// hit never needs the CDFG.
struct CachedCell {
  PartitionReport report;
  std::vector<std::string> moved_names;
};

/// Hit/miss counters. "builds" are cold HybridMapper constructions (the
/// full per-block fine-grain mapping); "restores" are snapshot copies.
/// Counter values depend on thread interleaving (two workers can miss
/// the same key concurrently) — only the memoized RESULTS are
/// deterministic, which the property tests pin.
struct SweepCacheStats {
  std::uint64_t cell_hits = 0;
  std::uint64_t cell_misses = 0;
  std::uint64_t mapper_restores = 0;
  std::uint64_t mapper_builds = 0;
  std::uint64_t all_fine_hits = 0;
  std::uint64_t all_fine_misses = 0;
  std::uint64_t cells = 0;           ///< cell entries currently held
  std::uint64_t entries_loaded = 0;  ///< entries read by the last load()
};

/// Content-addressed memoization store for design-space sweeps. Three
/// maps, all keyed by fingerprints of the inputs that determine the
/// value:
///   - whole cell results       (cell_key: app x platform x options x
///                               constraint),
///   - all-fine-grain cycles    (shard_key: app x platform; resolves
///                               default constraints without a mapper),
///   - HybridMapper snapshots   (shard_key; in-memory only — they hold
///                               full schedules and are cheap to rebuild
///                               relative to their serialized size).
/// Thread-safe: every operation takes an internal mutex, so one cache
/// can back a whole explorer pool. Cached values are byte-identical to
/// recomputation by construction (they ARE prior results, addressed by
/// everything that influences them).
class SweepCache {
 public:
  SweepCache() = default;
  SweepCache(const SweepCache&) = delete;
  SweepCache& operator=(const SweepCache&) = delete;

  std::optional<CachedCell> find_cell(const Fingerprint& key);
  void store_cell(const Fingerprint& key, CachedCell cell);

  std::optional<std::int64_t> find_all_fine(const Fingerprint& key);
  void store_all_fine(const Fingerprint& key, std::int64_t cycles);

  std::shared_ptr<const MapperState> find_mapper(const Fingerprint& key);
  void store_mapper(const Fingerprint& key,
                    std::shared_ptr<const MapperState> state);

  SweepCacheStats stats() const;
  void reset_stats();

  /// Loads a cache file written by save(). Strict: any parse error,
  /// schema/algorithm version mismatch, duplicate or malformed key
  /// rejects the WHOLE file, leaves the cache unchanged and returns
  /// false with a diagnostic in *error — the caller warns and runs cold.
  /// A missing file is also reported as false (with a distinct message);
  /// it is the normal first-run case.
  bool load(const std::string& path, std::string* error);

  /// Writes every cell and all-fine entry as versioned JSON lines
  /// (header line first, then entries sorted by key, so identical caches
  /// serialize byte-identically). Atomic: written to "<path>.tmp" and
  /// renamed over the target, so a failure leaves any previous cache
  /// file intact. Returns false with a diagnostic on I/O failure.
  /// Mapper snapshots are not persisted.
  bool save(const std::string& path, std::string* error) const;

 private:
  mutable std::mutex mutex_;
  std::map<Fingerprint, CachedCell> cells_;
  std::map<Fingerprint, std::int64_t> all_fine_;
  std::map<Fingerprint, std::shared_ptr<const MapperState>> mappers_;
  SweepCacheStats stats_;
};

}  // namespace amdrel::core
