#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "core/hybrid_mapper.h"
#include "core/json_lines.h"
#include "core/methodology.h"
#include "core/schema.h"

namespace amdrel::core {

// The on-disk cache schema version (kSweepCacheSchemaVersion) lives with
// every other persisted-format constant in core/schema.h. Bump on any
// change to the field set or meaning of the JSON-lines layout written by
// SweepCache::save; load() rejects files written with a different
// version (or a different kFingerprintAlgorithmVersion) and the caller
// starts cold — a stale cache must never produce results a fresh run
// would not.
// v2: cell lines carry the cost objective and energy results. Energy
// doubles are stored as IEEE-754 bit patterns (signed 64-bit integers),
// not decimal text, so a cache hit returns bit-identical values and the
// warm-vs-cold byte-identity contract extends to the energy columns.
// v3: HybridMapper snapshots persist as "mapper" lines (a disk-warm
// worker with NEW constraints restores the fine-grain mapping instead of
// rebuilding it); the header carries a monotonically increasing
// "generation" counter and every entry a "gen" stamp of the last save
// that touched it, which drive the size-capped eviction policy in
// save(). Both fields default to 0 when absent, so hand-rolled v3 test
// fixtures without them still parse.
// v4: cell lines carry the reconfiguration columns (t_reconfig cycles
// and the floorplan cost's IEEE-754 bit pattern).

/// One memoized sweep cell: everything sweep_design_space /
/// explore_design_space derive per (app, platform, options, constraint)
/// coordinate. moved_names duplicates report.moved as block names so a
/// hit never needs the CDFG.
struct CachedCell {
  PartitionReport report;
  std::vector<std::string> moved_names;
};

/// Canonical serialization of a cell result's payload fields (everything
/// after the "kind"/"key" envelope of a cache "cell" line, in fixed field
/// order, no surrounding braces). Shared verbatim by the cache file and
/// the sweep service's wire "cell" lines (core/sweep_service.cc), so a
/// cell that travelled coordinator<->worker is bit-identical to one that
/// round-tripped through the cache.
void write_cell_payload(std::ostream& os, const PartitionReport& report,
                        const std::vector<std::string>& moved_names);

/// Inverse of write_cell_payload over a parsed JSON object; false on any
/// missing, mistyped or inconsistent field (never coerces).
bool read_cell_payload(const jsonl::JsonValue& object, CachedCell& cell);

/// Hit/miss counters. "builds" are cold HybridMapper constructions (the
/// full per-block fine-grain mapping); "restores" are snapshot copies.
/// Counter values depend on thread interleaving (two workers can miss
/// the same key concurrently) — only the memoized RESULTS are
/// deterministic, which the property tests pin.
struct SweepCacheStats {
  std::uint64_t cell_hits = 0;
  std::uint64_t cell_misses = 0;
  std::uint64_t mapper_restores = 0;
  std::uint64_t mapper_builds = 0;
  std::uint64_t all_fine_hits = 0;
  std::uint64_t all_fine_misses = 0;
  std::uint64_t cells = 0;           ///< cell entries currently held
  std::uint64_t entries_loaded = 0;  ///< entries read by the last load()
  std::uint64_t lock_degraded = 0;   ///< saves that ran without the file lock
  std::uint64_t entries_evicted = 0; ///< entries dropped by save()'s size cap
};

/// Content-addressed memoization store for design-space sweeps. Three
/// maps, all keyed by fingerprints of the inputs that determine the
/// value:
///   - whole cell results       (cell_key: app x platform x options x
///                               constraint),
///   - all-fine-grain cycles    (shard_key: app x platform; resolves
///                               default constraints without a mapper),
///   - HybridMapper snapshots   (shard_key; persisted since schema v3 —
///                               a disk-warm run with new constraints
///                               restores instead of re-mapping).
///
/// Thread-safe AND process-safe:
///   - In memory the index is sharded into N fingerprint-addressed
///     buckets (default kDefaultShardCount), each behind its own mutex,
///     so a 16-thread sweep pool does not serialize on one lock. Keys
///     are uniformly-mixed digests, so bucket occupancy is balanced.
///   - On disk, save() is merge-on-save under an advisory file lock
///     (sidecar "<path>.lock"): it re-loads the target file, unions it
///     with the in-memory maps, applies the eviction policy, and
///     atomically renames a temp file over the target. Two processes
///     persisting to the same path therefore lose no entries —
///     content-addressed keys make the union safe (equal keys imply
///     equal payloads, asserted in debug builds for cells).
///
/// Cached values are byte-identical to recomputation by construction
/// (they ARE prior results, addressed by everything that influences
/// them).
class SweepCache {
 public:
  /// Default in-memory shard count: matches the thread counts the sweep
  /// pool realistically runs at; see ROADMAP direction 4.
  static constexpr int kDefaultShardCount = 16;

  /// Default save() size cap: large enough that the builtin corpus never
  /// evicts, small enough that a fleet-shared cache file stops growing
  /// at "tens of MB" scale.
  static constexpr std::uint64_t kDefaultSaveSizeCapBytes = 64ull << 20;

  /// shard_count is clamped to [1, 4096]. One shard degenerates to the
  /// old single-mutex index (useful in tests); results never depend on
  /// the count, only lock contention does.
  explicit SweepCache(int shard_count = kDefaultShardCount);
  SweepCache(const SweepCache&) = delete;
  SweepCache& operator=(const SweepCache&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }

  std::optional<CachedCell> find_cell(const Fingerprint& key);
  void store_cell(const Fingerprint& key, CachedCell cell);

  std::optional<std::int64_t> find_all_fine(const Fingerprint& key);
  void store_all_fine(const Fingerprint& key, std::int64_t cycles);

  std::shared_ptr<const MapperState> find_mapper(const Fingerprint& key);
  void store_mapper(const Fingerprint& key,
                    std::shared_ptr<const MapperState> state);

  /// Byte budget for the file save() writes; serialized entries beyond
  /// it are evicted least-recently-touched first (see save()). 0 turns
  /// eviction off entirely.
  void set_save_size_cap(std::uint64_t bytes) {
    save_size_cap_.store(bytes, std::memory_order_relaxed);
  }
  std::uint64_t save_size_cap() const {
    return save_size_cap_.load(std::memory_order_relaxed);
  }

  /// Aggregated over every shard (each locked in turn, so the totals are
  /// consistent per shard but not a cross-shard atomic snapshot — fine
  /// for counters whose values already depend on thread interleaving).
  SweepCacheStats stats() const;
  void reset_stats();

  /// Unions another cache's cell, all-fine and mapper-snapshot entries
  /// into this one (the coordinator folding per-worker caches; the CLI
  /// surface is `amdrelc cache-merge`). On a key collision the existing
  /// entry wins — entries are content-addressed, so colliding payloads
  /// must be identical, which debug builds assert for cells (mapper
  /// snapshots may legitimately differ in their lazily-accumulated
  /// coarse half; any snapshot is correct). Merged entries count as
  /// freshly touched for the eviction policy. Stats counters are not
  /// merged; they describe each cache's own traffic.
  void merge_from(const SweepCache& other);

  /// Loads a cache file written by save(). Strict: any parse error,
  /// schema/algorithm version mismatch, duplicate or malformed key
  /// rejects the WHOLE file, leaves the cache unchanged and returns
  /// false with a diagnostic in *error — the caller warns and runs cold.
  /// A missing file is also reported as false (with a distinct message);
  /// it is the normal first-run case.
  bool load(const std::string& path, std::string* error);

  /// Persists every cell, all-fine and mapper entry as versioned JSON
  /// lines (header line first, then entries sorted by key per kind, so
  /// identical caches serialize byte-identically). Concurrent-writer
  /// safe:
  ///   1. takes an exclusive advisory lock on "<path>.lock" (flock;
  ///      created if absent, never deleted — unlink would race the
  ///      lock). A failed acquisition degrades to an unlocked save with
  ///      a one-shot stderr warning and a lock_degraded stats bump,
  ///   2. merge-on-save: re-loads `path` and unions it with the
  ///      in-memory entries, so another process's save between our load
  ///      and now is preserved, not clobbered (a corrupt or
  ///      version-mismatched on-disk file is discarded — the strict
  ///      rejection backstop — and simply overwritten),
  ///   3. applies the eviction policy INSIDE the same locked critical
  ///      section, strictly after the union: when the serialized file
  ///      exceeds save_size_cap(), entries are dropped oldest
  ///      generation first (mapper snapshots before all-fine entries
  ///      before cells at equal age, then by key — fully
  ///      deterministic). Union-then-evict under one lock means a
  ///      concurrent merge can never resurrect an entry this save
  ///      evicts: whatever the merge contributed was part of the union
  ///      the eviction ran on. (A LATER save by a process still holding
  ///      an evicted entry in memory legitimately re-adds it, stamped
  ///      as fresh.)
  ///   4. writes a uniquely named temp file ("<path>.tmp.<pid>.<seq>")
  ///      and renames it over the target, so readers and a crash
  ///      mid-write never observe a torn file AND two degraded-lock
  ///      writers can never promote or delete each other's half-written
  ///      temp (the historical "<path>.tmp" shared name could). Stale
  ///      temps left by crashed writers are swept when the lock is held.
  /// Entries loaded from disk and never touched since (no hit, no
  /// store) keep their on-disk generation; everything else is stamped
  /// with the file's next generation — that is what makes the eviction
  /// order "least recently touched".
  /// The in-memory cache is NOT mutated (disk-only entries stay on
  /// disk); load() afterwards to absorb them. Returns false with a
  /// diagnostic on I/O failure.
  bool save(const std::string& path, std::string* error) const;

 private:
  /// One bucket of the sharded index: its own mutex, the three key maps,
  /// and the shard's share of the traffic counters (cells/entries_loaded
  /// are derived, not counted per shard).
  struct Shard {
    mutable std::mutex mutex;
    std::map<Fingerprint, CachedCell> cells;
    std::map<Fingerprint, std::int64_t> all_fine;
    std::map<Fingerprint, std::shared_ptr<const MapperState>> mappers;
    /// Generation stamps for entries loaded from disk and NOT touched
    /// since — a find hit or store erases the key, so save() can stamp
    /// touched entries with the new generation while untouched ones
    /// keep aging (the substrate of least-recently-touched eviction).
    std::map<Fingerprint, std::uint64_t> cell_gens;
    std::map<Fingerprint, std::uint64_t> all_fine_gens;
    std::map<Fingerprint, std::uint64_t> mapper_gens;
    SweepCacheStats stats;
  };

  /// Everything save() snapshots out of the shards in one pass.
  struct Entries;

  Shard& shard_for(const Fingerprint& key);
  const Shard& shard_for(const Fingerprint& key) const;

  /// Copies every entry (and untouched-generation stamp) into `out`,
  /// locking one shard at a time (the serialization and merge snapshot).
  void snapshot(Entries& out) const;

  // The shard array is sized once at construction and never reallocated
  // (std::mutex is immovable).
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> entries_loaded_{0};
  std::atomic<std::uint64_t> save_size_cap_{kDefaultSaveSizeCapBytes};
  // save() is const (it only reads the maps) but still reports traffic;
  // mutable atomics keep that signature honest, like entries_loaded_.
  mutable std::atomic<std::uint64_t> lock_degraded_{0};
  mutable std::atomic<std::uint64_t> entries_evicted_{0};
};

}  // namespace amdrel::core
