#pragma once

#include <string>
#include <vector>

#include "core/methodology.h"

namespace amdrel::core {

/// Minimal fixed-width text table used by the benches and examples to
/// print paper-style result tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Human-readable summary of one methodology run (constraint, initial and
/// final cycles, moved blocks, cost split, reduction), for the examples.
std::string describe(const PartitionReport& report, const ir::Cdfg& cdfg);

/// Formats 12345678 as "12,345,678" for table readability.
std::string with_thousands(std::int64_t value);

}  // namespace amdrel::core
