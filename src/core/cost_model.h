#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hybrid_mapper.h"
#include "core/methodology.h"
#include "ir/profile.h"

namespace amdrel::core {

/// The single owner of movement pricing beyond the paper's additive
/// equation (2). The engine historically scattered pricing across
/// platform_cost, CostObjective::value/met, core/energy.h block pricing
/// and IncrementalSplit's O(1) deltas — all of it per-block additive, an
/// assumption the reconfiguration model deliberately breaks (a module's
/// load charge depends on WHICH other modules hold the PR regions). This
/// interface is the seam: the additive v2 behaviour is one
/// implementation (every charge zero), the reconfiguration-aware model
/// another, and IncrementalSplit / the strategies / run_methodology
/// consume whichever one make_cost_model selects from the ObjectiveSpec.
///
/// Pricing semantics of the reconfiguration charge, shared by the exact
/// evaluator below and IncrementalSplit's incremental repricing:
///
///   units(b)  = packed node count of block b (bitstream-size proxy)
///   load(b)   = model.load_cycles(units(b))          (0 when disabled)
///   w(b)      = max(1, profile iterations of b)
///   R         = resident_regions() >= 1
///
/// Every moved block pays load(b) on each of its w(b) invocations,
/// except that the R moved blocks with the largest re-load saving
/// load(b)*(w(b)-1) stay resident in the PR regions and pay only once:
///
///   t_reconfig(M) = sum_{b in M} load(b)*w(b)
///                 - sum_{b in topR(M)} load(b)*(w(b)-1)
///
/// Equivalently t_reconfig(M) = sum load(b) + E(M) with the excess
/// E(M) = sum savings - topR savings >= 0. E is monotone nondecreasing
/// under set inclusion (adding a block with saving s raises the topR sum
/// by at most s), which is exactly what keeps the exhaustive strategy's
/// suffix bound admissible — see the proof note in core/strategy.cc.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// True when any reconfiguration charge can be nonzero. False lets
  /// IncrementalSplit skip the repricing machinery entirely — the
  /// additive fast path, byte-identical to the pre-CostModel engine.
  virtual bool prices_reconfiguration() const = 0;

  /// Configuration-load latency in FPGA cycles for a module of `units`
  /// op nodes.
  virtual std::int64_t load_cycles(std::int64_t units) const = 0;

  /// Number of PR regions that keep a configuration resident across
  /// invocations; always >= 1.
  virtual int resident_regions() const = 0;

  /// Area-equivalent floorplan charge for `units` total moved op nodes.
  /// Reported beside platform_cost (PartitionReport::floorplan_cost and
  /// the sweep's Pareto platform-cost axis), never added to cycles.
  virtual double floorplan_cost(std::int64_t units) const = 0;

  /// Exact from-scratch reconfiguration charge for a moved set — the
  /// reference IncrementalSplit's incremental t_reconfig is property-
  /// tested against, and the repricer run_methodology uses for restored
  /// cache hits.
  std::int64_t reconfig_cycles(const HybridMapper& mapper,
                               const ir::ProfileData& profile,
                               const std::vector<ir::BlockId>& moved) const;

  /// Total moved units for floorplan pricing.
  static std::int64_t moved_units(const HybridMapper& mapper,
                                  const std::vector<ir::BlockId>& moved);
};

/// The paper's additive pricing (v2): no reconfiguration or floorplan
/// charges at all. Byte-identical to the pre-CostModel engine.
class AdditiveCostModel final : public CostModel {
 public:
  bool prices_reconfiguration() const override { return false; }
  std::int64_t load_cycles(std::int64_t) const override { return 0; }
  int resident_regions() const override { return 1; }
  double floorplan_cost(std::int64_t) const override { return 0.0; }
};

/// Reconfiguration-aware pricing driven by a platform::ReconfigModel.
/// `default_regions` resolves ReconfigModel::regions == 0 (one region
/// per CGC, so pass the platform's cgc.count).
class ReconfigCostModel final : public CostModel {
 public:
  ReconfigCostModel(const platform::ReconfigModel& model, int default_regions);

  bool prices_reconfiguration() const override {
    return model_.bitstream_cycles_per_unit > 0;
  }
  std::int64_t load_cycles(std::int64_t units) const override {
    return model_.load_cycles(units);
  }
  int resident_regions() const override { return regions_; }
  double floorplan_cost(std::int64_t units) const override {
    return model_.floorplan_cost_per_unit * static_cast<double>(units);
  }

 private:
  platform::ReconfigModel model_;
  int regions_;
};

/// Selects the pricing implementation for an ObjectiveSpec: the additive
/// model unless spec.reconfig prices something. `platform` resolves the
/// regions default. The zero-model identity (every golden byte-for-byte
/// unchanged) is pinned by the additive-equivalence property suite.
std::unique_ptr<CostModel> make_cost_model(const ObjectiveSpec& spec,
                                           const platform::Platform& platform);

}  // namespace amdrel::core
