#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/net.h"

namespace amdrel::core {

// ---------------------------------------------------------------------------
// Pluggable worker transports for the distributed sweep service
// (core/sweep_service.h). The coordinator's fault-tolerant event loop is
// written against two small interfaces:
//
//   WorkerChannel — one connected worker: a pollable fd, a non-blocking
//   line reader, and (for bidirectional transports) a line writer. The
//   channel owns the worker's lifetime: destroying an unfinished channel
//   forcibly terminates a forked worker (SIGKILL + reap) or drops a
//   socket — the coordinator's idle-timeout retirement path.
//
//   Transport — a factory of channels. ForkPipeTransport reproduces the
//   pre-Transport behavior byte-for-byte: fork/exec a worker process
//   whose argv carries its shard assignment and whose stdout carries the
//   static wire stream. TcpTransport accepts `amdrelc worker --connect`
//   dial-ins on a listening socket and speaks the bidirectional wire v3
//   control lines (core/wire.h), so one coordinator can drive workers on
//   many hosts and reassign work to survivors when one dies.
// ---------------------------------------------------------------------------

/// Result of draining a channel.
enum class ChannelStatus {
  kOk,      ///< channel still open (zero or more lines drained)
  kClosed,  ///< EOF or hard error; no further lines will arrive
};

/// One connected worker endpoint.
class WorkerChannel {
 public:
  virtual ~WorkerChannel() = default;

  /// fd to poll (POLLIN) for readability.
  virtual int poll_fd() const = 0;

  /// Drains whatever is readable without blocking and appends every
  /// COMPLETE line (newline stripped) to `lines`. A trailing fragment
  /// with no newline stays buffered — at EOF it is discarded, which is
  /// exactly the truncated-stream case the consumer rejects.
  virtual ChannelStatus read_lines(std::vector<std::string>& lines) = 0;

  /// Sends one full protocol line (trailing newline included). False on
  /// a write-incapable channel (pipe transport) or a broken peer; once a
  /// write fails the channel stays write-broken so a torn line can never
  /// be followed by more bytes.
  virtual bool write_line(const std::string& line) = 0;

  /// Whether the peer accepts further "assign" batches after finishing a
  /// round (wire v3 dynamic protocol). Fork/pipe workers are static:
  /// their one batch is fixed in argv at spawn.
  virtual bool supports_reassignment() const = 0;

  /// After kClosed: reaps/clean-closes the worker. True if it went down
  /// cleanly (exit status 0 for a forked worker; always true for a
  /// socket). Idempotent; never blocks on a live well-behaved peer.
  virtual bool finish() = 0;

  /// For diagnostics: "worker 2 (pid 4711)", "tcp worker 0", ...
  virtual const std::string& describe() const = 0;
};

/// Factory of worker channels.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Produces a channel that will compute `shards`. For a spawning
  /// transport the assignment is fixed at launch (argv); for an
  /// accepting transport `shards` is advisory — the coordinator sends
  /// the batch over the wire after the channel opens. Waits up to
  /// timeout_ms for a worker to materialize (0 = only one already
  /// pending); nullptr on timeout. Throws Error on hard failures.
  virtual std::unique_ptr<WorkerChannel> open_worker(
      const std::vector<std::size_t>& shards, int timeout_ms) = 0;

  virtual const std::string& describe() const = 0;
};

/// Maps a worker's assigned shard list to the argv of the process to
/// spawn (argv[0] = executable, resolved via PATH). The process must
/// speak the static wire protocol on stdout. The CLI builds
/// "amdrelc worker ... --shards i,j,..." here.
using WorkerCommandFn =
    std::function<std::vector<std::string>(const std::vector<std::size_t>&)>;

/// Local fork/exec transport: one-directional pipe from the worker's
/// stdout, byte-for-byte the pre-Transport serve behavior. Retry support
/// comes from respawning (open_worker with the unfinished shards), not
/// reassignment.
class ForkPipeTransport : public Transport {
 public:
  explicit ForkPipeTransport(WorkerCommandFn command);

  std::unique_ptr<WorkerChannel> open_worker(
      const std::vector<std::size_t>& shards, int timeout_ms) override;
  const std::string& describe() const override;

 private:
  WorkerCommandFn command_;
  std::string describe_;
  int spawned_ = 0;
};

/// Socket transport: accepts `amdrelc worker --connect host:port`
/// dial-ins on a listening socket (support/net.h) and assigns work over
/// the wire v3 control lines, so shards can be reassigned to surviving
/// workers without respawning anything.
class TcpTransport : public Transport {
 public:
  /// Takes ownership of a listening socket (net::listen_tcp).
  explicit TcpTransport(support::net::Socket listener);

  /// The locally bound port (ephemeral-port discovery for --listen :0).
  int port() const;

  std::unique_ptr<WorkerChannel> open_worker(
      const std::vector<std::size_t>& shards, int timeout_ms) override;
  const std::string& describe() const override;

 private:
  support::net::Socket listener_;
  std::string describe_;
  int accepted_ = 0;
};

}  // namespace amdrel::core
