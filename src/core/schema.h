#pragma once

// The single home for every persisted-format version constant. Three
// surfaces persist or stream bytes across build boundaries — the sweep
// JSON/CSV artifact, the cache file, and the sweep-service wire — and
// each carries its own version so a reader can reject data written by an
// incompatible build before trusting a single field. Keeping all of them
// (plus the fingerprint algorithm version that keys the cache) in one
// header makes a bump a visible, reviewable event: tests/schema_test.cc
// golden-pins these values, so changing any of them requires touching
// both files in the same commit.

namespace amdrel::core {

/// Version of the fingerprint ALGORITHM (mix order, field set, seeds).
/// Mixed into every fingerprint, so any change to what gets hashed — not
/// just how — must bump it: otherwise stale cache entries keyed by the
/// old algorithm would collide with the new one.
///  v3: MethodologyOptions grew the reconfiguration model
///      (bitstream_cycles_per_unit, prefetch_overlap,
///      floorplan_cost_per_unit, regions).
inline constexpr int kFingerprintAlgorithmVersion = 3;

/// Schema version of the sweep JSON/CSV artifact (core/sweep_io.h).
///  v3: cells gained reconfig_cycles and floorplan_cost columns.
inline constexpr int kSweepSchemaVersion = 3;

/// Schema version of the cache FILE (core/sweep_cache.h). Distinct from
/// kSweepSchemaVersion: the artifact and the cache evolve independently.
///  v4: cell payloads gained t_reconfig and floorplan_bits fields.
inline constexpr int kSweepCacheSchemaVersion = 4;

/// Version of the sweep-service wire protocol (core/wire.h). Covers the
/// framing lines; the cell payload itself is additionally guarded by
/// kSweepCacheSchemaVersion in the wire header.
///  v2: cell payloads gained t_reconfig and floorplan_bits fields.
///  v3: bidirectional control lines for socket transports — coordinator
///      -> worker "assign" (shard batch + retry generation) and
///      "shutdown", informational "shard_ack"; worker -> coordinator
///      "round_done" after each assign batch. The one-directional
///      static stream (wire_header / shard / cell / worker_done) is
///      unchanged byte-for-byte.
inline constexpr int kSweepWireProtocolVersion = 3;

}  // namespace amdrel::core
