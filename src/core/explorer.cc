#include "core/explorer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>

#include "core/report.h"
#include "support/error.h"

namespace amdrel::core {

ExploreSummary explore_design_space(const ir::Cdfg& cdfg,
                                    const ir::ProfileData& profile,
                                    const platform::Platform& platform,
                                    const ExploreSpec& spec) {
  require(!spec.strategies.empty() && !spec.orderings.empty(),
          "explore_design_space: empty strategy/ordering grid");

  std::vector<std::int64_t> constraints = spec.constraints;
  if (constraints.empty()) {
    const std::int64_t all_fine =
        HybridMapper(cdfg, platform).all_fine_cycles(profile);
    constraints = {all_fine / 4, all_fine / 2, (3 * all_fine) / 4};
  }

  ExploreSummary summary;
  for (const std::int64_t constraint : constraints) {
    for (const StrategyKind strategy : spec.strategies) {
      for (const KernelOrdering ordering : spec.orderings) {
        ExplorePoint point;
        point.constraint = constraint;
        point.strategy = strategy;
        point.ordering = ordering;
        summary.points.push_back(point);
      }
    }
  }

  const std::size_t jobs = summary.points.size();
  int threads = spec.threads > 0
                    ? spec.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min<int>(threads, static_cast<int>(jobs)));

  // Each worker owns one mapper for the (cdfg, platform) pair and reuses
  // it across every job it claims; runs are independent and written to
  // their own slot, so scheduling cannot change the output.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    HybridMapper mapper(cdfg, platform);
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= jobs) return;
      ExplorePoint& point = summary.points[index];
      MethodologyOptions options = spec.base;
      options.strategy = point.strategy;
      options.ordering = point.ordering;
      point.report =
          run_methodology(mapper, profile, point.constraint, options);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Pareto front over (final cycles, kernels moved), both minimized. A
  // point is dominated when another is no worse on both axes and strictly
  // better on one.
  for (std::size_t i = 0; i < jobs; ++i) {
    const PartitionReport& a = summary.points[i].report;
    bool dominated = false;
    for (std::size_t j = 0; j < jobs && !dominated; ++j) {
      if (i == j) continue;
      const PartitionReport& b = summary.points[j].report;
      const bool no_worse = b.final_cycles <= a.final_cycles &&
                            b.moved.size() <= a.moved.size();
      const bool better = b.final_cycles < a.final_cycles ||
                          b.moved.size() < a.moved.size();
      dominated = no_worse && better;
    }
    if (!dominated) {
      summary.points[i].on_pareto_front = true;
      summary.pareto.push_back(i);
    }
  }
  return summary;
}

std::string describe(const ExploreSummary& summary) {
  TextTable table({"constraint", "strategy", "ordering", "moved",
                   "final cycles", "% reduction", "met", "pareto"});
  for (const ExplorePoint& point : summary.points) {
    char reduction[32];
    std::snprintf(reduction, sizeof reduction, "%.1f",
                  point.report.reduction_percent());
    table.add_row({with_thousands(point.constraint),
                   strategy_name(point.strategy),
                   kernel_ordering_name(point.ordering),
                   std::to_string(point.report.moved.size()),
                   with_thousands(point.report.final_cycles), reduction,
                   point.report.met ? "yes" : "no",
                   point.on_pareto_front ? "*" : ""});
  }
  std::ostringstream os;
  os << table.to_string();
  os << summary.pareto.size() << " of " << summary.points.size()
     << " grid points on the pareto front (final cycles vs kernels moved)\n";
  return os.str();
}

}  // namespace amdrel::core
