#include "core/explorer.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <thread>

#include "core/report.h"
#include "core/sweep_cache.h"
#include "support/error.h"
#include "support/strings.h"

namespace amdrel::core {

namespace {

/// Builds a (cdfg, platform) mapper through the cache's snapshot memo:
/// a hit restores the fine-grain mapping in O(blocks) copies, a miss
/// cold-builds and publishes the snapshot for the other workers. Without
/// a cache this is a plain construction.
HybridMapper make_mapper(SweepCache* cache, const Fingerprint& shard,
                         const ir::Cdfg& cdfg,
                         const platform::Platform& platform) {
  if (cache) {
    if (const std::shared_ptr<const MapperState> state =
            cache->find_mapper(shard)) {
      return HybridMapper(cdfg, platform, *state);
    }
    HybridMapper mapper(cdfg, platform);
    cache->store_mapper(shard,
                        std::make_shared<MapperState>(mapper.state()));
    return mapper;
  }
  return HybridMapper(cdfg, platform);
}

/// All-fine-grain cycles of one (app, platform) pair, memoized so the
/// default-constraint fractions resolve on a warm cache without touching
/// a mapper at all.
std::int64_t memoized_all_fine(SweepCache* cache, const Fingerprint& shard,
                               const ir::Cdfg& cdfg,
                               const ir::ProfileData& profile,
                               const platform::Platform& platform) {
  if (cache) {
    if (const std::optional<std::int64_t> hit = cache->find_all_fine(shard)) {
      return *hit;
    }
  }
  const std::int64_t all_fine =
      make_mapper(cache, shard, cdfg, platform).all_fine_cycles(profile);
  if (cache) cache->store_all_fine(shard, all_fine);
  return all_fine;
}

std::vector<std::string> moved_block_names(const ir::Cdfg& cdfg,
                                           const PartitionReport& report) {
  std::vector<std::string> names;
  names.reserve(report.moved.size());
  for (const ir::BlockId block : report.moved) {
    names.push_back(cdfg.block(block).name);
  }
  return names;
}

/// The default constraint axis: the paper's quarter points of the
/// all-fine-grain cycle count. For tiny apps the integer divisions can
/// collapse a fraction to 0 (an unmeetable "finish in no cycles"
/// constraint) or onto a duplicate slot; each value is clamped to at
/// least one cycle and duplicates are dropped, preserving order. Apps
/// with all_fine >= 4 distinct quarter points (every paper app) are
/// unchanged, so the sweep goldens never see the clamp.
std::vector<std::int64_t> default_constraints(std::int64_t all_fine) {
  std::vector<std::int64_t> fractions;
  for (const std::int64_t raw :
       {all_fine / 4, all_fine / 2, (3 * all_fine) / 4}) {
    const std::int64_t clamped = std::max<std::int64_t>(1, raw);
    if (std::find(fractions.begin(), fractions.end(), clamped) ==
        fractions.end()) {
      fractions.push_back(clamped);
    }
  }
  return fractions;
}

}  // namespace

ExploreSummary explore_design_space(const ir::Cdfg& cdfg,
                                    const ir::ProfileData& profile,
                                    const platform::Platform& platform,
                                    const ExploreSpec& spec) {
  require(!spec.strategies.empty() && !spec.orderings.empty(),
          "explore_design_space: empty strategy/ordering grid");

  SweepCache* cache = spec.cache;
  Fingerprint app_fp;
  Fingerprint platform_fp;
  Fingerprint shard;
  if (cache) {
    app_fp = app_fingerprint(cdfg, profile);
    platform_fp = fingerprint(platform);
    shard = shard_key(app_fp, platform_fp);
  }

  std::vector<std::int64_t> constraints = spec.constraints;
  if (constraints.empty()) {
    const std::int64_t all_fine =
        cache ? memoized_all_fine(cache, shard, cdfg, profile, platform)
              : HybridMapper(cdfg, platform).all_fine_cycles(profile);
    constraints = default_constraints(all_fine);
  }
  const std::vector<double> budgets =
      spec.energy_budgets.empty()
          ? std::vector<double>{spec.base.cost.energy_budget_pj}
          : spec.energy_budgets;

  ExploreSummary summary;
  for (const std::int64_t constraint : constraints) {
    for (const double budget : budgets) {
      for (const StrategyKind strategy : spec.strategies) {
        for (const KernelOrdering ordering : spec.orderings) {
          ExplorePoint point;
          point.constraint = constraint;
          point.energy_budget_pj = budget;
          point.strategy = strategy;
          point.ordering = ordering;
          summary.points.push_back(point);
        }
      }
    }
  }

  // One job per (strategy, ordering) pair: those two pick the walk, and
  // the whole constraints x budgets axis of that walk is priced in one
  // run_methodology_axis call (a shared walk for greedy/annealing, a
  // per-cell search for exhaustive). Cached cells are filtered out
  // first so a warm axis never touches a mapper.
  const std::size_t strategy_count = spec.strategies.size();
  const std::size_t ordering_count = spec.orderings.size();
  const std::size_t jobs = strategy_count * ordering_count;
  const int threads = worker_count(jobs, spec.threads);

  // Each worker owns one mapper for the (cdfg, platform) pair — built
  // lazily on its first cache miss (or first job, uncached) and reused
  // across every job it claims; runs are independent and written to
  // their own slot, so scheduling cannot change the output.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    std::optional<HybridMapper> mapper;
    auto ensure_mapper = [&]() -> HybridMapper& {
      if (!mapper) mapper.emplace(make_mapper(cache, shard, cdfg, platform));
      return *mapper;
    };
    for (;;) {
      const std::size_t job = next.fetch_add(1);
      if (job >= jobs) break;
      MethodologyOptions options = spec.base;
      options.strategy = spec.strategies[job / ordering_count];
      options.ordering = spec.orderings[job % ordering_count];
      std::vector<std::size_t> missed;
      std::vector<AxisCell> axis;
      for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
        for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
          const std::size_t index =
              ((ci * budgets.size() + bi) * strategy_count +
               job / ordering_count) *
                  ordering_count +
              job % ordering_count;
          ExplorePoint& point = summary.points[index];
          if (cache) {
            options.cost.energy_budget_pj = point.energy_budget_pj;
            const Fingerprint key =
                cell_key(app_fp, platform_fp, options, point.constraint);
            if (const std::optional<CachedCell> hit = cache->find_cell(key)) {
              point.report = hit->report;
              continue;
            }
          }
          missed.push_back(index);
          axis.push_back({point.constraint, point.energy_budget_pj});
        }
      }
      if (missed.empty()) continue;
      const std::vector<PartitionReport> reports =
          run_methodology_axis(ensure_mapper(), profile, axis, options);
      for (std::size_t m = 0; m < missed.size(); ++m) {
        ExplorePoint& point = summary.points[missed[m]];
        point.report = reports[m];
        if (cache) {
          options.cost.energy_budget_pj = point.energy_budget_pj;
          CachedCell cell;
          cell.report = point.report;
          cell.moved_names = moved_block_names(cdfg, point.report);
          cache->store_cell(
              cell_key(app_fp, platform_fp, options, point.constraint),
              std::move(cell));
        }
      }
    }
    // Republish the snapshot with the coarse schedules accumulated while
    // working, so later restores skip the lazy CGC mapping too.
    if (cache && mapper) {
      cache->store_mapper(shard,
                          std::make_shared<MapperState>(mapper->state()));
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Pareto front over (final cycles, kernels moved, energy pJ), all
  // minimized. A point is dominated when another is no worse on every
  // axis and strictly better on one.
  for (std::size_t i = 0; i < summary.points.size(); ++i) {
    const PartitionReport& a = summary.points[i].report;
    bool dominated = false;
    for (std::size_t j = 0; j < summary.points.size() && !dominated; ++j) {
      if (i == j) continue;
      const PartitionReport& b = summary.points[j].report;
      const bool no_worse = b.final_cycles <= a.final_cycles &&
                            b.moved.size() <= a.moved.size() &&
                            b.energy.total_pj() <= a.energy.total_pj();
      const bool better = b.final_cycles < a.final_cycles ||
                          b.moved.size() < a.moved.size() ||
                          b.energy.total_pj() < a.energy.total_pj();
      dominated = no_worse && better;
    }
    if (!dominated) {
      summary.points[i].on_pareto_front = true;
      summary.pareto.push_back(i);
    }
  }
  return summary;
}

int worker_count(std::size_t jobs, int requested) {
  int threads = requested > 0
                    ? requested
                    : static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, std::min<int>(threads, static_cast<int>(jobs)));
}

std::optional<PlatformGrid> parse_platform_grid(std::string_view spec) {
  const std::size_t cross = spec.find('x');
  if (cross == std::string_view::npos) return std::nullopt;
  if (spec.find('x', cross + 1) != std::string_view::npos) return std::nullopt;

  const std::string areas_part(spec.substr(0, cross));
  const std::string counts_part(spec.substr(cross + 1));
  // split() drops a trailing empty field, so "1500,x2" would otherwise
  // silently parse as "1500x2".
  if (areas_part.empty() || areas_part.back() == ',') return std::nullopt;
  if (counts_part.empty() || counts_part.back() == ',') return std::nullopt;

  // std::sto* skip leading whitespace; the spec grammar does not.
  auto strict = [](const std::string& item) {
    return !item.empty() &&
           !std::isspace(static_cast<unsigned char>(item.front()));
  };

  PlatformGrid grid;
  grid.areas.clear();
  grid.cgc_counts.clear();
  for (const std::string& item : split(areas_part)) {
    if (!strict(item)) return std::nullopt;
    try {
      std::size_t used = 0;
      const double area = std::stod(item, &used);
      if (used != item.size()) return std::nullopt;
      if (!std::isfinite(area) || area <= 0) return std::nullopt;
      grid.areas.push_back(area);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  for (const std::string& item : split(counts_part)) {
    if (!strict(item)) return std::nullopt;
    try {
      std::size_t used = 0;
      const int count = std::stoi(item, &used);
      if (used != item.size()) return std::nullopt;
      if (count < 1 || count > 1024) return std::nullopt;
      grid.cgc_counts.push_back(count);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (grid.areas.empty() || grid.cgc_counts.empty()) return std::nullopt;
  return grid;
}

std::size_t sweep_cells_per_shard(const SweepSpec& spec) {
  const std::size_t constraint_slots =
      spec.constraints.empty() ? 3 : spec.constraints.size();
  const std::size_t budget_slots =
      spec.energy_budgets.empty() ? 1 : spec.energy_budgets.size();
  return constraint_slots * budget_slots * spec.strategies.size() *
         spec.orderings.size();
}

std::size_t sweep_shard_count(const std::vector<CorpusApp>& corpus,
                              const SweepSpec& spec) {
  return corpus.size() * spec.grid.size();
}

void validate_sweep_inputs(const std::vector<CorpusApp>& corpus,
                           const SweepSpec& spec) {
  require(!corpus.empty(), "sweep_design_space: empty corpus");
  require(!spec.grid.areas.empty() && !spec.grid.cgc_counts.empty(),
          "sweep_design_space: empty platform grid");
  require(!spec.strategies.empty() && !spec.orderings.empty(),
          "sweep_design_space: empty strategy/ordering grid");
  // App names key the JSON app_pareto map; duplicates would emit
  // duplicate keys.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      require(corpus[i].name != corpus[j].name,
              "sweep_design_space: duplicate corpus app name '" +
                  corpus[i].name + "'");
    }
  }
}

std::vector<Fingerprint> sweep_app_fingerprints(
    const std::vector<CorpusApp>& corpus) {
  std::vector<Fingerprint> app_fps;
  app_fps.reserve(corpus.size());
  for (const CorpusApp& app : corpus) {
    app_fps.push_back(app_fingerprint(app.cdfg, app.profile));
  }
  return app_fps;
}

std::size_t compute_sweep_shard(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec,
                                const std::vector<Fingerprint>& app_fps,
                                std::size_t shard, SweepCell* slots) {
  SweepCache* cache = spec.cache;
  const std::vector<double> budgets =
      spec.energy_budgets.empty()
          ? std::vector<double>{spec.base.cost.energy_budget_pj}
          : spec.energy_budgets;

  const std::size_t app_index = shard / spec.grid.size();
  const std::size_t platform_index = shard % spec.grid.size();
  const double area =
      spec.grid.areas[platform_index / spec.grid.cgc_counts.size()];
  const int cgcs =
      spec.grid.cgc_counts[platform_index % spec.grid.cgc_counts.size()];
  const CorpusApp& app = corpus[app_index];
  const platform::Platform p = platform::make_paper_platform(area, cgcs);
  const double cost = platform::platform_cost(p);

  Fingerprint platform_fp;
  Fingerprint group_key;
  if (cache) {
    platform_fp = fingerprint(p);
    group_key = shard_key(app_fps[app_index], platform_fp);
  }

  // The mapper is built (or restored from a cached snapshot) only
  // when some cell of this group actually misses — a fully warm
  // group costs zero mapper constructions.
  std::optional<HybridMapper> mapper;
  auto ensure_mapper = [&]() -> HybridMapper& {
    if (!mapper) {
      mapper.emplace(make_mapper(cache, group_key, app.cdfg, p));
    }
    return *mapper;
  };

  std::vector<std::int64_t> constraints = spec.constraints;
  if (constraints.empty()) {
    // Resolved through the all-fine memo when warm; on a miss the
    // mapper built here is the group's mapper, reused by every cell.
    std::optional<std::int64_t> all_fine =
        cache ? cache->find_all_fine(group_key) : std::nullopt;
    if (!all_fine) {
      all_fine = ensure_mapper().all_fine_cycles(app.profile);
      if (cache) cache->store_all_fine(group_key, *all_fine);
    }
    constraints = default_constraints(*all_fine);
  }
  const std::size_t strategy_count = spec.strategies.size();
  const std::size_t ordering_count = spec.orderings.size();
  const std::size_t used =
      constraints.size() * budgets.size() * strategy_count * ordering_count;

  // One walk per (strategy, ordering) pair prices the shard's whole
  // constraints x budgets axis; cached cells are filtered out first
  // so a fully warm group still costs zero mapper constructions.
  for (std::size_t si = 0; si < strategy_count; ++si) {
    for (std::size_t oi = 0; oi < ordering_count; ++oi) {
      MethodologyOptions options = spec.base;
      options.strategy = spec.strategies[si];
      options.ordering = spec.orderings[oi];
      std::vector<std::size_t> missed;
      std::vector<AxisCell> axis;
      for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
        for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
          const std::size_t index =
              ((ci * budgets.size() + bi) * strategy_count + si) *
                  ordering_count +
              oi;
          SweepCell& cell = slots[index];
          cell.app = app_index;
          cell.a_fpga = area;
          cell.cgcs = cgcs;
          cell.platform_cost = cost;
          cell.constraint = constraints[ci];
          cell.energy_budget_pj = budgets[bi];
          cell.strategy = spec.strategies[si];
          cell.ordering = spec.orderings[oi];
          if (cache) {
            options.cost.energy_budget_pj = budgets[bi];
            const Fingerprint key = cell_key(app_fps[app_index], platform_fp,
                                             options, constraints[ci]);
            if (std::optional<CachedCell> hit = cache->find_cell(key)) {
              cell.report = std::move(hit->report);
              cell.moved_names = std::move(hit->moved_names);
              continue;
            }
          }
          missed.push_back(index);
          axis.push_back({constraints[ci], budgets[bi]});
        }
      }
      if (missed.empty()) continue;
      const std::vector<PartitionReport> reports =
          run_methodology_axis(ensure_mapper(), app.profile, axis, options);
      for (std::size_t m = 0; m < missed.size(); ++m) {
        SweepCell& cell = slots[missed[m]];
        cell.report = reports[m];
        cell.moved_names = moved_block_names(app.cdfg, cell.report);
        if (cache) {
          options.cost.energy_budget_pj = cell.energy_budget_pj;
          CachedCell fresh;
          fresh.report = cell.report;
          fresh.moved_names = cell.moved_names;
          cache->store_cell(cell_key(app_fps[app_index], platform_fp,
                                     options, cell.constraint),
                            std::move(fresh));
        }
      }
    }
  }
  // Republish the snapshot including the lazily-built coarse
  // schedules of this group.
  if (cache && mapper) {
    cache->store_mapper(group_key,
                        std::make_shared<MapperState>(mapper->state()));
  }
  return used;
}

void finalize_sweep_summary(SweepSummary& summary,
                            const std::vector<std::size_t>& shard_used,
                            std::size_t cells_per_shard) {
  // Drop the unused tail slots of shards whose default constraints
  // collapsed (a shard's filled cells are the contiguous prefix of its
  // slot range — the constraint index is the outermost layout axis).
  // A no-op whenever every shard filled its capacity.
  const std::size_t shards = shard_used.size();
  std::size_t used_total = 0;
  for (const std::size_t used : shard_used) used_total += used;
  if (used_total != summary.cells.size()) {
    std::vector<SweepCell> compact;
    compact.reserve(used_total);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const auto begin =
          summary.cells.begin() +
          static_cast<std::ptrdiff_t>(shard * cells_per_shard);
      std::move(begin, begin + static_cast<std::ptrdiff_t>(shard_used[shard]),
                std::back_inserter(compact));
    }
    summary.cells = std::move(compact);
  }

  // Pareto fronts over (final cycles, kernels moved, platform cost,
  // energy pJ), all minimized: one per app and one merged over every
  // cell. The platform-cost axis folds in the per-cell floorplan charge
  // (zero under the additive cost model, so pre-v3 fronts are
  // unchanged): a cheaper chip that forces expensive module placement
  // should not dominate a costlier one that does not.
  auto dominates = [](const SweepCell& b, const SweepCell& a) {
    const double b_cost = b.platform_cost + b.report.floorplan_cost;
    const double a_cost = a.platform_cost + a.report.floorplan_cost;
    const bool no_worse = b.report.final_cycles <= a.report.final_cycles &&
                          b.report.moved.size() <= a.report.moved.size() &&
                          b_cost <= a_cost &&
                          b.report.energy.total_pj() <=
                              a.report.energy.total_pj();
    const bool better = b.report.final_cycles < a.report.final_cycles ||
                        b.report.moved.size() < a.report.moved.size() ||
                        b_cost < a_cost ||
                        b.report.energy.total_pj() <
                            a.report.energy.total_pj();
    return no_worse && better;
  };
  summary.app_pareto.resize(summary.apps.size());
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    SweepCell& cell = summary.cells[i];
    bool app_dominated = false;
    bool global_dominated = false;
    for (const SweepCell& other : summary.cells) {
      if (&other == &cell || !dominates(other, cell)) continue;
      global_dominated = true;
      app_dominated = app_dominated || other.app == cell.app;
      if (app_dominated) break;
    }
    if (!app_dominated) {
      cell.on_app_pareto = true;
      summary.app_pareto[cell.app].push_back(i);
    }
    if (!global_dominated) {
      cell.on_global_pareto = true;
      summary.global_pareto.push_back(i);
    }
  }
}

SweepSummary sweep_design_space(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec) {
  validate_sweep_inputs(corpus, spec);

  // A shard is one (app, platform) cell group; its constraint slots are
  // resolved inside the shard (the default fractions depend on the
  // shard's all-fine-grain cycles), but the slot CAPACITY is fixed up
  // front, so every cell has a precomputed output slot and thread
  // scheduling cannot reorder anything. Default fractions that collapse
  // on tiny apps (see default_constraints) leave trailing slots unused;
  // each shard records how many it filled and the unused tail is
  // compacted away after the join.
  const std::size_t cells_per_shard = sweep_cells_per_shard(spec);
  const std::size_t shards = sweep_shard_count(corpus, spec);

  SweepSummary summary;
  summary.apps.reserve(corpus.size());
  for (const CorpusApp& app : corpus) summary.apps.push_back(app.name);
  summary.cells.resize(shards * cells_per_shard);

  // App fingerprints are shared by every platform cell of an app;
  // computed once up front rather than per shard.
  const std::vector<Fingerprint> app_fps =
      spec.cache ? sweep_app_fingerprints(corpus) : std::vector<Fingerprint>{};

  // Cells each shard actually filled (== cells_per_shard except when
  // default constraints collapsed); each slot is written by exactly the
  // worker that claimed the shard.
  std::vector<std::size_t> shard_used(shards, 0);

  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t shard = next.fetch_add(1);
      if (shard >= shards) return;
      shard_used[shard] =
          compute_sweep_shard(corpus, spec, app_fps, shard,
                              summary.cells.data() + shard * cells_per_shard);
    }
  };

  const int threads = worker_count(shards, spec.threads);
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  finalize_sweep_summary(summary, shard_used, cells_per_shard);
  return summary;
}

std::string describe(const ExploreSummary& summary) {
  TextTable table({"constraint", "strategy", "ordering", "moved",
                   "final cycles", "% reduction", "energy nJ", "met",
                   "pareto"});
  for (const ExplorePoint& point : summary.points) {
    char reduction[32];
    std::snprintf(reduction, sizeof reduction, "%.1f",
                  point.report.reduction_percent());
    char energy[32];
    std::snprintf(energy, sizeof energy, "%.1f",
                  point.report.energy.total_pj() / 1000.0);
    table.add_row({with_thousands(point.constraint),
                   strategy_name(point.strategy),
                   kernel_ordering_name(point.ordering),
                   std::to_string(point.report.moved.size()),
                   with_thousands(point.report.final_cycles), reduction,
                   energy, point.report.met ? "yes" : "no",
                   point.on_pareto_front ? "*" : ""});
  }
  std::ostringstream os;
  os << table.to_string();
  os << summary.pareto.size() << " of " << summary.points.size()
     << " grid points on the pareto front "
     << "(final cycles vs kernels moved vs energy)\n";
  return os.str();
}

std::string describe(const SweepSummary& summary) {
  TextTable table({"app", "A_FPGA", "CGCs", "constraint", "strategy",
                   "ordering", "moved", "final cycles", "% reduction",
                   "energy nJ", "met", "pareto"});
  std::size_t on_app_front = 0;
  for (const SweepCell& cell : summary.cells) {
    on_app_front += cell.on_app_pareto ? 1 : 0;
    char area[32];
    std::snprintf(area, sizeof area, "%g", cell.a_fpga);
    char reduction[32];
    std::snprintf(reduction, sizeof reduction, "%.1f",
                  cell.report.reduction_percent());
    char energy[32];
    std::snprintf(energy, sizeof energy, "%.1f",
                  cell.report.energy.total_pj() / 1000.0);
    table.add_row({summary.apps[cell.app], area, std::to_string(cell.cgcs),
                   with_thousands(cell.constraint),
                   strategy_name(cell.strategy),
                   kernel_ordering_name(cell.ordering),
                   std::to_string(cell.report.moved.size()),
                   with_thousands(cell.report.final_cycles), reduction,
                   energy, cell.report.met ? "yes" : "no",
                   cell.on_global_pareto ? "**"
                   : cell.on_app_pareto  ? "*"
                                         : ""});
  }
  std::ostringstream os;
  os << table.to_string();
  os << on_app_front << " of " << summary.cells.size()
     << " cells on a per-app pareto front, " << summary.global_pareto.size()
     << " on the merged global front "
     << "(final cycles vs kernels moved vs platform cost vs energy)\n";
  return os.str();
}

}  // namespace amdrel::core
