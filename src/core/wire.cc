#include "core/wire.h"

#include <ostream>
#include <sstream>

namespace amdrel::core::wire {

using jsonl::JsonParser;
using jsonl::JsonValue;
using jsonl::get_int;
using jsonl::get_string;

namespace {

bool get_size(const JsonValue& object, const char* name, std::size_t& out) {
  std::int64_t value = 0;
  if (!get_int(object, name, value) || value < 0) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

bool get_version(const JsonValue& object, const char* name, int& out) {
  std::int64_t value = 0;
  if (!get_int(object, name, value) || value < 0) return false;
  out = static_cast<int>(value);
  return true;
}

}  // namespace

bool parse_line(const std::string& line, JsonValue& object) {
  return JsonParser(line).parse(object) &&
         object.kind == JsonValue::Kind::kObject;
}

LineKind line_kind(const JsonValue& object) {
  std::string kind;
  if (!get_string(object, "kind", kind)) return LineKind::kUnknown;
  if (kind == "wire_header") return LineKind::kHeader;
  if (kind == "shard") return LineKind::kShard;
  if (kind == "cell") return LineKind::kCell;
  if (kind == "worker_done") return LineKind::kWorkerDone;
  if (kind == "assign") return LineKind::kAssign;
  if (kind == "shard_ack") return LineKind::kShardAck;
  if (kind == "round_done") return LineKind::kRoundDone;
  if (kind == "shutdown") return LineKind::kShutdown;
  return LineKind::kUnknown;
}

void encode_header(std::ostream& os, const Header& header) {
  os << "{\"kind\":\"wire_header\",\"protocol\":" << header.protocol
     << ",\"schema_version\":" << header.schema_version
     << ",\"fingerprint_algorithm\":" << header.fingerprint_algorithm
     << ",\"shards\":" << header.shards << "}\n";
}

bool decode_header(const JsonValue& object, Header& header) {
  return line_kind(object) == LineKind::kHeader &&
         get_version(object, "protocol", header.protocol) &&
         get_version(object, "schema_version", header.schema_version) &&
         get_version(object, "fingerprint_algorithm",
                     header.fingerprint_algorithm) &&
         get_size(object, "shards", header.shards);
}

void encode_shard_begin(std::ostream& os, const ShardBegin& shard) {
  os << "{\"kind\":\"shard\",\"shard\":" << shard.shard
     << ",\"used\":" << shard.used << "}\n";
}

bool decode_shard_begin(const JsonValue& object, ShardBegin& shard) {
  return line_kind(object) == LineKind::kShard &&
         get_size(object, "shard", shard.shard) &&
         get_size(object, "used", shard.used);
}

void encode_cell(std::ostream& os, std::size_t shard, std::size_t slot,
                 const PartitionReport& report,
                 const std::vector<std::string>& moved_names) {
  os << "{\"kind\":\"cell\",\"shard\":" << shard << ",\"slot\":" << slot
     << ",";
  write_cell_payload(os, report, moved_names);
  os << "}\n";
}

bool decode_cell(const JsonValue& object, Cell& cell) {
  return line_kind(object) == LineKind::kCell &&
         get_size(object, "shard", cell.shard) &&
         get_size(object, "slot", cell.slot) &&
         read_cell_payload(object, cell.payload);
}

void encode_worker_done(std::ostream& os, const WorkerDone& done) {
  os << "{\"kind\":\"worker_done\",\"cells\":" << done.cells << "}\n";
}

bool decode_worker_done(const JsonValue& object, WorkerDone& done) {
  return line_kind(object) == LineKind::kWorkerDone &&
         get_size(object, "cells", done.cells);
}

std::string encode_assign(const Assign& assign) {
  std::ostringstream os;
  os << "{\"kind\":\"assign\",\"retry\":" << assign.retry << ",\"shards\":[";
  for (std::size_t i = 0; i < assign.shards.size(); ++i) {
    if (i) os << ',';
    os << assign.shards[i];
  }
  os << "]}\n";
  return os.str();
}

bool decode_assign(const JsonValue& object, Assign& assign) {
  if (line_kind(object) != LineKind::kAssign ||
      !get_size(object, "retry", assign.retry)) {
    return false;
  }
  const JsonValue* shards = object.find("shards");
  if (!shards || shards->kind != JsonValue::Kind::kArray) return false;
  assign.shards.clear();
  assign.shards.reserve(shards->items.size());
  for (const JsonValue& item : shards->items) {
    if (item.kind != JsonValue::Kind::kInt || item.integer < 0) return false;
    assign.shards.push_back(static_cast<std::size_t>(item.integer));
  }
  return true;
}

std::string encode_shard_ack(const ShardAck& ack) {
  std::ostringstream os;
  os << "{\"kind\":\"shard_ack\",\"shard\":" << ack.shard << "}\n";
  return os.str();
}

bool decode_shard_ack(const JsonValue& object, ShardAck& ack) {
  return line_kind(object) == LineKind::kShardAck &&
         get_size(object, "shard", ack.shard);
}

std::string encode_round_done(const RoundDone& done) {
  std::ostringstream os;
  os << "{\"kind\":\"round_done\",\"cells\":" << done.cells << "}\n";
  return os.str();
}

bool decode_round_done(const JsonValue& object, RoundDone& done) {
  return line_kind(object) == LineKind::kRoundDone &&
         get_size(object, "cells", done.cells);
}

std::string encode_shutdown() { return "{\"kind\":\"shutdown\"}\n"; }

}  // namespace amdrel::core::wire
