#include "core/methodology.h"

#include <algorithm>
#include <random>

#include "core/strategy.h"

namespace amdrel::core {

namespace {

std::vector<analysis::KernelInfo> order_kernels(
    std::vector<analysis::KernelInfo> kernels, HybridMapper& mapper,
    const MethodologyOptions& options) {
  switch (options.ordering) {
    case KernelOrdering::kWeightDescending:
      // extract_kernels already returns this order.
      break;
    case KernelOrdering::kCodeOrder:
      std::sort(kernels.begin(), kernels.end(),
                [](const auto& a, const auto& b) { return a.block < b.block; });
      break;
    case KernelOrdering::kRandom: {
      std::mt19937_64 rng(options.random_seed);
      std::shuffle(kernels.begin(), kernels.end(), rng);
      break;
    }
    case KernelOrdering::kBenefitDescending: {
      std::vector<std::pair<std::int64_t, std::size_t>> benefit;
      for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto& k = kernels[i];
        benefit.emplace_back(mapper.move_benefit_cycles(k.block, k.exec_freq),
                             i);
      }
      std::sort(benefit.begin(), benefit.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      std::vector<analysis::KernelInfo> ordered;
      ordered.reserve(kernels.size());
      for (const auto& [gain, index] : benefit) ordered.push_back(kernels[index]);
      kernels = std::move(ordered);
      break;
    }
  }
  return kernels;
}

}  // namespace

PartitionReport run_methodology(HybridMapper& mapper,
                                const ir::ProfileData& profile,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options) {
  PartitionReport report;
  report.app = mapper.cdfg().name();
  report.timing_constraint = timing_constraint_cycles;

  // Step 2: map everything to the fine-grain hardware; exit when the
  // timing constraint is already met.
  report.initial_cycles = mapper.all_fine_cycles(profile);
  report.final_cycles = report.initial_cycles;
  report.cost.t_fpga = report.initial_cycles;
  if (report.initial_cycles <= timing_constraint_cycles) {
    report.initial_meets = true;
    report.met = true;
    return report;
  }

  // Step 3: analysis — kernel extraction and ordering.
  report.kernels = order_kernels(
      analysis::extract_kernels(mapper.cdfg(), profile, options.analysis),
      mapper, options);

  // Steps 4-5: the partitioning engine, dispatched to the selected
  // strategy (the paper's greedy flow by default).
  const StrategyResult result = make_strategy(options.strategy)
                                    ->run({mapper, profile,
                                           timing_constraint_cycles, options,
                                           report.kernels});

  report.moved = result.moved;
  report.cost = result.cost;
  report.final_cycles = result.cost.total();
  report.cycles_in_cgc = result.cost.t_coarse;
  report.met = report.final_cycles <= timing_constraint_cycles;
  report.engine_iterations = result.engine_iterations;
  return report;
}

PartitionReport run_methodology(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options) {
  HybridMapper mapper(cdfg, platform);
  return run_methodology(mapper, profile, timing_constraint_cycles, options);
}

}  // namespace amdrel::core
