#include "core/methodology.h"

#include <algorithm>
#include <random>

#include "core/energy.h"
#include "core/strategy.h"
#include "support/error.h"

namespace amdrel::core {

namespace {

std::vector<analysis::KernelInfo> order_kernels(
    std::vector<analysis::KernelInfo> kernels, HybridMapper& mapper,
    const MethodologyOptions& options) {
  switch (options.ordering) {
    case KernelOrdering::kWeightDescending:
      // extract_kernels already returns this order.
      break;
    case KernelOrdering::kCodeOrder:
      std::sort(kernels.begin(), kernels.end(),
                [](const auto& a, const auto& b) { return a.block < b.block; });
      break;
    case KernelOrdering::kRandom: {
      std::mt19937_64 rng(options.random_seed);
      std::shuffle(kernels.begin(), kernels.end(), rng);
      break;
    }
    case KernelOrdering::kBenefitDescending: {
      std::vector<std::pair<std::int64_t, std::size_t>> benefit;
      for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto& k = kernels[i];
        benefit.emplace_back(mapper.move_benefit_cycles(k.block, k.exec_freq),
                             i);
      }
      std::sort(benefit.begin(), benefit.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      std::vector<analysis::KernelInfo> ordered;
      ordered.reserve(kernels.size());
      for (const auto& [gain, index] : benefit) ordered.push_back(kernels[index]);
      kernels = std::move(ordered);
      break;
    }
  }
  return kernels;
}

}  // namespace

PartitionReport run_methodology(HybridMapper& mapper,
                                const ir::ProfileData& profile,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options) {
  // The branch-and-bound lower bound (and the greedy/annealing "best"
  // tracking) assume the combined scalarization is monotone in both
  // axes; a negative weight would make the suffix-gain bound
  // inadmissible and silently return non-optimal "optima".
  require(options.objective.cycle_weight >= 0 &&
              options.objective.energy_weight >= 0,
          "run_methodology: combined-objective weights must be >= 0");

  PartitionReport report;
  report.app = mapper.cdfg().name();
  report.timing_constraint = timing_constraint_cycles;
  report.objective = options.objective.kind;
  report.energy_budget_pj = options.energy_budget_pj;

  // Step 2: map everything to the fine-grain hardware; exit when the
  // objective's constraint(s) — timing, energy budget, or both — are
  // already met. Every report carries energy columns (priced by a
  // deterministic full repricing), so sweeps can front on energy even
  // for timing-driven runs.
  report.initial_cycles = mapper.all_fine_cycles(profile);
  report.energy =
      estimate_energy(mapper, profile, {}, options.objective.energy);
  report.initial_energy_pj = report.energy.total_pj();
  report.final_cycles = report.initial_cycles;
  report.cost.t_fpga = report.initial_cycles;
  if (options.objective.met(report.initial_cycles, report.initial_energy_pj,
                            timing_constraint_cycles,
                            options.energy_budget_pj)) {
    report.initial_meets = true;
    report.met = true;
    return report;
  }

  // Step 3: analysis — kernel extraction and ordering.
  report.kernels = order_kernels(
      analysis::extract_kernels(mapper.cdfg(), profile, options.analysis),
      mapper, options);

  // Steps 4-5: the partitioning engine, dispatched to the selected
  // strategy (the paper's greedy flow by default).
  const StrategyResult result = make_strategy(options.strategy)
                                    ->run({mapper, profile,
                                           timing_constraint_cycles, options,
                                           report.kernels});

  report.moved = result.moved;
  report.cost = result.cost;
  report.final_cycles = result.cost.total();
  report.cycles_in_cgc = result.cost.t_coarse;
  // Reprice the final split's energy from scratch (block order, not the
  // search's move order) so the emitted numbers never depend on the
  // path the strategy walked.
  report.energy = estimate_energy(mapper, profile, report.moved,
                                  options.objective.energy);
  report.met = options.objective.met(report.final_cycles,
                                     report.energy.total_pj(),
                                     timing_constraint_cycles,
                                     options.energy_budget_pj);
  report.engine_iterations = result.engine_iterations;
  return report;
}

PartitionReport run_methodology(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options) {
  HybridMapper mapper(cdfg, platform);
  return run_methodology(mapper, profile, timing_constraint_cycles, options);
}

}  // namespace amdrel::core
