#include "core/methodology.h"

#include <algorithm>
#include <map>
#include <random>

#include "core/cost_model.h"
#include "core/energy.h"
#include "core/strategy.h"
#include "support/error.h"

namespace amdrel::core {

namespace {

std::vector<analysis::KernelInfo> order_kernels(
    std::vector<analysis::KernelInfo> kernels, HybridMapper& mapper,
    const MethodologyOptions& options) {
  switch (options.ordering) {
    case KernelOrdering::kWeightDescending:
      // extract_kernels already returns this order.
      break;
    case KernelOrdering::kCodeOrder:
      std::sort(kernels.begin(), kernels.end(),
                [](const auto& a, const auto& b) { return a.block < b.block; });
      break;
    case KernelOrdering::kRandom: {
      std::mt19937_64 rng(options.random_seed);
      std::shuffle(kernels.begin(), kernels.end(), rng);
      break;
    }
    case KernelOrdering::kBenefitDescending: {
      std::vector<std::pair<std::int64_t, std::size_t>> benefit;
      for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto& k = kernels[i];
        benefit.emplace_back(mapper.move_benefit_cycles(k.block, k.exec_freq),
                             i);
      }
      std::sort(benefit.begin(), benefit.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      std::vector<analysis::KernelInfo> ordered;
      ordered.reserve(kernels.size());
      for (const auto& [gain, index] : benefit) ordered.push_back(kernels[index]);
      kernels = std::move(ordered);
      break;
    }
  }
  return kernels;
}

}  // namespace

std::vector<PartitionReport> run_methodology_axis(
    HybridMapper& mapper, const ir::ProfileData& profile,
    const std::vector<AxisCell>& cells, const MethodologyOptions& options) {
  // The branch-and-bound lower bound (and the greedy/annealing "best"
  // tracking) assume the combined scalarization is monotone in both
  // axes; a negative weight would make the suffix-gain bound
  // inadmissible and silently return non-optimal "optima".
  require(options.cost.objective.cycle_weight >= 0 &&
              options.cost.objective.energy_weight >= 0,
          "run_methodology: combined-objective weights must be >= 0");

  std::vector<PartitionReport> reports(cells.size());
  if (cells.empty()) return reports;

  // Step 2 once: the all-fine solution is cell-independent. Every
  // report carries energy columns (priced by a deterministic full
  // repricing), so sweeps can front on energy even for timing-driven
  // runs. Cells the all-fine solution already satisfies exit here.
  const std::int64_t initial_cycles = mapper.all_fine_cycles(profile);
  const EnergyBreakdown initial_energy =
      estimate_energy(mapper, profile, {}, options.cost.objective.energy);
  const double initial_pj = initial_energy.total_pj();

  std::vector<std::size_t> open;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    PartitionReport& report = reports[c];
    report.app = mapper.cdfg().name();
    report.timing_constraint = cells[c].timing_constraint;
    report.objective = options.cost.objective.kind;
    report.energy_budget_pj = cells[c].energy_budget_pj;
    report.initial_cycles = initial_cycles;
    report.energy = initial_energy;
    report.initial_energy_pj = initial_pj;
    report.final_cycles = initial_cycles;
    report.cost.t_fpga = initial_cycles;
    if (options.cost.objective.met(initial_cycles, initial_pj,
                              cells[c].timing_constraint,
                              cells[c].energy_budget_pj)) {
      report.initial_meets = true;
      report.met = true;
    } else {
      open.push_back(c);
    }
  }
  if (open.empty()) return reports;

  // Step 3 once: kernel extraction and ordering never consult the
  // constraint or the budget.
  const std::vector<analysis::KernelInfo> kernels = order_kernels(
      analysis::extract_kernels(mapper.cdfg(), profile, options.analysis),
      mapper, options);

  // Steps 4-5: the partitioning engine prices every open cell —
  // greedy/annealing from one shared walk, the exhaustive search per
  // cell (its pruning depends on the constraint).
  std::vector<AxisCell> open_cells;
  open_cells.reserve(open.size());
  for (std::size_t c : open) open_cells.push_back(cells[c]);
  const std::vector<StrategyResult> results =
      make_strategy(options.strategy)
          ->run_axis({mapper, profile, options, kernels, open_cells});

  // Reprice each final split's energy from scratch (block order, not
  // the search's move order) so the emitted numbers never depend on the
  // path the strategy walked. Adjacent cells usually stop on the same
  // split, so the (deterministic) repricing is memoized on the moved
  // set.
  std::map<std::vector<ir::BlockId>, EnergyBreakdown> energy_memo;
  const std::unique_ptr<CostModel> cost_model =
      make_cost_model(options.cost, mapper.platform());
  for (std::size_t j = 0; j < open.size(); ++j) {
    PartitionReport& report = reports[open[j]];
    const StrategyResult& result = results[j];
    report.kernels = kernels;
    report.moved = result.moved;
    report.cost = result.cost;
    report.floorplan_cost =
        cost_model->floorplan_cost(CostModel::moved_units(mapper, report.moved));
    report.final_cycles = result.cost.total();
    report.cycles_in_cgc = result.cost.t_coarse;
    auto memo = energy_memo.find(report.moved);
    if (memo == energy_memo.end()) {
      memo = energy_memo
                 .emplace(report.moved,
                          estimate_energy(mapper, profile, report.moved,
                                          options.cost.objective.energy))
                 .first;
    }
    report.energy = memo->second;
    report.met = options.cost.objective.met(report.final_cycles,
                                       report.energy.total_pj(),
                                       report.timing_constraint,
                                       report.energy_budget_pj);
    report.engine_iterations = result.engine_iterations;
  }
  return reports;
}

PartitionReport run_methodology(HybridMapper& mapper,
                                const ir::ProfileData& profile,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options) {
  const std::vector<AxisCell> cells = {
      {timing_constraint_cycles, options.cost.energy_budget_pj}};
  return std::move(run_methodology_axis(mapper, profile, cells, options)[0]);
}

PartitionReport run_methodology(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options) {
  HybridMapper mapper(cdfg, platform);
  return run_methodology(mapper, profile, timing_constraint_cycles, options);
}

}  // namespace amdrel::core
