#include "core/methodology.h"

#include <algorithm>
#include <random>

namespace amdrel::core {

namespace {

std::vector<analysis::KernelInfo> order_kernels(
    std::vector<analysis::KernelInfo> kernels, HybridMapper& mapper,
    const ir::ProfileData& profile, const MethodologyOptions& options) {
  switch (options.ordering) {
    case KernelOrdering::kWeightDescending:
      // extract_kernels already returns this order.
      break;
    case KernelOrdering::kCodeOrder:
      std::sort(kernels.begin(), kernels.end(),
                [](const auto& a, const auto& b) { return a.block < b.block; });
      break;
    case KernelOrdering::kRandom: {
      std::mt19937_64 rng(options.random_seed);
      std::shuffle(kernels.begin(), kernels.end(), rng);
      break;
    }
    case KernelOrdering::kBenefitDescending: {
      std::vector<std::pair<std::int64_t, std::size_t>> benefit;
      for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto& k = kernels[i];
        std::int64_t gain = 0;
        if (k.cgc_eligible) {
          const auto iterations = static_cast<std::int64_t>(k.exec_freq);
          gain = (mapper.fine_cycles_per_invocation(k.block) -
                  mapper.coarse_cycles_per_invocation(k.block) -
                  mapper.comm_cycles_per_invocation(k.block)) *
                 iterations;
        }
        benefit.emplace_back(gain, i);
      }
      std::sort(benefit.begin(), benefit.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      std::vector<analysis::KernelInfo> ordered;
      ordered.reserve(kernels.size());
      for (const auto& [gain, index] : benefit) ordered.push_back(kernels[index]);
      kernels = std::move(ordered);
      break;
    }
  }
  return kernels;
}

}  // namespace

PartitionReport run_methodology(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options) {
  PartitionReport report;
  report.app = cdfg.name();
  report.timing_constraint = timing_constraint_cycles;

  HybridMapper mapper(cdfg, platform);

  // Step 2: map everything to the fine-grain hardware; exit when the
  // timing constraint is already met.
  report.initial_cycles = mapper.all_fine_cycles(profile);
  report.final_cycles = report.initial_cycles;
  report.cost.t_fpga = report.initial_cycles;
  if (report.initial_cycles <= timing_constraint_cycles) {
    report.initial_meets = true;
    report.met = true;
    return report;
  }

  // Step 3: analysis — kernel extraction and ordering.
  report.kernels =
      order_kernels(analysis::extract_kernels(cdfg, profile, options.analysis),
                    mapper, profile, options);

  // Steps 4-5: the partitioning engine moves kernels one by one to the
  // coarse-grain hardware, re-evaluating equations (2)-(4) after each
  // movement.
  SplitCost best_cost = report.cost;
  std::vector<ir::BlockId> best_moved;
  std::vector<ir::BlockId> moved;

  for (const analysis::KernelInfo& kernel : report.kernels) {
    if (!kernel.cgc_eligible) continue;  // divisions stay on the FPGA
    report.engine_iterations++;

    std::vector<ir::BlockId> trial = moved;
    trial.push_back(kernel.block);
    const SplitCost cost = mapper.evaluate(profile, trial);

    if (options.skip_unprofitable && cost.total() > best_cost.total()) {
      continue;  // ablation mode only; the paper always commits the move
    }
    moved = std::move(trial);
    if (cost.total() < best_cost.total()) {
      best_cost = cost;
      best_moved = moved;
    }
    if (options.stop_when_met && cost.total() <= timing_constraint_cycles) {
      best_cost = cost;
      best_moved = moved;
      break;
    }
  }

  // The committed result is the last evaluated split when the paper flow
  // stops early, otherwise the best split seen.
  report.moved = best_moved;
  report.cost = best_cost;
  report.final_cycles = best_cost.total();
  report.cycles_in_cgc = best_cost.t_coarse;
  report.met = report.final_cycles <= timing_constraint_cycles;
  return report;
}

}  // namespace amdrel::core
