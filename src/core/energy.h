#pragma once

#include <cstdint>

#include "core/methodology.h"

namespace amdrel::core {

// EnergyModel / EnergyBreakdown live in core/objective.h (re-exported
// through core/methodology.h) so the CostObjective abstraction and the
// IncrementalSplit energy deltas can use them without this header.

/// Prices one block for both sides of the split (the BlockEnergy struct
/// lives in core/objective.h with the other energy value types, so the
/// IncrementalSplit can hold contributions without this header).
/// `mapping` must be the
/// block's fine-grain mapping on the platform being priced. Blocks that
/// never execute contribute nothing (matching estimate_energy, which
/// skips them including their amortized reconfiguration charge).
BlockEnergy block_energy(const ir::Dfg& dfg,
                         const finegrain::FpgaBlockMapping& mapping,
                         std::uint64_t iterations, const EnergyModel& model);

/// Same pricing from a precomputed op mix and live-in/out word count
/// (the PackedCdfg per-block cache), so the engine hot paths never walk
/// DFG nodes to price energy. Bit-identical to the Dfg overload: the
/// same per-term arithmetic on the same values.
BlockEnergy block_energy(const ir::OpMix& mix, std::int64_t comm_words,
                         const finegrain::FpgaBlockMapping& mapping,
                         std::uint64_t iterations, const EnergyModel& model);

/// Prices the split where `moved` blocks run on the CGC data-path and the
/// rest on the fine-grain hardware.
EnergyBreakdown estimate_energy(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                const std::vector<ir::BlockId>& moved,
                                const EnergyModel& model = {});

/// Same pricing on a caller-owned mapper, reusing its fine-grain
/// mappings instead of re-mapping every block — the explorer/sweep hot
/// path. Byte-identical to the standalone overload (same per-block terms
/// accumulated in the same block order).
EnergyBreakdown estimate_energy(const HybridMapper& mapper,
                                const ir::ProfileData& profile,
                                const std::vector<ir::BlockId>& moved,
                                const EnergyModel& model = {});

/// Result of the energy-constrained partitioning variant.
struct EnergyPartitionReport {
  double initial_pj = 0;  ///< all-fine energy
  std::vector<ir::BlockId> moved;
  EnergyBreakdown energy;
  bool met = false;
  int engine_iterations = 0;

  double reduction_percent() const {
    return initial_pj == 0.0
               ? 0.0
               : 100.0 * (1.0 - energy.total_pj() / initial_pj);
  }
};

/// The methodology of Figure 2 with the timing check replaced by an
/// energy budget: kernels move (in decreasing total-weight order) to the
/// coarse-grain hardware until total energy drops below `budget_pj`.
/// A thin dispatcher over run_methodology with ObjectiveKind::kEnergy —
/// energy and timing share the whole strategy engine. The default
/// (greedy) strategy reproduces the original standalone loop
/// byte-for-byte whenever the budget is met (golden-pinned); for an
/// unmeetable budget it reports the best split found, which is never
/// worse in energy than the old always-commit result.
EnergyPartitionReport run_energy_methodology(
    const ir::Cdfg& cdfg, const ir::ProfileData& profile,
    const platform::Platform& platform, double budget_pj,
    const EnergyModel& model = {},
    const analysis::AnalysisOptions& options = {});

/// Same flow with full engine control: options picks the strategy
/// (greedy, branch-and-bound, annealing), ordering, seed and search
/// knobs; its objective kind / energy model / budget fields are
/// overwritten from `model` and `budget_pj`.
EnergyPartitionReport run_energy_methodology(
    const ir::Cdfg& cdfg, const ir::ProfileData& profile,
    const platform::Platform& platform, double budget_pj,
    const EnergyModel& model, const MethodologyOptions& options);

}  // namespace amdrel::core
