#pragma once

#include <cstdint>

#include "core/methodology.h"

namespace amdrel::core {

/// Per-operation/per-event energy characterization of the platform — the
/// paper's future-work direction ("partitioning an application for
/// satisfying energy consumption constraints"). Defaults reflect the
/// usual fine-vs-coarse asymmetry: word-level operators in ASIC burn a
/// fraction of their FPGA equivalents [Hartenstein'01], while
/// reconfiguration and shared-memory traffic are expensive.
struct EnergyModel {
  // Fine-grain (embedded FPGA), picojoule per executed operation.
  double fpga_alu_pj = 8.0;
  double fpga_mul_pj = 30.0;
  double fpga_div_pj = 110.0;
  double fpga_mem_pj = 16.0;

  // Coarse-grain (CGC data-path, ASIC).
  double cgc_alu_pj = 1.6;
  double cgc_mul_pj = 6.5;
  double cgc_mem_pj = 12.0;

  // Events.
  double reconfiguration_pj = 600000.0;     ///< one full reconfiguration
  double transfer_pj_per_word = 14.0;       ///< fine<->coarse via memory
  double spill_pj_per_word = 14.0;          ///< temporal-partition spill
};

struct EnergyBreakdown {
  double fine_pj = 0;      ///< ops executed on the FPGA
  double coarse_pj = 0;    ///< ops executed on the CGC data-path
  double reconfig_pj = 0;  ///< temporal-partition reconfigurations
  double comm_pj = 0;      ///< fine<->coarse transfers + partition spills

  double total_pj() const {
    return fine_pj + coarse_pj + reconfig_pj + comm_pj;
  }
};

/// Prices the split where `moved` blocks run on the CGC data-path and the
/// rest on the fine-grain hardware.
EnergyBreakdown estimate_energy(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                const std::vector<ir::BlockId>& moved,
                                const EnergyModel& model = {});

/// Result of the energy-constrained partitioning variant.
struct EnergyPartitionReport {
  double initial_pj = 0;  ///< all-fine energy
  std::vector<ir::BlockId> moved;
  EnergyBreakdown energy;
  bool met = false;
  int engine_iterations = 0;

  double reduction_percent() const {
    return initial_pj == 0.0
               ? 0.0
               : 100.0 * (1.0 - energy.total_pj() / initial_pj);
  }
};

/// The methodology of Figure 2 with the timing check replaced by an
/// energy budget: kernels move (in decreasing total-weight order) to the
/// coarse-grain hardware until total energy drops below `budget_pj`.
/// Moving a word-level kernel to ASIC usually reduces energy, so the same
/// greedy engine applies.
EnergyPartitionReport run_energy_methodology(
    const ir::Cdfg& cdfg, const ir::ProfileData& profile,
    const platform::Platform& platform, double budget_pj,
    const EnergyModel& model = {},
    const analysis::AnalysisOptions& options = {});

}  // namespace amdrel::core
