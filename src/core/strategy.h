#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/methodology.h"

namespace amdrel::core {

/// Everything a partitioning strategy needs to search the split space:
/// the (cdfg, platform) mapper, the profile, the constraint, the run
/// options and the ordered kernel candidates from the analysis step.
/// The cost objective (timing cycles, energy pJ, or a weighted
/// combination) and the energy budget ride in options.cost.objective /
/// options.cost.energy_budget_pj — strategies minimize
/// IncrementalSplit::objective_value() and stop on the objective's met()
/// test, so all three searches serve all three objectives.
struct StrategyContext {
  HybridMapper& mapper;
  const ir::ProfileData& profile;
  std::int64_t timing_constraint = 0;
  const MethodologyOptions& options;
  const std::vector<analysis::KernelInfo>& kernels;  ///< already ordered
};

// AxisCell lives in core/methodology.h (next to MethodologyOptions) so
// run_methodology_axis can take cells without including this header.

/// A whole constraint axis sharing one (mapper, profile, options,
/// kernels) walk: the cells differ only in their stop/acceptance limits.
/// options.cost.energy_budget_pj is ignored — each cell carries its own
/// budget.
struct AxisContext {
  HybridMapper& mapper;
  const ir::ProfileData& profile;
  const MethodologyOptions& options;
  const std::vector<analysis::KernelInfo>& kernels;  ///< already ordered
  const std::vector<AxisCell>& cells;
};

/// What a strategy hands back to the run_methodology dispatcher.
struct StrategyResult {
  std::vector<ir::BlockId> moved;  ///< in movement/priority order
  SplitCost cost;
  int engine_iterations = 0;  ///< splits priced / search nodes visited
  // Annealing acceptance telemetry (zero for the other strategies):
  // uphill proposals seen and how many the Metropolis test accepted.
  // The temperature-normalization regression test pins the accepted /
  // proposed ratio to the same band across objective spaces.
  int uphill_proposed = 0;
  int uphill_accepted = 0;
};

/// The partitioning engine of paper Figure 2 steps 4-5, abstracted: a
/// strategy receives the analyzed kernels and decides which blocks run on
/// the coarse-grain data-path. Implementations must be deterministic for
/// a fixed (context, options.random_seed).
///
/// To add a new strategy: subclass, then register the new kind in
/// StrategyKind (core/methodology.h) and in make_strategy /
/// strategy_name / parse_strategy / all_strategies below.
class PartitionStrategy {
 public:
  virtual ~PartitionStrategy() = default;
  virtual const char* name() const = 0;
  virtual StrategyResult run(const StrategyContext& ctx) = 0;

  /// Prices every cell of a constraint axis, one StrategyResult per
  /// ctx.cells entry, each byte-identical to a standalone run() with
  /// that cell's constraint and budget. Strategies whose walk does not
  /// depend on the constraint (greedy commits and annealing acceptance
  /// consult only objective values; the limits only decide where each
  /// cell stops) override this with a single shared walk that finalizes
  /// cells online — turning the sweep's constraints x budgets factor
  /// into array scans. The default falls back to one run() per cell
  /// (the branch-and-bound search prunes differently per constraint, so
  /// its visit counts are not derivable from a shared walk).
  virtual std::vector<StrategyResult> run_axis(const AxisContext& ctx);
};

/// The paper's engine: commit kernels one by one in the analysis order,
/// re-pricing the split after each movement (now via O(1) incremental
/// deltas), until the timing constraint is met. The walk itself is
/// constraint-independent, so run_axis prices a whole constraint axis
/// from one walk.
class GreedyPaperStrategy final : public PartitionStrategy {
 public:
  const char* name() const override { return "greedy"; }
  StrategyResult run(const StrategyContext& ctx) override;
  std::vector<StrategyResult> run_axis(const AxisContext& ctx) override;
};

/// Branch-and-bound over subsets of the top options.exhaustive_max_kernels
/// eligible kernels. Returns the subset meeting the constraint with the
/// fewest moves (ties: fewest cycles); when no subset meets it, the
/// subset minimizing total cycles. Recursion state lives in SmallBitsets
/// so the frontier fits in registers; run_axis keeps the per-cell
/// default (the pruning — and thus engine_iterations — depends on the
/// constraint).
class ExhaustiveStrategy final : public PartitionStrategy {
 public:
  const char* name() const override { return "exhaustive"; }
  StrategyResult run(const StrategyContext& ctx) override;
};

/// Seeded simulated annealing over all eligible kernels: random membership
/// flips with a geometric cooling schedule, minimizing total cycles. Meant
/// for kernel sets too large for the exhaustive search. Acceptance
/// depends only on objective values, so run_axis replays one walk for
/// every cell of a constraint axis.
class AnnealingStrategy final : public PartitionStrategy {
 public:
  const char* name() const override { return "annealing"; }
  StrategyResult run(const StrategyContext& ctx) override;
  std::vector<StrategyResult> run_axis(const AxisContext& ctx) override;
};

std::unique_ptr<PartitionStrategy> make_strategy(StrategyKind kind);

/// All registered strategy kinds, in presentation order.
const std::vector<StrategyKind>& all_strategies();

const char* strategy_name(StrategyKind kind);

/// Inverse of strategy_name ("greedy", "exhaustive", "annealing");
/// nullopt for unknown names. Shared by the CLI and the benches.
std::optional<StrategyKind> parse_strategy(std::string_view name);

/// All kernel orderings, in presentation order.
const std::vector<KernelOrdering>& all_kernel_orderings();

const char* kernel_ordering_name(KernelOrdering ordering);

/// Inverse of kernel_ordering_name ("weight", "benefit", "code",
/// "random"); nullopt for unknown names.
std::optional<KernelOrdering> parse_kernel_ordering(std::string_view name);

}  // namespace amdrel::core
