#include "core/sweep_cache.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "support/strings.h"

namespace amdrel::core {

using jsonl::JsonParser;
using jsonl::JsonValue;
using jsonl::bits_to_double;
using jsonl::double_to_bits;
using jsonl::get_bool;
using jsonl::get_int;
using jsonl::get_string;

// ---------------------------------------------------------------------------
// Cell payload codec — the canonical field order shared by the cache
// file's "cell" lines and the sweep service's wire "cell" lines. The
// JSON machinery itself lives in core/json_lines.h.
// ---------------------------------------------------------------------------

void write_cell_payload(std::ostream& os, const PartitionReport& r,
                        const std::vector<std::string>& moved_names) {
  os << "\"app\":\"" << json_escape(r.app) << "\","
     << "\"constraint\":" << r.timing_constraint << ","
     << "\"objective\":" << static_cast<int>(r.objective) << ","
     << "\"energy_budget_bits\":" << double_to_bits(r.energy_budget_pj)
     << ","
     << "\"initial_cycles\":" << r.initial_cycles << ","
     << "\"initial_energy_bits\":" << double_to_bits(r.initial_energy_pj)
     << ","
     << "\"initial_meets\":" << (r.initial_meets ? "true" : "false") << ","
     << "\"kernels\":[";
  for (std::size_t i = 0; i < r.kernels.size(); ++i) {
    const analysis::KernelInfo& k = r.kernels[i];
    if (i) os << ',';
    os << '[' << k.block << ',' << k.exec_freq << ',' << k.op_weight << ','
       << k.total_weight << ',' << k.loop_depth << ','
       << (k.cgc_eligible ? 1 : 0) << ']';
  }
  os << "],\"moved\":[";
  for (std::size_t i = 0; i < r.moved.size(); ++i) {
    if (i) os << ',';
    os << r.moved[i];
  }
  os << "],\"moved_names\":[";
  for (std::size_t i = 0; i < moved_names.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(moved_names[i]) << '"';
  }
  os << "],\"t_fpga\":" << r.cost.t_fpga << ","
     << "\"t_coarse\":" << r.cost.t_coarse << ","
     << "\"t_comm\":" << r.cost.t_comm << ","
     << "\"t_reconfig\":" << r.cost.t_reconfig << ","
     << "\"floorplan_bits\":" << double_to_bits(r.floorplan_cost) << ","
     << "\"final_cycles\":" << r.final_cycles << ","
     << "\"cycles_in_cgc\":" << r.cycles_in_cgc << ","
     << "\"energy_bits\":[" << double_to_bits(r.energy.fine_pj) << ","
     << double_to_bits(r.energy.coarse_pj) << ","
     << double_to_bits(r.energy.reconfig_pj) << ","
     << double_to_bits(r.energy.comm_pj) << "],"
     << "\"met\":" << (r.met ? "true" : "false") << ","
     << "\"engine_iterations\":" << r.engine_iterations;
}

bool read_cell_payload(const JsonValue& object, CachedCell& cell) {
  PartitionReport& r = cell.report;
  std::int64_t iterations = 0;
  std::int64_t objective = 0;
  std::int64_t budget_bits = 0;
  std::int64_t initial_energy_bits = 0;
  std::int64_t floorplan_bits = 0;
  if (!get_string(object, "app", r.app) ||
      !get_int(object, "constraint", r.timing_constraint) ||
      !get_int(object, "objective", objective) ||
      !get_int(object, "energy_budget_bits", budget_bits) ||
      !get_int(object, "initial_cycles", r.initial_cycles) ||
      !get_int(object, "initial_energy_bits", initial_energy_bits) ||
      !get_bool(object, "initial_meets", r.initial_meets) ||
      !get_int(object, "t_fpga", r.cost.t_fpga) ||
      !get_int(object, "t_coarse", r.cost.t_coarse) ||
      !get_int(object, "t_comm", r.cost.t_comm) ||
      !get_int(object, "t_reconfig", r.cost.t_reconfig) ||
      !get_int(object, "floorplan_bits", floorplan_bits) ||
      !get_int(object, "final_cycles", r.final_cycles) ||
      !get_int(object, "cycles_in_cgc", r.cycles_in_cgc) ||
      !get_bool(object, "met", r.met) ||
      !get_int(object, "engine_iterations", iterations)) {
    return false;
  }
  r.engine_iterations = static_cast<int>(iterations);
  r.floorplan_cost = bits_to_double(floorplan_bits);
  if (objective < 0 ||
      objective > static_cast<int>(ObjectiveKind::kCombined)) {
    return false;
  }
  r.objective = static_cast<ObjectiveKind>(objective);
  r.energy_budget_pj = bits_to_double(budget_bits);
  r.initial_energy_pj = bits_to_double(initial_energy_bits);

  const JsonValue* energy = object.find("energy_bits");
  if (!energy || energy->kind != JsonValue::Kind::kArray ||
      energy->items.size() != 4) {
    return false;
  }
  for (const JsonValue& field : energy->items) {
    if (field.kind != JsonValue::Kind::kInt) return false;
  }
  r.energy.fine_pj = bits_to_double(energy->items[0].integer);
  r.energy.coarse_pj = bits_to_double(energy->items[1].integer);
  r.energy.reconfig_pj = bits_to_double(energy->items[2].integer);
  r.energy.comm_pj = bits_to_double(energy->items[3].integer);

  const JsonValue* kernels = object.find("kernels");
  if (!kernels || kernels->kind != JsonValue::Kind::kArray) return false;
  for (const JsonValue& row : kernels->items) {
    if (row.kind != JsonValue::Kind::kArray || row.items.size() != 6) {
      return false;
    }
    for (const JsonValue& field : row.items) {
      if (field.kind != JsonValue::Kind::kInt) return false;
    }
    analysis::KernelInfo k;
    k.block = static_cast<ir::BlockId>(row.items[0].integer);
    k.exec_freq = static_cast<std::uint64_t>(row.items[1].integer);
    k.op_weight = row.items[2].integer;
    k.total_weight = row.items[3].integer;
    k.loop_depth = static_cast<int>(row.items[4].integer);
    k.cgc_eligible = row.items[5].integer != 0;
    r.kernels.push_back(k);
  }

  const JsonValue* moved = object.find("moved");
  if (!moved || moved->kind != JsonValue::Kind::kArray) return false;
  for (const JsonValue& id : moved->items) {
    if (id.kind != JsonValue::Kind::kInt) return false;
    r.moved.push_back(static_cast<ir::BlockId>(id.integer));
  }

  const JsonValue* names = object.find("moved_names");
  if (!names || names->kind != JsonValue::Kind::kArray ||
      names->items.size() != r.moved.size()) {
    return false;
  }
  for (const JsonValue& name : names->items) {
    if (name.kind != JsonValue::Kind::kString) return false;
    cell.moved_names.push_back(name.string);
  }
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// Whole-line writers/readers for the cache file. Every line is written
// in canonical field order so identical caches are byte-identical on
// disk.
// ---------------------------------------------------------------------------

void write_cell_line(std::ostream& os, const Fingerprint& key,
                     std::uint64_t gen, const CachedCell& cell) {
  os << "{\"kind\":\"cell\",\"key\":\"" << key.to_hex() << "\",\"gen\":"
     << gen << ",";
  write_cell_payload(os, cell.report, cell.moved_names);
  os << "}\n";
}

void write_all_fine_line(std::ostream& os, const Fingerprint& key,
                         std::uint64_t gen, std::int64_t cycles) {
  os << "{\"kind\":\"all_fine\",\"key\":\"" << key.to_hex() << "\",\"gen\":"
     << gen << ",\"cycles\":" << cycles << "}\n";
}

template <typename T>
void write_int_array(std::ostream& os, const std::vector<T>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  os << ']';
}

// A mapper snapshot serializes the full MapperState: per block the
// fine-grain mapping (temporal partitioning + timing model) and, when
// present, the coarse-grain schedule. Partition areas are doubles and
// travel as IEEE-754 bit patterns like every other double in the file.
void write_mapper_payload(std::ostream& os, const MapperState& state) {
  os << "\"fine\":[";
  for (std::size_t b = 0; b < state.fine.size(); ++b) {
    const finegrain::FpgaBlockMapping& m = state.fine[b];
    if (b) os << ',';
    os << '[';
    write_int_array(os, m.partitioning.partition_of);
    os << ',' << m.partitioning.num_partitions << ",[";
    for (std::size_t i = 0; i < m.partitioning.partition_area.size(); ++i) {
      if (i) os << ',';
      os << double_to_bits(m.partitioning.partition_area[i]);
    }
    os << "]," << m.exec_cycles << ',' << m.boundary_words << ','
       << m.boundary_cycles << ',' << m.reconfigs_per_invocation << ','
       << m.amortized_reconfigs << ']';
  }
  os << "],\"coarse\":[";
  for (std::size_t b = 0; b < state.coarse.size(); ++b) {
    if (b) os << ',';
    if (!state.coarse[b].has_value()) {
      // The strict parser has no null; an empty array marks a block
      // whose coarse schedule was never (lazily) built.
      os << "[]";
      continue;
    }
    const coarsegrain::CgcBlockMapping& m = *state.coarse[b];
    os << '[';
    write_int_array(os, m.schedule.start);
    os << ',';
    write_int_array(os, m.schedule.finish);
    os << ",[";
    for (std::size_t i = 0; i < m.schedule.placement.size(); ++i) {
      const coarsegrain::CgcPlacement& p = m.schedule.placement[i];
      if (i) os << ',';
      os << p.cgc << ',' << p.row << ',' << p.col;
    }
    os << "]," << m.schedule.total_cgc_cycles << ','
       << m.schedule.configurations << ',' << m.schedule.mem_accesses << ','
       << m.schedule.peak_registers << ',' << m.cycles_per_invocation_fpga
       << ']';
  }
  os << ']';
}

void write_mapper_line(std::ostream& os, const Fingerprint& key,
                       std::uint64_t gen, const MapperState& state) {
  os << "{\"kind\":\"mapper\",\"key\":\"" << key.to_hex() << "\",\"gen\":"
     << gen << ",";
  write_mapper_payload(os, state);
  os << "}\n";
}

bool read_int_array(const JsonValue& value, std::vector<std::int64_t>& out) {
  if (value.kind != JsonValue::Kind::kArray) return false;
  out.reserve(value.items.size());
  for (const JsonValue& item : value.items) {
    if (item.kind != JsonValue::Kind::kInt) return false;
    out.push_back(item.integer);
  }
  return true;
}

bool read_mapper_payload(const JsonValue& object, MapperState& state) {
  const JsonValue* fine = object.find("fine");
  const JsonValue* coarse = object.find("coarse");
  if (!fine || fine->kind != JsonValue::Kind::kArray || !coarse ||
      coarse->kind != JsonValue::Kind::kArray ||
      fine->items.size() != coarse->items.size()) {
    return false;
  }

  state.fine.reserve(fine->items.size());
  for (const JsonValue& row : fine->items) {
    // [partition_of, num_partitions, partition_area_bits, exec_cycles,
    //  boundary_words, boundary_cycles, reconfigs_per_invocation,
    //  amortized_reconfigs]
    if (row.kind != JsonValue::Kind::kArray || row.items.size() != 8) {
      return false;
    }
    finegrain::FpgaBlockMapping m;
    std::vector<std::int64_t> partition_of;
    if (!read_int_array(row.items[0], partition_of)) return false;
    m.partitioning.partition_of.reserve(partition_of.size());
    for (const std::int64_t p : partition_of) {
      m.partitioning.partition_of.push_back(static_cast<int>(p));
    }
    if (row.items[1].kind != JsonValue::Kind::kInt ||
        row.items[1].integer < 0) {
      return false;
    }
    m.partitioning.num_partitions = static_cast<int>(row.items[1].integer);
    std::vector<std::int64_t> area_bits;
    if (!read_int_array(row.items[2], area_bits)) return false;
    m.partitioning.partition_area.reserve(area_bits.size());
    for (const std::int64_t bits : area_bits) {
      m.partitioning.partition_area.push_back(bits_to_double(bits));
    }
    for (const int i : {3, 4, 5, 6, 7}) {
      if (row.items[static_cast<std::size_t>(i)].kind !=
          JsonValue::Kind::kInt) {
        return false;
      }
    }
    m.exec_cycles = row.items[3].integer;
    m.boundary_words = row.items[4].integer;
    m.boundary_cycles = row.items[5].integer;
    m.reconfigs_per_invocation = row.items[6].integer;
    m.amortized_reconfigs = row.items[7].integer;
    state.fine.push_back(std::move(m));
  }

  state.coarse.reserve(coarse->items.size());
  for (const JsonValue& row : coarse->items) {
    if (row.kind != JsonValue::Kind::kArray) return false;
    if (row.items.empty()) {
      state.coarse.emplace_back(std::nullopt);
      continue;
    }
    // [start, finish, placement_triples, total_cgc_cycles,
    //  configurations, mem_accesses, peak_registers,
    //  cycles_per_invocation_fpga]
    if (row.items.size() != 8) return false;
    coarsegrain::CgcBlockMapping m;
    if (!read_int_array(row.items[0], m.schedule.start) ||
        !read_int_array(row.items[1], m.schedule.finish) ||
        m.schedule.start.size() != m.schedule.finish.size()) {
      return false;
    }
    std::vector<std::int64_t> triples;
    if (!read_int_array(row.items[2], triples) ||
        triples.size() != 3 * m.schedule.start.size()) {
      return false;
    }
    m.schedule.placement.reserve(m.schedule.start.size());
    for (std::size_t i = 0; i < triples.size(); i += 3) {
      coarsegrain::CgcPlacement p;
      p.cgc = static_cast<int>(triples[i]);
      p.row = static_cast<int>(triples[i + 1]);
      p.col = static_cast<int>(triples[i + 2]);
      m.schedule.placement.push_back(p);
    }
    for (const int i : {3, 4, 5, 6, 7}) {
      if (row.items[static_cast<std::size_t>(i)].kind !=
          JsonValue::Kind::kInt) {
        return false;
      }
    }
    m.schedule.total_cgc_cycles = row.items[3].integer;
    m.schedule.configurations = row.items[4].integer;
    m.schedule.mem_accesses = row.items[5].integer;
    m.schedule.peak_registers = static_cast<int>(row.items[6].integer);
    m.cycles_per_invocation_fpga = row.items[7].integer;
    state.coarse.emplace_back(std::move(m));
  }
  return true;
}

// The optional "gen" stamp on entry lines (and "generation" on the
// header): absent means 0 (oldest), present must be a non-negative
// integer — anything else is a malformed line.
bool read_gen(const JsonValue& object, const char* name, std::uint64_t& out) {
  const JsonValue* v = object.find(name);
  if (!v) {
    out = 0;
    return true;
  }
  if (v->kind != JsonValue::Kind::kInt || v->integer < 0) return false;
  out = static_cast<std::uint64_t>(v->integer);
  return true;
}

/// Everything one cache file holds, with per-entry generation stamps.
struct ParsedFile {
  std::map<Fingerprint, CachedCell> cells;
  std::map<Fingerprint, std::int64_t> all_fine;
  std::map<Fingerprint, MapperState> mappers;
  std::map<Fingerprint, std::uint64_t> cell_gens;
  std::map<Fingerprint, std::uint64_t> all_fine_gens;
  std::map<Fingerprint, std::uint64_t> mapper_gens;
  std::uint64_t generation = 0;  ///< header counter; the next save is +1
};

/// Parses a whole cache file with the strict whole-file rejection
/// contract (shared by load() and the merge-on-save re-read inside
/// save()). `out` may be partially filled on failure; callers discard it.
bool parse_cache_file(const std::string& path, ParsedFile& out,
                      std::string* error) {
  auto reject = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return reject("cannot open " + path);

  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue object;
    if (!JsonParser(line).parse(object) ||
        object.kind != JsonValue::Kind::kObject) {
      return reject(cat(path, ":", line_no, ": not a JSON object"));
    }
    std::string kind;
    if (!get_string(object, "kind", kind)) {
      return reject(cat(path, ":", line_no, ": missing \"kind\""));
    }
    if (!saw_header) {
      std::int64_t schema = 0;
      std::int64_t algorithm = 0;
      if (kind != "header" ||
          !get_int(object, "schema_version", schema) ||
          !get_int(object, "fingerprint_algorithm", algorithm)) {
        return reject(cat(path, ":", line_no, ": missing header line"));
      }
      if (schema != kSweepCacheSchemaVersion) {
        return reject(cat(path, ": schema_version ", schema,
                          " (this build reads ", kSweepCacheSchemaVersion,
                          ")"));
      }
      if (algorithm != kFingerprintAlgorithmVersion) {
        return reject(cat(path, ": fingerprint_algorithm ", algorithm,
                          " (this build uses ", kFingerprintAlgorithmVersion,
                          ")"));
      }
      if (!read_gen(object, "generation", out.generation)) {
        return reject(cat(path, ":", line_no, ": malformed generation"));
      }
      saw_header = true;
      continue;
    }

    std::string key_hex;
    if (!get_string(object, "key", key_hex)) {
      return reject(cat(path, ":", line_no, ": missing \"key\""));
    }
    const std::optional<Fingerprint> key = Fingerprint::from_hex(key_hex);
    if (!key) {
      return reject(cat(path, ":", line_no, ": malformed key"));
    }
    std::uint64_t gen = 0;
    if (!read_gen(object, "gen", gen)) {
      return reject(cat(path, ":", line_no, ": malformed gen"));
    }
    if (kind == "all_fine") {
      std::int64_t cycles = 0;
      if (!get_int(object, "cycles", cycles)) {
        return reject(cat(path, ":", line_no, ": malformed all_fine entry"));
      }
      if (!out.all_fine.emplace(*key, cycles).second) {
        return reject(cat(path, ":", line_no, ": duplicate key"));
      }
      out.all_fine_gens.emplace(*key, gen);
    } else if (kind == "cell") {
      CachedCell cell;
      if (!read_cell_payload(object, cell)) {
        return reject(cat(path, ":", line_no, ": malformed cell entry"));
      }
      if (!out.cells.emplace(*key, std::move(cell)).second) {
        return reject(cat(path, ":", line_no, ": duplicate key"));
      }
      out.cell_gens.emplace(*key, gen);
    } else if (kind == "mapper") {
      MapperState state;
      if (!read_mapper_payload(object, state)) {
        return reject(cat(path, ":", line_no, ": malformed mapper entry"));
      }
      if (!out.mappers.emplace(*key, std::move(state)).second) {
        return reject(cat(path, ":", line_no, ": duplicate key"));
      }
      out.mapper_gens.emplace(*key, gen);
    } else {
      return reject(cat(path, ":", line_no, ": unknown kind \"", kind, "\""));
    }
  }
  if (in.bad()) return reject("read error on " + path);
  if (!saw_header) return reject(path + ": empty cache file (no header)");
  return true;
}

#ifndef NDEBUG
// Content-addressed keys mean a collision must carry an identical
// payload; compare via the canonical serialization so every field
// participates. (Mapper snapshots are exempt: their coarse half
// accumulates lazily, so two correct snapshots can differ.)
bool same_cell_payload(const CachedCell& a, const CachedCell& b) {
  std::ostringstream sa;
  std::ostringstream sb;
  write_cell_payload(sa, a.report, a.moved_names);
  write_cell_payload(sb, b.report, b.moved_names);
  return sa.str() == sb.str();
}
#endif

/// Exclusive advisory lock on a sidecar lock file, held for the
/// load-merge-evict-write cycle in save(). The lock file is created on
/// first use and intentionally never unlinked: deleting it would let a
/// late locker open the old inode while a new one locks a fresh file,
/// i.e. two "exclusive" holders. Failure to lock (exotic filesystem,
/// unwritable directory) degrades to an unlocked save — the unique-temp
/// +rename write is still atomic, we only lose the cross-process union
/// window; the caller surfaces the degrade via held().
class ScopedFileLock {
 public:
  explicit ScopedFileLock(const std::string& path) {
#ifndef _WIN32
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0666);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
#else
    (void)path;
#endif
  }

  ScopedFileLock(const ScopedFileLock&) = delete;
  ScopedFileLock& operator=(const ScopedFileLock&) = delete;

  ~ScopedFileLock() {
#ifndef _WIN32
    if (fd_ >= 0) ::close(fd_);  // releases the flock
#endif
  }

  bool held() const {
#ifndef _WIN32
    return fd_ >= 0;
#else
    // No locking on this platform; report held so single-process saves
    // stay silent (there is no cross-process union window to lose).
    return true;
#endif
  }

 private:
#ifndef _WIN32
  int fd_ = -1;
#endif
};

// One-shot operator-facing warning for the degraded-lock path: losing
// the cross-process union window silently would make fleet-level entry
// loss undiagnosable. Per process, not per cache — the condition is
// environmental (filesystem/permissions), so once is signal, every save
// would be noise.
void warn_lock_degraded(const std::string& path) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true, std::memory_order_relaxed)) return;
  std::fprintf(stderr,
               "warning: cannot lock %s.lock; saving unlocked (entries "
               "written concurrently by another process may be lost)\n",
               path.c_str());
}

// Unique per-process temp name: "<path>.tmp.<pid>.<seq>". The pid keeps
// two DEGRADED-lock writers (who by definition do not exclude each
// other) on distinct temp files, so neither can truncate, promote or
// remove the other's half-written data; the sequence number keeps
// threads of one process distinct without consulting thread ids.
std::string unique_temp_path(const std::string& path) {
  static std::atomic<std::uint64_t> sequence{0};
#ifndef _WIN32
  const long long pid = static_cast<long long>(::getpid());
#else
  const long long pid = 0;
#endif
  return cat(path, ".tmp.", pid, ".",
             sequence.fetch_add(1, std::memory_order_relaxed));
}

// Sweeps "<path>.tmp.*" leftovers from writers that crashed between
// write and rename. ONLY called with the file lock held: under the lock
// no other writer can have a live temp, so everything matching is
// garbage; in degraded mode a matching temp might be another writer's
// in-flight data and must be left alone.
void remove_stale_temps(const std::string& path) {
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".")
      : slash == 0               ? std::string("/")
                                 : path.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp.";
  DIR* d = ::opendir(dir.c_str());
  if (!d) return;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      std::remove((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
#else
  (void)path;
#endif
}

}  // namespace

struct SweepCache::Entries {
  std::map<Fingerprint, CachedCell> cells;
  std::map<Fingerprint, std::int64_t> all_fine;
  std::map<Fingerprint, std::shared_ptr<const MapperState>> mappers;
  std::map<Fingerprint, std::uint64_t> cell_gens;
  std::map<Fingerprint, std::uint64_t> all_fine_gens;
  std::map<Fingerprint, std::uint64_t> mapper_gens;
};

SweepCache::SweepCache(int shard_count)
    : shards_(static_cast<std::size_t>(
          shard_count < 1 ? 1 : (shard_count > 4096 ? 4096 : shard_count))) {}

SweepCache::Shard& SweepCache::shard_for(const Fingerprint& key) {
  return shards_[static_cast<std::size_t>(key.lo) % shards_.size()];
}

const SweepCache::Shard& SweepCache::shard_for(const Fingerprint& key) const {
  return shards_[static_cast<std::size_t>(key.lo) % shards_.size()];
}

std::optional<CachedCell> SweepCache::find_cell(const Fingerprint& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.cells.find(key);
  if (it == shard.cells.end()) {
    ++shard.stats.cell_misses;
    return std::nullopt;
  }
  ++shard.stats.cell_hits;
  shard.cell_gens.erase(key);  // touched: stamped fresh on the next save
  return it->second;
}

void SweepCache::store_cell(const Fingerprint& key, CachedCell cell) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.cells.insert_or_assign(key, std::move(cell));
  shard.cell_gens.erase(key);
}

std::optional<std::int64_t> SweepCache::find_all_fine(const Fingerprint& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.all_fine.find(key);
  if (it == shard.all_fine.end()) {
    ++shard.stats.all_fine_misses;
    return std::nullopt;
  }
  ++shard.stats.all_fine_hits;
  shard.all_fine_gens.erase(key);
  return it->second;
}

void SweepCache::store_all_fine(const Fingerprint& key, std::int64_t cycles) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.all_fine.insert_or_assign(key, cycles);
  shard.all_fine_gens.erase(key);
}

std::shared_ptr<const MapperState> SweepCache::find_mapper(
    const Fingerprint& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.mappers.find(key);
  if (it == shard.mappers.end()) {
    ++shard.stats.mapper_builds;
    return nullptr;
  }
  ++shard.stats.mapper_restores;
  shard.mapper_gens.erase(key);
  return it->second;
}

void SweepCache::store_mapper(const Fingerprint& key,
                              std::shared_ptr<const MapperState> state) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.mappers.insert_or_assign(key, std::move(state));
  shard.mapper_gens.erase(key);
}

SweepCacheStats SweepCache::stats() const {
  SweepCacheStats total;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total.cell_hits += shard.stats.cell_hits;
    total.cell_misses += shard.stats.cell_misses;
    total.mapper_restores += shard.stats.mapper_restores;
    total.mapper_builds += shard.stats.mapper_builds;
    total.all_fine_hits += shard.stats.all_fine_hits;
    total.all_fine_misses += shard.stats.all_fine_misses;
    total.cells += shard.cells.size();
  }
  total.entries_loaded = entries_loaded_.load(std::memory_order_relaxed);
  total.lock_degraded = lock_degraded_.load(std::memory_order_relaxed);
  total.entries_evicted = entries_evicted_.load(std::memory_order_relaxed);
  return total;
}

void SweepCache::reset_stats() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats = SweepCacheStats{};
  }
  entries_loaded_.store(0, std::memory_order_relaxed);
  lock_degraded_.store(0, std::memory_order_relaxed);
  entries_evicted_.store(0, std::memory_order_relaxed);
}

void SweepCache::snapshot(Entries& out) const {
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, cell] : shard.cells) out.cells.emplace(key, cell);
    for (const auto& [key, cycles] : shard.all_fine) {
      out.all_fine.emplace(key, cycles);
    }
    for (const auto& [key, state] : shard.mappers) {
      out.mappers.emplace(key, state);
    }
    for (const auto& [key, gen] : shard.cell_gens) {
      out.cell_gens.emplace(key, gen);
    }
    for (const auto& [key, gen] : shard.all_fine_gens) {
      out.all_fine_gens.emplace(key, gen);
    }
    for (const auto& [key, gen] : shard.mapper_gens) {
      out.mapper_gens.emplace(key, gen);
    }
  }
}

void SweepCache::merge_from(const SweepCache& other) {
  if (&other == this) return;

  // Snapshot the source shard-by-shard first, so the two caches' locks
  // are never held together (no lock-order cycle if callers merge in
  // both directions).
  std::map<Fingerprint, CachedCell> cells;
  std::map<Fingerprint, std::int64_t> all_fine;
  std::map<Fingerprint, std::shared_ptr<const MapperState>> mappers;
  for (const Shard& shard : other.shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, cell] : shard.cells) cells.emplace(key, cell);
    for (const auto& [key, cycles] : shard.all_fine) {
      all_fine.emplace(key, cycles);
    }
    for (const auto& [key, state] : shard.mappers) {
      mappers.emplace(key, state);
    }
  }

  // Merging counts as touching: the merged key is wanted by this cache,
  // so the next save stamps it with the fresh generation.
  for (auto& [key, cell] : cells) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.cells.try_emplace(key, std::move(cell));
    assert(inserted || same_cell_payload(it->second, cell));
    (void)it;
    (void)inserted;
    shard.cell_gens.erase(key);
  }
  for (const auto& [key, cycles] : all_fine) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.all_fine.emplace(key, cycles);
    assert(inserted || it->second == cycles);
    (void)it;
    (void)inserted;
    shard.all_fine_gens.erase(key);
  }
  for (auto& [key, state] : mappers) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.mappers.try_emplace(key, std::move(state));
    shard.mapper_gens.erase(key);
  }
}

bool SweepCache::load(const std::string& path, std::string* error) {
  ParsedFile file;
  if (!parse_cache_file(path, file, error)) return false;

  const std::uint64_t loaded =
      file.cells.size() + file.all_fine.size() + file.mappers.size();
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cells.clear();
    shard.all_fine.clear();
    shard.mappers.clear();
    shard.cell_gens.clear();
    shard.all_fine_gens.clear();
    shard.mapper_gens.clear();
  }
  for (auto& [key, cell] : file.cells) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cells.emplace(key, std::move(cell));
    shard.cell_gens.emplace(key, file.cell_gens[key]);
  }
  for (const auto& [key, cycles] : file.all_fine) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.all_fine.emplace(key, cycles);
    shard.all_fine_gens.emplace(key, file.all_fine_gens[key]);
  }
  for (auto& [key, state] : file.mappers) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.mappers.emplace(key,
                          std::make_shared<MapperState>(std::move(state)));
    shard.mapper_gens.emplace(key, file.mapper_gens[key]);
  }
  entries_loaded_.store(loaded, std::memory_order_relaxed);
  return true;
}

bool SweepCache::save(const std::string& path, std::string* error) const {
  // Serialize the whole load-merge-evict-write cycle against other
  // processes saving to the same path. The lock lives in a sidecar so it
  // survives the rename below (locking `path` itself would lock an
  // inode the rename is about to orphan).
  const ScopedFileLock file_lock(path + ".lock");
  if (!file_lock.held()) {
    lock_degraded_.fetch_add(1, std::memory_order_relaxed);
    warn_lock_degraded(path);
  }

  Entries mem;
  snapshot(mem);

  // Merge-on-save: union whatever another writer persisted since we
  // loaded (or a pre-existing file we never loaded). Our in-memory
  // entry wins a collision — both sides computed it from the same
  // fingerprinted inputs, so the payloads match (asserted in debug for
  // cells). A corrupt or version-mismatched file fails the strict parse
  // and is simply overwritten; that is the PR-4 rejection backstop.
  ParsedFile disk;
  {
    ParsedFile parsed;
    std::string ignored;
    if (parse_cache_file(path, parsed, &ignored)) disk = std::move(parsed);
  }
  const std::uint64_t new_gen = disk.generation + 1;

  // Generation of one surviving entry: touched-in-memory entries get the
  // fresh generation; loaded-but-untouched entries keep aging, unless a
  // concurrent writer's save stamped the disk copy younger.
  auto resolve_gen = [&](const std::map<Fingerprint, std::uint64_t>& untouched,
                         const std::map<Fingerprint, std::uint64_t>& on_disk,
                         const Fingerprint& key) {
    const auto it = untouched.find(key);
    std::uint64_t gen = it == untouched.end() ? new_gen : it->second;
    const auto dit = on_disk.find(key);
    if (dit != on_disk.end() && dit->second > gen) gen = dit->second;
    return gen;
  };

  // Render every candidate line up front so the eviction policy can work
  // in serialized bytes — the unit the size cap is expressed in.
  // kind: 0 = all_fine, 1 = cell, 2 = mapper (the file order).
  struct Line {
    std::uint64_t gen;
    int kind;
    Fingerprint key;
    std::string text;
  };
  std::vector<Line> lines;
  lines.reserve(mem.cells.size() + disk.cells.size() + mem.all_fine.size() +
                disk.all_fine.size() + mem.mappers.size() +
                disk.mappers.size());

  for (const auto& [key, cycles] : mem.all_fine) {
    const std::uint64_t gen =
        resolve_gen(mem.all_fine_gens, disk.all_fine_gens, key);
    std::ostringstream os;
    write_all_fine_line(os, key, gen, cycles);
    lines.push_back(Line{gen, 0, key, os.str()});
  }
  for (const auto& [key, cycles] : disk.all_fine) {
    if (mem.all_fine.count(key)) {
      assert(mem.all_fine.at(key) == cycles);
      continue;
    }
    const std::uint64_t gen = disk.all_fine_gens.at(key);
    std::ostringstream os;
    write_all_fine_line(os, key, gen, cycles);
    lines.push_back(Line{gen, 0, key, os.str()});
  }
  for (const auto& [key, cell] : mem.cells) {
    const std::uint64_t gen = resolve_gen(mem.cell_gens, disk.cell_gens, key);
    std::ostringstream os;
    write_cell_line(os, key, gen, cell);
    lines.push_back(Line{gen, 1, key, os.str()});
  }
  for (const auto& [key, cell] : disk.cells) {
    if (mem.cells.count(key)) {
      assert(same_cell_payload(mem.cells.at(key), cell));
      continue;
    }
    const std::uint64_t gen = disk.cell_gens.at(key);
    std::ostringstream os;
    write_cell_line(os, key, gen, cell);
    lines.push_back(Line{gen, 1, key, os.str()});
  }
  for (const auto& [key, state] : mem.mappers) {
    const std::uint64_t gen =
        resolve_gen(mem.mapper_gens, disk.mapper_gens, key);
    std::ostringstream os;
    write_mapper_line(os, key, gen, *state);
    lines.push_back(Line{gen, 2, key, os.str()});
  }
  for (const auto& [key, state] : disk.mappers) {
    if (mem.mappers.count(key)) continue;  // snapshots may differ; ours wins
    const std::uint64_t gen = disk.mapper_gens.at(key);
    std::ostringstream os;
    write_mapper_line(os, key, gen, state);
    lines.push_back(Line{gen, 2, key, os.str()});
  }

  const std::string header =
      cat("{\"kind\":\"header\",\"schema_version\":", kSweepCacheSchemaVersion,
          ",\"fingerprint_algorithm\":", kFingerprintAlgorithmVersion,
          ",\"generation\":", new_gen, ",\"generator\":\"amdrel\"}\n");

  // Eviction, inside the same critical section and strictly AFTER the
  // union: drop lines until the file fits the cap, oldest generation
  // first; at equal age mapper snapshots (bulky, rebuildable) go before
  // all-fine entries before cells, then by key — deterministic, so
  // identical caches still serialize byte-identically.
  const std::uint64_t cap = save_size_cap_.load(std::memory_order_relaxed);
  if (cap > 0) {
    std::uint64_t total = header.size();
    for (const Line& line : lines) total += line.text.size();
    if (total > cap) {
      std::vector<std::size_t> order(lines.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      auto evict_rank = [](int kind) { return kind == 2 ? 0 : kind == 0 ? 1 : 2; };
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const Line& la = lines[a];
                  const Line& lb = lines[b];
                  if (la.gen != lb.gen) return la.gen < lb.gen;
                  if (la.kind != lb.kind) {
                    return evict_rank(la.kind) < evict_rank(lb.kind);
                  }
                  return la.key < lb.key;
                });
      std::vector<char> keep(lines.size(), 1);
      std::uint64_t dropped = 0;
      for (const std::size_t index : order) {
        if (total <= cap) break;
        keep[index] = 0;
        total -= lines[index].text.size();
        ++dropped;
      }
      std::vector<Line> kept;
      kept.reserve(lines.size() - static_cast<std::size_t>(dropped));
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (keep[i]) kept.push_back(std::move(lines[i]));
      }
      lines = std::move(kept);
      entries_evicted_.fetch_add(dropped, std::memory_order_relaxed);
    }
  }

  // Canonical file order: header, then all_fine/cell/mapper groups each
  // sorted by key.
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.key < b.key;
  });
  std::string content = header;
  for (const Line& line : lines) content += line.text;

  // With the lock held no other writer can have an in-flight temp, so
  // any "<path>.tmp.*" leftover is from a crashed writer and is swept.
  // In degraded mode a matching temp may be live — leave it alone.
  if (file_lock.held()) remove_stale_temps(path);

  // Write-to-temp + rename keeps the save atomic: a failed or
  // interrupted write can never destroy the previously valid cache, and
  // a concurrent reader sees either the old file or the new one, never
  // a truncated half. The temp name is unique per (process, sequence),
  // so even two DEGRADED-lock writers cannot stomp each other's temp —
  // the last rename wins wholesale, losing the other's entries but
  // never mixing bytes.
  const std::string temp = unique_temp_path(path);
  {
    std::ofstream out(temp, std::ios::binary);
    out << content;
    out.flush();
    if (!out.good()) {
      if (error) *error = "cannot write " + temp;
      std::remove(temp.c_str());
      return false;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    if (error) *error = "cannot rename " + temp + " to " + path;
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace amdrel::core
