#include "core/sweep_cache.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "support/strings.h"

namespace amdrel::core {

namespace {

// ---------------------------------------------------------------------------
// Serialization helpers. The cache file is JSON lines: one header object
// then one object per entry, every line written in canonical field order
// so identical caches are byte-identical on disk.
// ---------------------------------------------------------------------------

// Minimal strict JSON value: everything the cache schema uses (integers,
// booleans, strings, arrays, objects). No floats — the schema has none,
// and rejecting them keeps round-trips exact.
struct JsonValue {
  enum class Kind { kBool, kInt, kString, kArray, kObject };
  Kind kind = Kind::kInt;
  bool boolean = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& name) const {
    for (const auto& [key, value] : fields) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

/// Recursive-descent parser for one cache line. Strict: unknown escape
/// sequences, floats, trailing garbage and depth past the schema's needs
/// all fail, which is what makes "corrupt file -> warn and recompute"
/// a reliable contract.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out) {
    skip_space();
    if (!parse_value(out, /*depth=*/0)) return false;
    skip_space();
    return p_ == end_;
  }

 private:
  static constexpr int kMaxDepth = 8;

  void skip_space() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t')) ++p_;
  }

  bool literal(const char* text) {
    const char* q = p_;
    for (; *text; ++text, ++q) {
      if (q == end_ || *q != *text) return false;
    }
    p_ = q;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || p_ == end_) return false;
    switch (*p_) {
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_int(out);
    }
  }

  bool parse_string(std::string& out) {
    ++p_;  // opening quote
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) return false;
      switch (*p_++) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_) return false;
            const char d = *p_++;
            value <<= 4;
            if (d >= '0' && d <= '9') {
              value |= static_cast<unsigned>(d - '0');
            } else if (d >= 'a' && d <= 'f') {
              value |= static_cast<unsigned>(d - 'a' + 10);
            } else {
              return false;
            }
          }
          if (value > 0x7f) return false;  // writer only escapes control chars
          out += static_cast<char>(value);
          break;
        }
        default:
          return false;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool parse_int(JsonValue& out) {
    out.kind = JsonValue::Kind::kInt;
    const bool negative = p_ != end_ && *p_ == '-';
    if (negative) ++p_;
    if (p_ == end_ || *p_ < '0' || *p_ > '9') return false;
    std::uint64_t magnitude = 0;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(*p_++ - '0');
      if (magnitude > (0x7fffffffffffffffULL - digit) / 10) return false;
      magnitude = magnitude * 10 + digit;
    }
    out.integer = negative ? -static_cast<std::int64_t>(magnitude)
                           : static_cast<std::int64_t>(magnitude);
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++p_;  // '['
    skip_space();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_space();
      if (p_ == end_) return false;
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      if (*p_++ != ',') return false;
      skip_space();
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++p_;  // '{'
    skip_space();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      if (p_ == end_ || *p_ != '"') return false;
      std::string key;
      if (!parse_string(key)) return false;
      skip_space();
      if (p_ == end_ || *p_++ != ':') return false;
      skip_space();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_space();
      if (p_ == end_) return false;
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      if (*p_++ != ',') return false;
      skip_space();
    }
  }

  const char* p_;
  const char* end_;
};

// Typed field accessors: each returns false when the field is missing or
// of the wrong kind, so every malformed line is caught, never coerced.
bool get_int(const JsonValue& object, const char* name, std::int64_t& out) {
  const JsonValue* v = object.find(name);
  if (!v || v->kind != JsonValue::Kind::kInt) return false;
  out = v->integer;
  return true;
}

bool get_bool(const JsonValue& object, const char* name, bool& out) {
  const JsonValue* v = object.find(name);
  if (!v || v->kind != JsonValue::Kind::kBool) return false;
  out = v->boolean;
  return true;
}

bool get_string(const JsonValue& object, const char* name, std::string& out) {
  const JsonValue* v = object.find(name);
  if (!v || v->kind != JsonValue::Kind::kString) return false;
  out = v->string;
  return true;
}

// Energy doubles round-trip through their IEEE-754 bit pattern (as a
// signed 64-bit integer) so the strict integer-only parser needs no
// float grammar and a hit returns exactly the bits a cold run computed.
std::int64_t double_to_bits(double value) {
  std::int64_t bits = 0;
  static_assert(sizeof bits == sizeof value, "IEEE-754 double expected");
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

double bits_to_double(std::int64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

void write_cell_line(std::ostringstream& os, const Fingerprint& key,
                     const CachedCell& cell) {
  const PartitionReport& r = cell.report;
  os << "{\"kind\":\"cell\",\"key\":\"" << key.to_hex() << "\","
     << "\"app\":\"" << json_escape(r.app) << "\","
     << "\"constraint\":" << r.timing_constraint << ","
     << "\"objective\":" << static_cast<int>(r.objective) << ","
     << "\"energy_budget_bits\":" << double_to_bits(r.energy_budget_pj)
     << ","
     << "\"initial_cycles\":" << r.initial_cycles << ","
     << "\"initial_energy_bits\":" << double_to_bits(r.initial_energy_pj)
     << ","
     << "\"initial_meets\":" << (r.initial_meets ? "true" : "false") << ","
     << "\"kernels\":[";
  for (std::size_t i = 0; i < r.kernels.size(); ++i) {
    const analysis::KernelInfo& k = r.kernels[i];
    if (i) os << ',';
    os << '[' << k.block << ',' << k.exec_freq << ',' << k.op_weight << ','
       << k.total_weight << ',' << k.loop_depth << ','
       << (k.cgc_eligible ? 1 : 0) << ']';
  }
  os << "],\"moved\":[";
  for (std::size_t i = 0; i < r.moved.size(); ++i) {
    if (i) os << ',';
    os << r.moved[i];
  }
  os << "],\"moved_names\":[";
  for (std::size_t i = 0; i < cell.moved_names.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(cell.moved_names[i]) << '"';
  }
  os << "],\"t_fpga\":" << r.cost.t_fpga << ","
     << "\"t_coarse\":" << r.cost.t_coarse << ","
     << "\"t_comm\":" << r.cost.t_comm << ","
     << "\"final_cycles\":" << r.final_cycles << ","
     << "\"cycles_in_cgc\":" << r.cycles_in_cgc << ","
     << "\"energy_bits\":[" << double_to_bits(r.energy.fine_pj) << ","
     << double_to_bits(r.energy.coarse_pj) << ","
     << double_to_bits(r.energy.reconfig_pj) << ","
     << double_to_bits(r.energy.comm_pj) << "],"
     << "\"met\":" << (r.met ? "true" : "false") << ","
     << "\"engine_iterations\":" << r.engine_iterations << "}\n";
}

bool read_cell_line(const JsonValue& object, CachedCell& cell) {
  PartitionReport& r = cell.report;
  std::int64_t iterations = 0;
  std::int64_t objective = 0;
  std::int64_t budget_bits = 0;
  std::int64_t initial_energy_bits = 0;
  if (!get_string(object, "app", r.app) ||
      !get_int(object, "constraint", r.timing_constraint) ||
      !get_int(object, "objective", objective) ||
      !get_int(object, "energy_budget_bits", budget_bits) ||
      !get_int(object, "initial_cycles", r.initial_cycles) ||
      !get_int(object, "initial_energy_bits", initial_energy_bits) ||
      !get_bool(object, "initial_meets", r.initial_meets) ||
      !get_int(object, "t_fpga", r.cost.t_fpga) ||
      !get_int(object, "t_coarse", r.cost.t_coarse) ||
      !get_int(object, "t_comm", r.cost.t_comm) ||
      !get_int(object, "final_cycles", r.final_cycles) ||
      !get_int(object, "cycles_in_cgc", r.cycles_in_cgc) ||
      !get_bool(object, "met", r.met) ||
      !get_int(object, "engine_iterations", iterations)) {
    return false;
  }
  r.engine_iterations = static_cast<int>(iterations);
  if (objective < 0 ||
      objective > static_cast<int>(ObjectiveKind::kCombined)) {
    return false;
  }
  r.objective = static_cast<ObjectiveKind>(objective);
  r.energy_budget_pj = bits_to_double(budget_bits);
  r.initial_energy_pj = bits_to_double(initial_energy_bits);

  const JsonValue* energy = object.find("energy_bits");
  if (!energy || energy->kind != JsonValue::Kind::kArray ||
      energy->items.size() != 4) {
    return false;
  }
  for (const JsonValue& field : energy->items) {
    if (field.kind != JsonValue::Kind::kInt) return false;
  }
  r.energy.fine_pj = bits_to_double(energy->items[0].integer);
  r.energy.coarse_pj = bits_to_double(energy->items[1].integer);
  r.energy.reconfig_pj = bits_to_double(energy->items[2].integer);
  r.energy.comm_pj = bits_to_double(energy->items[3].integer);

  const JsonValue* kernels = object.find("kernels");
  if (!kernels || kernels->kind != JsonValue::Kind::kArray) return false;
  for (const JsonValue& row : kernels->items) {
    if (row.kind != JsonValue::Kind::kArray || row.items.size() != 6) {
      return false;
    }
    for (const JsonValue& field : row.items) {
      if (field.kind != JsonValue::Kind::kInt) return false;
    }
    analysis::KernelInfo k;
    k.block = static_cast<ir::BlockId>(row.items[0].integer);
    k.exec_freq = static_cast<std::uint64_t>(row.items[1].integer);
    k.op_weight = row.items[2].integer;
    k.total_weight = row.items[3].integer;
    k.loop_depth = static_cast<int>(row.items[4].integer);
    k.cgc_eligible = row.items[5].integer != 0;
    r.kernels.push_back(k);
  }

  const JsonValue* moved = object.find("moved");
  if (!moved || moved->kind != JsonValue::Kind::kArray) return false;
  for (const JsonValue& id : moved->items) {
    if (id.kind != JsonValue::Kind::kInt) return false;
    r.moved.push_back(static_cast<ir::BlockId>(id.integer));
  }

  const JsonValue* names = object.find("moved_names");
  if (!names || names->kind != JsonValue::Kind::kArray ||
      names->items.size() != r.moved.size()) {
    return false;
  }
  for (const JsonValue& name : names->items) {
    if (name.kind != JsonValue::Kind::kString) return false;
    cell.moved_names.push_back(name.string);
  }
  return true;
}

/// Parses a whole cache file into the given maps with the strict
/// whole-file rejection contract (shared by load() and the merge-on-save
/// re-read inside save()). The maps are only filled on success.
bool parse_cache_file(const std::string& path,
                      std::map<Fingerprint, CachedCell>& cells,
                      std::map<Fingerprint, std::int64_t>& all_fine,
                      std::string* error) {
  auto reject = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return reject("cannot open " + path);

  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue object;
    if (!JsonParser(line).parse(object) ||
        object.kind != JsonValue::Kind::kObject) {
      return reject(cat(path, ":", line_no, ": not a JSON object"));
    }
    std::string kind;
    if (!get_string(object, "kind", kind)) {
      return reject(cat(path, ":", line_no, ": missing \"kind\""));
    }
    if (!saw_header) {
      std::int64_t schema = 0;
      std::int64_t algorithm = 0;
      if (kind != "header" ||
          !get_int(object, "schema_version", schema) ||
          !get_int(object, "fingerprint_algorithm", algorithm)) {
        return reject(cat(path, ":", line_no, ": missing header line"));
      }
      if (schema != kSweepCacheSchemaVersion) {
        return reject(cat(path, ": schema_version ", schema,
                          " (this build reads ", kSweepCacheSchemaVersion,
                          ")"));
      }
      if (algorithm != kFingerprintAlgorithmVersion) {
        return reject(cat(path, ": fingerprint_algorithm ", algorithm,
                          " (this build uses ", kFingerprintAlgorithmVersion,
                          ")"));
      }
      saw_header = true;
      continue;
    }

    std::string key_hex;
    if (!get_string(object, "key", key_hex)) {
      return reject(cat(path, ":", line_no, ": missing \"key\""));
    }
    const std::optional<Fingerprint> key = Fingerprint::from_hex(key_hex);
    if (!key) {
      return reject(cat(path, ":", line_no, ": malformed key"));
    }
    if (kind == "all_fine") {
      std::int64_t cycles = 0;
      if (!get_int(object, "cycles", cycles)) {
        return reject(cat(path, ":", line_no, ": malformed all_fine entry"));
      }
      if (!all_fine.emplace(*key, cycles).second) {
        return reject(cat(path, ":", line_no, ": duplicate key"));
      }
    } else if (kind == "cell") {
      CachedCell cell;
      if (!read_cell_line(object, cell)) {
        return reject(cat(path, ":", line_no, ": malformed cell entry"));
      }
      if (!cells.emplace(*key, std::move(cell)).second) {
        return reject(cat(path, ":", line_no, ": duplicate key"));
      }
    } else {
      return reject(cat(path, ":", line_no, ": unknown kind \"", kind, "\""));
    }
  }
  if (in.bad()) return reject("read error on " + path);
  if (!saw_header) return reject(path + ": empty cache file (no header)");
  return true;
}

void serialize_cache(std::ostringstream& os,
                     const std::map<Fingerprint, CachedCell>& cells,
                     const std::map<Fingerprint, std::int64_t>& all_fine) {
  os << "{\"kind\":\"header\",\"schema_version\":" << kSweepCacheSchemaVersion
     << ",\"fingerprint_algorithm\":" << kFingerprintAlgorithmVersion
     << ",\"generator\":\"amdrel\"}\n";
  for (const auto& [key, cycles] : all_fine) {
    os << "{\"kind\":\"all_fine\",\"key\":\"" << key.to_hex()
       << "\",\"cycles\":" << cycles << "}\n";
  }
  for (const auto& [key, cell] : cells) {
    write_cell_line(os, key, cell);
  }
}

#ifndef NDEBUG
// Content-addressed keys mean a collision must carry an identical
// payload; compare via the canonical serialization so every field
// participates.
bool same_cell_payload(const Fingerprint& key, const CachedCell& a,
                       const CachedCell& b) {
  std::ostringstream sa;
  std::ostringstream sb;
  write_cell_line(sa, key, a);
  write_cell_line(sb, key, b);
  return sa.str() == sb.str();
}
#endif

// Unions src into dst; dst (the existing entry) wins on collision, and
// debug builds assert the colliding payloads are bit-identical — a
// mismatch means two different computations hashed to one fingerprint,
// i.e. a fingerprinting bug, not a merge-policy question.
void union_cells(std::map<Fingerprint, CachedCell>& dst,
                 std::map<Fingerprint, CachedCell>&& src) {
  for (auto& [key, cell] : src) {
    // try_emplace, not emplace: it must not move from `cell` when the
    // key already exists, or the assert below would compare a husk.
    const auto [it, inserted] = dst.try_emplace(key, std::move(cell));
    assert(inserted || same_cell_payload(key, it->second, cell));
    (void)it;
    (void)inserted;
  }
}

void union_all_fine(std::map<Fingerprint, std::int64_t>& dst,
                    const std::map<Fingerprint, std::int64_t>& src) {
  for (const auto& [key, cycles] : src) {
    const auto [it, inserted] = dst.emplace(key, cycles);
    assert(inserted || it->second == cycles);
    (void)it;
    (void)inserted;
  }
}

/// Exclusive advisory lock on a sidecar lock file, held for the
/// load-merge-write cycle in save(). The lock file is created on first
/// use and intentionally never unlinked: deleting it would let a late
/// locker open the old inode while a new one locks a fresh file, i.e.
/// two "exclusive" holders. Failure to lock (exotic filesystem,
/// unwritable directory) degrades to an unlocked save — the temp+rename
/// write is still atomic, we only lose the cross-process union window,
/// and the real failure surfaces as the write error the caller reports.
class ScopedFileLock {
 public:
  explicit ScopedFileLock(const std::string& path) {
#ifndef _WIN32
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0666);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
#else
    (void)path;
#endif
  }

  ScopedFileLock(const ScopedFileLock&) = delete;
  ScopedFileLock& operator=(const ScopedFileLock&) = delete;

  ~ScopedFileLock() {
#ifndef _WIN32
    if (fd_ >= 0) ::close(fd_);  // releases the flock
#endif
  }

 private:
#ifndef _WIN32
  int fd_ = -1;
#endif
};

}  // namespace

SweepCache::SweepCache(int shard_count)
    : shards_(static_cast<std::size_t>(
          shard_count < 1 ? 1 : (shard_count > 4096 ? 4096 : shard_count))) {}

SweepCache::Shard& SweepCache::shard_for(const Fingerprint& key) {
  return shards_[static_cast<std::size_t>(key.lo) % shards_.size()];
}

const SweepCache::Shard& SweepCache::shard_for(const Fingerprint& key) const {
  return shards_[static_cast<std::size_t>(key.lo) % shards_.size()];
}

std::optional<CachedCell> SweepCache::find_cell(const Fingerprint& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.cells.find(key);
  if (it == shard.cells.end()) {
    ++shard.stats.cell_misses;
    return std::nullopt;
  }
  ++shard.stats.cell_hits;
  return it->second;
}

void SweepCache::store_cell(const Fingerprint& key, CachedCell cell) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.cells.insert_or_assign(key, std::move(cell));
}

std::optional<std::int64_t> SweepCache::find_all_fine(const Fingerprint& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.all_fine.find(key);
  if (it == shard.all_fine.end()) {
    ++shard.stats.all_fine_misses;
    return std::nullopt;
  }
  ++shard.stats.all_fine_hits;
  return it->second;
}

void SweepCache::store_all_fine(const Fingerprint& key, std::int64_t cycles) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.all_fine.insert_or_assign(key, cycles);
}

std::shared_ptr<const MapperState> SweepCache::find_mapper(
    const Fingerprint& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.mappers.find(key);
  if (it == shard.mappers.end()) {
    ++shard.stats.mapper_builds;
    return nullptr;
  }
  ++shard.stats.mapper_restores;
  return it->second;
}

void SweepCache::store_mapper(const Fingerprint& key,
                              std::shared_ptr<const MapperState> state) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.mappers.insert_or_assign(key, std::move(state));
}

SweepCacheStats SweepCache::stats() const {
  SweepCacheStats total;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total.cell_hits += shard.stats.cell_hits;
    total.cell_misses += shard.stats.cell_misses;
    total.mapper_restores += shard.stats.mapper_restores;
    total.mapper_builds += shard.stats.mapper_builds;
    total.all_fine_hits += shard.stats.all_fine_hits;
    total.all_fine_misses += shard.stats.all_fine_misses;
    total.cells += shard.cells.size();
  }
  total.entries_loaded = entries_loaded_.load(std::memory_order_relaxed);
  return total;
}

void SweepCache::reset_stats() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats = SweepCacheStats{};
  }
  entries_loaded_.store(0, std::memory_order_relaxed);
}

void SweepCache::snapshot(std::map<Fingerprint, CachedCell>& cells,
                          std::map<Fingerprint, std::int64_t>& all_fine) const {
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, cell] : shard.cells) cells.emplace(key, cell);
    for (const auto& [key, cycles] : shard.all_fine) {
      all_fine.emplace(key, cycles);
    }
  }
}

void SweepCache::merge_from(const SweepCache& other) {
  if (&other == this) return;

  // Snapshot the source shard-by-shard first, so the two caches' locks
  // are never held together (no lock-order cycle if callers merge in
  // both directions).
  std::map<Fingerprint, CachedCell> cells;
  std::map<Fingerprint, std::int64_t> all_fine;
  std::map<Fingerprint, std::shared_ptr<const MapperState>> mappers;
  for (const Shard& shard : other.shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, cell] : shard.cells) cells.emplace(key, cell);
    for (const auto& [key, cycles] : shard.all_fine) {
      all_fine.emplace(key, cycles);
    }
    for (const auto& [key, state] : shard.mappers) {
      mappers.emplace(key, state);
    }
  }

  for (auto& [key, cell] : cells) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.cells.try_emplace(key, std::move(cell));
    assert(inserted || same_cell_payload(key, it->second, cell));
    (void)it;
    (void)inserted;
  }
  for (const auto& [key, cycles] : all_fine) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.all_fine.emplace(key, cycles);
    assert(inserted || it->second == cycles);
    (void)it;
    (void)inserted;
  }
  for (auto& [key, state] : mappers) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.mappers.try_emplace(key, std::move(state));
  }
}

bool SweepCache::load(const std::string& path, std::string* error) {
  std::map<Fingerprint, CachedCell> cells;
  std::map<Fingerprint, std::int64_t> all_fine;
  if (!parse_cache_file(path, cells, all_fine, error)) return false;

  const std::uint64_t loaded = cells.size() + all_fine.size();
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cells.clear();
    shard.all_fine.clear();
  }
  for (auto& [key, cell] : cells) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cells.emplace(key, std::move(cell));
  }
  for (const auto& [key, cycles] : all_fine) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.all_fine.emplace(key, cycles);
  }
  entries_loaded_.store(loaded, std::memory_order_relaxed);
  return true;
}

bool SweepCache::save(const std::string& path, std::string* error) const {
  // Serialize the whole load-merge-write cycle against other processes
  // saving to the same path. The lock lives in a sidecar so it survives
  // the rename below (locking `path` itself would lock an inode the
  // rename is about to orphan).
  const ScopedFileLock file_lock(path + ".lock");

  std::map<Fingerprint, CachedCell> cells;
  std::map<Fingerprint, std::int64_t> all_fine;
  snapshot(cells, all_fine);

  // Merge-on-save: union whatever another writer persisted since we
  // loaded (or a pre-existing file we never loaded). Our in-memory
  // entry wins a collision — both sides computed it from the same
  // fingerprinted inputs, so the payloads match (asserted in debug).
  // A corrupt or version-mismatched file fails the strict parse and is
  // simply overwritten; that is the PR-4 rejection backstop.
  {
    std::map<Fingerprint, CachedCell> disk_cells;
    std::map<Fingerprint, std::int64_t> disk_all_fine;
    std::string ignored;
    if (parse_cache_file(path, disk_cells, disk_all_fine, &ignored)) {
      union_cells(cells, std::move(disk_cells));
      union_all_fine(all_fine, disk_all_fine);
    }
  }

  std::ostringstream os;
  serialize_cache(os, cells, all_fine);

  // Write-to-temp + rename keeps the save atomic: a failed or
  // interrupted write can never destroy the previously valid cache, and
  // a concurrent reader sees either the old file or the new one, never
  // a truncated half. Writers do not race on the shared temp name —
  // the file lock above serializes them.
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary);
    out << os.str();
    out.flush();
    if (!out.good()) {
      if (error) *error = "cannot write " + temp;
      std::remove(temp.c_str());
      return false;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    if (error) *error = "cannot rename " + temp + " to " + path;
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace amdrel::core
