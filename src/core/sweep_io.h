#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "core/explorer.h"
#include "core/schema.h"
#include "core/sweep_cache.h"

namespace amdrel::core {

// The artifact schema version (kSweepSchemaVersion) lives with every
// other persisted-format constant in core/schema.h. Bump on any change
// to the field set, field meaning, or formatting of sweep_to_json /
// sweep_to_csv — the golden tests pin the emissions byte-for-byte, so a
// format change must be an explicit, reviewed event.

/// Serializes a sweep as a stable-schema JSON document:
///
///   {
///     "schema_version": 3,
///     "generator": "amdrel",
///     "apps": ["ofdm", ...],
///     "cells": [ { "app": "ofdm", "a_fpga": 1500, "cgcs": 2,
///                  "platform_cost": 2076, "constraint": 60000,
///                  "strategy": "greedy", "ordering": "weight",
///                  "objective": "timing", "energy_budget_pj": 0.0000,
///                  "initial_cycles": N, "final_cycles": N,
///                  "cycles_in_cgc": N, "t_fpga": N, "t_coarse": N,
///                  "t_comm": N, "reconfig_cycles": N,
///                  "floorplan_cost": 0.0000,
///                  "initial_energy_pj": 202988452.0000,
///                  "energy_pj": 942580.0000, "moved": N,
///                  "moved_blocks": ["BB22", ...],
///                  "met": true, "reduction_percent": "46.10",
///                  "energy_reduction_percent": "99.54",
///                  "engine_iterations": N, "app_pareto": true,
///                  "global_pareto": false }, ... ],
///     "app_pareto": { "ofdm": [0, 3], ... },
///     "global_pareto": [0, 17]
///   }
///
/// Cells appear in SweepSummary order (app-major, then area, CGC count,
/// constraint, energy budget, strategy, ordering); pareto lists hold
/// indices into "cells". reduction_percent / energy_reduction_percent
/// are strings so the emission stays byte-stable (fixed "%.2f"
/// rendering, no float round-trip drift); energy pJ fields render with
/// fixed "%.4f". Output is deterministic: byte-identical for identical
/// sweeps, regardless of thread count.
std::string sweep_to_json(const SweepSummary& summary);

/// Serializes a sweep as CSV: a fixed header row then one row per cell,
/// same order and fields as the JSON (moved_blocks joined with ';',
/// booleans as true/false). Deterministic like sweep_to_json.
std::string sweep_to_csv(const SweepSummary& summary);

/// Serializes the sweep cache's hit/miss counters as a small JSON stats
/// document (`amdrelc explore --cache-stats`, the CI cache-efficacy
/// gate). Deliberately a SEPARATE document from sweep_to_json: counters
/// vary between cold and warm runs, while the sweep emission itself is
/// pinned byte-identical regardless of cache state.
///
///   {
///     "schema_version": <kSweepCacheSchemaVersion>,
///     "generator": "amdrel",
///     "cell_hits": N, "cell_misses": N, "cell_hit_rate": "0.50",
///     "mapper_restores": N, "mapper_builds": N,
///     "all_fine_hits": N, "all_fine_misses": N,
///     "cells": N, "entries_loaded": N,
///     "lock_degraded": N, "entries_evicted": N
///   }
///
/// cell_hit_rate is hits / (hits + misses) rendered "%.2f" ("0.00" when
/// no lookups happened), a string for the same byte-stability reason as
/// reduction_percent.
std::string cache_stats_to_json(const SweepCacheStats& stats);

/// Streaming partial results (`amdrelc serve --stream-partial`): a
/// schema-v3 NDJSON surface written shard-by-shard as workers deliver,
/// so a long fleet sweep is inspectable before the merged artifact
/// exists. One header line:
///
///   {"kind":"sweep_partial","schema_version":3,"generator":"amdrel",
///    "shards":N}
///
/// then, per finished shard — in COMPLETION order (nondeterministic
/// across runs; the final merged artifact is the deterministic one) — a
/// shard line and its cells in slot order:
///
///   {"kind":"shard","shard":S,"used":U}
///   {"kind":"cell","shard":S,"slot":I, "app": ..., ...}
///
/// Cell fields are exactly the sweep_to_json cell fields minus the
/// pareto markers (fronts exist only once every cell has landed),
/// rendered byte-identically.
void write_partial_stream_header(std::ostream& os, std::size_t shards);
void write_partial_stream_shard(std::ostream& os,
                                const std::vector<std::string>& apps,
                                std::size_t shard, const SweepCell* cells,
                                std::size_t used);

}  // namespace amdrel::core
