#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/kernels.h"
#include "core/hybrid_mapper.h"
#include "core/objective.h"
#include "ir/cdfg.h"
#include "ir/profile.h"
#include "platform/platform.h"
#include "platform/reconfig_model.h"

namespace amdrel::core {

/// How the partitioning engine orders candidate kernels before moving
/// them one by one. kWeightDescending is the paper's policy (analysis
/// step orders kernels by decreasing total weight); the others exist for
/// the ablation studies.
enum class KernelOrdering {
  kWeightDescending,   ///< paper: total_weight = exec_freq * bb_weight
  kBenefitDescending,  ///< measured cycle savings of moving the kernel
  kCodeOrder,          ///< source order (block id)
  kRandom,             ///< seeded shuffle
};

/// Which PartitionStrategy the engine dispatches to (see core/strategy.h).
enum class StrategyKind {
  kGreedyPaper,  ///< paper Figure 2 steps 4-5: move kernels in order
  kExhaustive,   ///< branch-and-bound optimum over small kernel sets
  kAnnealing,    ///< seeded simulated annealing for large kernel sets
};

/// Everything that defines WHAT a run optimizes and how movements are
/// priced, grouped so run_methodology, explore, the sweep specs and the
/// fingerprints all consume one struct instead of re-plumbing each knob
/// (the flag sprawl this replaces). A fourth pricing surface — the
/// reconfiguration model — lands here rather than as loose fields.
struct ObjectiveSpec {
  /// What the selected strategy minimizes and which constraint(s) `met`
  /// checks: the paper's timing flow, the energy variant, or a weighted
  /// combination (see core/objective.h). Also carries the EnergyModel
  /// that prices every report's energy columns.
  CostObjective objective;
  /// Energy budget in pJ, the energy-side analogue of the
  /// timing_constraint parameter; consulted by kEnergy/kCombined.
  double energy_budget_pj = 0;
  /// Partial-reconfiguration pricing for moved modules (load latency,
  /// prefetch overlap, region residency, floorplan cost). All-zero
  /// defaults reproduce the additive v2 flow byte-for-byte; see
  /// core/cost_model.h for the pricing interface it selects.
  platform::ReconfigModel reconfig;
};

struct MethodologyOptions {
  analysis::AnalysisOptions analysis;
  StrategyKind strategy = StrategyKind::kGreedyPaper;
  KernelOrdering ordering = KernelOrdering::kWeightDescending;
  /// Objective, budget and pricing model, consumed uniformly by every
  /// entry point (run_methodology, explore, sweeps, fingerprints).
  ObjectiveSpec cost;
  std::uint64_t random_seed = 1;
  /// Stop as soon as the constraint is met (the paper's behaviour).
  /// When false, greedy keeps moving every candidate and annealing runs
  /// its full proposal budget, each reporting the best split found.
  /// Ignored by the exhaustive search, which always proves its optimum.
  bool stop_when_met = true;
  /// Skip moves that would increase total time. The paper's engine does
  /// not check profitability (a kernel is assumed to accelerate on the
  /// CGC); enable for the ablation. Greedy only.
  bool skip_unprofitable = false;
  /// Candidate cap for kExhaustive: only the first N eligible kernels (in
  /// the chosen ordering) enter the branch-and-bound search.
  int exhaustive_max_kernels = 18;
  /// Proposal count for kAnnealing; the random walk is seeded from
  /// random_seed, so runs are reproducible.
  int anneal_iterations = 4000;
};

/// Result of the whole methodology run — one column of the paper's
/// Table 2/3 plus diagnostics.
struct PartitionReport {
  std::string app;
  std::int64_t timing_constraint = 0;
  ObjectiveKind objective = ObjectiveKind::kTiming;
  double energy_budget_pj = 0;

  std::int64_t initial_cycles = 0;  ///< all-fine-grain solution (step 2)
  double initial_energy_pj = 0;     ///< all-fine-grain energy
  bool initial_meets = false;       ///< methodology exits at step 2 if true

  std::vector<analysis::KernelInfo> kernels;  ///< analysis output, ordered
  std::vector<ir::BlockId> moved;             ///< in movement order

  SplitCost cost;              ///< final t_FPGA / t_coarse / t_comm
  std::int64_t final_cycles = 0;
  std::int64_t cycles_in_cgc = 0;  ///< t_coarse (the tables' "Cycles in CGC")
  /// Energy of the final split under options.cost.objective.energy, priced by
  /// a deterministic full repricing (estimate_energy) whatever the
  /// objective — every report carries energy columns, so sweeps can
  /// Pareto-front on energy even for timing-driven runs.
  EnergyBreakdown energy;
  /// Area-equivalent floorplan charge for the PR regions the moved
  /// modules occupy (options.cost.reconfig.floorplan_cost_per_unit ×
  /// moved units). Reported next to platform_cost — the sweep's Pareto
  /// platform-cost axis adds it — never folded into the cycle objective.
  double floorplan_cost = 0;
  bool met = false;       ///< options.cost.objective.met(...) on the final split
  int engine_iterations = 0;

  double reduction_percent() const {
    if (initial_cycles == 0) return 0.0;
    return 100.0 * (1.0 - static_cast<double>(final_cycles) /
                              static_cast<double>(initial_cycles));
  }

  double energy_reduction_percent() const {
    return initial_energy_pj == 0.0
               ? 0.0
               : 100.0 * (1.0 - energy.total_pj() / initial_energy_pj);
  }
};

/// One (timing constraint, energy budget) cell of a batched constraint
/// axis (see run_methodology_axis / PartitionStrategy::run_axis).
/// options.cost.energy_budget_pj is ignored on the axis path — each cell
/// carries its own budget.
struct AxisCell {
  std::int64_t timing_constraint = 0;
  double energy_budget_pj = 0;
};

/// Runs the complete flow of paper Figure 2: CDFG in, fine-grain mapping,
/// timing check, analysis, then the partitioning engine (the strategy
/// selected by options.strategy) moving kernels to the coarse-grain
/// data-path until the constraint is satisfied.
PartitionReport run_methodology(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options = {});

/// Same flow on a caller-owned mapper, so sweeps over many constraints or
/// strategies reuse one (cdfg, platform) mapping instead of re-mapping
/// every block per run (the DesignSpaceExplorer's hot path).
PartitionReport run_methodology(HybridMapper& mapper,
                                const ir::ProfileData& profile,
                                std::int64_t timing_constraint_cycles,
                                const MethodologyOptions& options = {});

/// Prices a whole constraint axis — every (timing constraint, energy
/// budget) cell over one fixed (mapper, profile, strategy, ordering) —
/// in a single pass: the all-fine baseline, kernel extraction and
/// ordering run once (they are cell-independent), and strategies whose
/// walk does not consult the constraint (greedy, annealing) price all
/// cells from one shared walk via PartitionStrategy::run_axis. Each
/// returned report is byte-identical to a standalone run_methodology
/// with that cell's constraint and budget (the explorer's golden sweeps
/// pin this). Cells already met by the all-fine solution early-exit
/// with empty kernel lists, exactly like the single-cell flow.
std::vector<PartitionReport> run_methodology_axis(
    HybridMapper& mapper, const ir::ProfileData& profile,
    const std::vector<AxisCell>& cells,
    const MethodologyOptions& options = {});

}  // namespace amdrel::core
