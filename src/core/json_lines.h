#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace amdrel::core::jsonl {

// ---------------------------------------------------------------------------
// Minimal strict JSON machinery shared by the two newline-delimited JSON
// surfaces of the system: the sweep cache's on-disk format
// (core/sweep_cache.cc) and the sweep service's coordinator<->worker wire
// protocol (core/sweep_service.cc). Header-only so both stay free of a
// shared translation unit; the strictness is the point — every malformed
// line is rejected, never coerced, which is what makes "corrupt input ->
// reject whole stream" a reliable contract on both surfaces.
// ---------------------------------------------------------------------------

/// Minimal strict JSON value: everything the cache/wire schemas use
/// (integers, booleans, strings, arrays, objects). No floats — the
/// schemas have none (doubles travel as IEEE-754 bit patterns), and
/// rejecting them keeps round-trips exact.
struct JsonValue {
  enum class Kind { kBool, kInt, kString, kArray, kObject };
  Kind kind = Kind::kInt;
  bool boolean = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& name) const {
    for (const auto& [key, value] : fields) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

/// Recursive-descent parser for one JSON line. Strict: unknown escape
/// sequences, floats, trailing garbage and depth past the schemas' needs
/// all fail.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out) {
    skip_space();
    if (!parse_value(out, /*depth=*/0)) return false;
    skip_space();
    return p_ == end_;
  }

 private:
  static constexpr int kMaxDepth = 8;

  void skip_space() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t')) ++p_;
  }

  bool literal(const char* text) {
    const char* q = p_;
    for (; *text; ++text, ++q) {
      if (q == end_ || *q != *text) return false;
    }
    p_ = q;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || p_ == end_) return false;
    switch (*p_) {
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_int(out);
    }
  }

  bool parse_string(std::string& out) {
    ++p_;  // opening quote
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) return false;
      switch (*p_++) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_) return false;
            const char d = *p_++;
            value <<= 4;
            if (d >= '0' && d <= '9') {
              value |= static_cast<unsigned>(d - '0');
            } else if (d >= 'a' && d <= 'f') {
              value |= static_cast<unsigned>(d - 'a' + 10);
            } else {
              return false;
            }
          }
          if (value > 0x7f) return false;  // writer only escapes control chars
          out += static_cast<char>(value);
          break;
        }
        default:
          return false;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool parse_int(JsonValue& out) {
    out.kind = JsonValue::Kind::kInt;
    const bool negative = p_ != end_ && *p_ == '-';
    if (negative) ++p_;
    if (p_ == end_ || *p_ < '0' || *p_ > '9') return false;
    std::uint64_t magnitude = 0;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(*p_++ - '0');
      if (magnitude > (0x7fffffffffffffffULL - digit) / 10) return false;
      magnitude = magnitude * 10 + digit;
    }
    out.integer = negative ? -static_cast<std::int64_t>(magnitude)
                           : static_cast<std::int64_t>(magnitude);
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++p_;  // '['
    skip_space();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_space();
      if (p_ == end_) return false;
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      if (*p_++ != ',') return false;
      skip_space();
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++p_;  // '{'
    skip_space();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      if (p_ == end_ || *p_ != '"') return false;
      std::string key;
      if (!parse_string(key)) return false;
      skip_space();
      if (p_ == end_ || *p_++ != ':') return false;
      skip_space();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_space();
      if (p_ == end_) return false;
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      if (*p_++ != ',') return false;
      skip_space();
    }
  }

  const char* p_;
  const char* end_;
};

// Typed field accessors: each returns false when the field is missing or
// of the wrong kind, so every malformed line is caught, never coerced.
inline bool get_int(const JsonValue& object, const char* name,
                    std::int64_t& out) {
  const JsonValue* v = object.find(name);
  if (!v || v->kind != JsonValue::Kind::kInt) return false;
  out = v->integer;
  return true;
}

inline bool get_bool(const JsonValue& object, const char* name, bool& out) {
  const JsonValue* v = object.find(name);
  if (!v || v->kind != JsonValue::Kind::kBool) return false;
  out = v->boolean;
  return true;
}

inline bool get_string(const JsonValue& object, const char* name,
                       std::string& out) {
  const JsonValue* v = object.find(name);
  if (!v || v->kind != JsonValue::Kind::kString) return false;
  out = v->string;
  return true;
}

// Doubles round-trip through their IEEE-754 bit pattern (as a signed
// 64-bit integer) so the strict integer-only parser needs no float
// grammar and a reader recovers exactly the bits the writer held.
inline std::int64_t double_to_bits(double value) {
  std::int64_t bits = 0;
  static_assert(sizeof bits == sizeof value, "IEEE-754 double expected");
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

inline double bits_to_double(std::int64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace amdrel::core::jsonl
