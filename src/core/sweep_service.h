#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/schema.h"

namespace amdrel::core {

// ---------------------------------------------------------------------------
// Distributed sweep service: the coordinator/worker split of
// sweep_design_space (ROADMAP direction 1, "serve a corpus on a fleet").
//
// Topology: `amdrelc serve` partitions the deterministic (app, platform)
// shard index round-robin across N `amdrelc worker` OS processes, each
// worker runs its assigned shards through compute_sweep_shard — the
// EXACT code path a single-process sweep's threads run — and streams the
// resulting cell groups back as newline-delimited JSON. The coordinator
// writes each streamed cell into the slot the single-process layout
// assigns it and derives the Pareto fronts itself
// (finalize_sweep_summary), so the merged summary is byte-identical to a
// single-process sweep at ANY worker count, by construction rather than
// by comparison.
//
// Wire format (one JSON object per line; doubles travel as IEEE-754 bit
// patterns inside the canonical cell payload of core/sweep_cache.h):
//   {"kind":"wire_header","protocol":<wire version>,"schema_version":...,
//    "fingerprint_algorithm":...,"shards":N}
//   {"kind":"shard","shard":S,"used":U}     // one per assigned shard,
//   {"kind":"cell","shard":S,"slot":I,...}  //   then its U cells,
//                                           //   slots 0..U-1 in order
//   {"kind":"worker_done","cells":M}        // exactly once, then EOF
// The stream is self-describing and transport-agnostic: today it rides
// a pipe from a locally forked worker, but nothing in it precludes a
// socket from a remote host (the remaining ROADMAP work).
//
// Failure semantics: strict. A version-mismatched header, an unassigned
// or repeated shard, an out-of-order slot, a malformed cell, a truncated
// stream or a nonzero worker exit all throw Error and fail the whole
// serve run — a distributed sweep either reproduces the single-process
// artifact exactly or it fails loudly; there is no partial output.
// ---------------------------------------------------------------------------

// The coordinator<->worker wire protocol version
// (kSweepWireProtocolVersion) lives with every other persisted-format
// constant in core/schema.h. Bumped on any change to the line kinds or
// field sets; the coordinator rejects a worker speaking a different
// version.

/// Round-robin partition of shards 0..shard_count-1 across `workers`
/// slots: shard s goes to slot s % workers. Deterministic and balanced
/// to within one shard; slots can be empty only when workers >
/// shard_count.
std::vector<std::vector<std::size_t>> partition_shards(std::size_t shard_count,
                                                       int workers);

/// Worker half: computes `assigned` shards of the (corpus, spec) sweep
/// and streams them to `os` in the wire format above, in assigned order.
/// Honors spec.threads (shards are computed by a pool but emitted in
/// order) and spec.cache exactly like sweep_design_space — a disk-warm
/// cache short-circuits compute, and freshly computed cells/mapper
/// snapshots are published to it for the eventual save. Returns the
/// number of cells emitted. Throws Error on invalid inputs (out-of-range
/// or duplicate shard indices) or an unwritable stream.
std::size_t run_sweep_worker(const std::vector<CorpusApp>& corpus,
                             const SweepSpec& spec,
                             const std::vector<std::size_t>& assigned,
                             std::ostream& os);

/// Coordinator half of one worker connection: validates and parses a
/// worker stream and writes its cells into `summary.cells` (which must
/// hold the full shards x cells_per_shard slot layout) and its per-shard
/// fill counts into `shard_used`. Cell coordinates that are derivable
/// from the shard/slot index alone (app, platform axes, platform cost,
/// strategy, ordering, energy budget) are re-derived locally — the wire
/// carries only the computed payload — so a byte on the wire can never
/// move a cell to the wrong coordinate. Throws Error on any protocol
/// violation (see failure semantics above).
void consume_worker_stream(std::istream& in,
                           const std::vector<CorpusApp>& corpus,
                           const SweepSpec& spec,
                           const std::vector<std::size_t>& assigned,
                           SweepSummary& summary,
                           std::vector<std::size_t>& shard_used);

/// How serve_design_space launches workers.
struct ServeOptions {
  /// Worker process count; clamped to [1, shard count].
  int workers = 1;
  /// Maps a worker's assigned shard list to the argv of the process to
  /// spawn (argv[0] = executable, resolved via PATH). The process must
  /// speak the wire protocol on stdout. The CLI builds
  /// "amdrelc worker ... --shards i,j,..." here.
  std::function<std::vector<std::string>(const std::vector<std::size_t>&)>
      worker_command;
};

/// Coordinator: partitions the sweep across locally forked worker
/// processes, merges their streams and finalizes the summary. The result
/// is byte-identical to sweep_design_space(corpus, spec) at any worker
/// count. Throws Error if a worker exits nonzero, breaks protocol, or
/// the platform lacks fork/pipe (non-POSIX builds).
SweepSummary serve_design_space(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec,
                                const ServeOptions& options);

}  // namespace amdrel::core
