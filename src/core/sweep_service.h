#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/json_lines.h"
#include "core/schema.h"
#include "core/transport.h"

namespace amdrel::core {

// ---------------------------------------------------------------------------
// Distributed sweep service: the coordinator/worker split of
// sweep_design_space (ROADMAP direction 1, "serve a corpus on a fleet").
//
// Topology: `amdrelc serve` partitions the deterministic (app, platform)
// shard index round-robin across N workers reached through a pluggable
// core::Transport — locally forked `amdrelc worker --shards` processes
// (ForkPipeTransport) or `amdrelc worker --connect` dial-ins over TCP
// (TcpTransport). Every worker runs its shards through
// compute_sweep_shard — the EXACT code path a single-process sweep's
// threads run — and streams the resulting cell groups back as
// newline-delimited JSON (core/wire.h). The coordinator writes each
// streamed cell into the slot the single-process layout assigns it and
// derives the Pareto fronts itself (finalize_sweep_summary), so the
// merged summary is byte-identical to a single-process sweep at ANY
// worker count — and under ANY injected worker failure — by
// construction rather than by comparison.
//
// Fault tolerance: the coordinator tracks per-worker health (disconnect
// detection plus an idle timeout) and retries a dead worker's
// *unfinished* shards — on an idle surviving connection, a newly
// accepted dial-in, or a respawned process — up to a bounded number of
// attempts per shard. Re-computation is safe because cells are
// content-addressed and deterministic: a retried shard overwrites the
// dead worker's partial cells with identical bytes, and a shard counts
// as done exactly once.
//
// Failure semantics: strict where it must be. A version-mismatched
// header, an unassigned or repeated shard, an out-of-order slot, a
// malformed cell or any other PROTOCOL violation still throws Error and
// fails the whole run — only CONNECTION failures (EOF mid-stream, a
// killed or hung worker) are retried, and once a shard exhausts its
// retry budget the run fails loudly. There is never a silently partial
// merged artifact.
// ---------------------------------------------------------------------------

// The coordinator<->worker wire protocol version
// (kSweepWireProtocolVersion) lives with every other persisted-format
// constant in core/schema.h; the line grammar and codecs live in
// core/wire.h. The coordinator rejects a worker speaking a different
// version.

/// Round-robin partition of shards 0..shard_count-1 across `workers`
/// slots: shard s goes to slot s % workers. Deterministic and balanced
/// to within one shard; slots can be empty only when workers >
/// shard_count.
std::vector<std::vector<std::size_t>> partition_shards(std::size_t shard_count,
                                                       int workers);

/// Observation hook: called after each shard a worker emits, with the
/// running count of shards emitted on this stream. The CLI's
/// fault-injection flag (--fail-after-shards) rides here.
using ShardEmitHook = std::function<void(std::size_t)>;

/// Static worker half: computes `assigned` shards of the (corpus, spec)
/// sweep and streams them to `os` in the one-directional wire format, in
/// assigned order. Honors spec.threads (shards are computed by a pool
/// but emitted in order) and spec.cache exactly like sweep_design_space
/// — a disk-warm cache short-circuits compute, and freshly computed
/// cells/mapper snapshots are published to it for the eventual save.
/// Returns the number of cells emitted. Throws Error on invalid inputs
/// (out-of-range or duplicate shard indices) or an unwritable stream.
std::size_t run_sweep_worker(const std::vector<CorpusApp>& corpus,
                             const SweepSpec& spec,
                             const std::vector<std::size_t>& assigned,
                             std::ostream& os,
                             const ShardEmitHook& after_shard = {});

/// Dynamic worker half (wire v3): announces the header on `out`, then
/// serves "assign" batches read from `in` — each computed exactly like
/// run_sweep_worker and answered with shard/cell lines plus a
/// round_done — until a "shutdown" line, acknowledged with a final
/// worker_done. shard_ack lines from the coordinator are validated and
/// ignored. Returns total cells across all rounds. Throws Error if the
/// coordinator breaks protocol or disconnects before shutdown.
std::size_t run_sweep_worker_connected(const std::vector<CorpusApp>& corpus,
                                       const SweepSpec& spec, std::istream& in,
                                       std::ostream& out,
                                       const ShardEmitHook& after_shard = {});

/// Incremental validator/merger of one worker connection's stream, fed
/// one wire line at a time — the heart of both the fault-tolerant event
/// loop (which interleaves many live connections) and the one-shot
/// consume_worker_stream below. Cell coordinates that are derivable from
/// the shard/slot index alone (app, platform axes, platform cost,
/// strategy, ordering, energy budget) are re-derived locally — the wire
/// carries only the computed payload — so a byte on the wire can never
/// move a cell to the wrong coordinate. Every protocol violation throws
/// Error.
class WorkerStreamConsumer {
 public:
  /// `dynamic` selects the wire v3 round protocol (round_done
  /// terminates an assign batch; worker_done only closes the
  /// connection) over the static single-batch stream (worker_done
  /// terminates the one round).
  WorkerStreamConsumer(const std::vector<CorpusApp>& corpus,
                       const SweepSpec& spec, SweepSummary& summary,
                       std::vector<std::size_t>& shard_used, bool dynamic);

  /// Starts a round over `assigned` shards. The first round also expects
  /// the wire_header before any data line.
  void begin_round(const std::vector<std::size_t>& assigned);

  enum class Event {
    kNone,           ///< line consumed, nothing completed
    kShardComplete,  ///< last_shard()/last_used() just filled its slots
    kRoundComplete,  ///< every shard of the round landed + terminator seen
  };

  /// Feeds one line (no trailing newline). Throws Error on protocol
  /// violations.
  Event feed(const std::string& line);

  /// EOF check for a one-shot stream: throws the classic truncation /
  /// missing-shards errors if the stream ended mid-round.
  void finish_stream() const;

  std::size_t last_shard() const { return last_shard_; }
  std::size_t last_used() const { return last_used_; }
  bool round_active() const { return round_active_; }
  bool header_seen() const { return header_seen_; }
  bool connection_done() const { return done_; }
  std::size_t total_cells() const { return total_cells_; }
  /// Shards of the current round not yet fully streamed — the retry set
  /// when the connection dies mid-round.
  std::vector<std::size_t> round_unfinished() const;

 private:
  Event feed_header(const jsonl::JsonValue& object);
  Event feed_shard(const jsonl::JsonValue& object);
  Event feed_cell(const jsonl::JsonValue& object);
  Event complete_shard(std::size_t shard, std::size_t used);

  const SweepSpec& spec_;
  SweepSummary& summary_;
  std::vector<std::size_t>& shard_used_;
  bool dynamic_ = false;

  std::size_t shards_ = 0;
  std::size_t cells_per_shard_ = 0;
  std::vector<double> budgets_;
  std::size_t inner_ = 0;

  bool header_seen_ = false;
  bool done_ = false;
  bool round_active_ = false;
  std::size_t line_no_ = 0;
  std::size_t total_cells_ = 0;
  std::size_t round_cells_ = 0;
  std::set<std::size_t> expected_;
  std::set<std::size_t> consumed_;  ///< across all rounds of the connection
  std::size_t round_completed_ = 0;

  bool in_shard_ = false;
  std::size_t cur_shard_ = 0;
  std::size_t cur_used_ = 0;
  std::size_t cur_slot_ = 0;
  std::size_t last_shard_ = 0;
  std::size_t last_used_ = 0;
};

/// Coordinator half of one static worker stream, one-shot: validates and
/// parses the whole stream and writes its cells into `summary.cells`
/// (which must hold the full shards x cells_per_shard slot layout) and
/// its per-shard fill counts into `shard_used`. Implemented on
/// WorkerStreamConsumer; throws Error on any protocol violation.
void consume_worker_stream(std::istream& in,
                           const std::vector<CorpusApp>& corpus,
                           const SweepSpec& spec,
                           const std::vector<std::size_t>& assigned,
                           SweepSummary& summary,
                           std::vector<std::size_t>& shard_used);

/// How serve_design_space reaches workers and how patient it is with
/// them.
struct ServeOptions {
  /// Worker count (initial partition width); clamped to [1, shard
  /// count].
  int workers = 1;
  /// Channel factory (core/transport.h). Required; not owned.
  Transport* transport = nullptr;
  /// Additional assignment attempts allowed per shard after the first
  /// before the run fails. 0 disables retry entirely.
  int max_shard_retries = 2;
  /// A worker whose stream stays silent this long mid-round is declared
  /// dead and its unfinished shards retried. <= 0 disables the timeout.
  int idle_timeout_ms = 300000;
  /// How long open_worker may wait for a worker to materialize when the
  /// run cannot progress without one (initial launch and retries with no
  /// survivors).
  int spawn_timeout_ms = 60000;
  /// Streaming partial results: called as each shard completes — in
  /// completion order, exactly once per shard — with (shard index, its
  /// cells in slot order, used count). The cells live in the summary
  /// being assembled; copy anything that must outlive the call.
  std::function<void(std::size_t, const SweepCell*, std::size_t)>
      on_shard_complete;
};

/// Coordinator: partitions the sweep across workers reached through
/// options.transport, merges their streams with per-worker health
/// tracking and bounded shard retry, and finalizes the summary. The
/// result is byte-identical to sweep_design_space(corpus, spec) at any
/// worker count and under any injected worker failure that stays within
/// the retry budget. Throws Error on protocol violations, on a shard
/// exhausting its retries, or when the platform lacks poll/fork
/// (non-POSIX builds).
SweepSummary serve_design_space(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec,
                                const ServeOptions& options);

}  // namespace amdrel::core
