#include "core/strategy.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/cost_model.h"
#include "support/bitset.h"
#include "support/error.h"

namespace amdrel::core {

std::vector<StrategyResult> PartitionStrategy::run_axis(
    const AxisContext& ctx) {
  std::vector<StrategyResult> results;
  results.reserve(ctx.cells.size());
  for (const AxisCell& cell : ctx.cells) {
    MethodologyOptions options = ctx.options;
    options.cost.energy_budget_pj = cell.energy_budget_pj;
    results.push_back(run({ctx.mapper, ctx.profile, cell.timing_constraint,
                           options, ctx.kernels}));
  }
  return results;
}

namespace {

/// Narrows a single-cell StrategyContext to the axis form the batched
/// walks consume; the greedy and annealing run() entry points delegate
/// through this so the single-cell and batched paths are one code path.
std::vector<AxisCell> single_cell(const StrategyContext& ctx) {
  return {{ctx.timing_constraint, ctx.options.cost.energy_budget_pj}};
}

}  // namespace

StrategyResult GreedyPaperStrategy::run(const StrategyContext& ctx) {
  const std::vector<AxisCell> cells = single_cell(ctx);
  return std::move(run_axis(
      {ctx.mapper, ctx.profile, ctx.options, ctx.kernels, cells})[0]);
}

std::vector<StrategyResult> GreedyPaperStrategy::run_axis(
    const AxisContext& ctx) {
  const std::size_t cells = ctx.cells.size();
  std::vector<StrategyResult> results(cells);
  const std::unique_ptr<CostModel> cost_model =
      make_cost_model(ctx.options.cost, ctx.mapper.platform());
  IncrementalSplit split(ctx.mapper, ctx.profile, ctx.options.cost.objective,
                         cost_model.get());
  // Objective values of pure-timing splits are integer cycle counts held
  // exactly in a double, so these comparisons replicate the original
  // int64 ones bit-for-bit.
  double best_value = split.objective_value();
  SplitCost best_cost = split.cost();
  std::size_t best_commits = 0;  ///< committed prefix length at the best

  // The commit walk never consults a constraint: each cell only decides
  // where along the shared trajectory it stops. A cell's result at its
  // stop point is exactly what a standalone run would have returned,
  // including engine_iterations (the stop index).
  std::vector<ir::BlockId> committed;
  std::vector<char> resolved(cells, 0);
  std::size_t unresolved = cells;
  int step = 0;  ///< eligible kernels processed so far

  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (unresolved == 0) break;  // every cell already stopped
    if (!kernel.cgc_eligible) continue;  // divisions stay on the FPGA
    step++;

    split.move(kernel.block);
    const double value = split.objective_value();

    if (ctx.options.skip_unprofitable && value > best_value) {
      split.unmove(kernel.block);
      continue;  // ablation mode only; the paper always commits the move
    }
    committed.push_back(kernel.block);
    if (value < best_value) {
      best_value = value;
      best_cost = split.cost();
      best_commits = committed.size();
    }
    if (ctx.options.stop_when_met) {
      const std::int64_t cycles = split.cost().total();
      const double energy_pj = split.energy().total_pj();
      for (std::size_t c = 0; c < cells; ++c) {
        if (resolved[c]) continue;
        if (!ctx.options.cost.objective.met(cycles, energy_pj,
                                       ctx.cells[c].timing_constraint,
                                       ctx.cells[c].energy_budget_pj)) {
          continue;
        }
        StrategyResult& result = results[c];
        result.cost = split.cost();
        result.moved = committed;
        result.engine_iterations = step;
        resolved[c] = 1;
        unresolved--;
      }
    }
  }
  // Cells the walk never satisfied report the best split it found.
  for (std::size_t c = 0; c < cells && unresolved != 0; ++c) {
    if (resolved[c]) continue;
    StrategyResult& result = results[c];
    result.cost = best_cost;
    result.moved.assign(committed.begin(),
                        committed.begin() +
                            static_cast<std::ptrdiff_t>(best_commits));
    result.engine_iterations = step;
  }
  return results;
}

StrategyResult ExhaustiveStrategy::run(const StrategyContext& ctx) {
  StrategyResult result;
  const CostObjective& objective = ctx.options.cost.objective;
  const std::unique_ptr<CostModel> cost_model =
      make_cost_model(ctx.options.cost, ctx.mapper.platform());
  IncrementalSplit split(ctx.mapper, ctx.profile, objective,
                         cost_model.get());
  const double root_value = split.objective_value();
  const auto split_met = [&](const IncrementalSplit& s) {
    return s.meets(ctx.timing_constraint, ctx.options.cost.energy_budget_pj);
  };

  // Candidates: the first eligible kernels in the analysis order (capped),
  // then sorted most-beneficial-first so the bound prunes early. Each
  // carries its per-axis deltas: the bound needs cycles and energy
  // separately (the met() test is per-axis), the ordering and the
  // best-value bound use the objective scalar.
  struct Candidate {
    ir::BlockId block;
    double value_delta;        ///< objective-scalar change of the move
    std::int64_t cycle_delta;  ///< total-cycle change of the move
    double energy_delta;       ///< total-pJ change of the move
  };
  std::vector<Candidate> candidates;
  const auto cap =
      static_cast<std::size_t>(std::max(0, ctx.options.exhaustive_max_kernels));
  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (!kernel.cgc_eligible) continue;
    if (candidates.size() >= cap) break;
    const SplitCost root_cost = split.cost();
    const double root_energy = split.energy().total_pj();
    split.move(kernel.block);
    const double value_delta = split.objective_value() - root_value;
    const std::int64_t cycle_delta = split.cost().total() - root_cost.total();
    const double energy_delta = split.energy().total_pj() - root_energy;
    split.unmove(kernel.block);
    candidates.push_back({kernel.block, value_delta, cycle_delta,
                          energy_delta});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.value_delta < b.value_delta;
                   });

  const std::size_t n = candidates.size();
  // suffix_*[i]: the best possible further reduction from position i on
  // (sum of the remaining negative deltas, per axis) — the admissible
  // bound.
  //
  // Admissibility under the reconfiguration-aware CostModel (which is
  // deliberately NOT per-block additive): write the cycle cost of a
  // moved set M as C(M) = A(M) + E(M), where A(M) = base + sum over M of
  // (additive cycle delta + load(b)) and the residency excess
  // E(M) = sum_{b in M} saving(b) - topR_savings(M) >= 0 with
  // saving(b) = load(b) * (iterations(b) - 1). The root-measured deltas
  // above are exactly A's per-block terms: a single moved block is
  // always resident (R >= 1), so its measured t_reconfig is load(b)
  // alone, i.e. E({b}) = 0. E is monotone nondecreasing under set
  // inclusion — adding block x raises total savings by saving(x) while
  // the top-R sum rises by AT MOST saving(x) (any R-subset of M+{x}
  // either avoids x, so it was available in M, or swaps x in for one
  // block) — hence for any extension T of the current subset S:
  //   C(S+T) = A(S) + sum_{j in T} a_j + E(S+T)
  //         >= A(S) + E(S) + sum_{j in T} a_j
  //          = C(S) + sum_{j in T} a_j
  //         >= C(S) + (sum of the NEGATIVE remaining deltas).
  // The same argument scales through non-negative objective weights
  // (run_methodology requires them) for the value axis, and the energy
  // axis carries no reconfiguration charge at all, so all three suffix
  // sums below stay true lower bounds. The small-N brute-force property
  // test pins this optimality under nonzero reconfiguration latency.
  std::vector<double> suffix_value(n + 1, 0.0);
  std::vector<std::int64_t> suffix_cycles(n + 1, 0);
  std::vector<double> suffix_energy(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    suffix_value[i] =
        suffix_value[i + 1] + std::min(0.0, candidates[i].value_delta);
    suffix_cycles[i] =
        suffix_cycles[i + 1] +
        std::min<std::int64_t>(0, candidates[i].cycle_delta);
    suffix_energy[i] =
        suffix_energy[i + 1] + std::min(0.0, candidates[i].energy_delta);
  }

  // The whole recursion state — current subset, fewest-moves-met record,
  // best-anywhere record — lives in word-sized bitsets, so taking and
  // dropping a candidate is a bit flip and record updates are word
  // copies.
  SmallBitset taken(n);
  bool met_found = false;
  std::size_t met_moves = 0;
  double met_value = 0.0;
  SplitCost met_cost;
  SmallBitset met_taken(n);
  double best_any_value = root_value;
  SplitCost best_any_cost = split.cost();
  SmallBitset best_any_taken(n);

  const auto dfs = [&](const auto& self, std::size_t i) -> void {
    result.engine_iterations++;
    const double value = split.objective_value();
    if (value < best_any_value) {
      best_any_value = value;
      best_any_cost = split.cost();
      best_any_taken = taken;
    }
    if (split_met(split)) {
      const std::size_t moves = split.moved_count();
      if (!met_found || moves < met_moves ||
          (moves == met_moves && value < met_value)) {
        met_found = true;
        met_moves = moves;
        met_value = value;
        met_cost = split.cost();
        met_taken = taken;
      }
    }
    if (i == n) return;

    // Optimistic completion of this subtree, per axis: no reachable
    // split can beat these, so prune when neither the best-value nor the
    // fewest-moves-met record can improve.
    const bool can_improve_any =
        value + suffix_value[i] < best_any_value;
    const bool can_improve_met =
        objective.met(split.cost().total() + suffix_cycles[i],
                      split.energy().total_pj() + suffix_energy[i],
                      ctx.timing_constraint, ctx.options.cost.energy_budget_pj) &&
        (!met_found || split.moved_count() + 1 <= met_moves);
    if (!can_improve_any && !can_improve_met) return;

    split.move(candidates[i].block);
    taken.set(i);
    self(self, i + 1);
    split.unmove(candidates[i].block);
    taken.clear(i);
    self(self, i + 1);
  };
  dfs(dfs, 0);

  const SmallBitset& chosen = met_found ? met_taken : best_any_taken;
  result.cost = met_found ? met_cost : best_any_cost;
  // Emit the moved blocks in the analysis (priority) order for readable
  // reports, independent of the internal search order.
  SmallBitset is_chosen(static_cast<std::size_t>(ctx.mapper.cdfg().size()));
  chosen.for_each_set(
      [&](std::size_t i) { is_chosen.set(
          static_cast<std::size_t>(candidates[i].block)); });
  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (is_chosen.test(static_cast<std::size_t>(kernel.block))) {
      result.moved.push_back(kernel.block);
    }
  }
  return result;
}

StrategyResult AnnealingStrategy::run(const StrategyContext& ctx) {
  const std::vector<AxisCell> cells = single_cell(ctx);
  return std::move(run_axis(
      {ctx.mapper, ctx.profile, ctx.options, ctx.kernels, cells})[0]);
}

std::vector<StrategyResult> AnnealingStrategy::run_axis(
    const AxisContext& ctx) {
  const std::size_t cells = ctx.cells.size();
  std::vector<StrategyResult> results(cells);
  const std::unique_ptr<CostModel> cost_model =
      make_cost_model(ctx.options.cost, ctx.mapper.platform());
  IncrementalSplit split(ctx.mapper, ctx.profile, ctx.options.cost.objective,
                         cost_model.get());

  std::vector<ir::BlockId> candidates;
  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (kernel.cgc_eligible) candidates.push_back(kernel.block);
  }
  double best_value = split.objective_value();
  SplitCost best_cost = split.cost();
  double best_energy = split.energy().total_pj();
  SmallBitset best_state(candidates.size());
  for (StrategyResult& result : results) result.cost = best_cost;
  if (candidates.empty()) return results;

  std::mt19937_64 rng(ctx.options.random_seed);
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  const int iterations = std::max(1, ctx.options.anneal_iterations);
  // The acceptance temperature must live on the objective's own scale.
  // Timing keeps the historical absolute schedule — start at 5% of the
  // initial cycle count, cool geometrically to 1 cycle — whose walks the
  // sweep goldens pin byte-for-byte (the scale divisor is exactly 1.0,
  // so delta/scale is the identity on those doubles). Energy and
  // combined objectives are pJ-scale scalars, orders of magnitude
  // larger than cycle counts on the same app; the absolute schedule
  // started them far hotter in relative terms (and its floor of 1.0 pJ
  // is relatively far colder), so their walks accepted uphill moves
  // near-blindly for most of the budget. For those spaces the schedule
  // is normalized by the initial objective value: deltas become
  // fractions of the starting cost and temperature runs 5e-2 -> 1e-8
  // relative. The floor sits below the smallest single-flip relative
  // delta either space produces on the paper apps (~4e-7 in pJ space),
  // the same relationship the absolute timing floor of 1 cycle has to
  // its smallest delta, so late-stage walks reject uphill moves in
  // every space instead of boiling forever in pJ space; the
  // AcceptanceRateIsObjectiveScaleFree test pins the resulting rates
  // to one band.
  const bool normalized =
      ctx.options.cost.objective.kind != ObjectiveKind::kTiming;
  const double scale = normalized ? std::max(1.0, best_value) : 1.0;
  const double floor_temp = normalized ? 1e-8 : 1.0;
  double temperature =
      normalized ? 0.05 : std::max(1.0, best_value * 0.05);
  const double cooling =
      std::pow(floor_temp / temperature, 1.0 / iterations);

  // One walk prices every cell: the rng stream, acceptance tests and
  // best tracking consult only objective values, never a constraint or
  // budget, so the trajectory a standalone run() would follow for any
  // cell is exactly this one up to that cell's stop point. Each cell
  // resolves online the first time the accepted split meets it; the
  // walk ends early once every cell has resolved (which makes the
  // single-cell run() byte-identical to the old implementation by
  // construction).
  std::vector<char> resolved(cells, 0);
  std::size_t unresolved = cells;
  int uphill_proposed = 0;
  int uphill_accepted = 0;

  SmallBitset state(candidates.size());
  double current = best_value;
  for (int step = 0; step < iterations && unresolved > 0; ++step) {
    const std::size_t i = pick(rng);
    const ir::BlockId block = candidates[i];
    if (state.test(i)) {
      split.unmove(block);
    } else {
      split.move(block);
    }
    const double proposed = split.objective_value();
    const double delta = proposed - current;
    if (delta > 0.0) uphill_proposed++;
    if (delta <= 0.0 ||
        uniform(rng) < std::exp(-(delta / scale) / temperature)) {
      if (delta > 0.0) uphill_accepted++;
      state.flip(i);
      current = proposed;
      if (proposed < best_value) {
        best_value = proposed;
        best_cost = split.cost();
        best_energy = split.energy().total_pj();
        best_state = state;
      }
      if (ctx.options.stop_when_met) {
        for (std::size_t c = 0; c < cells; ++c) {
          if (resolved[c]) continue;
          const AxisCell& cell = ctx.cells[c];
          if (!split.meets(cell.timing_constraint, cell.energy_budget_pj)) {
            continue;
          }
          // Stop this cell once its constraint holds (paper-flow
          // semantics) — but hand it a split that actually meets it.
          // For timing and energy objectives best_value <= current
          // implies the recorded best meets too (the scalar IS the
          // constrained quantity), so those cells take the shared best
          // bit-identically; under kCombined the scalar is a weighted
          // sum while met() is per-axis, so the lower-value best can
          // violate an axis the current split satisfies — then the cell
          // takes the current split instead. The shared best itself is
          // never touched: later cells see the same walk state a
          // standalone run would.
          const bool best_meets = ctx.options.cost.objective.met(
              best_cost.total(), best_energy, cell.timing_constraint,
              cell.energy_budget_pj);
          StrategyResult& result = results[c];
          result.cost = best_meets ? best_cost : split.cost();
          result.engine_iterations = step + 1;
          result.uphill_proposed = uphill_proposed;
          result.uphill_accepted = uphill_accepted;
          const SmallBitset& chosen = best_meets ? best_state : state;
          for (std::size_t k = 0; k < candidates.size(); ++k) {
            if (chosen.test(k)) result.moved.push_back(candidates[k]);
          }
          resolved[c] = 1;
          --unresolved;
        }
      }
    } else {
      // Rejected: revert the flip.
      if (state.test(i)) {
        split.move(block);
      } else {
        split.unmove(block);
      }
    }
    temperature = std::max(floor_temp, temperature * cooling);
  }

  // Cells the walk never satisfied get the best split of the full
  // budget, exactly as a standalone run reaching its iteration cap.
  for (std::size_t c = 0; c < cells; ++c) {
    if (resolved[c]) continue;
    StrategyResult& result = results[c];
    result.cost = best_cost;
    result.engine_iterations = iterations;
    result.uphill_proposed = uphill_proposed;
    result.uphill_accepted = uphill_accepted;
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      if (best_state.test(k)) result.moved.push_back(candidates[k]);
    }
  }
  return results;
}

std::unique_ptr<PartitionStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kGreedyPaper:
      return std::make_unique<GreedyPaperStrategy>();
    case StrategyKind::kExhaustive:
      return std::make_unique<ExhaustiveStrategy>();
    case StrategyKind::kAnnealing:
      return std::make_unique<AnnealingStrategy>();
  }
  throw Error("make_strategy: unknown strategy kind");
}

const std::vector<StrategyKind>& all_strategies() {
  static const std::vector<StrategyKind> kinds = {
      StrategyKind::kGreedyPaper, StrategyKind::kExhaustive,
      StrategyKind::kAnnealing};
  return kinds;
}

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kGreedyPaper: return "greedy";
    case StrategyKind::kExhaustive: return "exhaustive";
    case StrategyKind::kAnnealing: return "annealing";
  }
  return "?";
}

std::optional<StrategyKind> parse_strategy(std::string_view name) {
  for (const StrategyKind kind : all_strategies()) {
    if (name == strategy_name(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<KernelOrdering>& all_kernel_orderings() {
  static const std::vector<KernelOrdering> orderings = {
      KernelOrdering::kWeightDescending, KernelOrdering::kBenefitDescending,
      KernelOrdering::kCodeOrder, KernelOrdering::kRandom};
  return orderings;
}

const char* kernel_ordering_name(KernelOrdering ordering) {
  switch (ordering) {
    case KernelOrdering::kWeightDescending: return "weight";
    case KernelOrdering::kBenefitDescending: return "benefit";
    case KernelOrdering::kCodeOrder: return "code";
    case KernelOrdering::kRandom: return "random";
  }
  return "?";
}

std::optional<KernelOrdering> parse_kernel_ordering(std::string_view name) {
  for (const KernelOrdering ordering : all_kernel_orderings()) {
    if (name == kernel_ordering_name(ordering)) return ordering;
  }
  return std::nullopt;
}

}  // namespace amdrel::core
