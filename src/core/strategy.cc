#include "core/strategy.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <random>

#include "support/error.h"

namespace amdrel::core {

StrategyResult GreedyPaperStrategy::run(const StrategyContext& ctx) {
  StrategyResult result;
  IncrementalSplit split(ctx.mapper, ctx.profile);
  SplitCost best_cost = split.cost();
  std::vector<ir::BlockId> best_moved;

  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (!kernel.cgc_eligible) continue;  // divisions stay on the FPGA
    result.engine_iterations++;

    split.move(kernel.block);
    const SplitCost cost = split.cost();

    if (ctx.options.skip_unprofitable && cost.total() > best_cost.total()) {
      split.unmove(kernel.block);
      continue;  // ablation mode only; the paper always commits the move
    }
    if (cost.total() < best_cost.total()) {
      best_cost = cost;
      best_moved = split.moved();
    }
    if (ctx.options.stop_when_met &&
        cost.total() <= ctx.timing_constraint) {
      best_cost = cost;
      best_moved = split.moved();
      break;
    }
  }
  result.moved = std::move(best_moved);
  result.cost = best_cost;
  return result;
}

StrategyResult ExhaustiveStrategy::run(const StrategyContext& ctx) {
  StrategyResult result;
  IncrementalSplit split(ctx.mapper, ctx.profile);
  const SplitCost all_fine = split.cost();

  // Candidates: the first eligible kernels in the analysis order (capped),
  // then sorted most-beneficial-first so the bound prunes early.
  struct Candidate {
    ir::BlockId block;
    std::int64_t delta;  ///< total-cycle change of moving the block
  };
  std::vector<Candidate> candidates;
  const auto cap =
      static_cast<std::size_t>(std::max(0, ctx.options.exhaustive_max_kernels));
  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (!kernel.cgc_eligible) continue;
    if (candidates.size() >= cap) break;
    split.move(kernel.block);
    const std::int64_t delta = split.cost().total() - all_fine.total();
    split.unmove(kernel.block);
    candidates.push_back({kernel.block, delta});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.delta < b.delta;
                   });

  const std::size_t n = candidates.size();
  // suffix_gain[i]: the best possible further reduction from position i on
  // (sum of the remaining negative deltas) — the admissible bound.
  std::vector<std::int64_t> suffix_gain(n + 1, 0);
  for (std::size_t i = n; i-- > 0;) {
    suffix_gain[i] =
        suffix_gain[i + 1] + std::min<std::int64_t>(0, candidates[i].delta);
  }

  std::vector<char> taken(n, 0);
  bool met_found = false;
  std::size_t met_moves = 0;
  SplitCost met_cost;
  std::vector<char> met_taken;
  SplitCost best_any = all_fine;
  std::vector<char> best_any_taken(n, 0);

  const std::function<void(std::size_t)> dfs = [&](std::size_t i) {
    result.engine_iterations++;
    const SplitCost cost = split.cost();
    if (cost.total() < best_any.total()) {
      best_any = cost;
      best_any_taken = taken;
    }
    if (cost.total() <= ctx.timing_constraint) {
      const std::size_t moves = split.moved_count();
      if (!met_found || moves < met_moves ||
          (moves == met_moves && cost.total() < met_cost.total())) {
        met_found = true;
        met_moves = moves;
        met_cost = cost;
        met_taken = taken;
      }
    }
    if (i == n) return;

    const std::int64_t optimistic = cost.total() + suffix_gain[i];
    const bool can_improve_any = optimistic < best_any.total();
    const bool can_improve_met =
        optimistic <= ctx.timing_constraint &&
        (!met_found || split.moved_count() + 1 <= met_moves);
    if (!can_improve_any && !can_improve_met) return;

    split.move(candidates[i].block);
    taken[i] = 1;
    dfs(i + 1);
    split.unmove(candidates[i].block);
    taken[i] = 0;
    dfs(i + 1);
  };
  dfs(0);

  const std::vector<char>& chosen = met_found ? met_taken : best_any_taken;
  result.cost = met_found ? met_cost : best_any;
  // Emit the moved blocks in the analysis (priority) order for readable
  // reports, independent of the internal search order.
  std::vector<char> is_chosen(static_cast<std::size_t>(
                                  ctx.mapper.cdfg().size()),
                              0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < chosen.size() && chosen[i]) is_chosen[candidates[i].block] = 1;
  }
  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (is_chosen[kernel.block]) result.moved.push_back(kernel.block);
  }
  return result;
}

StrategyResult AnnealingStrategy::run(const StrategyContext& ctx) {
  StrategyResult result;
  IncrementalSplit split(ctx.mapper, ctx.profile);

  std::vector<ir::BlockId> candidates;
  for (const analysis::KernelInfo& kernel : ctx.kernels) {
    if (kernel.cgc_eligible) candidates.push_back(kernel.block);
  }
  SplitCost best = split.cost();
  std::vector<char> best_state(candidates.size(), 0);
  result.cost = best;
  if (candidates.empty()) return result;

  std::mt19937_64 rng(ctx.options.random_seed);
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  const int iterations = std::max(1, ctx.options.anneal_iterations);
  // Hot enough that early uphill flips of the heaviest kernel are
  // plausible, cooling geometrically to ~1 cycle by the final step.
  double temperature =
      std::max(1.0, static_cast<double>(best.total()) * 0.05);
  const double cooling = std::pow(1.0 / temperature, 1.0 / iterations);

  std::vector<char> state(candidates.size(), 0);
  std::int64_t current = best.total();
  for (int step = 0; step < iterations; ++step) {
    result.engine_iterations++;
    const std::size_t i = pick(rng);
    const ir::BlockId block = candidates[i];
    if (state[i]) {
      split.unmove(block);
    } else {
      split.move(block);
    }
    const std::int64_t proposed = split.cost().total();
    const double delta = static_cast<double>(proposed - current);
    if (delta <= 0.0 || uniform(rng) < std::exp(-delta / temperature)) {
      state[i] ^= 1;
      current = proposed;
      if (proposed < best.total()) {
        best = split.cost();
        best_state = state;
      }
      if (ctx.options.stop_when_met &&
          current <= ctx.timing_constraint) {
        break;  // paper-flow semantics: stop once the constraint holds
      }
    } else {
      // Rejected: revert the flip.
      if (state[i]) {
        split.move(block);
      } else {
        split.unmove(block);
      }
    }
    temperature = std::max(1.0, temperature * cooling);
  }

  result.cost = best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (best_state[i]) result.moved.push_back(candidates[i]);
  }
  return result;
}

std::unique_ptr<PartitionStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kGreedyPaper:
      return std::make_unique<GreedyPaperStrategy>();
    case StrategyKind::kExhaustive:
      return std::make_unique<ExhaustiveStrategy>();
    case StrategyKind::kAnnealing:
      return std::make_unique<AnnealingStrategy>();
  }
  throw Error("make_strategy: unknown strategy kind");
}

const std::vector<StrategyKind>& all_strategies() {
  static const std::vector<StrategyKind> kinds = {
      StrategyKind::kGreedyPaper, StrategyKind::kExhaustive,
      StrategyKind::kAnnealing};
  return kinds;
}

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kGreedyPaper: return "greedy";
    case StrategyKind::kExhaustive: return "exhaustive";
    case StrategyKind::kAnnealing: return "annealing";
  }
  return "?";
}

std::optional<StrategyKind> parse_strategy(std::string_view name) {
  for (const StrategyKind kind : all_strategies()) {
    if (name == strategy_name(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<KernelOrdering>& all_kernel_orderings() {
  static const std::vector<KernelOrdering> orderings = {
      KernelOrdering::kWeightDescending, KernelOrdering::kBenefitDescending,
      KernelOrdering::kCodeOrder, KernelOrdering::kRandom};
  return orderings;
}

const char* kernel_ordering_name(KernelOrdering ordering) {
  switch (ordering) {
    case KernelOrdering::kWeightDescending: return "weight";
    case KernelOrdering::kBenefitDescending: return "benefit";
    case KernelOrdering::kCodeOrder: return "code";
    case KernelOrdering::kRandom: return "random";
  }
  return "?";
}

std::optional<KernelOrdering> parse_kernel_ordering(std::string_view name) {
  for (const KernelOrdering ordering : all_kernel_orderings()) {
    if (name == kernel_ordering_name(ordering)) return ordering;
  }
  return std::nullopt;
}

}  // namespace amdrel::core
