#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/methodology.h"
#include "core/strategy.h"

namespace amdrel::core {

/// The grid a design-space exploration sweeps: timing constraints x
/// partitioning strategies x kernel orderings, on one (cdfg, platform).
struct ExploreSpec {
  /// Timing constraints to sweep; empty defaults to 1/4, 1/2 and 3/4 of
  /// the app's all-fine-grain cycle count.
  std::vector<std::int64_t> constraints;
  std::vector<StrategyKind> strategies = all_strategies();
  std::vector<KernelOrdering> orderings = {KernelOrdering::kWeightDescending};
  /// Per-run options (seed, annealing budget, ...); strategy and ordering
  /// are overwritten per grid point.
  MethodologyOptions base;
  /// Worker threads; 0 picks the hardware concurrency. Results are
  /// identical for any thread count.
  int threads = 0;
};

/// One grid point of an exploration, with its methodology result.
struct ExplorePoint {
  std::int64_t constraint = 0;
  StrategyKind strategy = StrategyKind::kGreedyPaper;
  KernelOrdering ordering = KernelOrdering::kWeightDescending;
  PartitionReport report;
  bool on_pareto_front = false;
};

/// Exploration output: every grid point in deterministic grid order
/// (constraint-major, then strategy, then ordering) plus the Pareto front
/// over (final cycles, kernels moved) — both minimized, fewer moved
/// kernels meaning more of the application stays on the fine-grain
/// hardware.
struct ExploreSummary {
  std::vector<ExplorePoint> points;
  std::vector<std::size_t> pareto;  ///< indices into points, ascending
};

/// Sweeps the spec's grid across a thread pool. Each worker builds one
/// HybridMapper for the (cdfg, platform) pair and reuses it for every run
/// it picks up, so the per-point cost is the engine search, not
/// re-mapping every block. Deterministic: the output depends only on the
/// spec (not on thread scheduling).
ExploreSummary explore_design_space(const ir::Cdfg& cdfg,
                                    const ir::ProfileData& profile,
                                    const platform::Platform& platform,
                                    const ExploreSpec& spec);

/// Renders the summary as a fixed-width table (one row per grid point,
/// Pareto-front rows marked), for the CLI and the examples.
std::string describe(const ExploreSummary& summary);

}  // namespace amdrel::core
