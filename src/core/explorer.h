#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/fingerprint.h"
#include "core/methodology.h"
#include "core/strategy.h"

namespace amdrel::core {

class SweepCache;

/// The grid a design-space exploration sweeps: timing constraints x
/// partitioning strategies x kernel orderings, on one (cdfg, platform).
struct ExploreSpec {
  /// Timing constraints to sweep; empty defaults to 1/4, 1/2 and 3/4 of
  /// the app's all-fine-grain cycle count.
  std::vector<std::int64_t> constraints;
  /// Energy budgets (pJ) to sweep — the energy axis of the grid,
  /// consulted by kEnergy/kCombined objectives. Empty sweeps the single
  /// budget already in base.energy_budget_pj, so timing-only specs are
  /// unchanged.
  std::vector<double> energy_budgets;
  std::vector<StrategyKind> strategies = all_strategies();
  std::vector<KernelOrdering> orderings = {KernelOrdering::kWeightDescending};
  /// Per-run options (seed, annealing budget, ...); strategy and ordering
  /// are overwritten per grid point.
  MethodologyOptions base;
  /// Worker threads; 0 picks the hardware concurrency. Results are
  /// identical for any thread count.
  int threads = 0;
  /// Optional content-addressed memoization store (core/sweep_cache.h).
  /// Repeated grid points hit whole cached cell results and repeated
  /// (cdfg, platform) pairs restore mapper snapshots instead of
  /// re-mapping. Null runs uncached; results are identical either way.
  SweepCache* cache = nullptr;
};

/// One grid point of an exploration, with its methodology result.
struct ExplorePoint {
  std::int64_t constraint = 0;
  double energy_budget_pj = 0;
  StrategyKind strategy = StrategyKind::kGreedyPaper;
  KernelOrdering ordering = KernelOrdering::kWeightDescending;
  PartitionReport report;
  bool on_pareto_front = false;
};

/// Exploration output: every grid point in deterministic grid order
/// (constraint-major, then energy budget, strategy, ordering) plus the
/// Pareto front over (final cycles, kernels moved, energy pJ) — all
/// minimized, fewer moved kernels meaning more of the application stays
/// on the fine-grain hardware.
struct ExploreSummary {
  std::vector<ExplorePoint> points;
  std::vector<std::size_t> pareto;  ///< indices into points, ascending
};

/// Sweeps the spec's grid across a thread pool. Each worker builds one
/// HybridMapper for the (cdfg, platform) pair and reuses it for every run
/// it picks up, so the per-point cost is the engine search, not
/// re-mapping every block. Deterministic: the output depends only on the
/// spec (not on thread scheduling).
ExploreSummary explore_design_space(const ir::Cdfg& cdfg,
                                    const ir::ProfileData& profile,
                                    const platform::Platform& platform,
                                    const ExploreSpec& spec);

/// Renders the summary as a fixed-width table (one row per grid point,
/// Pareto-front rows marked), for the CLI and the examples.
std::string describe(const ExploreSummary& summary);

// ---------------------------------------------------------------------------
// Platform-grid x corpus sweeps: the "what platform should we build, and
// for which applications" question. Where explore_design_space sweeps the
// engine's knobs on one (app, platform), sweep_design_space crosses a
// grid of platform instances with a corpus of applications.
// ---------------------------------------------------------------------------

/// The platform axes of a sweep: every (A_FPGA, CGC count) pair of the
/// cross product is instantiated with make_paper_platform. Order is
/// area-major, matching the paper's Table 2/3 column order.
struct PlatformGrid {
  std::vector<double> areas = {1500};
  std::vector<int> cgc_counts = {2};
  std::size_t size() const { return areas.size() * cgc_counts.size(); }
};

/// Parses the CLI grid spec "a1,a2,...xc1,c2,..." (areas, an 'x', CGC
/// counts — e.g. "1500,5000x2,3"). Returns nullopt for anything
/// malformed: missing/extra 'x', empty lists, non-numeric items,
/// non-positive or non-finite areas, CGC counts outside [1, 1024].
std::optional<PlatformGrid> parse_platform_grid(std::string_view spec);

/// One application of a sweep corpus: a profiled CDFG plus the name used
/// in reports and machine-readable output.
struct CorpusApp {
  std::string name;
  ir::Cdfg cdfg{"app"};
  ir::ProfileData profile;
};

/// The full sweep grid: platform axes crossed with the engine axes of
/// ExploreSpec, applied to every corpus app.
struct SweepSpec {
  PlatformGrid grid;
  /// Timing constraints; empty sweeps 1/4, 1/2 and 3/4 of each
  /// (app, platform) cell's all-fine-grain cycle count, exactly like
  /// ExploreSpec (the fractions adapt to the app's scale, so one spec
  /// serves OFDM's 10^5 cycles and JPEG's 10^7 alike).
  std::vector<std::int64_t> constraints;
  /// Energy budgets (pJ); empty sweeps the single budget in
  /// base.energy_budget_pj. See ExploreSpec::energy_budgets.
  std::vector<double> energy_budgets;
  std::vector<StrategyKind> strategies = all_strategies();
  std::vector<KernelOrdering> orderings = {KernelOrdering::kWeightDescending};
  MethodologyOptions base;
  /// Worker threads; 0 picks the hardware concurrency. Results are
  /// identical for any thread count.
  int threads = 0;
  /// Optional content-addressed memoization store shared with
  /// ExploreSpec::cache; see there. Null runs uncached.
  SweepCache* cache = nullptr;
};

/// One cell of a sweep: an (app, platform, constraint, energy budget,
/// strategy, ordering) coordinate with its methodology result.
struct SweepCell {
  std::size_t app = 0;  ///< index into SweepSummary::apps
  double a_fpga = 0;
  int cgcs = 0;
  double platform_cost = 0;  ///< platform::platform_cost of the cell
  std::int64_t constraint = 0;
  double energy_budget_pj = 0;
  StrategyKind strategy = StrategyKind::kGreedyPaper;
  KernelOrdering ordering = KernelOrdering::kWeightDescending;
  PartitionReport report;
  std::vector<std::string> moved_names;  ///< report.moved as block names
  bool on_app_pareto = false;
  bool on_global_pareto = false;
};

/// Sweep output. Cells are in deterministic grid order: app-major, then
/// area, CGC count, constraint, energy budget, strategy, ordering. Two
/// kinds of Pareto front over (final cycles, kernels moved, platform
/// cost, energy pJ), all minimized: one per app (cells of that app only)
/// and one merged global front over every cell.
struct SweepSummary {
  std::vector<std::string> apps;
  std::vector<SweepCell> cells;
  std::vector<std::vector<std::size_t>> app_pareto;  ///< [app] -> cell indices
  std::vector<std::size_t> global_pareto;            ///< cell indices, ascending
};

/// Worker threads a sweep or exploration actually runs for `jobs`
/// independent work units: `requested` (0 = the hardware concurrency)
/// clamped to [1, jobs]. Shared by the explorer and the CLI's reporting.
int worker_count(std::size_t jobs, int requested);

/// Runs the whole grid x corpus sweep on a thread pool. Work is sharded
/// by (app, platform) cell group: a worker claims one group, builds one
/// HybridMapper for that (cdfg, platform) pair and reuses it across every
/// (constraint, strategy, ordering) cell of the group — each cell
/// identical to a standalone explore_design_space / run_methodology call.
/// Deterministic: output depends only on (corpus, spec), never on thread
/// scheduling.
SweepSummary sweep_design_space(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec);

// ---------------------------------------------------------------------------
// Building blocks of sweep_design_space, exported so the distributed
// sweep service (core/sweep_service.h) runs workers and coordinator
// through the EXACT code path of a single-process sweep — that identity,
// not a parallel re-implementation, is what makes the distributed output
// byte-identical by construction.
// ---------------------------------------------------------------------------

/// Slot CAPACITY of one (app, platform) shard: constraint slots (3 when
/// spec.constraints is empty — the default quarter-point fractions) x
/// energy budgets x strategies x orderings. A shard may FILL fewer when
/// default fractions collapse on a tiny app; see compute_sweep_shard.
std::size_t sweep_cells_per_shard(const SweepSpec& spec);

/// Number of (app, platform) shards: corpus size x grid size. Shard s is
/// app s / grid.size(), platform s % grid.size() — the deterministic
/// index the sweep service partitions across workers.
std::size_t sweep_shard_count(const std::vector<CorpusApp>& corpus,
                              const SweepSpec& spec);

/// The argument checks sweep_design_space performs (non-empty corpus,
/// grid and strategy/ordering axes; unique app names). Throws Error.
void validate_sweep_inputs(const std::vector<CorpusApp>& corpus,
                           const SweepSpec& spec);

/// App fingerprints, one per corpus app (shared by every platform cell
/// of an app, so computed once, not per shard). Only meaningful with a
/// cache; pass the empty vector when spec.cache is null.
std::vector<Fingerprint> sweep_app_fingerprints(
    const std::vector<CorpusApp>& corpus);

/// Computes ONE shard's cell group into slots[0 .. cells_per_shard), the
/// work a sweep worker thread performs for one claimed shard: builds (or
/// cache-restores) the shard's HybridMapper lazily, resolves the
/// constraint axis, prices the grid one (strategy, ordering) walk at a
/// time, and publishes cells/mapper snapshots to spec.cache when set.
/// Returns the number of slots actually filled (the contiguous prefix;
/// fewer than capacity only when default constraints collapsed).
/// app_fps must be sweep_app_fingerprints(corpus) when spec.cache is
/// set, and is ignored otherwise.
std::size_t compute_sweep_shard(const std::vector<CorpusApp>& corpus,
                                const SweepSpec& spec,
                                const std::vector<Fingerprint>& app_fps,
                                std::size_t shard, SweepCell* slots);

/// The post-compute half of sweep_design_space: compacts away unused
/// tail slots (summary.cells must hold shard_used.size() x
/// cells_per_shard slots in shard order) and computes the per-app and
/// global Pareto fronts. The coordinator runs this over worker-streamed
/// cells; byte-identity follows because fronts are derived here, never
/// transmitted.
void finalize_sweep_summary(SweepSummary& summary,
                            const std::vector<std::size_t>& shard_used,
                            std::size_t cells_per_shard);

/// Renders the sweep as a fixed-width table: one row per cell, per-app
/// Pareto cells marked "*", cells also on the merged global front "**".
std::string describe(const SweepSummary& summary);

}  // namespace amdrel::core
