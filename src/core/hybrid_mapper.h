#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coarsegrain/cgc_mapper.h"
#include "core/objective.h"
#include "finegrain/fpga_mapper.h"
#include "ir/cdfg.h"
#include "ir/packed_graph.h"
#include "ir/profile.h"
#include "platform/platform.h"
#include "support/bitset.h"

namespace amdrel::core {

class CostModel;

/// Cost of one fine/coarse split of the application: the three terms of
/// the paper's equation (2), all in FPGA clock cycles, plus the
/// configuration-load charge the reconfiguration-aware CostModel adds on
/// top of the paper's additive pricing. t_reconfig is 0 under the
/// additive model, so total() — and every golden derived from it — is
/// unchanged when reconfiguration pricing is off.
struct SplitCost {
  std::int64_t t_fpga = 0;
  std::int64_t t_coarse = 0;
  std::int64_t t_comm = 0;
  std::int64_t t_reconfig = 0;
  std::int64_t total() const {
    return t_fpga + t_coarse + t_comm + t_reconfig;
  }
};

/// Snapshot of a HybridMapper's computed mappings, detached from the
/// (cdfg, platform) it was derived from. The sweep cache memoizes these
/// per (app, platform) fingerprint so repeated cell groups restore the
/// expensive fine-grain temporal partitioning in O(blocks) copies
/// instead of recomputing it — and persists them to the cache file
/// (schema v3, "mapper" lines), so even a fresh PROCESS with new
/// constraints restores instead of re-mapping. Coarse mappings are
/// dense, indexed by block id; unscheduled blocks hold an empty
/// optional.
struct MapperState {
  std::vector<finegrain::FpgaBlockMapping> fine;
  std::vector<std::optional<coarsegrain::CgcBlockMapping>> coarse;
};

/// Caches the fine-grain and coarse-grain mappings of every basic block of
/// one application on one platform, and prices arbitrary splits. The
/// partitioning engine re-evaluates the split after every kernel movement
/// (paper section 3.4); caching keeps that loop cheap and deterministic.
///
/// Construction also builds a PackedCdfg view of the application and
/// flattens every per-block quantity the engine hot paths need —
/// fine-grain invocation cycles, amortized reconfiguration charges,
/// communication cycles, CGC eligibility — into dense arrays indexed by
/// block id, so split pricing never walks IR nodes or searches a map.
class HybridMapper {
 public:
  HybridMapper(const ir::Cdfg& cdfg, const platform::Platform& platform);

  /// Restores a mapper from a state() snapshot taken for the SAME
  /// (cdfg, platform) content — the caller vouches via the snapshot's
  /// cache key; the block count and every block's per-node vector
  /// shapes are re-checked here (snapshots persist on disk since cache
  /// schema v3, so shape errors must fail loudly, not index out of
  /// bounds). Skips the per-block fine-grain mapping entirely, so
  /// construction is a copy.
  HybridMapper(const ir::Cdfg& cdfg, const platform::Platform& platform,
               const MapperState& state);

  /// Copies out every computed mapping (fine mappings are complete after
  /// construction; coarse ones cover the blocks scheduled so far).
  MapperState state() const { return {fine_, coarse_}; }

  const ir::Cdfg& cdfg() const { return *cdfg_; }
  const platform::Platform& platform() const { return *platform_; }

  /// The packed, structure-of-arrays view of the application built at
  /// construction; the engine's zero-allocation traversal substrate.
  const ir::PackedCdfg& packed() const { return packed_; }

  const finegrain::FpgaBlockMapping& fine(ir::BlockId block) const;

  /// Lazily schedules `block` on the CGC data-path. Throws Error for
  /// blocks the CGC cannot execute (divisions).
  const coarsegrain::CgcBlockMapping& coarse(ir::BlockId block);

  bool cgc_eligible(ir::BlockId block) const;

  std::int64_t fine_cycles_per_invocation(ir::BlockId block) const;
  std::int64_t coarse_cycles_per_invocation(ir::BlockId block);

  /// Data moved between the two hardware types through the shared memory
  /// when `block` runs on the CGC: its live-ins and live-outs, per
  /// invocation (the t_comm contribution).
  std::int64_t comm_cycles_per_invocation(ir::BlockId block) const;

  /// The block's whole contribution to equation (4): invocation cycles
  /// times execution count plus its amortized reconfiguration charge.
  /// all_fine_cycles() is exactly the sum of this over every block, which
  /// is what makes O(1) split deltas exact.
  std::int64_t fine_contribution_cycles(ir::BlockId block,
                                        const ir::ProfileData& profile) const;

  /// Cycles saved by running `block` on the CGC for `exec_freq`
  /// invocations (fine minus coarse minus communication). The shared
  /// benefit model behind kBenefitDescending ordering and the search
  /// strategies' candidate ranking; zero for CGC-ineligible blocks.
  std::int64_t move_benefit_cycles(ir::BlockId block, std::uint64_t exec_freq);

  /// Prices the split where `moved` blocks run on the CGC data-path and
  /// everything else on the fine-grain hardware (equations (2)-(4)).
  SplitCost evaluate(const ir::ProfileData& profile,
                     const std::vector<ir::BlockId>& moved);

  /// Cycles of the all-fine-grain solution (paper step 2).
  std::int64_t all_fine_cycles(const ir::ProfileData& profile) const;

 private:
  void build_block_tables();

  const ir::Cdfg* cdfg_;
  const platform::Platform* platform_;
  ir::PackedCdfg packed_;
  std::vector<finegrain::FpgaBlockMapping> fine_;
  std::vector<std::optional<coarsegrain::CgcBlockMapping>> coarse_;

  // Dense per-block tables flattened at construction (block-id indexed).
  std::vector<std::int64_t> fine_inv_cycles_;   ///< cycles_per_invocation
  std::vector<std::int64_t> amortized_charge_;  ///< amortized reconfig cycles
  std::vector<std::int64_t> comm_inv_cycles_;   ///< live words * transfer cost
  std::vector<std::int64_t> coarse_inv_cycles_;  ///< memo; -1 = unscheduled
  std::vector<std::uint8_t> eligible_;
};

/// Incrementally-priced fine/coarse split. Starts at the all-fine-grain
/// solution and applies O(1) cost deltas on every move()/unmove(), so an
/// engine loop pays O(blocks) once at construction instead of per
/// candidate. cost() is bit-identical to HybridMapper::evaluate() on the
/// same moved set (all terms are integer and per-block additive).
///
/// The split state is a SmallBitset over block ids plus a movement-order
/// list; every per-block term (execution count, fine contribution,
/// communication cycles, lazily-resolved coarse cycles, energy) is
/// flattened into a dense array at construction, so move()/unmove() are
/// a handful of array reads and integer adds.
///
/// Constructed with a CostObjective that needs_energy(), the split also
/// tracks an EnergyBreakdown with the same O(1) per-move deltas: every
/// block's fine- and coarse-side contributions are priced once up front
/// (core/energy.h block_energy) and added/subtracted on movement. The
/// energy terms are per-block additive like the cycle terms, so the
/// incremental total equals a full estimate_energy repricing up to
/// floating-point summation order (within ulps; the property tests pin
/// this). Final reports always reprice via estimate_energy, so emitted
/// numbers are byte-deterministic regardless of the search path.
class IncrementalSplit {
 public:
  IncrementalSplit(HybridMapper& mapper, const ir::ProfileData& profile);

  /// Energy-aware split: tracks the breakdown when
  /// objective.needs_energy(). The objective must outlive the split.
  IncrementalSplit(HybridMapper& mapper, const ir::ProfileData& profile,
                   const CostObjective& objective);

  /// Cost-model-aware split: additionally maintains cost().t_reconfig
  /// under the given pricing model (nullptr or a non-reconfiguring model
  /// is the additive fast path — no repricing work at all). The model
  /// must outlive the split. The reconfiguration charge is NOT per-block
  /// additive (region residency couples moved blocks), so each
  /// move/unmove exactly reprices the charge over the moved-set window:
  /// the per-block load*iterations sum stays incremental and only the
  /// top-R residency discount is recomputed, O(|moved| log |moved|). A
  /// property test pins the result against CostModel::reconfig_cycles'
  /// from-scratch evaluation under random move/unmove churn.
  IncrementalSplit(HybridMapper& mapper, const ir::ProfileData& profile,
                   const CostObjective& objective,
                   const CostModel* cost_model);

  const SplitCost& cost() const { return cost_; }

  /// Running energy of the split; all-zero unless energy tracking was
  /// requested at construction.
  const EnergyBreakdown& energy() const { return energy_; }

  /// The scalar the construction objective minimizes for the current
  /// split (timing objective when constructed without one).
  double objective_value() const {
    return objective_->value(cost_.total(), energy_.total_pj());
  }

  /// The construction objective's constraint test on the current split.
  bool meets(std::int64_t timing_constraint, double energy_budget_pj) const {
    return objective_->met(cost_.total(), energy_.total_pj(),
                           timing_constraint, energy_budget_pj);
  }
  bool is_moved(ir::BlockId block) const;
  std::size_t moved_count() const { return order_.size(); }

  /// The moved blocks. Movement order is preserved as long as unmove()
  /// always targets the most recent move (the greedy engine's pattern);
  /// an unmove from the middle swaps the last entry into the gap, which
  /// keeps both operations O(1) for the annealing walk.
  const std::vector<ir::BlockId>& moved() const { return order_; }

  /// Reassigns `block` to the CGC data-path. Throws Error when the block
  /// is already moved or cannot execute on the CGC.
  void move(ir::BlockId block);

  /// Returns `block` to the fine-grain hardware. Throws Error when the
  /// block is not currently moved.
  void unmove(ir::BlockId block);

 private:
  std::int64_t coarse_total_cycles(ir::BlockId block);

  /// Recomputes the residency discount over the moved set and refreshes
  /// cost_.t_reconfig. Only called when the model prices reconfiguration.
  void reprice_reconfig();

  HybridMapper* mapper_;
  const ir::ProfileData* profile_;
  const CostObjective* objective_;  ///< never null (default: timing)
  const CostModel* cost_model_ = nullptr;  ///< null = additive pricing
  SplitCost cost_;
  EnergyBreakdown energy_;
  std::vector<BlockEnergy> block_energy_;  ///< per block; empty when untracked

  // Dense per-block pricing tables, built once at construction.
  std::vector<std::int64_t> iters_;         ///< profile execution counts
  std::vector<std::int64_t> fine_contrib_;  ///< equation (4) contribution
  std::vector<std::int64_t> comm_total_;    ///< comm cycles * iterations
  std::vector<std::int64_t> coarse_total_;  ///< memo; -1 = not yet priced

  // Reconfiguration pricing tables, built only when cost_model_ prices
  // reconfiguration (all empty on the additive fast path).
  std::vector<std::int64_t> reconfig_load_;    ///< load cycles per block
  std::vector<std::int64_t> reconfig_saving_;  ///< load * (iterations - 1)
  std::int64_t reconfig_sum_ = 0;  ///< sum of load * iterations over moved
  std::vector<std::int64_t> reconfig_scratch_;  ///< top-R selection buffer

  SmallBitset moved_;                 ///< membership, block-id indexed
  std::vector<std::int32_t> pos_;     ///< position in order_; -1 = fine
  std::vector<ir::BlockId> order_;
};

}  // namespace amdrel::core
