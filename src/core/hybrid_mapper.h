#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "coarsegrain/cgc_mapper.h"
#include "finegrain/fpga_mapper.h"
#include "ir/cdfg.h"
#include "ir/profile.h"
#include "platform/platform.h"

namespace amdrel::core {

/// Cost of one fine/coarse split of the application: the three terms of
/// the paper's equation (2), all in FPGA clock cycles.
struct SplitCost {
  std::int64_t t_fpga = 0;
  std::int64_t t_coarse = 0;
  std::int64_t t_comm = 0;
  std::int64_t total() const { return t_fpga + t_coarse + t_comm; }
};

/// Caches the fine-grain and coarse-grain mappings of every basic block of
/// one application on one platform, and prices arbitrary splits. The
/// partitioning engine re-evaluates the split after every kernel movement
/// (paper section 3.4); caching keeps that loop cheap and deterministic.
class HybridMapper {
 public:
  HybridMapper(const ir::Cdfg& cdfg, const platform::Platform& platform);

  const ir::Cdfg& cdfg() const { return *cdfg_; }
  const platform::Platform& platform() const { return *platform_; }

  const finegrain::FpgaBlockMapping& fine(ir::BlockId block) const;

  /// Lazily schedules `block` on the CGC data-path. Throws Error for
  /// blocks the CGC cannot execute (divisions).
  const coarsegrain::CgcBlockMapping& coarse(ir::BlockId block);

  bool cgc_eligible(ir::BlockId block) const;

  std::int64_t fine_cycles_per_invocation(ir::BlockId block) const;
  std::int64_t coarse_cycles_per_invocation(ir::BlockId block);

  /// Data moved between the two hardware types through the shared memory
  /// when `block` runs on the CGC: its live-ins and live-outs, per
  /// invocation (the t_comm contribution).
  std::int64_t comm_cycles_per_invocation(ir::BlockId block) const;

  /// Prices the split where `moved` blocks run on the CGC data-path and
  /// everything else on the fine-grain hardware (equations (2)-(4)).
  SplitCost evaluate(const ir::ProfileData& profile,
                     const std::vector<ir::BlockId>& moved);

  /// Cycles of the all-fine-grain solution (paper step 2).
  std::int64_t all_fine_cycles(const ir::ProfileData& profile) const;

 private:
  const ir::Cdfg* cdfg_;
  const platform::Platform* platform_;
  std::vector<finegrain::FpgaBlockMapping> fine_;
  std::map<ir::BlockId, coarsegrain::CgcBlockMapping> coarse_;
};

}  // namespace amdrel::core
