#include "core/objective.h"

#include "support/error.h"

namespace amdrel::core {

double CostObjective::value(std::int64_t total_cycles,
                            double energy_pj) const {
  switch (kind) {
    case ObjectiveKind::kTiming:
      return static_cast<double>(total_cycles);
    case ObjectiveKind::kEnergy:
      return energy_pj;
    case ObjectiveKind::kCombined:
      return cycle_weight * static_cast<double>(total_cycles) +
             energy_weight * energy_pj;
  }
  throw Error("CostObjective::value: unknown objective kind");
}

bool CostObjective::met(std::int64_t total_cycles, double energy_pj,
                        std::int64_t timing_constraint,
                        double energy_budget_pj) const {
  switch (kind) {
    case ObjectiveKind::kTiming:
      return total_cycles <= timing_constraint;
    case ObjectiveKind::kEnergy:
      return energy_pj <= energy_budget_pj;
    case ObjectiveKind::kCombined:
      return total_cycles <= timing_constraint &&
             energy_pj <= energy_budget_pj;
  }
  throw Error("CostObjective::met: unknown objective kind");
}

const std::vector<ObjectiveKind>& all_objectives() {
  static const std::vector<ObjectiveKind> kinds = {
      ObjectiveKind::kTiming, ObjectiveKind::kEnergy,
      ObjectiveKind::kCombined};
  return kinds;
}

const char* objective_name(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kTiming: return "timing";
    case ObjectiveKind::kEnergy: return "energy";
    case ObjectiveKind::kCombined: return "combined";
  }
  return "?";
}

std::optional<ObjectiveKind> parse_objective(std::string_view name) {
  for (const ObjectiveKind kind : all_objectives()) {
    if (name == objective_name(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace amdrel::core
