#include "core/cost_model.h"

#include <algorithm>
#include <functional>

namespace amdrel::core {

std::int64_t CostModel::reconfig_cycles(
    const HybridMapper& mapper, const ir::ProfileData& profile,
    const std::vector<ir::BlockId>& moved) const {
  if (!prices_reconfiguration() || moved.empty()) return 0;
  std::int64_t total = 0;
  std::vector<std::int64_t> savings;
  savings.reserve(moved.size());
  for (const ir::BlockId block : moved) {
    const std::int64_t load =
        load_cycles(mapper.packed().node_count(block));
    const std::int64_t w = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(profile.count(block)));
    total += load * w;
    savings.push_back(load * (w - 1));
  }
  const std::size_t resident = std::min<std::size_t>(
      savings.size(), static_cast<std::size_t>(resident_regions()));
  std::partial_sort(savings.begin(),
                    savings.begin() + static_cast<std::ptrdiff_t>(resident),
                    savings.end(), std::greater<std::int64_t>());
  for (std::size_t i = 0; i < resident; ++i) total -= savings[i];
  return total;
}

std::int64_t CostModel::moved_units(const HybridMapper& mapper,
                                    const std::vector<ir::BlockId>& moved) {
  std::int64_t units = 0;
  for (const ir::BlockId block : moved) {
    units += mapper.packed().node_count(block);
  }
  return units;
}

ReconfigCostModel::ReconfigCostModel(const platform::ReconfigModel& model,
                                     int default_regions)
    : model_(model),
      regions_(model.regions > 0 ? model.regions
                                 : std::max(1, default_regions)) {}

std::unique_ptr<CostModel> make_cost_model(
    const ObjectiveSpec& spec, const platform::Platform& platform) {
  if (spec.reconfig.enabled()) {
    return std::make_unique<ReconfigCostModel>(spec.reconfig,
                                               platform.cgc.count);
  }
  return std::make_unique<AdditiveCostModel>();
}

}  // namespace amdrel::core
