#include "core/hybrid_mapper.h"

#include <algorithm>
#include <functional>

#include "core/cost_model.h"
#include "core/energy.h"
#include "support/error.h"
#include "support/strings.h"

namespace amdrel::core {

void HybridMapper::build_block_tables() {
  const auto blocks = static_cast<std::size_t>(cdfg_->size());
  fine_inv_cycles_.resize(blocks);
  amortized_charge_.resize(blocks);
  comm_inv_cycles_.resize(blocks);
  eligible_.resize(blocks);
  coarse_inv_cycles_.assign(blocks, -1);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto id = static_cast<ir::BlockId>(b);
    fine_inv_cycles_[b] = fine_[b].cycles_per_invocation(platform_->fpga);
    amortized_charge_[b] =
        fine_[b].amortized_reconfigs * platform_->fpga.reconfig_cycles;
    const std::int64_t words =
        packed_.live_in_count(id) + packed_.live_out_count(id);
    comm_inv_cycles_[b] = words * platform_->memory.transfer_cycles_per_word;
    eligible_[b] = packed_.has_division(id) ? 0 : 1;
    if (coarse_.size() > b && coarse_[b].has_value()) {
      coarse_inv_cycles_[b] = coarse_[b]->cycles_per_invocation_fpga;
    }
  }
}

HybridMapper::HybridMapper(const ir::Cdfg& cdfg,
                           const platform::Platform& platform)
    : cdfg_(&cdfg), platform_(&platform), packed_(cdfg) {
  platform::validate_platform(platform);
  fine_ = finegrain::map_cdfg_to_fpga(cdfg, platform.fpga, platform.memory);
  coarse_.resize(static_cast<std::size_t>(cdfg.size()));
  build_block_tables();
}

HybridMapper::HybridMapper(const ir::Cdfg& cdfg,
                           const platform::Platform& platform,
                           const MapperState& state)
    : cdfg_(&cdfg),
      platform_(&platform),
      packed_(cdfg),
      fine_(state.fine),
      coarse_(state.coarse) {
  platform::validate_platform(platform);
  require(static_cast<ir::BlockId>(fine_.size()) == cdfg.size(),
          cat("HybridMapper: snapshot covers ", fine_.size(),
              " blocks but the CDFG has ", cdfg.size()));
  require(coarse_.size() <= fine_.size(),
          cat("HybridMapper: snapshot holds ", coarse_.size(),
              " coarse mappings for ", fine_.size(), " blocks"));
  // Snapshots persist on disk since cache schema v3, so the block-count
  // vouch above is no longer enough: a snapshot keyed correctly but
  // edited (or decoded from a corrupted line that slipped every other
  // check) could still carry per-node vectors of the wrong shape, which
  // the engine would index out of bounds.
  for (std::size_t b = 0; b < fine_.size(); ++b) {
    const ir::BasicBlock& bb = cdfg.block(static_cast<ir::BlockId>(b));
    require(static_cast<ir::NodeId>(fine_[b].partitioning.partition_of
                                        .size()) == bb.dfg.size(),
            cat("HybridMapper: snapshot partitioning of block ", b,
                " covers ", fine_[b].partitioning.partition_of.size(),
                " nodes but the block has ", bb.dfg.size()));
  }
  coarse_.resize(static_cast<std::size_t>(cdfg.size()));
  build_block_tables();
}

const finegrain::FpgaBlockMapping& HybridMapper::fine(
    ir::BlockId block) const {
  if (block < 0 || block >= static_cast<ir::BlockId>(fine_.size())) {
    fail(cat("HybridMapper::fine: bad block ", block));
  }
  return fine_[block];
}

const coarsegrain::CgcBlockMapping& HybridMapper::coarse(ir::BlockId block) {
  std::optional<coarsegrain::CgcBlockMapping>& slot =
      coarse_[static_cast<std::size_t>(block)];
  if (!slot.has_value()) {
    const ir::BasicBlock& bb = cdfg_->block(block);
    slot = coarsegrain::map_block_to_cgc(bb.dfg, *platform_);
    coarse_inv_cycles_[static_cast<std::size_t>(block)] =
        slot->cycles_per_invocation_fpga;
  }
  return *slot;
}

bool HybridMapper::cgc_eligible(ir::BlockId block) const {
  return eligible_[static_cast<std::size_t>(block)] != 0;
}

std::int64_t HybridMapper::fine_cycles_per_invocation(
    ir::BlockId block) const {
  if (block < 0 || block >= static_cast<ir::BlockId>(fine_.size())) {
    fail(cat("HybridMapper::fine: bad block ", block));
  }
  return fine_inv_cycles_[static_cast<std::size_t>(block)];
}

std::int64_t HybridMapper::coarse_cycles_per_invocation(ir::BlockId block) {
  const std::int64_t memo =
      coarse_inv_cycles_[static_cast<std::size_t>(block)];
  if (memo >= 0) return memo;
  return coarse(block).cycles_per_invocation_fpga;
}

std::int64_t HybridMapper::comm_cycles_per_invocation(
    ir::BlockId block) const {
  return comm_inv_cycles_[static_cast<std::size_t>(block)];
}

std::int64_t HybridMapper::fine_contribution_cycles(
    ir::BlockId block, const ir::ProfileData& profile) const {
  if (block < 0 || block >= static_cast<ir::BlockId>(fine_.size())) {
    fail(cat("HybridMapper::fine: bad block ", block));
  }
  const auto b = static_cast<std::size_t>(block);
  const auto iterations = static_cast<std::int64_t>(profile.count(block));
  return fine_inv_cycles_[b] * iterations + amortized_charge_[b];
}

std::int64_t HybridMapper::move_benefit_cycles(ir::BlockId block,
                                               std::uint64_t exec_freq) {
  if (!cgc_eligible(block)) return 0;
  return (fine_cycles_per_invocation(block) -
          coarse_cycles_per_invocation(block) -
          comm_cycles_per_invocation(block)) *
         static_cast<std::int64_t>(exec_freq);
}

SplitCost HybridMapper::evaluate(const ir::ProfileData& profile,
                                 const std::vector<ir::BlockId>& moved) {
  SplitCost cost;
  std::vector<bool> stays_fine(cdfg_->size(), true);
  for (ir::BlockId block : moved) {
    if (block < 0 || block >= cdfg_->size()) {
      fail(cat("HybridMapper::evaluate: bad moved block ", block));
    }
    if (!stays_fine[block]) {
      fail(cat("HybridMapper::evaluate: block ", block, " moved twice"));
    }
    stays_fine[block] = false;
  }
  cost.t_fpga =
      finegrain::fpga_total_cycles(fine_, profile, platform_->fpga,
                                   &stays_fine);
  for (ir::BlockId block : moved) {
    const auto iterations = static_cast<std::int64_t>(profile.count(block));
    cost.t_coarse += coarse_cycles_per_invocation(block) * iterations;
    cost.t_comm += comm_cycles_per_invocation(block) * iterations;
  }
  return cost;
}

std::int64_t HybridMapper::all_fine_cycles(
    const ir::ProfileData& profile) const {
  return finegrain::fpga_total_cycles(fine_, profile, platform_->fpga);
}

namespace {

const CostObjective& timing_objective() {
  static const CostObjective objective;  // default-constructed = kTiming
  return objective;
}

}  // namespace

IncrementalSplit::IncrementalSplit(HybridMapper& mapper,
                                   const ir::ProfileData& profile)
    : IncrementalSplit(mapper, profile, timing_objective()) {}

IncrementalSplit::IncrementalSplit(HybridMapper& mapper,
                                   const ir::ProfileData& profile,
                                   const CostObjective& objective,
                                   const CostModel* cost_model)
    : IncrementalSplit(mapper, profile, objective) {
  if (cost_model == nullptr || !cost_model->prices_reconfiguration()) return;
  cost_model_ = cost_model;
  const ir::PackedCdfg& packed = mapper.packed();
  const auto blocks = static_cast<std::size_t>(mapper.cdfg().size());
  reconfig_load_.resize(blocks);
  reconfig_saving_.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto id = static_cast<ir::BlockId>(b);
    const std::int64_t load = cost_model->load_cycles(packed.node_count(id));
    const std::int64_t w = std::max<std::int64_t>(1, iters_[b]);
    reconfig_load_[b] = load;
    reconfig_saving_[b] = load * (w - 1);
  }
}

IncrementalSplit::IncrementalSplit(HybridMapper& mapper,
                                   const ir::ProfileData& profile,
                                   const CostObjective& objective)
    : mapper_(&mapper),
      profile_(&profile),
      objective_(&objective),
      moved_(static_cast<std::size_t>(mapper.cdfg().size())),
      pos_(static_cast<std::size_t>(mapper.cdfg().size()), -1) {
  const auto blocks = static_cast<std::size_t>(mapper.cdfg().size());
  iters_.resize(blocks);
  fine_contrib_.resize(blocks);
  comm_total_.resize(blocks);
  coarse_total_.assign(blocks, -1);
  // One pricing pass per construction: the all-fine t_fpga accumulates
  // each block's cycles * iterations followed by its amortized charge,
  // the same per-block integer adds as fpga_total_cycles, so the sum is
  // bit-identical to mapper.all_fine_cycles(profile).
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto id = static_cast<ir::BlockId>(b);
    iters_[b] = static_cast<std::int64_t>(profile.count(id));
    fine_contrib_[b] =
        mapper.fine_cycles_per_invocation(id) * iters_[b] +
        mapper.fine(id).amortized_reconfigs *
            mapper.platform().fpga.reconfig_cycles;
    comm_total_[b] = mapper.comm_cycles_per_invocation(id) * iters_[b];
    cost_.t_fpga += fine_contrib_[b];
  }
  if (!objective.needs_energy()) return;
  // Price every block once; the all-fine starting breakdown accumulates
  // the fine-side terms in block order, matching estimate_energy({}).
  const ir::PackedCdfg& packed = mapper.packed();
  block_energy_.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto id = static_cast<ir::BlockId>(b);
    block_energy_.push_back(block_energy(
        packed.op_mix(id),
        packed.live_in_count(id) + packed.live_out_count(id),
        mapper.fine(id), profile.count(id), objective.energy));
    const BlockEnergy& be = block_energy_.back();
    energy_.fine_pj += be.fine_pj;
    energy_.comm_pj += be.fine_comm_pj;
    energy_.reconfig_pj += be.fine_reconfig_pj;
  }
}

bool IncrementalSplit::is_moved(ir::BlockId block) const {
  if (block < 0 || block >= static_cast<ir::BlockId>(pos_.size())) {
    fail(cat("IncrementalSplit::is_moved: bad block ", block));
  }
  return moved_.test(static_cast<std::size_t>(block));
}

std::int64_t IncrementalSplit::coarse_total_cycles(ir::BlockId block) {
  std::int64_t& memo = coarse_total_[static_cast<std::size_t>(block)];
  if (memo < 0) {
    memo = mapper_->coarse_cycles_per_invocation(block) *
           iters_[static_cast<std::size_t>(block)];
  }
  return memo;
}

void IncrementalSplit::move(ir::BlockId block) {
  if (is_moved(block)) {
    fail(cat("IncrementalSplit::move: block ", block, " moved twice"));
  }
  const auto b = static_cast<std::size_t>(block);
  // Resolve the coarse price before mutating, so a throw from coarse
  // scheduling (CGC-ineligible block) leaves the split untouched.
  const std::int64_t coarse = coarse_total_cycles(block);
  cost_.t_fpga -= fine_contrib_[b];
  cost_.t_coarse += coarse;
  cost_.t_comm += comm_total_[b];
  if (!block_energy_.empty()) {
    const BlockEnergy& be = block_energy_[b];
    energy_.fine_pj -= be.fine_pj;
    energy_.comm_pj -= be.fine_comm_pj;
    energy_.reconfig_pj -= be.fine_reconfig_pj;
    energy_.coarse_pj += be.coarse_pj;
    energy_.comm_pj += be.coarse_comm_pj;
  }
  moved_.set(b);
  pos_[b] = static_cast<std::int32_t>(order_.size());
  order_.push_back(block);
  if (cost_model_ != nullptr) {
    reconfig_sum_ +=
        reconfig_load_[b] * std::max<std::int64_t>(1, iters_[b]);
    reprice_reconfig();
  }
}

void IncrementalSplit::unmove(ir::BlockId block) {
  if (!is_moved(block)) {
    fail(cat("IncrementalSplit::unmove: block ", block, " is not moved"));
  }
  const auto b = static_cast<std::size_t>(block);
  cost_.t_fpga += fine_contrib_[b];
  cost_.t_coarse -= coarse_total_[b];
  cost_.t_comm -= comm_total_[b];
  if (!block_energy_.empty()) {
    const BlockEnergy& be = block_energy_[b];
    energy_.fine_pj += be.fine_pj;
    energy_.comm_pj += be.fine_comm_pj;
    energy_.reconfig_pj += be.fine_reconfig_pj;
    energy_.coarse_pj -= be.coarse_pj;
    energy_.comm_pj -= be.coarse_comm_pj;
  }
  // Swap-remove from the order list, keeping the index map consistent.
  const std::int32_t index = pos_[b];
  const ir::BlockId last = order_.back();
  order_[static_cast<std::size_t>(index)] = last;
  pos_[static_cast<std::size_t>(last)] = index;
  order_.pop_back();
  pos_[b] = -1;
  moved_.clear(b);
  if (cost_model_ != nullptr) {
    reconfig_sum_ -=
        reconfig_load_[b] * std::max<std::int64_t>(1, iters_[b]);
    reprice_reconfig();
  }
}

void IncrementalSplit::reprice_reconfig() {
  // The per-block load*iterations sum is maintained incrementally; only
  // the residency discount couples blocks, so this exact-window
  // repricing re-selects the top-R savings over the moved set. The
  // discount SUM is order-independent (ties contribute the same value
  // whichever block wins the region), so the result matches
  // CostModel::reconfig_cycles whatever the move history.
  reconfig_scratch_.clear();
  for (const ir::BlockId block : order_) {
    reconfig_scratch_.push_back(
        reconfig_saving_[static_cast<std::size_t>(block)]);
  }
  const std::size_t resident = std::min<std::size_t>(
      reconfig_scratch_.size(),
      static_cast<std::size_t>(cost_model_->resident_regions()));
  std::partial_sort(
      reconfig_scratch_.begin(),
      reconfig_scratch_.begin() + static_cast<std::ptrdiff_t>(resident),
      reconfig_scratch_.end(), std::greater<std::int64_t>());
  std::int64_t discount = 0;
  for (std::size_t i = 0; i < resident; ++i) {
    discount += reconfig_scratch_[i];
  }
  cost_.t_reconfig = reconfig_sum_ - discount;
}

}  // namespace amdrel::core
