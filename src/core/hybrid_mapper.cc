#include "core/hybrid_mapper.h"

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::core {

HybridMapper::HybridMapper(const ir::Cdfg& cdfg,
                           const platform::Platform& platform)
    : cdfg_(&cdfg), platform_(&platform) {
  fine_ = finegrain::map_cdfg_to_fpga(cdfg, platform.fpga, platform.memory);
}

const finegrain::FpgaBlockMapping& HybridMapper::fine(
    ir::BlockId block) const {
  require(block >= 0 && block < static_cast<ir::BlockId>(fine_.size()),
          cat("HybridMapper::fine: bad block ", block));
  return fine_[block];
}

const coarsegrain::CgcBlockMapping& HybridMapper::coarse(ir::BlockId block) {
  const auto it = coarse_.find(block);
  if (it != coarse_.end()) return it->second;
  const ir::BasicBlock& bb = cdfg_->block(block);
  auto mapping = coarsegrain::map_block_to_cgc(bb.dfg, *platform_);
  return coarse_.emplace(block, std::move(mapping)).first->second;
}

bool HybridMapper::cgc_eligible(ir::BlockId block) const {
  return !cdfg_->block(block).dfg.has_division();
}

std::int64_t HybridMapper::fine_cycles_per_invocation(
    ir::BlockId block) const {
  return fine(block).cycles_per_invocation(platform_->fpga);
}

std::int64_t HybridMapper::coarse_cycles_per_invocation(ir::BlockId block) {
  return coarse(block).cycles_per_invocation_fpga;
}

std::int64_t HybridMapper::comm_cycles_per_invocation(
    ir::BlockId block) const {
  const ir::Dfg& dfg = cdfg_->block(block).dfg;
  const std::int64_t words = dfg.live_in_count() + dfg.live_out_count();
  return words * platform_->memory.transfer_cycles_per_word;
}

SplitCost HybridMapper::evaluate(const ir::ProfileData& profile,
                                 const std::vector<ir::BlockId>& moved) {
  SplitCost cost;
  std::vector<bool> stays_fine(cdfg_->size(), true);
  for (ir::BlockId block : moved) {
    require(block >= 0 && block < cdfg_->size(),
            cat("HybridMapper::evaluate: bad moved block ", block));
    require(stays_fine[block],
            cat("HybridMapper::evaluate: block ", block, " moved twice"));
    stays_fine[block] = false;
  }
  cost.t_fpga =
      finegrain::fpga_total_cycles(fine_, profile, platform_->fpga,
                                   &stays_fine);
  for (ir::BlockId block : moved) {
    const auto iterations = static_cast<std::int64_t>(profile.count(block));
    cost.t_coarse += coarse_cycles_per_invocation(block) * iterations;
    cost.t_comm += comm_cycles_per_invocation(block) * iterations;
  }
  return cost;
}

std::int64_t HybridMapper::all_fine_cycles(
    const ir::ProfileData& profile) const {
  return finegrain::fpga_total_cycles(fine_, profile, platform_->fpga);
}

}  // namespace amdrel::core
