#include "core/hybrid_mapper.h"

#include "core/energy.h"
#include "support/error.h"
#include "support/strings.h"

namespace amdrel::core {

HybridMapper::HybridMapper(const ir::Cdfg& cdfg,
                           const platform::Platform& platform)
    : cdfg_(&cdfg), platform_(&platform) {
  fine_ = finegrain::map_cdfg_to_fpga(cdfg, platform.fpga, platform.memory);
}

HybridMapper::HybridMapper(const ir::Cdfg& cdfg,
                           const platform::Platform& platform,
                           const MapperState& state)
    : cdfg_(&cdfg),
      platform_(&platform),
      fine_(state.fine),
      coarse_(state.coarse) {
  require(static_cast<ir::BlockId>(fine_.size()) == cdfg.size(),
          cat("HybridMapper: snapshot covers ", fine_.size(),
              " blocks but the CDFG has ", cdfg.size()));
}

const finegrain::FpgaBlockMapping& HybridMapper::fine(
    ir::BlockId block) const {
  require(block >= 0 && block < static_cast<ir::BlockId>(fine_.size()),
          cat("HybridMapper::fine: bad block ", block));
  return fine_[block];
}

const coarsegrain::CgcBlockMapping& HybridMapper::coarse(ir::BlockId block) {
  const auto it = coarse_.find(block);
  if (it != coarse_.end()) return it->second;
  const ir::BasicBlock& bb = cdfg_->block(block);
  auto mapping = coarsegrain::map_block_to_cgc(bb.dfg, *platform_);
  return coarse_.emplace(block, std::move(mapping)).first->second;
}

bool HybridMapper::cgc_eligible(ir::BlockId block) const {
  return !cdfg_->block(block).dfg.has_division();
}

std::int64_t HybridMapper::fine_cycles_per_invocation(
    ir::BlockId block) const {
  return fine(block).cycles_per_invocation(platform_->fpga);
}

std::int64_t HybridMapper::coarse_cycles_per_invocation(ir::BlockId block) {
  return coarse(block).cycles_per_invocation_fpga;
}

std::int64_t HybridMapper::comm_cycles_per_invocation(
    ir::BlockId block) const {
  const ir::Dfg& dfg = cdfg_->block(block).dfg;
  const std::int64_t words = dfg.live_in_count() + dfg.live_out_count();
  return words * platform_->memory.transfer_cycles_per_word;
}

std::int64_t HybridMapper::fine_contribution_cycles(
    ir::BlockId block, const ir::ProfileData& profile) const {
  const finegrain::FpgaBlockMapping& mapping = fine(block);
  const auto iterations = static_cast<std::int64_t>(profile.count(block));
  return mapping.cycles_per_invocation(platform_->fpga) * iterations +
         mapping.amortized_reconfigs * platform_->fpga.reconfig_cycles;
}

std::int64_t HybridMapper::move_benefit_cycles(ir::BlockId block,
                                               std::uint64_t exec_freq) {
  if (!cgc_eligible(block)) return 0;
  return (fine_cycles_per_invocation(block) -
          coarse_cycles_per_invocation(block) -
          comm_cycles_per_invocation(block)) *
         static_cast<std::int64_t>(exec_freq);
}

SplitCost HybridMapper::evaluate(const ir::ProfileData& profile,
                                 const std::vector<ir::BlockId>& moved) {
  SplitCost cost;
  std::vector<bool> stays_fine(cdfg_->size(), true);
  for (ir::BlockId block : moved) {
    require(block >= 0 && block < cdfg_->size(),
            cat("HybridMapper::evaluate: bad moved block ", block));
    require(stays_fine[block],
            cat("HybridMapper::evaluate: block ", block, " moved twice"));
    stays_fine[block] = false;
  }
  cost.t_fpga =
      finegrain::fpga_total_cycles(fine_, profile, platform_->fpga,
                                   &stays_fine);
  for (ir::BlockId block : moved) {
    const auto iterations = static_cast<std::int64_t>(profile.count(block));
    cost.t_coarse += coarse_cycles_per_invocation(block) * iterations;
    cost.t_comm += comm_cycles_per_invocation(block) * iterations;
  }
  return cost;
}

std::int64_t HybridMapper::all_fine_cycles(
    const ir::ProfileData& profile) const {
  return finegrain::fpga_total_cycles(fine_, profile, platform_->fpga);
}

namespace {

const CostObjective& timing_objective() {
  static const CostObjective objective;  // default-constructed = kTiming
  return objective;
}

}  // namespace

IncrementalSplit::IncrementalSplit(HybridMapper& mapper,
                                   const ir::ProfileData& profile)
    : IncrementalSplit(mapper, profile, timing_objective()) {}

IncrementalSplit::IncrementalSplit(HybridMapper& mapper,
                                   const ir::ProfileData& profile,
                                   const CostObjective& objective)
    : mapper_(&mapper),
      profile_(&profile),
      objective_(&objective),
      order_index_(static_cast<std::size_t>(mapper.cdfg().size()), -1) {
  cost_.t_fpga = mapper.all_fine_cycles(profile);
  if (!objective.needs_energy()) return;
  // Price every block once; the all-fine starting breakdown accumulates
  // the fine-side terms in block order, matching estimate_energy({}).
  const ir::Cdfg& cdfg = mapper.cdfg();
  block_energy_.reserve(static_cast<std::size_t>(cdfg.size()));
  for (const ir::BasicBlock& block : cdfg.blocks()) {
    block_energy_.push_back(block_energy(block.dfg, mapper.fine(block.id),
                                         profile.count(block.id),
                                         objective.energy));
    const BlockEnergy& be = block_energy_.back();
    energy_.fine_pj += be.fine_pj;
    energy_.comm_pj += be.fine_comm_pj;
    energy_.reconfig_pj += be.fine_reconfig_pj;
  }
}

bool IncrementalSplit::is_moved(ir::BlockId block) const {
  require(block >= 0 &&
              block < static_cast<ir::BlockId>(order_index_.size()),
          cat("IncrementalSplit::is_moved: bad block ", block));
  return order_index_[block] >= 0;
}

void IncrementalSplit::move(ir::BlockId block) {
  require(!is_moved(block),
          cat("IncrementalSplit::move: block ", block, " moved twice"));
  const auto iterations =
      static_cast<std::int64_t>(profile_->count(block));
  // Compute every delta before mutating, so a throw from coarse
  // scheduling (CGC-ineligible block) leaves the split untouched.
  const std::int64_t coarse =
      mapper_->coarse_cycles_per_invocation(block) * iterations;
  const std::int64_t fine = mapper_->fine_contribution_cycles(block, *profile_);
  const std::int64_t comm =
      mapper_->comm_cycles_per_invocation(block) * iterations;
  cost_.t_fpga -= fine;
  cost_.t_coarse += coarse;
  cost_.t_comm += comm;
  if (!block_energy_.empty()) {
    const BlockEnergy& be = block_energy_[static_cast<std::size_t>(block)];
    energy_.fine_pj -= be.fine_pj;
    energy_.comm_pj -= be.fine_comm_pj;
    energy_.reconfig_pj -= be.fine_reconfig_pj;
    energy_.coarse_pj += be.coarse_pj;
    energy_.comm_pj += be.coarse_comm_pj;
  }
  order_index_[block] = static_cast<std::ptrdiff_t>(order_.size());
  order_.push_back(block);
}

void IncrementalSplit::unmove(ir::BlockId block) {
  require(is_moved(block),
          cat("IncrementalSplit::unmove: block ", block, " is not moved"));
  const auto iterations =
      static_cast<std::int64_t>(profile_->count(block));
  cost_.t_fpga += mapper_->fine_contribution_cycles(block, *profile_);
  cost_.t_coarse -= mapper_->coarse_cycles_per_invocation(block) * iterations;
  cost_.t_comm -= mapper_->comm_cycles_per_invocation(block) * iterations;
  if (!block_energy_.empty()) {
    const BlockEnergy& be = block_energy_[static_cast<std::size_t>(block)];
    energy_.fine_pj += be.fine_pj;
    energy_.comm_pj += be.fine_comm_pj;
    energy_.reconfig_pj += be.fine_reconfig_pj;
    energy_.coarse_pj -= be.coarse_pj;
    energy_.comm_pj -= be.coarse_comm_pj;
  }
  // Swap-remove from the order list, keeping the index map consistent.
  const std::ptrdiff_t index = order_index_[block];
  const ir::BlockId last = order_.back();
  order_[static_cast<std::size_t>(index)] = last;
  order_index_[last] = index;
  order_.pop_back();
  order_index_[block] = -1;
}

}  // namespace amdrel::core
