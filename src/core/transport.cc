#include "core/transport.h"

#include <cstdio>
#include <utility>

#ifndef _WIN32
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "support/error.h"
#include "support/strings.h"

namespace amdrel::core {

#ifdef _WIN32

ForkPipeTransport::ForkPipeTransport(WorkerCommandFn command)
    : command_(std::move(command)), describe_("fork/pipe") {}

std::unique_ptr<WorkerChannel> ForkPipeTransport::open_worker(
    const std::vector<std::size_t>&, int) {
  fail("ForkPipeTransport: requires POSIX fork/pipe");
}

const std::string& ForkPipeTransport::describe() const { return describe_; }

TcpTransport::TcpTransport(support::net::Socket listener)
    : listener_(std::move(listener)), describe_("tcp") {}

int TcpTransport::port() const { fail("TcpTransport: requires POSIX sockets"); }

std::unique_ptr<WorkerChannel> TcpTransport::open_worker(
    const std::vector<std::size_t>&, int) {
  fail("TcpTransport: requires POSIX sockets");
}

const std::string& TcpTransport::describe() const { return describe_; }

#else

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
          "transport: cannot set O_NONBLOCK");
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  require(flags >= 0 && ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0,
          "transport: cannot set FD_CLOEXEC");
}

/// Both concrete channels: a non-blocking read fd plus, for sockets, the
/// same fd writable. `pid` >= 0 marks a forked worker the channel must
/// reap (or SIGKILL on early destruction).
class FdChannel : public WorkerChannel {
 public:
  FdChannel(int fd, pid_t pid, bool reassignable, std::string name)
      : fd_(fd), pid_(pid), reassignable_(reassignable),
        name_(std::move(name)) {
    set_nonblocking(fd_);
    set_cloexec(fd_);
  }

  ~FdChannel() override {
    if (pid_ >= 0 && !reaped_) {
      // An unfinished forked worker is being retired (idle timeout or
      // failed run): make sure it dies before we wait on it.
      ::kill(pid_, SIGKILL);
      reap();
    }
    if (fd_ >= 0) ::close(fd_);
  }

  int poll_fd() const override { return fd_; }

  ChannelStatus read_lines(std::vector<std::string>& lines) override {
    char chunk[65536];
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n <= 0) {
        closed_ = true;
        break;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer_.find('\n', start);
      if (nl == std::string::npos) break;
      lines.emplace_back(buffer_, start, nl - start);
      start = nl + 1;
    }
    buffer_.erase(0, start);
    return closed_ ? ChannelStatus::kClosed : ChannelStatus::kOk;
  }

  bool write_line(const std::string& line) override {
    if (!reassignable_ || write_broken_ || closed_) return false;
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + off, line.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd_, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, 2000);
        if (ready > 0) continue;
      }
      // A torn line must never be followed by more bytes: the channel
      // stays write-broken and the coordinator routes around it.
      write_broken_ = true;
      return false;
    }
    return true;
  }

  bool supports_reassignment() const override {
    return reassignable_ && !write_broken_;
  }

  bool finish() override {
    if (pid_ < 0) return true;
    return reap();
  }

  const std::string& describe() const override { return name_; }

 private:
  bool reap() {
    if (reaped_) return clean_;
    int status = 0;
    pid_t got = -1;
    do {
      got = ::waitpid(pid_, &status, 0);
    } while (got < 0 && errno == EINTR);
    reaped_ = true;
    clean_ = got == pid_ && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    return clean_;
  }

  int fd_ = -1;
  pid_t pid_ = -1;
  bool reassignable_ = false;
  std::string name_;
  std::string buffer_;
  bool closed_ = false;
  bool write_broken_ = false;
  bool reaped_ = false;
  bool clean_ = false;
};

}  // namespace

ForkPipeTransport::ForkPipeTransport(WorkerCommandFn command)
    : command_(std::move(command)), describe_("fork/pipe") {
  require(static_cast<bool>(command_),
          "ForkPipeTransport: no worker command configured");
}

std::unique_ptr<WorkerChannel> ForkPipeTransport::open_worker(
    const std::vector<std::size_t>& shards, int timeout_ms) {
  (void)timeout_ms;  // forking is immediate
  const std::vector<std::string> command = command_(shards);
  require(!command.empty(), "ForkPipeTransport: empty worker argv");
  int fds[2];
  require(::pipe(fds) == 0, "ForkPipeTransport: pipe failed");
  const pid_t pid = ::fork();
  require(pid >= 0, "ForkPipeTransport: fork failed");
  if (pid == 0) {
    ::dup2(fds[1], 1);  // the wire protocol is the child's stdout
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(command.size() + 1);
    for (const std::string& arg : command) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "amdrelc serve: cannot exec %s\n", argv[0]);
    ::_exit(127);
  }
  ::close(fds[1]);
  const int index = spawned_++;
  return std::make_unique<FdChannel>(
      fds[0], pid, /*reassignable=*/false,
      cat("worker ", index, " (pid ", static_cast<long>(pid), ")"));
}

const std::string& ForkPipeTransport::describe() const { return describe_; }

TcpTransport::TcpTransport(support::net::Socket listener)
    : listener_(std::move(listener)), describe_("tcp") {
  require(listener_.valid(), "TcpTransport: invalid listening socket");
  set_cloexec(listener_.fd());
}

int TcpTransport::port() const { return support::net::local_port(listener_); }

std::unique_ptr<WorkerChannel> TcpTransport::open_worker(
    const std::vector<std::size_t>& shards, int timeout_ms) {
  (void)shards;  // assignment travels on the wire after the accept
  std::optional<support::net::Socket> conn =
      support::net::accept_tcp(listener_, timeout_ms);
  if (!conn) return nullptr;
  const int index = accepted_++;
  return std::make_unique<FdChannel>(conn->release(), /*pid=*/-1,
                                     /*reassignable=*/true,
                                     cat("tcp worker ", index));
}

const std::string& TcpTransport::describe() const { return describe_; }

#endif

}  // namespace amdrel::core
