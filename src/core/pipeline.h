#pragma once

#include <cstdint>

#include "core/methodology.h"

namespace amdrel::core {

/// The paper's frame-pipelining claim (section 3) and ongoing-work thread
/// (section 5, "multiple threads of execution for parallel operation of
/// the fine and coarse-grain blocks"): DSP/multimedia applications process
/// frames repeatedly, and while frame i runs on the coarse-grain
/// data-path, frame i+1 can already occupy the fine-grain hardware. The
/// two stages of consecutive frames overlap; within one frame execution
/// stays mutually exclusive, as the methodology assumes.
struct PipelineEstimate {
  int frames = 1;
  std::int64_t fine_per_frame = 0;    ///< t_FPGA / frames
  std::int64_t coarse_per_frame = 0;  ///< (t_coarse + t_comm) / frames
  std::int64_t sequential_cycles = 0; ///< no overlap (equation (2) total)
  std::int64_t pipelined_cycles = 0;  ///< two-stage pipeline makespan

  double speedup() const {
    return pipelined_cycles == 0
               ? 1.0
               : static_cast<double>(sequential_cycles) /
                     static_cast<double>(pipelined_cycles);
  }
  /// Fraction of the pipelined makespan each unit is busy.
  double fine_utilization() const {
    return pipelined_cycles == 0
               ? 0.0
               : static_cast<double>(fine_per_frame) * frames /
                     static_cast<double>(pipelined_cycles);
  }
  double coarse_utilization() const {
    return pipelined_cycles == 0
               ? 0.0
               : static_cast<double>(coarse_per_frame) * frames /
                     static_cast<double>(pipelined_cycles);
  }
};

/// Splits a methodology result into per-frame stage times and computes the
/// two-stage pipeline makespan over `frames` frames:
///   makespan = fine + (frames - 1) * max(fine, coarse) + coarse.
/// The report's totals must correspond to `frames` frames of input (e.g.
/// 6 payload symbols for the OFDM model).
PipelineEstimate estimate_pipeline(const PartitionReport& report, int frames);

}  // namespace amdrel::core
