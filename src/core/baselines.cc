#include "core/baselines.h"

#include <algorithm>

#include "support/error.h"

namespace amdrel::core {

PartitionReport all_coarse_split(const ir::Cdfg& cdfg,
                                 const ir::ProfileData& profile,
                                 const platform::Platform& platform,
                                 std::int64_t timing_constraint_cycles) {
  PartitionReport report;
  report.app = cdfg.name();
  report.timing_constraint = timing_constraint_cycles;

  HybridMapper mapper(cdfg, platform);
  report.initial_cycles = mapper.all_fine_cycles(profile);

  std::vector<ir::BlockId> moved;
  for (const ir::BasicBlock& block : cdfg.blocks()) {
    if (profile.count(block.id) == 0) continue;
    if (!mapper.cgc_eligible(block.id)) continue;
    if (block.dfg.op_mix().total_schedulable() == 0) continue;
    moved.push_back(block.id);
  }
  report.moved = moved;
  report.cost = mapper.evaluate(profile, moved);
  report.final_cycles = report.cost.total();
  report.cycles_in_cgc = report.cost.t_coarse;
  report.met = report.final_cycles <= timing_constraint_cycles;
  report.engine_iterations = static_cast<int>(moved.size());
  return report;
}

OptimalSplit exhaustive_optimal(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                std::int64_t timing_constraint_cycles,
                                int max_kernels,
                                const analysis::AnalysisOptions& options) {
  require(max_kernels >= 0 && max_kernels <= 24,
          "exhaustive_optimal: max_kernels must be in [0, 24]");
  HybridMapper mapper(cdfg, platform);

  std::vector<analysis::KernelInfo> kernels =
      analysis::extract_kernels(cdfg, profile, options);
  std::vector<ir::BlockId> candidates;
  for (const auto& kernel : kernels) {
    if (!kernel.cgc_eligible) continue;
    candidates.push_back(kernel.block);
    if (static_cast<int>(candidates.size()) >= max_kernels) break;
  }

  OptimalSplit result;
  result.best_cycles = mapper.all_fine_cycles(profile);
  result.best_cycles_subset = {};

  const std::size_t n = candidates.size();
  std::size_t best_moves = n + 1;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<ir::BlockId> moved;
    for (std::size_t bit = 0; bit < n; ++bit) {
      if (mask & (std::size_t{1} << bit)) moved.push_back(candidates[bit]);
    }
    const SplitCost cost = mapper.evaluate(profile, moved);
    result.subsets_evaluated++;
    if (cost.total() < result.best_cycles) {
      result.best_cycles = cost.total();
      result.best_cycles_subset = moved;
    }
    if (cost.total() <= timing_constraint_cycles) {
      const bool first = !result.fewest_moves.has_value();
      const bool fewer = moved.size() < best_moves;
      const bool same_but_faster =
          !first && moved.size() == best_moves &&
          cost.total() < result.fewest_moves_cycles;
      if (first || fewer || same_but_faster) {
        best_moves = moved.size();
        result.fewest_moves = moved;
        result.fewest_moves_cycles = cost.total();
      }
    }
  }
  return result;
}

}  // namespace amdrel::core
