#include "core/report.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace amdrel::core {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << rows_[r][c];
      if (c + 1 < rows_[r].size()) {
        os << std::string(width[c] - rows_[r][c].size() + 2, ' ');
      }
    }
    os << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < width.size(); ++c) {
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
      }
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

std::string with_thousands(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string describe(const PartitionReport& report, const ir::Cdfg& cdfg) {
  std::ostringstream os;
  os << "application: " << report.app << "\n";
  // Timing-objective reports keep the original byte-pinned layout; the
  // energy lines appear only when the run searched under an
  // energy-aware objective.
  const bool energy_aware = report.objective != ObjectiveKind::kTiming;
  if (energy_aware) {
    char budget[64];
    std::snprintf(budget, sizeof budget, "%.1f",
                  report.energy_budget_pj / 1000.0);
    os << "objective: " << objective_name(report.objective) << "\n";
    os << "energy budget: " << budget << " nJ\n";
  }
  os << "timing constraint: " << with_thousands(report.timing_constraint)
     << " cycles\n";
  os << "all-fine-grain (initial): " << with_thousands(report.initial_cycles)
     << " cycles" << (report.initial_meets ? "  [already meets constraint]" : "")
     << "\n";
  if (!report.initial_meets) {
    os << "kernels found: " << report.kernels.size() << "\n";
    os << "moved to CGC data-path:";
    for (ir::BlockId block : report.moved) {
      os << " " << cdfg.block(block).name;
    }
    os << "\n";
    // The reconfiguration term appears only when a cost model priced it:
    // the additive model's reports — and every pre-v3 golden — keep the
    // exact three-term breakdown byte-for-byte.
    os << "final: " << with_thousands(report.final_cycles)
       << " cycles  (t_FPGA " << with_thousands(report.cost.t_fpga)
       << " + t_coarse " << with_thousands(report.cost.t_coarse)
       << " + t_comm " << with_thousands(report.cost.t_comm);
    if (report.cost.t_reconfig != 0) {
      os << " + t_reconfig " << with_thousands(report.cost.t_reconfig);
    }
    os << ")\n";
    if (report.floorplan_cost != 0) {
      char floorplan[64];
      std::snprintf(floorplan, sizeof floorplan, "%.4f",
                    report.floorplan_cost);
      os << "floorplan cost: " << floorplan << "\n";
    }
    os << "cycle reduction: ";
    os.precision(3);
    os << report.reduction_percent() << "%\n";
    os << "constraint " << (report.met ? "met" : "NOT met") << " after "
       << report.engine_iterations << " engine iteration(s)\n";
  }
  if (energy_aware) {
    auto nj = [](double pj) {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "%.1f", pj / 1000.0);
      return std::string(buffer);
    };
    os << "energy: " << nj(report.energy.total_pj()) << " nJ (fine "
       << nj(report.energy.fine_pj) << " + coarse "
       << nj(report.energy.coarse_pj) << " + reconfig "
       << nj(report.energy.reconfig_pj) << " + comm "
       << nj(report.energy.comm_pj) << "), all-fine "
       << nj(report.initial_energy_pj) << " nJ\n";
    os << "energy reduction: ";
    os.precision(3);
    os << report.energy_reduction_percent() << "%\n";
    os << (report.objective == ObjectiveKind::kCombined
               ? "combined objective "
               : "energy budget ")
       << (report.met ? "met" : "NOT met") << "\n";
  }
  return os.str();
}

}  // namespace amdrel::core
