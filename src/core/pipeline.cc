#include "core/pipeline.h"

#include <algorithm>

#include "support/error.h"

namespace amdrel::core {

PipelineEstimate estimate_pipeline(const PartitionReport& report,
                                   int frames) {
  require(frames >= 1, "estimate_pipeline: frames must be >= 1");
  PipelineEstimate estimate;
  estimate.frames = frames;
  estimate.fine_per_frame = report.cost.t_fpga / frames;
  estimate.coarse_per_frame =
      (report.cost.t_coarse + report.cost.t_comm) / frames;
  estimate.sequential_cycles =
      frames * (estimate.fine_per_frame + estimate.coarse_per_frame);
  const std::int64_t bottleneck =
      std::max(estimate.fine_per_frame, estimate.coarse_per_frame);
  estimate.pipelined_cycles = estimate.fine_per_frame +
                              (frames - 1) * bottleneck +
                              estimate.coarse_per_frame;
  return estimate;
}

}  // namespace amdrel::core
