#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/json_lines.h"
#include "core/sweep_cache.h"

namespace amdrel::core::wire {

// ---------------------------------------------------------------------------
// Line codecs for the sweep-service wire protocol (one JSON object per
// line; doubles travel as IEEE-754 bit patterns inside the canonical
// cell payload of core/sweep_cache.h). Promoted out of sweep_service.cc
// so transports, the coordinator, workers and tests all share ONE
// encode/decode per line kind instead of re-parsing ad hoc.
//
// Static (one-directional) stream — a `worker --shards` process's
// stdout, unchanged since wire v2:
//   {"kind":"wire_header","protocol":P,"schema_version":S,
//    "fingerprint_algorithm":F,"shards":N}      // exactly once, first
//   {"kind":"shard","shard":S,"used":U}         // one per shard,
//   {"kind":"cell","shard":S,"slot":I,...}      //   then its U cells,
//                                               //   slots 0..U-1 in order
//   {"kind":"worker_done","cells":M}            // exactly once, then EOF
//
// Dynamic (bidirectional) control lines — wire v3, spoken over a socket
// by `worker --connect`:
//   coordinator -> worker:
//     {"kind":"assign","retry":R,"shards":[...]}  // compute these next;
//                                                 //   R = prior attempts
//     {"kind":"shard_ack","shard":S}              // informational,
//                                                 //   best-effort
//     {"kind":"shutdown"}                         // no further work
//   worker -> coordinator:
//     wire_header once, then per assign batch the shard/cell lines
//     above followed by {"kind":"round_done","cells":M}, and a final
//     worker_done (cells = total across rounds) after shutdown.
//
// Encoders for the potentially large data lines (header, shard, cell,
// worker_done) write a complete line INCLUDING the trailing newline to
// an ostream; the small control lines return the full line (also
// newline-terminated) as a string for channel writers. Decoders take a
// parsed JSON object (see parse_line) and return false on a missing or
// malformed field — never throwing, so callers own the error story.
// ---------------------------------------------------------------------------

enum class LineKind {
  kUnknown,
  kHeader,
  kShard,
  kCell,
  kWorkerDone,
  kAssign,
  kShardAck,
  kRoundDone,
  kShutdown,
};

struct Header {
  int protocol = 0;
  int schema_version = 0;
  int fingerprint_algorithm = 0;
  std::size_t shards = 0;
};

struct ShardBegin {
  std::size_t shard = 0;
  std::size_t used = 0;
};

struct Cell {
  std::size_t shard = 0;
  std::size_t slot = 0;
  CachedCell payload;
};

struct WorkerDone {
  std::size_t cells = 0;
};

struct Assign {
  std::vector<std::size_t> shards;
  /// How many times any shard in the batch had been assigned before
  /// (0 on first assignment; > 0 marks a retry round).
  std::size_t retry = 0;
};

struct ShardAck {
  std::size_t shard = 0;
};

struct RoundDone {
  std::size_t cells = 0;
};

/// Parses one wire line into a JSON object. False on anything that is
/// not a single well-formed JSON object.
bool parse_line(const std::string& line, jsonl::JsonValue& object);

/// The "kind" dispatch; kUnknown for a missing or unrecognized kind.
LineKind line_kind(const jsonl::JsonValue& object);

void encode_header(std::ostream& os, const Header& header);
bool decode_header(const jsonl::JsonValue& object, Header& header);

void encode_shard_begin(std::ostream& os, const ShardBegin& shard);
bool decode_shard_begin(const jsonl::JsonValue& object, ShardBegin& shard);

/// The cell payload is the canonical codec of core/sweep_cache.h, shared
/// with the cache file byte-for-byte.
void encode_cell(std::ostream& os, std::size_t shard, std::size_t slot,
                 const PartitionReport& report,
                 const std::vector<std::string>& moved_names);
bool decode_cell(const jsonl::JsonValue& object, Cell& cell);

void encode_worker_done(std::ostream& os, const WorkerDone& done);
bool decode_worker_done(const jsonl::JsonValue& object, WorkerDone& done);

std::string encode_assign(const Assign& assign);
bool decode_assign(const jsonl::JsonValue& object, Assign& assign);

std::string encode_shard_ack(const ShardAck& ack);
bool decode_shard_ack(const jsonl::JsonValue& object, ShardAck& ack);

std::string encode_round_done(const RoundDone& done);
bool decode_round_done(const jsonl::JsonValue& object, RoundDone& done);

std::string encode_shutdown();

}  // namespace amdrel::core::wire
