#include "core/energy.h"

#include "finegrain/fpga_mapper.h"
#include "support/error.h"

namespace amdrel::core {

namespace {

double fine_block_energy(const ir::Dfg& dfg, const EnergyModel& model) {
  const ir::OpMix mix = dfg.op_mix();
  return static_cast<double>(mix.alu) * model.fpga_alu_pj +
         static_cast<double>(mix.mul) * model.fpga_mul_pj +
         static_cast<double>(mix.div) * model.fpga_div_pj +
         static_cast<double>(mix.mem) * model.fpga_mem_pj;
}

double coarse_block_energy(const ir::Dfg& dfg, const EnergyModel& model) {
  const ir::OpMix mix = dfg.op_mix();
  return static_cast<double>(mix.alu) * model.cgc_alu_pj +
         static_cast<double>(mix.mul) * model.cgc_mul_pj +
         static_cast<double>(mix.mem) * model.cgc_mem_pj;
}

}  // namespace

EnergyBreakdown estimate_energy(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                const std::vector<ir::BlockId>& moved,
                                const EnergyModel& model) {
  std::vector<bool> is_moved(cdfg.size(), false);
  for (ir::BlockId block : moved) {
    require(block >= 0 && block < cdfg.size(),
            "estimate_energy: bad moved block");
    is_moved[block] = true;
  }

  const auto mappings =
      finegrain::map_cdfg_to_fpga(cdfg, platform.fpga, platform.memory);

  EnergyBreakdown breakdown;
  for (const ir::BasicBlock& block : cdfg.blocks()) {
    const auto iterations = static_cast<double>(profile.count(block.id));
    if (iterations == 0) continue;
    if (is_moved[block.id]) {
      breakdown.coarse_pj +=
          iterations * coarse_block_energy(block.dfg, model);
      const double words = static_cast<double>(block.dfg.live_in_count() +
                                               block.dfg.live_out_count());
      breakdown.comm_pj += iterations * words * model.transfer_pj_per_word;
    } else {
      const auto& mapping = mappings[block.id];
      breakdown.fine_pj += iterations * fine_block_energy(block.dfg, model);
      breakdown.comm_pj += iterations *
                           static_cast<double>(mapping.boundary_words) *
                           model.spill_pj_per_word;
      const double reconfigs =
          static_cast<double>(mapping.reconfigs_per_invocation) * iterations +
          static_cast<double>(mapping.amortized_reconfigs);
      breakdown.reconfig_pj += reconfigs * model.reconfiguration_pj;
    }
  }
  return breakdown;
}

EnergyPartitionReport run_energy_methodology(
    const ir::Cdfg& cdfg, const ir::ProfileData& profile,
    const platform::Platform& platform, double budget_pj,
    const EnergyModel& model, const analysis::AnalysisOptions& options) {
  EnergyPartitionReport report;
  report.energy = estimate_energy(cdfg, profile, platform, {}, model);
  report.initial_pj = report.energy.total_pj();
  if (report.initial_pj <= budget_pj) {
    report.met = true;
    return report;
  }

  const auto kernels = analysis::extract_kernels(cdfg, profile, options);
  for (const auto& kernel : kernels) {
    if (!kernel.cgc_eligible) continue;
    report.engine_iterations++;
    std::vector<ir::BlockId> trial = report.moved;
    trial.push_back(kernel.block);
    const EnergyBreakdown energy =
        estimate_energy(cdfg, profile, platform, trial, model);
    report.moved = std::move(trial);
    report.energy = energy;
    if (energy.total_pj() <= budget_pj) {
      report.met = true;
      break;
    }
  }
  return report;
}

}  // namespace amdrel::core
