#include "core/energy.h"

#include "support/error.h"

namespace amdrel::core {

namespace {

double fine_mix_energy(const ir::OpMix& mix, const EnergyModel& model) {
  return static_cast<double>(mix.alu) * model.fpga_alu_pj +
         static_cast<double>(mix.mul) * model.fpga_mul_pj +
         static_cast<double>(mix.div) * model.fpga_div_pj +
         static_cast<double>(mix.mem) * model.fpga_mem_pj;
}

double coarse_mix_energy(const ir::OpMix& mix, const EnergyModel& model) {
  return static_cast<double>(mix.alu) * model.cgc_alu_pj +
         static_cast<double>(mix.mul) * model.cgc_mul_pj +
         static_cast<double>(mix.mem) * model.cgc_mem_pj;
}

}  // namespace

BlockEnergy block_energy(const ir::OpMix& mix, std::int64_t comm_words,
                         const finegrain::FpgaBlockMapping& mapping,
                         std::uint64_t iterations, const EnergyModel& model) {
  BlockEnergy be;
  const auto iters = static_cast<double>(iterations);
  if (iters == 0) return be;
  be.fine_pj = iters * fine_mix_energy(mix, model);
  be.fine_comm_pj = iters * static_cast<double>(mapping.boundary_words) *
                    model.spill_pj_per_word;
  const double reconfigs =
      static_cast<double>(mapping.reconfigs_per_invocation) * iters +
      static_cast<double>(mapping.amortized_reconfigs);
  be.fine_reconfig_pj = reconfigs * model.reconfiguration_pj;
  be.coarse_pj = iters * coarse_mix_energy(mix, model);
  be.coarse_comm_pj = iters * static_cast<double>(comm_words) *
                      model.transfer_pj_per_word;
  return be;
}

BlockEnergy block_energy(const ir::Dfg& dfg,
                         const finegrain::FpgaBlockMapping& mapping,
                         std::uint64_t iterations, const EnergyModel& model) {
  return block_energy(dfg.op_mix(),
                      dfg.live_in_count() + dfg.live_out_count(), mapping,
                      iterations, model);
}

EnergyBreakdown estimate_energy(const HybridMapper& mapper,
                                const ir::ProfileData& profile,
                                const std::vector<ir::BlockId>& moved,
                                const EnergyModel& model) {
  const ir::Cdfg& cdfg = mapper.cdfg();
  const ir::PackedCdfg& packed = mapper.packed();
  std::vector<bool> is_moved(cdfg.size(), false);
  for (ir::BlockId block : moved) {
    require(block >= 0 && block < cdfg.size(),
            "estimate_energy: bad moved block");
    is_moved[block] = true;
  }

  EnergyBreakdown breakdown;
  for (const ir::BasicBlock& block : cdfg.blocks()) {
    const BlockEnergy be = block_energy(
        packed.op_mix(block.id),
        packed.live_in_count(block.id) + packed.live_out_count(block.id),
        mapper.fine(block.id), profile.count(block.id), model);
    if (is_moved[block.id]) {
      breakdown.coarse_pj += be.coarse_pj;
      breakdown.comm_pj += be.coarse_comm_pj;
    } else {
      breakdown.fine_pj += be.fine_pj;
      breakdown.comm_pj += be.fine_comm_pj;
      breakdown.reconfig_pj += be.fine_reconfig_pj;
    }
  }
  return breakdown;
}

EnergyBreakdown estimate_energy(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                const std::vector<ir::BlockId>& moved,
                                const EnergyModel& model) {
  const HybridMapper mapper(cdfg, platform);
  return estimate_energy(mapper, profile, moved, model);
}

EnergyPartitionReport run_energy_methodology(
    const ir::Cdfg& cdfg, const ir::ProfileData& profile,
    const platform::Platform& platform, double budget_pj,
    const EnergyModel& model, const MethodologyOptions& options) {
  MethodologyOptions engine = options;
  engine.cost.objective.kind = ObjectiveKind::kEnergy;
  engine.cost.objective.energy = model;
  engine.cost.energy_budget_pj = budget_pj;
  // The timing constraint is irrelevant under kEnergy (met() ignores
  // it); 0 keeps the step-2 early exit purely energy-driven.
  const PartitionReport report =
      run_methodology(cdfg, profile, platform, /*timing_constraint=*/0,
                      engine);

  EnergyPartitionReport out;
  out.initial_pj = report.initial_energy_pj;
  out.moved = report.moved;
  out.energy = report.energy;
  out.met = report.met;
  out.engine_iterations = report.engine_iterations;
  return out;
}

EnergyPartitionReport run_energy_methodology(
    const ir::Cdfg& cdfg, const ir::ProfileData& profile,
    const platform::Platform& platform, double budget_pj,
    const EnergyModel& model, const analysis::AnalysisOptions& options) {
  MethodologyOptions engine;
  engine.analysis = options;
  return run_energy_methodology(cdfg, profile, platform, budget_pj, model,
                                engine);
}

}  // namespace amdrel::core
