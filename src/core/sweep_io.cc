#include "core/sweep_io.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/strategy.h"
#include "support/strings.h"

namespace amdrel::core {

namespace {

// %.10g keeps integral platform values ("1500", "2076") free of trailing
// zeros while round-tripping any realistic area exactly.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  return buffer;
}

std::string format_percent(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f", value);
  return buffer;
}

// Fixed four-decimal rendering for energy pJ values: enough to show the
// sub-pJ tail the models produce while staying byte-stable (no %g
// precision cliffs on 11-digit JPEG energies).
std::string format_energy(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.4f", value);
  return buffer;
}

// RFC-4180 quoting: fields containing the separator, quotes or newlines
// are wrapped in double quotes with embedded quotes doubled. App names
// can be arbitrary (CLI file paths); block names are generator-chosen.
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

template <typename T>
void append_index_list(std::ostringstream& os, const std::vector<T>& indices) {
  os << '[';
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i) os << ", ";
    os << indices[i];
  }
  os << ']';
}

// The cell fields shared byte-for-byte by the merged artifact
// (sweep_to_json, which appends the pareto markers) and the partial
// NDJSON stream (write_partial_stream_shard, which has none): "app"
// through "engine_iterations", no braces, no trailing separator.
void append_cell_fields(std::ostream& os, const std::vector<std::string>& apps,
                        const SweepCell& cell) {
  os << "\"app\": \"" << json_escape(apps[cell.app]) << "\", "
     << "\"a_fpga\": " << format_double(cell.a_fpga) << ", "
     << "\"cgcs\": " << cell.cgcs << ", "
     << "\"platform_cost\": " << format_double(cell.platform_cost) << ", "
     << "\"constraint\": " << cell.constraint << ", "
     << "\"strategy\": \"" << strategy_name(cell.strategy) << "\", "
     << "\"ordering\": \"" << kernel_ordering_name(cell.ordering) << "\", "
     << "\"objective\": \"" << objective_name(cell.report.objective)
     << "\", "
     << "\"energy_budget_pj\": " << format_energy(cell.energy_budget_pj)
     << ", "
     << "\"initial_cycles\": " << cell.report.initial_cycles << ", "
     << "\"final_cycles\": " << cell.report.final_cycles << ", "
     << "\"cycles_in_cgc\": " << cell.report.cycles_in_cgc << ", "
     << "\"t_fpga\": " << cell.report.cost.t_fpga << ", "
     << "\"t_coarse\": " << cell.report.cost.t_coarse << ", "
     << "\"t_comm\": " << cell.report.cost.t_comm << ", "
     << "\"reconfig_cycles\": " << cell.report.cost.t_reconfig << ", "
     << "\"floorplan_cost\": " << format_energy(cell.report.floorplan_cost)
     << ", "
     << "\"initial_energy_pj\": "
     << format_energy(cell.report.initial_energy_pj) << ", "
     << "\"energy_pj\": " << format_energy(cell.report.energy.total_pj())
     << ", "
     << "\"moved\": " << cell.report.moved.size() << ", "
     << "\"moved_blocks\": [";
  for (std::size_t m = 0; m < cell.moved_names.size(); ++m) {
    if (m) os << ", ";
    os << '"' << json_escape(cell.moved_names[m]) << '"';
  }
  os << "], "
     << "\"met\": " << (cell.report.met ? "true" : "false") << ", "
     << "\"reduction_percent\": \""
     << format_percent(cell.report.reduction_percent()) << "\", "
     << "\"energy_reduction_percent\": \""
     << format_percent(cell.report.energy_reduction_percent()) << "\", "
     << "\"engine_iterations\": " << cell.report.engine_iterations;
}

}  // namespace

std::string sweep_to_json(const SweepSummary& summary) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kSweepSchemaVersion << ",\n";
  os << "  \"generator\": \"amdrel\",\n";
  os << "  \"apps\": [";
  for (std::size_t i = 0; i < summary.apps.size(); ++i) {
    if (i) os << ", ";
    os << '"' << json_escape(summary.apps[i]) << '"';
  }
  os << "],\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const SweepCell& cell = summary.cells[i];
    os << "    {";
    append_cell_fields(os, summary.apps, cell);
    os << ", "
       << "\"app_pareto\": " << (cell.on_app_pareto ? "true" : "false")
       << ", "
       << "\"global_pareto\": " << (cell.on_global_pareto ? "true" : "false")
       << '}' << (i + 1 < summary.cells.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  os << "  \"app_pareto\": {";
  for (std::size_t app = 0; app < summary.apps.size(); ++app) {
    if (app) os << ", ";
    os << '"' << json_escape(summary.apps[app]) << "\": ";
    append_index_list(os, summary.app_pareto[app]);
  }
  os << "},\n";
  os << "  \"global_pareto\": ";
  append_index_list(os, summary.global_pareto);
  os << "\n}\n";
  return os.str();
}

std::string sweep_to_csv(const SweepSummary& summary) {
  std::ostringstream os;
  os << "app,a_fpga,cgcs,platform_cost,constraint,strategy,ordering,"
        "objective,energy_budget_pj,"
        "initial_cycles,final_cycles,cycles_in_cgc,t_fpga,t_coarse,t_comm,"
        "reconfig_cycles,floorplan_cost,"
        "initial_energy_pj,energy_pj,"
        "moved,moved_blocks,met,reduction_percent,energy_reduction_percent,"
        "engine_iterations,app_pareto,global_pareto\n";
  for (const SweepCell& cell : summary.cells) {
    std::string blocks;
    for (const std::string& name : cell.moved_names) {
      if (!blocks.empty()) blocks += ';';
      blocks += name;
    }
    blocks = csv_escape(blocks);
    os << csv_escape(summary.apps[cell.app]) << ','
       << format_double(cell.a_fpga) << ','
       << cell.cgcs << ',' << format_double(cell.platform_cost) << ','
       << cell.constraint << ',' << strategy_name(cell.strategy) << ','
       << kernel_ordering_name(cell.ordering) << ','
       << objective_name(cell.report.objective) << ','
       << format_energy(cell.energy_budget_pj) << ','
       << cell.report.initial_cycles << ',' << cell.report.final_cycles << ','
       << cell.report.cycles_in_cgc << ',' << cell.report.cost.t_fpga << ','
       << cell.report.cost.t_coarse << ',' << cell.report.cost.t_comm << ','
       << cell.report.cost.t_reconfig << ','
       << format_energy(cell.report.floorplan_cost) << ','
       << format_energy(cell.report.initial_energy_pj) << ','
       << format_energy(cell.report.energy.total_pj()) << ','
       << cell.report.moved.size() << ',' << blocks << ','
       << (cell.report.met ? "true" : "false") << ','
       << format_percent(cell.report.reduction_percent()) << ','
       << format_percent(cell.report.energy_reduction_percent()) << ','
       << cell.report.engine_iterations << ','
       << (cell.on_app_pareto ? "true" : "false") << ','
       << (cell.on_global_pareto ? "true" : "false") << '\n';
  }
  return os.str();
}

std::string cache_stats_to_json(const SweepCacheStats& stats) {
  const std::uint64_t lookups = stats.cell_hits + stats.cell_misses;
  const double rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.cell_hits) /
                         static_cast<double>(lookups);
  char rate_text[32];
  std::snprintf(rate_text, sizeof rate_text, "%.2f", rate);
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kSweepCacheSchemaVersion << ",\n";
  os << "  \"generator\": \"amdrel\",\n";
  os << "  \"cell_hits\": " << stats.cell_hits << ",\n";
  os << "  \"cell_misses\": " << stats.cell_misses << ",\n";
  os << "  \"cell_hit_rate\": \"" << rate_text << "\",\n";
  os << "  \"mapper_restores\": " << stats.mapper_restores << ",\n";
  os << "  \"mapper_builds\": " << stats.mapper_builds << ",\n";
  os << "  \"all_fine_hits\": " << stats.all_fine_hits << ",\n";
  os << "  \"all_fine_misses\": " << stats.all_fine_misses << ",\n";
  os << "  \"cells\": " << stats.cells << ",\n";
  os << "  \"entries_loaded\": " << stats.entries_loaded << ",\n";
  os << "  \"lock_degraded\": " << stats.lock_degraded << ",\n";
  os << "  \"entries_evicted\": " << stats.entries_evicted << "\n";
  os << "}\n";
  return os.str();
}

void write_partial_stream_header(std::ostream& os, std::size_t shards) {
  os << "{\"kind\":\"sweep_partial\",\"schema_version\":"
     << kSweepSchemaVersion
     << ",\"generator\":\"amdrel\",\"shards\":" << shards << "}\n";
  os.flush();
}

void write_partial_stream_shard(std::ostream& os,
                                const std::vector<std::string>& apps,
                                std::size_t shard, const SweepCell* cells,
                                std::size_t used) {
  os << "{\"kind\":\"shard\",\"shard\":" << shard << ",\"used\":" << used
     << "}\n";
  for (std::size_t slot = 0; slot < used; ++slot) {
    os << "{\"kind\":\"cell\",\"shard\":" << shard << ",\"slot\":" << slot
       << ", ";
    append_cell_fields(os, apps, cells[slot]);
    os << "}\n";
  }
  // Per-shard flush: the whole point is that a reader sees finished
  // shards while the sweep is still running.
  os.flush();
}

}  // namespace amdrel::core
