#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/methodology.h"

namespace amdrel::core {

/// Result of the exhaustive search over kernel subsets — the reference the
/// greedy engine is compared against in the ordering ablation.
struct OptimalSplit {
  /// Subset meeting the constraint with the fewest moved kernels (ties:
  /// fewest cycles); empty optional when no subset meets it.
  std::optional<std::vector<ir::BlockId>> fewest_moves;
  std::int64_t fewest_moves_cycles = 0;

  /// Subset minimizing total cycles regardless of the constraint.
  std::vector<ir::BlockId> best_cycles_subset;
  std::int64_t best_cycles = 0;

  std::size_t subsets_evaluated = 0;
};

/// Moves every CGC-eligible block (not only loop kernels) to the
/// coarse-grain data-path; the "all-coarse" end of the design space.
PartitionReport all_coarse_split(const ir::Cdfg& cdfg,
                                 const ir::ProfileData& profile,
                                 const platform::Platform& platform,
                                 std::int64_t timing_constraint_cycles);

/// Exhaustively evaluates every subset of the top `max_kernels` eligible
/// kernels (capped to keep 2^k tractable) and returns the optima. Used to
/// measure how close the paper's greedy weight-ordered engine gets.
OptimalSplit exhaustive_optimal(const ir::Cdfg& cdfg,
                                const ir::ProfileData& profile,
                                const platform::Platform& platform,
                                std::int64_t timing_constraint_cycles,
                                int max_kernels = 16,
                                const analysis::AnalysisOptions& options = {});

}  // namespace amdrel::core
