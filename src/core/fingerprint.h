#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/methodology.h"
#include "core/schema.h"
#include "ir/cdfg.h"
#include "ir/dfg.h"
#include "ir/profile.h"
#include "platform/platform.h"

namespace amdrel::core {

// The fingerprint algorithm version (kFingerprintAlgorithmVersion) lives
// with every other persisted-format constant in core/schema.h. Bump on
// ANY change to what is hashed or how (mixing constants, field order,
// new fields) — persisted caches key results by these fingerprints, so
// an algorithm change must invalidate them, and the golden test pins the
// builtin workloads' digests byte-for-byte.

/// A 128-bit content digest. Two independently-mixed 64-bit lanes keep
/// the collision probability negligible for cache-sized key sets while
/// staying dependency-free (no external hash library).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }
  bool operator<(const Fingerprint& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// Fixed-width lowercase hex rendering ("<hi:16><lo:16>", 32 chars) —
  /// the on-disk key format of the sweep cache.
  std::string to_hex() const;

  /// Inverse of to_hex; nullopt unless `text` is exactly 32 lowercase
  /// hex digits (strict: the cache loader rejects anything else).
  static std::optional<Fingerprint> from_hex(std::string_view text);
};

/// Incremental two-lane mixer behind every fingerprint: lane one is
/// FNV-1a over 64-bit words, lane two an xxhash-style rotate-multiply
/// accumulator, both finalized with a murmur-style avalanche. Values are
/// mixed as explicit integers (doubles by bit pattern, strings
/// length-prefixed byte-wise), so digests are identical across
/// platforms, build types and runs.
class Fingerprinter {
 public:
  void mix(std::uint64_t value);
  void mix_i64(std::int64_t value) {
    mix(static_cast<std::uint64_t>(value));
  }
  void mix_double(double value);
  void mix(std::string_view text);

  Fingerprint digest() const;

 private:
  std::uint64_t fnv_ = 0xcbf29ce484222325ULL;    // FNV-1a offset basis
  std::uint64_t xxh_ = 0x9e3779b97f4a7c15ULL;    // golden-ratio seed
};

/// Digest of one basic block's data-flow graph: node count, per-node op
/// kind, bit width, immediate and operand lists (edges). Node labels are
/// debugging aids that never influence a partitioning result, so they
/// are deliberately excluded — renaming a temp does not invalidate a
/// cache, changing an operation does.
Fingerprint fingerprint(const ir::Dfg& dfg);

/// Digest of a whole CDFG: graph name, entry block, and per block its
/// name, DFG digest and successor list. Block names ARE covered (moved
/// kernels are reported by name, so they are part of a cell result).
Fingerprint fingerprint(const ir::Cdfg& cdfg);

/// Digest of a dynamic profile: every (block, execution count) pair in
/// block order.
Fingerprint fingerprint(const ir::ProfileData& profile);

/// Digest of a platform instance: every timing/area/policy field of the
/// FPGA, CGC and shared-memory models.
Fingerprint fingerprint(const platform::Platform& platform);

/// Digest of the engine options: analysis weights and filters, strategy,
/// ordering, cost objective (kind, combined weights, every EnergyModel
/// price, energy budget), seed and all search knobs. Over-keying is
/// deliberate — a
/// field that happens not to matter for one strategy only costs cache
/// hits, never correctness.
Fingerprint fingerprint(const MethodologyOptions& options);

/// Digest of an application: CDFG x profile, the "app" axis of a sweep
/// cache key.
Fingerprint app_fingerprint(const ir::Cdfg& cdfg,
                            const ir::ProfileData& profile);

/// Key of one (app, platform) cell group: what memoized HybridMapper
/// state and all-fine-grain cycle counts are addressed by.
Fingerprint shard_key(const Fingerprint& app, const Fingerprint& platform);

/// Key of one sweep cell: (app, platform, engine options, timing
/// constraint). options must already carry the cell's strategy and
/// ordering.
Fingerprint cell_key(const Fingerprint& app, const Fingerprint& platform,
                     const MethodologyOptions& options,
                     std::int64_t constraint);

}  // namespace amdrel::core
