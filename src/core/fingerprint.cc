#include "core/fingerprint.h"

#include <cstdio>
#include <cstring>

namespace amdrel::core {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kXxhPrime1 = 0x9e3779b185ebca87ULL;
constexpr std::uint64_t kXxhPrime2 = 0xc2b2ae3d27d4eb4fULL;

std::uint64_t rotl(std::uint64_t value, int bits) {
  return (value << bits) | (value >> (64 - bits));
}

// Murmur3's 64-bit finalizer: full avalanche, so single-bit input
// differences flip about half of the digest bits.
std::uint64_t avalanche(std::uint64_t value) {
  value ^= value >> 33;
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  value *= 0xc4ceb9fe1a85ec53ULL;
  value ^= value >> 33;
  return value;
}

}  // namespace

std::string Fingerprint::to_hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buffer;
}

std::optional<Fingerprint> Fingerprint::from_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  Fingerprint fp;
  for (int half = 0; half < 2; ++half) {
    std::uint64_t value = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = text[static_cast<std::size_t>(half * 16 + i)];
      std::uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        return std::nullopt;
      }
      value = (value << 4) | digit;
    }
    (half == 0 ? fp.hi : fp.lo) = value;
  }
  return fp;
}

void Fingerprinter::mix(std::uint64_t value) {
  fnv_ = (fnv_ ^ value) * kFnvPrime;
  xxh_ = rotl(xxh_ + value * kXxhPrime2, 31) * kXxhPrime1;
}

void Fingerprinter::mix_double(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value, "IEEE-754 double expected");
  std::memcpy(&bits, &value, sizeof bits);
  mix(bits);
}

void Fingerprinter::mix(std::string_view text) {
  // Length prefix keeps concatenated strings unambiguous ("ab","c" vs
  // "a","bc"); bytes are packed little-endian by explicit shifts, so the
  // digest does not depend on host endianness.
  mix(static_cast<std::uint64_t>(text.size()));
  std::uint64_t word = 0;
  int filled = 0;
  for (const char c : text) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << (8 * filled);
    if (++filled == 8) {
      mix(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled) mix(word);
}

Fingerprint Fingerprinter::digest() const {
  // Cross-feed the lanes before the avalanche so each output half
  // depends on both accumulators.
  Fingerprint fp;
  fp.hi = avalanche(fnv_ ^ rotl(xxh_, 32));
  fp.lo = avalanche(xxh_ + rotl(fnv_, 17));
  return fp;
}

Fingerprint fingerprint(const ir::Dfg& dfg) {
  Fingerprinter h;
  h.mix(static_cast<std::uint64_t>(kFingerprintAlgorithmVersion));
  h.mix("dfg");
  h.mix(static_cast<std::uint64_t>(dfg.size()));
  for (const ir::Dfg::Node& node : dfg.nodes()) {
    h.mix(static_cast<std::uint64_t>(node.kind));
    h.mix(static_cast<std::uint64_t>(node.bit_width));
    h.mix_i64(node.imm);
    h.mix(static_cast<std::uint64_t>(node.operands.size()));
    for (const ir::NodeId operand : node.operands) {
      h.mix(static_cast<std::uint64_t>(operand));
    }
  }
  return h.digest();
}

Fingerprint fingerprint(const ir::Cdfg& cdfg) {
  Fingerprinter h;
  h.mix(static_cast<std::uint64_t>(kFingerprintAlgorithmVersion));
  h.mix("cdfg");
  h.mix(cdfg.name());
  h.mix(static_cast<std::uint64_t>(cdfg.entry()));
  h.mix(static_cast<std::uint64_t>(cdfg.size()));
  for (ir::BlockId block = 0; block < cdfg.size(); ++block) {
    const ir::BasicBlock& bb = cdfg.block(block);
    h.mix(bb.name);
    const Fingerprint dfg = fingerprint(bb.dfg);
    h.mix(dfg.hi);
    h.mix(dfg.lo);
    const std::vector<ir::BlockId>& succs = cdfg.successors(block);
    h.mix(static_cast<std::uint64_t>(succs.size()));
    for (const ir::BlockId succ : succs) {
      h.mix(static_cast<std::uint64_t>(succ));
    }
  }
  return h.digest();
}

Fingerprint fingerprint(const ir::ProfileData& profile) {
  Fingerprinter h;
  h.mix(static_cast<std::uint64_t>(kFingerprintAlgorithmVersion));
  h.mix("profile");
  h.mix(profile.counts().size());
  for (const auto& [block, count] : profile.counts()) {
    h.mix(static_cast<std::uint64_t>(block));
    h.mix(count);
  }
  return h.digest();
}

Fingerprint fingerprint(const platform::Platform& platform) {
  Fingerprinter h;
  h.mix(static_cast<std::uint64_t>(kFingerprintAlgorithmVersion));
  h.mix("platform");
  const platform::FpgaModel& fpga = platform.fpga;
  h.mix_double(fpga.usable_area);
  h.mix_i64(fpga.reconfig_cycles);
  h.mix(static_cast<std::uint64_t>(fpga.parallel_lanes));
  h.mix_i64(fpga.invocation_overhead_cycles);
  h.mix(static_cast<std::uint64_t>(fpga.reconfig_policy));
  h.mix(static_cast<std::uint64_t>(fpga.mapper));
  h.mix_double(fpga.clock_period_ns);
  h.mix_double(fpga.area_alu);
  h.mix_double(fpga.area_mul);
  h.mix_double(fpga.area_div);
  h.mix_double(fpga.area_mem);
  h.mix_double(fpga.area_copy);
  h.mix_i64(fpga.delay_alu);
  h.mix_i64(fpga.delay_mul);
  h.mix_i64(fpga.delay_div);
  h.mix_i64(fpga.delay_mem);
  h.mix_i64(fpga.delay_copy);
  const platform::CgcModel& cgc = platform.cgc;
  h.mix(static_cast<std::uint64_t>(cgc.count));
  h.mix(static_cast<std::uint64_t>(cgc.rows));
  h.mix(static_cast<std::uint64_t>(cgc.cols));
  h.mix(static_cast<std::uint64_t>(cgc.fpga_clock_ratio));
  h.mix(static_cast<std::uint64_t>(cgc.enable_chaining));
  h.mix(static_cast<std::uint64_t>(cgc.mem_ports));
  h.mix_i64(cgc.mem_access_cgc_cycles);
  h.mix(static_cast<std::uint64_t>(cgc.dma_memory));
  h.mix(static_cast<std::uint64_t>(cgc.register_bank_size));
  const platform::MemoryModel& memory = platform.memory;
  h.mix_i64(memory.transfer_cycles_per_word);
  h.mix_i64(memory.partition_boundary_cycles_per_word);
  return h.digest();
}

Fingerprint fingerprint(const MethodologyOptions& options) {
  Fingerprinter h;
  h.mix(static_cast<std::uint64_t>(kFingerprintAlgorithmVersion));
  h.mix("options");
  h.mix_i64(options.analysis.weights.alu);
  h.mix_i64(options.analysis.weights.mul);
  h.mix_i64(options.analysis.weights.div);
  h.mix_i64(options.analysis.weights.mem);
  h.mix(static_cast<std::uint64_t>(options.analysis.loops_only));
  h.mix(options.analysis.min_exec_freq);
  h.mix(static_cast<std::uint64_t>(options.strategy));
  h.mix(static_cast<std::uint64_t>(options.ordering));
  const CostObjective& objective = options.cost.objective;
  h.mix(static_cast<std::uint64_t>(objective.kind));
  h.mix_double(objective.energy.fpga_alu_pj);
  h.mix_double(objective.energy.fpga_mul_pj);
  h.mix_double(objective.energy.fpga_div_pj);
  h.mix_double(objective.energy.fpga_mem_pj);
  h.mix_double(objective.energy.cgc_alu_pj);
  h.mix_double(objective.energy.cgc_mul_pj);
  h.mix_double(objective.energy.cgc_mem_pj);
  h.mix_double(objective.energy.reconfiguration_pj);
  h.mix_double(objective.energy.transfer_pj_per_word);
  h.mix_double(objective.energy.spill_pj_per_word);
  h.mix_double(objective.cycle_weight);
  h.mix_double(objective.energy_weight);
  h.mix_double(options.cost.energy_budget_pj);
  // v3: the reconfiguration model prices moved sets, so two runs that
  // differ only here must never alias a cache cell.
  const platform::ReconfigModel& reconfig = options.cost.reconfig;
  h.mix_double(reconfig.bitstream_cycles_per_unit);
  h.mix_double(reconfig.prefetch_overlap);
  h.mix_double(reconfig.floorplan_cost_per_unit);
  h.mix(static_cast<std::uint64_t>(reconfig.regions));
  h.mix(options.random_seed);
  h.mix(static_cast<std::uint64_t>(options.stop_when_met));
  h.mix(static_cast<std::uint64_t>(options.skip_unprofitable));
  h.mix(static_cast<std::uint64_t>(options.exhaustive_max_kernels));
  h.mix(static_cast<std::uint64_t>(options.anneal_iterations));
  return h.digest();
}

Fingerprint app_fingerprint(const ir::Cdfg& cdfg,
                            const ir::ProfileData& profile) {
  Fingerprinter h;
  h.mix("app");
  const Fingerprint c = fingerprint(cdfg);
  const Fingerprint p = fingerprint(profile);
  h.mix(c.hi);
  h.mix(c.lo);
  h.mix(p.hi);
  h.mix(p.lo);
  return h.digest();
}

Fingerprint shard_key(const Fingerprint& app, const Fingerprint& platform) {
  Fingerprinter h;
  h.mix("shard");
  h.mix(app.hi);
  h.mix(app.lo);
  h.mix(platform.hi);
  h.mix(platform.lo);
  return h.digest();
}

Fingerprint cell_key(const Fingerprint& app, const Fingerprint& platform,
                     const MethodologyOptions& options,
                     std::int64_t constraint) {
  Fingerprinter h;
  h.mix("cell");
  h.mix(app.hi);
  h.mix(app.lo);
  h.mix(platform.hi);
  h.mix(platform.lo);
  const Fingerprint o = fingerprint(options);
  h.mix(o.hi);
  h.mix(o.lo);
  h.mix_i64(constraint);
  return h.digest();
}

}  // namespace amdrel::core
